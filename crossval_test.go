package sccsim

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestCrossValidateAllWorkloads is the analytic backend's acceptance
// gate: the full design-space grid on every workload, both backends,
// every point checked against the published accuracy contract. A model
// regression that widens the error anywhere in the space fails here
// with the offending point named.
func TestCrossValidateAllWorkloads(t *testing.T) {
	ctx := context.Background()
	for _, w := range AllWorkloads {
		w := w
		t.Run(string(w), func(t *testing.T) {
			t.Parallel()
			r, err := CrossValidate(ctx, w, WithScale(QuickScale()), WithParallelism(2))
			if err != nil {
				t.Fatal(err)
			}
			if got := len(r.Points); got != len(SCCSizes)*len(ProcsPerClusterSweep) {
				t.Fatalf("cross-validation covered %d points, want the full %dx%d grid",
					got, len(SCCSizes), len(ProcsPerClusterSweep))
			}
			if err := r.Check(DefaultCrossBounds(w)); err != nil {
				t.Errorf("%v\n%s", err, r.String())
			}
			// The report is self-consistent: summary maxima match points.
			var maxAbs float64
			for _, p := range r.Points {
				if p.AbsErr > maxAbs {
					maxAbs = p.AbsErr
				}
			}
			if maxAbs != r.MaxAbsErr {
				t.Errorf("summary MaxAbsErr %.4f != pointwise max %.4f", r.MaxAbsErr, maxAbs)
			}
		})
	}
}

// TestCrossValidateRejectsExactOnlyOptions: the comparison must run
// both backends on the paper's default model, so exact-only options
// fail up front instead of after an expensive sweep.
func TestCrossValidateRejectsExactOnlyOptions(t *testing.T) {
	_, err := CrossValidate(context.Background(), BarnesHut, WithScale(QuickScale()), WithVerify())
	if err == nil || !strings.Contains(err.Error(), "exact backend") {
		t.Errorf("CrossValidate with WithVerify: err %v, want exact-backend rejection", err)
	}
}

// TestAnalyticSweepSpeedup is the performance half of the backend's
// contract: with traces warm (the shared cost of both backends), a
// full-grid analytic sweep must beat the exact simulator by at least
// 10x. Profiles are cached per (workload, clusters, scale) just like
// traces, so the analytic grid costs one profile pass plus 32 cheap
// histogram walks.
func TestAnalyticSweepSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	ctx := context.Background()
	scale := QuickScale()
	// Warm the trace and profile caches so the measured runs compare the
	// backends, not trace generation.
	if _, err := SweepCtx(ctx, BarnesHut, WithScale(scale)); err != nil {
		t.Fatal(err)
	}
	if _, err := SweepCtx(ctx, BarnesHut, WithScale(scale), WithBackend(BackendAnalytic)); err != nil {
		t.Fatal(err)
	}

	best := func(opts ...Opt) time.Duration {
		bestD := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			if _, err := SweepCtx(ctx, BarnesHut, append(opts, WithScale(scale))...); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	exact := best()
	analytic := best(WithBackend(BackendAnalytic))
	ratio := float64(exact) / float64(analytic)
	t.Logf("warm full-grid sweep: exact %v, analytic %v, speedup %.1fx", exact, analytic, ratio)
	if ratio < 10 {
		t.Errorf("analytic speedup %.1fx < 10x (exact %v, analytic %v)", ratio, exact, analytic)
	}
}

// BenchmarkSweepExact and BenchmarkSweepAnalytic measure the warm
// full-grid sweep on each backend; their ratio is the speedup the
// analytic backend exists to deliver (asserted ≥10x by
// TestAnalyticSweepSpeedup).
func BenchmarkSweepExact(b *testing.B)    { benchSweep(b, BackendExact) }
func BenchmarkSweepAnalytic(b *testing.B) { benchSweep(b, BackendAnalytic) }

func benchSweep(b *testing.B, backend Backend) {
	ctx := context.Background()
	scale := QuickScale()
	if _, err := SweepCtx(ctx, BarnesHut, WithScale(scale), WithBackend(backend)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SweepCtx(ctx, BarnesHut, WithScale(scale), WithBackend(backend)); err != nil {
			b.Fatal(err)
		}
	}
}
