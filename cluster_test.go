package sccsim_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"sccsim"
	"sccsim/internal/serve"
)

// decodeStrict decodes a worker-bound request body exactly as the
// server does (DisallowUnknownFields), pinning the facade's mirrored
// wire structs to the serve package's schema: a drifted field name
// fails here before it can fail in a cluster.
func decodeStrict(t *testing.T, r io.Reader, into any) {
	t.Helper()
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		t.Fatalf("worker request does not match the serve wire schema: %v", err)
	}
}

func TestHTTPClusterSpeaksTheServeWireSchema(t *testing.T) {
	var got serve.PointRequest
	worker := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/point" || r.Method != http.MethodPost {
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
		}
		decodeStrict(t, r.Body, &got)
		pt, err := sccsim.Do(r.Context(), sccsim.Workload(got.Workload),
			sccsim.WithScale(scaleOf(got.ScaleSpec)),
			sccsim.WithPoint(got.ProcsPerCluster, got.SCCBytes))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"status": "done", "point": pt})
	}))
	defer worker.Close()

	c := sccsim.NewHTTPCluster(sccsim.ClusterSpec{Workers: []string{worker.URL + "/"}})
	if w := c.Workers(); len(w) != 1 || w[0] != worker.URL {
		t.Fatalf("Workers() = %v, want normalized %q", w, worker.URL)
	}
	s := sccsim.QuickScale()
	pt, err := c.RunPoint(context.Background(), sccsim.RemotePoint{
		Workload: sccsim.BarnesHut, ProcsPerCluster: 2, SCCBytes: 32 * 1024,
		Scale: s, Verify: true, Backend: "exact",
	})
	if err != nil {
		t.Fatal(err)
	}
	if pt == nil || pt.Result == nil || pt.Config.ProcsPerCluster != 2 {
		t.Fatalf("remote point = %+v", pt)
	}
	if got.Workload != "barnes-hut" || got.Backend != "exact" {
		t.Fatalf("wire request = %+v", got)
	}
	if got.ScaleSpec == nil || scaleOf(got.ScaleSpec) != s {
		t.Fatalf("scale did not survive the wire: %+v", got.ScaleSpec)
	}
	if got.Sim == nil || !got.Sim.Verify {
		t.Fatalf("verify flag did not survive the wire: %+v", got.Sim)
	}
}

func TestHTTPClusterRetriesAcrossWorkers(t *testing.T) {
	var deadHits atomic.Int64
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		deadHits.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer dead.Close()
	var liveHits atomic.Int64
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		liveHits.Add(1)
		var req serve.PointRequest
		decodeStrict(t, r.Body, &req)
		pt, err := sccsim.Do(r.Context(), sccsim.Workload(req.Workload),
			sccsim.WithScale(scaleOf(req.ScaleSpec)),
			sccsim.WithPoint(req.ProcsPerCluster, req.SCCBytes))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"status": "done", "point": pt})
	}))
	defer live.Close()

	c := sccsim.NewHTTPCluster(sccsim.ClusterSpec{
		Workers: []string{dead.URL, live.URL}, Retries: 3, BackoffMS: 1, CooldownMS: 60_000,
	})
	rp := sccsim.RemotePoint{
		Workload: sccsim.BarnesHut, ProcsPerCluster: 1, SCCBytes: 64 * 1024,
		Scale: sccsim.QuickScale(),
	}
	if _, err := c.RunPoint(context.Background(), rp); err != nil {
		t.Fatal(err)
	}
	if liveHits.Load() == 0 {
		t.Fatal("live worker never reached")
	}
	// The dead worker is cooling down: the next point goes straight to
	// the live one.
	before := deadHits.Load()
	if _, err := c.RunPoint(context.Background(), rp); err != nil {
		t.Fatal(err)
	}
	if deadHits.Load() != before {
		t.Fatal("cooling-down worker was offered another job")
	}
}

func TestHTTPClusterTerminalFailures(t *testing.T) {
	// No workers at all.
	c := sccsim.NewHTTPCluster(sccsim.ClusterSpec{})
	rp := sccsim.RemotePoint{Workload: sccsim.BarnesHut, ProcsPerCluster: 1,
		SCCBytes: 64 * 1024, Scale: sccsim.QuickScale()}
	if _, err := c.RunPoint(context.Background(), rp); err == nil {
		t.Fatal("empty cluster succeeded")
	}

	// Every worker failing: bounded attempts, then an error (the sweep
	// engine's local fallback takes over from there).
	var hits atomic.Int64
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "draining", http.StatusServiceUnavailable)
	}))
	defer down.Close()
	c = sccsim.NewHTTPCluster(sccsim.ClusterSpec{Workers: []string{down.URL}, Retries: 2, BackoffMS: 1})
	if _, err := c.RunPoint(context.Background(), rp); err == nil {
		t.Fatal("all-down cluster succeeded")
	}
	if hits.Load() != 3 {
		t.Fatalf("%d attempts, want retries+1 = 3", hits.Load())
	}

	// A worker serving garbage is a failure, not a bad point.
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"status":"done"}`)
	}))
	defer garbage.Close()
	c = sccsim.NewHTTPCluster(sccsim.ClusterSpec{Workers: []string{garbage.URL}, Retries: 0, BackoffMS: 1})
	if _, err := c.RunPoint(context.Background(), rp); err == nil {
		t.Fatal("resultless envelope accepted")
	}

	// Cancellation aborts immediately with the context's error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c = sccsim.NewHTTPCluster(sccsim.ClusterSpec{Workers: []string{down.URL}, Retries: 5, BackoffMS: 1})
	if _, err := c.RunPoint(ctx, rp); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSweepWithClusterFallsBackWhenRemoteFails: WithCluster over a
// remote that always errors still produces the single-node grid.
func TestSweepWithClusterFallsBackWhenRemoteFails(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick-scale sweep")
	}
	sccsim.ResetTraceCache()
	t.Cleanup(sccsim.ResetTraceCache)
	ctx := context.Background()
	want, err := sccsim.SweepCtx(ctx, sccsim.BarnesHut, sccsim.WithScale(sccsim.QuickScale()))
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)

	got, err := sccsim.SweepCtx(ctx, sccsim.BarnesHut,
		sccsim.WithScale(sccsim.QuickScale()),
		sccsim.WithCluster(remoteFunc(func(ctx context.Context, rp sccsim.RemotePoint) (*sccsim.Point, error) {
			return nil, errors.New("no workers")
		})))
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(got)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatal("cluster-fallback grid differs from single-node grid")
	}
}

// scaleOf rebuilds the library Scale from its wire form.
func scaleOf(sp *serve.ScaleSpec) sccsim.Scale {
	if sp == nil {
		return sccsim.PaperScale()
	}
	return sccsim.Scale{
		BarnesBodies: sp.BarnesBodies, BarnesSteps: sp.BarnesSteps,
		MP3DParticles: sp.MP3DParticles, MP3DSteps: sp.MP3DSteps,
		MultiprogRefs: sp.MultiprogRefs,
		CholeskyGridW: sp.CholeskyGridW, CholeskyGridH: sp.CholeskyGridH,
		Seed: sp.Seed,
	}
}

// remoteFunc adapts a function to the Remote interface for tests.
type remoteFunc func(ctx context.Context, rp sccsim.RemotePoint) (*sccsim.Point, error)

func (f remoteFunc) RunPoint(ctx context.Context, rp sccsim.RemotePoint) (*sccsim.Point, error) {
	return f(ctx, rp)
}
