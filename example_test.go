package sccsim_test

import (
	"fmt"
	"log"

	"sccsim"
)

// ExampleRun simulates one design point and reads the result.
func ExampleRun() {
	pt, err := sccsim.Run(sccsim.BarnesHut, 2, 32*1024, sccsim.QuickScale())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(pt.Config.ProcsPerCluster, "processors per cluster,",
		pt.Config.SCCBytes/1024, "KB SCC")
	fmt.Println("finished:", pt.Result.Cycles > 0)
	// Output:
	// 2 processors per cluster, 32 KB SCC
	// finished: true
}

// ExampleSweep runs the full design space for one workload and renders
// the paper's Table 3.
func ExampleSweep() {
	grid, err := sccsim.Sweep(sccsim.MP3D, sccsim.QuickScale())
	if err != nil {
		log.Fatal(err)
	}
	// Self-relative speedup at a middle design point.
	fmt.Println("8 procs/cluster faster than 1:", grid.Speedup(64*1024, 8) > 1)
	// Output:
	// 8 procs/cluster faster than 1: true
}

// ExampleChipDesigns prices the Section 4 cluster implementations.
func ExampleChipDesigns() {
	designs := sccsim.ChipDesigns()
	fmt.Printf("1P chip: %.0f mm2\n", designs[1].ChipArea())
	fmt.Printf("2P chip: %.0f mm2 (load latency %d)\n",
		designs[2].ChipArea(), designs[2].LoadLatency)
	// Output:
	// 1P chip: 204 mm2
	// 2P chip: 279 mm2 (load latency 3)
}

// ExampleLoadLatencyFactor reads the Table 5 pipeline factors.
func ExampleLoadLatencyFactor() {
	fmt.Printf("%.2f\n", sccsim.LoadLatencyFactor(sccsim.Cholesky, 4))
	// Output:
	// 1.16
}

// ExampleGenerateTrace inspects a workload's reference stream without
// running the simulator.
func ExampleGenerateTrace() {
	prog, err := sccsim.GenerateTrace(sccsim.Cholesky, 4, sccsim.QuickScale())
	if err != nil {
		log.Fatal(err)
	}
	prof := sccsim.AnalyzeTrace(prog)
	fmt.Println("has references:", prof.RefTotal() > 0)
	fmt.Println("data is shared:", prof.SharedFrac() > 0)
	// Output:
	// has references: true
	// data is shared: true
}
