package sccsim_test

import (
	"context"
	"testing"

	"sccsim"
)

// WithVerify is an observer: a verified run must succeed on correct
// code and return exactly the unverified numbers, in either composition
// order with WithSimOptions.
func TestWithVerifyIsTransparent(t *testing.T) {
	s := sccsim.QuickScale()
	plain, err := sccsim.Do(context.Background(), sccsim.BarnesHut,
		sccsim.WithPoint(2, 32*1024), sccsim.WithScale(s))
	if err != nil {
		t.Fatal(err)
	}
	checked, err := sccsim.Do(context.Background(), sccsim.BarnesHut,
		sccsim.WithPoint(2, 32*1024), sccsim.WithScale(s), sccsim.WithVerify())
	if err != nil {
		t.Fatalf("verified run failed: %v", err)
	}
	if checked.Result.Cycles != plain.Result.Cycles || checked.Result.Refs != plain.Result.Refs {
		t.Errorf("WithVerify changed the result: %d cycles / %d refs vs %d / %d",
			checked.Result.Cycles, checked.Result.Refs, plain.Result.Cycles, plain.Result.Refs)
	}

	// WithVerify before WithSimOptions must survive the sim-options
	// overwrite (verification is resolved after all opts apply).
	reordered, err := sccsim.Do(context.Background(), sccsim.BarnesHut,
		sccsim.WithVerify(), sccsim.WithSimOptions(sccsim.Options{WriteBufferDepth: 8}),
		sccsim.WithPoint(2, 32*1024), sccsim.WithScale(s))
	if err != nil {
		t.Fatalf("WithVerify + WithSimOptions run failed: %v", err)
	}
	if reordered.Result.Cycles != plain.Result.Cycles {
		t.Errorf("option order changed the result: %d vs %d cycles",
			reordered.Result.Cycles, plain.Result.Cycles)
	}
}

// A verified sweep exercises the checker across the whole grid through
// the public API — the surface `sccexplore -verify` drives.
func TestWithVerifySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full verified sweep is a long test")
	}
	g, err := sccsim.SweepCtx(context.Background(), sccsim.Multiprog,
		sccsim.WithScale(sccsim.QuickScale()), sccsim.WithVerify())
	if err != nil {
		t.Fatalf("verified sweep failed: %v", err)
	}
	if len(g.Points) == 0 {
		t.Fatal("verified sweep returned no points")
	}
}
