// Cluster execution: the facade's half of the coordinator/worker
// protocol. A Remote executes single design points somewhere else;
// WithCluster hands one to the sweep engine, which offers every grid
// point to it and simulates locally whenever the remote path fails —
// so a cluster sweep returns the same bytes as a single-node sweep, or
// an error, never silently degraded data. HTTPCluster is the standard
// Remote: it speaks the sccserve `POST /v1/point` wire protocol to a
// set of worker nodes with round-robin selection, failure cooldowns
// and bounded retry backoff. The serve layer builds one per sweep from
// its worker registry; embedders can point one at any worker list.
package sccsim

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"sccsim/internal/explorer"
	"sccsim/internal/trace"
)

// TraceStore is the trace-cache contract sweeps consult before running
// a workload generator (trace.Store): the on-disk cache is the
// single-node implementation, the peer-fetching cache the fleet one.
type TraceStore = trace.Store

// WithTraceStore roots the experiment's persistent trace cache at an
// already-constructed store — the programmatic sibling of
// WithTraceCache(dir), for callers that need a cache the directory
// form cannot express (a peer-fetching trace.PeerCache that pulls
// entries from other nodes by content digest, an instrumented wrapper,
// a test double). When both are set, the store wins.
func WithTraceStore(st TraceStore) Opt { return func(c *expCfg) { c.traceStore = st } }

// RemotePoint is one design-point job offered to a Remote: the
// workload, the point on the paper's default system, and the resolved
// experiment configuration the worker must reproduce exactly —
// problem scale, simulator data options, verification, backend. It
// carries only what crosses the wire; observers (metrics, tracers)
// stay with the coordinator.
type RemotePoint struct {
	// Workload is the benchmark to run.
	Workload Workload
	// ProcsPerCluster and SCCBytes name the design point.
	ProcsPerCluster int
	SCCBytes        int
	// Scale is the resolved problem sizing (never a preset name: the
	// coordinator resolves presets so worker defaults cannot drift).
	Scale Scale
	// Sim is the simulator options; only data fields travel.
	Sim Options
	// Verify attaches the coherence invariant checker on the worker.
	Verify bool
	// Backend is the resolved execution backend ("exact" or "analytic").
	Backend string
	// Axes is the resolved architecture-axis overlay (zero: paper
	// defaults). Workers that predate the axes fields reject the request
	// (strict decoding) and the coordinator simulates locally — a
	// mixed-version fleet degrades to correct-but-local, never to a
	// wrong-configuration result.
	Axes Axes
}

// Remote executes design points on other nodes. RunPoint returns the
// simulated point or an error; the sweep engine treats any error — and
// any returned point that fails validation against the requested
// configuration — as "simulate it locally instead", so an
// implementation can be aggressive about timeouts and give up early.
// Implementations must be safe for concurrent use: the engine calls
// RunPoint from its worker pool.
type Remote interface {
	// RunPoint executes one design point remotely.
	RunPoint(ctx context.Context, rp RemotePoint) (*Point, error)
}

// WithCluster enables sharded sweep execution: every design point of a
// sweep is offered to r (falling back to local simulation when the
// remote fails), and accepted results are validated and merged into a
// grid byte-identical to a single-node run. Exact backend only — the
// analytic backend predicts the whole grid from one profile pass, so
// there is nothing to shard — and ignored by Do, which is already a
// single point. See NewHTTPCluster for the standard implementation.
func WithCluster(r Remote) Opt { return func(c *expCfg) { c.remote = r } }

// remoteFunc adapts the experiment's Remote to the engine's per-point
// callback, capturing the resolved experiment configuration so every
// offered job carries exactly what the local fallback would simulate.
func (c expCfg) remoteFunc() explorer.RemotePointFunc {
	r := c.remote
	rp := RemotePoint{
		Scale: c.scale, Sim: c.sim,
		Verify:  c.sim.Verify != nil,
		Backend: string(c.backend),
		Axes:    c.axes,
	}
	return func(ctx context.Context, w explorer.Workload, spec explorer.PointSpec) (*explorer.Point, error) {
		job := rp
		job.Workload = w
		job.ProcsPerCluster = spec.PPC
		job.SCCBytes = spec.SCCBytes
		return r.RunPoint(ctx, job)
	}
}

// ClusterSpec is the declarative form of an HTTP worker cluster — the
// data a config file or service flag can carry, converted by Spec.Opts
// into WithCluster(NewHTTPCluster(spec)). The zero value of each knob
// keeps its default.
type ClusterSpec struct {
	// Workers lists worker base URLs (e.g. "http://node1:8080"). An
	// empty list disables remote execution.
	Workers []string `json:"workers,omitempty"`
	// Retries is how many workers a point is offered to before falling
	// back to local simulation (0: 2).
	Retries int `json:"retries,omitempty"`
	// BackoffMS is the base retry backoff in milliseconds, doubled per
	// attempt and capped at 8x (0: 50).
	BackoffMS int64 `json:"backoff_ms,omitempty"`
	// TimeoutMS caps each remote point attempt (0: 120000).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// CooldownMS is how long a failed worker is skipped before being
	// offered jobs again (0: 3000).
	CooldownMS int64 `json:"cooldown_ms,omitempty"`
}

// clusterWorker is one worker node's selection state.
type clusterWorker struct {
	url       string
	downUntil time.Time
}

// HTTPCluster is the standard Remote: design points are posted to
// worker sccserve nodes as `POST /v1/point` requests (always with an
// explicit scale_spec, so worker-side preset defaults cannot drift the
// result) and responses are decoded and validated exactly as the
// sweep merge requires. Workers are picked round-robin; a failed
// worker sits out a cooldown; each point gets a bounded number of
// attempts with exponential backoff before the caller's local
// fallback takes over. Safe for concurrent use.
type HTTPCluster struct {
	client   *http.Client
	retries  int
	backoff  time.Duration
	timeout  time.Duration
	cooldown time.Duration

	mu      sync.Mutex
	workers []clusterWorker
	next    int
}

// NewHTTPCluster builds an HTTP worker cluster from its declarative
// spec. Worker URLs are normalized (trailing slashes dropped); an
// empty worker list is allowed and makes every RunPoint fail — i.e.
// the sweep runs fully local.
func NewHTTPCluster(spec ClusterSpec) *HTTPCluster {
	c := &HTTPCluster{
		client:   &http.Client{},
		retries:  spec.Retries,
		backoff:  time.Duration(spec.BackoffMS) * time.Millisecond,
		timeout:  time.Duration(spec.TimeoutMS) * time.Millisecond,
		cooldown: time.Duration(spec.CooldownMS) * time.Millisecond,
	}
	if c.retries <= 0 {
		c.retries = 2
	}
	if c.backoff <= 0 {
		c.backoff = 50 * time.Millisecond
	}
	if c.timeout <= 0 {
		c.timeout = 120 * time.Second
	}
	if c.cooldown <= 0 {
		c.cooldown = 3 * time.Second
	}
	for _, u := range spec.Workers {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u != "" {
			c.workers = append(c.workers, clusterWorker{url: u})
		}
	}
	return c
}

// Workers returns the configured worker base URLs in selection order.
func (c *HTTPCluster) Workers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	urls := make([]string, len(c.workers))
	for i, w := range c.workers {
		urls[i] = w.url
	}
	return urls
}

// pick returns the next worker to offer a job to: round-robin over
// workers not in cooldown, falling back to plain round-robin when the
// whole fleet is cooling down (a lone flaky worker beats none).
func (c *HTTPCluster) pick() (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.workers)
	if n == 0 {
		return "", false
	}
	now := time.Now()
	for i := 0; i < n; i++ {
		w := &c.workers[(c.next+i)%n]
		if now.After(w.downUntil) {
			c.next = (c.next + i + 1) % n
			return w.url, true
		}
	}
	u := c.workers[c.next%n].url
	c.next = (c.next + 1) % n
	return u, true
}

// markDown puts a worker in cooldown after a failed attempt.
func (c *HTTPCluster) markDown(url string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.workers {
		if c.workers[i].url == url {
			c.workers[i].downUntil = time.Now().Add(c.cooldown)
		}
	}
}

// wirePoint is the `POST /v1/point` request body (the serve package's
// wire schema, mirrored here because serve imports this package; the
// cluster integration tests pin the two in lockstep). The server
// decodes strictly, so only known fields may appear.
type wirePoint struct {
	Workload        string     `json:"workload"`
	Backend         string     `json:"backend,omitempty"`
	ScaleSpec       *wireScale `json:"scale_spec,omitempty"`
	ProcsPerCluster int        `json:"procs_per_cluster,omitempty"`
	SCCBytes        int        `json:"scc_bytes,omitempty"`
	Sim             *wireSim   `json:"sim,omitempty"`
	Axes            *Axes      `json:"axes,omitempty"`
	TimeoutMS       int64      `json:"timeout_ms,omitempty"`
}

// wireScale mirrors serve's ScaleSpec.
type wireScale struct {
	BarnesBodies  int   `json:"barnes_bodies,omitempty"`
	BarnesSteps   int   `json:"barnes_steps,omitempty"`
	MP3DParticles int   `json:"mp3d_particles,omitempty"`
	MP3DSteps     int   `json:"mp3d_steps,omitempty"`
	MultiprogRefs int   `json:"multiprog_refs,omitempty"`
	CholeskyGridW int   `json:"cholesky_grid_w,omitempty"`
	CholeskyGridH int   `json:"cholesky_grid_h,omitempty"`
	Seed          int64 `json:"seed,omitempty"`
}

// wireSim mirrors serve's SimSpec.
type wireSim struct {
	WriteBufferDepth int    `json:"write_buffer_depth,omitempty"`
	BusOccupancy     int    `json:"bus_occupancy,omitempty"`
	SwitchPenalty    uint64 `json:"switch_penalty,omitempty"`
	MemBanks         int    `json:"mem_banks,omitempty"`
	MemBankOccupancy int    `json:"mem_bank_occupancy,omitempty"`
	VictimEntries    int    `json:"victim_entries,omitempty"`
	WarmupRefs       uint64 `json:"warmup_refs,omitempty"`
	LegacyReplay     bool   `json:"legacy_replay,omitempty"`
	Verify           bool   `json:"verify,omitempty"`
}

// encode builds the wire body for one remote point job.
func (c *HTTPCluster) encode(rp RemotePoint) ([]byte, error) {
	req := wirePoint{
		Workload:        string(rp.Workload),
		Backend:         rp.Backend,
		ProcsPerCluster: rp.ProcsPerCluster,
		SCCBytes:        rp.SCCBytes,
		TimeoutMS:       c.timeout.Milliseconds(),
		ScaleSpec: &wireScale{
			BarnesBodies: rp.Scale.BarnesBodies, BarnesSteps: rp.Scale.BarnesSteps,
			MP3DParticles: rp.Scale.MP3DParticles, MP3DSteps: rp.Scale.MP3DSteps,
			MultiprogRefs: rp.Scale.MultiprogRefs,
			CholeskyGridW: rp.Scale.CholeskyGridW, CholeskyGridH: rp.Scale.CholeskyGridH,
			Seed: rp.Scale.Seed,
		},
	}
	sim := wireSim{
		WriteBufferDepth: rp.Sim.WriteBufferDepth,
		BusOccupancy:     rp.Sim.BusOccupancy,
		SwitchPenalty:    rp.Sim.SwitchPenalty,
		MemBanks:         rp.Sim.MemBanks,
		MemBankOccupancy: rp.Sim.MemBankOccupancy,
		VictimEntries:    rp.Sim.VictimEntries,
		WarmupRefs:       rp.Sim.WarmupRefs,
		LegacyReplay:     rp.Sim.LegacyReplay,
		Verify:           rp.Verify,
	}
	if sim != (wireSim{}) {
		req.Sim = &sim
	}
	if !rp.Axes.IsZero() {
		a := rp.Axes
		req.Axes = &a
	}
	return json.Marshal(req)
}

// RunPoint posts the design point to a worker and decodes the result,
// retrying on other workers (with exponential backoff and per-worker
// cooldown) before giving up. Any terminal error means "the caller
// simulates locally"; context cancellation aborts immediately.
func (c *HTTPCluster) RunPoint(ctx context.Context, rp RemotePoint) (*Point, error) {
	body, err := c.encode(rp)
	if err != nil {
		return nil, err
	}
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			d := c.backoff << (attempt - 1)
			if max := c.backoff << 3; d > max {
				d = max
			}
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(d):
			}
		}
		url, ok := c.pick()
		if !ok {
			return nil, fmt.Errorf("sccsim: cluster has no workers")
		}
		pt, err := c.post(ctx, url, body)
		if err == nil {
			return pt, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		c.markDown(url)
		lastErr = fmt.Errorf("worker %s: %w", url, err)
	}
	return nil, fmt.Errorf("sccsim: remote point failed after %d attempts: %w", c.retries+1, lastErr)
}

// post runs one attempt against one worker.
func (c *HTTPCluster) post(ctx context.Context, url string, body []byte) (*Point, error) {
	actx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, url+"/v1/point", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, firstLine(raw))
	}
	return explorer.DecodePointEnvelope(raw)
}

// firstLine truncates an error body for diagnostics.
func firstLine(raw []byte) string {
	s := strings.TrimSpace(string(raw))
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 200 {
		s = s[:200]
	}
	return s
}
