// Run manifests and trace export: the facade-level wiring that turns a
// sweep into durable, machine-readable artifacts — a versioned JSON
// manifest (what ran, where, how fast, what came out) and a Chrome
// trace_event timeline openable in Perfetto or chrome://tracing.
package sccsim

import (
	"io"
	"log/slog"
	"runtime"
	"time"

	"sccsim/internal/explorer"
	"sccsim/internal/obs"
	"sccsim/internal/sim"
	"sccsim/internal/stats"
	"sccsim/internal/sysmodel"
)

// Metrics is a process-wide metrics registry (counters, gauges,
// histograms). A nil registry — the default everywhere — disables every
// metric site at the cost of one branch, so the simulator hot path pays
// nothing when observability is off. Expose a registry's Snapshot over
// expvar for live inspection (see cmd/sccexplore -debug-addr).
type Metrics = obs.Registry

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// SweepReport is the engine telemetry of one completed sweep: wall and
// per-point timings, worker utilization, trace-cache hit/miss counts.
type SweepReport = explorer.SweepReport

// RunManifest is the versioned, machine-readable record of a sweep; see
// WithManifest.
type RunManifest = obs.Manifest

// WithMetrics points the experiment at a metrics registry: the engine
// and simulator record counters and timing histograms into it. Nil (the
// default) disables all metric sites.
func WithMetrics(m *Metrics) Opt { return func(c *expCfg) { c.metrics = m } }

// WithLogger attaches a structured logger to the experiment: sweep
// start/finish and per-point completion become slog records on it, each
// stamped with the request ID when WithRequestID is also set. Nil (the
// default) disables every log site at the cost of one branch, matching
// the metrics registry's zero-overhead contract.
func WithLogger(l *slog.Logger) Opt { return func(c *expCfg) { c.logger = l } }

// WithRequestID tags the experiment with the request that caused it:
// the ID is appended to every WithLogger record and stamped into the
// run manifest (RunManifest.RequestID), making a sweep's artifacts
// joinable to the HTTP request — and its log lines — that produced
// them. Empty (the default) leaves both untouched.
func WithRequestID(id string) Opt { return func(c *expCfg) { c.requestID = id } }

// WithSweepReport installs a telemetry hook called once after a sweep
// completes successfully.
func WithSweepReport(fn func(SweepReport)) Opt { return func(c *expCfg) { c.reportFn = fn } }

// WithManifest makes SweepCtx write a versioned JSON run manifest
// (schema obs.ManifestVersion) to w after the sweep completes: host and
// toolchain, scale, per-point simulator statistics and wall times,
// engine utilization, trace-cache effectiveness, and — when WithMetrics
// is also set — a registry snapshot.
func WithManifest(w io.Writer) Opt { return func(c *expCfg) { c.manifestW = w } }

// WithTraceExport makes the experiment record simulator timeline events
// (SCC hits and misses, bank-conflict and write-buffer stalls, lock and
// bus activity) and write them to w as Chrome trace_event JSON when the
// run completes. Each design point becomes a trace process whose tracks
// are its processors and cluster buses; open the file in Perfetto or
// chrome://tracing. Event buffers are bounded per design point
// (obs.DefaultCollectorCap); overflow is dropped and counted in the
// export's process metadata.
func WithTraceExport(w io.Writer) Opt { return func(c *expCfg) { c.traceW = w } }

// newTraceSet builds the trace set for an experiment and the per-run
// tracer factory the engine calls once per design point.
func newTraceSet() (*obs.TraceSet, func(cfg Config) sim.Tracer) {
	ts := obs.NewTraceSet(sim.EventKindNames[:])
	return ts, func(cfg Config) sim.Tracer {
		col := ts.NewCollector(cfg.String(), 0)
		procs := cfg.Procs()
		for p := 0; p < procs; p++ {
			col.SetTrackName(int32(p), "cpu "+itoa(p))
		}
		for cl := 0; cl < cfg.Clusters; cl++ {
			col.SetTrackName(int32(procs+cl), "bus (cluster "+itoa(cl)+")")
		}
		return col
	}
}

// itoa is strconv.Itoa for the tiny values above, avoiding the import.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// buildManifest assembles the run manifest from a completed sweep.
// rep may be nil when the engine produced no report (it always does for
// SweepCtx, but the builder stays defensive).
func buildManifest(w Workload, c expCfg, g *Grid, rep *SweepReport) *RunManifest {
	m := &RunManifest{
		Version:   obs.ManifestVersion,
		Tool:      "sccsim",
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		Host: obs.Host{
			OS: runtime.GOOS, Arch: runtime.GOARCH,
			CPUs: runtime.NumCPU(), GoVersion: runtime.Version(),
		},
		Workload:    string(w),
		Backend:     string(c.backend),
		RequestID:   c.requestID,
		Scale:       c.scale,
		Parallelism: c.parallelism,
		Grid: obs.GridAxes{
			SCCBytes:        append([]int(nil), sysmodel.SCCSizes...),
			ProcsPerCluster: append([]int(nil), sysmodel.ProcsPerClusterSweep...),
		},
	}
	agg := obs.Aggregate{}
	i := 0
	for _, row := range g.Points {
		for _, pt := range row {
			r := pt.Result
			rec := obs.PointRecord{
				ProcsPerCluster: pt.Config.ProcsPerCluster,
				SCCBytes:        pt.Config.SCCBytes,
				Clusters:        pt.Config.Clusters,
				Backend:         string(c.backend),
				Cycles:          r.Cycles,
				Refs:            r.Refs,
				ReadMissRate:    r.ReadMissRate(),
				ReadStallCycles: r.TotalReadStall(),
				BankStallCycles: r.TotalBankStall(),
			}
			for _, v := range r.WriteStall {
				rec.WriteStallCycles += v
			}
			if r.Snoop != nil {
				rec.BusFetches = r.Snoop.Fetches
				rec.Invalidations = r.Snoop.Invalidations
			}
			// Job order is SCC-size-major, matching the grid rows.
			if rep != nil && i < len(rep.PointWall) {
				rec.WallNanos = rep.PointWall[i].Nanoseconds()
				rec.QueueWaitNanos = rep.QueueWait[i].Nanoseconds()
				if us := float64(rec.WallNanos) / 1e3; us > 0 {
					rec.SimCyclesPerMicro = float64(r.Cycles) / us
				}
			}
			m.Points = append(m.Points, rec)
			agg.Points++
			agg.Refs += rec.Refs
			agg.BusFetches += rec.BusFetches
			agg.Invalidations += rec.Invalidations
			if agg.BestCycles == 0 || rec.Cycles < agg.BestCycles {
				agg.BestCycles = rec.Cycles
			}
			if rec.Cycles > agg.WorstCycles {
				agg.WorstCycles = rec.Cycles
			}
			i++
		}
	}
	m.Aggregate = agg
	if rep != nil {
		walls := make([]float64, len(rep.PointWall))
		var queue time.Duration
		for i, d := range rep.PointWall {
			walls[i] = float64(d.Nanoseconds())
		}
		for _, d := range rep.QueueWait {
			queue += d
		}
		m.Sweep = obs.SweepStats{
			WallNanos:        rep.Wall.Nanoseconds(),
			Workers:          rep.Workers,
			Utilization:      rep.Utilization,
			QueueWaitNanos:   queue.Nanoseconds(),
			PointWallP50:     int64(stats.Percentile(walls, 50)),
			PointWallP95:     int64(stats.Percentile(walls, 95)),
			TraceCacheHits:   rep.TraceHits,
			TraceCacheMisses: rep.TraceMisses,
			TraceDiskHits:    rep.TraceDiskHits,
			TraceGenerated:   rep.TraceGenerated,
		}
	}
	if c.metrics != nil {
		m.Metrics = c.metrics.Snapshot()
	}
	return m
}
