// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates its experiment and, on the last
// iteration, prints the rows the paper reports (run with -v to see them).
//
// By default the benchmarks run at the paper's problem sizes. Set
// SCCSIM_BENCH_SCALE=quick for a ~20x faster pass with the same shapes.
package sccsim_test

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"sccsim"
)

func benchScale() sccsim.Scale {
	if os.Getenv("SCCSIM_BENCH_SCALE") == "quick" {
		return sccsim.QuickScale()
	}
	return sccsim.PaperScale()
}

// Sweeps are cached across benchmarks so -bench=. doesn't repeat the
// expensive grid runs for figures and tables that share a workload.
var (
	gridMu    sync.Mutex
	gridCache = map[sccsim.Workload]*sccsim.Grid{}
)

func sweep(b *testing.B, w sccsim.Workload) *sccsim.Grid {
	b.Helper()
	gridMu.Lock()
	defer gridMu.Unlock()
	if g, ok := gridCache[w]; ok {
		return g
	}
	g, err := sccsim.Sweep(w, benchScale())
	if err != nil {
		b.Fatal(err)
	}
	gridCache[w] = g
	return g
}

var (
	entriesOnce sync.Once
	entriesVal  []*sccsim.CostPerfEntry
	entriesErr  error
)

func costEntries(b *testing.B) []*sccsim.CostPerfEntry {
	b.Helper()
	entriesOnce.Do(func() {
		for _, w := range sccsim.AllWorkloads {
			e, err := sccsim.BuildCostPerfEntry(w, benchScale())
			if err != nil {
				entriesErr = err
				return
			}
			entriesVal = append(entriesVal, e)
		}
	})
	if entriesErr != nil {
		b.Fatal(entriesErr)
	}
	return entriesVal
}

// show prints the experiment output on the final iteration only.
func show(b *testing.B, i int, out string) {
	if i == b.N-1 {
		fmt.Printf("\n%s\n", out)
	}
}

// BenchmarkFig2BarnesHut regenerates Figure 2: Barnes-Hut normalized
// execution time across the processor-cache design space.
func BenchmarkFig2BarnesHut(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := sweep(b, sccsim.BarnesHut)
		show(b, i, sccsim.Figure(g, "Figure 2 — Barnes-Hut"))
	}
}

// BenchmarkTable3BarnesSpeedup regenerates Table 3: Barnes-Hut speedups
// relative to one processor per cluster.
func BenchmarkTable3BarnesSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := sweep(b, sccsim.BarnesHut)
		show(b, i, sccsim.SpeedupTable(g))
	}
}

// BenchmarkTable4MissRates regenerates Table 4: Barnes-Hut read miss
// rates for 8/64/256 KB SCCs (prefetching vs destructive interference).
func BenchmarkTable4MissRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := sweep(b, sccsim.BarnesHut)
		show(b, i, sccsim.MissRateTable(g))
	}
}

// BenchmarkFig3MP3D regenerates Figure 3: MP3D performance.
func BenchmarkFig3MP3D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := sweep(b, sccsim.MP3D)
		show(b, i, sccsim.Figure(g, "Figure 3 — MP3D"))
	}
}

// BenchmarkFig4Cholesky regenerates Figure 4: Cholesky performance.
func BenchmarkFig4Cholesky(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := sweep(b, sccsim.Cholesky)
		show(b, i, sccsim.Figure(g, "Figure 4 — Cholesky"))
	}
}

// BenchmarkFig5Multiprog regenerates Figure 5: multiprogramming
// performance on one cluster.
func BenchmarkFig5Multiprog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := sweep(b, sccsim.Multiprog)
		show(b, i, sccsim.Figure(g, "Figure 5 — multiprogramming"))
	}
}

// BenchmarkFig6MultiprogSpeedup regenerates Figure 6: multiprogramming
// self-relative speedups.
func BenchmarkFig6MultiprogSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := sweep(b, sccsim.Multiprog)
		show(b, i, sccsim.SpeedupFigure(g))
	}
}

// BenchmarkTable5LoadLatency regenerates Table 5: relative uniprocessor
// execution time for 2/3/4-cycle loads.
func BenchmarkTable5LoadLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		show(b, i, sccsim.RenderTable5())
	}
}

// BenchmarkTable6SingleChip regenerates Table 6: the single-chip cluster
// comparison (1P/64KB vs 2P/32KB).
func BenchmarkTable6SingleChip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc := sccsim.CompareSingleChip(costEntries(b))
		show(b, i, sccsim.RenderTable6(sc))
	}
}

// BenchmarkTable7MCM regenerates Table 7: the MCM comparison
// (4P/64KB x4 = 16 processors vs 8P/128KB x4 = 32 processors).
func BenchmarkTable7MCM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := sccsim.CompareMCM(costEntries(b))
		show(b, i, sccsim.RenderTable7(m))
	}
}

// BenchmarkFigs8to11Area regenerates the Section 4 chip designs and
// areas.
func BenchmarkFigs8to11Area(b *testing.B) {
	for i := 0; i < b.N; i++ {
		show(b, i, sccsim.RenderAreaReport())
	}
}

// BenchmarkInvalidationInvariance regenerates the Section 3.1.2 claim:
// invalidations do not grow with processors per cluster.
func BenchmarkInvalidationInvariance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := ""
		for _, w := range []sccsim.Workload{sccsim.BarnesHut, sccsim.MP3D, sccsim.Cholesky} {
			out += sccsim.InvalidationTable(sweep(b, w)) + "\n"
		}
		show(b, i, out)
	}
}

// BenchmarkSeedSensitivity measures run-to-run variation across workload
// seeds at the 2P/32KB design point — the error bars the paper's
// single-run methodology leaves implicit.
func BenchmarkSeedSensitivity(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		out := "seed sensitivity at 2 procs/cluster, 32 KB SCC (5 seeds):\n"
		for _, w := range []sccsim.Workload{sccsim.BarnesHut, sccsim.MP3D, sccsim.Cholesky} {
			sum, err := seedSensitivity(w, scale)
			if err != nil {
				b.Fatal(err)
			}
			out += fmt.Sprintf("  %-10s %s\n", w, sum)
		}
		show(b, i, out)
	}
}
