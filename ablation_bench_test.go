// Ablation benchmarks: the design choices DESIGN.md calls out, measured.
// Each benchmark varies one mechanism of the architecture or simulator
// and prints the effect (run with -v / look at stdout on the final
// iteration). These are not paper experiments; they quantify why the
// paper's design decisions matter.
package sccsim_test

import (
	"fmt"
	"testing"

	"sccsim"
)

// BenchmarkAblationSharedVsPrivate compares the paper's shared cluster
// cache against the Section 2.1 alternative (private per-processor
// caches with a fast intra-cluster bus) and a flat snoopy machine, at
// the 32-processor design point.
func BenchmarkAblationSharedVsPrivate(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		out := ""
		for _, w := range []sccsim.Workload{sccsim.BarnesHut, sccsim.MP3D, sccsim.Cholesky} {
			shared, err := sccsim.Run(w, 8, 128*1024, scale)
			if err != nil {
				b.Fatal(err)
			}
			private, err := sccsim.RunPrivateCaches(w, 8, 128*1024, scale)
			if err != nil {
				b.Fatal(err)
			}
			flat, err := sccsim.RunFlat(w, 32, 16*1024, scale)
			if err != nil {
				b.Fatal(err)
			}
			out += fmt.Sprintf("%-10s shared %d cy / %d inv; private %d cy / %d inv; flat %d cy / %d inv\n",
				w, shared.Result.Cycles, shared.Result.Snoop.Invalidations,
				private.Result.Cycles, private.Result.Snoop.Invalidations,
				flat.Result.Cycles, flat.Result.Snoop.Invalidations)
		}
		show(b, i, out)
	}
}

// BenchmarkAblationWriteBuffer varies the cluster write-buffer depth on
// MP3D (the most write-intensive workload).
func BenchmarkAblationWriteBuffer(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		out := "MP3D, 4x4P/64KB, write-buffer depth sweep:\n"
		for _, depth := range []int{1, 2, 4, 8, -1} {
			g, err := sccsim.SweepWithOptions(sccsim.MP3D, scale,
				sccsim.Options{WriteBufferDepth: depth})
			if err != nil {
				b.Fatal(err)
			}
			label := fmt.Sprintf("%d", depth)
			if depth < 0 {
				label = "inf"
			}
			pt := g.At(64*1024, 4)
			out += fmt.Sprintf("  depth %-3s  %12d cycles  write-stall %d\n",
				label, pt.Result.Cycles, sumU64(pt.Result.WriteStall))
		}
		show(b, i, out)
	}
}

// BenchmarkAblationBusOccupancy enables bus-bandwidth contention (the
// paper models pure latency) and shows where queueing would bite.
func BenchmarkAblationBusOccupancy(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		out := "Barnes-Hut, 8 procs/cluster, bus-occupancy sweep (cycles per transaction):\n"
		for _, occ := range []int{0, 2, 4, 8, 16} {
			pt, err := runWithOptions(sccsim.BarnesHut, 8, 32*1024, scale,
				sccsim.Options{BusOccupancy: occ})
			if err != nil {
				b.Fatal(err)
			}
			out += fmt.Sprintf("  occupancy %2d  %12d cycles  bus-wait %d\n",
				occ, pt.Result.Cycles, pt.Result.Snoop.BusWaitCycles)
		}
		show(b, i, out)
	}
}

// BenchmarkAblationAssociativity varies SCC associativity (the paper
// uses direct-mapped caches).
func BenchmarkAblationAssociativity(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		out := "Barnes-Hut, 4 clusters x 8P/32KB, associativity sweep:\n"
		for _, assoc := range []int{1, 2, 4} {
			pt, err := runAssoc(sccsim.BarnesHut, 8, 32*1024, assoc, scale)
			if err != nil {
				b.Fatal(err)
			}
			out += fmt.Sprintf("  %d-way  %12d cycles  %.2f%% read miss\n",
				assoc, pt.Result.Cycles, 100*pt.Result.ReadMissRate())
		}
		show(b, i, out)
	}
}

// BenchmarkAblationSupernodeWidth varies the Cholesky supernode cap,
// trading schedule parallelism against update locality.
func BenchmarkAblationSupernodeWidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := "Cholesky schedule vs supernode width cap (32 processors):\n"
		for _, width := range []int{2, 4, 8, 16, 32} {
			sp, ops := scheduleStats(b, width)
			out += fmt.Sprintf("  width <= %-2d  achieved concurrency %.2fx  (%d ops)\n", width, sp, ops)
		}
		show(b, i, out)
	}
}

// BenchmarkExtensionFrontier prices the whole design space with the
// generalized Section 4 rules and reports the cost/performance-optimal
// configuration per workload.
func BenchmarkExtensionFrontier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := ""
		for _, w := range []sccsim.Workload{sccsim.BarnesHut, sccsim.MP3D} {
			g := sweep(b, w)
			pts := sccsim.Frontier(g)
			out += sccsim.RenderFrontier(w, pts) + "\n"
		}
		show(b, i, out)
	}
}

// BenchmarkAblationMemoryBanks replaces the paper's flat 100-cycle
// memory with line-interleaved DRAM banks and shows when memory
// queueing would matter.
func BenchmarkAblationMemoryBanks(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		out := "Barnes-Hut, 8 procs/cluster, 32KB SCC, banked-memory sweep:\n"
		for _, banks := range []int{0, 2, 4, 8, 16} {
			opts := sccsim.Options{}
			if banks > 0 {
				opts.MemBanks = banks
				opts.MemBankOccupancy = 40
			}
			pt, err := runWithOptions(sccsim.BarnesHut, 8, 32*1024, scale, opts)
			if err != nil {
				b.Fatal(err)
			}
			label := "flat"
			if banks > 0 {
				label = fmt.Sprintf("%d banks", banks)
			}
			out += fmt.Sprintf("  %-8s  %12d cycles  bank-wait %d\n",
				label, pt.Result.Cycles, pt.Result.Snoop.MemBankWait)
		}
		show(b, i, out)
	}
}

// BenchmarkAblationSwitchPenalty applies the instruction-cache-derived
// context-switch penalty to the multiprogramming workload (the default
// experiments charge no switch cost, as the paper's scheduler model
// doesn't mention one).
func BenchmarkAblationSwitchPenalty(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		penalty, err := icachePenalty()
		if err != nil {
			b.Fatal(err)
		}
		out := fmt.Sprintf("multiprogramming with icache-derived switch penalty (%d cycles):\n", penalty)
		for _, ppc := range []int{1, 2} {
			base, err := sccsim.RunWithOptions(sccsim.Multiprog, ppc, 64*1024, scale, sccsim.Options{})
			if err != nil {
				b.Fatal(err)
			}
			with, err := sccsim.RunWithOptions(sccsim.Multiprog, ppc, 64*1024, scale,
				sccsim.Options{SwitchPenalty: penalty})
			if err != nil {
				b.Fatal(err)
			}
			out += fmt.Sprintf("  %dP: %d -> %d cycles (+%.1f%%), %d switches\n",
				ppc, base.Result.Cycles, with.Result.Cycles,
				100*(float64(with.Result.Cycles)/float64(base.Result.Cycles)-1),
				with.Result.Switches)
		}
		show(b, i, out)
	}
}

// BenchmarkAblationCellLocks runs MP3D with per-cell locks (the
// lock-based variant) against the baseline lock-free accumulation,
// showing the cost of fine-grained synchronization in a shared cache.
func BenchmarkAblationCellLocks(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		out := "MP3D cell-lock ablation (4 clusters x 4P, 64KB SCC):\n"
		for _, locks := range []bool{false, true} {
			pt, err := runMP3DLocks(scale, locks)
			if err != nil {
				b.Fatal(err)
			}
			label := "lock-free"
			if locks {
				label = "cell locks"
			}
			out += fmt.Sprintf("  %-10s %12d cycles  %8d lock spins  %d invalidations\n",
				label, pt.Result.Cycles, pt.Result.LockSpins, pt.Result.Snoop.Invalidations)
		}
		show(b, i, out)
	}
}

// BenchmarkAblationVictimBuffer attaches a small victim buffer to each
// SCC — the classic fix for a direct-mapped cache's conflict misses —
// and compares it against higher associativity.
func BenchmarkAblationVictimBuffer(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		out := "Barnes-Hut, 4 clusters x 8P/32KB, victim-buffer sweep:\n"
		for _, entries := range []int{0, 4, 8, 16} {
			pt, err := runWithOptions(sccsim.BarnesHut, 8, 32*1024, scale,
				sccsim.Options{VictimEntries: entries})
			if err != nil {
				b.Fatal(err)
			}
			hits := uint64(0)
			for _, st := range pt.Result.SCCBank {
				hits += st.VictimHits
			}
			out += fmt.Sprintf("  %2d entries  %12d cycles  %8d victim hits\n",
				entries, pt.Result.Cycles, hits)
		}
		show(b, i, out)
	}
}
