package sccsim_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"sccsim"
)

// manifestDoc decodes the schema-bearing parts of a run manifest.
type manifestDoc struct {
	Version  int            `json:"version"`
	Tool     string         `json:"tool"`
	Workload string         `json:"workload"`
	Host     map[string]any `json:"host"`
	Points   []struct {
		ProcsPerCluster int     `json:"procs_per_cluster"`
		SCCBytes        int     `json:"scc_bytes"`
		Cycles          uint64  `json:"cycles"`
		ReadMissRate    float64 `json:"read_miss_rate"`
		WallNanos       int64   `json:"wall_ns"`
	} `json:"points"`
	Aggregate struct {
		Points int `json:"points"`
	} `json:"aggregate"`
	Sweep struct {
		Workers          int    `json:"workers"`
		TraceCacheHits   uint64 `json:"trace_cache_hits"`
		TraceCacheMisses uint64 `json:"trace_cache_misses"`
	} `json:"sweep"`
	Metrics map[string]any `json:"metrics"`
}

// TestSweepWritesManifestAndTrace is the tentpole's end-to-end check: a
// Barnes-Hut sweep with full observability emits a valid versioned
// manifest and a valid Chrome trace whose per-track timestamps are
// monotonically non-decreasing.
func TestSweepWritesManifestAndTrace(t *testing.T) {
	sccsim.ResetTraceCache()
	var manifest, chrome bytes.Buffer
	reg := sccsim.NewMetrics()
	var rep *sccsim.SweepReport
	g, err := sccsim.SweepCtx(context.Background(), sccsim.BarnesHut,
		sccsim.WithScale(sccsim.QuickScale()),
		sccsim.WithParallelism(4),
		sccsim.WithMetrics(reg),
		sccsim.WithManifest(&manifest),
		sccsim.WithTraceExport(&chrome),
		sccsim.WithSweepReport(func(r sccsim.SweepReport) { rep = &r }),
	)
	if err != nil {
		t.Fatal(err)
	}
	total := len(g.Sizes()) * len(g.Procs())
	if rep == nil || rep.Points != total {
		t.Fatalf("SweepReport missing or wrong: %+v", rep)
	}

	// --- Manifest ---
	var doc manifestDoc
	if err := json.Unmarshal(manifest.Bytes(), &doc); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if doc.Version != 1 || doc.Tool != "sccsim" || doc.Workload != "barnes-hut" {
		t.Errorf("manifest header = version %d tool %q workload %q", doc.Version, doc.Tool, doc.Workload)
	}
	if doc.Aggregate.Points != total || len(doc.Points) != total {
		t.Errorf("manifest has %d/%d points, want %d", len(doc.Points), doc.Aggregate.Points, total)
	}
	for i, p := range doc.Points {
		if p.Cycles == 0 || p.WallNanos <= 0 {
			t.Errorf("point %d: cycles=%d wall_ns=%d", i, p.Cycles, p.WallNanos)
		}
	}
	// Barnes-Hut sweeps share one trace per total processor count: the
	// distinct (clusters * ppc) products of the grid.
	procCounts := map[int]bool{}
	for _, pt := range doc.Points {
		procCounts[pt.ProcsPerCluster] = true
	}
	if doc.Sweep.TraceCacheMisses != uint64(len(procCounts)) {
		t.Errorf("trace-cache misses = %d, want %d (one generation per processor count)",
			doc.Sweep.TraceCacheMisses, len(procCounts))
	}
	if doc.Sweep.TraceCacheHits != uint64(total-len(procCounts)) {
		t.Errorf("trace-cache hits = %d, want %d", doc.Sweep.TraceCacheHits, total-len(procCounts))
	}
	if doc.Metrics == nil {
		t.Error("manifest has no metrics snapshot despite WithMetrics")
	} else if _, ok := doc.Metrics["sim.read_miss_cycles"]; !ok {
		t.Error("metrics snapshot missing sim.read_miss_cycles histogram")
	}

	// --- Chrome trace ---
	var tr struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			TS  uint64 `json:"ts"`
			PID int    `json:"pid"`
			TID int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &tr); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	last := map[[2]int]uint64{}
	var timeline int
	pids := map[int]bool{}
	for _, e := range tr.TraceEvents {
		pids[e.PID] = true
		if e.Ph == "M" {
			continue
		}
		timeline++
		key := [2]int{e.PID, e.TID}
		if prev, ok := last[key]; ok && e.TS < prev {
			t.Fatalf("track (%d,%d): ts %d after %d — not monotonic", e.PID, e.TID, e.TS, prev)
		}
		last[key] = e.TS
	}
	if timeline == 0 {
		t.Error("chrome trace has no timeline events")
	}
	if len(pids) != total {
		t.Errorf("trace has %d processes, want one per design point (%d)", len(pids), total)
	}
}

// TestDoTraceExport: single-run trace export through the Do path.
func TestDoTraceExport(t *testing.T) {
	var chrome bytes.Buffer
	pt, err := sccsim.Do(context.Background(), sccsim.BarnesHut,
		sccsim.WithScale(sccsim.QuickScale()),
		sccsim.WithPoint(2, 32*1024),
		sccsim.WithTraceExport(&chrome),
	)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Result.Cycles == 0 {
		t.Fatal("empty result")
	}
	var tr struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &tr); err != nil {
		t.Fatalf("Do trace export is not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Error("Do trace export is empty")
	}
}

// TestObservabilityOffByDefault: without the With* options, a sweep must
// not emit anything — the disabled path is the default contract.
func TestObservabilityOffByDefault(t *testing.T) {
	pt, err := sccsim.Do(context.Background(), sccsim.MP3D,
		sccsim.WithScale(sccsim.QuickScale()))
	if err != nil {
		t.Fatal(err)
	}
	if pt.Result.Cycles == 0 {
		t.Fatal("empty result")
	}
}
