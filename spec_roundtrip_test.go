package sccsim

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestSpecRoundTripEveryField: the server-facing contract — a JSON
// document decoded into a Spec, converted to functional options and
// resolved, must produce the identical experiment configuration as
// composing those options by hand. The reflection sweep at the end
// forces this test to exercise *every* Spec field (a new field that is
// not added to the JSON document here fails the test), so the Spec
// bridge cannot silently drift from the options API.
func TestSpecRoundTripEveryField(t *testing.T) {
	const doc = `{
		"Scale": {
			"BarnesBodies": 128, "BarnesSteps": 2,
			"MP3DParticles": 500, "MP3DSteps": 1,
			"MultiprogRefs": 10000,
			"CholeskyGridW": 6, "CholeskyGridH": 6,
			"Seed": 7
		},
		"Sim": {"WriteBufferDepth": 2, "SwitchPenalty": 10},
		"Config": {"Clusters": 2, "ProcsPerCluster": 4, "SCCBytes": 65536, "LoadLatency": 3, "Assoc": 2},
		"ProcsPerCluster": 2,
		"SCCBytes": 32768,
		"Axes": {"assoc": 2, "repl": "random"},
		"Parallelism": 3,
		"TraceCacheDir": "/tmp/scc-trace-cache-test",
		"Verify": true,
		"Backend": "exact",
		"Cluster": {"workers": ["http://worker-a:1"], "retries": 1,
			"backoff_ms": 5, "timeout_ms": 1000, "cooldown_ms": 100}
	}`
	var spec Spec
	if err := json.Unmarshal([]byte(doc), &spec); err != nil {
		t.Fatal(err)
	}

	// The bridge applies the Config-wins-over-point rule at conversion
	// time, so the hand-composed equivalent omits WithPoint when a full
	// Config is present.
	want, err := resolve([]Opt{
		WithScale(*spec.Scale),
		WithSimOptions(*spec.Sim),
		WithConfig(*spec.Config),
		WithAxes(Axes{Assoc: 2, Repl: ReplRandom}),
		WithParallelism(3),
		WithTraceCache("/tmp/scc-trace-cache-test"),
		WithVerify(),
		WithCluster(NewHTTPCluster(*spec.Cluster)),
		WithBackend(BackendExact),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := resolve(spec.Opts())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Spec-resolved config differs from hand-composed options:\n got %+v\nwant %+v", got, want)
	}
	// The Config-wins-over-point rule holds through the bridge.
	if got.cfg == nil || got.cfg.Clusters != 2 || got.cfg.Assoc != 2 {
		t.Errorf("Config did not win over the point fields: %+v", got.cfg)
	}

	// Point-only variant: without Config, ProcsPerCluster/SCCBytes flow
	// into the resolved point.
	pSpec := spec
	pSpec.Config = nil
	pGot, err := resolve(pSpec.Opts())
	if err != nil {
		t.Fatal(err)
	}
	pWant, err := resolve([]Opt{
		WithScale(*spec.Scale), WithSimOptions(*spec.Sim),
		WithPoint(2, 32*1024), WithAxes(Axes{Assoc: 2, Repl: ReplRandom}),
		WithParallelism(3),
		WithTraceCache("/tmp/scc-trace-cache-test"), WithVerify(),
		WithCluster(NewHTTPCluster(*spec.Cluster)), WithBackend(BackendExact),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pGot, pWant) {
		t.Errorf("point-only Spec differs from hand-composed options:\n got %+v\nwant %+v", pGot, pWant)
	}
	if pGot.ppc != 2 || pGot.scc != 32*1024 {
		t.Errorf("point fields did not flow through: ppc=%d scc=%d", pGot.ppc, pGot.scc)
	}

	// Analytic variant: the backend field must reach the resolved
	// config (the options above that require exact are dropped).
	aSpec := Spec{Scale: spec.Scale, ProcsPerCluster: 2, SCCBytes: 32768,
		Parallelism: 3, TraceCacheDir: "/tmp/scc-trace-cache-test", Backend: "analytic"}
	aGot, err := resolve(aSpec.Opts())
	if err != nil {
		t.Fatal(err)
	}
	if aGot.backend != BackendAnalytic {
		t.Errorf("analytic spec resolved to backend %q", aGot.backend)
	}

	// Completeness: every Spec field must be non-zero in the document
	// above, so adding a field without wiring it here is caught.
	v := reflect.ValueOf(spec)
	for i := 0; i < v.NumField(); i++ {
		if v.Field(i).IsZero() {
			t.Errorf("Spec field %q is not exercised by this round-trip test; add it to the JSON document and the hand-composed options", v.Type().Field(i).Name)
		}
	}
}

// TestSpecValidate: table-driven validation hardening — unknown or
// contradictory data-borne specs fail with actionable messages, valid
// ones pass (the same check the HTTP service maps to 400s).
func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name    string
		spec    Spec
		wantErr string // "" means valid
	}{
		{"zero spec", Spec{}, ""},
		{"exact", Spec{Backend: "exact"}, ""},
		{"analytic", Spec{Backend: "analytic"}, ""},
		{"unknown backend", Spec{Backend: "quantum"}, "unknown backend"},
		{"unknown backend lists valid values", Spec{Backend: "quantum"}, "[exact analytic]"},
		{"verify on analytic", Spec{Backend: "analytic", Verify: true}, "exact backend"},
		{"sim options on analytic", Spec{Backend: "analytic", Sim: &Options{}}, "exact backend"},
		{"verify on exact", Spec{Backend: "exact", Verify: true}, ""},
		{"assoc on analytic", Spec{Backend: "analytic", Axes: &Axes{Assoc: 4}}, ""},
		{"random repl on analytic", Spec{Backend: "analytic", Axes: &Axes{Repl: ReplRandom}}, "exact backend"},
		{"hierarchy on analytic", Spec{Backend: "analytic", Axes: &Axes{Hierarchy: HierarchyHybrid}}, "exact backend"},
		{"line bytes on analytic", Spec{Backend: "analytic", Axes: &Axes{LineBytes: 32}}, "exact backend"},
		{"bad axes", Spec{Axes: &Axes{Assoc: 3}}, "divisible"},
		{"hierarchy on exact", Spec{Axes: &Axes{Hierarchy: HierarchyPrivate}}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Errorf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("Validate() = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}
