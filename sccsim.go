// Package sccsim reproduces "Exploring the Design Space for a
// Shared-Cache Multiprocessor" (Nayfeh & Olukotun, ISCA 1994): a
// cluster-based multiprocessor in which the processors of each cluster
// share a banked, multi-ported cluster cache (SCC), four clusters are
// kept coherent over a snoopy invalidation bus, and the design question
// is how to split silicon between processors and cache.
//
// The package is a facade over the internal substrates:
//
//   - a trace-driven multiprocessor memory-system simulator (banked SCCs
//     with bank-contention timing, write buffers, a snoopy
//     write-invalidate bus, per-processor virtual-time interleaving);
//   - real implementations of the paper's workloads that emit their own
//     reference streams: Barnes-Hut (octree N-body), MP3D (particle-in-
//     cell hypersonic flow), supernodal sparse Cholesky on a
//     BCSSTK14-like matrix, and an eight-application SPEC92-analogue
//     multiprogramming workload with a round-robin scheduler;
//   - the Section 4 implementation-cost model (chip areas, FO4 cycle
//     budget, pad counts) and the Section 5 pipeline load-latency model;
//   - sweep, comparison and reporting helpers that regenerate every
//     table and figure of the paper's evaluation.
//
// Quick start:
//
//	grid, err := sccsim.SweepCtx(context.Background(), sccsim.BarnesHut,
//		sccsim.WithScale(sccsim.QuickScale()))
//	if err != nil { ... }
//	fmt.Print(sccsim.SpeedupTable(grid)) // the paper's Table 3
//
// Sweeps run on a concurrent engine: independent design points are
// distributed over a bounded worker pool (WithParallelism; default
// GOMAXPROCS) that shares one immutable trace per processor count, and
// the assembled grid is byte-identical to a serial run.
package sccsim

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"time"

	"sccsim/internal/area"
	"sccsim/internal/costperf"
	"sccsim/internal/explorer"
	"sccsim/internal/obs"
	"sccsim/internal/pipeline"
	"sccsim/internal/report"
	"sccsim/internal/sim"
	"sccsim/internal/sysmodel"
	"sccsim/internal/trace"
	"sccsim/internal/verify"
	"sccsim/internal/workload/multiprog"
)

// Config is one point in the processor-cache design space: cluster count,
// processors per cluster, SCC size, associativity and load latency.
type Config = sysmodel.Config

// Options tunes simulator behaviour (write-buffer depth, bus-occupancy
// ablation, context-switch penalty). The zero value is the paper's model.
type Options = sim.Options

// Result is the outcome of one simulation run: execution time, per-
// processor stall breakdowns, cache statistics and coherence traffic.
type Result = sim.Result

// Workload names one of the paper's four benchmarks.
type Workload = explorer.Workload

// The paper's benchmarks.
const (
	BarnesHut = explorer.BarnesHut
	MP3D      = explorer.MP3D
	Cholesky  = explorer.Cholesky
	Multiprog = explorer.Multiprog
)

// AllWorkloads lists every benchmark.
var AllWorkloads = explorer.AllWorkloads

// Scale sets problem sizes; the zero value is the paper's configuration.
type Scale = explorer.Scale

// Grid is a full design-space sweep for one workload.
type Grid = explorer.Grid

// Point is one simulated design point.
type Point = explorer.Point

// PaperScale returns the paper's problem sizes (1024 bodies, 10,000
// particles / 5 steps, BCSSTK14-scale matrix, scaled multiprogramming
// reference budget).
func PaperScale() Scale { return Scale{Seed: 1} }

// QuickScale returns a ~20x reduced configuration for interactive use
// and tests.
func QuickScale() Scale { return explorer.QuickScale() }

// DefaultConfig returns the paper's base system for a processors-per-
// cluster value and SCC size: four clusters and the load latency implied
// by the Section 4 implementation.
func DefaultConfig(procsPerCluster, sccBytes int) Config {
	return sysmodel.Default(procsPerCluster, sccBytes)
}

// Axes bundles the architecture axes that widen the paper's design
// space beyond (size, processors): cache line size, associativity,
// replacement policy, and the shared/private/hybrid hierarchy. The zero
// value means the paper's defaults, and applying it changes nothing —
// sweeps without axes reproduce the historical grids byte for byte.
type Axes = sysmodel.Axes

// Replacement policies for the Axes.Repl / Config.Repl axis.
const (
	ReplLRU    = sysmodel.ReplLRU
	ReplRandom = sysmodel.ReplRandom
)

// Cache hierarchies for the Axes.Hierarchy / Config.Hierarchy axis:
// the paper's shared cluster cache, the private per-processor
// alternative (Section 2.1), and the hybrid (private L1s backed by the
// shared SCC).
const (
	HierarchyShared  = sysmodel.HierarchyShared
	HierarchyPrivate = sysmodel.HierarchyPrivate
	HierarchyHybrid  = sysmodel.HierarchyHybrid
)

// DefaultL1Bytes is the hybrid hierarchy's default per-processor L1
// size.
const DefaultL1Bytes = sysmodel.DefaultL1Bytes

// SCCSizes is the paper's cache-size sweep (4 KB - 512 KB).
var SCCSizes = sysmodel.SCCSizes

// ProcsPerClusterSweep is the paper's processor sweep (1, 2, 4, 8).
var ProcsPerClusterSweep = sysmodel.ProcsPerClusterSweep

// Progress is one progress event from the concurrent sweep engine,
// delivered after each completed design point.
type Progress = explorer.Progress

// expCfg is the resolved configuration of one Do/SweepCtx experiment.
type expCfg struct {
	scale Scale
	sim   Options
	// simSet records that WithSimOptions was used (the zero Options is
	// also the default, so presence needs its own bit — the analytic
	// backend rejects simulator tuning).
	simSet      bool
	backend     Backend
	cfg         *Config
	// axes overlays architecture-axis overrides (line size,
	// associativity, replacement, hierarchy) on every configuration the
	// experiment builds; the zero value changes nothing (see WithAxes).
	axes        sysmodel.Axes
	ppc, scc    int
	parallelism int
	progress    func(Progress)
	// searchProgress receives live stage updates from SearchCtx (see
	// WithSearchProgress); sweeps ignore it.
	searchProgress func(SearchProgress)
	// verify, when set, attaches the coherence invariant checker to
	// every simulation the experiment runs (see WithVerify).
	verify bool
	// traceCacheDir, when set, roots the persistent on-disk trace cache
	// (see WithTraceCache); traceStore, when set, supplies the cache as
	// an already-built store and wins over the directory form (see
	// WithTraceStore).
	traceCacheDir string
	traceStore    TraceStore
	// remote, when set, executes sweep design points on other nodes
	// (see WithCluster).
	remote Remote

	// Observability (see manifest.go): all nil by default — the
	// simulator and engine then skip every instrumentation site.
	metrics   *Metrics
	reportFn  func(SweepReport)
	manifestW io.Writer
	traceW    io.Writer
	// logger receives structured experiment logs; requestID correlates
	// this experiment's artifacts (log lines, manifest) with the HTTP
	// request that caused it (see WithLogger / WithRequestID).
	logger    *slog.Logger
	requestID string
}

// Opt configures an experiment run by Do, SweepCtx or
// BuildCostPerfEntryCtx.
type Opt func(*expCfg)

// WithScale sets the problem sizes (default: PaperScale).
func WithScale(s Scale) Opt { return func(c *expCfg) { c.scale = s } }

// WithSimOptions sets simulator options beyond the architectural
// configuration (write-buffer depth, ablations; default: the paper's
// model). Exact backend only.
func WithSimOptions(o Options) Opt { return func(c *expCfg) { c.sim, c.simSet = o, true } }

// WithConfig pins Do to an arbitrary design point (cluster count,
// associativity, load latency all free). Overrides WithPoint. Only
// parallel workloads accept an explicit Config.
func WithConfig(cfg Config) Opt { return func(c *expCfg) { c.cfg = &cfg } }

// WithPoint sets Do's design point on the paper's default system:
// four clusters (one for the multiprogramming workload) and the load
// latency implied by the Section 4 implementation. The default point is
// the paper's 1P/64KB baseline.
func WithPoint(procsPerCluster, sccBytes int) Opt {
	return func(c *expCfg) { c.ppc, c.scc = procsPerCluster, sccBytes }
}

// WithAxes overlays architecture-axis overrides — line size,
// associativity, replacement policy, hierarchy, hybrid L1 size — onto
// every design point the experiment builds, composing with WithPoint,
// WithConfig and sweeps alike. The zero Axes changes nothing, so
// default experiments stay byte-identical to the paper's grids. The
// analytic backend models associativity but rejects non-default line
// sizes, random replacement and non-shared hierarchies with an
// actionable error at experiment start.
func WithAxes(a Axes) Opt { return func(c *expCfg) { c.axes = a } }

// WithParallelism bounds the sweep engine's worker pool (default:
// GOMAXPROCS). Results are deterministic — byte-identical rendered
// tables — for every value.
func WithParallelism(n int) Opt { return func(c *expCfg) { c.parallelism = n } }

// WithProgress installs a progress hook, called serially after every
// completed design point.
func WithProgress(fn func(Progress)) Opt { return func(c *expCfg) { c.progress = fn } }

// WithTraceCache roots a persistent on-disk trace cache at dir
// (created if needed): sweeps consult it before running a workload
// generator and populate it after, keyed by workload, processor count,
// problem scale, seed, and the trace-format version — so repeated
// sweeps, including across processes, skip trace generation entirely.
// The sweep report's TraceDiskHits/TraceGenerated counters say how the
// cache performed. An unusable directory fails the experiment at start,
// before any simulation runs.
func WithTraceCache(dir string) Opt { return func(c *expCfg) { c.traceCacheDir = dir } }

// WithVerify attaches the coherence invariant checker (internal/verify)
// to every simulation the experiment runs: bus transactions are checked
// against the protocol invariants as they happen and the presence table
// and statistics are audited at end of run, turning any violation into
// an experiment error. Simulation results are unchanged (the checker is
// an observer); runs pay a modest overhead. Composes with
// WithSimOptions in either order.
func WithVerify() Opt { return func(c *expCfg) { c.verify = true } }

func resolve(opts []Opt) (expCfg, error) {
	c := expCfg{scale: PaperScale(), ppc: 1, scc: 64 * 1024, backend: BackendExact}
	for _, o := range opts {
		o(&c)
	}
	if c.backend == "" {
		c.backend = BackendExact
	}
	if err := c.validate(); err != nil {
		return c, err
	}
	// Applied after all opts so a later WithSimOptions cannot silently
	// drop an earlier WithVerify.
	if c.verify && c.sim.Verify == nil {
		c.sim.Verify = &verify.Options{}
	}
	// Stamp the request ID onto every log line the experiment emits, so
	// callers never have to remember to do it per site.
	if c.logger != nil && c.requestID != "" {
		c.logger = c.logger.With("request_id", c.requestID)
	}
	return c, nil
}

func (c expCfg) engine() (explorer.EngineOptions, error) {
	eng := explorer.EngineOptions{
		Parallelism: c.parallelism, Progress: c.progress,
		Report: c.reportFn, Metrics: c.metrics,
		Backend: c.backend, Logger: c.logger,
		Axes: c.axes,
	}
	switch {
	case c.traceStore != nil:
		eng.TraceCache = c.traceStore
	case c.traceCacheDir != "":
		dc, err := trace.NewDiskCache(c.traceCacheDir)
		if err != nil {
			return eng, err
		}
		eng.TraceCache = dc
	}
	return eng, nil
}

// Do evaluates one workload at one design point — the single entry
// point behind the legacy Run wrappers (see compat.go). The design
// point comes from WithConfig or WithPoint (default: the paper's
// 1P/64KB baseline); problem sizes from WithScale (default:
// PaperScale); the backend from WithBackend (default: the exact
// simulator). Workload traces are generated once per (workload,
// processors, scale) and cached, so repeated experiments over the same
// trace pay for generation once; the analytic backend likewise shares
// one reuse-distance profile per system shape.
func Do(ctx context.Context, w Workload, opts ...Opt) (*Point, error) {
	c, err := resolve(opts)
	if err != nil {
		return nil, err
	}
	if c.logger != nil {
		c.logger.Debug("point start",
			"workload", string(w), "backend", string(c.backend))
	}
	if c.backend == BackendAnalytic {
		if c.cfg != nil {
			return explorer.RunConfigAnalyticCtx(ctx, w, c.axes.Apply(*c.cfg), c.scale)
		}
		return explorer.RunPointAnalyticCtx(ctx, w, c.ppc, c.scc, c.axes, c.scale)
	}
	var ts *obs.TraceSet
	if c.traceW != nil {
		// Single-run trace: one collector, wired straight into the
		// simulator options.
		var newTracer func(Config) sim.Tracer
		ts, newTracer = newTraceSet()
		cfg := sysmodel.Default(c.ppc, c.scc)
		if c.cfg != nil {
			cfg = *c.cfg
		} else if w == Multiprog {
			cfg.Clusters = 1
		}
		c.sim.Tracer = newTracer(c.axes.Apply(cfg))
	}
	c.sim.Metrics = c.metrics
	// Single points flow through the same persistent trace store as
	// sweeps (WithTraceCache/WithTraceStore) — on a cluster worker,
	// that is what lets a point fetch a trace the fleet already has
	// instead of regenerating it.
	eng, err := c.engine()
	if err != nil {
		return nil, err
	}
	var pt *Point
	if c.cfg != nil {
		pt, err = explorer.RunConfigCtx(ctx, w, c.axes.Apply(*c.cfg), c.scale, c.sim, eng.TraceCache)
	} else {
		pts, perr := explorer.RunPointsCtx(ctx, w,
			[]explorer.PointSpec{{PPC: c.ppc, SCCBytes: c.scc}}, c.scale, c.sim,
			explorer.EngineOptions{Parallelism: 1, TraceCache: eng.TraceCache, Metrics: c.metrics, Logger: c.logger, Axes: c.axes})
		if perr != nil {
			return nil, perr
		}
		pt = pts[0]
	}
	if err != nil {
		return nil, err
	}
	if ts != nil {
		if werr := ts.WriteChrome(c.traceW); werr != nil {
			return nil, werr
		}
	}
	return pt, nil
}

// SweepCtx runs a workload over the full processor-cache design space
// (Figures 2-6 of the paper) on the concurrent sweep engine: the 32
// independent design points are distributed over a bounded worker pool
// (WithParallelism; default GOMAXPROCS) sharing one immutable trace per
// processor count, with deterministic grid assembly — the rendered
// tables are byte-identical to a serial run for any parallelism.
// Cancelling ctx stops the sweep; the first point error cancels the
// remaining points and is returned.
// When WithTraceExport, WithManifest or WithMetrics are set, the sweep
// additionally records per-run timelines (one bounded collector per
// design point) and writes the trace and the versioned run manifest
// after the sweep completes; see manifest.go.
// With WithBackend(BackendAnalytic) every point is predicted from a
// cached reuse-distance profile instead of simulated — same grid, same
// engine, same manifests (stamped with the backend), a fraction of the
// wall time.
func SweepCtx(ctx context.Context, w Workload, opts ...Opt) (*Grid, error) {
	c, err := resolve(opts)
	if err != nil {
		return nil, err
	}
	c.sim.Metrics = c.metrics
	eng, err := c.engine()
	if err != nil {
		return nil, err
	}
	if c.logger != nil {
		c.logger.Info("sweep start",
			"workload", string(w), "backend", string(c.backend))
		defer func(begin time.Time) {
			if err != nil {
				c.logger.Error("sweep failed", "workload", string(w),
					"backend", string(c.backend), "err", err.Error(),
					"dur_ms", time.Since(begin).Milliseconds())
			} else {
				c.logger.Info("sweep done", "workload", string(w),
					"backend", string(c.backend),
					"dur_ms", time.Since(begin).Milliseconds())
			}
		}(time.Now())
	}

	var ts *obs.TraceSet
	if c.traceW != nil {
		ts, eng.NewTracer = newTraceSet()
	}
	var rep *SweepReport
	if c.manifestW != nil || c.reportFn != nil {
		userReport := c.reportFn
		eng.Report = func(r SweepReport) {
			rep = &r
			if userReport != nil {
				userReport(r)
			}
		}
	}

	var g *Grid
	if c.backend == BackendAnalytic {
		g, err = explorer.SweepAnalyticCtx(ctx, w, c.scale, eng)
	} else {
		if c.remote != nil {
			// Cluster mode: offer every point to the remote executor,
			// simulate locally on failure (see WithCluster).
			eng.Remote = c.remoteFunc()
		}
		g, err = explorer.SweepCtx(ctx, w, c.scale, c.sim, eng)
	}
	if err != nil {
		return nil, err
	}
	if ts != nil {
		if err = ts.WriteChrome(c.traceW); err != nil {
			return nil, err
		}
	}
	if c.manifestW != nil {
		if err = obs.WriteManifest(c.manifestW, buildManifest(w, c, g, rep)); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// BuildCostPerfEntryCtx simulates a workload on the four Section 4
// implementations (1P/64KB, 2P/32KB, 4P/64KB, 8P/128KB) on the
// concurrent sweep engine. The cost/performance tables are the paper's
// headline numbers, so this path is exact-only: selecting the analytic
// backend is an error.
func BuildCostPerfEntryCtx(ctx context.Context, w Workload, opts ...Opt) (*CostPerfEntry, error) {
	c, err := resolve(opts)
	if err != nil {
		return nil, err
	}
	if c.backend == BackendAnalytic {
		return nil, fmt.Errorf("sccsim: cost/performance entries require the exact backend")
	}
	eng, err := c.engine()
	if err != nil {
		return nil, err
	}
	return costperf.BuildEntryCtx(ctx, w, c.scale, c.sim, eng)
}

// ResetTraceCache drops every cached workload trace, releasing memory
// after paper-scale experiments.
func ResetTraceCache() { explorer.ResetTraceCache() }

// RunPrivateCaches simulates a parallel workload on the paper's
// alternative cluster organization (Section 2.1): private per-processor
// caches (sccBytes/procsPerCluster each, same total capacity) kept
// coherent by snooping, with fast intra-cluster cache-to-cache
// transfers. Comparing with Run on the same arguments reproduces the
// shared-vs-private cluster cache argument.
func RunPrivateCaches(w Workload, procsPerCluster, sccBytes int, s Scale) (*Point, error) {
	cfg := sysmodel.Default(procsPerCluster, sccBytes)
	prog, err := explorer.GenerateParallel(w, cfg.Procs(), s)
	if err != nil {
		return nil, err
	}
	res, err := sim.RunPrivate(cfg, sim.Options{}, prog)
	if err != nil {
		return nil, err
	}
	return &Point{Config: cfg, Result: res}, nil
}

// RunFlat simulates a parallel workload on a conventional flat snoopy
// multiprocessor — every processor is its own "cluster" with a private
// cache of sccBytes/procsPerCluster on the single shared bus. This is
// the organization whose invalidation growth motivates clustering in
// Section 2.1. totalProcs must be at most 32.
func RunFlat(w Workload, totalProcs, cacheBytes int, s Scale) (*Point, error) {
	cfg := sysmodel.Config{
		Clusters: totalProcs, ProcsPerCluster: 1, SCCBytes: cacheBytes,
		LoadLatency: 2, Assoc: 1,
	}
	prog, err := explorer.GenerateParallel(w, totalProcs, s)
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(cfg, sim.Options{}, prog)
	if err != nil {
		return nil, err
	}
	return &Point{Config: cfg, Result: res}, nil
}

// GenerateTrace builds the raw per-processor reference trace for a
// parallel workload — the substrate a custom experiment can feed to the
// simulator directly.
func GenerateTrace(w Workload, procs int, s Scale) (*trace.Program, error) {
	return explorer.GenerateParallel(w, procs, s)
}

// AnalyzeTrace profiles a trace program (footprint, sharing, write
// fraction).
func AnalyzeTrace(p *trace.Program) *trace.Profile { return trace.Analyze(p) }

// MultiprogApps returns the names of the eight SPEC92-analogue processes.
func MultiprogApps() []string { return multiprog.Names() }

// CostPerfEntry holds one workload's latency-adjusted execution times
// across the four Section 4 cluster implementations.
type CostPerfEntry = costperf.Entry

// BuildCostPerfEntry simulates a workload on the four implementations
// (1P/64KB, 2P/32KB, 4P/64KB, 8P/128KB).
func BuildCostPerfEntry(w Workload, s Scale) (*CostPerfEntry, error) {
	return costperf.BuildEntry(w, s, sim.Options{})
}

// SingleChipComparison is the paper's Table 6 result.
type SingleChipComparison = costperf.SingleChip

// CompareSingleChip builds Table 6 from workload entries.
func CompareSingleChip(entries []*CostPerfEntry) *SingleChipComparison {
	return costperf.CompareSingleChip(entries)
}

// MCMComparison is the paper's Table 7 result.
type MCMComparison = costperf.MCM

// CompareMCM builds Table 7 from workload entries.
func CompareMCM(entries []*CostPerfEntry) *MCMComparison {
	return costperf.CompareMCM(entries)
}

// FrontierPoint is one priced design point of the cost/performance
// frontier extension.
type FrontierPoint = costperf.FrontierPoint

// Frontier prices every point of a swept grid with the generalized
// Section 4 implementation rules (area, load latency, feasibility).
func Frontier(g *Grid) []FrontierPoint { return costperf.Frontier(g) }

// BestDesign returns the feasible frontier point with the best
// cost/performance, or nil.
func BestDesign(points []FrontierPoint) *FrontierPoint { return costperf.Best(points) }

// ParetoFront returns the non-dominated feasible frontier points.
func ParetoFront(points []FrontierPoint) []FrontierPoint { return costperf.ParetoFront(points) }

// ChipDesign describes one Section 4 cluster implementation.
type ChipDesign = area.ChipDesign

// ChipDesigns returns the paper's four cluster implementations keyed by
// processors per cluster.
func ChipDesigns() map[int]ChipDesign { return area.Designs() }

// PipelineProfile is a benchmark instruction mix for the load-latency
// model.
type PipelineProfile = pipeline.Profile

// LoadLatencyFactor returns the Table 5 relative-execution-time factor
// for a workload at a load latency of 2, 3 or 4 cycles.
func LoadLatencyFactor(w Workload, loadLatency int) float64 {
	return pipeline.RelTimeFor(string(w), loadLatency)
}

// Rendering helpers (text tables and ASCII figures).
var (
	// SpeedupTable renders a grid as the paper's Table 3.
	SpeedupTable = report.SpeedupTable
	// MissRateTable renders a grid as the paper's Table 4.
	MissRateTable = report.MissRateTable
	// Figure renders a grid as the paper's Figures 2-5.
	Figure = report.Figure
	// SpeedupFigure renders a grid as the paper's Figure 6.
	SpeedupFigure = report.SpeedupFigure
	// InvalidationTable shows coherence-traffic invariance.
	InvalidationTable = report.InvalidationTable
	// RenderTable5 renders the pipeline factors.
	RenderTable5 = report.Table5
	// RenderTable6 renders the single-chip comparison.
	RenderTable6 = report.Table6
	// RenderTable7 renders the MCM comparison.
	RenderTable7 = report.Table7
	// RenderAreaReport renders the Section 4 chip designs.
	RenderAreaReport = report.AreaReport
	// RenderFrontier renders the priced design space.
	RenderFrontier = report.FrontierTable
	// GridCSV renders a grid as CSV for external tooling.
	GridCSV = report.GridCSV
)
