// Multiprogramming study: reproduce the paper's compute-server analysis
// (Figures 5 and 6) — eight independent SPEC92-analogue processes
// round-robin scheduled on one cluster, showing how shared-cache
// interference degrades throughput and how larger SCCs recover it.
package main

import (
	"flag"
	"fmt"
	"log"

	"sccsim"
)

func main() {
	paper := flag.Bool("paper", false, "run at the full reference budget (slower)")
	flag.Parse()

	scale := sccsim.QuickScale()
	if *paper {
		scale = sccsim.PaperScale()
	}

	fmt.Printf("processes: %v\n\n", sccsim.MultiprogApps())

	grid, err := sccsim.Sweep(sccsim.Multiprog, scale)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(sccsim.Figure(grid, "Figure 5 — multiprogramming, one cluster"))
	fmt.Println(sccsim.SpeedupFigure(grid))

	// The paper's headline: the 8-processor cluster's execution time
	// improves by a large factor from the smallest to the largest SCC
	// because interference conflicts disappear.
	t4 := grid.At(4*1024, 8).Result.Cycles
	t512 := grid.At(512*1024, 8).Result.Cycles
	fmt.Printf("8 procs/cluster: 4 KB is %.1fx slower than 512 KB (paper: ~4.1x)\n",
		float64(t4)/float64(t512))
}
