// Cluster-organization study: the paper's Section 2.1 design argument,
// measured. Three ways to organize four clusters of processors:
//
//  1. shared cluster caches (the paper's SCC architecture),
//  2. private per-processor caches with a fast intra-cluster bus
//     (the alternative the paper describes and argues against),
//  3. a conventional flat snoopy bus (every cache snoops every write).
//
// The shared cache keeps a single copy of intra-cluster shared data —
// no coherence traffic inside a cluster, and the whole capacity is
// available to any one processor. Private caches duplicate shared lines
// and ping-pong written ones; the flat machine additionally puts every
// processor's invalidations on one bus.
package main

import (
	"flag"
	"fmt"
	"log"

	"sccsim"
)

func main() {
	paper := flag.Bool("paper", false, "run at the paper's problem sizes (slower)")
	flag.Parse()

	scale := sccsim.QuickScale()
	if *paper {
		scale = sccsim.PaperScale()
	}

	const ppc, scc = 8, 128 * 1024 // the 32-processor MCM design point

	for _, w := range []sccsim.Workload{sccsim.BarnesHut, sccsim.MP3D} {
		shared, err := sccsim.Run(w, ppc, scc, scale)
		if err != nil {
			log.Fatal(err)
		}
		private, err := sccsim.RunPrivateCaches(w, ppc, scc, scale)
		if err != nil {
			log.Fatal(err)
		}
		flat, err := sccsim.RunFlat(w, 4*ppc, scc/ppc, scale)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%s, 32 processors, %d KB cache per cluster:\n", w, scc/1024)
		show := func(name string, p *sccsim.Point) {
			fmt.Printf("  %-28s %12d cycles  %8d invalidations  %.2f%% read miss\n",
				name, p.Result.Cycles, p.Result.Snoop.Invalidations, 100*p.Result.ReadMissRate())
		}
		show("shared cluster caches", shared)
		show("private caches per processor", private)
		show("flat snoopy bus", flat)
		fmt.Printf("  invalidation ratio: private/shared = %.1fx, flat/shared = %.1fx\n\n",
			float64(private.Result.Snoop.Invalidations)/float64(max(1, shared.Result.Snoop.Invalidations)),
			float64(flat.Result.Snoop.Invalidations)/float64(max(1, shared.Result.Snoop.Invalidations)))
	}
}
