// Quickstart: simulate one design point — four clusters of two
// processors sharing a 32 KB cluster cache — running Barnes-Hut, and
// print where the time goes.
package main

import (
	"fmt"
	"log"

	"sccsim"
)

func main() {
	// A reduced problem size so this runs in a couple of seconds; use
	// sccsim.PaperScale() for the full 1024-body configuration.
	scale := sccsim.QuickScale()

	pt, err := sccsim.Run(sccsim.BarnesHut, 2 /* procs per cluster */, 32*1024, scale)
	if err != nil {
		log.Fatal(err)
	}
	res := pt.Result

	fmt.Printf("config            %v\n", pt.Config)
	fmt.Printf("execution time    %d cycles\n", res.Cycles)
	fmt.Printf("references        %d\n", res.Refs)
	fmt.Printf("SCC read miss     %.2f%%\n", 100*res.ReadMissRate())
	fmt.Printf("invalidations     %d\n", res.Snoop.Invalidations)
	fmt.Printf("read-miss stall   %d cycles (all processors)\n", res.TotalReadStall())
	fmt.Printf("bank-wait stall   %d cycles (all processors)\n", res.TotalBankStall())

	// The load latency of this implementation costs extra pipeline time
	// on top of the memory-system simulation (the paper's Table 5).
	factor := sccsim.LoadLatencyFactor(sccsim.BarnesHut, pt.Config.LoadLatency)
	fmt.Printf("latency-adjusted  %.0f cycles (x%.2f for %d-cycle loads)\n",
		float64(res.Cycles)*factor, factor, pt.Config.LoadLatency)
}
