// Cost/performance study: reproduce the paper's Section 5 — should the
// next chip hold one processor with a big cache or two processors with a
// smaller shared cache? (Tables 6 and 7, using the Section 4 area model
// and the Table 5 load-latency factors.)
package main

import (
	"flag"
	"fmt"
	"log"

	"sccsim"
)

func main() {
	paper := flag.Bool("paper", false, "run at the paper's problem sizes (slower)")
	flag.Parse()

	scale := sccsim.QuickScale()
	if *paper {
		scale = sccsim.PaperScale()
	}

	fmt.Println(sccsim.RenderAreaReport())
	fmt.Println(sccsim.RenderTable5())

	var entries []*sccsim.CostPerfEntry
	for _, w := range sccsim.AllWorkloads {
		e, err := sccsim.BuildCostPerfEntry(w, scale)
		if err != nil {
			log.Fatal(err)
		}
		entries = append(entries, e)
	}

	sc := sccsim.CompareSingleChip(entries)
	fmt.Println(sccsim.RenderTable6(sc))
	fmt.Println(sccsim.RenderTable7(sccsim.CompareMCM(entries)))

	fmt.Printf("conclusion: two processors with a 32 KB SCC are %.0f%% faster than one\n", 100*(sc.MeanSpeedup-1))
	fmt.Printf("processor with a 64 KB cache, on %.0f%% more silicon: cost/performance %+.0f%%.\n",
		100*(sc.AreaRatio-1), 100*sc.CostPerfGain)
}
