// Solver: the sparse Cholesky substrate used end-to-end as a real
// numeric solver — build the BCSSTK14-like stiffness matrix, analyse it
// (elimination tree, fill-in, supernodes, schedule concurrency), factor
// it numerically, and solve a system, checking the residual.
//
// This is the same code path the Cholesky workload traces; running it
// numerically demonstrates that the workload's reference streams come
// from a working factorization, not a synthetic approximation of one.
package main

import (
	"fmt"
	"log"
	"math"

	"sccsim/internal/sparse"
	"sccsim/internal/synth"
)

func main() {
	a := sparse.GenerateBCSSTK14Like(sparse.BCSSTK14Params{Seed: 1})
	parent := sparse.EliminationTree(a)
	l := sparse.SymbolicFactor(a, parent)
	sns, colSn := sparse.FindSupernodes(l, 0)

	fmt.Printf("matrix: n=%d, nnz(A)=%d (lower), nnz(L)=%d, fill %.1fx\n",
		a.N, a.Nnz(), l.Nnz(), float64(l.Nnz())/float64(a.Nnz()))
	fmt.Printf("factorization: %d flops, etree parallelism %.1fx, %d supernodes (mean width %.1f)\n",
		sparse.FactorFlops(l), sparse.Parallelism(l, parent),
		len(sns), float64(l.N)/float64(len(sns)))

	ops, succ, indeg := sparse.BuildOps(l, sns, colSn)
	for _, procs := range []int{1, 4, 8, 32} {
		sched, err := sparse.ListSchedule(ops, succ, indeg, len(sns), procs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fan-out schedule on %2d processors: concurrency %.2fx (%d ops)\n",
			procs, sched.Speedup(), sched.Ops)
	}

	// Numeric factorization and solve.
	m := sparse.NewSPD(a, 1)
	f, err := sparse.Factorize(m, l)
	if err != nil {
		log.Fatal(err)
	}
	rng := synth.NewRNG(7)
	want := make([]float64, a.N)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b := m.MulVec(want)
	got := f.Solve(b)

	worst := 0.0
	for i := range got {
		if d := math.Abs(got[i] - want[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("numeric check: A x = b solved, max |x - x*| = %.2e\n", worst)
}
