// N-body study: reproduce the paper's Barnes-Hut analysis (Figure 2,
// Tables 3 and 4) — how shared cluster caches turn neighbouring
// processors' tree traversals into mutual prefetching, and where
// destructive interference takes over.
package main

import (
	"flag"
	"fmt"
	"log"

	"sccsim"
)

func main() {
	paper := flag.Bool("paper", false, "run at the paper's 1024-body scale (slower)")
	flag.Parse()

	scale := sccsim.QuickScale()
	if *paper {
		scale = sccsim.PaperScale()
	}

	grid, err := sccsim.Sweep(sccsim.BarnesHut, scale)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(sccsim.Figure(grid, "Figure 2 — Barnes-Hut"))
	fmt.Println(sccsim.SpeedupTable(grid))
	fmt.Println(sccsim.MissRateTable(grid))
	fmt.Println(sccsim.InvalidationTable(grid))

	// The paper's two Barnes-Hut observations, extracted from the grid:
	s4 := grid.Speedup(4*1024, 8)
	s512 := grid.Speedup(512*1024, 8)
	fmt.Printf("8 procs/cluster speedup: %.1fx at 4 KB vs %.1fx at 512 KB\n", s4, s512)
	m1 := grid.At(8*1024, 1).Result.ReadMissRate()
	m8 := grid.At(8*1024, 8).Result.ReadMissRate()
	fmt.Printf("8 KB SCC read miss rate: %.1f%% at 1 proc -> %.1f%% at 8 procs (interference)\n",
		100*m1, 100*m8)
}
