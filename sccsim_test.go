package sccsim_test

import (
	"strings"
	"testing"

	"sccsim"
)

func TestDefaultConfig(t *testing.T) {
	cfg := sccsim.DefaultConfig(2, 32*1024)
	if cfg.Clusters != 4 || cfg.LoadLatency != 3 {
		t.Errorf("DefaultConfig = %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSweepAndRenderPublicAPI(t *testing.T) {
	grid, err := sccsim.Sweep(sccsim.BarnesHut, sccsim.QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if out := sccsim.SpeedupTable(grid); !strings.Contains(out, "barnes-hut") {
		t.Errorf("SpeedupTable output:\n%s", out)
	}
	if grid.Speedup(512*1024, 8) <= 1 {
		t.Error("no speedup at 8 procs/cluster, 512KB")
	}
}

func TestRunPublicAPI(t *testing.T) {
	pt, err := sccsim.Run(sccsim.MP3D, 4, 64*1024, sccsim.QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if pt.Result.Cycles == 0 || pt.Result.Refs == 0 {
		t.Errorf("empty result: %+v", pt.Result)
	}
}

func TestTraceAPI(t *testing.T) {
	prog, err := sccsim.GenerateTrace(sccsim.Cholesky, 4, sccsim.QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	prof := sccsim.AnalyzeTrace(prog)
	if prof.RefTotal() == 0 || prof.FootprintLines == 0 {
		t.Errorf("empty profile: %+v", prof)
	}
}

func TestChipDesignsAPI(t *testing.T) {
	designs := sccsim.ChipDesigns()
	if len(designs) != 4 {
		t.Fatalf("got %d designs", len(designs))
	}
	if a := designs[2].ChipArea(); a < 270 || a > 290 {
		t.Errorf("2P chip area = %.0f, paper 279", a)
	}
}

func TestLoadLatencyFactorAPI(t *testing.T) {
	if f := sccsim.LoadLatencyFactor(sccsim.BarnesHut, 2); f != 1.0 {
		t.Errorf("factor(2) = %v", f)
	}
	if f := sccsim.LoadLatencyFactor(sccsim.Cholesky, 4); f < 1.1 {
		t.Errorf("factor(4) = %v, want > 1.1", f)
	}
}

func TestMultiprogAppsAPI(t *testing.T) {
	apps := sccsim.MultiprogApps()
	if len(apps) != 8 {
		t.Errorf("got %d apps, want 8 (Table 2)", len(apps))
	}
}

func TestRenderStaticTables(t *testing.T) {
	if !strings.Contains(sccsim.RenderTable5(), "1.00") {
		t.Error("Table 5 render")
	}
	if !strings.Contains(sccsim.RenderAreaReport(), "204") {
		t.Error("area report render")
	}
}
