// Backend selection: every experiment entry point (Do, SweepCtx, the
// Spec bridge, the HTTP service) runs on one of two result-producing
// strategies behind the same API — the exact cycle simulator or the
// analytic reuse-distance model. The backend is part of an
// experiment's identity: it is threaded through engine reports, run
// manifests and the serve layer's content keys, so a result is never
// ambiguous about how it was produced.
package sccsim

import (
	"fmt"

	"sccsim/internal/explorer"
	"sccsim/internal/sysmodel"
)

// Backend names a result-producing strategy. See the constants for the
// trade-off; ParseBackend validates untrusted names.
type Backend = explorer.Backend

// The two backends trade fidelity for speed; both produce the same
// result shapes (grids, points, manifests), stamped with which backend
// made them.
const (
	// BackendExact runs the trace-driven cycle simulator — the ground
	// truth behind every paper table, with full contention, coherence
	// and scheduling detail. This is the default.
	BackendExact = explorer.BackendExact
	// BackendAnalytic predicts each design point from a reuse-distance
	// profile of the workload trace (internal/rdmodel): one profile
	// pass per processor count answers every cache size, making a full
	// grid orders of magnitude faster than exact simulation. Its miss
	// ratios and cycle estimates carry a measured accuracy contract —
	// see CrossValidate and DefaultCrossBounds — and its results leave
	// contention/coherence statistics (bank stalls, snoop traffic, lock
	// spins) at zero.
	BackendAnalytic = explorer.BackendAnalytic
)

// AllBackends lists every backend.
var AllBackends = explorer.AllBackends

// ParseBackend maps a backend name ("exact", "analytic") to its
// Backend, validating it against AllBackends — the boundary check for
// callers that receive backend names as strings.
func ParseBackend(name string) (Backend, error) {
	return explorer.ParseBackend(name)
}

// WithBackend selects the experiment's backend (default BackendExact).
// The analytic backend evaluates the paper's default system model only:
// it composes with the design-point, scale, parallelism, trace-cache
// and observability options, but rejects options that only the
// simulator can honor — WithSimOptions, WithVerify and WithTraceExport
// fail the experiment at start with a descriptive error.
func WithBackend(b Backend) Opt { return func(c *expCfg) { c.backend = b } }

// validate checks the resolved configuration for contradictions,
// returning the first actionable error. It runs after every option has
// been applied, so option order never changes the outcome.
func (c *expCfg) validate() error {
	switch c.backend {
	case "", BackendExact, BackendAnalytic:
	default:
		_, err := explorer.ParseBackend(string(c.backend))
		return err
	}
	if !c.axes.IsZero() {
		if err := c.axes.Validate(); err != nil {
			return err
		}
	}
	if c.backend == BackendAnalytic {
		if c.verify {
			return fmt.Errorf("sccsim: WithVerify checks simulator coherence invariants and requires the exact backend")
		}
		if c.simSet {
			return fmt.Errorf("sccsim: WithSimOptions tunes the cycle simulator and requires the exact backend")
		}
		if c.traceW != nil {
			return fmt.Errorf("sccsim: WithTraceExport records simulator timelines and requires the exact backend")
		}
		// Reject-or-model: associativity is modeled; the remaining axes
		// are not, and fail here — the serve layer's 400 path — rather
		// than mid-run.
		base := sysmodel.Default(1, 64*1024)
		if c.cfg != nil {
			base = *c.cfg
		}
		if err := explorer.AnalyticSupports(c.axes.Apply(base)); err != nil {
			return err
		}
	}
	return nil
}
