// Cross-validation driver: the analytic backend ships with a measured
// accuracy contract, and this file is where it is measured. Running
// the same full design-space grid on both backends and comparing every
// point is the oracle pattern the verify subsystem already uses for
// the simulator itself (internal/verify keeps the comparison logic,
// simulator-free); the per-workload default bounds below are the
// contract `make verify-analytic` and the cross-validation tests
// assert.
package sccsim

import (
	"context"

	"sccsim/internal/verify"
)

// CrossPoint pairs one design point's exact and analytic results.
type CrossPoint = verify.CrossPoint

// CrossBounds is a workload's analytic accuracy contract; see
// DefaultCrossBounds for the measured defaults.
type CrossBounds = verify.CrossBounds

// CrossReport is a completed analytic-vs-exact comparison over a full
// grid. Check asserts it against bounds; String renders the CLI table.
type CrossReport = verify.CrossReport

// DefaultCrossBounds returns the per-workload accuracy contract of the
// analytic backend: ceilings on the absolute and relative read
// miss-ratio error and on the cycle-estimate error, per design point
// and grid-wide, calibrated against full-grid quick-scale
// cross-validations with roughly 2x headroom over the observed worst
// case. Regressions in the reuse-distance model trip these bounds in
// `make verify-analytic` and the cross-validation tests.
//
// The bounds reflect what the model does not capture: coherence
// invalidation misses and lock-spin re-reads (the single worst point
// everywhere is 8 processors on the smallest 4KB cache, where MP3D's
// exact miss ratio jumps to 0.76 against an analytic 0.52), and
// bank/bus contention in the cycle estimate. The per-point ceilings
// are dominated by that 8P/4KB corner; the mean bounds show the model
// is far tighter across the rest of the grid (observed means are
// 0.013-0.027 everywhere).
func DefaultCrossBounds(w Workload) CrossBounds {
	switch w {
	case MP3D:
		return CrossBounds{MaxAbsErr: 0.35, MeanAbsErr: 0.04, MaxRelErr: 0.50, MaxCycleRelErr: 0.50}
	case Cholesky:
		return CrossBounds{MaxAbsErr: 0.12, MeanAbsErr: 0.05, MaxRelErr: 0.25, MaxCycleRelErr: 0.20}
	case Multiprog:
		return CrossBounds{MaxAbsErr: 0.20, MeanAbsErr: 0.03, MaxRelErr: 0.45, MaxCycleRelErr: 0.40}
	default: // BarnesHut: miss ratios sit near RelFloor, so the
		// relative bound is loose by construction; the absolute one is
		// the meaningful ceiling.
		return CrossBounds{MaxAbsErr: 0.08, MeanAbsErr: 0.03, MaxRelErr: 1.50, MaxCycleRelErr: 1.00}
	}
}

// CrossValidate runs the full design-space grid on both backends and
// pairs the results point by point: the report carries each point's
// exact and analytic read miss ratios and cycle counts with their
// error summary. Assert it with Check (see DefaultCrossBounds); render
// it with String. The options apply to both sweeps — scale,
// parallelism, trace cache and observability compose; options only the
// exact backend honors (WithSimOptions, WithVerify, WithTraceExport)
// are rejected because the comparison must run both backends on the
// paper's default model.
func CrossValidate(ctx context.Context, w Workload, opts ...Opt) (*CrossReport, error) {
	// Clamp capacity so the two appends cannot share a backing array.
	opts = opts[:len(opts):len(opts)]
	if c, err := resolve(append(opts, WithBackend(BackendAnalytic))); err != nil {
		// Surface analytic-incompatible options before paying for the
		// exact sweep; c is unused beyond validation.
		_ = c
		return nil, err
	}
	exact, err := SweepCtx(ctx, w, append(opts, WithBackend(BackendExact))...)
	if err != nil {
		return nil, err
	}
	analytic, err := SweepCtx(ctx, w, append(opts, WithBackend(BackendAnalytic))...)
	if err != nil {
		return nil, err
	}
	var pts []CrossPoint
	for si, row := range exact.Points {
		for pi, ep := range row {
			ap := analytic.Points[si][pi]
			pts = append(pts, CrossPoint{
				Clusters:        ep.Config.Clusters,
				ProcsPerCluster: ep.Config.ProcsPerCluster,
				SCCBytes:        ep.Config.SCCBytes,

				ExactMissRate:    ep.Result.ReadMissRate(),
				AnalyticMissRate: ap.Result.ReadMissRate(),
				ExactCycles:      ep.Result.Cycles,
				AnalyticCycles:   ap.Result.Cycles,
			})
		}
	}
	rep := verify.NewCrossReport(string(w), pts)
	publishCrossMetrics(opts, w, rep)
	return rep, nil
}

// publishCrossMetrics exports a cross-validation's error summary as
// float gauges (crossval.<workload>.*) when the caller attached a
// metrics registry — the analytic backend's accuracy contract as a live
// scrapeable surface rather than a test-only assertion.
func publishCrossMetrics(opts []Opt, w Workload, rep *CrossReport) {
	c, err := resolve(opts)
	if err != nil || c.metrics == nil {
		return
	}
	name := "crossval." + string(w)
	c.metrics.FGauge(name + ".max_abs_err").Set(rep.MaxAbsErr)
	c.metrics.FGauge(name + ".mean_abs_err").Set(rep.MeanAbsErr)
	c.metrics.FGauge(name + ".max_rel_err").Set(rep.MaxRelErr)
	c.metrics.FGauge(name + ".max_cycle_rel_err").Set(rep.MaxCycleRelErr)
	c.metrics.Counter("crossval.runs").Inc()
}
