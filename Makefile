# Convenience targets for the sccsim reproduction.

GO ?= go

.PHONY: all build test vet quick bench bench-quick experiments cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Skip the paper-scale headline run (a few minutes).
quick:
	$(GO) test -short ./...

# Regenerate every paper table/figure at paper scale.
bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

bench-quick:
	SCCSIM_BENCH_SCALE=quick $(GO) test -run xxx -bench . -benchtime 1x ./...

# All experiments via the CLI.
experiments:
	$(GO) run ./cmd/sccexplore -exp all

cover:
	$(GO) test -short -cover ./...

clean:
	$(GO) clean ./...
