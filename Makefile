# Convenience targets for the sccsim reproduction.

GO ?= go

.PHONY: all check build test test-race vet quick bench bench-quick experiments cover clean

all: build vet test

# Tier-1 gate: compile, vet, full test suite.
check: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Skip the paper-scale headline run (a few minutes).
quick:
	$(GO) test -short ./...

# Race-enabled run of the concurrency-bearing packages at QuickScale:
# the shared-trace contract (internal/sim) and the sweep engine
# (internal/explorer, internal/costperf, plus the facade API).
test-race:
	$(GO) test -race -short ./internal/sim/... ./internal/explorer/... ./internal/costperf/... .

# Regenerate every paper table/figure at paper scale.
bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

bench-quick:
	SCCSIM_BENCH_SCALE=quick $(GO) test -run xxx -bench . -benchtime 1x ./...

# All experiments via the CLI.
experiments:
	$(GO) run ./cmd/sccexplore -exp all

cover:
	$(GO) test -short -cover ./...

clean:
	$(GO) clean ./...
