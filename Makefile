# Convenience targets for the sccsim reproduction.

GO ?= go

.PHONY: all check build test test-race race-obs obs-overhead obs-overhead-run fuzz-smoke vet quick bench bench-quick bench-json bench-compare bench-search bench-search-run bench-search-write experiments cover clean docs-check serve verify-analytic load-check

all: build vet test

# Tier-1 gate: compile, vet, full test suite, race-enabled observability
# and engine packages, documentation contract, analytic-backend accuracy
# smoke.
check: build vet test race-obs docs-check verify-analytic obs-overhead

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Skip the paper-scale headline run (a few minutes).
quick:
	$(GO) test -short ./...

# Race-enabled run of the concurrency-bearing packages at QuickScale:
# the shared-trace contract (internal/sim), the sweep engine
# (internal/explorer, internal/costperf, plus the facade API), the
# cross-process trace disk cache (internal/trace), the verification
# layer (internal/verify), and the HTTP service (internal/serve).
test-race:
	$(GO) test -race -short ./internal/sim/... ./internal/explorer/... ./internal/costperf/... ./internal/trace/... ./internal/verify/... ./internal/serve/... .

# Race-enabled run of the instrumentation layer, the engine that
# drives it concurrently, and the HTTP service that shares one registry
# across jobs — cheap enough to sit inside `make check`.
# -short keeps the explorer's full-grid oracle diff (which `test` runs
# uninstrumented) to a representative pair of cache sizes here.
race-obs:
	$(GO) test -race -short ./internal/obs ./internal/explorer ./internal/serve

# Documentation contract: every exported identifier in the facade and
# the serve package carries a doc comment, docs/API.md documents every
# registered HTTP route, docs/DESIGN-SPACE.md names every Spec field
# and architecture axis, and relative links in README/docs resolve
# (see cmd/docscheck).
docs-check:
	$(GO) vet ./...
	$(GO) run ./cmd/docscheck -api docs/API.md -design docs/DESIGN-SPACE.md -links README.md,docs . ./internal/serve

# Run the HTTP simulation service locally (see docs/API.md).
serve:
	$(GO) run ./cmd/sccserve -addr :8347

# Load/chaos gate for the distributed path: boot an in-process
# coordinator with 3 workers, fire 1200 concurrent mixed
# sweep/point/search requests while killing/restarting workers and
# injecting latency, and gate p99 latency, shed rate, availability and
# sweep byte-identity against the committed BENCH_load.json bounds
# (see cmd/sccload). The bounds are deliberately generous — this
# catches lost availability and identity violations, not perf drift.
load-check:
	$(GO) run ./cmd/sccload -baseline BENCH_load.json

# Analytic-backend accuracy smoke: cross-validate the reuse-distance
# model against the exact simulator on one workload's full grid at
# quick scale. The full four-workload pass runs in `go test .`
# (TestCrossValidateAllWorkloads); this one-workload gate is cheap
# enough for `make check` and CI.
verify-analytic:
	$(GO) run ./cmd/sccexplore -crossval barnes-hut -scale quick -quiet

# Zero-overhead contract smoke: run the same quick-scale sweep with
# observability fully disabled and fully enabled (metrics registry,
# structured logging, manifest capture) and fail when the enabled run's
# median per-point throughput drops more than OBS_THRESHOLD below the
# disabled one. This is the executable form of the nil-disabled
# contract: instrumentation must stay in the noise. Points run
# sequentially (-parallel 1) so the timing compares simulator work, not
# scheduler contention; the median is the contract, and the per-point
# outlier floor is loosened (-severe-mult) because individual
# quick-scale points run ~10-30ms and jitter by double-digit
# percentages on a loaded machine.
# A failed measurement is retried once: a transient load burst on a
# shared machine can skew one whole sweep, and a real instrumentation
# regression fails both attempts.
OBS_THRESHOLD ?= 0.05
obs-overhead:
	@$(MAKE) --no-print-directory obs-overhead-run || { 		echo "obs-overhead: retrying once to rule out transient machine load"; 		$(MAKE) --no-print-directory obs-overhead-run; }

obs-overhead-run:
	$(GO) run ./cmd/sccexplore -csv barnes-hut -scale quick -quiet -parallel 1 -obs off -manifest /tmp/sccsim_obs_off.json > /dev/null
	$(GO) run ./cmd/sccexplore -csv barnes-hut -scale quick -quiet -parallel 1 -obs on -manifest /tmp/sccsim_obs_on.json > /dev/null
	$(GO) run ./cmd/benchcompare -threshold $(OBS_THRESHOLD) -severe-mult 10 /tmp/sccsim_obs_off.json /tmp/sccsim_obs_on.json

# Seed-plus-30s coverage-guided fuzz of the two properties most worth
# hammering: the verified simulator against the oracle model
# (FuzzSimConfig) and the trace binary format round trip
# (FuzzTraceRoundTrip). Each target runs alone (go test allows one
# -fuzz pattern per invocation).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzSimConfig$$' -fuzztime 30s ./internal/sim
	$(GO) test -run '^$$' -fuzz '^FuzzTraceRoundTrip$$' -fuzztime 30s ./internal/trace

# Machine-readable sweep benchmark: quick-scale Barnes-Hut sweeps on
# both backends, merged into one run manifest (timings, utilization,
# per-point stats keyed by backend) committed as BENCH_sweep.json to
# track the engine's — and the analytic model's — performance across
# PRs.
bench-json:
	$(GO) run ./cmd/sccexplore -csv barnes-hut -scale quick -quiet -manifest /tmp/sccsim_bench_exact.json > /dev/null
	$(GO) run ./cmd/sccexplore -csv barnes-hut -scale quick -quiet -backend analytic -manifest /tmp/sccsim_bench_analytic.json > /dev/null
	$(GO) run ./cmd/benchcompare -merge BENCH_sweep.json /tmp/sccsim_bench_exact.json /tmp/sccsim_bench_analytic.json

# Perf regression gate: rerun the two-backend benchmark sweep and diff
# it point by point against the committed BENCH_sweep.json. Fails when
# the median per-point sim_cycles_per_us ratio drops more than 10%,
# when any single point drops more than 30%, or when results
# (cycles/refs) silently change. Override the tolerance with
# THRESHOLD=0.15.
THRESHOLD ?= 0.10
bench-compare:
	$(GO) run ./cmd/sccexplore -csv barnes-hut -scale quick -quiet -manifest /tmp/sccsim_bench_cur_exact.json > /dev/null
	$(GO) run ./cmd/sccexplore -csv barnes-hut -scale quick -quiet -backend analytic -manifest /tmp/sccsim_bench_cur_analytic.json > /dev/null
	$(GO) run ./cmd/benchcompare -merge /tmp/sccsim_bench_current.json /tmp/sccsim_bench_cur_exact.json /tmp/sccsim_bench_cur_analytic.json
	$(GO) run ./cmd/benchcompare -threshold $(THRESHOLD) BENCH_sweep.json /tmp/sccsim_bench_current.json

# Search-efficiency regression gate: run the fixed ~16k-point adaptive
# search benchmark and diff it against the committed BENCH_search.json
# (see cmd/benchsearch). The frontier and work counts are deterministic
# and gated at SEARCH_THRESHOLD; the calibration-normalized wall time is
# gated loosely (it jitters with machine load) and, like obs-overhead,
# a failed run is retried once before it counts.
SEARCH_THRESHOLD ?= 0.10
bench-search:
	@$(MAKE) --no-print-directory bench-search-run || { 		echo "bench-search: retrying once to rule out transient machine load"; 		$(MAKE) --no-print-directory bench-search-run; }

bench-search-run:
	$(GO) run ./cmd/benchsearch -threshold $(SEARCH_THRESHOLD)

# Regenerate the committed search baseline after an intentional change
# to the search pipeline or the benchmark experiment.
bench-search-write:
	$(GO) run ./cmd/benchsearch -write

# Regenerate every paper table/figure at paper scale.
bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

bench-quick:
	SCCSIM_BENCH_SCALE=quick $(GO) test -run xxx -bench . -benchtime 1x ./...

# All experiments via the CLI.
experiments:
	$(GO) run ./cmd/sccexplore -exp all

cover:
	$(GO) test -short -cover ./...

clean:
	$(GO) clean ./...
