package sccsim_test

import (
	"testing"

	"sccsim"
	"sccsim/internal/explorer"
	"sccsim/internal/icache"
	"sccsim/internal/sim"
	"sccsim/internal/sparse"
	"sccsim/internal/stats"
	"sccsim/internal/workload/mp3d"
)

func sumU64(xs []uint64) uint64 {
	var t uint64
	for _, x := range xs {
		t += x
	}
	return t
}

func runWithOptions(w sccsim.Workload, ppc, scc int, s sccsim.Scale, opts sccsim.Options) (*sccsim.Point, error) {
	return sccsim.RunWithOptions(w, ppc, scc, s, opts)
}

func runAssoc(w sccsim.Workload, ppc, scc, assoc int, s sccsim.Scale) (*sccsim.Point, error) {
	cfg := sccsim.DefaultConfig(ppc, scc)
	cfg.Assoc = assoc
	return sccsim.RunConfig(w, cfg, s, sccsim.Options{})
}

// scheduleStats builds the Cholesky fan-out schedule with a supernode
// width cap and returns (achieved concurrency on 32 processors, op count).
func scheduleStats(b *testing.B, maxWidth int) (float64, int) {
	b.Helper()
	a := sparse.GenerateBCSSTK14Like(sparse.BCSSTK14Params{Seed: 1})
	l := sparse.SymbolicFactor(a, sparse.EliminationTree(a))
	sns, colSn := sparse.FindSupernodes(l, maxWidth)
	ops, succ, indeg := sparse.BuildOps(l, sns, colSn)
	s1, err := sparse.ListSchedule(ops, succ, indeg, len(sns), 1)
	if err != nil {
		b.Fatal(err)
	}
	s32, err := sparse.ListSchedule(ops, succ, indeg, len(sns), 32)
	if err != nil {
		b.Fatal(err)
	}
	return float64(s1.Makespan) / float64(s32.Makespan), len(ops)
}

// icachePenalty derives the context-switch instruction-refill cost from
// the icache model.
func icachePenalty() (uint64, error) {
	return icache.RecommendedSwitchPenalty(0, 1)
}

// runMP3DLocks runs MP3D at the 4x4P/64KB point with or without per-cell
// locks.
func runMP3DLocks(s sccsim.Scale, locks bool) (*sccsim.Point, error) {
	particles, steps := s.MP3DParticles, s.MP3DSteps
	prog, err := mp3d.Generate(mp3d.Params{
		Particles: particles, Steps: steps, Procs: 16, Seed: s.Seed, CellLocks: locks,
	})
	if err != nil {
		return nil, err
	}
	cfg := sccsim.DefaultConfig(4, 64*1024)
	res, err := sim.Run(cfg, sim.Options{}, prog)
	if err != nil {
		return nil, err
	}
	return &sccsim.Point{Config: cfg, Result: res}, nil
}

// seedSensitivity summarizes cycle variation over five seeds.
func seedSensitivity(w sccsim.Workload, s sccsim.Scale) (stats.Summary, error) {
	return explorer.SeedSensitivity(w, 2, 32*1024, s, sim.Options{}, []int64{1, 2, 3, 4, 5})
}
