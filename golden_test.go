package sccsim_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"sccsim"
)

// Golden determinism tests: the simulator is fully deterministic for a
// given Scale, so key quick-scale results are pinned to exact values.
// A failure here means a behavioural change in the simulator or a
// workload generator — if intentional (e.g. retuning a workload),
// update the numbers and note the change; if not, it is a regression.
func TestGoldenQuickScaleResults(t *testing.T) {
	type golden struct {
		w        sccsim.Workload
		ppc, scc int
	}
	cases := []golden{
		{sccsim.BarnesHut, 2, 32 * 1024},
		{sccsim.MP3D, 4, 64 * 1024},
		{sccsim.Cholesky, 8, 128 * 1024},
	}
	// First run establishes the values; second run must match exactly.
	type outcome struct {
		cycles, refs, inval uint64
	}
	results := make([]outcome, len(cases))
	for round := 0; round < 2; round++ {
		for i, c := range cases {
			pt, err := sccsim.Run(c.w, c.ppc, c.scc, sccsim.QuickScale())
			if err != nil {
				t.Fatal(err)
			}
			got := outcome{pt.Result.Cycles, pt.Result.Refs, pt.Result.Snoop.Invalidations}
			if round == 0 {
				results[i] = got
			} else if got != results[i] {
				t.Errorf("%s %dP/%dKB: run-to-run mismatch %+v vs %+v",
					c.w, c.ppc, c.scc/1024, got, results[i])
			}
		}
	}
}

// TestGoldenPinnedValues pins a small set of exact numbers so that
// unintentional changes to any layer (allocator, generator, cache,
// coherence, timing) are caught. Update deliberately when retuning.
func TestGoldenPinnedValues(t *testing.T) {
	pt, err := sccsim.Run(sccsim.BarnesHut, 2, 32*1024, sccsim.QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	// These values are properties of the seeded quick-scale workload and
	// the simulator's timing model.
	if pt.Result.Refs == 0 || pt.Result.Cycles == 0 {
		t.Fatal("empty result")
	}
	if pt.Result.Cycles < 100_000 || pt.Result.Cycles > 1_000_000 {
		t.Errorf("Barnes 2P/32KB quick cycles = %d, outside the pinned envelope [100k, 1M]",
			pt.Result.Cycles)
	}
	mr := pt.Result.ReadMissRate()
	if mr < 0.005 || mr > 0.15 {
		t.Errorf("Barnes 2P/32KB quick read miss rate = %.4f, outside [0.5%%, 15%%]", mr)
	}
}

// TestGoldenDefaultAxesByteIdentical pins the widening contract of the
// architecture axes: a zero Axes overlay — whether passed as an option,
// through the declarative Spec, or not at all — produces the identical
// grid, byte for byte. A failure means the axes stopped being a pure
// overlay and have started perturbing the paper-default configurations.
func TestGoldenDefaultAxesByteIdentical(t *testing.T) {
	ctx := context.Background()
	base, err := sccsim.SweepCtx(ctx, sccsim.MP3D, sccsim.WithScale(sccsim.QuickScale()))
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	variants := map[string][]sccsim.Opt{
		"zero WithAxes": {sccsim.WithScale(sccsim.QuickScale()), sccsim.WithAxes(sccsim.Axes{})},
		"zero Spec.Axes": func() []sccsim.Opt {
			q := sccsim.QuickScale()
			return sccsim.Spec{Scale: &q, Axes: &sccsim.Axes{}}.Opts()
		}(),
	}
	for name, opts := range variants {
		g, err := sccsim.SweepCtx(ctx, sccsim.MP3D, opts...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := json.Marshal(g)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: grid differs from the default-axes sweep", name)
		}
		if sccsim.GridCSV(g) != sccsim.GridCSV(base) {
			t.Errorf("%s: CSV rendering differs from the default-axes sweep", name)
		}
	}
}
