package sccsim_test

import (
	"testing"

	"sccsim"
)

// Paper-scale headline assertions: the claims EXPERIMENTS.md records,
// checked end-to-end at the paper's problem sizes. Run time is a few
// minutes; `go test -short` skips it.
func TestPaperHeadlines(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale headline run in -short mode")
	}
	scale := sccsim.PaperScale()

	run := func(w sccsim.Workload, ppc, scc int) *sccsim.Point {
		t.Helper()
		pt, err := sccsim.Run(w, ppc, scc, scale)
		if err != nil {
			t.Fatal(err)
		}
		return pt
	}

	t.Run("MP3DSpeedupEndpoints", func(t *testing.T) {
		// Paper: 8P self-relative speedup 3.8 at 4KB, 7.2 at 512KB.
		small := float64(run(sccsim.MP3D, 1, 4*1024).Result.Cycles) /
			float64(run(sccsim.MP3D, 8, 4*1024).Result.Cycles)
		big := float64(run(sccsim.MP3D, 1, 512*1024).Result.Cycles) /
			float64(run(sccsim.MP3D, 8, 512*1024).Result.Cycles)
		if small < 3.0 || small > 6.5 {
			t.Errorf("MP3D 8P speedup at 4KB = %.2f, paper 3.8 (accept 3.0-6.5)", small)
		}
		if big < 6.0 || big > 8.2 {
			t.Errorf("MP3D 8P speedup at 512KB = %.2f, paper 7.2 (accept 6.0-8.2)", big)
		}
		if small >= big {
			t.Errorf("interference inversion: 4KB speedup %.2f >= 512KB %.2f", small, big)
		}
	})

	t.Run("BarnesInterference", func(t *testing.T) {
		// Small SCCs must depress the 8P speedup relative to mid sizes.
		s4 := float64(run(sccsim.BarnesHut, 1, 4*1024).Result.Cycles) /
			float64(run(sccsim.BarnesHut, 8, 4*1024).Result.Cycles)
		s32 := float64(run(sccsim.BarnesHut, 1, 32*1024).Result.Cycles) /
			float64(run(sccsim.BarnesHut, 8, 32*1024).Result.Cycles)
		if s4 >= s32 {
			t.Errorf("Barnes 8P speedup at 4KB (%.2f) not below 32KB (%.2f)", s4, s32)
		}
	})

	t.Run("CholeskySaturates", func(t *testing.T) {
		// Paper: speedup capped near 3-3.5 regardless of size.
		for _, scc := range []int{4 * 1024, 512 * 1024} {
			sp := float64(run(sccsim.Cholesky, 1, scc).Result.Cycles) /
				float64(run(sccsim.Cholesky, 8, scc).Result.Cycles)
			if sp > 4.0 {
				t.Errorf("Cholesky 8P speedup at %dKB = %.2f, want saturation (< 4)", scc/1024, sp)
			}
			if sp < 1.8 {
				t.Errorf("Cholesky 8P speedup at %dKB = %.2f, want > 1.8", scc/1024, sp)
			}
		}
	})

	t.Run("MultiprogSpread", func(t *testing.T) {
		// Paper: ~4.1x execution-time spread at 8P between 4KB and 512KB.
		spread := float64(run(sccsim.Multiprog, 8, 4*1024).Result.Cycles) /
			float64(run(sccsim.Multiprog, 8, 512*1024).Result.Cycles)
		if spread < 2.5 {
			t.Errorf("multiprog 8P spread = %.2f, paper ~4.1 (accept >= 2.5)", spread)
		}
	})

	t.Run("Tables6And7", func(t *testing.T) {
		var entries []*sccsim.CostPerfEntry
		for _, w := range sccsim.AllWorkloads {
			e, err := sccsim.BuildCostPerfEntry(w, scale)
			if err != nil {
				t.Fatal(err)
			}
			entries = append(entries, e)
		}
		sc := sccsim.CompareSingleChip(entries)
		for _, e := range sc.Entries {
			if e.AdjCycles[2] >= e.AdjCycles[1] {
				t.Errorf("%s: 2P/32KB not faster than 1P/64KB (the paper's headline)", e.Workload)
			}
		}
		if sc.CostPerfGain <= 0 {
			t.Errorf("single-chip cost/performance gain = %.2f, paper finds a win", sc.CostPerfGain)
		}
		m := sccsim.CompareMCM(entries)
		if m.MeanScalingNoCholesky < 1.5 {
			t.Errorf("16->32 scaling excl. Cholesky = %.2f, paper ~linear", m.MeanScalingNoCholesky)
		}
		var cholScaling float64
		for _, e := range m.Entries {
			if e.Workload == sccsim.Cholesky {
				cholScaling = e.AdjCycles[4] / e.AdjCycles[8]
			}
		}
		if cholScaling > 1.7 {
			t.Errorf("Cholesky 16->32 scaling = %.2f, paper says it is the exception (~1.2)", cholScaling)
		}
	})
}
