package verify

import (
	"strings"
	"testing"
)

func TestNewCrossReportComputesErrors(t *testing.T) {
	r := NewCrossReport("test", []CrossPoint{
		{Clusters: 4, ProcsPerCluster: 1, SCCBytes: 4096,
			ExactMissRate: 0.40, AnalyticMissRate: 0.44, ExactCycles: 1000, AnalyticCycles: 1100},
		{Clusters: 4, ProcsPerCluster: 2, SCCBytes: 4096,
			ExactMissRate: 0.02, AnalyticMissRate: 0.03, ExactCycles: 2000, AnalyticCycles: 1800},
	})
	p0, p1 := r.Points[0], r.Points[1]
	if !close(p0.AbsErr, 0.04) || !close(p0.RelErr, 0.10) || !close(p0.CycleRelErr, 0.10) {
		t.Errorf("point 0 errors: %+v", p0)
	}
	// Point 1 sits below RelFloor: the relative error is taken against
	// the floor, not the 0.02 exact rate.
	if !close(p1.AbsErr, 0.01) || !close(p1.RelErr, 0.01/RelFloor) || !close(p1.CycleRelErr, 0.10) {
		t.Errorf("point 1 errors: %+v", p1)
	}
	if !close(r.MaxAbsErr, 0.04) || !close(r.MeanAbsErr, 0.025) || !close(r.MaxRelErr, 0.20) {
		t.Errorf("summary: %+v", r)
	}
}

func TestCrossReportCheck(t *testing.T) {
	r := NewCrossReport("mp3d", []CrossPoint{
		{Clusters: 4, ProcsPerCluster: 8, SCCBytes: 4096,
			ExactMissRate: 0.76, AnalyticMissRate: 0.52, ExactCycles: 1000, AnalyticCycles: 700},
	})
	if err := r.Check(CrossBounds{MaxAbsErr: 0.30, MaxRelErr: 0.40, MaxCycleRelErr: 0.40}); err != nil {
		t.Errorf("within bounds but Check failed: %v", err)
	}
	err := r.Check(CrossBounds{MaxAbsErr: 0.10})
	if err == nil || !strings.Contains(err.Error(), "4x8P/4KB") {
		t.Errorf("abs-bound violation should name the point: %v", err)
	}
	if err := r.Check(CrossBounds{MaxCycleRelErr: 0.10}); err == nil ||
		!strings.Contains(err.Error(), "cycle-estimate") {
		t.Errorf("cycle-bound violation: %v", err)
	}
	// Zero fields disable their checks entirely.
	if err := r.Check(CrossBounds{}); err != nil {
		t.Errorf("zero bounds should pass: %v", err)
	}
	if err := r.Check(CrossBounds{MeanAbsErr: 0.01}); err == nil ||
		!strings.Contains(err.Error(), "mean") {
		t.Errorf("mean-bound violation: %v", err)
	}
	empty := NewCrossReport("empty", nil)
	if err := empty.Check(CrossBounds{}); err == nil || !strings.Contains(err.Error(), "no points") {
		t.Errorf("empty report must fail Check: %v", err)
	}
}

func TestCrossReportString(t *testing.T) {
	r := NewCrossReport("cholesky", []CrossPoint{
		{Clusters: 4, ProcsPerCluster: 4, SCCBytes: 32768,
			ExactMissRate: 0.53, AnalyticMissRate: 0.50, ExactCycles: 10, AnalyticCycles: 11},
	})
	s := r.String()
	for _, want := range []string{"cholesky", "4x4P/  32KB", "0.5300", "max |err|"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func close(a, b float64) bool { return abs(a-b) < 1e-9 }
