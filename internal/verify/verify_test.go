package verify_test

import (
	"strings"
	"testing"

	"sccsim/internal/cache"
	"sccsim/internal/mem"
	"sccsim/internal/scc"
	"sccsim/internal/snoop"
	"sccsim/internal/sysmodel"
	"sccsim/internal/verify"
)

// rig is a hand-assembled two-cluster machine the checker audits: the
// same SCC + bus parts the simulator wires up, driven directly so tests
// can interleave legitimate traffic with injected faults.
type rig struct {
	sccs []*scc.SCC
	bus  *snoop.Bus
	ck   *verify.Checker
}

func newRig(t *testing.T, clusters int) *rig {
	t.Helper()
	r := &rig{}
	invs := make([]snoop.Invalidator, clusters)
	cls := make([]verify.Cluster, clusters)
	for i := 0; i < clusters; i++ {
		sc, err := scc.New(4096, 1, 4)
		if err != nil {
			t.Fatal(err)
		}
		r.sccs = append(r.sccs, sc)
		invs[i] = sc
		cls[i] = sc
	}
	r.bus = snoop.New(invs)
	r.ck = verify.NewChecker(&verify.Options{}, r.bus, cls, false)
	r.bus.Verifier = r.ck
	return r
}

// access drives one reference through cluster c the way the simulator
// does: bank/tag access, eviction notice, bus fetch on miss, shared-
// write invalidation on write hit.
func (r *rig) access(now uint64, c int, addr uint32, kind mem.Kind) uint64 {
	r.ck.OnAccess(c)
	ar := r.sccs[c].Access(now, addr, kind)
	if ar.Hit {
		if kind == mem.Write {
			r.bus.WriteShared(ar.Start, c, addr)
		}
		return ar.Start
	}
	if ar.Evicted != ^uint32(0) {
		r.bus.Evicted(ar.Start, c, ar.Evicted, ar.EvictedDirty)
	}
	return r.bus.Fetch(ar.Start, c, addr, kind)
}

func TestCheckerCleanTrafficHasNoViolations(t *testing.T) {
	r := newRig(t, 2)
	now := uint64(0)
	// Read-share a line, write it from the other cluster (invalidation),
	// force evictions by walking past the 256-line cache.
	for i := uint32(0); i < 600; i++ {
		addr := (i%300 + 1) * sysmodel.LineSize
		now = r.access(now, 0, addr, mem.Read)
		now = r.access(now, 1, addr, mem.Read)
		if i%7 == 0 {
			now = r.access(now, 1, addr, mem.Write)
		}
	}
	r.ck.Audit()
	if err := r.ck.Err(); err != nil {
		t.Fatalf("clean traffic reported violations: %v", err)
	}
}

// TestCheckerCatchesSeededPresenceCorruption is the checker-detects-
// seeded-bug test: corrupt the presence table both ways (a resident
// line's bit cleared; a bit set for an absent line) and require the
// audit to flag each.
func TestCheckerCatchesSeededPresenceCorruption(t *testing.T) {
	t.Run("resident line loses its presence bit", func(t *testing.T) {
		r := newRig(t, 2)
		const addr = 5 * sysmodel.LineSize
		r.access(0, 0, addr, mem.Read)
		r.bus.SetPresence(addr, 0) // the corruption
		r.ck.Audit()
		err := r.ck.Err()
		if err == nil {
			t.Fatal("audit missed a resident line with a cleared presence bit")
		}
		if !strings.Contains(err.Error(), "presence bit is clear") {
			t.Fatalf("unexpected violation text: %v", err)
		}
	})
	t.Run("absent line gains a presence bit", func(t *testing.T) {
		r := newRig(t, 2)
		const addr = 5 * sysmodel.LineSize
		r.access(0, 0, addr, mem.Read)
		r.bus.SetPresence(addr, 0b11) // cluster 1 never fetched it
		r.ck.Audit()
		err := r.ck.Err()
		if err == nil {
			t.Fatal("audit missed a presence bit with no resident line")
		}
		if !strings.Contains(err.Error(), "the line is absent") {
			t.Fatalf("unexpected violation text: %v", err)
		}
	})
	t.Run("presence mask names a nonexistent cluster", func(t *testing.T) {
		r := newRig(t, 2)
		const addr = 5 * sysmodel.LineSize
		r.bus.SetPresence(addr, 0b100)
		r.ck.Audit()
		if err := r.ck.Err(); err == nil || !strings.Contains(err.Error(), "nonexistent clusters") {
			t.Fatalf("audit missed an out-of-range presence bit: %v", err)
		}
	})
}

func TestCheckerCatchesStaleSharerOnWrite(t *testing.T) {
	r := newRig(t, 2)
	const addr = 9 * sysmodel.LineSize
	// Cluster 1 legitimately holds the line; then its presence bit is
	// corrupted away, so cluster 0's write-fetch won't invalidate the
	// stale copy — exactly the "silently present in another cluster"
	// failure the per-transaction check exists for.
	r.access(0, 1, addr, mem.Read)
	r.bus.SetPresence(addr, 0)
	r.access(100, 0, addr, mem.Write)
	if err := r.ck.Err(); err == nil || !strings.Contains(err.Error(), "still holds a copy") {
		t.Fatalf("write-fetch past a stale sharer was not flagged: %v", err)
	}
}

func TestCheckerFinishRunConservation(t *testing.T) {
	r := newRig(t, 2)
	var refs uint64
	now := uint64(0)
	for i := uint32(0); i < 50; i++ {
		now = r.access(now, int(i%2), (i%20+1)*sysmodel.LineSize, mem.Read)
		refs++
	}
	if err := r.ck.FinishRun(verify.Final{
		Cycles:           now,
		Refs:             refs,
		ExpectedRefs:     refs,
		Cache:            []*cache.Stats{r.sccs[0].CacheStats(), r.sccs[1].CacheStats()},
		Bank:             []*scc.Stats{r.sccs[0].Stats(), r.sccs[1].Stats()},
		BankAccessCycles: sysmodel.BankAccessCycles,
	}); err != nil {
		t.Fatalf("conserving run failed FinishRun: %v", err)
	}
}

func TestCheckerFinishRunFlagsLostAccesses(t *testing.T) {
	r := newRig(t, 1)
	now := r.access(0, 0, sysmodel.LineSize, mem.Read)
	// One extra shadow access the tag store never saw: hits+misses no
	// longer equals the issued access count.
	r.ck.OnAccess(0)
	err := r.ck.FinishRun(verify.Final{
		Cycles:           now,
		Refs:             1,
		ExpectedRefs:     1,
		Cache:            []*cache.Stats{r.sccs[0].CacheStats()},
		Bank:             []*scc.Stats{r.sccs[0].Stats()},
		BankAccessCycles: sysmodel.BankAccessCycles,
	})
	if err == nil || !strings.Contains(err.Error(), "hits+misses") {
		t.Fatalf("access-conservation violation not flagged: %v", err)
	}
}

func TestCheckerFinishRunFlagsRefMismatch(t *testing.T) {
	r := newRig(t, 1)
	now := r.access(0, 0, sysmodel.LineSize, mem.Read)
	err := r.ck.FinishRun(verify.Final{
		Cycles:           now,
		Refs:             1,
		ExpectedRefs:     2,
		Cache:            []*cache.Stats{r.sccs[0].CacheStats()},
		Bank:             []*scc.Stats{r.sccs[0].Stats()},
		BankAccessCycles: sysmodel.BankAccessCycles,
	})
	if err == nil || !strings.Contains(err.Error(), "references") {
		t.Fatalf("ref-count violation not flagged: %v", err)
	}
}

func TestCheckerFinishRunFlagsOverbusyBank(t *testing.T) {
	r := newRig(t, 1)
	// Two accesses to one bank occupy it 2*BankAccessCycles; claiming the
	// run lasted zero cycles must violate the busy <= elapsed bound.
	now := r.access(0, 0, sysmodel.LineSize, mem.Read)
	now = r.access(now, 0, sysmodel.LineSize, mem.Read)
	_ = now
	err := r.ck.FinishRun(verify.Final{
		Cycles:           0, // claim a zero-length run despite the accesses
		Refs:             2,
		ExpectedRefs:     2,
		Cache:            []*cache.Stats{r.sccs[0].CacheStats()},
		Bank:             []*scc.Stats{r.sccs[0].Stats()},
		BankAccessCycles: sysmodel.BankAccessCycles,
	})
	if err == nil || !strings.Contains(err.Error(), "busy cycles") {
		t.Fatalf("bank-busy bound violation not flagged: %v", err)
	}
}

func TestCheckerMaxViolationsBoundsDetail(t *testing.T) {
	r := newRig(t, 2)
	ck := verify.NewChecker(&verify.Options{MaxViolations: 2}, r.bus, []verify.Cluster{r.sccs[0], r.sccs[1]}, false)
	for i := uint32(1); i <= 10; i++ {
		r.bus.SetPresence(i*sysmodel.LineSize, 1) // ten absent-line bits
	}
	ck.Audit()
	err := ck.Err()
	if err == nil {
		t.Fatal("no violations reported")
	}
	if !strings.Contains(err.Error(), "10 invariant violation(s)") ||
		!strings.Contains(err.Error(), "+8 more") {
		t.Fatalf("violation bounding off: %v", err)
	}
}
