// Package verify is the simulator's independent correctness layer: a
// coherence invariant checker that audits the protocol state on every
// bus transaction, and a deliberately naive oracle simulator (oracle.go)
// whose results the optimized simulator is diffed against.
//
// The package exists because the hot paths the paper's numbers depend on
// (compiled traces, the flat presence table, the fused direct-mapped
// access path) are the most optimized and least self-checking code in
// the repo. Byte-identity against LegacyReplay only proves the fast path
// matches the slow path — it says nothing when both share a bug. The
// checker and the oracle are written against the documented model, not
// against the implementation, so they fail when the implementation
// drifts from the model in either path.
//
// verify deliberately does not import internal/sim: sim wires a Checker
// into its machinery via Options.Verify, and the oracle consumes the
// same trace/config inputs sim does, returning RunStats that sim results
// convert into (Result.VerifyStats).
package verify

import (
	"fmt"
	"strings"

	"sccsim/internal/cache"
	"sccsim/internal/mem"
	"sccsim/internal/scc"
	"sccsim/internal/snoop"
	"sccsim/internal/sysmodel"
)

// Options configures runtime verification. A non-nil *Options in
// sim.Options.Verify enables the invariant checker; the zero value is a
// sensible default. Options carries no mutable state, so one value may
// be shared across concurrent runs.
type Options struct {
	// MaxViolations bounds how many violations are recorded in detail
	// before further ones are only counted. 0 means the default of 8.
	MaxViolations int
}

func (o *Options) maxViolations() int {
	if o == nil || o.MaxViolations <= 0 {
		return 8
	}
	return o.MaxViolations
}

// Cluster is the view of one cluster's cache the checker needs:
// side-effect-free residency queries. (*scc.SCC) satisfies it.
type Cluster interface {
	// Probe reports whether addr's line is in the tag store.
	Probe(addr uint32) bool
	// VisitLines calls fn for every resident line (including lines
	// parked in a victim buffer).
	VisitLines(fn func(lineIndex uint32, dirty bool))
}

// Final is the end-of-run summary FinishRun audits: the run's headline
// counters and the per-cluster statistics the conservation invariants
// are checked against.
type Final struct {
	// Cycles is the run's makespan.
	Cycles uint64
	// Refs is the number of references the run reports executing.
	Refs uint64
	// ExpectedRefs is the non-idle reference count of the input trace,
	// or 0 when the caller cannot cheaply know it (the check is skipped).
	ExpectedRefs uint64
	// Cache[i] is cluster i's tag-store statistics.
	Cache []*cache.Stats
	// Bank[i] is cluster i's bank contention statistics.
	Bank []*scc.Stats
	// BankAccessCycles is the per-access bank occupancy in cycles.
	BankAccessCycles uint64
}

// Checker asserts coherence-protocol and accounting invariants during a
// single simulation run. It implements snoop.Verifier for the per-
// transaction checks; the simulator additionally reports every cache
// access (OnAccess) and the end-of-run summary (FinishRun). A Checker is
// single-run, single-goroutine state — build one per run.
type Checker struct {
	opts     *Options
	bus      *snoop.Bus
	clusters []Cluster
	// victimSlack relaxes the present⇒resident direction of the audit:
	// with a victim buffer enabled, an entry silently displaced out of
	// the buffer leaves a benign stale presence bit behind (documented
	// in scc.Access), so only resident⇒present is exact.
	victimSlack bool

	// accesses[c] counts cache accesses the simulator performed through
	// cluster c, maintained via OnAccess and compared against the tag
	// store's own Accesses counters at FinishRun: every access must be
	// accounted exactly once as a hit or a miss.
	accesses []uint64

	// lineShift is log2 of the caches' line size, used to convert the
	// line indices the bus reports back to byte addresses for probes.
	// NewChecker defaults it to the paper's 16-byte line; SetLineBytes
	// overrides it for the line-size sweep axis.
	lineShift uint32

	violations []string
	dropped    int
}

// NewChecker builds a checker over a bus and its clusters' caches.
// clusters[i] must be the cache the bus invalidates as cluster i.
// victimSlack declares that clusters have victim buffers (see the field
// comment). The caller is responsible for setting bus.Verifier.
func NewChecker(o *Options, bus *snoop.Bus, clusters []Cluster, victimSlack bool) *Checker {
	c := &Checker{
		opts:        o,
		bus:         bus,
		clusters:    clusters,
		victimSlack: victimSlack,
		accesses:    make([]uint64, len(clusters)),
	}
	c.SetLineBytes(sysmodel.LineSize)
	return c
}

// SetLineBytes tells the checker the line size (a power of two) the
// audited caches use; call before the run starts when the line-size
// axis deviates from the paper's 16 bytes.
func (c *Checker) SetLineBytes(lineBytes int) {
	c.lineShift = 0
	for lb := lineBytes; lb > 1; lb >>= 1 {
		c.lineShift++
	}
}

func (c *Checker) violate(format string, args ...any) {
	if len(c.violations) >= c.opts.maxViolations() {
		c.dropped++
		return
	}
	c.violations = append(c.violations, fmt.Sprintf(format, args...))
}

// Err returns the violations recorded so far as one error, or nil.
func (c *Checker) Err() error {
	if len(c.violations) == 0 {
		return nil
	}
	msg := strings.Join(c.violations, "; ")
	if c.dropped > 0 {
		msg = fmt.Sprintf("%s; (+%d more violations)", msg, c.dropped)
	}
	return fmt.Errorf("%d invariant violation(s): %s", len(c.violations)+c.dropped, msg)
}

// OnAccess records that the simulator performed one cache access through
// cluster's SCC (any kind, including lock-word reads and spin re-reads).
func (c *Checker) OnAccess(cluster int) { c.accesses[cluster]++ }

// OnWarmupReset resynchronizes the access counters with a statistics
// warmup reset: the tag stores' counters were just zeroed, so the
// checker's shadow counts restart too.
func (c *Checker) OnWarmupReset() {
	for i := range c.accesses {
		c.accesses[i] = 0
	}
}

// AfterFetch implements snoop.Verifier: after a fetch, the requester
// must hold the line and its presence bit must be set; after a write
// fetch, no other cluster may still hold a copy — "a line written by one
// cluster is not silently present in another".
func (c *Checker) AfterFetch(now uint64, cluster int, addr uint32, kind mem.Kind) {
	self := uint32(1) << uint(cluster)
	mask := c.bus.Present(addr)
	if mask&self == 0 {
		c.violate("fetch@%d: cluster %d fetched addr %#x but its presence bit is clear (mask %#x)",
			now, cluster, addr, mask)
	}
	if !c.clusters[cluster].Probe(addr) {
		c.violate("fetch@%d: cluster %d fetched addr %#x but the line is not in its cache",
			now, cluster, addr)
	}
	if kind == mem.Write {
		if mask&^self != 0 {
			c.violate("write-fetch@%d: cluster %d wrote addr %#x yet presence mask %#x still names other clusters",
				now, cluster, addr, mask)
		}
		c.checkOthersNotResident(now, cluster, addr, "write-fetch")
	}
}

// AfterWriteShared implements snoop.Verifier: after an invalidation
// broadcast the writer must be the sole holder.
func (c *Checker) AfterWriteShared(now uint64, cluster int, addr uint32) {
	self := uint32(1) << uint(cluster)
	if mask := c.bus.Present(addr); mask != self {
		c.violate("write-shared@%d: cluster %d invalidated addr %#x but presence mask is %#x, want %#x",
			now, cluster, addr, mask, self)
	}
	c.checkOthersNotResident(now, cluster, addr, "write-shared")
}

func (c *Checker) checkOthersNotResident(now uint64, cluster int, addr uint32, what string) {
	for i, cl := range c.clusters {
		if i != cluster && cl.Probe(addr) {
			c.violate("%s@%d: cluster %d wrote addr %#x but cluster %d still holds a copy",
				what, now, cluster, addr, i)
		}
	}
}

// AfterEvicted implements snoop.Verifier: an eviction notice means the
// line left the cache and the presence bit must be clear.
func (c *Checker) AfterEvicted(now uint64, cluster int, lineIndex uint32, dirty bool) {
	addr := lineIndex << c.lineShift
	if mask := c.bus.Present(addr); mask&(uint32(1)<<uint(cluster)) != 0 {
		c.violate("evict@%d: cluster %d evicted line %d but its presence bit is still set (mask %#x)",
			now, cluster, lineIndex, mask)
	}
	if c.clusters[cluster].Probe(addr) {
		c.violate("evict@%d: cluster %d evicted line %d but the line is still in its cache",
			now, cluster, lineIndex)
	}
}

// Audit performs the full presence-vs-residency cross check:
//
//   - every resident line's presence bit is set (exact always, victim
//     buffer or not — parked victims keep their bit);
//   - every set presence bit corresponds to a resident line (exact only
//     without victim buffers; see victimSlack);
//   - no presence bit names a cluster beyond the cluster count;
//   - the flat and paged presence representations agree across the
//     migration boundary (Bus.PresenceConsistency).
//
// Audit is a full state walk — O(cache lines + presence footprint) — so
// the simulator runs it at end of run (FinishRun), not per transaction.
func (c *Checker) Audit() {
	for i, cl := range c.clusters {
		bit := uint32(1) << uint(i)
		cl.VisitLines(func(li uint32, dirty bool) {
			if c.bus.Present(li<<c.lineShift)&bit == 0 {
				c.violate("audit: cluster %d holds line %d but its presence bit is clear", i, li)
			}
		})
	}
	allClusters := uint32(1)<<uint(len(c.clusters)) - 1
	c.bus.VisitPresence(func(li uint32, mask uint32) {
		if mask&^allClusters != 0 {
			c.violate("audit: line %d presence mask %#x names nonexistent clusters (have %d)",
				li, mask, len(c.clusters))
		}
		if c.victimSlack {
			return
		}
		addr := li << c.lineShift
		for i, cl := range c.clusters {
			if mask&(uint32(1)<<uint(i)) != 0 && !cl.Probe(addr) {
				c.violate("audit: line %d presence mask %#x claims cluster %d holds it but the line is absent",
					li, mask, i)
			}
		}
	})
	if err := c.bus.PresenceConsistency(); err != nil {
		c.violate("audit: %v", err)
	}
}

// FinishRun runs the end-of-run audit plus the accounting conservation
// invariants and returns the accumulated violations as one error (nil
// when the run is clean):
//
//   - hits + misses == accesses: each cluster's tag store accounted
//     every access the simulator issued exactly once (Misses[k] <=
//     Accesses[k] per kind, and TotalAccesses matches the checker's own
//     per-access count);
//   - the run executed exactly the input trace's reference count;
//   - per-bank busy cycles never exceed elapsed cycles (a bank occupied
//     BankAccessCycles per access cannot have been busy longer than the
//     run, modulo the final access running off the end).
func (c *Checker) FinishRun(f Final) error {
	c.Audit()
	for i, cs := range f.Cache {
		for k := 0; k < mem.NumKinds; k++ {
			if cs.Misses[k] > cs.Accesses[k] {
				c.violate("cluster %d: %d misses of kind %d exceed %d accesses",
					i, cs.Misses[k], k, cs.Accesses[k])
			}
		}
		if i < len(c.accesses) && cs.TotalAccesses() != c.accesses[i] {
			c.violate("cluster %d: tag store accounted %d accesses (hits+misses) but the simulator issued %d",
				i, cs.TotalAccesses(), c.accesses[i])
		}
	}
	if f.ExpectedRefs != 0 && f.Refs != f.ExpectedRefs {
		c.violate("run executed %d references, trace has %d", f.Refs, f.ExpectedRefs)
	}
	for i, bs := range f.Bank {
		if bs == nil {
			continue
		}
		for b, n := range bs.BankAccesses {
			if busy := n * f.BankAccessCycles; busy > f.Cycles+f.BankAccessCycles {
				c.violate("cluster %d bank %d: %d accesses imply %d busy cycles, run lasted %d",
					i, b, n, busy, f.Cycles)
			}
		}
	}
	return c.Err()
}
