// The oracle simulator: a deliberately naive reimplementation of the
// documented simulation model, used to cross-check the optimized
// simulator's results. Where internal/sim compiles traces into arenas,
// keeps a flat presence array, fuses the direct-mapped bank/tag path
// inline and schedules processors through a packed binary heap, the
// oracle uses maps for everything (sets, presence, bank timing, locks),
// walks the Program's own stream slices, and picks the next processor
// with a linear scan. The two implementations share no simulation code —
// only the small statistics structs they both report — so a bug in one
// is overwhelmingly unlikely to be reproduced by the other.
//
// Model scope (the paper's baseline model, which the whole design-space
// grid runs under): fixed 100-cycle memory, zero bus occupancy, flat
// main memory, no victim buffer, no statistics warmup. Ablations of
// those assumptions (BusOccupancy, MemBanks, VictimEntries, WarmupRefs)
// are outside the oracle's scope and are guarded by the invariant
// checker instead.
package verify

import (
	"fmt"
	"reflect"

	"sccsim/internal/cache"
	"sccsim/internal/mem"
	"sccsim/internal/scc"
	"sccsim/internal/snoop"
	"sccsim/internal/sysmodel"
	"sccsim/internal/trace"
)

// OracleOptions mirrors the subset of sim.Options the oracle models.
type OracleOptions struct {
	// WriteBufferDepth follows the documented sim.Options semantics:
	// 0 means the default of 8, negative means infinite.
	WriteBufferDepth int
	// SwitchPenalty is the multiprogramming context-switch cost in
	// cycles. Ignored by RunOracle.
	SwitchPenalty uint64
}

func (o OracleOptions) wbDepth() int {
	switch {
	case o.WriteBufferDepth == 0:
		return 8
	case o.WriteBufferDepth < 0:
		return 1 << 30
	default:
		return o.WriteBufferDepth
	}
}

// oracleSpinInterval is the documented re-test period of the
// test-and-test-and-set spin loop (sim.SpinInterval).
const oracleSpinInterval = 12

// Process is one sequential program of a multiprogramming workload, the
// oracle-side mirror of sim.Process (verify cannot import sim).
type Process struct {
	Name string
	Refs []mem.Ref
}

// RunStats is the result surface the oracle and the real simulator are
// compared on: every headline counter, per-processor stall account, and
// per-cluster statistic both implementations compute.
type RunStats struct {
	Cycles      uint64
	Refs        uint64
	LockSpins   uint64
	Switches    uint64
	ProcFinish  []uint64
	ReadStall   []uint64
	WriteStall  []uint64
	BankStall   []uint64
	BarrierWait []uint64
	LockStall   []uint64
	PhaseCycles []uint64
	// Cache[i] / Bank[i] are cluster i's tag-store and contention stats
	// (per-processor, not per-cluster, in the private hierarchy).
	Cache []cache.Stats
	Bank  []scc.Stats
	Bus   snoop.Stats
	// L1[p] is processor p's private L1 statistics (hybrid hierarchy
	// only; nil otherwise).
	L1 []cache.Stats
}

// DiffRunStats compares an oracle run against a real run field by field
// and returns a human-readable description of every divergence (empty
// when the runs agree exactly).
func DiffRunStats(oracle, real *RunStats) []string {
	var d []string
	add := func(format string, args ...any) { d = append(d, fmt.Sprintf(format, args...)) }
	cmp := func(name string, a, b uint64) {
		if a != b {
			add("%s: oracle %d, real %d", name, a, b)
		}
	}
	cmp("cycles", oracle.Cycles, real.Cycles)
	cmp("refs", oracle.Refs, real.Refs)
	cmp("lock spins", oracle.LockSpins, real.LockSpins)
	cmp("switches", oracle.Switches, real.Switches)
	cmpSlice := func(name string, a, b []uint64) {
		if len(a) != len(b) {
			add("%s: oracle has %d entries, real %d", name, len(a), len(b))
			return
		}
		for i := range a {
			if a[i] != b[i] {
				add("%s[%d]: oracle %d, real %d", name, i, a[i], b[i])
				return
			}
		}
	}
	cmpSlice("proc finish", oracle.ProcFinish, real.ProcFinish)
	cmpSlice("read stall", oracle.ReadStall, real.ReadStall)
	cmpSlice("write stall", oracle.WriteStall, real.WriteStall)
	cmpSlice("bank stall", oracle.BankStall, real.BankStall)
	cmpSlice("barrier wait", oracle.BarrierWait, real.BarrierWait)
	cmpSlice("lock stall", oracle.LockStall, real.LockStall)
	cmpSlice("phase cycles", oracle.PhaseCycles, real.PhaseCycles)
	if len(oracle.Cache) != len(real.Cache) {
		add("cache stats: oracle has %d clusters, real %d", len(oracle.Cache), len(real.Cache))
	} else {
		for i := range oracle.Cache {
			if !reflect.DeepEqual(oracle.Cache[i], real.Cache[i]) {
				add("cluster %d cache stats: oracle %+v, real %+v", i, oracle.Cache[i], real.Cache[i])
			}
		}
	}
	if len(oracle.Bank) != len(real.Bank) {
		add("bank stats: oracle has %d clusters, real %d", len(oracle.Bank), len(real.Bank))
	} else {
		for i := range oracle.Bank {
			if !reflect.DeepEqual(oracle.Bank[i], real.Bank[i]) {
				add("cluster %d bank stats: oracle %+v, real %+v", i, oracle.Bank[i], real.Bank[i])
			}
		}
	}
	if oracle.Bus != real.Bus {
		add("bus stats: oracle %+v, real %+v", oracle.Bus, real.Bus)
	}
	if len(oracle.L1) != len(real.L1) {
		add("L1 stats: oracle has %d processors, real %d", len(oracle.L1), len(real.L1))
	} else {
		for i := range oracle.L1 {
			if !reflect.DeepEqual(oracle.L1[i], real.L1[i]) {
				add("processor %d L1 stats: oracle %+v, real %+v", i, oracle.L1[i], real.L1[i])
			}
		}
	}
	return d
}

// oway is one way of one oracle cache set.
type oway struct {
	tag   uint32
	lru   uint64
	valid bool
	dirty bool
}

// oracleRngSeed and oracleXorshift reimplement (sharing no code) the
// documented deterministic victim-draw stream for random replacement:
// Marsaglia's 13/17/5 xorshift32 seeded with the golden-ratio word,
// advanced only when a miss finds no empty way.
const oracleRngSeed = 0x9E3779B9

func oracleXorshift(x uint32) uint32 {
	x ^= x << 13
	x ^= x >> 17
	x ^= x << 5
	return x
}

// oracleCache is the naive cache model: a map of lazily-created sets,
// true-LRU via a per-cache access clock, write-allocate, write-back.
// Victim choice matches the documented policy: first empty way, else
// the least recently used way (or, under random replacement, a
// deterministic xorshift32 draw over the way positions).
type oracleCache struct {
	nsets  uint32
	assoc  int
	line   uint32
	random bool
	rng    uint32
	sets   map[uint32][]oway
	clock  uint64
	stats  cache.Stats
}

func newOracleCache(size, assoc, lineBytes int, repl string) (*oracleCache, error) {
	if assoc < 1 {
		return nil, fmt.Errorf("verify: oracle cache: associativity %d, want >= 1", assoc)
	}
	if lineBytes < 4 || lineBytes > 1024 || lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("verify: oracle cache: line size %d, want a power of two in 4..1024", lineBytes)
	}
	var random bool
	switch repl {
	case "", sysmodel.ReplLRU:
	case sysmodel.ReplRandom:
		random = true
	default:
		return nil, fmt.Errorf("verify: oracle cache: replacement %q", repl)
	}
	lines := size / lineBytes
	if lines*lineBytes != size || lines < assoc {
		return nil, fmt.Errorf("verify: oracle cache: size %d not a whole number of %d-way line sets", size, assoc)
	}
	nsets := lines / assoc
	return &oracleCache{
		nsets: uint32(nsets), assoc: assoc, line: uint32(lineBytes),
		random: random, rng: oracleRngSeed, sets: make(map[uint32][]oway),
	}, nil
}

func (c *oracleCache) set(tag uint32) []oway {
	s := tag % c.nsets
	w, ok := c.sets[s]
	if !ok {
		w = make([]oway, c.assoc)
		c.sets[s] = w
	}
	return w
}

// access performs one reference, returning hit or the displaced line.
func (c *oracleCache) access(addr uint32, kind mem.Kind) (hit bool, evicted uint32, evictedDirty, evictedValid bool) {
	tag := addr / c.line
	ways := c.set(tag)
	c.stats.Accesses[kind]++
	c.clock++
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].lru = c.clock
			if kind == mem.Write {
				ways[i].dirty = true
			}
			return true, 0, false, false
		}
	}
	c.stats.Misses[kind]++
	victim := -1
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = 0
		for i := 1; i < len(ways); i++ {
			if ways[i].lru < ways[victim].lru {
				victim = i
			}
		}
		// Random replacement draws only on a genuinely full set, and
		// only when replacement is a choice (direct-mapped caches have a
		// forced victim and never touch the stream).
		if c.random && c.assoc > 1 {
			c.rng = oracleXorshift(c.rng)
			victim = int(c.rng % uint32(c.assoc))
		}
		c.stats.Evictions++
		evicted, evictedDirty, evictedValid = ways[victim].tag, ways[victim].dirty, true
		if evictedDirty {
			c.stats.WriteBacks++
		}
	}
	ways[victim] = oway{tag: tag, lru: c.clock, valid: true, dirty: kind == mem.Write}
	return false, evicted, evictedDirty, evictedValid
}

// invalidate removes addr's line if present (inter-cluster coherence).
func (c *oracleCache) invalidate(addr uint32) (present, dirty bool) {
	tag := addr / c.line
	ways, ok := c.sets[tag%c.nsets]
	if !ok {
		return false, false
	}
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			c.stats.Invalidations++
			if ways[i].dirty {
				c.stats.WriteBacks++
			}
			present, dirty = true, ways[i].dirty
			ways[i] = oway{}
			return present, dirty
		}
	}
	return false, false
}

// oracleIntraClusterLatency is the documented cache-to-cache transfer
// latency of the private organization's intra-cluster bus
// (sim.IntraClusterLatency), restated rather than imported.
const oracleIntraClusterLatency = 20

// ol1 is the naive model of one hybrid-hierarchy private L1: a
// direct-mapped, write-through, no-write-allocate tag store whose lines
// are clean by construction, held as a map from set index to resident
// line address. Statistics live outside (RunStats.L1), mirroring the
// documented external accounting.
type ol1 struct {
	tags  map[uint32]uint32
	nsets uint32
	line  uint32
}

func newOl1(size, lineBytes int) *ol1 {
	return &ol1{
		tags:  make(map[uint32]uint32),
		nsets: uint32(size / lineBytes),
		line:  uint32(lineBytes),
	}
}

func (c *ol1) probe(addr uint32) bool {
	tag := addr / c.line
	t, ok := c.tags[tag%c.nsets]
	return ok && t == tag
}

// fill installs addr's line, reporting whether a different line was
// displaced (silently — write-through lines are clean).
func (c *ol1) fill(addr uint32) (displaced bool) {
	tag := addr / c.line
	set := tag % c.nsets
	t, ok := c.tags[set]
	c.tags[set] = tag
	return ok && t != tag
}

func (c *ol1) invalidate(addr uint32) (present bool) {
	tag := addr / c.line
	set := tag % c.nsets
	if t, ok := c.tags[set]; ok && t == tag {
		delete(c.tags, set)
		return true
	}
	return false
}

// osys is the assembled oracle machine for one run. The hierarchy
// decides the shape: shared keeps one cache per cluster, private one
// per processor (mem = memAccessPrivate), hybrid adds per-processor L1s
// in front of the per-cluster caches (mem = memAccessHybrid).
type osys struct {
	banks    int
	wbDepth  int
	line     uint32
	caches   []*oracleCache
	presence map[uint32]uint32
	bus      snoop.Stats
	// mem is the hierarchy's reference path; access goes through it.
	mem func(p int, now uint64, addr uint32, kind mem.Kind) uint64
	// Per-cluster bank state, map-keyed by bank number.
	bankFree  []map[uint32]uint64
	bankCount []map[uint32]uint64
	bankConf  []uint64
	bankWait  []uint64
	// wb[i] holds in-flight buffered-write completion times: one buffer
	// per cluster (shared/hybrid) or per processor (private).
	wb      [][]uint64
	locks   map[uint32]int
	cluster []int
	// private: group[i] is cache i's cluster (intra-cluster fetch test).
	private bool
	group   []int
	// hybrid: per-processor L1s, external stats, and the inclusion
	// hooks the shared-path code invokes.
	l1           []*ol1
	l1St         []cache.Stats
	onEvict      func(c int, evictedLine uint32)
	onInvalidate func(c int, addr uint32)
	ppc          int
	st           *RunStats
}

// li maps a byte address to its line index at the configured line size.
func (s *osys) li(addr uint32) uint32 { return addr / s.line }

func newOsys(cfg sysmodel.Config, procs int, o OracleOptions) (*osys, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &osys{
		wbDepth:  o.wbDepth(),
		line:     uint32(cfg.Line()),
		presence: make(map[uint32]uint32),
		locks:    make(map[uint32]int),
		cluster:  make([]int, procs),
		ppc:      cfg.ProcsPerCluster,
		st: &RunStats{
			ProcFinish:  make([]uint64, procs),
			ReadStall:   make([]uint64, procs),
			WriteStall:  make([]uint64, procs),
			BankStall:   make([]uint64, procs),
			BarrierWait: make([]uint64, procs),
			LockStall:   make([]uint64, procs),
		},
	}

	if cfg.HierarchyKind() == sysmodel.HierarchyPrivate {
		// Private organization: one cache per processor, no banks, a
		// per-processor write buffer, and intra-cluster fetches.
		if procs > 32 {
			return nil, fmt.Errorf("verify: oracle: private hierarchy supports at most 32 caches, config has %d", procs)
		}
		s.private = true
		s.group = make([]int, procs)
		perProc := cfg.SCCBytes / cfg.ProcsPerCluster
		for p := 0; p < procs; p++ {
			c, err := newOracleCache(perProc, cfg.Assoc, cfg.Line(), cfg.ReplPolicy())
			if err != nil {
				return nil, err
			}
			s.caches = append(s.caches, c)
			s.cluster[p] = p
			s.group[p] = p / cfg.ProcsPerCluster
		}
		s.wb = make([][]uint64, procs)
		s.mem = s.memAccessPrivate
		return s, nil
	}

	banks := cfg.Banks()
	if banks < 1 || banks&(banks-1) != 0 {
		return nil, fmt.Errorf("verify: oracle: bank count %d is not a positive power of two", banks)
	}
	if cfg.SCCBytes/cfg.Line() < banks {
		return nil, fmt.Errorf("verify: oracle: %d B has fewer lines than %d banks", cfg.SCCBytes, banks)
	}
	s.banks = banks
	for i := 0; i < cfg.Clusters; i++ {
		c, err := newOracleCache(cfg.SCCBytes, cfg.Assoc, cfg.Line(), cfg.ReplPolicy())
		if err != nil {
			return nil, err
		}
		s.caches = append(s.caches, c)
		s.bankFree = append(s.bankFree, make(map[uint32]uint64))
		s.bankCount = append(s.bankCount, make(map[uint32]uint64))
	}
	s.bankConf = make([]uint64, cfg.Clusters)
	s.bankWait = make([]uint64, cfg.Clusters)
	s.wb = make([][]uint64, cfg.Clusters)
	for p := 0; p < procs; p++ {
		s.cluster[p] = p / cfg.ProcsPerCluster
	}
	s.mem = s.memAccess

	if cfg.HierarchyKind() == sysmodel.HierarchyHybrid {
		s.l1 = make([]*ol1, procs)
		s.l1St = make([]cache.Stats, procs)
		for p := range s.l1 {
			s.l1[p] = newOl1(cfg.L1Size(), cfg.Line())
		}
		// Inclusion: a line leaving a cluster's cache is back-invalidated
		// out of that cluster's L1s, whether it left by eviction ...
		s.onEvict = func(c int, evictedLine uint32) {
			addr := evictedLine * s.line
			for p := c * s.ppc; p < (c+1)*s.ppc; p++ {
				if s.l1[p].invalidate(addr) {
					s.l1St[p].Invalidations++
				}
			}
		}
		// ... or by inter-cluster invalidation.
		s.onInvalidate = func(c int, addr uint32) {
			for p := c * s.ppc; p < (c+1)*s.ppc; p++ {
				if s.l1[p].invalidate(addr) {
					s.l1St[p].Invalidations++
				}
			}
		}
		s.mem = s.memAccessHybrid
	}
	return s, nil
}

// bankStart arbitrates addr's line-interleaved bank at time now.
func (s *osys) bankStart(p, c int, addr uint32, now uint64) uint64 {
	b := s.li(addr) % uint32(s.banks)
	s.bankCount[c][b]++
	start := now
	if free := s.bankFree[c][b]; free > now {
		s.bankConf[c]++
		s.bankWait[c] += free - now
		s.st.BankStall[p] += free - now
		start = free
	}
	s.bankFree[c][b] = start + sysmodel.BankAccessCycles
	return start
}

// invalidateOthers kills the line in every holder but the writer.
func (s *osys) invalidateOthers(li, addr uint32, c int, mask uint32) {
	others := mask &^ (uint32(1) << uint(c))
	if others == 0 {
		return
	}
	s.bus.InvalidationTxns++
	for i := range s.caches {
		if others&(uint32(1)<<uint(i)) == 0 {
			continue
		}
		present, dirty := s.caches[i].invalidate(addr)
		if s.onInvalidate != nil {
			s.onInvalidate(i, addr)
		}
		if present {
			s.bus.Invalidations++
			if dirty {
				s.bus.DirtyInvalidations++
			}
		}
	}
}

// fetch services a miss: 100-cycle line transfer plus coherence actions.
func (s *osys) fetch(c int, addr uint32, kind mem.Kind) uint64 {
	s.bus.Fetches++
	li := s.li(addr)
	mask := s.presence[li]
	self := uint32(1) << uint(c)
	if mask&^self != 0 {
		s.bus.FetchesFromSCC++
	}
	if kind == mem.Write {
		s.invalidateOthers(li, addr, c, mask)
		s.presence[li] = self
	} else {
		s.presence[li] = mask | self
	}
	return sysmodel.MemLatency
}

// bufferWrite retires a write completing at ready into cluster c's
// write buffer, stalling processor p only when the buffer is full.
func (s *osys) bufferWrite(p, c int, now, ready uint64) uint64 {
	q := s.wb[c]
	for len(q) > 0 && q[0] <= now {
		q = q[1:]
	}
	if len(q) >= s.wbDepth {
		wait := q[0] - now
		s.st.WriteStall[p] += wait
		now = q[0]
		q = q[1:]
	}
	s.wb[c] = append(q, ready)
	return now
}

// memAccess performs one load or store through processor p's cluster.
func (s *osys) memAccess(p int, now uint64, addr uint32, kind mem.Kind) uint64 {
	c := s.cluster[p]
	start := s.bankStart(p, c, addr, now)
	hit, evicted, evictedDirty, evictedValid := s.caches[c].access(addr, kind)
	if hit {
		if kind == mem.Write {
			li := s.li(addr)
			mask := s.presence[li]
			if mask&^(uint32(1)<<uint(c)) != 0 {
				s.invalidateOthers(li, addr, c, mask)
				s.presence[li] = uint32(1) << uint(c)
			}
		}
		return start
	}
	if evictedValid {
		if s.onEvict != nil {
			s.onEvict(c, evicted)
		}
		s.presence[evicted] &^= uint32(1) << uint(c)
		if evictedDirty {
			s.bus.WriteBacks++
		}
	}
	ready := start + s.fetch(c, addr, kind)
	if kind == mem.Read {
		s.st.ReadStall[p] += ready - start
		return ready
	}
	return s.bufferWrite(p, c, start, ready)
}

// memAccessPrivate is the private organization's reference path: one
// cache per processor, no banks, a write-invalidate bus over all caches,
// and misses served over the fast intra-cluster bus when a same-cluster
// cache holds the line.
func (s *osys) memAccessPrivate(p int, now uint64, addr uint32, kind mem.Kind) uint64 {
	hit, evicted, evictedDirty, evictedValid := s.caches[p].access(addr, kind)
	self := uint32(1) << uint(p)
	if evictedValid {
		s.presence[evicted] &^= self
		if evictedDirty {
			s.bus.WriteBacks++
		}
	}
	li := s.li(addr)
	if hit {
		if kind == mem.Write {
			mask := s.presence[li]
			if mask&^self != 0 {
				s.invalidateOthers(li, addr, p, mask)
				s.presence[li] = self
			}
		}
		return now
	}
	// Fetch: from a same-cluster cache over the intra-cluster bus if one
	// holds the line (scan holders lowest-id-first), else 100 cycles.
	s.bus.Fetches++
	mask := s.presence[li]
	if mask&^self != 0 {
		s.bus.FetchesFromSCC++
	}
	latency := uint64(sysmodel.MemLatency)
	others := mask &^ self
	for c := 0; others != 0; c++ {
		bit := uint32(1) << uint(c)
		if others&bit != 0 {
			others &^= bit
			if s.group[c] == s.group[p] {
				latency = oracleIntraClusterLatency
				s.bus.IntraClusterFetches++
				break
			}
		}
	}
	if kind == mem.Write {
		s.invalidateOthers(li, addr, p, mask)
		s.presence[li] = self
	} else {
		s.presence[li] = mask | self
	}
	ready := now + latency
	if kind == mem.Read {
		s.st.ReadStall[p] += ready - now
		return ready
	}
	return s.bufferWrite(p, p, now, ready)
}

// memAccessHybrid puts a per-processor write-through L1 in front of the
// shared-cluster path: read hits complete at once, read misses fill the
// L1 after the shared path services them, and every write goes through
// (invalidating same-cluster sibling copies at issue).
func (s *osys) memAccessHybrid(p int, now uint64, addr uint32, kind mem.Kind) uint64 {
	st := &s.l1St[p]
	if kind == mem.Write {
		st.Accesses[mem.Write]++
		if !s.l1[p].probe(addr) {
			st.Misses[mem.Write]++
		}
		c := s.cluster[p]
		for q := c * s.ppc; q < (c+1)*s.ppc; q++ {
			if q != p && s.l1[q].invalidate(addr) {
				s.l1St[q].Invalidations++
			}
		}
		return s.memAccess(p, now, addr, mem.Write)
	}
	st.Accesses[kind]++
	if s.l1[p].probe(addr) {
		return now
	}
	st.Misses[kind]++
	t := s.memAccess(p, now, addr, kind)
	if s.l1[p].fill(addr) {
		st.Evictions++
	}
	return t
}

// access performs one reference, handling the lock kinds' documented
// test-and-test-and-set semantics. retry means a spin iteration: the
// caller must re-issue the same reference at the returned time.
func (s *osys) access(p int, now uint64, r mem.Ref) (uint64, bool) {
	switch r.Kind {
	case mem.Lock:
		t := s.mem(p, now, r.Addr, mem.Read)
		if holder, held := s.locks[r.Addr]; held && holder != p {
			s.st.LockSpins++
			s.st.LockStall[p] += oracleSpinInterval
			return t + oracleSpinInterval, true
		}
		t = s.mem(p, t, r.Addr, mem.Write)
		s.locks[r.Addr] = p
		return t, false
	case mem.Unlock:
		t := s.mem(p, now, r.Addr, mem.Write)
		delete(s.locks, r.Addr)
		return t, false
	default:
		return s.mem(p, now, r.Addr, r.Kind), false
	}
}

// finish materializes the final per-cluster statistics.
func (s *osys) finish(clock []uint64) *RunStats {
	copy(s.st.ProcFinish, clock)
	for _, t := range clock {
		if t > s.st.Cycles {
			s.st.Cycles = t
		}
	}
	for c, oc := range s.caches {
		s.st.Cache = append(s.st.Cache, oc.stats)
		if s.private {
			// Private caches have no banks; the simulator reports one
			// pseudo-bank carrying the cache's total access count.
			s.st.Bank = append(s.st.Bank, scc.Stats{
				BankAccesses: []uint64{oc.stats.TotalAccesses()},
			})
			continue
		}
		bs := scc.Stats{
			BankConflicts:  s.bankConf[c],
			BankWaitCycles: s.bankWait[c],
			BankAccesses:   make([]uint64, s.banks),
		}
		for b, n := range s.bankCount[c] {
			bs.BankAccesses[b] = n
		}
		s.st.Bank = append(s.st.Bank, bs)
	}
	s.st.Bus = s.bus
	s.st.L1 = s.l1St
	return s.st
}

// RunOracle replays a parallel program on the oracle machine: processors
// advance in global virtual-time order (earliest next issue time, lowest
// id on ties) and synchronize at phase barriers, per the documented
// model. The returned RunStats is compared against the real simulator's
// Result.VerifyStats with DiffRunStats.
func RunOracle(cfg sysmodel.Config, prog *trace.Program, o OracleOptions) (*RunStats, error) {
	procs := cfg.Procs()
	if prog.Procs != procs {
		return nil, fmt.Errorf("verify: oracle: program %q has %d processors, config has %d",
			prog.Name, prog.Procs, procs)
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	s, err := newOsys(cfg, procs, o)
	if err != nil {
		return nil, err
	}

	clock := make([]uint64, procs)
	var phaseStart uint64
	for _, ph := range prog.Phases {
		streams := ph.Streams
		pos := make([]int, procs)
		next := make([]uint64, procs)
		active := make([]bool, procs)
		for p := 0; p < procs; p++ {
			if len(streams[p]) > 0 {
				next[p] = clock[p] + uint64(streams[p][0].Gap)
				active[p] = true
			}
		}
		for {
			// Pick the earliest scheduled processor, lowest id on ties.
			p := -1
			for q := 0; q < procs; q++ {
				if active[q] && (p < 0 || next[q] < next[p]) {
					p = q
				}
			}
			if p < 0 {
				break
			}
			t := next[p]
			r := streams[p][pos[p]]
			if r.Kind != mem.Idle {
				t2, retry := s.access(p, t, r)
				if retry {
					clock[p] = t2
					next[p] = t2
					continue
				}
				t = t2
				s.st.Refs++
			}
			pos[p]++
			clock[p] = t
			if pos[p] == len(streams[p]) {
				active[p] = false
				continue
			}
			next[p] = t + uint64(streams[p][pos[p]].Gap)
		}
		// Barrier: everyone waits for the slowest processor.
		var maxT uint64
		for _, t := range clock {
			if t > maxT {
				maxT = t
			}
		}
		for p := range clock {
			s.st.BarrierWait[p] += maxT - clock[p]
			clock[p] = maxT
		}
		s.st.PhaseCycles = append(s.st.PhaseCycles, maxT-phaseStart)
		phaseStart = maxT
	}
	return s.finish(clock), nil
}

// RunOracleMultiprog replays a multiprogramming workload on the oracle
// machine under the documented round-robin scheduler: a processor whose
// quantum expires queues its process and takes the head; idle processors
// pick up preempted processes immediately.
func RunOracleMultiprog(cfg sysmodel.Config, processes []Process, quantum uint64, o OracleOptions) (*RunStats, error) {
	if len(processes) == 0 {
		return nil, fmt.Errorf("verify: oracle: no processes to schedule")
	}
	if quantum == 0 {
		return nil, fmt.Errorf("verify: oracle: zero scheduler quantum")
	}
	if cfg.HierarchyKind() != sysmodel.HierarchyShared {
		return nil, fmt.Errorf("verify: oracle: hierarchy %q is not supported for multiprogramming workloads", cfg.HierarchyKind())
	}
	nproc := cfg.Procs()
	s, err := newOsys(cfg, nproc, o)
	if err != nil {
		return nil, err
	}

	pos := make([]int, len(processes))
	queue := make([]int, 0, len(processes))
	current := make([]int, nproc)
	quantumEnd := make([]uint64, nproc)
	clock := make([]uint64, nproc)
	idle := make([]bool, nproc)
	idleSince := make([]uint64, nproc)
	scheduled := make([]bool, nproc)

	for p := 0; p < nproc; p++ {
		if p < len(processes) {
			current[p] = p
			quantumEnd[p] = quantum
			scheduled[p] = true
		} else {
			current[p] = -1
			idle[p] = true
		}
	}
	for i := nproc; i < len(processes); i++ {
		queue = append(queue, i)
	}

	anyIdle := func() bool {
		for _, b := range idle {
			if b {
				return true
			}
		}
		return false
	}

	// wake hands queued processes to idle processors, at or after time t.
	wake := func(t uint64) {
		for len(queue) > 0 {
			victim := -1
			for p := 0; p < nproc; p++ {
				if idle[p] && (victim < 0 || clock[p] < clock[victim]) {
					victim = p
				}
			}
			if victim < 0 {
				return
			}
			pid := queue[0]
			queue = queue[1:]
			idle[victim] = false
			if clock[victim] < t {
				s.st.BarrierWait[victim] += t - clock[victim]
				clock[victim] = t
			}
			s.st.BarrierWait[victim] += clock[victim] - idleSince[victim]
			current[victim] = pid
			s.st.Switches++
			clock[victim] += o.SwitchPenalty
			quantumEnd[victim] = clock[victim] + quantum
			scheduled[victim] = true
		}
	}

	for {
		// Pick the scheduled processor with the earliest clock, lowest
		// id on ties — the documented issue order.
		p := -1
		for q := 0; q < nproc; q++ {
			if scheduled[q] && (p < 0 || clock[q] < clock[p]) {
				p = q
			}
		}
		if p < 0 {
			break
		}
		scheduled[p] = false
		pid := current[p]
		if pid < 0 {
			continue
		}
		st := processes[pid].Refs

		if pos[pid] >= len(st) {
			// Process finished: take the next one or go idle.
			if len(queue) > 0 {
				next := queue[0]
				queue = queue[1:]
				current[p] = next
				s.st.Switches++
				clock[p] += o.SwitchPenalty
				quantumEnd[p] = clock[p] + quantum
				scheduled[p] = true
			} else {
				current[p] = -1
				idle[p] = true
				idleSince[p] = clock[p]
			}
			continue
		}

		if clock[p] >= quantumEnd[p] && (len(queue) > 0 || anyIdle()) {
			// Quantum expired and someone can use the processor.
			queue = append(queue, pid)
			next := queue[0]
			queue = queue[1:]
			current[p] = next
			if next != pid {
				s.st.Switches++
				clock[p] += o.SwitchPenalty
			}
			quantumEnd[p] = clock[p] + quantum
			wake(clock[p])
			scheduled[p] = true
			continue
		}
		if clock[p] >= quantumEnd[p] {
			// Nobody is waiting: keep running, restart the quantum.
			quantumEnd[p] = clock[p] + quantum
		}

		r := st[pos[pid]]
		t := clock[p] + uint64(r.Gap)
		if r.Kind != mem.Idle {
			var retry bool
			t, retry = s.access(p, t, r)
			if retry {
				clock[p] = t
				scheduled[p] = true
				continue
			}
			s.st.Refs++
		}
		pos[pid]++
		clock[p] = t
		scheduled[p] = true
	}

	// Close out idle accounting to the makespan.
	var maxT uint64
	for _, t := range clock {
		if t > maxT {
			maxT = t
		}
	}
	for p := 0; p < nproc; p++ {
		if idle[p] {
			s.st.BarrierWait[p] += maxT - idleSince[p]
		}
	}
	return s.finish(clock), nil
}
