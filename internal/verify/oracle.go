// The oracle simulator: a deliberately naive reimplementation of the
// documented simulation model, used to cross-check the optimized
// simulator's results. Where internal/sim compiles traces into arenas,
// keeps a flat presence array, fuses the direct-mapped bank/tag path
// inline and schedules processors through a packed binary heap, the
// oracle uses maps for everything (sets, presence, bank timing, locks),
// walks the Program's own stream slices, and picks the next processor
// with a linear scan. The two implementations share no simulation code —
// only the small statistics structs they both report — so a bug in one
// is overwhelmingly unlikely to be reproduced by the other.
//
// Model scope (the paper's baseline model, which the whole design-space
// grid runs under): fixed 100-cycle memory, zero bus occupancy, flat
// main memory, no victim buffer, no statistics warmup. Ablations of
// those assumptions (BusOccupancy, MemBanks, VictimEntries, WarmupRefs)
// are outside the oracle's scope and are guarded by the invariant
// checker instead.
package verify

import (
	"fmt"
	"reflect"

	"sccsim/internal/cache"
	"sccsim/internal/mem"
	"sccsim/internal/scc"
	"sccsim/internal/snoop"
	"sccsim/internal/sysmodel"
	"sccsim/internal/trace"
)

// OracleOptions mirrors the subset of sim.Options the oracle models.
type OracleOptions struct {
	// WriteBufferDepth follows the documented sim.Options semantics:
	// 0 means the default of 8, negative means infinite.
	WriteBufferDepth int
	// SwitchPenalty is the multiprogramming context-switch cost in
	// cycles. Ignored by RunOracle.
	SwitchPenalty uint64
}

func (o OracleOptions) wbDepth() int {
	switch {
	case o.WriteBufferDepth == 0:
		return 8
	case o.WriteBufferDepth < 0:
		return 1 << 30
	default:
		return o.WriteBufferDepth
	}
}

// oracleSpinInterval is the documented re-test period of the
// test-and-test-and-set spin loop (sim.SpinInterval).
const oracleSpinInterval = 12

// Process is one sequential program of a multiprogramming workload, the
// oracle-side mirror of sim.Process (verify cannot import sim).
type Process struct {
	Name string
	Refs []mem.Ref
}

// RunStats is the result surface the oracle and the real simulator are
// compared on: every headline counter, per-processor stall account, and
// per-cluster statistic both implementations compute.
type RunStats struct {
	Cycles      uint64
	Refs        uint64
	LockSpins   uint64
	Switches    uint64
	ProcFinish  []uint64
	ReadStall   []uint64
	WriteStall  []uint64
	BankStall   []uint64
	BarrierWait []uint64
	LockStall   []uint64
	PhaseCycles []uint64
	// Cache[i] / Bank[i] are cluster i's tag-store and contention stats.
	Cache []cache.Stats
	Bank  []scc.Stats
	Bus   snoop.Stats
}

// DiffRunStats compares an oracle run against a real run field by field
// and returns a human-readable description of every divergence (empty
// when the runs agree exactly).
func DiffRunStats(oracle, real *RunStats) []string {
	var d []string
	add := func(format string, args ...any) { d = append(d, fmt.Sprintf(format, args...)) }
	cmp := func(name string, a, b uint64) {
		if a != b {
			add("%s: oracle %d, real %d", name, a, b)
		}
	}
	cmp("cycles", oracle.Cycles, real.Cycles)
	cmp("refs", oracle.Refs, real.Refs)
	cmp("lock spins", oracle.LockSpins, real.LockSpins)
	cmp("switches", oracle.Switches, real.Switches)
	cmpSlice := func(name string, a, b []uint64) {
		if len(a) != len(b) {
			add("%s: oracle has %d entries, real %d", name, len(a), len(b))
			return
		}
		for i := range a {
			if a[i] != b[i] {
				add("%s[%d]: oracle %d, real %d", name, i, a[i], b[i])
				return
			}
		}
	}
	cmpSlice("proc finish", oracle.ProcFinish, real.ProcFinish)
	cmpSlice("read stall", oracle.ReadStall, real.ReadStall)
	cmpSlice("write stall", oracle.WriteStall, real.WriteStall)
	cmpSlice("bank stall", oracle.BankStall, real.BankStall)
	cmpSlice("barrier wait", oracle.BarrierWait, real.BarrierWait)
	cmpSlice("lock stall", oracle.LockStall, real.LockStall)
	cmpSlice("phase cycles", oracle.PhaseCycles, real.PhaseCycles)
	if len(oracle.Cache) != len(real.Cache) {
		add("cache stats: oracle has %d clusters, real %d", len(oracle.Cache), len(real.Cache))
	} else {
		for i := range oracle.Cache {
			if !reflect.DeepEqual(oracle.Cache[i], real.Cache[i]) {
				add("cluster %d cache stats: oracle %+v, real %+v", i, oracle.Cache[i], real.Cache[i])
			}
		}
	}
	if len(oracle.Bank) != len(real.Bank) {
		add("bank stats: oracle has %d clusters, real %d", len(oracle.Bank), len(real.Bank))
	} else {
		for i := range oracle.Bank {
			if !reflect.DeepEqual(oracle.Bank[i], real.Bank[i]) {
				add("cluster %d bank stats: oracle %+v, real %+v", i, oracle.Bank[i], real.Bank[i])
			}
		}
	}
	if oracle.Bus != real.Bus {
		add("bus stats: oracle %+v, real %+v", oracle.Bus, real.Bus)
	}
	return d
}

// oway is one way of one oracle cache set.
type oway struct {
	tag   uint32
	lru   uint64
	valid bool
	dirty bool
}

// oracleCache is the naive cache model: a map of lazily-created sets,
// true-LRU via a per-cache access clock, write-allocate, write-back.
// Victim choice matches the documented policy: first empty way, else
// the least recently used way.
type oracleCache struct {
	nsets uint32
	assoc int
	sets  map[uint32][]oway
	clock uint64
	stats cache.Stats
}

func newOracleCache(size, assoc int) (*oracleCache, error) {
	if assoc < 1 {
		return nil, fmt.Errorf("verify: oracle cache: associativity %d, want >= 1", assoc)
	}
	lines := size / sysmodel.LineSize
	if lines*sysmodel.LineSize != size || lines < assoc {
		return nil, fmt.Errorf("verify: oracle cache: size %d not a whole number of %d-way line sets", size, assoc)
	}
	nsets := lines / assoc
	return &oracleCache{nsets: uint32(nsets), assoc: assoc, sets: make(map[uint32][]oway)}, nil
}

func (c *oracleCache) set(tag uint32) []oway {
	s := tag % c.nsets
	w, ok := c.sets[s]
	if !ok {
		w = make([]oway, c.assoc)
		c.sets[s] = w
	}
	return w
}

// access performs one reference, returning hit or the displaced line.
func (c *oracleCache) access(addr uint32, kind mem.Kind) (hit bool, evicted uint32, evictedDirty, evictedValid bool) {
	tag := addr / sysmodel.LineSize
	ways := c.set(tag)
	c.stats.Accesses[kind]++
	c.clock++
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].lru = c.clock
			if kind == mem.Write {
				ways[i].dirty = true
			}
			return true, 0, false, false
		}
	}
	c.stats.Misses[kind]++
	victim := -1
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = 0
		for i := 1; i < len(ways); i++ {
			if ways[i].lru < ways[victim].lru {
				victim = i
			}
		}
		c.stats.Evictions++
		evicted, evictedDirty, evictedValid = ways[victim].tag, ways[victim].dirty, true
		if evictedDirty {
			c.stats.WriteBacks++
		}
	}
	ways[victim] = oway{tag: tag, lru: c.clock, valid: true, dirty: kind == mem.Write}
	return false, evicted, evictedDirty, evictedValid
}

// invalidate removes addr's line if present (inter-cluster coherence).
func (c *oracleCache) invalidate(addr uint32) (present, dirty bool) {
	tag := addr / sysmodel.LineSize
	ways, ok := c.sets[tag%c.nsets]
	if !ok {
		return false, false
	}
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			c.stats.Invalidations++
			if ways[i].dirty {
				c.stats.WriteBacks++
			}
			present, dirty = true, ways[i].dirty
			ways[i] = oway{}
			return present, dirty
		}
	}
	return false, false
}

// osys is the assembled oracle machine for one run.
type osys struct {
	banks    int
	wbDepth  int
	caches   []*oracleCache
	presence map[uint32]uint32
	bus      snoop.Stats
	// Per-cluster bank state, map-keyed by bank number.
	bankFree  []map[uint32]uint64
	bankCount []map[uint32]uint64
	bankConf  []uint64
	bankWait  []uint64
	// wb[c] is cluster c's in-flight buffered-write completion times.
	wb      [][]uint64
	locks   map[uint32]int
	cluster []int
	st      *RunStats
}

func newOsys(cfg sysmodel.Config, procs int, o OracleOptions) (*osys, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	banks := cfg.Banks()
	if banks < 1 || banks&(banks-1) != 0 {
		return nil, fmt.Errorf("verify: oracle: bank count %d is not a positive power of two", banks)
	}
	if cfg.SCCBytes/sysmodel.LineSize < banks {
		return nil, fmt.Errorf("verify: oracle: %d B has fewer lines than %d banks", cfg.SCCBytes, banks)
	}
	s := &osys{
		banks:    banks,
		wbDepth:  o.wbDepth(),
		presence: make(map[uint32]uint32),
		locks:    make(map[uint32]int),
		cluster:  make([]int, procs),
		st: &RunStats{
			ProcFinish:  make([]uint64, procs),
			ReadStall:   make([]uint64, procs),
			WriteStall:  make([]uint64, procs),
			BankStall:   make([]uint64, procs),
			BarrierWait: make([]uint64, procs),
			LockStall:   make([]uint64, procs),
		},
	}
	for i := 0; i < cfg.Clusters; i++ {
		c, err := newOracleCache(cfg.SCCBytes, cfg.Assoc)
		if err != nil {
			return nil, err
		}
		s.caches = append(s.caches, c)
		s.bankFree = append(s.bankFree, make(map[uint32]uint64))
		s.bankCount = append(s.bankCount, make(map[uint32]uint64))
	}
	s.bankConf = make([]uint64, cfg.Clusters)
	s.bankWait = make([]uint64, cfg.Clusters)
	s.wb = make([][]uint64, cfg.Clusters)
	for p := 0; p < procs; p++ {
		s.cluster[p] = p / cfg.ProcsPerCluster
	}
	return s, nil
}

// bankStart arbitrates addr's line-interleaved bank at time now.
func (s *osys) bankStart(p, c int, addr uint32, now uint64) uint64 {
	b := sysmodel.LineIndex(addr) % uint32(s.banks)
	s.bankCount[c][b]++
	start := now
	if free := s.bankFree[c][b]; free > now {
		s.bankConf[c]++
		s.bankWait[c] += free - now
		s.st.BankStall[p] += free - now
		start = free
	}
	s.bankFree[c][b] = start + sysmodel.BankAccessCycles
	return start
}

// invalidateOthers kills the line in every holder but the writer.
func (s *osys) invalidateOthers(li, addr uint32, c int, mask uint32) {
	others := mask &^ (uint32(1) << uint(c))
	if others == 0 {
		return
	}
	s.bus.InvalidationTxns++
	for i := range s.caches {
		if others&(uint32(1)<<uint(i)) == 0 {
			continue
		}
		present, dirty := s.caches[i].invalidate(addr)
		if present {
			s.bus.Invalidations++
			if dirty {
				s.bus.DirtyInvalidations++
			}
		}
	}
}

// fetch services a miss: 100-cycle line transfer plus coherence actions.
func (s *osys) fetch(c int, addr uint32, kind mem.Kind) uint64 {
	s.bus.Fetches++
	li := sysmodel.LineIndex(addr)
	mask := s.presence[li]
	self := uint32(1) << uint(c)
	if mask&^self != 0 {
		s.bus.FetchesFromSCC++
	}
	if kind == mem.Write {
		s.invalidateOthers(li, addr, c, mask)
		s.presence[li] = self
	} else {
		s.presence[li] = mask | self
	}
	return sysmodel.MemLatency
}

// bufferWrite retires a write completing at ready into cluster c's
// write buffer, stalling processor p only when the buffer is full.
func (s *osys) bufferWrite(p, c int, now, ready uint64) uint64 {
	q := s.wb[c]
	for len(q) > 0 && q[0] <= now {
		q = q[1:]
	}
	if len(q) >= s.wbDepth {
		wait := q[0] - now
		s.st.WriteStall[p] += wait
		now = q[0]
		q = q[1:]
	}
	s.wb[c] = append(q, ready)
	return now
}

// memAccess performs one load or store through processor p's cluster.
func (s *osys) memAccess(p int, now uint64, addr uint32, kind mem.Kind) uint64 {
	c := s.cluster[p]
	start := s.bankStart(p, c, addr, now)
	hit, evicted, evictedDirty, evictedValid := s.caches[c].access(addr, kind)
	if hit {
		if kind == mem.Write {
			li := sysmodel.LineIndex(addr)
			mask := s.presence[li]
			if mask&^(uint32(1)<<uint(c)) != 0 {
				s.invalidateOthers(li, addr, c, mask)
				s.presence[li] = uint32(1) << uint(c)
			}
		}
		return start
	}
	if evictedValid {
		s.presence[evicted] &^= uint32(1) << uint(c)
		if evictedDirty {
			s.bus.WriteBacks++
		}
	}
	ready := start + s.fetch(c, addr, kind)
	if kind == mem.Read {
		s.st.ReadStall[p] += ready - start
		return ready
	}
	return s.bufferWrite(p, c, start, ready)
}

// access performs one reference, handling the lock kinds' documented
// test-and-test-and-set semantics. retry means a spin iteration: the
// caller must re-issue the same reference at the returned time.
func (s *osys) access(p int, now uint64, r mem.Ref) (uint64, bool) {
	switch r.Kind {
	case mem.Lock:
		t := s.memAccess(p, now, r.Addr, mem.Read)
		if holder, held := s.locks[r.Addr]; held && holder != p {
			s.st.LockSpins++
			s.st.LockStall[p] += oracleSpinInterval
			return t + oracleSpinInterval, true
		}
		t = s.memAccess(p, t, r.Addr, mem.Write)
		s.locks[r.Addr] = p
		return t, false
	case mem.Unlock:
		t := s.memAccess(p, now, r.Addr, mem.Write)
		delete(s.locks, r.Addr)
		return t, false
	default:
		return s.memAccess(p, now, r.Addr, r.Kind), false
	}
}

// finish materializes the final per-cluster statistics.
func (s *osys) finish(clock []uint64) *RunStats {
	copy(s.st.ProcFinish, clock)
	for _, t := range clock {
		if t > s.st.Cycles {
			s.st.Cycles = t
		}
	}
	for c, oc := range s.caches {
		s.st.Cache = append(s.st.Cache, oc.stats)
		bs := scc.Stats{
			BankConflicts:  s.bankConf[c],
			BankWaitCycles: s.bankWait[c],
			BankAccesses:   make([]uint64, s.banks),
		}
		for b, n := range s.bankCount[c] {
			bs.BankAccesses[b] = n
		}
		s.st.Bank = append(s.st.Bank, bs)
	}
	s.st.Bus = s.bus
	return s.st
}

// RunOracle replays a parallel program on the oracle machine: processors
// advance in global virtual-time order (earliest next issue time, lowest
// id on ties) and synchronize at phase barriers, per the documented
// model. The returned RunStats is compared against the real simulator's
// Result.VerifyStats with DiffRunStats.
func RunOracle(cfg sysmodel.Config, prog *trace.Program, o OracleOptions) (*RunStats, error) {
	procs := cfg.Procs()
	if prog.Procs != procs {
		return nil, fmt.Errorf("verify: oracle: program %q has %d processors, config has %d",
			prog.Name, prog.Procs, procs)
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	s, err := newOsys(cfg, procs, o)
	if err != nil {
		return nil, err
	}

	clock := make([]uint64, procs)
	var phaseStart uint64
	for _, ph := range prog.Phases {
		streams := ph.Streams
		pos := make([]int, procs)
		next := make([]uint64, procs)
		active := make([]bool, procs)
		for p := 0; p < procs; p++ {
			if len(streams[p]) > 0 {
				next[p] = clock[p] + uint64(streams[p][0].Gap)
				active[p] = true
			}
		}
		for {
			// Pick the earliest scheduled processor, lowest id on ties.
			p := -1
			for q := 0; q < procs; q++ {
				if active[q] && (p < 0 || next[q] < next[p]) {
					p = q
				}
			}
			if p < 0 {
				break
			}
			t := next[p]
			r := streams[p][pos[p]]
			if r.Kind != mem.Idle {
				t2, retry := s.access(p, t, r)
				if retry {
					clock[p] = t2
					next[p] = t2
					continue
				}
				t = t2
				s.st.Refs++
			}
			pos[p]++
			clock[p] = t
			if pos[p] == len(streams[p]) {
				active[p] = false
				continue
			}
			next[p] = t + uint64(streams[p][pos[p]].Gap)
		}
		// Barrier: everyone waits for the slowest processor.
		var maxT uint64
		for _, t := range clock {
			if t > maxT {
				maxT = t
			}
		}
		for p := range clock {
			s.st.BarrierWait[p] += maxT - clock[p]
			clock[p] = maxT
		}
		s.st.PhaseCycles = append(s.st.PhaseCycles, maxT-phaseStart)
		phaseStart = maxT
	}
	return s.finish(clock), nil
}

// RunOracleMultiprog replays a multiprogramming workload on the oracle
// machine under the documented round-robin scheduler: a processor whose
// quantum expires queues its process and takes the head; idle processors
// pick up preempted processes immediately.
func RunOracleMultiprog(cfg sysmodel.Config, processes []Process, quantum uint64, o OracleOptions) (*RunStats, error) {
	if len(processes) == 0 {
		return nil, fmt.Errorf("verify: oracle: no processes to schedule")
	}
	if quantum == 0 {
		return nil, fmt.Errorf("verify: oracle: zero scheduler quantum")
	}
	nproc := cfg.Procs()
	s, err := newOsys(cfg, nproc, o)
	if err != nil {
		return nil, err
	}

	pos := make([]int, len(processes))
	queue := make([]int, 0, len(processes))
	current := make([]int, nproc)
	quantumEnd := make([]uint64, nproc)
	clock := make([]uint64, nproc)
	idle := make([]bool, nproc)
	idleSince := make([]uint64, nproc)
	scheduled := make([]bool, nproc)

	for p := 0; p < nproc; p++ {
		if p < len(processes) {
			current[p] = p
			quantumEnd[p] = quantum
			scheduled[p] = true
		} else {
			current[p] = -1
			idle[p] = true
		}
	}
	for i := nproc; i < len(processes); i++ {
		queue = append(queue, i)
	}

	anyIdle := func() bool {
		for _, b := range idle {
			if b {
				return true
			}
		}
		return false
	}

	// wake hands queued processes to idle processors, at or after time t.
	wake := func(t uint64) {
		for len(queue) > 0 {
			victim := -1
			for p := 0; p < nproc; p++ {
				if idle[p] && (victim < 0 || clock[p] < clock[victim]) {
					victim = p
				}
			}
			if victim < 0 {
				return
			}
			pid := queue[0]
			queue = queue[1:]
			idle[victim] = false
			if clock[victim] < t {
				s.st.BarrierWait[victim] += t - clock[victim]
				clock[victim] = t
			}
			s.st.BarrierWait[victim] += clock[victim] - idleSince[victim]
			current[victim] = pid
			s.st.Switches++
			clock[victim] += o.SwitchPenalty
			quantumEnd[victim] = clock[victim] + quantum
			scheduled[victim] = true
		}
	}

	for {
		// Pick the scheduled processor with the earliest clock, lowest
		// id on ties — the documented issue order.
		p := -1
		for q := 0; q < nproc; q++ {
			if scheduled[q] && (p < 0 || clock[q] < clock[p]) {
				p = q
			}
		}
		if p < 0 {
			break
		}
		scheduled[p] = false
		pid := current[p]
		if pid < 0 {
			continue
		}
		st := processes[pid].Refs

		if pos[pid] >= len(st) {
			// Process finished: take the next one or go idle.
			if len(queue) > 0 {
				next := queue[0]
				queue = queue[1:]
				current[p] = next
				s.st.Switches++
				clock[p] += o.SwitchPenalty
				quantumEnd[p] = clock[p] + quantum
				scheduled[p] = true
			} else {
				current[p] = -1
				idle[p] = true
				idleSince[p] = clock[p]
			}
			continue
		}

		if clock[p] >= quantumEnd[p] && (len(queue) > 0 || anyIdle()) {
			// Quantum expired and someone can use the processor.
			queue = append(queue, pid)
			next := queue[0]
			queue = queue[1:]
			current[p] = next
			if next != pid {
				s.st.Switches++
				clock[p] += o.SwitchPenalty
			}
			quantumEnd[p] = clock[p] + quantum
			wake(clock[p])
			scheduled[p] = true
			continue
		}
		if clock[p] >= quantumEnd[p] {
			// Nobody is waiting: keep running, restart the quantum.
			quantumEnd[p] = clock[p] + quantum
		}

		r := st[pos[pid]]
		t := clock[p] + uint64(r.Gap)
		if r.Kind != mem.Idle {
			var retry bool
			t, retry = s.access(p, t, r)
			if retry {
				clock[p] = t
				scheduled[p] = true
				continue
			}
			s.st.Refs++
		}
		pos[pid]++
		clock[p] = t
		scheduled[p] = true
	}

	// Close out idle accounting to the makespan.
	var maxT uint64
	for _, t := range clock {
		if t > maxT {
			maxT = t
		}
	}
	for p := 0; p < nproc; p++ {
		if idle[p] {
			s.st.BarrierWait[p] += maxT - idleSince[p]
		}
	}
	return s.finish(clock), nil
}
