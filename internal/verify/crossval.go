// Cross-validation of the analytic backend against the exact
// simulator: the data model and bounds checking for comparing two
// full-grid sweeps point by point. Like the rest of this package it is
// deliberately simulator-free — it sees only numbers (miss ratios and
// cycle counts per design point), so it cannot inherit a bug from
// either backend's machinery. The facade (sccsim.CrossValidate) runs
// the two sweeps and hands the paired results here.
package verify

import (
	"fmt"
	"strings"
)

// RelFloor is the miss-ratio floor used in relative-error denominators:
// below it, a workload barely misses and tiny absolute differences
// would explode into meaningless relative ones, so errors are compared
// against the floor instead. (The paper's interesting miss ratios run
// from a few percent to ~65%.)
const RelFloor = 0.05

// CrossPoint pairs one design point's exact and analytic results.
type CrossPoint struct {
	Clusters        int `json:"clusters"`
	ProcsPerCluster int `json:"procs_per_cluster"`
	SCCBytes        int `json:"scc_bytes"`

	ExactMissRate    float64 `json:"exact_miss_rate"`
	AnalyticMissRate float64 `json:"analytic_miss_rate"`
	ExactCycles      uint64  `json:"exact_cycles"`
	AnalyticCycles   uint64  `json:"analytic_cycles"`

	// AbsErr is |exact - analytic| read miss ratio. RelErr is AbsErr
	// relative to max(ExactMissRate, RelFloor). CycleRelErr is the
	// cycle estimate's relative error against the exact makespan.
	AbsErr      float64 `json:"abs_err"`
	RelErr      float64 `json:"rel_err"`
	CycleRelErr float64 `json:"cycle_rel_err"`
}

// CrossBounds is one workload's accuracy contract: the ceilings a
// cross-validation report must stay under. A zero field disables that
// check.
type CrossBounds struct {
	// MaxAbsErr bounds every point's absolute miss-ratio error.
	MaxAbsErr float64 `json:"max_abs_err"`
	// MeanAbsErr bounds the grid's mean absolute miss-ratio error.
	MeanAbsErr float64 `json:"mean_abs_err"`
	// MaxRelErr bounds every point's relative miss-ratio error (see
	// RelFloor).
	MaxRelErr float64 `json:"max_rel_err"`
	// MaxCycleRelErr bounds every point's relative cycle-estimate error.
	MaxCycleRelErr float64 `json:"max_cycle_rel_err"`
}

// CrossReport is a completed cross-validation: the paired points and
// their error summary.
type CrossReport struct {
	Workload string       `json:"workload"`
	Points   []CrossPoint `json:"points"`

	MaxAbsErr      float64 `json:"max_abs_err"`
	MeanAbsErr     float64 `json:"mean_abs_err"`
	MaxRelErr      float64 `json:"max_rel_err"`
	MaxCycleRelErr float64 `json:"max_cycle_rel_err"`
}

// NewCrossReport computes each pair's errors and the grid summary.
// The error fields of the input points are overwritten.
func NewCrossReport(workload string, points []CrossPoint) *CrossReport {
	r := &CrossReport{Workload: workload, Points: points}
	var sum float64
	for i := range r.Points {
		p := &r.Points[i]
		p.AbsErr = abs(p.ExactMissRate - p.AnalyticMissRate)
		den := p.ExactMissRate
		if den < RelFloor {
			den = RelFloor
		}
		p.RelErr = p.AbsErr / den
		if p.ExactCycles > 0 {
			p.CycleRelErr = abs(float64(p.AnalyticCycles)-float64(p.ExactCycles)) / float64(p.ExactCycles)
		}
		sum += p.AbsErr
		if p.AbsErr > r.MaxAbsErr {
			r.MaxAbsErr = p.AbsErr
		}
		if p.RelErr > r.MaxRelErr {
			r.MaxRelErr = p.RelErr
		}
		if p.CycleRelErr > r.MaxCycleRelErr {
			r.MaxCycleRelErr = p.CycleRelErr
		}
	}
	if len(r.Points) > 0 {
		r.MeanAbsErr = sum / float64(len(r.Points))
	}
	return r
}

// Check asserts the report against the bounds, returning a descriptive
// error naming the first offending point (or summary statistic) on
// violation.
func (r *CrossReport) Check(b CrossBounds) error {
	if len(r.Points) == 0 {
		return fmt.Errorf("verify: cross-validation of %s has no points", r.Workload)
	}
	for i := range r.Points {
		p := &r.Points[i]
		if b.MaxAbsErr > 0 && p.AbsErr > b.MaxAbsErr {
			return fmt.Errorf("verify: %s %dx%dP/%dKB: miss-ratio error %.4f (exact %.4f, analytic %.4f) exceeds bound %.4f",
				r.Workload, p.Clusters, p.ProcsPerCluster, p.SCCBytes/1024, p.AbsErr, p.ExactMissRate, p.AnalyticMissRate, b.MaxAbsErr)
		}
		if b.MaxRelErr > 0 && p.RelErr > b.MaxRelErr {
			return fmt.Errorf("verify: %s %dx%dP/%dKB: relative miss-ratio error %.3f exceeds bound %.3f",
				r.Workload, p.Clusters, p.ProcsPerCluster, p.SCCBytes/1024, p.RelErr, b.MaxRelErr)
		}
		if b.MaxCycleRelErr > 0 && p.CycleRelErr > b.MaxCycleRelErr {
			return fmt.Errorf("verify: %s %dx%dP/%dKB: cycle-estimate error %.3f (exact %d, analytic %d) exceeds bound %.3f",
				r.Workload, p.Clusters, p.ProcsPerCluster, p.SCCBytes/1024, p.CycleRelErr, p.ExactCycles, p.AnalyticCycles, b.MaxCycleRelErr)
		}
	}
	if b.MeanAbsErr > 0 && r.MeanAbsErr > b.MeanAbsErr {
		return fmt.Errorf("verify: %s: mean miss-ratio error %.4f over %d points exceeds bound %.4f",
			r.Workload, r.MeanAbsErr, len(r.Points), b.MeanAbsErr)
	}
	return nil
}

// String renders the report as a fixed-width table (one row per point)
// with the summary line the CLI prints.
func (r *CrossReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cross-validation: %s (%d points)\n", r.Workload, len(r.Points))
	sb.WriteString("  cfg            exact    analytic  |err|   rel     cyc-rel\n")
	for i := range r.Points {
		p := &r.Points[i]
		fmt.Fprintf(&sb, "  %dx%dP/%4dKB  %.4f   %.4f    %.4f  %5.1f%%  %5.1f%%\n",
			p.Clusters, p.ProcsPerCluster, p.SCCBytes/1024,
			p.ExactMissRate, p.AnalyticMissRate, p.AbsErr, 100*p.RelErr, 100*p.CycleRelErr)
	}
	fmt.Fprintf(&sb, "  max |err| %.4f  mean |err| %.4f  max rel %.1f%%  max cyc-rel %.1f%%\n",
		r.MaxAbsErr, r.MeanAbsErr, 100*r.MaxRelErr, 100*r.MaxCycleRelErr)
	return sb.String()
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
