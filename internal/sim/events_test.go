package sim

import (
	"testing"

	"sccsim/internal/mem"
	"sccsim/internal/obs"
	"sccsim/internal/sysmodel"
	"sccsim/internal/trace"
)

// recorder is a test tracer that tallies events by kind.
type recorder struct {
	events []obs.Event
	byKind [NumEventKinds]uint64
}

func (r *recorder) Emit(e obs.Event) {
	r.events = append(r.events, e)
	r.byKind[e.Kind]++
}

func TestEventKindNames(t *testing.T) {
	for k := 0; k < NumEventKinds; k++ {
		if EventKindNames[k] == "" {
			t.Errorf("EventKindNames[%d] is empty", k)
		}
		if EventKind(k).String() != EventKindNames[k] {
			t.Errorf("EventKind(%d).String() = %q", k, EventKind(k).String())
		}
	}
	if EventKind(200).String() == "" {
		t.Error("out-of-range kind has empty String")
	}
}

// TestTracerSeesCacheActivity checks the event stream agrees with the
// run's cache statistics: one hit/miss event per SCC access of each kind.
func TestTracerSeesCacheActivity(t *testing.T) {
	// Two reads of one line (miss then hit), a write miss, a write hit.
	p := prog(1, []mem.Ref{
		rd(0x1000, 0), rd(0x1004, 0), wr(0x2000, 0), wr(0x2004, 0),
	})
	rec := &recorder{}
	res, err := Run(cfg1(4096), Options{Tracer: rec}, p)
	if err != nil {
		t.Fatal(err)
	}
	scc := res.AggregateSCC()
	readMisses := scc.Misses[mem.Read]
	readHits := scc.Accesses[mem.Read] - readMisses
	writeMisses := scc.Misses[mem.Write]
	writeHits := scc.Accesses[mem.Write] - writeMisses

	if got := rec.byKind[EvReadMiss]; got != readMisses {
		t.Errorf("read-miss events = %d, stats say %d", got, readMisses)
	}
	if got := rec.byKind[EvReadHit]; got != readHits {
		t.Errorf("read-hit events = %d, stats say %d", got, readHits)
	}
	if got := rec.byKind[EvWriteMiss]; got != writeMisses {
		t.Errorf("write-miss events = %d, stats say %d", got, writeMisses)
	}
	if got := rec.byKind[EvWriteHit]; got != writeHits {
		t.Errorf("write-hit events = %d, stats say %d", got, writeHits)
	}
	// Every SCC miss produced a bus fetch event on the bus track.
	if got := rec.byKind[EvBusFetch]; got != res.Snoop.Fetches {
		t.Errorf("bus-fetch events = %d, snoop stats say %d", got, res.Snoop.Fetches)
	}
	for _, e := range rec.events {
		if EventKind(e.Kind) == EvBusFetch && e.Track != 1 {
			t.Errorf("bus fetch on track %d, want 1 (procs..procs+clusters-1)", e.Track)
		}
	}
}

// TestTracerLockEvents checks lock acquire/release pairing and that spin
// iterations appear as duration events.
func TestTracerLockEvents(t *testing.T) {
	lock := uint32(0x8000)
	p := &trace.Program{
		Name: "locks", Procs: 2,
		Phases: []trace.Phase{{Name: "p0", Streams: [][]mem.Ref{
			{
				{Addr: lock, Kind: mem.Lock},
				rd(0x1000, 200), // hold the lock for a while
				{Addr: lock, Kind: mem.Unlock},
			},
			{
				{Addr: lock, Kind: mem.Lock, Gap: 10},
				{Addr: lock, Kind: mem.Unlock},
			},
		}}},
	}
	cfg := sysmodel.Config{
		Clusters: 1, ProcsPerCluster: 2, SCCBytes: 4096,
		LoadLatency: 2, Assoc: 1,
	}
	rec := &recorder{}
	res, err := Run(cfg, Options{Tracer: rec}, p)
	if err != nil {
		t.Fatal(err)
	}
	if rec.byKind[EvLockAcquire] != 2 || rec.byKind[EvLockRelease] != 2 {
		t.Errorf("acquire/release = %d/%d, want 2/2",
			rec.byKind[EvLockAcquire], rec.byKind[EvLockRelease])
	}
	if rec.byKind[EvLockSpin] != res.LockSpins {
		t.Errorf("spin events = %d, stats say %d", rec.byKind[EvLockSpin], res.LockSpins)
	}
	for _, e := range rec.events {
		if EventKind(e.Kind) == EvLockSpin && e.Dur == 0 {
			t.Error("spin event has zero duration")
		}
	}
}

// TestTracerDoesNotPerturbSimulation: the traced run must produce
// byte-identical results to the untraced run.
func TestTracerDoesNotPerturbSimulation(t *testing.T) {
	mk := func() *trace.Program {
		var s0, s1 []mem.Ref
		for i := uint32(0); i < 200; i++ {
			s0 = append(s0, rd(0x1000+i*32, uint16(i%5)))
			s1 = append(s1, wr(0x9000+i*64, uint16(i%3)))
		}
		return &trace.Program{Name: "perturb", Procs: 2,
			Phases: []trace.Phase{{Name: "p0", Streams: [][]mem.Ref{s0, s1}}}}
	}
	cfg := sysmodel.Config{
		Clusters: 2, ProcsPerCluster: 1, SCCBytes: 4096,
		LoadLatency: 2, Assoc: 1,
	}
	plain, err := Run(cfg, Options{}, mk())
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	traced, err := Run(cfg, Options{Tracer: rec, Metrics: obs.NewRegistry()}, mk())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cycles != traced.Cycles || plain.Refs != traced.Refs {
		t.Errorf("traced run diverged: cycles %d vs %d, refs %d vs %d",
			plain.Cycles, traced.Cycles, plain.Refs, traced.Refs)
	}
	if len(rec.events) == 0 {
		t.Error("tracer saw no events")
	}
	// Barrier waits appear for the processor that finishes early.
	if rec.byKind[EvBarrierWait] == 0 {
		t.Error("no barrier-wait events in an imbalanced two-proc run")
	}
}

// TestMetricsHistogramsPopulated: a run with a registry records stall
// histograms without altering results.
func TestMetricsHistogramsPopulated(t *testing.T) {
	reg := obs.NewRegistry()
	var refs []mem.Ref
	for i := uint32(0); i < 64; i++ {
		refs = append(refs, rd(0x1000+i*512, 0))
	}
	if _, err := Run(cfg1(4096), Options{Metrics: reg}, prog(1, refs)); err != nil {
		t.Fatal(err)
	}
	if n := reg.Histogram("sim.read_miss_cycles", obs.CycleBuckets).Snapshot().Count; n == 0 {
		t.Error("read-miss histogram is empty after a missing run")
	}
}

// TestMultiprogSwitchEvents: context switches produce EvSwitch events
// matching Result.Switches.
func TestMultiprogSwitchEvents(t *testing.T) {
	mkProc := func(name string, base uint32) Process {
		var refs []mem.Ref
		for i := uint32(0); i < 50; i++ {
			refs = append(refs, rd(base+i*32, 1))
		}
		return Process{Name: name, Refs: refs}
	}
	procs := []Process{mkProc("a", 0x1000), mkProc("b", 0x20000), mkProc("c", 0x40000)}
	rec := &recorder{}
	res, err := RunMultiprog(cfg1(4096), Options{Tracer: rec, SwitchPenalty: 10}, procs, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Switches == 0 {
		t.Fatal("expected context switches with 3 processes on 1 processor")
	}
	if rec.byKind[EvSwitch] != res.Switches {
		t.Errorf("switch events = %d, stats say %d", rec.byKind[EvSwitch], res.Switches)
	}
}
