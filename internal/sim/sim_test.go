package sim

import (
	"testing"

	"sccsim/internal/mem"
	"sccsim/internal/sysmodel"
	"sccsim/internal/trace"
)

// cfg1 is a minimal one-cluster, one-processor configuration.
func cfg1(sccBytes int) sysmodel.Config {
	return sysmodel.Config{
		Clusters: 1, ProcsPerCluster: 1, SCCBytes: sccBytes,
		LoadLatency: 2, Assoc: 1,
	}
}

// prog builds a single-phase program from per-processor streams.
func prog(procs int, streams ...[]mem.Ref) *trace.Program {
	for len(streams) < procs {
		streams = append(streams, nil)
	}
	return &trace.Program{
		Name:   "test",
		Procs:  procs,
		Phases: []trace.Phase{{Name: "p0", Streams: streams}},
	}
}

func rd(addr uint32, gap uint16) mem.Ref {
	return mem.Ref{Addr: addr, Kind: mem.Read, Gap: gap}
}

func wr(addr uint32, gap uint16) mem.Ref {
	return mem.Ref{Addr: addr, Kind: mem.Write, Gap: gap}
}

func TestRunRejectsMismatchedProcs(t *testing.T) {
	p := prog(2, []mem.Ref{rd(0x100, 0)}, nil)
	if _, err := Run(cfg1(4096), Options{}, p); err == nil {
		t.Error("Run accepted a 2-proc program on a 1-proc config")
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	c := cfg1(4096)
	c.SCCBytes = 7
	if _, err := Run(c, Options{}, prog(1, nil)); err == nil {
		t.Error("Run accepted an invalid config")
	}
}

func TestRunRejectsInvalidProgram(t *testing.T) {
	p := prog(1, []mem.Ref{{Addr: 0, Kind: mem.Read}})
	if _, err := Run(cfg1(4096), Options{}, p); err == nil {
		t.Error("Run accepted a program with a zero address")
	}
}

func TestSingleReadMissTiming(t *testing.T) {
	// One read: issued at gap 10, misses, stalls MemLatency.
	p := prog(1, []mem.Ref{rd(0x100, 10)})
	r, err := Run(cfg1(4096), Options{}, p)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(10 + sysmodel.MemLatency)
	if r.Cycles != want {
		t.Errorf("Cycles = %d, want %d", r.Cycles, want)
	}
	if r.ReadStall[0] != sysmodel.MemLatency {
		t.Errorf("ReadStall = %d, want %d", r.ReadStall[0], sysmodel.MemLatency)
	}
	if r.Refs != 1 {
		t.Errorf("Refs = %d, want 1", r.Refs)
	}
}

func TestHitCostsNothing(t *testing.T) {
	p := prog(1, []mem.Ref{rd(0x100, 0), rd(0x104, 5)})
	r, err := Run(cfg1(4096), Options{}, p)
	if err != nil {
		t.Fatal(err)
	}
	// miss at 0 -> ready 100; second ref issues at 105, hits, no stall.
	if want := uint64(sysmodel.MemLatency + 5); r.Cycles != want {
		t.Errorf("Cycles = %d, want %d", r.Cycles, want)
	}
}

func TestWriteMissIsBuffered(t *testing.T) {
	p := prog(1, []mem.Ref{wr(0x100, 0), rd(0x200, 0)})
	r, err := Run(cfg1(4096), Options{}, p)
	if err != nil {
		t.Fatal(err)
	}
	// The write miss does not stall; the read miss issues at cycle 1
	// (bank busy until then? different bank) and stalls 100.
	if r.WriteStall[0] != 0 {
		t.Errorf("WriteStall = %d, want 0 (buffered)", r.WriteStall[0])
	}
	if r.Cycles >= 2*sysmodel.MemLatency {
		t.Errorf("Cycles = %d; write miss appears serialized with read miss", r.Cycles)
	}
}

func TestWriteBufferFullStalls(t *testing.T) {
	// Depth-1 write buffer: the second write miss must wait for the first.
	var refs []mem.Ref
	refs = append(refs, wr(0x100, 0), wr(0x200, 0), wr(0x300, 0))
	p := prog(1, refs)
	r, err := Run(cfg1(4096), Options{WriteBufferDepth: 1}, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.WriteStall[0] == 0 {
		t.Error("depth-1 write buffer never stalled on three write misses")
	}
	rInf, err := Run(cfg1(4096), Options{WriteBufferDepth: -1}, p)
	if err != nil {
		t.Fatal(err)
	}
	if rInf.WriteStall[0] != 0 {
		t.Errorf("infinite write buffer stalled %d cycles", rInf.WriteStall[0])
	}
	if rInf.Cycles >= r.Cycles {
		t.Errorf("infinite buffer (%d cycles) not faster than depth-1 (%d)", rInf.Cycles, r.Cycles)
	}
}

func TestIdleRefAdvancesClockOnly(t *testing.T) {
	p := prog(1, []mem.Ref{{Kind: mem.Idle, Gap: 500}})
	r, err := Run(cfg1(4096), Options{}, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles != 500 {
		t.Errorf("Cycles = %d, want 500", r.Cycles)
	}
	if r.Refs != 0 {
		t.Errorf("Refs = %d, want 0", r.Refs)
	}
	if s := r.AggregateSCC(); s.TotalAccesses() != 0 {
		t.Errorf("Idle ref touched the cache: %d accesses", s.TotalAccesses())
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	// Proc 0 computes 1000 cycles; proc 1 computes 10. After the phase
	// both must be at 1000, and proc 1 logs ~990 barrier wait.
	cfg := sysmodel.Config{Clusters: 1, ProcsPerCluster: 2, SCCBytes: 8192, LoadLatency: 3, Assoc: 1}
	p := &trace.Program{
		Name: "barrier", Procs: 2,
		Phases: []trace.Phase{
			{Name: "a", Streams: [][]mem.Ref{
				{{Kind: mem.Idle, Gap: 1000}},
				{{Kind: mem.Idle, Gap: 10}},
			}},
			{Name: "b", Streams: [][]mem.Ref{
				{{Kind: mem.Idle, Gap: 10}},
				{{Kind: mem.Idle, Gap: 10}},
			}},
		},
	}
	r, err := Run(cfg, Options{}, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles != 1010 {
		t.Errorf("Cycles = %d, want 1010", r.Cycles)
	}
	if r.BarrierWait[1] != 990 {
		t.Errorf("BarrierWait[1] = %d, want 990", r.BarrierWait[1])
	}
	if len(r.PhaseCycles) != 2 || r.PhaseCycles[0] != 1000 || r.PhaseCycles[1] != 10 {
		t.Errorf("PhaseCycles = %v, want [1000 10]", r.PhaseCycles)
	}
}

func TestIntraClusterSharingNoInvalidation(t *testing.T) {
	// Two processors in ONE cluster write the same line: a shared cache
	// holds a single copy, so there must be zero invalidations. This is
	// the paper's central structural property.
	cfg := sysmodel.Config{Clusters: 1, ProcsPerCluster: 2, SCCBytes: 8192, LoadLatency: 3, Assoc: 1}
	p := prog(2,
		[]mem.Ref{wr(0x100, 0), wr(0x100, 50), wr(0x100, 50)},
		[]mem.Ref{wr(0x100, 25), wr(0x100, 50), wr(0x100, 50)},
	)
	r, err := Run(cfg, Options{}, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Snoop.Invalidations != 0 {
		t.Errorf("intra-cluster sharing caused %d invalidations, want 0", r.Snoop.Invalidations)
	}
}

func TestInterClusterWriteInvalidates(t *testing.T) {
	// Two single-processor clusters ping-pong writes on one line.
	cfg := sysmodel.Config{Clusters: 2, ProcsPerCluster: 1, SCCBytes: 8192, LoadLatency: 2, Assoc: 1}
	p := prog(2,
		[]mem.Ref{wr(0x100, 0), wr(0x100, 600)},
		[]mem.Ref{wr(0x100, 300), wr(0x100, 600)},
	)
	r, err := Run(cfg, Options{}, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Snoop.Invalidations < 2 {
		t.Errorf("ping-pong writes caused %d invalidations, want >= 2", r.Snoop.Invalidations)
	}
}

func TestIntraClusterPrefetching(t *testing.T) {
	// Two processors in the SAME cluster walk the same region at the
	// same pace: whoever reaches a line first fetches it and the other
	// hits — the prefetching effect the paper credits for Barnes-Hut's
	// superlinear speedup. Compare against the same two processors
	// walking disjoint regions.
	cfg := sysmodel.Config{Clusters: 1, ProcsPerCluster: 2, SCCBytes: 64 * 1024, LoadLatency: 3, Assoc: 1}
	walk := func(base uint32) []mem.Ref {
		var s []mem.Ref
		for i := 0; i < 1000; i++ {
			s = append(s, rd(base+uint32(i*sysmodel.LineSize), 2))
		}
		return s
	}
	shared, err := Run(cfg, Options{}, prog(2, walk(0x10000), walk(0x10000)))
	if err != nil {
		t.Fatal(err)
	}
	disjoint, err := Run(cfg, Options{}, prog(2, walk(0x10000), walk(0x20000)))
	if err != nil {
		t.Fatal(err)
	}
	sm := shared.AggregateSCC().Misses[mem.Read]
	dm := disjoint.AggregateSCC().Misses[mem.Read]
	if sm > 1100 {
		t.Errorf("shared-walk misses = %d, want ~1000 (each line fetched once)", sm)
	}
	if dm < 1900 {
		t.Errorf("disjoint-walk misses = %d, want ~2000", dm)
	}
	if shared.Cycles >= disjoint.Cycles {
		t.Errorf("shared walk (%d cycles) not faster than disjoint (%d): prefetching absent",
			shared.Cycles, disjoint.Cycles)
	}
}

func TestDestructiveInterference(t *testing.T) {
	// Two processors in one cluster loop over DISJOINT regions that
	// collide in a small direct-mapped SCC: the miss rate must be much
	// higher than either processor alone would see.
	mk := func(procs int) *trace.Program {
		streams := make([][]mem.Ref, procs)
		for p := 0; p < procs; p++ {
			// Each proc loops over 128 lines (2 KB); regions are 4 KB
			// apart so in a 4 KB cache they map onto the same sets.
			base := uint32(0x10000 + p*4096)
			for pass := 0; pass < 20; pass++ {
				for i := 0; i < 128; i++ {
					streams[p] = append(streams[p], rd(base+uint32(i*sysmodel.LineSize), 3))
				}
			}
		}
		return &trace.Program{Name: "interfere", Procs: procs,
			Phases: []trace.Phase{{Name: "x", Streams: streams}}}
	}

	cfgA := sysmodel.Config{Clusters: 1, ProcsPerCluster: 1, SCCBytes: 4096, LoadLatency: 2, Assoc: 1}
	rA, err := Run(cfgA, Options{}, mk(1))
	if err != nil {
		t.Fatal(err)
	}
	cfgB := sysmodel.Config{Clusters: 1, ProcsPerCluster: 2, SCCBytes: 4096, LoadLatency: 3, Assoc: 1}
	rB, err := Run(cfgB, Options{}, mk(2))
	if err != nil {
		t.Fatal(err)
	}
	if rA.ReadMissRate() > 0.05 {
		t.Errorf("solo miss rate = %.3f, want cold-misses only", rA.ReadMissRate())
	}
	if rB.ReadMissRate() < 0.5 {
		t.Errorf("conflicting procs miss rate = %.3f, want interference thrashing", rB.ReadMissRate())
	}
}

func TestBankConflictAccounting(t *testing.T) {
	// Two procs hammer the same bank (same line) simultaneously.
	cfg := sysmodel.Config{Clusters: 1, ProcsPerCluster: 2, SCCBytes: 8192, LoadLatency: 3, Assoc: 1}
	var s0, s1 []mem.Ref
	for i := 0; i < 100; i++ {
		s0 = append(s0, rd(0x100, 0))
		s1 = append(s1, rd(0x100, 0))
	}
	r, err := Run(cfg, Options{}, prog(2, s0, s1))
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalBankStall() == 0 {
		t.Error("no bank stalls recorded for same-bank hammering")
	}
	if r.SCCBank[0].BankConflicts == 0 {
		t.Error("SCC bank stats show no conflicts")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := sysmodel.Config{Clusters: 2, ProcsPerCluster: 2, SCCBytes: 8192, LoadLatency: 3, Assoc: 1}
	mk := func() *trace.Program {
		streams := make([][]mem.Ref, 4)
		for p := 0; p < 4; p++ {
			for i := 0; i < 500; i++ {
				addr := uint32(0x10000 + ((i*7+p*13)%256)*sysmodel.LineSize)
				k := mem.Read
				if (i+p)%5 == 0 {
					k = mem.Write
				}
				streams[p] = append(streams[p], mem.Ref{Addr: addr, Kind: k, Gap: uint16(i % 7)})
			}
		}
		return &trace.Program{Name: "det", Procs: 4,
			Phases: []trace.Phase{{Name: "x", Streams: streams}}}
	}
	r1, err := Run(cfg, Options{}, mk())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg, Options{}, mk())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.Snoop.Invalidations != r2.Snoop.Invalidations {
		t.Errorf("simulation not deterministic: %d/%d vs %d/%d cycles/invalidations",
			r1.Cycles, r1.Snoop.Invalidations, r2.Cycles, r2.Snoop.Invalidations)
	}
}

func TestResultAggregation(t *testing.T) {
	cfg := sysmodel.Config{Clusters: 2, ProcsPerCluster: 1, SCCBytes: 4096, LoadLatency: 2, Assoc: 1}
	p := prog(2, []mem.Ref{rd(0x100, 0)}, []mem.Ref{rd(0x200, 0)})
	r, err := Run(cfg, Options{}, p)
	if err != nil {
		t.Fatal(err)
	}
	agg := r.AggregateSCC()
	if agg.Accesses[mem.Read] != 2 || agg.Misses[mem.Read] != 2 {
		t.Errorf("aggregate = %+v", agg)
	}
	if r.ReadMissRate() != 1.0 {
		t.Errorf("ReadMissRate = %v, want 1.0", r.ReadMissRate())
	}
	if r.TotalReadStall() != 2*sysmodel.MemLatency {
		t.Errorf("TotalReadStall = %d", r.TotalReadStall())
	}
}

func TestWarmupResetsStatistics(t *testing.T) {
	// A stream whose first half is cold misses and second half is hits:
	// with warmup set past the cold section, reported miss rate is ~0.
	var refs []mem.Ref
	for i := 0; i < 64; i++ {
		refs = append(refs, rd(uint32(0x10000+i*sysmodel.LineSize), 1))
	}
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < 64; i++ {
			refs = append(refs, rd(uint32(0x10000+i*sysmodel.LineSize), 1))
		}
	}
	p := prog(1, refs)
	base, err := Run(cfg1(64*1024), Options{}, p)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Run(cfg1(64*1024), Options{WarmupRefs: 64}, p)
	if err != nil {
		t.Fatal(err)
	}
	if base.ReadMissRate() < 0.2 {
		t.Errorf("whole-run miss rate %.3f, want cold section visible", base.ReadMissRate())
	}
	if warm.ReadMissRate() != 0 {
		t.Errorf("post-warmup miss rate %.3f, want 0", warm.ReadMissRate())
	}
	if warm.WarmupExcluded != 64 {
		t.Errorf("WarmupExcluded = %d, want 64", warm.WarmupExcluded)
	}
	if warm.Cycles != base.Cycles {
		t.Errorf("warmup changed timing: %d vs %d", warm.Cycles, base.Cycles)
	}
}
