package sim

import (
	"reflect"
	"strings"
	"testing"

	"sccsim/internal/mem"
	"sccsim/internal/sysmodel"
	"sccsim/internal/trace"
	"sccsim/internal/verify"
)

// sharingProg is a small two-processor program with read sharing,
// invalidating writes, a critical section and enough distinct lines to
// force evictions in a 4 KB direct-mapped SCC.
func sharingProg() *trace.Program {
	var a, b []mem.Ref
	for i := uint32(0); i < 400; i++ {
		addr := (i%300 + 1) * sysmodel.LineSize
		a = append(a, rd(addr, 1))
		b = append(b, rd(addr, 2))
		if i%5 == 0 {
			a = append(a, wr(addr, 0))
		}
		if i%50 == 0 {
			lock := uint32(0x9000)
			a = append(a,
				mem.Ref{Addr: lock, Kind: mem.Lock},
				wr(0x9100, 0),
				mem.Ref{Addr: lock, Kind: mem.Unlock})
			b = append(b,
				mem.Ref{Addr: lock, Kind: mem.Lock},
				wr(0x9100, 0),
				mem.Ref{Addr: lock, Kind: mem.Unlock})
		}
	}
	return prog(2, a, b)
}

func cfg2(sccBytes int) sysmodel.Config {
	return sysmodel.Config{
		Clusters: 2, ProcsPerCluster: 1, SCCBytes: sccBytes,
		LoadLatency: 2, Assoc: 1,
	}
}

// TestVerifyCleanRunIsTransparent is the nil-disabled contract in the
// observable direction: attaching the checker must not change a single
// number of a clean run.
func TestVerifyCleanRunIsTransparent(t *testing.T) {
	p := sharingProg()
	plain, err := Run(cfg2(4096), Options{}, p)
	if err != nil {
		t.Fatal(err)
	}
	checked, err := Run(cfg2(4096), Options{Verify: &verify.Options{}}, p)
	if err != nil {
		t.Fatalf("verified run failed on clean traffic: %v", err)
	}
	if !reflect.DeepEqual(plain, checked) {
		t.Fatal("enabling Options.Verify changed the simulation result")
	}
}

// TestVerifyLegacyReplay exercises the countRefs path (no compiled form
// to supply the expected reference total) and checks legacy-vs-compiled
// equivalence under verification.
func TestVerifyLegacyReplay(t *testing.T) {
	p := sharingProg()
	compiled, err := Run(cfg2(4096), Options{Verify: &verify.Options{}}, p)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := Run(cfg2(4096), Options{Verify: &verify.Options{}, LegacyReplay: true}, p)
	if err != nil {
		t.Fatalf("verified legacy run failed: %v", err)
	}
	if !reflect.DeepEqual(compiled, legacy) {
		t.Fatal("legacy and compiled verified runs diverge")
	}
}

func TestVerifyDeterminism(t *testing.T) {
	p := sharingProg()
	opts := Options{Verify: &verify.Options{}, VictimEntries: 4, WarmupRefs: 100}
	r1, err := Run(cfg2(4096), opts, p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg2(4096), opts, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("repeated verified runs are not identical")
	}
}

// TestVerifyTraceConcatenation is the metamorphic property the compiled
// trace cache relies on: doubling the program's phases must exactly
// double the executed reference count (timing may differ — the second
// pass starts warm).
func TestVerifyTraceConcatenation(t *testing.T) {
	p := sharingProg()
	doubled := &trace.Program{
		Name:   p.Name + "-x2",
		Procs:  p.Procs,
		Phases: append(append([]trace.Phase{}, p.Phases...), p.Phases...),
	}
	r1, err := Run(cfg2(4096), Options{Verify: &verify.Options{}}, p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg2(4096), Options{Verify: &verify.Options{}}, doubled)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Refs != 2*r1.Refs {
		t.Fatalf("doubled program executed %d refs, want exactly 2*%d", r2.Refs, r1.Refs)
	}
}

// TestRunPrivateVerifyTransparent pins the private-hierarchy analogue of
// the nil-disabled contract: the checker attaches to the per-processor
// caches and a clean run is unchanged by it.
func TestRunPrivateVerifyTransparent(t *testing.T) {
	p := sharingProg()
	cfg := cfg2(4096)
	cfg.Hierarchy = sysmodel.HierarchyPrivate
	plain, err := RunPrivate(cfg, Options{}, p)
	if err != nil {
		t.Fatal(err)
	}
	checked, err := RunPrivate(cfg, Options{Verify: &verify.Options{}}, p)
	if err != nil {
		t.Fatalf("verified private run failed on clean traffic: %v", err)
	}
	if !reflect.DeepEqual(plain, checked) {
		t.Fatal("enabling Options.Verify changed the private-hierarchy result")
	}
}

// TestVerifyCatchesMidRunCorruption assembles the system by hand, runs a
// program, then corrupts the presence table the way a coherence bug
// would (a resident line silently losing its bit) and requires the
// end-of-run audit to turn the run into an error.
func TestVerifyCatchesMidRunCorruption(t *testing.T) {
	p := sharingProg()
	opts := Options{Verify: &verify.Options{}}
	phases, comp, err := programPhases(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	s, err := newSystem(cfg2(4096), opts, 2)
	if err != nil {
		t.Fatal(err)
	}
	s.bus.ReserveLines(comp.MaxLineIndex() + 1)
	clock := replay(phases, 2, s.res, s.tr, 0, s.warmupReset, s.access)
	s.finish(clock)

	var addr uint32
	found := false
	s.sccs[0].VisitLines(func(lineIndex uint32, dirty bool) {
		if !found {
			addr = lineIndex * sysmodel.LineSize
			found = true
		}
	})
	if !found {
		t.Fatal("no resident line to corrupt")
	}
	s.bus.SetPresence(addr, 0)

	err = s.verifyFinish(comp.Refs())
	if err == nil {
		t.Fatal("audit missed the corrupted presence table")
	}
	if !strings.Contains(err.Error(), "verification failed") ||
		!strings.Contains(err.Error(), "presence bit is clear") {
		t.Fatalf("unexpected verification error: %v", err)
	}
}

// fuzzConfig maps arbitrary fuzz bytes onto a valid machine within the
// oracle's modelled envelope.
func fuzzConfig(clustersB, ppcB, sizeB, assocB uint8) sysmodel.Config {
	ppc := []int{1, 2, 4, 8}[int(ppcB)%4]
	return sysmodel.Config{
		Clusters:        int(clustersB)%4 + 1,
		ProcsPerCluster: ppc,
		// 512 B .. 4 KB: at least as many lines as the largest bank count
		// (8 procs * 4 banks), still a power-of-two set count.
		SCCBytes:    sysmodel.LineSize * (32 << (int(sizeB) % 4)),
		LoadLatency: sysmodel.ImpliedLoadLatency(ppc),
		Assoc:       1 << (int(assocB) % 2),
	}
}

// fuzzProgram deals the fuzz stream round-robin onto the processors,
// decoding each byte as one operation over a small shared footprint so
// sharing, invalidations and conflicts all occur. Locks are emitted as
// immediately-balanced acquire/release pairs, keeping the program valid
// by construction (trace.Program.Validate).
func fuzzProgram(procs int, stream []byte) *trace.Program {
	streams := make([][]mem.Ref, procs)
	for i, b := range stream {
		p := i % procs
		addr := (uint32(b)&0x3f + 1) * sysmodel.LineSize
		switch b >> 6 {
		case 0:
			streams[p] = append(streams[p], rd(addr, uint16(b&3)))
		case 1:
			streams[p] = append(streams[p], wr(addr, uint16(b&3)))
		case 2:
			streams[p] = append(streams[p], mem.Ref{Kind: mem.Idle, Gap: uint16(b)})
		default:
			lock := uint32(0x8000) + (addr&0x30)*sysmodel.LineSize
			streams[p] = append(streams[p],
				mem.Ref{Addr: lock, Kind: mem.Lock},
				wr(addr, 0),
				mem.Ref{Addr: lock, Kind: mem.Unlock})
		}
	}
	return prog(procs, streams...)
}

// FuzzSimConfig drives the verified simulator across fuzzed
// configurations and programs and holds it to three oracles at once:
// the invariant checker (any violation fails the run), determinism
// (identical reruns), legacy-vs-compiled equivalence, and the naive
// map-based model (exact statistics match).
func FuzzSimConfig(f *testing.F) {
	f.Add(uint8(0), uint8(1), uint8(2), uint8(0), int8(0), []byte("sccsim"))
	f.Add(uint8(1), uint8(2), uint8(0), uint8(1), int8(-1), []byte{0x40, 0x81, 0xc2, 0x03, 0xff, 0x7e, 0xbd})
	f.Add(uint8(3), uint8(3), uint8(3), uint8(0), int8(1), []byte{0xc0, 0xc0, 0x41, 0x02})
	f.Fuzz(func(t *testing.T, clustersB, ppcB, sizeB, assocB uint8, wbDepth int8, stream []byte) {
		cfg := fuzzConfig(clustersB, ppcB, sizeB, assocB)
		p := fuzzProgram(cfg.Procs(), stream)
		opts := Options{WriteBufferDepth: int(wbDepth), Verify: &verify.Options{}}

		res, err := Run(cfg, opts, p)
		if err != nil {
			t.Fatalf("verified run failed on %v: %v", cfg, err)
		}
		again, err := Run(cfg, opts, p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, again) {
			t.Fatalf("non-deterministic result on %v", cfg)
		}
		legacyOpts := opts
		legacyOpts.LegacyReplay = true
		legacy, err := Run(cfg, legacyOpts, p)
		if err != nil {
			t.Fatalf("verified legacy run failed on %v: %v", cfg, err)
		}
		if !reflect.DeepEqual(res, legacy) {
			t.Fatalf("legacy replay diverges on %v", cfg)
		}

		oracle, err := verify.RunOracle(cfg, p, verify.OracleOptions{WriteBufferDepth: int(wbDepth)})
		if err != nil {
			t.Fatalf("oracle failed on %v: %v", cfg, err)
		}
		rs := res.VerifyStats()
		if diffs := verify.DiffRunStats(oracle, &rs); len(diffs) > 0 {
			t.Fatalf("oracle divergence on %v: %s", cfg, strings.Join(diffs, "; "))
		}
	})
}
