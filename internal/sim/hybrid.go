package sim

import (
	"fmt"

	"sccsim/internal/cache"
	"sccsim/internal/mem"
	"sccsim/internal/snoop"
	"sccsim/internal/sysmodel"
	"sccsim/internal/trace"
)

// Hybrid (two-level) cluster organization: each processor gets a small
// private L1 in front of the cluster's shared SCC — the middle ground
// between the paper's shared SCC (bandwidth filtered through banks) and
// the pure private organization (capacity fragmented, coherence misses).
//
// Model, precisely (the oracle in internal/verify mirrors it):
//
//   - The L1 is per processor, direct-mapped, write-through with no
//     write-allocate, Config.L1Size() bytes of Config.Line()-byte lines.
//   - An L1 read hit completes immediately: no SCC bank access, no
//     stall. An L1 read miss goes through the shared-SCC path exactly as
//     the shared hierarchy would (bank arbitration, hit or 100-cycle
//     fetch), then fills the L1; the displaced L1 line is clean by
//     construction and leaves silently.
//   - Every write goes through the shared-SCC path (write-through); the
//     writer's L1 copy stays valid (the write updates it), while
//     same-cluster sibling L1 copies are invalidated at issue time —
//     the intra-cluster analogue of the bus's write-invalidate protocol.
//   - Multi-level inclusion is enforced: a line leaving a cluster's SCC
//     (eviction or inter-cluster invalidation) is back-invalidated out
//     of that cluster's L1s. L1 residency therefore always implies SCC
//     residency, which is what lets the coherence presence table keep
//     one bit per cluster.
//
// All SCC, bank, bus and write-buffer behaviour is byte-identical to
// the shared hierarchy for the references that reach the SCC; the L1
// only filters read hits out of that stream.

// hybridInv wraps a cluster's SCC invalidator so an inter-cluster
// invalidation also kills the cluster's L1 copies (inclusion). The
// presence/dirty answer is the SCC's: L1 copies are clean duplicates.
type hybridInv struct {
	scc snoop.Invalidator
	l1  []*cache.Cache
	st  []cache.Stats
}

func (h *hybridInv) Invalidate(addr uint32) (present, dirty bool) {
	present, dirty = h.scc.Invalidate(addr)
	for p, c := range h.l1 {
		if was, _ := c.Invalidate(addr); was {
			h.st[p].Invalidations++
		}
	}
	return present, dirty
}

// RunHybrid simulates the two-level organization. Run dispatches here
// when cfg.Hierarchy is "hybrid".
func RunHybrid(cfg sysmodel.Config, opts Options, prog *trace.Program) (*Result, error) {
	procs := cfg.Procs()
	if prog.Procs != procs {
		return nil, fmt.Errorf("sim: program %q generated for %d processors, config has %d",
			prog.Name, prog.Procs, procs)
	}
	phases, comp, err := programPhases(prog, opts)
	if err != nil {
		return nil, err
	}
	s, err := newSystem(cfg, opts, procs)
	if err != nil {
		return nil, err
	}
	if comp != nil {
		s.bus.ReserveLines(reserveLines(comp.MaxLineIndex(), cfg.Line()))
	}

	l1 := make([]*cache.Cache, procs)
	l1Stats := make([]cache.Stats, procs)
	for p := range l1 {
		c, err := cache.NewWith(cfg.L1Size(), 1, cfg.Line(), sysmodel.ReplLRU)
		if err != nil {
			return nil, fmt.Errorf("sim: hybrid L1: %w", err)
		}
		l1[p] = c
	}
	ppc := cfg.ProcsPerCluster
	for c := 0; c < cfg.Clusters; c++ {
		s.bus.SetInvalidator(c, &hybridInv{
			scc: s.sccs[c],
			l1:  l1[c*ppc : (c+1)*ppc],
			st:  l1Stats[c*ppc : (c+1)*ppc],
		})
	}
	// Inclusion: an SCC eviction back-invalidates the cluster's L1s
	// before the bus learns of it, so a bus-level probe never finds an
	// L1-only copy.
	s.onSCCEvict = func(c int, lineIndex uint32) {
		addr := lineIndex << cfg.LineShift()
		for p := c * ppc; p < (c+1)*ppc; p++ {
			if was, _ := l1[p].Invalidate(addr); was {
				l1Stats[p].Invalidations++
			}
		}
	}

	memAccess := func(p int, now uint64, addr uint32, kind mem.Kind) uint64 {
		st := &l1Stats[p]
		if kind == mem.Write {
			// Write-through, no write-allocate: the writer's own copy
			// stays valid, sibling copies die, and the write always
			// proceeds to the SCC.
			st.Accesses[mem.Write]++
			if !l1[p].Probe(addr) {
				st.Misses[mem.Write]++
			}
			c := int(s.cluster[p])
			for q := c * ppc; q < (c+1)*ppc; q++ {
				if q != p {
					if was, _ := l1[q].Invalidate(addr); was {
						l1Stats[q].Invalidations++
					}
				}
			}
			return s.memAccess(p, now, addr, mem.Write)
		}
		st.Accesses[kind]++
		if l1[p].Probe(addr) {
			return now
		}
		st.Misses[kind]++
		t := s.memAccess(p, now, addr, kind)
		if l1[p].FillDM(addr) {
			st.Evictions++
		}
		return t
	}

	access := func(p int, now uint64, r mem.Ref) (uint64, bool) {
		switch r.Kind {
		case mem.Lock:
			// Test-and-test-and-set through the L1: spins hit the cached
			// lock word until the holder's release write invalidates it.
			t := memAccess(p, now, r.Addr, mem.Read)
			if holder, held := s.locks.holder(r.Addr); held && holder != p {
				s.res.LockSpins++
				s.res.LockStall[p] += SpinInterval
				return t + SpinInterval, true
			}
			t = memAccess(p, t, r.Addr, mem.Write)
			s.locks.acquire(r.Addr, p)
			return t, false
		case mem.Unlock:
			t := memAccess(p, now, r.Addr, mem.Write)
			s.locks.release(r.Addr)
			return t, false
		default:
			return memAccess(p, now, r.Addr, r.Kind), false
		}
	}

	reset := func() {
		s.warmupReset()
		for i := range l1Stats {
			l1Stats[i] = cache.Stats{}
		}
	}
	clock := replay(phases, procs, s.res, s.tr, opts.WarmupRefs, reset, access)
	s.finish(clock)
	s.flushMetrics()
	s.res.L1 = make([]*cache.Stats, procs)
	for p := range l1Stats {
		s.res.L1[p] = &l1Stats[p]
	}
	if s.ck != nil {
		var exp uint64
		if comp != nil {
			exp = comp.Refs()
		} else {
			exp = countRefs(phases)
		}
		if err := s.verifyFinish(exp); err != nil {
			return nil, err
		}
	}
	return s.res, nil
}
