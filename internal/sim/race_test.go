package sim_test

import (
	"sync"
	"testing"

	"sccsim/internal/sim"
	"sccsim/internal/sysmodel"
	"sccsim/internal/workload/barnes"
)

// TestRunSharedProgramConcurrent enforces the package's concurrency
// contract: Run never mutates its trace.Program, so many goroutines may
// replay one shared program at once and every run returns identical
// results. Run it with -race (make test-race) to catch any write that
// sneaks into the shared trace.
func TestRunSharedProgramConcurrent(t *testing.T) {
	prog, err := barnes.Generate(barnes.Params{NBodies: 128, Steps: 1, Procs: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sysmodel.Default(2, 32*1024) // 4 clusters x 2 = the trace's 8 procs

	const goroutines = 8
	results := make([]*sim.Result, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = sim.Run(cfg, sim.Options{}, prog)
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	base := results[0]
	if base.Cycles == 0 || base.Refs == 0 {
		t.Fatalf("empty result: %+v", base)
	}
	for i, r := range results[1:] {
		if r.Cycles != base.Cycles || r.Refs != base.Refs ||
			r.Snoop.Invalidations != base.Snoop.Invalidations {
			t.Errorf("goroutine %d diverged: cycles %d refs %d inval %d, want %d/%d/%d",
				i+1, r.Cycles, r.Refs, r.Snoop.Invalidations,
				base.Cycles, base.Refs, base.Snoop.Invalidations)
		}
	}
}
