package sim

import (
	"fmt"

	"sccsim/internal/mem"
	"sccsim/internal/obs"
	"sccsim/internal/sysmodel"
	"sccsim/internal/trace"
)

// Process is one independent sequential program in a multiprogramming
// workload: a name and its complete reference stream. Processes never
// share data; their address spaces are laid out disjointly by the
// workload generator.
type Process struct {
	Name string
	Refs []mem.Ref
}

// RunMultiprog simulates a multiprogramming workload (Section 2.3 of the
// paper): the processes are scheduled onto the system's processors with a
// round-robin scheduler and the given time quantum in cycles (the paper
// uses 5 million). The run ends when every process has executed its whole
// stream; Result.Cycles is the makespan.
//
// A processor whose quantum expires puts its process at the tail of a
// global FIFO ready queue and takes the head; idle processors (out of
// work because fewer processes remain than processors) pick up preempted
// processes immediately.
func RunMultiprog(cfg sysmodel.Config, opts Options, processes []Process, quantum uint64) (*Result, error) {
	if len(processes) == 0 {
		return nil, fmt.Errorf("sim: no processes to schedule")
	}
	if quantum == 0 {
		return nil, fmt.Errorf("sim: zero scheduler quantum")
	}
	if h := cfg.HierarchyKind(); h != sysmodel.HierarchyShared {
		return nil, fmt.Errorf("sim: hierarchy %q is not supported for multiprogramming workloads; use the default shared hierarchy", h)
	}
	nproc := cfg.Procs()
	s, err := newSystem(cfg, opts, nproc)
	if err != nil {
		return nil, err
	}
	var expRefs uint64
	if !opts.LegacyReplay || s.ck != nil {
		// Size the flat presence table from the workload's footprint (and
		// count the non-idle references the verifier expects); one linear
		// pass over the streams is negligible against the run.
		var maxLine uint32
		shift := cfg.LineShift()
		for i := range processes {
			for _, r := range processes[i].Refs {
				if r.Kind == mem.Idle {
					continue
				}
				expRefs++
				if li := r.Addr >> shift; li > maxLine {
					maxLine = li
				}
			}
		}
		if !opts.LegacyReplay {
			s.bus.ReserveLines(maxLine + 1)
		}
	}

	// Per-process progress.
	pos := make([]int, len(processes))
	// Ready queue of process ids.
	queue := make([]int, 0, len(processes))
	// Per-processor state.
	current := make([]int, nproc) // process id, or -1
	quantumEnd := make([]uint64, nproc)
	clock := make([]uint64, nproc)
	idle := make([]bool, nproc)
	idleSince := make([]uint64, nproc)

	// Initial assignment: processes 0..nproc-1 to processors, rest queued.
	for p := 0; p < nproc; p++ {
		if p < len(processes) {
			current[p] = p
			quantumEnd[p] = quantum
		} else {
			current[p] = -1
			idle[p] = true
		}
	}
	for i := nproc; i < len(processes); i++ {
		queue = append(queue, i)
	}

	// The scheduler is keyed on each processor's clock; every push below
	// re-registers the processor at its current clock, which is exactly
	// what the old live-keyed heap observed (only a popped processor's
	// clock ever changes while it is unscheduled).
	h := newSched(nproc)
	for p := 0; p < nproc; p++ {
		if current[p] >= 0 {
			h.add(p, clock[p])
		}
	}

	// wake hands queued processes to idle processors, at or after time t.
	wake := func(t uint64) {
		for len(queue) > 0 {
			victim := -1
			for p := 0; p < nproc; p++ {
				if idle[p] && (victim < 0 || clock[p] < clock[victim]) {
					victim = p
				}
			}
			if victim < 0 {
				return
			}
			pid := queue[0]
			queue = queue[1:]
			idle[victim] = false
			if clock[victim] < t {
				s.res.BarrierWait[victim] += t - clock[victim]
				clock[victim] = t
			}
			s.res.BarrierWait[victim] += clock[victim] - idleSince[victim]
			current[victim] = pid
			s.res.Switches++
			s.emitSwitch(victim, clock[victim])
			clock[victim] += s.opts.SwitchPenalty
			quantumEnd[victim] = clock[victim] + quantum
			h.add(victim, clock[victim])
		}
	}

	for {
		p, _ := h.next()
		if p < 0 {
			break
		}
		pid := current[p]
		if pid < 0 {
			continue
		}
		st := processes[pid].Refs

		if pos[pid] >= len(st) {
			// Process finished: take the next one or go idle.
			if len(queue) > 0 {
				next := queue[0]
				queue = queue[1:]
				current[p] = next
				s.res.Switches++
				s.emitSwitch(p, clock[p])
				clock[p] += s.opts.SwitchPenalty
				quantumEnd[p] = clock[p] + quantum
				h.add(p, clock[p])
			} else {
				current[p] = -1
				idle[p] = true
				idleSince[p] = clock[p]
			}
			continue
		}

		if clock[p] >= quantumEnd[p] && (len(queue) > 0 || anyIdle(idle)) {
			// Quantum expired and someone can use the processor (or an
			// idle processor can take over the preempted process).
			queue = append(queue, pid)
			next := queue[0]
			queue = queue[1:]
			current[p] = next
			if next != pid {
				s.res.Switches++
				s.emitSwitch(p, clock[p])
				clock[p] += s.opts.SwitchPenalty
			}
			quantumEnd[p] = clock[p] + quantum
			wake(clock[p])
			h.add(p, clock[p])
			continue
		}
		if clock[p] >= quantumEnd[p] {
			// Nobody is waiting: keep running, restart the quantum.
			quantumEnd[p] = clock[p] + quantum
		}

		r := st[pos[pid]]
		t := clock[p] + uint64(r.Gap)
		if r.Kind != mem.Idle {
			var retry bool
			t, retry = s.access(p, t, r)
			if retry {
				// Spin iteration on a held lock: re-issue later.
				clock[p] = t
				h.add(p, t)
				continue
			}
			s.res.Refs++
		}
		pos[pid]++
		clock[p] = t
		h.add(p, t)
	}

	// Close out idle accounting to the makespan.
	var maxT uint64
	for _, t := range clock {
		if t > maxT {
			maxT = t
		}
	}
	for p := 0; p < nproc; p++ {
		if idle[p] {
			s.res.BarrierWait[p] += maxT - idleSince[p]
		}
	}
	s.finish(clock)
	s.flushMetrics()
	if s.ck != nil {
		if err := s.verifyFinish(expRefs); err != nil {
			return nil, err
		}
	}
	return s.res, nil
}

// emitSwitch traces a context switch on processor p at time t.
func (s *system) emitSwitch(p int, t uint64) {
	if s.tr != nil {
		s.tr.Emit(obs.Event{TS: t, Dur: s.opts.SwitchPenalty, Track: int32(p),
			Kind: uint8(EvSwitch)})
	}
}

func anyIdle(idle []bool) bool {
	for _, b := range idle {
		if b {
			return true
		}
	}
	return false
}

// ProcessesFromProgram flattens a single-processor trace.Program into a
// Process stream — a convenience for building multiprogramming workloads
// out of the same generators the parallel runs use.
func ProcessesFromProgram(p *trace.Program) (Process, error) {
	if p.Procs != 1 {
		return Process{}, fmt.Errorf("sim: program %q has %d processors, want 1", p.Name, p.Procs)
	}
	var refs []mem.Ref
	for _, ph := range p.Phases {
		refs = append(refs, ph.Streams[0]...)
	}
	return Process{Name: p.Name, Refs: refs}, nil
}
