package sim

import (
	"testing"

	"sccsim/internal/mem"
	"sccsim/internal/sysmodel"
	"sccsim/internal/trace"
)

func TestRunPrivateRejectsBadInput(t *testing.T) {
	cfg := sysmodel.Config{Clusters: 1, ProcsPerCluster: 2, SCCBytes: 8192, LoadLatency: 3, Assoc: 1}
	if _, err := RunPrivate(cfg, Options{}, prog(1, nil)); err == nil {
		t.Error("accepted mismatched processor count")
	}
	big := sysmodel.Config{Clusters: 16, ProcsPerCluster: 4, SCCBytes: 8192, LoadLatency: 4, Assoc: 1}
	if _, err := RunPrivate(big, Options{}, prog(64)); err == nil {
		t.Error("accepted 64 caches (bitmask limit is 32)")
	}
	tiny := sysmodel.Config{Clusters: 1, ProcsPerCluster: 8, SCCBytes: 64, LoadLatency: 4, Assoc: 1}
	if _, err := RunPrivate(tiny, Options{}, prog(8)); err == nil {
		t.Error("accepted an 8-byte private cache")
	}
}

func TestPrivateIntraClusterTransfer(t *testing.T) {
	// Proc 0 loads a line; proc 1 in the same cluster then reads it:
	// the second miss must cost IntraClusterLatency, not MemLatency.
	cfg := sysmodel.Config{Clusters: 1, ProcsPerCluster: 2, SCCBytes: 8192, LoadLatency: 3, Assoc: 1}
	p := prog(2,
		[]mem.Ref{rd(0x100, 0)},
		[]mem.Ref{rd(0x100, 300)},
	)
	r, err := RunPrivate(cfg, Options{}, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.ReadStall[0] != sysmodel.MemLatency {
		t.Errorf("first miss stalled %d, want %d", r.ReadStall[0], sysmodel.MemLatency)
	}
	if r.ReadStall[1] != IntraClusterLatency {
		t.Errorf("intra-cluster miss stalled %d, want %d", r.ReadStall[1], IntraClusterLatency)
	}
	if r.Snoop.IntraClusterFetches != 1 {
		t.Errorf("IntraClusterFetches = %d, want 1", r.Snoop.IntraClusterFetches)
	}
}

func TestPrivateInterClusterStillSlow(t *testing.T) {
	cfg := sysmodel.Config{Clusters: 2, ProcsPerCluster: 1, SCCBytes: 8192, LoadLatency: 2, Assoc: 1}
	p := prog(2,
		[]mem.Ref{rd(0x100, 0)},
		[]mem.Ref{rd(0x100, 300)},
	)
	r, err := RunPrivate(cfg, Options{}, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.ReadStall[1] != sysmodel.MemLatency {
		t.Errorf("inter-cluster miss stalled %d, want %d", r.ReadStall[1], sysmodel.MemLatency)
	}
}

func TestPrivateIntraClusterSharingInvalidates(t *testing.T) {
	// THE structural difference from the shared cache: two processors in
	// the same cluster writing one line ping-pong it between their
	// private caches — invalidations that the SCC avoids entirely.
	cfg := sysmodel.Config{Clusters: 1, ProcsPerCluster: 2, SCCBytes: 8192, LoadLatency: 3, Assoc: 1}
	mk := func() *trace.Program {
		return prog(2,
			[]mem.Ref{wr(0x100, 0), wr(0x100, 600), wr(0x100, 600)},
			[]mem.Ref{wr(0x100, 300), wr(0x100, 600), wr(0x100, 600)},
		)
	}
	priv, err := RunPrivate(cfg, Options{}, mk())
	if err != nil {
		t.Fatal(err)
	}
	shared, err := Run(cfg, Options{}, mk())
	if err != nil {
		t.Fatal(err)
	}
	if priv.Snoop.Invalidations < 4 {
		t.Errorf("private caches: %d invalidations, want ping-pong (>= 4)", priv.Snoop.Invalidations)
	}
	if shared.Snoop.Invalidations != 0 {
		t.Errorf("shared cache: %d invalidations, want 0", shared.Snoop.Invalidations)
	}
}

func TestPrivateNoBankConflicts(t *testing.T) {
	cfg := sysmodel.Config{Clusters: 1, ProcsPerCluster: 2, SCCBytes: 8192, LoadLatency: 3, Assoc: 1}
	var s0, s1 []mem.Ref
	for i := 0; i < 50; i++ {
		s0 = append(s0, rd(0x100, 0))
		s1 = append(s1, rd(0x100, 0))
	}
	r, err := RunPrivate(cfg, Options{}, prog(2, s0, s1))
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalBankStall() != 0 {
		t.Errorf("private caches recorded %d bank-stall cycles", r.TotalBankStall())
	}
}

func TestPrivateSharedCapacityComparison(t *testing.T) {
	// A single processor streaming a working set larger than its private
	// slice but smaller than the whole SCC: the shared organization must
	// win (the paper's capacity argument for shared caches).
	cfg := sysmodel.Config{Clusters: 1, ProcsPerCluster: 4, SCCBytes: 32 * 1024, LoadLatency: 4, Assoc: 1}
	mk := func() *trace.Program {
		var s []mem.Ref
		// 16 KB working set: fits the 32 KB SCC, not an 8 KB private slice.
		for pass := 0; pass < 10; pass++ {
			for i := 0; i < 1024; i++ {
				s = append(s, rd(0x100000+uint32(i*sysmodel.LineSize), 2))
			}
		}
		return prog(4, s)
	}
	priv, err := RunPrivate(cfg, Options{}, mk())
	if err != nil {
		t.Fatal(err)
	}
	shared, err := Run(cfg, Options{}, mk())
	if err != nil {
		t.Fatal(err)
	}
	if shared.Cycles >= priv.Cycles {
		t.Errorf("shared SCC (%d cycles) not faster than private slices (%d) on a big working set",
			shared.Cycles, priv.Cycles)
	}
}

func TestPrivateWriteBufferStalls(t *testing.T) {
	cfg := sysmodel.Config{Clusters: 1, ProcsPerCluster: 1, SCCBytes: 8192, LoadLatency: 2, Assoc: 1}
	var s []mem.Ref
	for i := 0; i < 4; i++ {
		s = append(s, wr(uint32(0x1000+i*sysmodel.LineSize), 0))
	}
	r, err := RunPrivate(cfg, Options{WriteBufferDepth: 1}, prog(1, s))
	if err != nil {
		t.Fatal(err)
	}
	if r.WriteStall[0] == 0 {
		t.Error("depth-1 private write buffer never stalled")
	}
}

func TestPrivateDeterminism(t *testing.T) {
	cfg := sysmodel.Config{Clusters: 2, ProcsPerCluster: 2, SCCBytes: 8192, LoadLatency: 3, Assoc: 1}
	mk := func() *trace.Program {
		streams := make([][]mem.Ref, 4)
		for p := 0; p < 4; p++ {
			for i := 0; i < 300; i++ {
				k := mem.Read
				if (i+p)%4 == 0 {
					k = mem.Write
				}
				streams[p] = append(streams[p], mem.Ref{
					Addr: 0x10000 + uint32((i*5+p*3)%128)*sysmodel.LineSize,
					Kind: k, Gap: uint16(i % 5),
				})
			}
		}
		return &trace.Program{Name: "det", Procs: 4,
			Phases: []trace.Phase{{Name: "x", Streams: streams}}}
	}
	a, err := RunPrivate(cfg, Options{}, mk())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPrivate(cfg, Options{}, mk())
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Snoop.Invalidations != b.Snoop.Invalidations {
		t.Error("RunPrivate not deterministic")
	}
}
