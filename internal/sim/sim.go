// Package sim is the detailed multiprocessor cache simulator at the heart
// of the reproduction (Section 2.2.2 of the paper). It replays a
// trace.Program on a configured system — clusters of processors sharing
// banked SCCs, kept coherent over a snoopy invalidation bus — and accounts
// execution time per processor.
//
// Timing model (matching the paper's stated assumptions):
//
//   - Processors execute one instruction per cycle between memory
//     references (the load-latency penalty of deeper pipelines is applied
//     afterwards via the pipeline model, exactly as Section 5 does).
//   - An SCC access waits for its bank if the bank is busy; the bank then
//     services it in one cycle. SCC hits cost no additional stall.
//   - A miss fetches the line from memory or another SCC in a fixed 100
//     cycles. Read misses stall the processor; writes retire into a
//     finite write buffer and only stall when the buffer is full.
//   - Writes to lines shared by other clusters broadcast an invalidation.
//   - Processors synchronize at phase barriers; barrier wait is idle time.
//
// Processor streams are interleaved in global virtual-time order, the
// same conservative interleaving Tango-Lite provides.
//
// Concurrency contract: Run and RunMultiprog treat their inputs —
// trace.Program and []Process — as immutable; they only ever read the
// reference streams, and all mutable run state (caches, bus, write
// buffers, locks, statistics) is allocated per call. It is therefore
// safe to call Run concurrently from multiple goroutines against one
// shared Program (the design-space engine in internal/explorer does
// exactly this), and every such run returns identical results. This
// contract is enforced by a -race test (TestRunSharedProgramConcurrent).
package sim

import (
	"fmt"

	"sccsim/internal/cache"
	"sccsim/internal/mem"
	"sccsim/internal/obs"
	"sccsim/internal/scc"
	"sccsim/internal/snoop"
	"sccsim/internal/sysmodel"
	"sccsim/internal/trace"
	"sccsim/internal/verify"
)

// Options tunes simulator behaviour beyond the architectural Config.
// The zero value is the paper's model.
type Options struct {
	// WriteBufferDepth is the number of outstanding writes a cluster can
	// have before further writes stall. 0 means the default of 8.
	// Negative means an infinite write buffer.
	WriteBufferDepth int
	// BusOccupancy, when positive, makes each bus transaction hold the
	// bus for that many cycles (ablation; the paper uses pure latency).
	BusOccupancy int
	// SwitchPenalty is the cycle cost charged when the multiprogramming
	// scheduler switches a processor to a different process (models
	// kernel overhead plus icache refill; see internal/icache for a
	// derived value). Ignored by Run.
	SwitchPenalty uint64
	// MemBanks/MemBankOccupancy, when positive, enable the banked
	// main-memory ablation: fetches to a busy memory bank queue instead
	// of completing in a flat 100 cycles.
	MemBanks         int
	MemBankOccupancy int
	// VictimEntries, when positive, attaches a fully-associative victim
	// buffer of that many lines to each SCC — an extension that recovers
	// most of the direct-mapped conflict misses.
	VictimEntries int
	// WarmupRefs, when positive, zeroes all statistics after that many
	// references have executed, excluding cold-start effects from the
	// reported numbers (a methodology option; the paper measures whole
	// runs, which is the default here too). Timing is unaffected — only
	// the counters reset.
	WarmupRefs uint64
	// Tracer, when non-nil, receives a timeline event for every memory
	// reference, stall, bus transaction, lock operation and scheduling
	// decision (see EventKind). The tracer must be exclusive to this run.
	// nil (the default) disables tracing at near-zero cost.
	Tracer Tracer
	// Metrics, when non-nil, accumulates stall-duration histograms
	// (sim.bank_wait_cycles, sim.read_miss_cycles, sim.wb_stall_cycles)
	// into the registry. Registries are safe to share across concurrent
	// runs; nil (the default) disables collection at near-zero cost.
	Metrics *obs.Registry
	// Verify, when non-nil, attaches the coherence invariant checker
	// (internal/verify) to the run: every bus transaction is checked
	// against the protocol invariants as it happens, and at end of run
	// the presence table is audited against actual cache residency and
	// the statistics against their conservation laws. A violation makes
	// Run/RunMultiprog return an error describing it. The Options value
	// is read-only and may be shared across concurrent runs; nil (the
	// default) disables verification at near-zero cost — the same
	// nil-disabled contract as Tracer and Metrics.
	Verify *verify.Options
	// LegacyReplay, when true, bypasses the compiled-trace execution path:
	// the program is re-validated per run, replay iterates the Program's
	// own stream slices, and the coherence bus keeps its paged presence
	// table instead of the direct-indexed one. Results are byte-identical
	// either way (the differential test in internal/explorer runs the full
	// design grid both ways); this is a debugging escape hatch and the
	// reference the differential test compares against.
	LegacyReplay bool
}

// DefaultWriteBufferDepth is the per-cluster write-buffer depth used when
// Options.WriteBufferDepth is zero.
const DefaultWriteBufferDepth = 8

func (o Options) wbDepth() int {
	switch {
	case o.WriteBufferDepth == 0:
		return DefaultWriteBufferDepth
	case o.WriteBufferDepth < 0:
		return 1 << 30
	default:
		return o.WriteBufferDepth
	}
}

// Result is the outcome of one simulation run.
type Result struct {
	// Config is the design point that was simulated.
	Config sysmodel.Config
	// Cycles is the program execution time: the finish time of the
	// slowest processor.
	Cycles uint64
	// Refs is the number of memory references simulated.
	Refs uint64
	// ProcFinish[p] is processor p's finish time.
	ProcFinish []uint64
	// ReadStall[p] is cycles processor p spent stalled on read misses.
	ReadStall []uint64
	// WriteStall[p] is cycles processor p stalled on a full write buffer.
	WriteStall []uint64
	// BankStall[p] is cycles processor p waited for busy SCC banks.
	BankStall []uint64
	// BarrierWait[p] is cycles processor p idled at phase barriers (or,
	// for multiprogramming, idled with no runnable process).
	BarrierWait []uint64
	// PhaseCycles[i] is the duration of phase i.
	PhaseCycles []uint64
	// SCC[i] is cluster i's cache statistics; SCCBank[i] its contention
	// statistics. For the private hierarchy both are per processor: SCC[p]
	// is processor p's private cache and SCCBank[p] a degenerate
	// single-bank record of its accesses.
	SCC     []*cache.Stats
	SCCBank []*scc.Stats
	// L1 is the per-processor L1 statistics of the hybrid hierarchy; nil
	// (and omitted from JSON) for every other organization.
	L1 []*cache.Stats `json:",omitempty"`
	// Snoop is the coherence-bus statistics.
	Snoop *snoop.Stats
	// Switches is the number of context switches (multiprogramming only).
	Switches uint64
	// LockStall[p] is cycles processor p spent spinning on held locks.
	LockStall []uint64
	// LockSpins counts spin iterations across all processors.
	LockSpins uint64
	// WarmupExcluded is the number of warmup references whose statistics
	// were discarded (0 unless Options.WarmupRefs was set).
	WarmupExcluded uint64
}

// AggregateSCC returns the sum of all clusters' cache statistics.
func (r *Result) AggregateSCC() cache.Stats {
	var s cache.Stats
	for _, cs := range r.SCC {
		s.Add(cs)
	}
	return s
}

// ReadMissRate returns the system-wide SCC read miss rate — the statistic
// the paper's Table 4 reports.
func (r *Result) ReadMissRate() float64 {
	s := r.AggregateSCC()
	return s.ReadMissRate()
}

// TotalReadStall returns read-miss stall cycles summed over processors.
func (r *Result) TotalReadStall() uint64 {
	var t uint64
	for _, v := range r.ReadStall {
		t += v
	}
	return t
}

// TotalBankStall returns bank-conflict stall cycles summed over processors.
func (r *Result) TotalBankStall() uint64 {
	var t uint64
	for _, v := range r.BankStall {
		t += v
	}
	return t
}

// SpinInterval is the re-test period of the test-and-test-and-set spin
// loop, in cycles.
const SpinInterval = 12

// lockTable tracks test-and-set lock ownership by lock-word address.
type lockTable struct {
	held map[uint32]int
}

func newLockTable() *lockTable { return &lockTable{held: make(map[uint32]int)} }

// holder returns the owning processor and whether the lock is held.
func (lt *lockTable) holder(addr uint32) (int, bool) {
	p, ok := lt.held[addr]
	return p, ok
}

func (lt *lockTable) acquire(addr uint32, p int) { lt.held[addr] = p }
func (lt *lockTable) release(addr uint32)        { delete(lt.held, addr) }

// system is the assembled machine for one run.
type system struct {
	cfg  sysmodel.Config
	opts Options
	sccs []*scc.SCC
	bus  *snoop.Bus
	// wbPending[c] holds completion times of cluster c's in-flight
	// buffered writes, a FIFO ring (issue times are non-decreasing).
	wbPending [][]uint64
	wbHead    []int
	locks     *lockTable
	res       *Result
	// cluster[p] is processor p's cluster, precomputed so the per-ref hot
	// path indexes a table instead of dividing by ProcsPerCluster.
	cluster []int32
	// fastTags[c] is cluster c's tag store when its SCC qualifies for the
	// fused direct-mapped access path (scc.DirectTags), nil otherwise.
	fastTags []*cache.Cache

	// onSCCEvict, when non-nil, observes every line evicted from a
	// cluster's SCC before the bus is notified — the hybrid hierarchy's
	// inclusion seam (back-invalidating the cluster's L1 copies). nil
	// (the default) costs the hot path one branch per eviction.
	onSCCEvict func(cluster int, lineIndex uint32)

	// Instrumentation (all nil when disabled; every use is behind a
	// nil check so the uninstrumented hot path pays only the branch).
	tr           Tracer
	histBankWait *obs.LocalHistogram
	histReadMiss *obs.LocalHistogram
	histWBStall  *obs.LocalHistogram
	ck           *verify.Checker
}

func newSystem(cfg sysmodel.Config, opts Options, procs int) (*system, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &system{cfg: cfg, opts: opts}
	invs := make([]snoop.Invalidator, cfg.Clusters)
	s.sccs = make([]*scc.SCC, cfg.Clusters)
	for i := range s.sccs {
		sc, err := scc.NewWith(cfg.SCCBytes, cfg.Assoc, cfg.Banks(), cfg.Line(), cfg.ReplPolicy())
		if err != nil {
			return nil, err
		}
		if opts.VictimEntries > 0 {
			sc.EnableVictimBuffer(opts.VictimEntries)
		}
		s.sccs[i] = sc
		invs[i] = sc
	}
	s.bus = snoop.New(invs)
	s.bus.SetLineBytes(cfg.Line())
	s.bus.Occupancy = opts.BusOccupancy
	s.bus.MemBanks = opts.MemBanks
	s.bus.MemBankOccupancy = opts.MemBankOccupancy
	s.wbPending = make([][]uint64, cfg.Clusters)
	s.wbHead = make([]int, cfg.Clusters)
	s.locks = newLockTable()
	s.cluster = make([]int32, procs)
	for p := 0; p < procs; p++ {
		s.cluster[p] = int32(p / cfg.ProcsPerCluster)
	}
	s.fastTags = make([]*cache.Cache, cfg.Clusters)
	for i, sc := range s.sccs {
		s.fastTags[i] = sc.DirectTags()
	}

	if opts.Verify != nil {
		cls := make([]verify.Cluster, len(s.sccs))
		for i, sc := range s.sccs {
			cls[i] = sc
		}
		s.ck = verify.NewChecker(opts.Verify, s.bus, cls, opts.VictimEntries > 0)
		s.ck.SetLineBytes(cfg.Line())
		s.bus.Verifier = s.ck
	}

	s.tr = opts.Tracer
	if s.tr != nil {
		// Bus transactions land on the requesting cluster's bus track,
		// laid out after the processor tracks.
		tr := s.tr
		s.bus.Hook = func(kind snoop.TxnKind, start, dur uint64, cluster int, addr uint32) {
			var k EventKind
			switch kind {
			case snoop.TxnFetch:
				k = EvBusFetch
			case snoop.TxnInvalidate:
				k = EvBusInvalidate
			default:
				k = EvBusWriteBack
			}
			tr.Emit(obs.Event{TS: start, Dur: dur, Track: busTrack(procs, cluster),
				Kind: uint8(k), Addr: addr})
		}
	}
	if m := opts.Metrics; m != nil {
		// Local staging buffers: per-event observations stay plain
		// arithmetic in this run's goroutine, merged into the shared
		// registry once at the end of the run (see flushMetrics), so
		// parallel sweep workers never contend on the histogram atomics.
		s.histBankWait = m.Histogram("sim.bank_wait_cycles", obs.CycleBuckets).Local()
		s.histReadMiss = m.Histogram("sim.read_miss_cycles", obs.CycleBuckets).Local()
		s.histWBStall = m.Histogram("sim.wb_stall_cycles", obs.CycleBuckets).Local()
	}

	s.res = &Result{
		Config:      cfg,
		ProcFinish:  make([]uint64, procs),
		ReadStall:   make([]uint64, procs),
		WriteStall:  make([]uint64, procs),
		BankStall:   make([]uint64, procs),
		BarrierWait: make([]uint64, procs),
		LockStall:   make([]uint64, procs),
		SCC:         make([]*cache.Stats, cfg.Clusters),
		SCCBank:     make([]*scc.Stats, cfg.Clusters),
	}
	return s, nil
}

// clusterOf maps a processor index to its cluster.
func (s *system) clusterOf(p int) int { return int(s.cluster[p]) }

// warmupReset clears the statistics accumulated so far; replay invokes
// it exactly once, immediately after the Options.WarmupRefs'th reference
// completes (cold-start exclusion). Timing state is untouched.
func (s *system) warmupReset() {
	for _, sc := range s.sccs {
		*sc.CacheStats() = cache.Stats{}
		sc.ResetStats()
	}
	*s.bus.Stats() = snoop.Stats{}
	for p := range s.res.ReadStall {
		s.res.ReadStall[p] = 0
		s.res.WriteStall[p] = 0
		s.res.BankStall[p] = 0
		s.res.LockStall[p] = 0
	}
	s.res.LockSpins = 0
	s.res.WarmupExcluded = s.res.Refs
	if s.ck != nil {
		s.ck.OnWarmupReset()
	}
}

// access performs processor p's memory reference at time now, returning
// the time at which the processor may proceed and whether the reference
// must be retried (a spin iteration on a held lock).
func (s *system) access(p int, now uint64, r mem.Ref) (uint64, bool) {
	switch r.Kind {
	case mem.Lock:
		// Test-and-test-and-set: spin reading the cached lock word until
		// it is free, then claim it with an atomic write.
		t := s.memAccess(p, now, r.Addr, mem.Read)
		if holder, held := s.locks.holder(r.Addr); held && holder != p {
			s.res.LockSpins++
			s.res.LockStall[p] += SpinInterval
			if s.tr != nil {
				s.tr.Emit(obs.Event{TS: t, Dur: SpinInterval, Track: int32(p),
					Kind: uint8(EvLockSpin), Addr: r.Addr})
			}
			return t + SpinInterval, true
		}
		t = s.memAccess(p, t, r.Addr, mem.Write)
		s.locks.acquire(r.Addr, p)
		if s.tr != nil {
			s.tr.Emit(obs.Event{TS: t, Track: int32(p), Kind: uint8(EvLockAcquire), Addr: r.Addr})
		}
		return t, false
	case mem.Unlock:
		t := s.memAccess(p, now, r.Addr, mem.Write)
		s.locks.release(r.Addr)
		if s.tr != nil {
			s.tr.Emit(obs.Event{TS: t, Track: int32(p), Kind: uint8(EvLockRelease), Addr: r.Addr})
		}
		return t, false
	default:
		return s.memAccess(p, now, r.Addr, r.Kind), false
	}
}

// memAccess performs a plain load or store through the cluster's SCC.
func (s *system) memAccess(p int, now uint64, addr uint32, kind mem.Kind) uint64 {
	c := s.clusterOf(p)
	sc := s.sccs[c]
	if s.ck != nil {
		// Shadow-count the access so FinishRun can assert the tag store
		// accounted every access exactly once (hits + misses == accesses).
		s.ck.OnAccess(c)
	}
	if tags := s.fastTags[c]; tags != nil {
		// Fused fast path for the paper's SCC configuration
		// (direct-mapped, no victim buffer): bank arbitration and tag
		// probe inline — an ordinary hit runs call-free instead of
		// threading a Result struct through two layers. Semantically
		// identical to the general path below; the differential test
		// pins that.
		t := sc.BankStart(now, addr)
		if t != now {
			s.bankStallAt(p, now, t-now, addr)
		}
		if tags.HitDM(addr, kind) {
			if kind == mem.Write && s.bus.MaybeShared(addr, c) {
				// Write hit to a possibly-shared line: invalidate other
				// clusters' copies. The MaybeShared probe keeps the common
				// private-line write hit call-free.
				s.bus.WriteShared(t, c, addr)
			}
			if s.tr != nil {
				s.emitHit(p, t, addr, kind)
			}
			return t
		}
		cr := tags.MissDM(addr, kind)
		return s.missFrom(p, c, t, addr, kind, cr.Evicted, cr.EvictedDirty)
	}

	ar := sc.Access(now, addr, kind)
	if wait := ar.Wait(now); wait > 0 {
		s.bankStallAt(p, now, wait, addr)
	}
	t := ar.Start
	if ar.Hit {
		if kind == mem.Write {
			// Write hit: invalidate other clusters' copies if shared.
			s.bus.WriteShared(t, c, addr)
		}
		if s.tr != nil {
			s.emitHit(p, t, addr, kind)
		}
		return t
	}
	return s.missFrom(p, c, t, addr, kind, ar.Evicted, ar.EvictedDirty)
}

// bankStallAt accounts a bank-arbitration wait for processor p.
func (s *system) bankStallAt(p int, now, wait uint64, addr uint32) {
	s.res.BankStall[p] += wait
	if s.tr != nil {
		s.tr.Emit(obs.Event{TS: now, Dur: wait, Track: int32(p),
			Kind: uint8(EvBankStall), Addr: addr})
	}
	if s.histBankWait != nil {
		s.histBankWait.Observe(wait)
	}
}

// emitHit traces an SCC hit event.
func (s *system) emitHit(p int, t uint64, addr uint32, kind mem.Kind) {
	k := EvReadHit
	if kind == mem.Write {
		k = EvWriteHit
	}
	s.tr.Emit(obs.Event{TS: t, Track: int32(p), Kind: uint8(k), Addr: addr})
}

// missFrom completes a miss whose bank service started at t: eviction
// notice, bus fetch, and read-stall or write-buffer accounting.
func (s *system) missFrom(p, c int, t uint64, addr uint32, kind mem.Kind,
	evicted uint32, evictedDirty bool) uint64 {

	if evicted != cache.EvictedNone {
		if s.onSCCEvict != nil {
			s.onSCCEvict(c, evicted)
		}
		s.bus.Evicted(t, c, evicted, evictedDirty)
	}
	// Fetch over the bus. The refill's own bank cycle is not modeled as
	// future bank occupancy: the bank-free time is a scalar "busy until",
	// and reserving it through the whole 100-cycle fetch would wrongly
	// block the bank during the fetch (the SCC is non-blocking). The one
	// refill cycle is negligible against the 100-cycle transfer.
	ready := s.bus.Fetch(t, c, addr, kind)
	if kind == mem.Read {
		s.res.ReadStall[p] += ready - t
		if s.tr != nil {
			s.tr.Emit(obs.Event{TS: t, Dur: ready - t, Track: int32(p),
				Kind: uint8(EvReadMiss), Addr: addr})
		}
		if s.histReadMiss != nil {
			s.histReadMiss.Observe(ready - t)
		}
		return ready
	}
	// Write miss: retire into the write buffer; stall only if full.
	if s.tr != nil {
		s.tr.Emit(obs.Event{TS: t, Track: int32(p), Kind: uint8(EvWriteMiss), Addr: addr})
	}
	return s.bufferWrite(p, c, t, ready)
}

// bufferWrite records a buffered write completing at ready and returns the
// processor-visible completion time (now, unless the buffer is full).
func (s *system) bufferWrite(p, c int, now, ready uint64) uint64 {
	depth := s.opts.wbDepth()
	pend := s.wbPending[c]
	head := s.wbHead[c]
	// Drop entries that completed by now.
	for head < len(pend) && pend[head] <= now {
		head++
	}
	if head == len(pend) {
		pend = pend[:0]
		head = 0
	}
	if len(pend)-head >= depth {
		// Buffer full: stall until the oldest entry drains.
		wait := pend[head] - now
		s.res.WriteStall[p] += wait
		if s.tr != nil {
			s.tr.Emit(obs.Event{TS: now, Dur: wait, Track: int32(p),
				Kind: uint8(EvWriteBufStall)})
		}
		if s.histWBStall != nil {
			s.histWBStall.Observe(wait)
		}
		now = pend[head]
		head++
	}
	pend = append(pend, ready)
	s.wbPending[c] = pend
	s.wbHead[c] = head
	return now
}

// sched selects the processor with the earliest next-issue time,
// tie-broken by lowest id — exactly the order the id-keyed binary heap it
// replaced produced. It is a binary min-heap of single uint64 keys with
// the issue time in the high bits and the processor id in the low
// schedIDBits, so every comparison is one word compare on contiguous
// memory (the old heap chased ids[i] -> time[id] through two slices per
// comparison) and the id tie-break falls out of the packing for free.
// The packing caps issue times at 2^56 cycles — about 2.5 billion years
// of simulated time at the paper's clock — and processor counts at 256
// (the machine model tops out at 32).
type sched struct {
	keys []uint64
	// min mirrors keys[0] (schedEmpty when the heap is empty) so isMin —
	// the replay loop's per-reference test — is a field load and one
	// compare instead of a length check plus a bounds-checked index.
	min uint64
}

const schedIDBits = 8

// schedEmpty is min's value for an empty heap: larger than every real
// packed key (a key only reaches 2^64-1 at the 2^56-cycle time cap, far
// beyond any run), so isMin is unconditionally true, matching the "no
// one else is scheduled" case.
const schedEmpty = ^uint64(0)

func newSched(procs int) *sched {
	return &sched{keys: make([]uint64, 0, procs), min: schedEmpty}
}

// add schedules processor p to issue at time t.
func (s *sched) add(p int, t uint64) {
	k := t<<schedIDBits | uint64(p)
	if k < s.min {
		s.min = k
	}
	keys := append(s.keys, k)
	i := len(keys) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if keys[parent] <= k {
			break
		}
		keys[i] = keys[parent]
		i = parent
	}
	keys[i] = k
	s.keys = keys
}

// next removes and returns the processor with the earliest issue time and
// that time; p is -1 when none are scheduled.
func (s *sched) next() (p int, t uint64) {
	keys := s.keys
	if len(keys) == 0 {
		return -1, 0
	}
	top := keys[0]
	last := len(keys) - 1
	k := keys[last]
	keys = keys[:last]
	s.keys = keys
	if last > 0 {
		i := 0
		for {
			l := 2*i + 1
			if l >= last {
				break
			}
			if r := l + 1; r < last && keys[r] < keys[l] {
				l = r
			}
			if k <= keys[l] {
				break
			}
			keys[i] = keys[l]
			i = l
		}
		keys[i] = k
	}
	if last > 0 {
		s.min = keys[0]
	} else {
		s.min = schedEmpty
	}
	return int(top & (1<<schedIDBits - 1)), top >> schedIDBits
}

// isMin reports whether processor p issuing at time t would be the next
// processor the scheduler picks — i.e. whether p's packed key precedes
// every scheduled key. Packed keys are unique (the id is in the low
// bits), so strict < is exact, including the lowest-id tie-break.
// replay uses this to keep running the earliest processor without a
// push/pop round-trip per reference.
func (s *sched) isMin(p int, t uint64) bool {
	return t<<schedIDBits|uint64(p) < s.min
}

// replay drives barrier-delimited phase streams through an access
// function in global issue order, handling barriers and accounting into
// res. phases is the per-phase, per-processor stream table — a compiled
// program's arena views or a legacy Program's own slices; replay is
// agnostic. The access function performs one memory reference for a
// processor at a time and returns when the processor may proceed.
// warmupAt, when nonzero, invokes reset exactly once, immediately after
// the warmupAt'th reference completes. A non-nil tracer receives a
// barrier-wait event per processor per phase.
func replay(phases [][][]mem.Ref, procs int, res *Result, tr Tracer,
	warmupAt uint64, reset func(),
	access func(p int, now uint64, r mem.Ref) (uint64, bool)) []uint64 {

	if procs == 1 {
		return replay1(phases, res, warmupAt, reset, access)
	}

	clock := make([]uint64, procs)
	pos := make([]int, procs)
	sc := newSched(procs)
	var phaseStart uint64

	for _, streams := range phases {
		for p := 0; p < procs; p++ {
			pos[p] = 0
			if len(streams[p]) > 0 {
				sc.add(p, clock[p]+uint64(streams[p][0].Gap))
			}
		}
		// Replay streams in global issue order: repeatedly advance the
		// processor whose next reference is earliest. The inner loop is a
		// run-ahead: after each reference, if the processor's next issue
		// time still precedes every scheduled key it keeps executing
		// without touching the heap — the order is identical to a full
		// push/pop per reference (isMin is the heap's own comparison),
		// but long stretches where one processor runs (the others parked
		// 100 cycles ahead by misses, or finished) cost no heap traffic.
		for {
			p, t := sc.next()
			if p < 0 {
				break
			}
			st := streams[p]
			for {
				r := st[pos[p]]
				if r.Kind != mem.Idle {
					t2, retry := access(p, t, r)
					if retry {
						// Spin iteration: re-issue the same reference later.
						clock[p] = t2
						if sc.isMin(p, t2) {
							t = t2
							continue
						}
						sc.add(p, t2)
						break
					}
					t = t2
					res.Refs++
					if warmupAt != 0 && res.Refs == warmupAt {
						reset()
					}
				}
				pos[p]++
				clock[p] = t
				if pos[p] == len(st) {
					break
				}
				nt := t + uint64(st[pos[p]].Gap)
				if !sc.isMin(p, nt) {
					sc.add(p, nt)
					break
				}
				t = nt
			}
		}
		// Barrier: everyone waits for the slowest processor.
		var maxT uint64
		for _, t := range clock {
			if t > maxT {
				maxT = t
			}
		}
		for p := range clock {
			if tr != nil && maxT > clock[p] {
				tr.Emit(obs.Event{TS: clock[p], Dur: maxT - clock[p], Track: int32(p),
					Kind: uint8(EvBarrierWait)})
			}
			res.BarrierWait[p] += maxT - clock[p]
			clock[p] = maxT
		}
		res.PhaseCycles = append(res.PhaseCycles, maxT-phaseStart)
		phaseStart = maxT
	}
	return clock
}

// replay1 is the single-processor fast path: stream order is issue
// order, so no scheduler runs at all and barriers degenerate to phase
// accounting. Lock references cannot spin with one processor (access
// reports retry only when another processor holds the lock), but the
// retry loop is kept so the two paths share one contract.
func replay1(phases [][][]mem.Ref, res *Result, warmupAt uint64, reset func(),
	access func(p int, now uint64, r mem.Ref) (uint64, bool)) []uint64 {

	var now, phaseStart uint64
	for _, streams := range phases {
		for _, r := range streams[0] {
			now += uint64(r.Gap)
			if r.Kind == mem.Idle {
				continue
			}
			for {
				t, retry := access(0, now, r)
				now = t
				if !retry {
					break
				}
			}
			res.Refs++
			if warmupAt != 0 && res.Refs == warmupAt {
				reset()
			}
		}
		res.PhaseCycles = append(res.PhaseCycles, now-phaseStart)
		phaseStart = now
	}
	return []uint64{now}
}

// programPhases resolves a program into the stream table replay consumes.
// The default path compiles the program (validation and arena packing
// happen once per Program, memoized — not once per run) and returns the
// compiled form so Run can size the flat presence table; under
// Options.LegacyReplay it returns the raw per-phase slices with a fresh
// validation and a nil Compiled.
func programPhases(prog *trace.Program, opts Options) ([][][]mem.Ref, *trace.Compiled, error) {
	if opts.LegacyReplay {
		if err := prog.Validate(); err != nil {
			return nil, nil, err
		}
		phases := make([][][]mem.Ref, len(prog.Phases))
		for i := range prog.Phases {
			phases[i] = prog.Phases[i].Streams
		}
		return phases, nil, nil
	}
	c, err := trace.Compile(prog)
	if err != nil {
		return nil, nil, err
	}
	return c.Streams, c, nil
}

// Run simulates a parallel program on the configured system. The program
// must have exactly cfg.Procs() streams per phase. Run never mutates
// prog, so concurrent Runs may share one Program (see the package
// comment's concurrency contract); the compiled form a Run memoizes on
// the program (trace.Compile) is itself immutable and shared the same
// way.
func Run(cfg sysmodel.Config, opts Options, prog *trace.Program) (*Result, error) {
	// The hierarchy axis selects the machine: the paper's shared SCC
	// (below), per-processor private caches, or the two-level hybrid.
	switch cfg.HierarchyKind() {
	case sysmodel.HierarchyPrivate:
		return RunPrivate(cfg, opts, prog)
	case sysmodel.HierarchyHybrid:
		return RunHybrid(cfg, opts, prog)
	}
	procs := cfg.Procs()
	if prog.Procs != procs {
		return nil, fmt.Errorf("sim: program %q generated for %d processors, config has %d",
			prog.Name, prog.Procs, procs)
	}
	phases, comp, err := programPhases(prog, opts)
	if err != nil {
		return nil, err
	}
	s, err := newSystem(cfg, opts, procs)
	if err != nil {
		return nil, err
	}
	if comp != nil {
		s.bus.ReserveLines(reserveLines(comp.MaxLineIndex(), cfg.Line()))
	}
	clock := replay(phases, procs, s.res, s.tr, opts.WarmupRefs, s.warmupReset, s.access)
	s.finish(clock)
	s.flushMetrics()
	if s.ck != nil {
		var exp uint64
		if comp != nil {
			exp = comp.Refs()
		} else {
			exp = countRefs(phases)
		}
		if err := s.verifyFinish(exp); err != nil {
			return nil, err
		}
	}
	return s.res, nil
}

// flushMetrics merges the run's staged histogram batches into the
// shared registry.
func (s *system) flushMetrics() {
	s.histBankWait.Flush()
	s.histReadMiss.Flush()
	s.histWBStall.Flush()
}

// reserveLines converts a maximum line index measured at the paper's
// 16-byte granularity (what trace.Compile records) to the flat-table
// line count needed at the configured line size, rounding up so the
// whole footprint stays direct-indexed. Sizing is a pure optimization
// (the paged fallback keeps out-of-bound lines correct), but at the
// default line size the count is exactly the historical maxLine+1.
func reserveLines(maxLine16 uint32, lineBytes int) uint32 {
	n := ((uint64(maxLine16)+1)*sysmodel.LineSize + uint64(lineBytes) - 1) / uint64(lineBytes)
	if n > snoop.MaxFlatLines {
		n = snoop.MaxFlatLines
	}
	return uint32(n)
}

// countRefs counts the non-idle references of a stream table — the
// expected Result.Refs when no compiled form carries the precomputed
// total (LegacyReplay with verification enabled).
func countRefs(phases [][][]mem.Ref) uint64 {
	var n uint64
	for _, streams := range phases {
		for _, st := range streams {
			for _, r := range st {
				if r.Kind != mem.Idle {
					n++
				}
			}
		}
	}
	return n
}

// verifyFinish runs the checker's end-of-run audit against the
// finished result; expectedRefs of 0 skips the trace-conservation check.
func (s *system) verifyFinish(expectedRefs uint64) error {
	err := s.ck.FinishRun(verify.Final{
		Cycles:           s.res.Cycles,
		Refs:             s.res.Refs,
		ExpectedRefs:     expectedRefs,
		Cache:            s.res.SCC,
		Bank:             s.res.SCCBank,
		BankAccessCycles: sysmodel.BankAccessCycles,
	})
	if err != nil {
		return fmt.Errorf("sim: verification failed: %w", err)
	}
	return nil
}

// VerifyStats projects the result onto the surface the oracle simulator
// reports (verify.RunStats), for DiffRunStats comparisons. Statistics
// slices are deep-copied, so the projection is safe to hold after the
// result is discarded.
func (r *Result) VerifyStats() verify.RunStats {
	rs := verify.RunStats{
		Cycles:      r.Cycles,
		Refs:        r.Refs,
		LockSpins:   r.LockSpins,
		Switches:    r.Switches,
		ProcFinish:  append([]uint64(nil), r.ProcFinish...),
		ReadStall:   append([]uint64(nil), r.ReadStall...),
		WriteStall:  append([]uint64(nil), r.WriteStall...),
		BankStall:   append([]uint64(nil), r.BankStall...),
		BarrierWait: append([]uint64(nil), r.BarrierWait...),
		LockStall:   append([]uint64(nil), r.LockStall...),
		PhaseCycles: append([]uint64(nil), r.PhaseCycles...),
	}
	for _, cs := range r.SCC {
		rs.Cache = append(rs.Cache, *cs)
	}
	for _, bs := range r.SCCBank {
		b := *bs
		b.BankAccesses = append([]uint64(nil), bs.BankAccesses...)
		rs.Bank = append(rs.Bank, b)
	}
	if r.Snoop != nil {
		rs.Bus = *r.Snoop
	}
	for _, ls := range r.L1 {
		rs.L1 = append(rs.L1, *ls)
	}
	return rs
}

// finish copies final per-processor state and system statistics into the
// result.
func (s *system) finish(clock []uint64) {
	copy(s.res.ProcFinish, clock)
	for _, t := range clock {
		if t > s.res.Cycles {
			s.res.Cycles = t
		}
	}
	for i, sc := range s.sccs {
		s.res.SCC[i] = sc.CacheStats()
		s.res.SCCBank[i] = sc.Stats()
	}
	s.res.Snoop = s.bus.Stats()
}
