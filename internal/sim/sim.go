// Package sim is the detailed multiprocessor cache simulator at the heart
// of the reproduction (Section 2.2.2 of the paper). It replays a
// trace.Program on a configured system — clusters of processors sharing
// banked SCCs, kept coherent over a snoopy invalidation bus — and accounts
// execution time per processor.
//
// Timing model (matching the paper's stated assumptions):
//
//   - Processors execute one instruction per cycle between memory
//     references (the load-latency penalty of deeper pipelines is applied
//     afterwards via the pipeline model, exactly as Section 5 does).
//   - An SCC access waits for its bank if the bank is busy; the bank then
//     services it in one cycle. SCC hits cost no additional stall.
//   - A miss fetches the line from memory or another SCC in a fixed 100
//     cycles. Read misses stall the processor; writes retire into a
//     finite write buffer and only stall when the buffer is full.
//   - Writes to lines shared by other clusters broadcast an invalidation.
//   - Processors synchronize at phase barriers; barrier wait is idle time.
//
// Processor streams are interleaved in global virtual-time order, the
// same conservative interleaving Tango-Lite provides.
//
// Concurrency contract: Run and RunMultiprog treat their inputs —
// trace.Program and []Process — as immutable; they only ever read the
// reference streams, and all mutable run state (caches, bus, write
// buffers, locks, statistics) is allocated per call. It is therefore
// safe to call Run concurrently from multiple goroutines against one
// shared Program (the design-space engine in internal/explorer does
// exactly this), and every such run returns identical results. This
// contract is enforced by a -race test (TestRunSharedProgramConcurrent).
package sim

import (
	"fmt"

	"sccsim/internal/cache"
	"sccsim/internal/mem"
	"sccsim/internal/obs"
	"sccsim/internal/scc"
	"sccsim/internal/snoop"
	"sccsim/internal/sysmodel"
	"sccsim/internal/trace"
)

// Options tunes simulator behaviour beyond the architectural Config.
// The zero value is the paper's model.
type Options struct {
	// WriteBufferDepth is the number of outstanding writes a cluster can
	// have before further writes stall. 0 means the default of 8.
	// Negative means an infinite write buffer.
	WriteBufferDepth int
	// BusOccupancy, when positive, makes each bus transaction hold the
	// bus for that many cycles (ablation; the paper uses pure latency).
	BusOccupancy int
	// SwitchPenalty is the cycle cost charged when the multiprogramming
	// scheduler switches a processor to a different process (models
	// kernel overhead plus icache refill; see internal/icache for a
	// derived value). Ignored by Run.
	SwitchPenalty uint64
	// MemBanks/MemBankOccupancy, when positive, enable the banked
	// main-memory ablation: fetches to a busy memory bank queue instead
	// of completing in a flat 100 cycles.
	MemBanks         int
	MemBankOccupancy int
	// VictimEntries, when positive, attaches a fully-associative victim
	// buffer of that many lines to each SCC — an extension that recovers
	// most of the direct-mapped conflict misses.
	VictimEntries int
	// WarmupRefs, when positive, zeroes all statistics after that many
	// references have executed, excluding cold-start effects from the
	// reported numbers (a methodology option; the paper measures whole
	// runs, which is the default here too). Timing is unaffected — only
	// the counters reset.
	WarmupRefs uint64
	// Tracer, when non-nil, receives a timeline event for every memory
	// reference, stall, bus transaction, lock operation and scheduling
	// decision (see EventKind). The tracer must be exclusive to this run.
	// nil (the default) disables tracing at near-zero cost.
	Tracer Tracer
	// Metrics, when non-nil, accumulates stall-duration histograms
	// (sim.bank_wait_cycles, sim.read_miss_cycles, sim.wb_stall_cycles)
	// into the registry. Registries are safe to share across concurrent
	// runs; nil (the default) disables collection at near-zero cost.
	Metrics *obs.Registry
}

// DefaultWriteBufferDepth is the per-cluster write-buffer depth used when
// Options.WriteBufferDepth is zero.
const DefaultWriteBufferDepth = 8

func (o Options) wbDepth() int {
	switch {
	case o.WriteBufferDepth == 0:
		return DefaultWriteBufferDepth
	case o.WriteBufferDepth < 0:
		return 1 << 30
	default:
		return o.WriteBufferDepth
	}
}

// Result is the outcome of one simulation run.
type Result struct {
	// Config is the design point that was simulated.
	Config sysmodel.Config
	// Cycles is the program execution time: the finish time of the
	// slowest processor.
	Cycles uint64
	// Refs is the number of memory references simulated.
	Refs uint64
	// ProcFinish[p] is processor p's finish time.
	ProcFinish []uint64
	// ReadStall[p] is cycles processor p spent stalled on read misses.
	ReadStall []uint64
	// WriteStall[p] is cycles processor p stalled on a full write buffer.
	WriteStall []uint64
	// BankStall[p] is cycles processor p waited for busy SCC banks.
	BankStall []uint64
	// BarrierWait[p] is cycles processor p idled at phase barriers (or,
	// for multiprogramming, idled with no runnable process).
	BarrierWait []uint64
	// PhaseCycles[i] is the duration of phase i.
	PhaseCycles []uint64
	// SCC[i] is cluster i's cache statistics; SCCBank[i] its contention
	// statistics.
	SCC     []*cache.Stats
	SCCBank []*scc.Stats
	// Snoop is the coherence-bus statistics.
	Snoop *snoop.Stats
	// Switches is the number of context switches (multiprogramming only).
	Switches uint64
	// LockStall[p] is cycles processor p spent spinning on held locks.
	LockStall []uint64
	// LockSpins counts spin iterations across all processors.
	LockSpins uint64
	// WarmupExcluded is the number of warmup references whose statistics
	// were discarded (0 unless Options.WarmupRefs was set).
	WarmupExcluded uint64
}

// AggregateSCC returns the sum of all clusters' cache statistics.
func (r *Result) AggregateSCC() cache.Stats {
	var s cache.Stats
	for _, cs := range r.SCC {
		s.Add(cs)
	}
	return s
}

// ReadMissRate returns the system-wide SCC read miss rate — the statistic
// the paper's Table 4 reports.
func (r *Result) ReadMissRate() float64 {
	s := r.AggregateSCC()
	return s.ReadMissRate()
}

// TotalReadStall returns read-miss stall cycles summed over processors.
func (r *Result) TotalReadStall() uint64 {
	var t uint64
	for _, v := range r.ReadStall {
		t += v
	}
	return t
}

// TotalBankStall returns bank-conflict stall cycles summed over processors.
func (r *Result) TotalBankStall() uint64 {
	var t uint64
	for _, v := range r.BankStall {
		t += v
	}
	return t
}

// SpinInterval is the re-test period of the test-and-test-and-set spin
// loop, in cycles.
const SpinInterval = 12

// lockTable tracks test-and-set lock ownership by lock-word address.
type lockTable struct {
	held map[uint32]int
}

func newLockTable() *lockTable { return &lockTable{held: make(map[uint32]int)} }

// holder returns the owning processor and whether the lock is held.
func (lt *lockTable) holder(addr uint32) (int, bool) {
	p, ok := lt.held[addr]
	return p, ok
}

func (lt *lockTable) acquire(addr uint32, p int) { lt.held[addr] = p }
func (lt *lockTable) release(addr uint32)        { delete(lt.held, addr) }

// system is the assembled machine for one run.
type system struct {
	cfg  sysmodel.Config
	opts Options
	sccs []*scc.SCC
	bus  *snoop.Bus
	// wbPending[c] holds completion times of cluster c's in-flight
	// buffered writes, a FIFO ring (issue times are non-decreasing).
	wbPending [][]uint64
	wbHead    []int
	locks     *lockTable
	res       *Result

	// Instrumentation (all nil when disabled; every use is behind a
	// nil check so the uninstrumented hot path pays only the branch).
	tr           Tracer
	histBankWait *obs.Histogram
	histReadMiss *obs.Histogram
	histWBStall  *obs.Histogram
}

func newSystem(cfg sysmodel.Config, opts Options, procs int) (*system, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &system{cfg: cfg, opts: opts}
	invs := make([]snoop.Invalidator, cfg.Clusters)
	s.sccs = make([]*scc.SCC, cfg.Clusters)
	for i := range s.sccs {
		sc, err := scc.New(cfg.SCCBytes, cfg.Assoc, cfg.Banks())
		if err != nil {
			return nil, err
		}
		if opts.VictimEntries > 0 {
			sc.EnableVictimBuffer(opts.VictimEntries)
		}
		s.sccs[i] = sc
		invs[i] = sc
	}
	s.bus = snoop.New(invs)
	s.bus.Occupancy = opts.BusOccupancy
	s.bus.MemBanks = opts.MemBanks
	s.bus.MemBankOccupancy = opts.MemBankOccupancy
	s.wbPending = make([][]uint64, cfg.Clusters)
	s.wbHead = make([]int, cfg.Clusters)
	s.locks = newLockTable()

	s.tr = opts.Tracer
	if s.tr != nil {
		// Bus transactions land on the requesting cluster's bus track,
		// laid out after the processor tracks.
		tr := s.tr
		s.bus.Hook = func(kind snoop.TxnKind, start, dur uint64, cluster int, addr uint32) {
			var k EventKind
			switch kind {
			case snoop.TxnFetch:
				k = EvBusFetch
			case snoop.TxnInvalidate:
				k = EvBusInvalidate
			default:
				k = EvBusWriteBack
			}
			tr.Emit(obs.Event{TS: start, Dur: dur, Track: busTrack(procs, cluster),
				Kind: uint8(k), Addr: addr})
		}
	}
	if m := opts.Metrics; m != nil {
		s.histBankWait = m.Histogram("sim.bank_wait_cycles", obs.CycleBuckets)
		s.histReadMiss = m.Histogram("sim.read_miss_cycles", obs.CycleBuckets)
		s.histWBStall = m.Histogram("sim.wb_stall_cycles", obs.CycleBuckets)
	}

	s.res = &Result{
		Config:      cfg,
		ProcFinish:  make([]uint64, procs),
		ReadStall:   make([]uint64, procs),
		WriteStall:  make([]uint64, procs),
		BankStall:   make([]uint64, procs),
		BarrierWait: make([]uint64, procs),
		LockStall:   make([]uint64, procs),
		SCC:         make([]*cache.Stats, cfg.Clusters),
		SCCBank:     make([]*scc.Stats, cfg.Clusters),
	}
	return s, nil
}

// clusterOf maps a processor index to its cluster.
func (s *system) clusterOf(p int) int { return p / s.cfg.ProcsPerCluster }

// maybeWarmupReset clears the statistics once the warmup budget is
// reached. Called after every executed reference.
func (s *system) maybeWarmupReset() {
	if s.opts.WarmupRefs == 0 || s.res.Refs != s.opts.WarmupRefs {
		return
	}
	for _, sc := range s.sccs {
		*sc.CacheStats() = cache.Stats{}
		st := sc.Stats()
		for i := range st.BankAccesses {
			st.BankAccesses[i] = 0
		}
		st.BankConflicts, st.BankWaitCycles, st.VictimHits = 0, 0, 0
	}
	*s.bus.Stats() = snoop.Stats{}
	for p := range s.res.ReadStall {
		s.res.ReadStall[p] = 0
		s.res.WriteStall[p] = 0
		s.res.BankStall[p] = 0
		s.res.LockStall[p] = 0
	}
	s.res.LockSpins = 0
	s.res.WarmupExcluded = s.res.Refs
}

// access performs processor p's memory reference at time now, returning
// the time at which the processor may proceed and whether the reference
// must be retried (a spin iteration on a held lock).
func (s *system) access(p int, now uint64, r mem.Ref) (uint64, bool) {
	switch r.Kind {
	case mem.Lock:
		// Test-and-test-and-set: spin reading the cached lock word until
		// it is free, then claim it with an atomic write.
		t := s.memAccess(p, now, r.Addr, mem.Read)
		if holder, held := s.locks.holder(r.Addr); held && holder != p {
			s.res.LockSpins++
			s.res.LockStall[p] += SpinInterval
			if s.tr != nil {
				s.tr.Emit(obs.Event{TS: t, Dur: SpinInterval, Track: int32(p),
					Kind: uint8(EvLockSpin), Addr: r.Addr})
			}
			return t + SpinInterval, true
		}
		t = s.memAccess(p, t, r.Addr, mem.Write)
		s.locks.acquire(r.Addr, p)
		if s.tr != nil {
			s.tr.Emit(obs.Event{TS: t, Track: int32(p), Kind: uint8(EvLockAcquire), Addr: r.Addr})
		}
		return t, false
	case mem.Unlock:
		t := s.memAccess(p, now, r.Addr, mem.Write)
		s.locks.release(r.Addr)
		if s.tr != nil {
			s.tr.Emit(obs.Event{TS: t, Track: int32(p), Kind: uint8(EvLockRelease), Addr: r.Addr})
		}
		return t, false
	default:
		return s.memAccess(p, now, r.Addr, r.Kind), false
	}
}

// memAccess performs a plain load or store through the cluster's SCC.
func (s *system) memAccess(p int, now uint64, addr uint32, kind mem.Kind) uint64 {
	c := s.clusterOf(p)
	sc := s.sccs[c]
	r := mem.Ref{Addr: addr, Kind: kind}
	ar := sc.Access(now, r.Addr, r.Kind)
	wait := ar.Wait(now)
	s.res.BankStall[p] += wait
	t := ar.Start
	if wait > 0 {
		if s.tr != nil {
			s.tr.Emit(obs.Event{TS: now, Dur: wait, Track: int32(p),
				Kind: uint8(EvBankStall), Addr: addr})
		}
		if s.histBankWait != nil {
			s.histBankWait.Observe(wait)
		}
	}

	if ar.Evicted != cache.EvictedNone {
		s.bus.Evicted(t, c, ar.Evicted, ar.EvictedDirty)
	}

	if ar.Hit {
		if r.Kind == mem.Write {
			// Write hit: invalidate other clusters' copies if shared.
			s.bus.WriteShared(t, c, r.Addr)
		}
		if s.tr != nil {
			k := EvReadHit
			if r.Kind == mem.Write {
				k = EvWriteHit
			}
			s.tr.Emit(obs.Event{TS: t, Track: int32(p), Kind: uint8(k), Addr: addr})
		}
		return t
	}

	// Miss: fetch over the bus. The refill's own bank cycle is not
	// modeled as future bank occupancy: the bank-free time is a scalar
	// "busy until", and reserving it through the whole 100-cycle fetch
	// would wrongly block the bank during the fetch (the SCC is
	// non-blocking). The one refill cycle is negligible against the
	// 100-cycle transfer.
	ready := s.bus.Fetch(t, c, r.Addr, r.Kind)
	if r.Kind == mem.Read {
		s.res.ReadStall[p] += ready - t
		if s.tr != nil {
			s.tr.Emit(obs.Event{TS: t, Dur: ready - t, Track: int32(p),
				Kind: uint8(EvReadMiss), Addr: addr})
		}
		if s.histReadMiss != nil {
			s.histReadMiss.Observe(ready - t)
		}
		return ready
	}
	// Write miss: retire into the write buffer; stall only if full.
	if s.tr != nil {
		s.tr.Emit(obs.Event{TS: t, Track: int32(p), Kind: uint8(EvWriteMiss), Addr: addr})
	}
	return s.bufferWrite(p, c, t, ready)
}

// bufferWrite records a buffered write completing at ready and returns the
// processor-visible completion time (now, unless the buffer is full).
func (s *system) bufferWrite(p, c int, now, ready uint64) uint64 {
	depth := s.opts.wbDepth()
	pend := s.wbPending[c]
	head := s.wbHead[c]
	// Drop entries that completed by now.
	for head < len(pend) && pend[head] <= now {
		head++
	}
	if head == len(pend) {
		pend = pend[:0]
		head = 0
	}
	if len(pend)-head >= depth {
		// Buffer full: stall until the oldest entry drains.
		wait := pend[head] - now
		s.res.WriteStall[p] += wait
		if s.tr != nil {
			s.tr.Emit(obs.Event{TS: now, Dur: wait, Track: int32(p),
				Kind: uint8(EvWriteBufStall)})
		}
		if s.histWBStall != nil {
			s.histWBStall.Observe(wait)
		}
		now = pend[head]
		head++
	}
	pend = append(pend, ready)
	s.wbPending[c] = pend
	s.wbHead[c] = head
	return now
}

// procHeap is a binary min-heap of processor ids keyed by their clocks,
// tie-broken by id for determinism.
type procHeap struct {
	ids  []int
	time []uint64 // indexed by proc id
}

func (h *procHeap) less(a, b int) bool {
	ta, tb := h.time[h.ids[a]], h.time[h.ids[b]]
	if ta != tb {
		return ta < tb
	}
	return h.ids[a] < h.ids[b]
}

func (h *procHeap) push(id int) {
	h.ids = append(h.ids, id)
	i := len(h.ids) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.ids[i], h.ids[parent] = h.ids[parent], h.ids[i]
		i = parent
	}
}

func (h *procHeap) pop() int {
	top := h.ids[0]
	last := len(h.ids) - 1
	h.ids[0] = h.ids[last]
	h.ids = h.ids[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.ids) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.ids) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.ids[i], h.ids[smallest] = h.ids[smallest], h.ids[i]
		i = smallest
	}
	return top
}

func (h *procHeap) empty() bool { return len(h.ids) == 0 }

// replay drives a phase-structured program through an access function in
// global issue order, handling barriers and accounting into res. The
// access function performs one memory reference for a processor at a
// time and returns when the processor may proceed. A non-nil tracer
// receives a barrier-wait event per processor per phase.
func replay(prog *trace.Program, procs int, res *Result, tr Tracer,
	access func(p int, now uint64, r mem.Ref) (uint64, bool)) []uint64 {

	clock := make([]uint64, procs)
	pos := make([]int, procs)
	// nextAt[p] is when processor p's next reference issues; the heap is
	// keyed on it so references execute in global issue order even when
	// compute gaps differ wildly across processors.
	nextAt := make([]uint64, procs)
	var phaseStart uint64

	for _, ph := range prog.Phases {
		h := &procHeap{time: nextAt}
		for p := 0; p < procs; p++ {
			pos[p] = 0
			if len(ph.Streams[p]) > 0 {
				nextAt[p] = clock[p] + uint64(ph.Streams[p][0].Gap)
				h.push(p)
			}
		}
		// Replay streams in global issue order: repeatedly advance the
		// processor whose next reference is earliest.
		for !h.empty() {
			p := h.pop()
			st := ph.Streams[p]
			r := st[pos[p]]
			t := nextAt[p]
			if r.Kind != mem.Idle {
				var retry bool
				t, retry = access(p, t, r)
				if retry {
					// Spin iteration: re-issue the same reference later.
					nextAt[p] = t
					clock[p] = t
					h.push(p)
					continue
				}
				res.Refs++
			}
			pos[p]++
			clock[p] = t
			if pos[p] < len(st) {
				nextAt[p] = t + uint64(st[pos[p]].Gap)
				h.push(p)
			}
		}
		// Barrier: everyone waits for the slowest processor.
		var maxT uint64
		for _, t := range clock {
			if t > maxT {
				maxT = t
			}
		}
		for p := range clock {
			if tr != nil && maxT > clock[p] {
				tr.Emit(obs.Event{TS: clock[p], Dur: maxT - clock[p], Track: int32(p),
					Kind: uint8(EvBarrierWait)})
			}
			res.BarrierWait[p] += maxT - clock[p]
			clock[p] = maxT
		}
		res.PhaseCycles = append(res.PhaseCycles, maxT-phaseStart)
		phaseStart = maxT
	}
	return clock
}

// Run simulates a parallel program on the configured system. The program
// must have exactly cfg.Procs() streams per phase. Run never mutates
// prog, so concurrent Runs may share one Program (see the package
// comment's concurrency contract).
func Run(cfg sysmodel.Config, opts Options, prog *trace.Program) (*Result, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	procs := cfg.Procs()
	if prog.Procs != procs {
		return nil, fmt.Errorf("sim: program %q generated for %d processors, config has %d",
			prog.Name, prog.Procs, procs)
	}
	s, err := newSystem(cfg, opts, procs)
	if err != nil {
		return nil, err
	}
	clock := replay(prog, procs, s.res, s.tr, func(p int, now uint64, r mem.Ref) (uint64, bool) {
		t, retry := s.access(p, now, r)
		if !retry {
			// replay increments Refs after we return; reset on the
			// boundary using the upcoming count.
			s.res.Refs++
			s.maybeWarmupReset()
			s.res.Refs--
		}
		return t, retry
	})
	s.finish(clock)
	return s.res, nil
}

// finish copies final per-processor state and system statistics into the
// result.
func (s *system) finish(clock []uint64) {
	copy(s.res.ProcFinish, clock)
	for _, t := range clock {
		if t > s.res.Cycles {
			s.res.Cycles = t
		}
	}
	for i, sc := range s.sccs {
		s.res.SCC[i] = sc.CacheStats()
		s.res.SCCBank[i] = sc.Stats()
	}
	s.res.Snoop = s.bus.Stats()
}
