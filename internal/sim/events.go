package sim

import "sccsim/internal/obs"

// Event tracing: the simulator can narrate a run as a stream of
// obs.Events — one per memory reference plus stall, coherence, lock and
// scheduling events — which the obs package renders as a Chrome
// trace_event timeline (one track per processor, one per cluster bus).
//
// The hook is Options.Tracer. When it is nil (the default) every
// emission site reduces to one predictable nil-check branch, keeping the
// replay/access hot path within the tier-1 performance budget; the
// BenchmarkSweepParallelism guard in internal/explorer holds the
// disabled overhead under 2%.

// EventKind classifies a simulator trace event. The values index
// EventKindNames and are stored in obs.Event.Kind.
type EventKind uint8

const (
	// EvReadHit / EvWriteHit: the SCC serviced the access from a
	// resident line (instant).
	EvReadHit EventKind = iota
	EvWriteHit
	// EvReadMiss: a read fetched its line over the bus; the duration is
	// the processor's stall. EvWriteMiss is an instant — the write
	// retires into the write buffer and the fetch shows on the bus track.
	EvReadMiss
	EvWriteMiss
	// EvBankStall: the access waited for a busy SCC bank.
	EvBankStall
	// EvWriteBufStall: the write buffer was full; the processor stalled
	// until the oldest entry drained.
	EvWriteBufStall
	// EvLockSpin: one test-and-test-and-set spin iteration on a held
	// lock. EvLockAcquire / EvLockRelease mark ownership changes.
	EvLockSpin
	EvLockAcquire
	EvLockRelease
	// EvBarrierWait: idle time at a phase barrier (or, in
	// multiprogramming, idle with no runnable process).
	EvBarrierWait
	// EvSwitch: the multiprogramming scheduler switched the processor to
	// a different process.
	EvSwitch
	// EvBusFetch: a line transfer over the snoopy bus (duration = fetch
	// latency). EvBusInvalidate: an invalidation broadcast.
	// EvBusWriteBack: a dirty eviction's write-back transaction. These
	// land on the requesting cluster's bus track.
	EvBusFetch
	EvBusInvalidate
	EvBusWriteBack

	numEventKinds
)

// NumEventKinds is the number of distinct event kinds.
const NumEventKinds = int(numEventKinds)

// EventKindNames maps EventKind to the names used in trace exports.
var EventKindNames = [NumEventKinds]string{
	EvReadHit:       "scc read hit",
	EvWriteHit:      "scc write hit",
	EvReadMiss:      "scc read miss",
	EvWriteMiss:     "scc write miss",
	EvBankStall:     "bank stall",
	EvWriteBufStall: "write-buffer full",
	EvLockSpin:      "lock spin",
	EvLockAcquire:   "lock acquire",
	EvLockRelease:   "lock release",
	EvBarrierWait:   "barrier wait",
	EvSwitch:        "context switch",
	EvBusFetch:      "bus fetch",
	EvBusInvalidate: "bus invalidate",
	EvBusWriteBack:  "bus write-back",
}

func (k EventKind) String() string {
	if int(k) < NumEventKinds {
		return EventKindNames[k]
	}
	return "unknown event"
}

// Tracer observes simulator events. Emit is called inline from the
// replay hot path, once per memory reference and more under contention,
// so implementations must be cheap and must not block; obs.Collector
// (bounded buffer, drop-and-count on overflow) is the intended one. A
// tracer belongs to exactly one run: the simulator is single-goroutine
// per run, so Emit needs no synchronization, but concurrent runs must
// not share a tracer (the sweep engine creates one per design point —
// see explorer.EngineOptions.NewTracer).
type Tracer interface {
	Emit(e obs.Event)
}

// busTrack returns the trace track for a cluster's bus events:
// processors occupy tracks [0, procs); cluster buses follow.
func busTrack(procs, cluster int) int32 { return int32(procs + cluster) }
