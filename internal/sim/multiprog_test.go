package sim

import (
	"testing"

	"sccsim/internal/mem"
	"sccsim/internal/obs"
	"sccsim/internal/sysmodel"
	"sccsim/internal/trace"
)

// mkProcess builds a process looping over lines bytes of address space at
// base, with `passes` passes and the given compute gap per ref.
func mkProcess(name string, base uint32, lines, passes int, gap uint16) Process {
	var refs []mem.Ref
	for p := 0; p < passes; p++ {
		for i := 0; i < lines; i++ {
			refs = append(refs, mem.Ref{
				Addr: base + uint32(i*sysmodel.LineSize),
				Kind: mem.Read,
				Gap:  gap,
			})
		}
	}
	return Process{Name: name, Refs: refs}
}

func mpCfg(procs, sccBytes int) sysmodel.Config {
	return sysmodel.Config{
		Clusters: 1, ProcsPerCluster: procs, SCCBytes: sccBytes,
		LoadLatency: sysmodel.ImpliedLoadLatency(procs), Assoc: 1,
	}
}

func TestRunMultiprogRejectsBadInput(t *testing.T) {
	if _, err := RunMultiprog(mpCfg(1, 4096), Options{}, nil, 100); err == nil {
		t.Error("accepted empty process list")
	}
	ps := []Process{mkProcess("a", 0x10000, 4, 1, 0)}
	if _, err := RunMultiprog(mpCfg(1, 4096), Options{}, ps, 0); err == nil {
		t.Error("accepted zero quantum")
	}
}

func TestMultiprogSingleProcessSingleProc(t *testing.T) {
	ps := []Process{mkProcess("a", 0x10000, 16, 2, 2)}
	r, err := RunMultiprog(mpCfg(1, 64*1024), Options{}, ps, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// 16 cold misses, then hits: 32 refs, 16*100 stall + 32*... gap 2 each.
	if r.Refs != 32 {
		t.Errorf("Refs = %d, want 32", r.Refs)
	}
	if r.Switches != 0 {
		t.Errorf("Switches = %d, want 0 (no competition)", r.Switches)
	}
	agg := r.AggregateSCC()
	if agg.Misses[mem.Read] != 16 {
		t.Errorf("misses = %d, want 16", agg.Misses[mem.Read])
	}
}

func TestMultiprogTimeSlicing(t *testing.T) {
	// Two processes, one processor, small quantum: both finish and the
	// scheduler switches repeatedly.
	ps := []Process{
		mkProcess("a", 0x10000, 8, 50, 10),
		mkProcess("b", 0x80000, 8, 50, 10),
	}
	r, err := RunMultiprog(mpCfg(1, 64*1024), Options{}, ps, 200)
	if err != nil {
		t.Fatal(err)
	}
	if r.Refs != 800 {
		t.Errorf("Refs = %d, want 800 (both processes complete)", r.Refs)
	}
	if r.Switches < 4 {
		t.Errorf("Switches = %d, want several with a small quantum", r.Switches)
	}
}

func TestMultiprogMoreProcsThanProcesses(t *testing.T) {
	ps := []Process{mkProcess("a", 0x10000, 8, 10, 5)}
	r, err := RunMultiprog(mpCfg(4, 64*1024), Options{}, ps, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Refs != 80 {
		t.Errorf("Refs = %d, want 80", r.Refs)
	}
	// Three processors never ran.
	ran := 0
	for _, f := range r.ProcFinish {
		if f > 0 {
			ran++
		}
	}
	if ran != 1 {
		t.Errorf("%d processors ran, want 1", ran)
	}
}

func TestMultiprogParallelismHelps(t *testing.T) {
	// Four independent processes with large caches: 4 processors should
	// be much faster than 1.
	// Bases 64 KB apart: working sets fall in distinct sets of the
	// 512 KB direct-mapped SCC, so no interference is possible.
	mk := func() []Process {
		return []Process{
			mkProcess("a", 0x010000, 64, 40, 3),
			mkProcess("b", 0x020000, 64, 40, 3),
			mkProcess("c", 0x030000, 64, 40, 3),
			mkProcess("d", 0x040000, 64, 40, 3),
		}
	}
	r1, err := RunMultiprog(mpCfg(1, 512*1024), Options{}, mk(), sysmodel.TimeQuantum)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := RunMultiprog(mpCfg(4, 512*1024), Options{}, mk(), sysmodel.TimeQuantum)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(r1.Cycles) / float64(r4.Cycles)
	if speedup < 3.0 {
		t.Errorf("speedup = %.2f, want near 4 for independent processes in a big cache", speedup)
	}
}

func TestMultiprogInterferenceInSmallCache(t *testing.T) {
	// Two processes whose working sets collide in a small SCC: running
	// them simultaneously on 2 procs must raise the miss rate relative
	// to time-slicing... actually time-slicing also thrashes on each
	// switch; the paper's point is that the 2-proc case interferes
	// continuously. Check both that misses rise vs a solo run.
	solo := []Process{mkProcess("a", 0x10000, 128, 30, 2)}
	rSolo, err := RunMultiprog(mpCfg(1, 4096), Options{}, solo, sysmodel.TimeQuantum)
	if err != nil {
		t.Fatal(err)
	}
	// Two colliding processes (4 KB apart -> same sets in a 4 KB cache).
	both := []Process{
		mkProcess("a", 0x10000, 128, 30, 2),
		mkProcess("b", 0x11000, 128, 30, 2),
	}
	rBoth, err := RunMultiprog(mpCfg(2, 4096), Options{}, both, sysmodel.TimeQuantum)
	if err != nil {
		t.Fatal(err)
	}
	if rBoth.ReadMissRate() < 2*rSolo.ReadMissRate() {
		t.Errorf("simultaneous miss rate %.3f vs solo %.3f: no destructive interference",
			rBoth.ReadMissRate(), rSolo.ReadMissRate())
	}
}

func TestMultiprogSwitchPenalty(t *testing.T) {
	ps := func() []Process {
		return []Process{
			mkProcess("a", 0x10000, 8, 50, 10),
			mkProcess("b", 0x80000, 8, 50, 10),
		}
	}
	r0, err := RunMultiprog(mpCfg(1, 64*1024), Options{}, ps(), 200)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := RunMultiprog(mpCfg(1, 64*1024), Options{SwitchPenalty: 500}, ps(), 200)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles <= r0.Cycles {
		t.Errorf("switch penalty did not slow the run: %d vs %d", r1.Cycles, r0.Cycles)
	}
}

func TestMultiprogDeterminism(t *testing.T) {
	mk := func() []Process {
		return []Process{
			mkProcess("a", 0x010000, 32, 20, 3),
			mkProcess("b", 0x110000, 48, 15, 2),
			mkProcess("c", 0x210000, 16, 40, 5),
		}
	}
	r1, err := RunMultiprog(mpCfg(2, 16*1024), Options{}, mk(), 5000)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunMultiprog(mpCfg(2, 16*1024), Options{}, mk(), 5000)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.Switches != r2.Switches {
		t.Errorf("multiprog not deterministic: %d/%d vs %d/%d",
			r1.Cycles, r1.Switches, r2.Cycles, r2.Switches)
	}
}

func TestMultiprogAllWorkCompletes(t *testing.T) {
	// Work conservation: total refs simulated equals the sum of process
	// stream lengths, for several processor counts.
	for _, procs := range []int{1, 2, 4, 8} {
		ps := []Process{
			mkProcess("a", 0x010000, 32, 5, 1),
			mkProcess("b", 0x110000, 16, 9, 1),
			mkProcess("c", 0x210000, 8, 3, 1),
			mkProcess("d", 0x310000, 64, 2, 1),
			mkProcess("e", 0x410000, 4, 100, 1),
		}
		want := uint64(32*5 + 16*9 + 8*3 + 64*2 + 4*100)
		r, err := RunMultiprog(mpCfg(procs, 16*1024), Options{}, ps, 500)
		if err != nil {
			t.Fatal(err)
		}
		if r.Refs != want {
			t.Errorf("procs=%d: Refs = %d, want %d", procs, r.Refs, want)
		}
	}
}

func TestProcessesFromProgram(t *testing.T) {
	p := &trace.Program{
		Name: "x", Procs: 1,
		Phases: []trace.Phase{
			{Name: "a", Streams: [][]mem.Ref{{{Addr: 0x100, Kind: mem.Read}}}},
			{Name: "b", Streams: [][]mem.Ref{{{Addr: 0x200, Kind: mem.Write}}}},
		},
	}
	proc, err := ProcessesFromProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(proc.Refs) != 2 || proc.Refs[1].Addr != 0x200 {
		t.Errorf("flattened refs = %v", proc.Refs)
	}
	p.Procs = 2
	if _, err := ProcessesFromProgram(p); err == nil {
		t.Error("accepted a multi-processor program")
	}
}

// TestMultiprogFlushesMetrics pins the staged-histogram contract on the
// multiprogramming entry point: RunMultiprog stages stall observations
// in per-run local histograms and must merge them into the shared
// registry before returning. A missing Flush leaves the registry at
// zero while the run itself still succeeds, which is exactly the
// silent failure this guards against.
func TestMultiprogFlushesMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	ps := []Process{mkProcess("a", 0x10000, 16, 2, 2)}
	if _, err := RunMultiprog(mpCfg(1, 64*1024), Options{Metrics: reg}, ps, 1000); err != nil {
		t.Fatal(err)
	}
	snap := reg.Histogram("sim.read_miss_cycles", obs.CycleBuckets).Snapshot()
	// 16 cold read misses (see TestMultiprogSingleProcessSingleProc).
	if snap.Count != 16 {
		t.Errorf("sim.read_miss_cycles count = %d after run, want 16 (flush missing?)", snap.Count)
	}
	if snap.Sum == 0 {
		t.Error("sim.read_miss_cycles sum = 0 after run with misses")
	}
}
