package sim

import (
	"reflect"
	"testing"

	"sccsim/internal/mem"
)

// TestWriteBufferDepthMapping pins the documented boundary semantics of
// Options.WriteBufferDepth: zero selects the default, negative means
// effectively infinite, positive values pass through.
func TestWriteBufferDepthMapping(t *testing.T) {
	cases := []struct {
		name string
		in   int
		want int
	}{
		{"zero selects default", 0, DefaultWriteBufferDepth},
		{"negative means infinite", -1, 1 << 30},
		{"large negative means infinite", -1000, 1 << 30},
		{"one passes through", 1, 1},
		{"five passes through", 5, 5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := (Options{WriteBufferDepth: c.in}).wbDepth(); got != c.want {
				t.Errorf("wbDepth(%d) = %d, want %d", c.in, got, c.want)
			}
		})
	}
}

// TestWriteBufferDepthBehavior checks the mapping at the simulation
// level: depth 0 behaves exactly like the explicit default, depth 1
// stalls on back-to-back write misses, and a negative depth never
// stalls.
func TestWriteBufferDepthBehavior(t *testing.T) {
	var refs []mem.Ref
	for i := uint32(1); i <= 20; i++ {
		refs = append(refs, wr(i*0x100, 0))
	}
	p := prog(1, refs)

	run := func(depth int) *Result {
		t.Helper()
		r, err := Run(cfg1(4096), Options{WriteBufferDepth: depth}, p)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	zero := run(0)
	def := run(DefaultWriteBufferDepth)
	if !reflect.DeepEqual(zero, def) {
		t.Errorf("depth 0 and explicit default %d disagree", DefaultWriteBufferDepth)
	}

	one := run(1)
	inf := run(-1)
	if one.WriteStall[0] == 0 {
		t.Error("depth-1 buffer never stalled on a 20-write-miss burst")
	}
	if inf.WriteStall[0] != 0 {
		t.Errorf("infinite buffer stalled %d cycles", inf.WriteStall[0])
	}
	if zero.WriteStall[0] >= one.WriteStall[0] {
		t.Errorf("default depth stalls (%d) not below depth-1 stalls (%d)",
			zero.WriteStall[0], one.WriteStall[0])
	}
}

// TestBusOccupancyBoundary checks the BusOccupancy ablation switch at
// its boundary: zero (the paper's pure-latency bus) records no bus
// waiting, one makes concurrent transactions queue — without disturbing
// the cache hit/miss behaviour, which occupancy must not affect.
func TestBusOccupancyBoundary(t *testing.T) {
	// Two clusters missing on disjoint lines at the same instants: pure
	// contention, no sharing.
	var a, b []mem.Ref
	for i := uint32(1); i <= 100; i++ {
		a = append(a, rd(i*0x100, 0))
		b = append(b, rd(i*0x100+0x80000, 0))
	}
	p := prog(2, a, b)
	cfg := cfg2(4096)

	plain, err := Run(cfg, Options{}, p)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Snoop.BusWaitCycles != 0 {
		t.Errorf("BusOccupancy 0 recorded %d bus-wait cycles, want 0", plain.Snoop.BusWaitCycles)
	}

	occ, err := Run(cfg, Options{BusOccupancy: 1}, p)
	if err != nil {
		t.Fatal(err)
	}
	if occ.Snoop.BusWaitCycles == 0 {
		t.Error("BusOccupancy 1 recorded no bus-wait cycles under contention")
	}
	if occ.Cycles <= plain.Cycles {
		t.Errorf("occupied bus (%d cycles) not slower than free bus (%d)", occ.Cycles, plain.Cycles)
	}
	for c := range plain.SCC {
		if *plain.SCC[c] != *occ.SCC[c] {
			t.Errorf("cluster %d hit/miss stats changed with bus occupancy: %+v vs %+v",
				c, *plain.SCC[c], *occ.SCC[c])
		}
	}
}
