package sim

import (
	"fmt"

	"sccsim/internal/cache"
	"sccsim/internal/mem"
	"sccsim/internal/scc"
	"sccsim/internal/snoop"
	"sccsim/internal/sysmodel"
	"sccsim/internal/trace"
	"sccsim/internal/verify"
)

// Private-cache cluster organization — the paper's alternative design
// (Section 2.1): "separate per processor caches which are kept coherent
// over a high bandwidth intra-cluster bus. This organization has the
// advantage that the total cache bandwidth scales with the number of
// processors in the cluster. However, coherence misses and invalidation
// traffic ... can become a performance bottleneck."
//
// RunPrivate gives each processor a private cache of SCCBytes /
// ProcsPerCluster (equal total capacity per cluster), keeps every cache
// coherent with write-invalidate snooping, and serves misses from a
// same-cluster cache over the fast intra-cluster bus
// (IntraClusterLatency) or from memory/another cluster in MemLatency.
// Comparing Run and RunPrivate on the same program reproduces the
// paper's shared-vs-private cluster cache argument: the shared cache
// keeps one copy per cluster and turns intra-cluster sharing into hits,
// while private caches duplicate lines and pay coherence misses.

// IntraClusterLatency is the cache-to-cache transfer latency within a
// cluster in the private-cache organization (cycles). The intra-cluster
// bus is fast but a transfer still costs a handful of cycles.
const IntraClusterLatency = 20

// RunPrivate simulates the private-per-processor-cache organization.
func RunPrivate(cfg sysmodel.Config, opts Options, prog *trace.Program) (*Result, error) {
	procs := cfg.Procs()
	if prog.Procs != procs {
		return nil, fmt.Errorf("sim: program %q generated for %d processors, config has %d",
			prog.Name, prog.Procs, procs)
	}
	phases, comp, err := programPhases(prog, opts)
	if err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if procs > 32 {
		return nil, fmt.Errorf("sim: private-cache mode supports at most 32 caches, config has %d", procs)
	}
	perProc := cfg.SCCBytes / cfg.ProcsPerCluster
	if perProc < cfg.Line()*cfg.Assoc {
		return nil, fmt.Errorf("sim: %d B per private cache is too small", perProc)
	}

	caches := make([]*cache.Cache, procs)
	invs := make([]snoop.Invalidator, procs)
	groups := make([]int, procs)
	for p := 0; p < procs; p++ {
		c, err := cache.NewWith(perProc, cfg.Assoc, cfg.Line(), cfg.ReplPolicy())
		if err != nil {
			return nil, fmt.Errorf("sim: private cache: %w", err)
		}
		caches[p] = c
		invs[p] = c
		groups[p] = p / cfg.ProcsPerCluster
	}
	bus := snoop.New(invs)
	bus.SetLineBytes(cfg.Line())
	bus.Occupancy = opts.BusOccupancy
	bus.MemBanks = opts.MemBanks
	bus.MemBankOccupancy = opts.MemBankOccupancy
	bus.GroupOf = groups
	bus.IntraLatency = IntraClusterLatency
	if comp != nil {
		bus.ReserveLines(reserveLines(comp.MaxLineIndex(), cfg.Line()))
	}

	// The invariant checker audits the same laws as the shared machine,
	// with each private cache standing in as a "cluster" (the bus indexes
	// presence per cache). The bank-occupancy law is skipped: private
	// caches have no banks, so Final.Bank stays nil.
	var ck *verify.Checker
	if opts.Verify != nil {
		cls := make([]verify.Cluster, procs)
		for p := range caches {
			cls[p] = caches[p]
		}
		ck = verify.NewChecker(opts.Verify, bus, cls, false)
		ck.SetLineBytes(cfg.Line())
		bus.Verifier = ck
	}

	res := &Result{
		Config:      cfg,
		ProcFinish:  make([]uint64, procs),
		ReadStall:   make([]uint64, procs),
		WriteStall:  make([]uint64, procs),
		BankStall:   make([]uint64, procs),
		BarrierWait: make([]uint64, procs),
		LockStall:   make([]uint64, procs),
		SCC:         make([]*cache.Stats, procs),
		SCCBank:     make([]*scc.Stats, procs),
	}

	// Per-processor write buffers.
	wbPending := make([][]uint64, procs)
	wbHead := make([]int, procs)
	depth := opts.wbDepth()
	locks := newLockTable()

	memAccess := func(p int, now uint64, addr uint32, kind mem.Kind) uint64 {
		if ck != nil {
			ck.OnAccess(p)
		}
		cr := caches[p].Access(addr, kind)
		if cr.Evicted != cache.EvictedNone {
			bus.Evicted(now, p, cr.Evicted, cr.EvictedDirty)
		}
		if cr.Hit {
			if kind == mem.Write {
				bus.WriteShared(now, p, addr)
			}
			return now
		}
		ready := bus.Fetch(now, p, addr, kind)
		if kind == mem.Read {
			res.ReadStall[p] += ready - now
			return ready
		}
		// Buffered write (per-processor buffer).
		pend := wbPending[p]
		head := wbHead[p]
		for head < len(pend) && pend[head] <= now {
			head++
		}
		if head == len(pend) {
			pend = pend[:0]
			head = 0
		}
		if len(pend)-head >= depth {
			wait := pend[head] - now
			res.WriteStall[p] += wait
			now = pend[head]
			head++
		}
		wbPending[p] = append(pend, ready)
		wbHead[p] = head
		return now
	}

	access := func(p int, now uint64, r mem.Ref) (uint64, bool) {
		switch r.Kind {
		case mem.Lock:
			t := memAccess(p, now, r.Addr, mem.Read)
			if holder, held := locks.holder(r.Addr); held && holder != p {
				res.LockSpins++
				res.LockStall[p] += SpinInterval
				return t + SpinInterval, true
			}
			t = memAccess(p, t, r.Addr, mem.Write)
			locks.acquire(r.Addr, p)
			return t, false
		case mem.Unlock:
			t := memAccess(p, now, r.Addr, mem.Write)
			locks.release(r.Addr)
			return t, false
		default:
			return memAccess(p, now, r.Addr, r.Kind), false
		}
	}

	// Private-cache mode traces barrier waits only; the per-reference
	// event stream is a shared-SCC (Run/RunMultiprog) feature. Warmup
	// resets are likewise a shared-SCC feature (warmupAt = 0).
	clock := replay(phases, procs, res, opts.Tracer, 0, nil, access)
	copy(res.ProcFinish, clock)
	for _, t := range clock {
		if t > res.Cycles {
			res.Cycles = t
		}
	}
	for p := 0; p < procs; p++ {
		res.SCC[p] = caches[p].Stats()
		res.SCCBank[p] = &scc.Stats{BankAccesses: []uint64{caches[p].Stats().TotalAccesses()}}
	}
	res.Snoop = bus.Stats()
	if ck != nil {
		var exp uint64
		if comp != nil {
			exp = comp.Refs()
		} else {
			exp = countRefs(phases)
		}
		err := ck.FinishRun(verify.Final{
			Cycles:           res.Cycles,
			Refs:             res.Refs,
			ExpectedRefs:     exp,
			Cache:            res.SCC,
			BankAccessCycles: sysmodel.BankAccessCycles,
		})
		if err != nil {
			return nil, fmt.Errorf("sim: verification failed: %w", err)
		}
	}
	return res, nil
}
