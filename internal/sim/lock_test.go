package sim

import (
	"testing"

	"sccsim/internal/mem"
	"sccsim/internal/sysmodel"
	"sccsim/internal/trace"
)

func lk(addr uint32, gap uint16) mem.Ref {
	return mem.Ref{Addr: addr, Kind: mem.Lock, Gap: gap}
}

func ulk(addr uint32, gap uint16) mem.Ref {
	return mem.Ref{Addr: addr, Kind: mem.Unlock, Gap: gap}
}

func TestLockUncontended(t *testing.T) {
	p := prog(1, []mem.Ref{lk(0x100, 0), wr(0x200, 5), ulk(0x100, 5)})
	r, err := Run(cfg1(4096), Options{}, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.LockSpins != 0 {
		t.Errorf("uncontended lock spun %d times", r.LockSpins)
	}
	// Three refs: lock (read+write), write, unlock (write) = 4 accesses.
	agg := r.AggregateSCC()
	if agg.TotalAccesses() != 4 {
		t.Errorf("accesses = %d, want 4", agg.TotalAccesses())
	}
}

func TestLockMutualExclusion(t *testing.T) {
	// Two processors increment a shared counter under a lock. Proc 0
	// holds the lock for a long compute stretch; proc 1 must spin.
	cfg := sysmodel.Config{Clusters: 1, ProcsPerCluster: 2, SCCBytes: 8192, LoadLatency: 3, Assoc: 1}
	p := prog(2,
		[]mem.Ref{lk(0x100, 0), {Kind: mem.Idle, Gap: 2000}, wr(0x200, 0), ulk(0x100, 0)},
		[]mem.Ref{lk(0x100, 50), wr(0x200, 0), ulk(0x100, 0)},
	)
	r, err := Run(cfg, Options{}, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.LockSpins == 0 {
		t.Error("contended lock never spun")
	}
	if r.LockStall[1] == 0 {
		t.Error("spinning processor recorded no lock stall")
	}
	// Proc 1 cannot finish before proc 0 releases (~2100 cycles).
	if r.ProcFinish[1] < 2000 {
		t.Errorf("proc 1 finished at %d, before the lock was released", r.ProcFinish[1])
	}
}

func TestLockAcrossClustersPingPongs(t *testing.T) {
	// The lock word itself coheres: each acquisition from another
	// cluster invalidates the previous holder's cached copy.
	cfg := sysmodel.Config{Clusters: 2, ProcsPerCluster: 1, SCCBytes: 8192, LoadLatency: 2, Assoc: 1}
	p := prog(2,
		[]mem.Ref{lk(0x100, 0), ulk(0x100, 100)},
		[]mem.Ref{lk(0x100, 2000), ulk(0x100, 100)},
	)
	r, err := Run(cfg, Options{}, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Snoop.Invalidations == 0 {
		t.Error("lock transfer between clusters caused no invalidations")
	}
}

func TestLockPrivateMode(t *testing.T) {
	cfg := sysmodel.Config{Clusters: 1, ProcsPerCluster: 2, SCCBytes: 8192, LoadLatency: 3, Assoc: 1}
	p := prog(2,
		[]mem.Ref{lk(0x100, 0), {Kind: mem.Idle, Gap: 1500}, ulk(0x100, 0)},
		[]mem.Ref{lk(0x100, 40), ulk(0x100, 0)},
	)
	r, err := RunPrivate(cfg, Options{}, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.LockSpins == 0 {
		t.Error("contended lock never spun in private mode")
	}
}

func TestValidateRejectsLockMisuse(t *testing.T) {
	// Unlock without lock.
	p := prog(1, []mem.Ref{ulk(0x100, 0)})
	if _, err := Run(cfg1(4096), Options{}, p); err == nil {
		t.Error("accepted unlock without lock")
	}
	// Lock held across the phase end.
	p = prog(1, []mem.Ref{lk(0x100, 0)})
	if _, err := Run(cfg1(4096), Options{}, p); err == nil {
		t.Error("accepted lock held at the barrier")
	}
	// Recursive acquisition.
	p = prog(1, []mem.Ref{lk(0x100, 0), lk(0x100, 0), ulk(0x100, 0), ulk(0x100, 0)})
	if _, err := Run(cfg1(4096), Options{}, p); err == nil {
		t.Error("accepted recursive lock")
	}
}

func TestLockFairProgress(t *testing.T) {
	// Eight processors all hammer one lock; everyone must finish.
	cfg := sysmodel.Config{Clusters: 2, ProcsPerCluster: 4, SCCBytes: 8192, LoadLatency: 4, Assoc: 1}
	streams := make([][]mem.Ref, 8)
	for p := 0; p < 8; p++ {
		for i := 0; i < 20; i++ {
			streams[p] = append(streams[p], lk(0x100, 10), wr(0x200, 5), ulk(0x100, 5))
		}
	}
	p := &trace.Program{Name: "locks", Procs: 8,
		Phases: []trace.Phase{{Name: "x", Streams: streams}}}
	r, err := Run(cfg, Options{}, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Refs != 8*20*3 {
		t.Errorf("refs = %d, want %d (every critical section completed)", r.Refs, 8*20*3)
	}
}
