package multiprog

import (
	"testing"

	"sccsim/internal/mem"
	"sccsim/internal/sim"
	"sccsim/internal/sysmodel"
)

func TestGenerateDefaults(t *testing.T) {
	ps, err := Generate(Params{RefsPerApp: 5000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 8 {
		t.Fatalf("got %d processes, want 8", len(ps))
	}
	names := Names()
	for i, p := range ps {
		if p.Name != names[i] {
			t.Errorf("process %d = %q, want %q", i, p.Name, names[i])
		}
		if len(p.Refs) < 5000 {
			t.Errorf("%s has %d refs, want >= 5000", p.Name, len(p.Refs))
		}
	}
}

func TestGenerateValidates(t *testing.T) {
	if _, err := Generate(Params{RefsPerApp: 10}); err == nil {
		t.Error("accepted tiny RefsPerApp")
	}
	if _, err := Generate(Params{RefsPerApp: 5000, Apps: []string{"nope"}}); err == nil {
		t.Error("accepted unknown app")
	}
	if _, err := Generate(Params{RefsPerApp: 5000, Apps: []string{}}); err == nil {
		t.Error("accepted empty app list")
	}
}

func TestAppSubset(t *testing.T) {
	ps, err := Generate(Params{RefsPerApp: 5000, Apps: []string{"compress", "xlisp"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 || ps[0].Name != "compress" || ps[1].Name != "xlisp" {
		t.Errorf("subset = %v", []string{ps[0].Name, ps[1].Name})
	}
}

func TestDeterministic(t *testing.T) {
	a, _ := Generate(Params{RefsPerApp: 20000, Seed: 9})
	b, _ := Generate(Params{RefsPerApp: 20000, Seed: 9})
	for i := range a {
		if len(a[i].Refs) != len(b[i].Refs) {
			t.Fatalf("%s: lengths differ", a[i].Name)
		}
		for j := range a[i].Refs {
			if a[i].Refs[j] != b[i].Refs[j] {
				t.Fatalf("%s ref %d differs", a[i].Name, j)
			}
		}
	}
}

func TestDisjointAddressSpaces(t *testing.T) {
	ps, err := Generate(Params{RefsPerApp: 20000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	owner := map[uint32]int{}
	for i, p := range ps {
		for _, r := range p.Refs {
			if r.Kind == mem.Idle {
				continue
			}
			line := sysmodel.LineAddr(r.Addr)
			if prev, ok := owner[line]; ok && prev != i {
				t.Fatalf("processes %s and %s share line %#x", ps[prev].Name, p.Name, line)
			}
			owner[line] = i
		}
	}
}

func TestFootprintOrdering(t *testing.T) {
	// espresso must touch far fewer distinct lines than wave5.
	ps, err := Generate(Params{RefsPerApp: 200000, Seed: 3, Apps: []string{"espresso", "wave5"}})
	if err != nil {
		t.Fatal(err)
	}
	count := func(p sim.Process) int {
		lines := map[uint32]struct{}{}
		for _, r := range p.Refs {
			if r.Kind != mem.Idle {
				lines[sysmodel.LineAddr(r.Addr)] = struct{}{}
			}
		}
		return len(lines)
	}
	e, w := count(ps[0]), count(ps[1])
	if e*3 > w {
		t.Errorf("espresso lines %d vs wave5 %d: want wave5 >= 3x", e, w)
	}
}

func TestQuantumScaling(t *testing.T) {
	if Quantum(0) == 0 {
		t.Error("zero quantum")
	}
	if Quantum(600_000) <= Quantum(60_000) {
		t.Error("quantum does not scale with the reference budget")
	}
}

// Integration: the headline multiprogramming behaviour — larger SCC
// recovers the interference loss (paper Figs. 5-6).
func TestInterferenceRecoveredByLargeCache(t *testing.T) {
	mk := func() []sim.Process {
		ps, err := Generate(Params{RefsPerApp: 60_000, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		return ps
	}
	quantum := Quantum(60_000)
	run := func(procs, scc int) uint64 {
		cfg := sysmodel.Config{Clusters: 1, ProcsPerCluster: procs, SCCBytes: scc,
			LoadLatency: sysmodel.ImpliedLoadLatency(procs), Assoc: 1}
		r, err := sim.RunMultiprog(cfg, sim.Options{}, mk(), quantum)
		if err != nil {
			t.Fatal(err)
		}
		return r.Cycles
	}
	small8 := run(8, 4*1024)
	big8 := run(8, 512*1024)
	if small8 <= big8 {
		t.Fatalf("8 procs: 4KB (%d cycles) not slower than 512KB (%d)", small8, big8)
	}
	ratio := float64(small8) / float64(big8)
	t.Logf("8-proc exec-time ratio 4KB/512KB = %.2f (paper: ~4.1)", ratio)
	if ratio < 1.5 {
		t.Errorf("interference spread = %.2f, want >= 1.5", ratio)
	}
}
