// Package multiprog builds the paper's multiprogramming workload
// (Section 2.3): eight SPEC92 benchmarks run as independent processes,
// scheduled round-robin onto the processors of one cluster.
//
// SPEC92 binaries and pixie are not shippable, so each benchmark is a
// synthetic-but-mechanistic kernel whose reference stream reproduces the
// published memory character of the original: footprint, hot working-set
// size, access-pattern mix (sequential sweeps, hash/heap scatter, pointer
// chasing), and write fraction. The multiprogramming result in the paper
// depends only on how these per-process working sets interfere in a
// shared cluster cache, which is exactly what these knobs control.
//
// The paper simulates 100M references (~30M instructions per
// application) against a 5M-cycle scheduling quantum, i.e. each process
// runs for roughly 6-10 quanta. The default RefsPerApp preserves that
// ratio at a CI-friendly scale; use Quantum() for the matching quantum.
package multiprog

import (
	"fmt"

	"sccsim/internal/mem"
	"sccsim/internal/sim"
	"sccsim/internal/synth"
	"sccsim/internal/sysmodel"
	"sccsim/internal/trace"
)

// Params configures the workload.
type Params struct {
	// RefsPerApp is the memory-reference budget per process
	// (default 600,000 — see the package comment on scaling).
	RefsPerApp int
	// Seed drives all the synthetic kernels.
	Seed int64
	// Apps selects a subset by name; nil means all eight.
	Apps []string
}

// Quantum returns the round-robin scheduling quantum matched to the
// given per-app reference budget, preserving the paper's ratio of about
// eight quanta per process (the paper: ~30M instructions per application
// against a 5M-cycle quantum).
func Quantum(refsPerApp int) uint64 {
	// A reference costs ~4-6 cycles on average including stalls.
	q := uint64(refsPerApp) * 5 / 8
	if q == 0 {
		q = 1
	}
	return q
}

// spec describes one benchmark's memory character.
type spec struct {
	name string
	// footprint is the total data size in bytes.
	footprint uint32
	// weights of the access-pattern mix.
	scanW, wsW, chaseW float64
	// working-set model parameters (StackDist).
	pNew, pDepth float64
	// chaseBytes is the pointer-chase region size (heap structures).
	chaseBytes uint32
	// writeFrac is the store fraction of data references.
	writeFrac float64
	// gap is the mean non-memory instructions between references.
	gap int
	// stackRefs is the per-iteration count of hot stack references.
	stackRefs int
}

// The eight applications of Table 2, with memory characters drawn from
// the published SPEC92 analyses: espresso and sc are small/cache-
// friendly; xlisp is pointer-chasing over a modest heap; eqntott and
// compress touch large, poorly-localized tables; gcc has a large mixed
// working set; spice and wave5 stream large floating-point arrays.
// The footprints are the benchmarks' *hot* (re-referenced) working sets,
// sized so the combined eight-process set (~0.5 MB) straddles the
// 4 KB-512 KB SCC sweep — the regime Figures 5-6 of the paper explore.
var specs = []spec{
	{name: "sc", footprint: 40 * 1024, scanW: 0.35, wsW: 0.65, pNew: 0.015, pDepth: 0.25,
		writeFrac: 0.22, gap: 3, stackRefs: 2},
	{name: "espresso", footprint: 28 * 1024, scanW: 0.2, wsW: 0.8, pNew: 0.01, pDepth: 0.35,
		writeFrac: 0.15, gap: 3, stackRefs: 2},
	{name: "eqntott", footprint: 72 * 1024, scanW: 0.75, wsW: 0.25, pNew: 0.02, pDepth: 0.15,
		writeFrac: 0.10, gap: 2, stackRefs: 1},
	{name: "xlisp", footprint: 44 * 1024, scanW: 0.05, wsW: 0.45, chaseW: 0.5, pNew: 0.015,
		pDepth: 0.30, chaseBytes: 28 * 1024, writeFrac: 0.25, gap: 4, stackRefs: 3},
	{name: "compress", footprint: 64 * 1024, scanW: 0.3, wsW: 0.7, pNew: 0.025, pDepth: 0.08,
		writeFrac: 0.28, gap: 3, stackRefs: 1},
	{name: "gcc", footprint: 80 * 1024, scanW: 0.15, wsW: 0.6, chaseW: 0.25, pNew: 0.02,
		pDepth: 0.12, chaseBytes: 32 * 1024, writeFrac: 0.20, gap: 3, stackRefs: 2},
	{name: "spice", footprint: 88 * 1024, scanW: 0.55, wsW: 0.3, chaseW: 0.15, pNew: 0.015,
		pDepth: 0.2, chaseBytes: 36 * 1024, writeFrac: 0.12, gap: 4, stackRefs: 2},
	{name: "wave5", footprint: 96 * 1024, scanW: 0.85, wsW: 0.15, pNew: 0.02, pDepth: 0.3,
		writeFrac: 0.30, gap: 2, stackRefs: 1},
}

// Names returns the benchmark names in workload order.
func Names() []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.name
	}
	return out
}

// Generate builds the process set. Process address spaces are disjoint;
// each process's "stack" (hot private locals) is page-colored like the
// parallel workloads' processor stacks.
func Generate(p Params) ([]sim.Process, error) {
	if p.RefsPerApp == 0 {
		p.RefsPerApp = 600_000
	}
	if p.RefsPerApp < 1000 {
		return nil, fmt.Errorf("multiprog: RefsPerApp = %d, want >= 1000", p.RefsPerApp)
	}
	chosen := specs
	if p.Apps != nil {
		chosen = nil
		for _, name := range p.Apps {
			found := false
			for _, s := range specs {
				if s.name == name {
					chosen = append(chosen, s)
					found = true
				}
			}
			if !found {
				return nil, fmt.Errorf("multiprog: unknown application %q", name)
			}
		}
	}
	if len(chosen) == 0 {
		return nil, fmt.Errorf("multiprog: empty application list")
	}

	alloc := mem.NewColoredAllocator()
	procs := make([]sim.Process, len(chosen))
	for i, s := range chosen {
		rng := synth.NewRNG(p.Seed ^ int64(i)<<32 ^ int64(len(s.name)))
		refs, err := buildApp(s, p.RefsPerApp, alloc, mem.StackBase(i), rng)
		if err != nil {
			return nil, fmt.Errorf("multiprog: %s: %w", s.name, err)
		}
		procs[i] = sim.Process{Name: s.name, Refs: refs}
	}
	return procs, nil
}

// buildApp emits one process's reference stream.
func buildApp(s spec, budget int, alloc *mem.ColoredAllocator, stack uint32, rng *synth.RNG) ([]mem.Ref, error) {
	// Data regions are allocated in color-block-sized chunks so large
	// footprints coexist with the coloring holes; sources treat the
	// chunks as one logical region each.
	dataChunks := allocChunks(alloc, s.footprint)
	var sources []synth.AddrSource
	var weights []float64

	if s.scanW > 0 {
		sources = append(sources, newChunkScan(dataChunks))
		weights = append(weights, s.scanW)
	}
	if s.wsW > 0 {
		// The working-set source lives on the first chunks (the hot
		// portion of the footprint).
		hot := dataChunks
		if len(hot) > 8 {
			hot = hot[:8]
		}
		sd, err := synth.NewStackDist(spanOf(hot), s.pNew, s.pDepth, 4096, rng)
		if err != nil {
			return nil, err
		}
		sources = append(sources, &chunkFilter{src: sd, chunks: hot})
		weights = append(weights, s.wsW)
	}
	if s.chaseW > 0 {
		chunks := allocChunks(alloc, s.chaseBytes)
		sources = append(sources, newMultiChase(chunks, rng))
		weights = append(weights, s.chaseW)
	}
	mix := synth.NewMix(rng, sources, weights)

	bl := trace.NewBuilder(budget + budget/2)
	for i := 0; i < budget; i++ {
		// Hot private locals: the dominant always-hit traffic of real
		// code, and the source of destructive interference when several
		// processes share a small cache.
		for k := 0; k < s.stackRefs; k++ {
			off := uint32((i + k) % 12 * 8)
			if (i+k)%3 == 0 {
				bl.Write(stack + off)
			} else {
				bl.Read(stack + off)
			}
		}
		addr := mix.Next()
		if rng.Float64() < s.writeFrac {
			bl.Write(addr)
		} else {
			bl.Read(addr)
		}
		bl.Compute(s.gap + rng.Intn(3))
	}
	return bl.Finish(), nil
}

// allocChunks reserves footprint bytes as ColorData-sized colored chunks.
func allocChunks(alloc *mem.ColoredAllocator, footprint uint32) []mem.Region {
	var chunks []mem.Region
	for footprint > 0 {
		n := footprint
		if n > mem.ColorData {
			n = mem.ColorData
		}
		chunks = append(chunks, alloc.Alloc(n, sysmodel.LineSize))
		footprint -= n
	}
	return chunks
}

// spanOf returns a region covering the chunks' address range (used only
// to parameterize StackDist; actual addresses are filtered to chunks).
func spanOf(chunks []mem.Region) mem.Region {
	first := chunks[0]
	last := chunks[len(chunks)-1]
	return mem.Region{Start: first.Start, Size: last.End() - first.Start}
}

// chunkFilter remaps a source's addresses into the data chunks, skipping
// the coloring holes.
type chunkFilter struct {
	src    synth.AddrSource
	chunks []mem.Region
}

func (c *chunkFilter) Next() uint32 {
	addr := c.src.Next()
	if !mem.InHole(addr) {
		return addr
	}
	// Remap hole addresses onto the first chunk, preserving the offset.
	r := c.chunks[0]
	return r.Start + addr%r.Size
}

// chunkScan sweeps a chunk list sequentially, line by line.
type chunkScan struct {
	chunks []mem.Region
	ci     int
	off    uint32
}

func newChunkScan(chunks []mem.Region) *chunkScan { return &chunkScan{chunks: chunks} }

func (s *chunkScan) Next() uint32 {
	r := s.chunks[s.ci]
	addr := r.Start + s.off
	s.off += sysmodel.LineSize
	if s.off >= r.Size {
		s.off = 0
		s.ci = (s.ci + 1) % len(s.chunks)
	}
	return addr
}

// multiChase pointer-chases across a chunk list (one chase per chunk,
// hopping chunks every cycle-completion).
type multiChase struct {
	chases []*synth.PointerChase
	ci     int
	step   int
	perlap int
}

func newMultiChase(chunks []mem.Region, rng *synth.RNG) *multiChase {
	m := &multiChase{perlap: 64}
	for _, r := range chunks {
		m.chases = append(m.chases, synth.NewPointerChase(r, rng))
	}
	return m
}

func (m *multiChase) Next() uint32 {
	addr := m.chases[m.ci].Next()
	m.step++
	if m.step >= m.perlap {
		m.step = 0
		m.ci = (m.ci + 1) % len(m.chases)
	}
	return addr
}
