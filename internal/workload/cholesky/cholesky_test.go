package cholesky

import (
	"testing"

	"sccsim/internal/trace"
)

func small(procs int) Params {
	return Params{Procs: procs, Seed: 3, GridW: 8, GridH: 8}
}

func TestGenerateValidates(t *testing.T) {
	if _, err := Generate(Params{Procs: -1}); err == nil {
		t.Error("accepted negative Procs")
	}
}

func TestStructure(t *testing.T) {
	p, err := Generate(small(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Phases) != 2 {
		t.Fatalf("phases = %d, want 2 (load, factor)", len(p.Phases))
	}
	if p.Phases[0].Name != "load" || p.Phases[1].Name != "factor" {
		t.Errorf("phase names: %q, %q", p.Phases[0].Name, p.Phases[1].Name)
	}
}

func TestDeterministic(t *testing.T) {
	a, err := Generate(small(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(small(2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Refs() != b.Refs() {
		t.Fatalf("ref counts differ: %d vs %d", a.Refs(), b.Refs())
	}
}

func TestFactorWorkDominatesLoad(t *testing.T) {
	p, err := Generate(small(1))
	if err != nil {
		t.Fatal(err)
	}
	prof := trace.Analyze(p)
	if prof.ComputeCycles == 0 {
		t.Fatal("no compute recorded")
	}
	loadRefs := len(p.Phases[0].Streams[0])
	factorRefs := len(p.Phases[1].Streams[0])
	if factorRefs < 2*loadRefs {
		t.Errorf("factor refs %d vs load refs %d; factorization should dominate", factorRefs, loadRefs)
	}
}

func TestImbalanceExists(t *testing.T) {
	// With 32 processors the schedule is wait-dominated: some processor
	// streams must contain substantial idle (Compute) time — the paper's
	// "limited concurrency, bad load balancing and high synchronization
	// overhead".
	p, err := Generate(Params{Procs: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	prof := trace.Analyze(p)
	var min, max uint64
	min = ^uint64(0)
	for _, pp := range prof.PerProc {
		work := pp.Reads + pp.Writes
		if work < min {
			min = work
		}
		if work > max {
			max = work
		}
	}
	if float64(max) < 1.3*float64(min) {
		t.Errorf("per-proc ref counts too even (min %d, max %d) for a saturated schedule", min, max)
	}
}

func TestSharedFactorColumns(t *testing.T) {
	p, err := Generate(small(8))
	if err != nil {
		t.Fatal(err)
	}
	prof := trace.Analyze(p)
	// Fan-out updates read source columns written by other processors:
	// a good fraction of lines must be shared.
	if prof.SharedFrac() < 0.2 {
		t.Errorf("shared fraction = %.2f, want >= 0.2", prof.SharedFrac())
	}
}

func TestDefaultScale(t *testing.T) {
	p, err := Generate(Params{Procs: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	prof := trace.Analyze(p)
	// L values ~1.3 MB plus indices: footprint should be 1-3 MB.
	if fp := prof.FootprintBytes(); fp < 500*1024 || fp > 4*1024*1024 {
		t.Errorf("footprint = %d KB, want 0.5-4 MB", fp/1024)
	}
	if prof.RefTotal() < 100_000 {
		t.Errorf("refs = %d, suspiciously small", prof.RefTotal())
	}
}

func BenchmarkGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate(Params{Procs: 8, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
