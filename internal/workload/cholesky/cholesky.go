// Package cholesky implements the SPLASH Cholesky application as a
// trace-generating workload: supernodal fan-out factorization of a
// BCSSTK14-like sparse matrix, scheduled across processors with the
// pipelined task model the SPLASH code uses (dynamic task queue,
// per-supernode locks).
//
// The paper's observations for Cholesky: almost no increase in
// invalidations with more processors per cluster; mild prefetching; and —
// the dominant effect — limited speedup (~3.0 at 4 KB to ~3.5 at 512 KB
// for eight processors per cluster) caused by the input's limited
// concurrency, load imbalance and synchronization overhead. Those limits
// live in the schedule: the emitted per-processor streams include the
// waits the task DAG forces.
package cholesky

import (
	"fmt"

	"sccsim/internal/mem"
	"sccsim/internal/sparse"
	"sccsim/internal/sysmodel"
	"sccsim/internal/trace"
)

// Params configures a Cholesky run. Zero fields select the paper's
// BCSSTK14 configuration.
type Params struct {
	// Procs is the number of logical processors.
	Procs int
	// Seed drives the synthetic matrix structure.
	Seed int64
	// MaxSupernodeWidth caps supernode amalgamation (0 = default).
	MaxSupernodeWidth int
	// Grid overrides the mesh dimensions (0 = BCSSTK14-like defaults).
	GridW, GridH int
}

// Generate factors the matrix symbolically, schedules the supernodal
// fan-out DAG onto the processors, and emits the reference trace.
func Generate(p Params) (*trace.Program, error) {
	if p.Procs == 0 {
		p.Procs = 1
	}
	if p.Procs < 1 {
		return nil, fmt.Errorf("cholesky: Procs = %d", p.Procs)
	}

	a := sparse.GenerateBCSSTK14Like(sparse.BCSSTK14Params{
		GridW: p.GridW, GridH: p.GridH, Seed: p.Seed,
	})
	parent := sparse.EliminationTree(a)
	l := sparse.SymbolicFactor(a, parent)
	sns, colSn := sparse.FindSupernodes(l, p.MaxSupernodeWidth)
	ops, succ, indeg := sparse.BuildOps(l, sns, colSn)
	sched, err := sparse.ListSchedule(ops, succ, indeg, len(sns), p.Procs)
	if err != nil {
		return nil, err
	}

	// Memory layout: per-column value arrays (8 B/entry) and row-index
	// arrays (4 B/entry) of L, plus the input matrix A, all in colored
	// data space; per-processor stacks in the holes.
	alloc := mem.NewColoredAllocator()
	valAddr := make([]uint32, l.N)
	idxAddr := make([]uint32, l.N)
	for j := 0; j < l.N; j++ {
		nnz := uint32(len(l.Col(j)))
		valAddr[j] = alloc.Alloc(nnz*8, 16).Start
		idxAddr[j] = alloc.Alloc(nnz*4, 16).Start
	}
	aAddr := make([]uint32, a.N)
	for j := 0; j < a.N; j++ {
		aAddr[j] = alloc.Alloc(uint32(len(a.Col(j)))*8, 16).Start
	}
	stacks := make([]uint32, p.Procs)
	for i := range stacks {
		stacks[i] = mem.StackBase(i)
	}

	prog := &trace.Program{Name: "cholesky", Procs: p.Procs}

	// --- Phase: load -----------------------------------------------
	// Copy A into the factor storage (each processor loads a contiguous
	// share of the columns, as the SPLASH initialization does).
	loadBuilders := make([]*trace.Builder, p.Procs)
	for i := range loadBuilders {
		loadBuilders[i] = trace.NewBuilder(a.Nnz() / p.Procs)
	}
	for j := 0; j < a.N; j++ {
		bl := loadBuilders[j*p.Procs/a.N]
		bl.Read(stacks[j*p.Procs/a.N])
		an := uint32(len(a.Col(j)))
		for off := uint32(0); off < an*8; off += sysmodel.LineSize {
			bl.Read(aAddr[j] + off)
			bl.Write(valAddr[j] + off)
		}
		bl.Compute(int(an) * 2)
	}
	prog.Phases = append(prog.Phases, finishPhase("load", loadBuilders))

	// --- Phase: factor ----------------------------------------------
	// Replay the schedule: each processor's operation sequence with the
	// DAG-forced waits as idle time.
	builders := make([]*trace.Builder, p.Procs)
	for i := range builders {
		builders[i] = trace.NewBuilder(1 << 16)
	}
	for proc, seq := range sched.PerProc {
		bl := builders[proc]
		stack := stacks[proc]
		var cursor int64
		for _, so := range seq {
			if so.Start > cursor {
				bl.Compute(int(so.Start - cursor)) // waiting on deps/locks
			}
			cursor = so.End
			switch so.Kind {
			case sparse.SFactor:
				emitSFactor(bl, stack, l, sns[so.J], valAddr, idxAddr)
			case sparse.SMod:
				emitSMod(bl, stack, l, sns[so.J], sns[so.K], valAddr, idxAddr)
			}
		}
	}
	prog.Phases = append(prog.Phases, finishPhase("factor", builders))

	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("cholesky: generated invalid program: %w", err)
	}
	return prog, nil
}

// emitSFactor emits the internal dense factorization of supernode s:
// stream each column, read the row indices, scale and update within the
// supernode.
func emitSFactor(bl *trace.Builder, stack uint32, l *sparse.Pattern, s sparse.Supernode, valAddr, idxAddr []uint32) {
	bl.Write(stack) // frame
	bl.Read(stack + 8)
	for j := int(s.First); j < int(s.Last); j++ {
		nnz := uint32(len(l.Col(j)))
		bl.Read(stack + 16) // loop locals
		bl.Read(stack + 24)
		for off := uint32(0); off < nnz*4; off += sysmodel.LineSize {
			bl.Read(idxAddr[j] + off)
		}
		for off := uint32(0); off < nnz*8; off += sysmodel.LineSize {
			bl.Read(valAddr[j] + off)
			bl.Write(valAddr[j] + off)
		}
		bl.Compute(int(nnz) * int(nnz) / 2)
	}
}

// emitSMod emits the update of target supernode tgt by source supernode
// src: stream the source columns' tails and read-modify-write the target
// columns.
func emitSMod(bl *trace.Builder, stack uint32, l *sparse.Pattern, tgt, src sparse.Supernode, valAddr, idxAddr []uint32) {
	bl.Write(stack) // frame
	bl.Read(stack + 8)

	// Rows of the source at or below the target's first column.
	srcCol := l.Col(int(src.First))
	// Find the entry offset where rows >= tgt.First start.
	start := 0
	for start < len(srcCol) && srcCol[start] < tgt.First {
		start++
	}
	tail := len(srcCol) - start
	if tail <= 0 {
		return
	}
	// Count how many of those rows land inside the target supernode.
	overlap := 0
	for i := start; i < len(srcCol) && srcCol[i] < tgt.Last; i++ {
		overlap++
	}

	for k := int(src.First); k < int(src.Last); k++ {
		bl.Read(stack + 16) // per-column temporaries
		// The source column shares the supernode's trailing structure;
		// its tail begins at the same rows, offset by (k - First)
		// leading entries.
		nnz := len(l.Col(k))
		off0 := uint32(start-(k-int(src.First))) * 8
		if int(off0/8) > nnz {
			continue
		}
		// Stream the source tail.
		for off := sysmodel.LineAddr(off0); off < uint32(nnz)*8; off += sysmodel.LineSize {
			bl.Read(valAddr[k] + off)
		}
		// Row indices of the tail.
		for off := sysmodel.LineAddr(off0 / 2); off < uint32(nnz)*4; off += sysmodel.LineSize {
			bl.Read(idxAddr[k] + off)
		}
		// Accumulate into the target columns (scatter through the
		// target's leading region). The scatter loop is spill-heavy:
		// per-row index arithmetic keeps stack temporaries hot.
		for t := 0; t < overlap; t++ {
			tj := int(srcCol[start+t])
			bl.Read(stack + 32)
			bl.Read(valAddr[tj])
			bl.Write(valAddr[tj])
			bl.Write(stack + 40)
		}
		bl.Compute(overlap * (tail + 2))
	}
}

func finishPhase(name string, builders []*trace.Builder) trace.Phase {
	streams := make([][]mem.Ref, len(builders))
	for i, b := range builders {
		streams[i] = b.Finish()
	}
	return trace.Phase{Name: name, Streams: streams}
}
