package mp3d

import (
	"testing"

	mem2 "sccsim/internal/mem"
	"sccsim/internal/synth"
	"sccsim/internal/trace"
)

func small(procs int) Params {
	return Params{Particles: 1000, Steps: 2, Procs: procs, Seed: 5, GridX: 10, GridY: 6, GridZ: 6}
}

func TestGenerateValidates(t *testing.T) {
	if _, err := Generate(Params{Particles: 1}); err == nil {
		t.Error("accepted Particles=1")
	}
	if _, err := Generate(Params{Particles: 8, Procs: 16}); err == nil {
		t.Error("accepted Procs > Particles")
	}
	if _, err := Generate(Params{GridX: -1}); err == nil {
		t.Error("accepted negative grid")
	}
}

func TestStructure(t *testing.T) {
	p, err := Generate(small(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Phases) != 4 { // 2 steps x (move + tally)
		t.Errorf("phases = %d, want 4", len(p.Phases))
	}
	if p.Phases[0].Name != "move" || p.Phases[1].Name != "tally" {
		t.Errorf("phase names = %q, %q", p.Phases[0].Name, p.Phases[1].Name)
	}
}

func TestDeterministic(t *testing.T) {
	a, _ := Generate(small(2))
	b, _ := Generate(small(2))
	if a.Refs() != b.Refs() {
		t.Fatalf("ref counts differ: %d vs %d", a.Refs(), b.Refs())
	}
	for i := range a.Phases {
		for pr := range a.Phases[i].Streams {
			sa, sb := a.Phases[i].Streams[pr], b.Phases[i].Streams[pr]
			if len(sa) != len(sb) {
				t.Fatalf("phase %d proc %d lengths differ", i, pr)
			}
			for j := range sa {
				if sa[j] != sb[j] {
					t.Fatalf("phase %d proc %d ref %d differs", i, pr, j)
				}
			}
		}
	}
}

func TestWorkBalanced(t *testing.T) {
	p, err := Generate(small(8))
	if err != nil {
		t.Fatal(err)
	}
	var max, total int
	for _, st := range p.Phases[0].Streams {
		total += len(st)
		if len(st) > max {
			max = len(st)
		}
	}
	mean := float64(total) / 8
	if float64(max) > 1.3*mean {
		t.Errorf("move-phase imbalance: max %d vs mean %.0f", max, mean)
	}
}

func TestSharingCharacter(t *testing.T) {
	p, err := Generate(small(8))
	if err != nil {
		t.Fatal(err)
	}
	prof := trace.Analyze(p)
	// The space-cell array is write-shared by every processor: MP3D must
	// show a large write-shared footprint fraction relative to Barnes.
	if prof.WriteSharedLines < 100 {
		t.Errorf("write-shared lines = %d, want the cell array shared", prof.WriteSharedLines)
	}
	// MP3D writes heavily (position updates, cell updates).
	if wf := prof.WriteFrac(); wf < 0.2 {
		t.Errorf("write fraction = %.2f, want >= 0.2", wf)
	}
}

func TestFootprintScale(t *testing.T) {
	// Paper configuration: 10,000 particles. Particles 640 KB + cells.
	p, err := Generate(Params{Particles: 10000, Steps: 1, Procs: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	prof := trace.Analyze(p)
	fp := prof.FootprintBytes()
	if fp < 500*1024 || fp > 1200*1024 {
		t.Errorf("footprint = %d KB, want 500-1200 KB", fp/1024)
	}
}

func TestParticlesStayInTunnel(t *testing.T) {
	p := small(1)
	p.Steps = 20
	w := &world{p: p.withDefaults()}
	// Generate drives the physics; afterwards every particle must be
	// inside the tunnel. Run via Generate and inspect cell indices by
	// re-deriving them — cheaper: just check Generate doesn't panic and
	// emits only valid addresses (Validate covers addr != 0).
	prog, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	_ = w
}

func TestCellIndexClamps(t *testing.T) {
	w := &world{p: Params{GridX: 4, GridY: 4, GridZ: 4}}
	pos := [3]float64{-5, 100, 2}
	ci := w.cellIndex(&pos)
	if ci < 0 || ci >= 64 {
		t.Errorf("cellIndex out of range: %d", ci)
	}
}

func TestMixConservesMomentumAndEnergy(t *testing.T) {
	rng := synth.NewRNG(99)
	a := [3]float64{1, 2, 3}
	b := [3]float64{-1, 0.5, 2}
	pa, pb := mix(a, b, rng)
	for d := 0; d < 3; d++ {
		if diff := (a[d] + b[d]) - (pa[d] + pb[d]); diff > 1e-9 || diff < -1e-9 {
			t.Errorf("momentum axis %d not conserved: %v", d, diff)
		}
	}
	e0 := dot(a, a) + dot(b, b)
	e1 := dot(pa, pa) + dot(pb, pb)
	// Hard-sphere exchange preserves energy in the CM frame plus CM
	// energy: total kinetic energy is conserved.
	if diff := e0 - e1; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("energy not conserved: %v vs %v", e0, e1)
	}
}

func dot(a, b [3]float64) float64 {
	return a[0]*b[0] + a[1]*b[1] + a[2]*b[2]
}

func TestStacksAreColored(t *testing.T) {
	p, err := Generate(small(4))
	if err != nil {
		t.Fatal(err)
	}
	// Every reference must be either colored data or a hole (stack) —
	// and stack refs must come only from the owning processor.
	stackOwner := map[uint32]int{}
	for i := 0; i < 4; i++ {
		stackOwner[mem2.StackBase(i)] = i
	}
	for _, ph := range p.Phases {
		for pr, st := range ph.Streams {
			for _, r := range st {
				if r.Kind == mem2.Idle {
					continue
				}
				if mem2.InHole(r.Addr) {
					base := r.Addr &^ (mem2.StackBytes - 1)
					if owner, ok := stackOwner[base]; ok && owner != pr {
						t.Fatalf("proc %d touched proc %d's stack at %#x", pr, owner, r.Addr)
					}
				}
			}
		}
	}
}

func BenchmarkGenerate10k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate(Params{Particles: 10000, Steps: 1, Procs: 8, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCellLocksOption(t *testing.T) {
	p := small(4)
	p.CellLocks = true
	prog, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	prof := trace.Analyze(prog)
	if prof.LockOps == 0 {
		t.Error("CellLocks produced no lock operations")
	}
	// One lock+unlock pair per particle move.
	want := uint64(2 * 1000 * 2) // particles x steps x (lock+unlock)
	if prof.LockOps != want {
		t.Errorf("LockOps = %d, want %d", prof.LockOps, want)
	}
}
