// Package mp3d implements the MP3D application from the SPLASH suite as a
// trace-generating workload: a particle-based Monte Carlo simulation of
// rarefied hypersonic flow in a wind tunnel (Stanford's MP3D), with the
// reference behaviour the paper relies on — poor locality, a large
// streaming particle array, and frequent writes to globally shared space
// cells that make it invalidation-bound on cache-coherent machines.
//
// Particles are statically assigned to processors by index (as MP3D
// assigns them), which is spatially random: every processor's particles
// are spread over the whole tunnel, so the space-cell array is write-
// shared by everybody and, unlike Barnes-Hut, there is no useful locality
// for a cluster to exploit. The paper: "prefetching does not reduce the
// miss rates of MP3D due to the lack of locality; however, destructive
// interference does increase the miss rates of smaller SCCs."
package mp3d

import (
	"fmt"
	"math"

	"sccsim/internal/mem"
	"sccsim/internal/synth"
	"sccsim/internal/trace"
)

// Params configures an MP3D run. Zero fields select the paper's setting.
type Params struct {
	// Particles is the number of simulated molecules (paper: 10,000).
	Particles int
	// Steps is the number of timesteps (paper: 5).
	Steps int
	// Procs is the number of logical processors.
	Procs int
	// Seed selects initial particle positions and velocities.
	Seed int64
	// GridX, GridY, GridZ are the space-cell grid dimensions
	// (default 24 x 12 x 12, ~2.9 particles per cell at 10,000).
	GridX, GridY, GridZ int
	// CellLocks guards every space-cell update with a per-cell lock, as
	// the lock-based variants of MP3D do. Off by default: the paper's
	// baseline results use the lock-free accumulate version; turning it
	// on is an ablation that adds lock traffic and serialization.
	CellLocks bool
}

func (p Params) withDefaults() Params {
	if p.Particles == 0 {
		p.Particles = 10000
	}
	if p.Steps == 0 {
		p.Steps = 5
	}
	if p.Procs == 0 {
		p.Procs = 1
	}
	if p.GridX == 0 {
		p.GridX = 24
	}
	if p.GridY == 0 {
		p.GridY = 12
	}
	if p.GridZ == 0 {
		p.GridZ = 12
	}
	return p
}

// particle is one molecule. Memory image: 64 bytes = 4 lines
// (pos[0:24], vel[24:48], cell index + flags [48:64]).
type particle struct {
	pos, vel [3]float64
	addr     uint32
}

const particleBytes = 64

// spaceCell aggregates the molecules currently inside one grid cell.
// Memory image: 48 bytes = 3 lines (count + momentum sums + energy +
// collision bookkeeping).
type spaceCell struct {
	count   int
	lastIdx int // most recent particle seen this step (collision partner)
	addr    uint32
}

const spaceCellBytes = 48

// Simulation constants.
const (
	dt          = 0.08
	streamVel   = 1.1 // free-stream velocity along +x
	thermalVel  = 0.35
	collProb    = 0.22 // per-step collision probability given a partner
	costMove    = 28   // non-memory instructions per particle move
	costCollide = 30
	costTally   = 14
)

// Per-processor stack model (cf. the Barnes-Hut emitter).
const stackFrameBytes = 64

type world struct {
	p         Params
	particles []*particle
	cells     []*spaceCell
	rng       *synth.RNG
	stacks    []uint32
	globals   mem.Region // shared tally counters
}

// cellIndex maps a position to its grid cell, clamping to the tunnel.
func (w *world) cellIndex(pos *[3]float64) int {
	cx := clamp(int(pos[0]), 0, w.p.GridX-1)
	cy := clamp(int(pos[1]), 0, w.p.GridY-1)
	cz := clamp(int(pos[2]), 0, w.p.GridZ-1)
	return (cx*w.p.GridY+cy)*w.p.GridZ + cz
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Generate runs the particle simulation and returns the per-processor
// reference trace.
func Generate(p Params) (*trace.Program, error) {
	p = p.withDefaults()
	if p.Particles < 2 {
		return nil, fmt.Errorf("mp3d: Particles = %d, want >= 2", p.Particles)
	}
	if p.Procs < 1 || p.Procs > p.Particles {
		return nil, fmt.Errorf("mp3d: Procs = %d, want 1..Particles", p.Procs)
	}
	if p.GridX < 1 || p.GridY < 1 || p.GridZ < 1 {
		return nil, fmt.Errorf("mp3d: bad grid %dx%dx%d", p.GridX, p.GridY, p.GridZ)
	}

	w := &world{p: p, rng: synth.NewRNG(p.Seed)}
	alloc := mem.NewColoredAllocator()

	// Space-cell array first: it is the shared hot structure.
	ncells := p.GridX * p.GridY * p.GridZ
	w.cells = make([]*spaceCell, ncells)
	for i := range w.cells {
		w.cells[i] = &spaceCell{addr: alloc.Alloc(spaceCellBytes, 16).Start, lastIdx: -1}
	}
	// Global tally counters: a handful of lines everybody writes.
	w.globals = alloc.Alloc(128, 16)

	// Particles, uniformly distributed with free-stream + thermal motion.
	w.particles = make([]*particle, p.Particles)
	for i := range w.particles {
		pt := &particle{addr: alloc.Alloc(particleBytes, 16).Start}
		pt.pos[0] = w.rng.Float64() * float64(p.GridX)
		pt.pos[1] = w.rng.Float64() * float64(p.GridY)
		pt.pos[2] = w.rng.Float64() * float64(p.GridZ)
		pt.vel[0] = streamVel + thermalVel*w.rng.NormFloat64()
		pt.vel[1] = thermalVel * w.rng.NormFloat64()
		pt.vel[2] = thermalVel * w.rng.NormFloat64()
		w.particles[i] = pt
	}

	w.stacks = make([]uint32, p.Procs)
	for i := range w.stacks {
		w.stacks[i] = mem.StackBase(i)
	}

	prog := &trace.Program{Name: "mp3d", Procs: p.Procs}
	for step := 0; step < p.Steps; step++ {
		prog.Phases = append(prog.Phases, w.movePhase(), w.tallyPhase())
	}
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("mp3d: generated invalid program: %w", err)
	}
	return prog, nil
}

// movePhase advances every particle one step and emits the references.
// Particle i belongs to processor i*Procs/Particles (static block
// assignment over a spatially random initial ordering).
func (w *world) movePhase() trace.Phase {
	p := w.p
	builders := make([]*trace.Builder, p.Procs)
	for i := range builders {
		builders[i] = trace.NewBuilder(p.Particles / p.Procs * 24)
	}
	for i := range w.cells {
		w.cells[i].count = 0
		w.cells[i].lastIdx = -1
	}

	for i, pt := range w.particles {
		proc := i * p.Procs / p.Particles
		bl := builders[proc]
		stack := w.stacks[proc]

		// Loop locals and saved registers. The move loop is spill-heavy:
		// nine position/velocity temporaries, grid scaling factors and
		// boundary tests keep a couple of stack lines extremely hot.
		bl.Write(stack)
		bl.Read(stack + 8)
		bl.Read(stack + 16)
		bl.Write(stack + 24)
		bl.Read(stack + 32)
		bl.Write(stack + 40)
		bl.Read(stack + 48)
		bl.Read(stack + 56)

		// Load the particle: position and velocity.
		bl.Read(pt.addr)      // pos[0], pos[1]
		bl.Read(pt.addr + 16) // pos[2]
		bl.Read(pt.addr + 24) // vel[0]
		bl.Read(pt.addr + 32) // vel[1], vel[2]
		bl.Compute(costMove)

		// Physics: advance and reflect off the tunnel walls (specular),
		// re-entering at the inlet when leaving the outlet.
		for d := 0; d < 3; d++ {
			pt.pos[d] += pt.vel[d] * dt
		}
		lims := [3]float64{float64(p.GridX), float64(p.GridY), float64(p.GridZ)}
		if pt.pos[0] >= lims[0] {
			pt.pos[0] -= lims[0] // outlet -> inlet (reservoir)
		}
		if pt.pos[0] < 0 {
			pt.pos[0] += lims[0]
		}
		for d := 1; d < 3; d++ {
			if pt.pos[d] < 0 {
				pt.pos[d] = -pt.pos[d]
				pt.vel[d] = -pt.vel[d]
			}
			if pt.pos[d] >= lims[d] {
				pt.pos[d] = 2*lims[d] - pt.pos[d] - 1e-9
				pt.vel[d] = -pt.vel[d]
			}
		}

		// Store the new position.
		bl.Write(pt.addr)
		bl.Write(pt.addr + 16)

		// Update the space cell: count and momentum sums. This is the
		// globally write-shared traffic that makes MP3D invalidation-
		// bound.
		ci := w.cellIndex(&pt.pos)
		cell := w.cells[ci]
		bl.Read(stack + 64) // cell-indexing temporaries
		bl.Write(stack + 72)
		if p.CellLocks {
			bl.Lock(cell.addr + 40)
		}
		bl.Read(cell.addr)
		bl.Write(cell.addr)
		bl.Read(cell.addr + 16)
		bl.Write(cell.addr + 16)
		bl.Write(pt.addr + 48) // remember the particle's cell
		bl.Compute(costMove / 2)

		// Collision: with some probability, exchange momentum with the
		// most recent particle seen in the same cell.
		if cell.lastIdx >= 0 && w.rng.Float64() < collProb {
			partner := w.particles[cell.lastIdx]
			bl.Read(stack + 24) // spill around the call
			bl.Read(partner.addr + 24)
			bl.Read(partner.addr + 32)
			// Hard-sphere relaxation: swap a velocity component pair.
			pt.vel, partner.vel = mix(pt.vel, partner.vel, w.rng)
			bl.Write(partner.addr + 24)
			bl.Write(partner.addr + 32)
			bl.Write(pt.addr + 24)
			bl.Write(pt.addr + 32)
			bl.Write(cell.addr + 32) // collision counter
			bl.Compute(costCollide)
		}
		if p.CellLocks {
			bl.Unlock(cell.addr + 40)
		}
		cell.count++
		cell.lastIdx = i
	}
	return finishPhase("move", builders)
}

// mix performs an energy-conserving velocity exchange.
func mix(a, b [3]float64, rng *synth.RNG) ([3]float64, [3]float64) {
	// Random post-collision orientation, preserving the pair's momentum
	// and kinetic energy (hard-sphere model).
	var cm, rel [3]float64
	relMag := 0.0
	for d := 0; d < 3; d++ {
		cm[d] = (a[d] + b[d]) / 2
		rel[d] = a[d] - b[d]
		relMag += rel[d] * rel[d]
	}
	relMag = math.Sqrt(relMag)
	u := rng.UnitVector3()
	for d := 0; d < 3; d++ {
		a[d] = cm[d] + u[d]*relMag/2
		b[d] = cm[d] - u[d]*relMag/2
	}
	return a, b
}

// tallyPhase models MP3D's global accounting at the end of each step:
// every processor updates a handful of shared counters (collision totals,
// energy sums). The counters live on a few lines that ping-pong between
// clusters — invalidation traffic that depends on the number of clusters,
// not on the number of processors per cluster.
func (w *world) tallyPhase() trace.Phase {
	builders := make([]*trace.Builder, w.p.Procs)
	for proc := range builders {
		bl := trace.NewBuilder(16)
		builders[proc] = bl
		stack := w.stacks[proc]
		bl.Read(stack)
		for line := uint32(0); line < w.globals.Size; line += 16 {
			bl.Read(w.globals.Start + line)
			bl.Write(w.globals.Start + line)
		}
		bl.Compute(costTally)
	}
	return finishPhase("tally", builders)
}

func finishPhase(name string, builders []*trace.Builder) trace.Phase {
	streams := make([][]mem.Ref, len(builders))
	for i, b := range builders {
		streams[i] = b.Finish()
	}
	return trace.Phase{Name: name, Streams: streams}
}
