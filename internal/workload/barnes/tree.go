// Package barnes implements the Barnes-Hut hierarchical N-body
// application from the SPLASH suite (the paper's primary parallel
// benchmark) as a trace-generating workload: a real octree simulation —
// tree construction, centre-of-mass pass, force computation with the
// opening criterion, and position update — that emits, for every logical
// processor, the memory-reference stream its share of the computation
// produces.
//
// Bodies are partitioned in tree (leaf traversal) order, as SPLASH does,
// so that processors with adjacent ranks work on adjacent regions of
// space. Mapped onto the cluster architecture this is exactly what gives
// the paper its headline effect: processors within a cluster traverse the
// same regions of the tree at around the same time, so one processor's
// miss prefetches for its neighbours.
package barnes

import (
	"math"

	"sccsim/internal/synth"
)

// body is one particle. Its memory image is 80 bytes = exactly 5 cache
// lines: pos[0:24], vel[24:48], acc[48:72], mass[72:80]. 80 being a
// multiple of the 16-byte line size means bodies never share lines.
type body struct {
	pos, vel, acc [3]float64
	mass          float64
	addr          uint32
	// work is the interaction count of the previous force phase, used
	// for cost-weighted partitioning (SPLASH "costzones" in miniature).
	work int
}

// bodyBytes is the memory image size of a body.
const bodyBytes = 80

// Field offsets within a body's memory image.
const (
	bodyPosOff  = 0
	bodyVelOff  = 24
	bodyAccOff  = 48
	bodyMassOff = 72
)

// cell is one internal octree node. Its memory image is 96 bytes = 6
// lines: center[0:24], halfSize[24:32], com[32:56], mass[56:64],
// children[64:96] (eight 4-byte pointers).
type cell struct {
	center   [3]float64
	halfSize float64
	com      [3]float64
	mass     float64
	child    [8]*node
	addr     uint32
}

// cellBytes is the memory image size of a cell.
const cellBytes = 96

// Field offsets within a cell's memory image.
const (
	cellCenterOff   = 0
	cellHalfOff     = 24
	cellComOff      = 32
	cellMassOff     = 56
	cellChildrenOff = 64
)

// node is an octree slot: either an internal cell or a leaf body.
type node struct {
	cell *cell // non-nil for internal nodes
	body *body // non-nil for leaves
}

// cellPool reuses cell records (and hence their simulated addresses)
// across timesteps, the way the SPLASH code reuses its cell arrays. Keeping
// addresses stable across steps is what preserves inter-step cache reuse.
type cellPool struct {
	cells []*cell
	next  int
	alloc func() uint32 // assigns an address to a newly created cell
}

func (p *cellPool) get() *cell {
	if p.next < len(p.cells) {
		c := p.cells[p.next]
		p.next++
		*c = cell{addr: c.addr}
		return c
	}
	c := &cell{addr: p.alloc()}
	p.cells = append(p.cells, c)
	p.next = len(p.cells)
	return c
}

func (p *cellPool) reset() { p.next = 0 }

// tree is the octree for one timestep.
type tree struct {
	root *cell
	pool *cellPool
	// paths[i] is the list of cells visited while inserting body i,
	// recorded so the build phase can be replayed as references.
	paths [][]*cell
}

// octant returns which child slot of c the position falls in.
func octant(c *cell, pos *[3]float64) int {
	o := 0
	if pos[0] >= c.center[0] {
		o |= 1
	}
	if pos[1] >= c.center[1] {
		o |= 2
	}
	if pos[2] >= c.center[2] {
		o |= 4
	}
	return o
}

// childCenter returns the center of child octant o of c.
func childCenter(c *cell, o int) [3]float64 {
	h := c.halfSize / 2
	ctr := c.center
	if o&1 != 0 {
		ctr[0] += h
	} else {
		ctr[0] -= h
	}
	if o&2 != 0 {
		ctr[1] += h
	} else {
		ctr[1] -= h
	}
	if o&4 != 0 {
		ctr[2] += h
	} else {
		ctr[2] -= h
	}
	return ctr
}

// build constructs the octree over the bodies, recording insertion paths.
func build(bodies []*body, pool *cellPool) *tree {
	pool.reset()

	// Bounding cube.
	lo, hi := bodies[0].pos, bodies[0].pos
	for _, b := range bodies {
		for d := 0; d < 3; d++ {
			lo[d] = math.Min(lo[d], b.pos[d])
			hi[d] = math.Max(hi[d], b.pos[d])
		}
	}
	size := 0.0
	var center [3]float64
	for d := 0; d < 3; d++ {
		size = math.Max(size, hi[d]-lo[d])
		center[d] = (lo[d] + hi[d]) / 2
	}
	size *= 1.0001 // keep boundary bodies strictly inside

	root := pool.get()
	root.center = center
	root.halfSize = size / 2

	t := &tree{root: root, pool: pool, paths: make([][]*cell, len(bodies))}
	for i, b := range bodies {
		t.paths[i] = t.insert(b)
	}
	return t
}

// insert places b into the tree, returning the cells visited.
func (t *tree) insert(b *body) []*cell {
	path := []*cell{t.root}
	c := t.root
	for {
		o := octant(c, &b.pos)
		ch := c.child[o]
		switch {
		case ch == nil:
			c.child[o] = &node{body: b}
			return path
		case ch.cell != nil:
			c = ch.cell
			path = append(path, c)
		default:
			// Slot holds a body: split it into a sub-cell and push both
			// bodies down. Degenerate coincident positions bottom out by
			// perturbation in the generator, not here.
			other := ch.body
			sub := t.pool.get()
			sub.center = childCenter(c, o)
			sub.halfSize = c.halfSize / 2
			c.child[o] = &node{cell: sub}
			sub.child[octant(sub, &other.pos)] = &node{body: other}
			c = sub
			path = append(path, c)
		}
	}
}

// computeCOM fills in mass and centre-of-mass for every cell, returning
// the cells in postorder (children before parents) — the order the
// parallel COM phase processes them.
func (t *tree) computeCOM() []*cell {
	var order []*cell
	var rec func(c *cell)
	rec = func(c *cell) {
		c.mass = 0
		c.com = [3]float64{}
		for _, ch := range c.child {
			if ch == nil {
				continue
			}
			if ch.cell != nil {
				rec(ch.cell)
				c.mass += ch.cell.mass
				for d := 0; d < 3; d++ {
					c.com[d] += ch.cell.com[d] * ch.cell.mass
				}
			} else {
				c.mass += ch.body.mass
				for d := 0; d < 3; d++ {
					c.com[d] += ch.body.pos[d] * ch.body.mass
				}
			}
		}
		if c.mass > 0 {
			for d := 0; d < 3; d++ {
				c.com[d] /= c.mass
			}
		}
		order = append(order, c)
	}
	rec(t.root)
	return order
}

// leafOrder returns the bodies in depth-first leaf order — the spatial
// order used for partitioning.
func (t *tree) leafOrder() []*body {
	var order []*body
	var rec func(c *cell)
	rec = func(c *cell) {
		for _, ch := range c.child {
			if ch == nil {
				continue
			}
			if ch.cell != nil {
				rec(ch.cell)
			} else {
				order = append(order, ch.body)
			}
		}
	}
	rec(t.root)
	return order
}

// visitor observes a force-phase traversal; the emitter implements it to
// turn tree walks into references. Physics code calls it unconditionally,
// so a nil-safe no-op implementation exists for warmup steps. depth is
// the recursion depth, which the emitter maps to stack-frame addresses.
type visitor interface {
	// visitCell is called when the opening test runs against cell c;
	// opened says whether the walk descended.
	visitCell(c *cell, opened bool, depth int)
	// visitBody is called for a direct body-body interaction.
	visitBody(other *body, depth int)
}

type nopVisitor struct{}

func (nopVisitor) visitCell(*cell, bool, int) {}
func (nopVisitor) visitBody(*body, int)       {}

const (
	// eps2 is the gravitational softening (squared).
	eps2 = 1e-4
	// g is the gravitational constant in simulation units.
	g = 1.0
)

// accumulate adds the gravitational pull of a point (pos, mass) on b.
func accumulate(b *body, pos *[3]float64, mass float64) {
	var d [3]float64
	r2 := eps2
	for i := 0; i < 3; i++ {
		d[i] = pos[i] - b.pos[i]
		r2 += d[i] * d[i]
	}
	inv := g * mass / (r2 * math.Sqrt(r2))
	for i := 0; i < 3; i++ {
		b.acc[i] += d[i] * inv
	}
}

// force computes the acceleration on b by walking the tree with opening
// angle theta, reporting every step to v. It returns the number of
// interactions (the body's work measure).
func force(t *tree, b *body, theta float64, v visitor) int {
	b.acc = [3]float64{}
	work := 0
	var rec func(c *cell, depth int)
	rec = func(c *cell, depth int) {
		var d [3]float64
		r2 := 0.0
		for i := 0; i < 3; i++ {
			d[i] = c.com[i] - b.pos[i]
			r2 += d[i] * d[i]
		}
		size := 2 * c.halfSize
		if size*size < theta*theta*r2 {
			// Far enough: interact with the cell's centre of mass.
			v.visitCell(c, false, depth)
			accumulate(b, &c.com, c.mass)
			work++
			return
		}
		v.visitCell(c, true, depth)
		for _, ch := range c.child {
			if ch == nil {
				continue
			}
			if ch.cell != nil {
				rec(ch.cell, depth+1)
			} else if ch.body != b {
				v.visitBody(ch.body, depth)
				accumulate(b, &ch.body.pos, ch.body.mass)
				work++
			}
		}
	}
	rec(t.root, 0)
	return work
}

// advance applies a leapfrog update to b with timestep dt.
func advance(b *body, dt float64) {
	for i := 0; i < 3; i++ {
		b.vel[i] += b.acc[i] * dt
		b.pos[i] += b.vel[i] * dt
	}
}

// plummer samples n bodies from a Plummer sphere, the initial condition
// the SPLASH Barnes-Hut generator uses.
func plummer(n int, rng *synth.RNG) []*body {
	bodies := make([]*body, n)
	for i := range bodies {
		b := &body{mass: 1.0 / float64(n)}
		// Radius from the Plummer cumulative mass profile.
		m := 0.999*rng.Float64() + 0.0005
		r := 1.0 / math.Sqrt(math.Pow(m, -2.0/3.0)-1.0)
		if r > 8 {
			r = 8 // clip the rare far outlier, as SPLASH does
		}
		u := rng.UnitVector3()
		for d := 0; d < 3; d++ {
			b.pos[d] = r * u[d]
		}
		// Velocity by von Neumann rejection on the Plummer distribution.
		var q float64
		for {
			q = rng.Float64()
			g := rng.Float64() * 0.1
			if g < q*q*math.Pow(1.0-q*q, 3.5) {
				break
			}
		}
		v := q * math.Sqrt2 * math.Pow(1.0+r*r, -0.25)
		uv := rng.UnitVector3()
		for d := 0; d < 3; d++ {
			b.vel[d] = v * uv[d]
		}
		bodies[i] = b
	}
	return bodies
}

// systemEnergy returns the total energy (kinetic + potential, direct
// O(n^2) sum with softening) — a physics diagnostic used by the tests to
// check that the integrator and force computation cohere.
func systemEnergy(bodies []*body) float64 {
	e := 0.0
	for _, b := range bodies {
		v2 := 0.0
		for d := 0; d < 3; d++ {
			v2 += b.vel[d] * b.vel[d]
		}
		e += 0.5 * b.mass * v2
	}
	for i, a := range bodies {
		for _, b := range bodies[i+1:] {
			r2 := eps2
			for d := 0; d < 3; d++ {
				dd := a.pos[d] - b.pos[d]
				r2 += dd * dd
			}
			e -= g * a.mass * b.mass / math.Sqrt(r2)
		}
	}
	return e
}
