package barnes

import (
	"math"
	"testing"

	"sccsim/internal/synth"
	"sccsim/internal/sysmodel"
	"sccsim/internal/trace"
)

func TestGenerateValidates(t *testing.T) {
	if _, err := Generate(Params{NBodies: 1}); err == nil {
		t.Error("accepted NBodies=1")
	}
	if _, err := Generate(Params{NBodies: 8, Procs: 16}); err == nil {
		t.Error("accepted Procs > NBodies")
	}
	if _, err := Generate(Params{Theta: -1}); err == nil {
		t.Error("accepted negative Theta")
	}
}

func smallParams(procs int) Params {
	return Params{NBodies: 128, Steps: 2, Procs: procs, Seed: 7}
}

func TestGenerateStructure(t *testing.T) {
	p, err := Generate(smallParams(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Procs != 4 {
		t.Errorf("Procs = %d", p.Procs)
	}
	// 2 steps x 4 phases.
	if len(p.Phases) != 8 {
		t.Errorf("phases = %d, want 8", len(p.Phases))
	}
	wantNames := []string{"build", "com", "force", "update"}
	for i, ph := range p.Phases {
		if ph.Name != wantNames[i%4] {
			t.Errorf("phase %d = %q, want %q", i, ph.Name, wantNames[i%4])
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallParams(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallParams(2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Refs() != b.Refs() {
		t.Fatalf("ref counts differ: %d vs %d", a.Refs(), b.Refs())
	}
	for i := range a.Phases {
		for pr := range a.Phases[i].Streams {
			sa, sb := a.Phases[i].Streams[pr], b.Phases[i].Streams[pr]
			if len(sa) != len(sb) {
				t.Fatalf("phase %d proc %d: stream lengths differ", i, pr)
			}
			for j := range sa {
				if sa[j] != sb[j] {
					t.Fatalf("phase %d proc %d ref %d differs", i, pr, j)
				}
			}
		}
	}
}

func TestTotalWorkIndependentOfProcs(t *testing.T) {
	// The same computation partitioned across more processors must
	// reference (nearly) the same total work; partitioning changes only
	// who does it. (Exact counts shift slightly because the costzones
	// repartition after step 1 depends on proc count.)
	r1, err := Generate(smallParams(1))
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Generate(smallParams(4))
	if err != nil {
		t.Fatal(err)
	}
	a, b := float64(r1.Refs()), float64(r4.Refs())
	if math.Abs(a-b)/a > 0.02 {
		t.Errorf("total refs: 1 proc %v vs 4 procs %v (>2%% apart)", a, b)
	}
}

func TestForcePhaseDominates(t *testing.T) {
	p, err := Generate(smallParams(1))
	if err != nil {
		t.Fatal(err)
	}
	var force, total uint64
	for _, ph := range p.Phases {
		n := uint64(len(ph.Streams[0]))
		total += n
		if ph.Name == "force" {
			force += n
		}
	}
	if float64(force)/float64(total) < 0.6 {
		t.Errorf("force phase is %d/%d refs; expected to dominate", force, total)
	}
}

func TestFootprintScale(t *testing.T) {
	// 1024 bodies: bodies are 80 KB; tree adds roughly 0.5-1.5x that.
	// The paper's phenomena depend on the footprint straddling the
	// 4KB-512KB SCC sweep (per cluster).
	p, err := Generate(Params{NBodies: 1024, Steps: 1, Procs: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	prof := trace.Analyze(p)
	fp := prof.FootprintBytes()
	if fp < 100*1024 || fp > 400*1024 {
		t.Errorf("footprint = %d KB, want 100-400 KB for 1024 bodies", fp/1024)
	}
}

func TestSharingCharacter(t *testing.T) {
	p, err := Generate(smallParams(4))
	if err != nil {
		t.Fatal(err)
	}
	prof := trace.Analyze(p)
	// The tree is read-shared by everybody: a substantial fraction of
	// lines must be touched by more than one processor.
	if prof.SharedFrac() < 0.3 {
		t.Errorf("shared fraction = %.2f, want >= 0.3 (tree is read-shared)", prof.SharedFrac())
	}
	// Barnes-Hut is read-dominated (force phase reads the tree); writes
	// are stack frames and per-body updates.
	if wf := prof.WriteFrac(); wf > 0.35 {
		t.Errorf("write fraction = %.2f, want < 0.35", wf)
	}
}

func TestPartitionBalance(t *testing.T) {
	p, err := Generate(Params{NBodies: 512, Steps: 3, Procs: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// In the final force phase, the busiest processor should not have
	// more than ~2x the refs of the average (costzones keeps it rough
	// but bounded).
	var last trace.Phase
	for _, ph := range p.Phases {
		if ph.Name == "force" {
			last = ph
		}
	}
	var total, max int
	for _, st := range last.Streams {
		total += len(st)
		if len(st) > max {
			max = len(st)
		}
	}
	mean := float64(total) / 8
	if float64(max) > 2*mean {
		t.Errorf("force-phase imbalance: max %d vs mean %.0f", max, mean)
	}
}

func TestTreeInvariants(t *testing.T) {
	rng := synth.NewRNG(11)
	bodies := plummer(64, rng)
	next := uint32(0x100000)
	pool := &cellPool{alloc: func() uint32 {
		a := next
		next += cellBytes
		return a
	}}
	tr := build(bodies, pool)
	order := tr.computeCOM()

	// Total mass at the root equals the sum of body masses.
	var wantMass float64
	for _, b := range bodies {
		wantMass += b.mass
	}
	if math.Abs(tr.root.mass-wantMass) > 1e-9 {
		t.Errorf("root mass = %v, want %v", tr.root.mass, wantMass)
	}
	// Postorder: root last.
	if order[len(order)-1] != tr.root {
		t.Error("computeCOM order does not end at the root")
	}
	// Leaf order covers every body exactly once.
	leaves := tr.leafOrder()
	if len(leaves) != len(bodies) {
		t.Fatalf("leafOrder returned %d bodies, want %d", len(leaves), len(bodies))
	}
	seen := map[*body]bool{}
	for _, b := range leaves {
		if seen[b] {
			t.Fatal("body appears twice in leaf order")
		}
		seen[b] = true
	}
}

func TestForceMatchesDirectSum(t *testing.T) {
	// With theta tiny, Barnes-Hut must agree with the O(n^2) direct sum.
	rng := synth.NewRNG(13)
	bodies := plummer(32, rng)
	next := uint32(0x100000)
	pool := &cellPool{alloc: func() uint32 { a := next; next += cellBytes; return a }}
	tr := build(bodies, pool)
	tr.computeCOM()

	b := bodies[0]
	force(tr, b, 0.0001, nopVisitor{})
	bh := b.acc

	b.acc = [3]float64{}
	for _, o := range bodies[1:] {
		accumulate(b, &o.pos, o.mass)
	}
	direct := b.acc

	for d := 0; d < 3; d++ {
		if math.Abs(bh[d]-direct[d]) > 1e-6*(1+math.Abs(direct[d])) {
			t.Errorf("axis %d: BH %v vs direct %v", d, bh[d], direct[d])
		}
	}
}

func TestThetaControlsWork(t *testing.T) {
	rng := synth.NewRNG(17)
	bodies := plummer(256, rng)
	next := uint32(0x100000)
	pool := &cellPool{alloc: func() uint32 { a := next; next += cellBytes; return a }}
	tr := build(bodies, pool)
	tr.computeCOM()
	wTight := force(tr, bodies[0], 0.3, nopVisitor{})
	wLoose := force(tr, bodies[0], 1.5, nopVisitor{})
	if wLoose >= wTight {
		t.Errorf("theta=1.5 work %d >= theta=0.3 work %d; opening criterion inverted", wLoose, wTight)
	}
}

func TestCellPoolReusesAddresses(t *testing.T) {
	next := uint32(0x100000)
	pool := &cellPool{alloc: func() uint32 { a := next; next += cellBytes; return a }}
	c1 := pool.get()
	a1 := c1.addr
	pool.reset()
	c2 := pool.get()
	if c2.addr != a1 {
		t.Errorf("pool did not reuse address: %#x vs %#x", c2.addr, a1)
	}
	if c2 != c1 {
		t.Error("pool did not reuse the cell record")
	}
}

func TestBodyLayoutConstants(t *testing.T) {
	if bodyBytes%sysmodel.LineSize != 0 {
		t.Errorf("bodyBytes = %d is not line-aligned; bodies would false-share", bodyBytes)
	}
	if cellBytes%sysmodel.LineSize != 0 {
		t.Errorf("cellBytes = %d is not line-aligned; cells would false-share", cellBytes)
	}
}

func BenchmarkGenerate1024(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate(Params{NBodies: 1024, Steps: 1, Procs: 8, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEnergyDriftBounded(t *testing.T) {
	// Integrate a small system with the production pipeline (tree build,
	// COM, theta-approximated forces, leapfrog) and check that total
	// energy drifts by less than a few percent over several steps. This
	// guards the physics the reference streams are derived from.
	rng := synth.NewRNG(21)
	bodies := plummer(96, rng)
	next := uint32(0x100000)
	pool := &cellPool{alloc: func() uint32 { a := next; next += cellBytes; return a }}

	e0 := systemEnergy(bodies)
	for step := 0; step < 8; step++ {
		tr := build(bodies, pool)
		tr.computeCOM()
		for _, b := range bodies {
			force(tr, b, 0.7, nopVisitor{})
		}
		for _, b := range bodies {
			advance(b, 0.01)
		}
	}
	e1 := systemEnergy(bodies)
	drift := math.Abs(e1-e0) / math.Abs(e0)
	if drift > 0.05 {
		t.Errorf("energy drift %.2f%% over 8 steps, want < 5%%", 100*drift)
	}
}
