package barnes

import (
	"fmt"

	"sccsim/internal/mem"
	"sccsim/internal/synth"
	"sccsim/internal/trace"
)

// Params configures a Barnes-Hut run. The zero value of any field selects
// the paper's setting.
type Params struct {
	// NBodies is the number of bodies (paper: 1024).
	NBodies int
	// Steps is the number of simulated timesteps (default 3).
	Steps int
	// Theta is the opening criterion (default 1.5).
	Theta float64
	// DT is the integration timestep (default 0.025).
	DT float64
	// Seed selects the Plummer-model initial conditions.
	Seed int64
	// Procs is the number of logical processors to partition across.
	Procs int
}

func (p Params) withDefaults() Params {
	if p.NBodies == 0 {
		p.NBodies = 1024
	}
	if p.Steps == 0 {
		p.Steps = 3
	}
	if p.Theta == 0 {
		p.Theta = 1.5
	}
	if p.DT == 0 {
		p.DT = 0.025
	}
	if p.Procs == 0 {
		p.Procs = 1
	}
	return p
}

// Instruction-cost constants (non-memory work per operation), scaled for
// a single-issue RISC core: a gravitational interaction is ~20 flops plus
// address arithmetic; tree-descent bookkeeping is a handful of ALU ops.
const (
	costInteract   = 22
	costOpenTest   = 8
	costDescend    = 6
	costComPerKid  = 10
	costComFinish  = 12
	costInsertStep = 7
	costUpdate     = 24
	costBodySetup  = 12
)

// stackFrameBytes is the activation-record size of the recursive tree
// walk and stackBytes the per-processor stack allocation. Stack and local
// references are a large fraction of real RISC data traffic; they are
// private per processor, which is what makes several processors interfere
// destructively in a small shared cache.
const (
	stackFrameBytes = 64
	stackBytes      = mem.StackBytes
)

// emitVisitor turns force-phase tree walks into references.
type emitVisitor struct {
	b *trace.Builder
	// stack is the base address of the owning processor's stack.
	stack uint32
}

// frameAddr returns the activation-record address for a recursion depth,
// clamped to the stack allocation.
func (v *emitVisitor) frameAddr(depth int) uint32 {
	off := uint32(depth) * stackFrameBytes
	if off >= stackBytes {
		off = stackBytes - stackFrameBytes
	}
	return v.stack + off
}

// frame emits the stack traffic of entering an activation record: saved
// registers and incoming arguments.
func (v *emitVisitor) frame(depth int) {
	addr := v.frameAddr(depth)
	v.b.Write(addr)
	v.b.Write(addr + 8)
	v.b.Read(addr + 16)
}

// locals emits n references to the current frame's spill/temporary slots
// — the register-pressure traffic that dominates real RISC reference
// streams. They are private and hot: they hit even in a tiny cache when
// one processor runs alone, and thrash when many processors share it.
func (v *emitVisitor) locals(depth, n int) {
	addr := v.frameAddr(depth)
	for i := 0; i < n; i++ {
		off := uint32(24 + (i%10)*8)
		if i%3 == 0 {
			v.b.Write(addr + off)
		} else {
			v.b.Read(addr + off)
		}
	}
}

func (v *emitVisitor) visitCell(c *cell, opened bool, depth int) {
	v.frame(depth)
	// Opening test: load the cell's centre of mass and half-size.
	v.b.Read(c.addr + cellComOff)
	v.b.Read(c.addr + cellComOff + 8)
	v.b.Read(c.addr + cellComOff + 16)
	v.b.Read(c.addr + cellHalfOff)
	v.locals(depth, 3)
	v.b.Compute(costOpenTest)
	if opened {
		// Descend: scan the eight child pointers.
		for o := 0; o < 8; o++ {
			v.b.Read(c.addr + cellChildrenOff + uint32(o)*4)
		}
		v.locals(depth, 2)
		v.b.Compute(costDescend)
	} else {
		// Interact with the aggregate: load the mass too.
		v.b.Read(c.addr + cellMassOff)
		v.locals(depth, 5)
		v.b.Compute(costInteract)
	}
}

func (v *emitVisitor) visitBody(other *body, depth int) {
	v.b.Read(other.addr + bodyPosOff)
	v.b.Read(other.addr + bodyPosOff + 8)
	v.b.Read(other.addr + bodyPosOff + 16)
	v.b.Read(other.addr + bodyMassOff)
	v.locals(depth, 6)
	v.b.Compute(costInteract)
}

// Generate runs the N-body simulation and returns the per-processor
// reference trace. The same Params always yield the same Program.
func Generate(p Params) (*trace.Program, error) {
	p = p.withDefaults()
	if p.NBodies < 2 {
		return nil, fmt.Errorf("barnes: NBodies = %d, want >= 2", p.NBodies)
	}
	if p.Procs < 1 || p.Procs > p.NBodies {
		return nil, fmt.Errorf("barnes: Procs = %d, want 1..NBodies", p.Procs)
	}
	if p.Theta <= 0 {
		return nil, fmt.Errorf("barnes: Theta = %v, want > 0", p.Theta)
	}

	rng := synth.NewRNG(p.Seed)
	bodies := plummer(p.NBodies, rng)
	// Data lives in page-colored address space; per-processor stacks sit
	// in the coloring holes so they never alias data in caches >= 32 KB
	// (see mem.StackBase).
	alloc := mem.NewColoredAllocator()
	for _, b := range bodies {
		b.addr = alloc.Alloc(bodyBytes, 16).Start
		b.work = 1
	}
	pool := &cellPool{alloc: func() uint32 {
		return alloc.Alloc(cellBytes, 16).Start
	}}
	stacks := make([]uint32, p.Procs)
	for i := range stacks {
		stacks[i] = mem.StackBase(i)
	}

	// owner[i] is the processor responsible for bodies[i] this step.
	owner := make([]int, p.NBodies)
	for i := range owner {
		owner[i] = i * p.Procs / p.NBodies
	}
	index := make(map[*body]int, p.NBodies)
	for i, b := range bodies {
		index[b] = i
	}

	prog := &trace.Program{Name: "barnes-hut", Procs: p.Procs}

	for step := 0; step < p.Steps; step++ {
		t := build(bodies, pool)

		// --- Phase: tree build -------------------------------------
		// Each processor loads its own bodies into the tree; the
		// references are the cells its insertion paths touched.
		builders := newBuilders(p.Procs, p.NBodies/p.Procs*8)
		for i, b := range bodies {
			bl := builders[owner[i]]
			bl.Read(stacks[owner[i]]) // loop locals
			bl.Read(b.addr + bodyPosOff)
			bl.Read(b.addr + bodyPosOff + 8)
			bl.Read(b.addr + bodyPosOff + 16)
			for _, c := range t.paths[i] {
				o := octant(c, &b.pos)
				bl.Read(c.addr + cellChildrenOff + uint32(o)*4)
				bl.Compute(costInsertStep)
			}
			// Link the body into its final slot.
			last := t.paths[i][len(t.paths[i])-1]
			bl.Write(last.addr + cellChildrenOff + uint32(octant(last, &b.pos))*4)
		}
		prog.Phases = append(prog.Phases, finishPhase("build", builders))

		// --- Phase: centre of mass ----------------------------------
		order := t.computeCOM() // postorder: children before parents
		builders = newBuilders(p.Procs, len(order)*10/p.Procs)
		for ci, c := range order {
			// Cells are claimed round-robin from a shared work queue, as
			// the SPLASH code's self-scheduling loop does; a cell's COM
			// writer is therefore uncorrelated with its force-phase
			// readers.
			bl := builders[ci%p.Procs]
			for _, ch := range c.child {
				if ch == nil {
					continue
				}
				if ch.cell != nil {
					bl.Read(ch.cell.addr + cellComOff)
					bl.Read(ch.cell.addr + cellComOff + 8)
					bl.Read(ch.cell.addr + cellComOff + 16)
					bl.Read(ch.cell.addr + cellMassOff)
				} else {
					bl.Read(ch.body.addr + bodyPosOff)
					bl.Read(ch.body.addr + bodyPosOff + 8)
					bl.Read(ch.body.addr + bodyPosOff + 16)
					bl.Read(ch.body.addr + bodyMassOff)
				}
				bl.Compute(costComPerKid)
			}
			bl.Write(c.addr + cellComOff)
			bl.Write(c.addr + cellComOff + 8)
			bl.Write(c.addr + cellComOff + 16)
			bl.Write(c.addr + cellMassOff)
			bl.Compute(costComFinish)
		}
		prog.Phases = append(prog.Phases, finishPhase("com", builders))

		// --- Repartition: contiguous leaf-order chunks, weighted by
		// last step's interaction counts (SPLASH costzones).
		leaves := t.leafOrder()
		totalWork := 0
		for _, b := range leaves {
			totalWork += b.work
		}
		target := float64(totalWork) / float64(p.Procs)
		proc, acc := 0, 0.0
		for _, b := range leaves {
			if acc >= target*float64(proc+1) && proc < p.Procs-1 {
				proc++
			}
			owner[index[b]] = proc
			acc += float64(b.work)
		}

		// --- Phase: force computation -------------------------------
		// Bodies are processed in array (arrival) order, as the SPLASH
		// code iterates its body list. Within one processor's chunk that
		// order is spatially scattered, so a single processor re-streams
		// shared tree cells between traversals; several processors per
		// cluster have proportionally finer chunks (tighter per-chunk
		// working sets) and touch the shared cells concurrently — the
		// intra-cluster prefetching the paper describes.
		builders = newBuilders(p.Procs, p.NBodies/p.Procs*600)
		for _, b := range bodies {
			who := owner[index[b]]
			bl := builders[who]
			bl.Read(b.addr + bodyPosOff)
			bl.Read(b.addr + bodyPosOff + 8)
			bl.Read(b.addr + bodyPosOff + 16)
			bl.Compute(costBodySetup)
			b.work = force(t, b, p.Theta, &emitVisitor{b: bl, stack: stacks[who]})
			bl.Write(b.addr + bodyAccOff)
			bl.Write(b.addr + bodyAccOff + 8)
			bl.Write(b.addr + bodyAccOff + 16)
		}
		prog.Phases = append(prog.Phases, finishPhase("force", builders))

		// --- Phase: position update ---------------------------------
		builders = newBuilders(p.Procs, p.NBodies/p.Procs*14)
		for i, b := range bodies {
			bl := builders[owner[i]]
			bl.Read(stacks[owner[i]]) // loop locals
			for off := uint32(0); off < 24; off += 8 {
				bl.Read(b.addr + bodyAccOff + off)
				bl.Read(b.addr + bodyVelOff + off)
				bl.Write(b.addr + bodyVelOff + off)
				bl.Read(b.addr + bodyPosOff + off)
				bl.Write(b.addr + bodyPosOff + off)
			}
			bl.Compute(costUpdate)
			advance(b, p.DT)
		}
		prog.Phases = append(prog.Phases, finishPhase("update", builders))
	}

	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("barnes: generated invalid program: %w", err)
	}
	return prog, nil
}

func newBuilders(procs, hint int) []*trace.Builder {
	bs := make([]*trace.Builder, procs)
	for i := range bs {
		bs[i] = trace.NewBuilder(hint)
	}
	return bs
}

func finishPhase(name string, builders []*trace.Builder) trace.Phase {
	streams := make([][]mem.Ref, len(builders))
	for i, b := range builders {
		streams[i] = b.Finish()
	}
	return trace.Phase{Name: name, Streams: streams}
}
