package sysmodel

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDefaultConfig(t *testing.T) {
	c := Default(2, 32*1024)
	if c.Clusters != 4 {
		t.Errorf("Clusters = %d, want 4", c.Clusters)
	}
	if c.ProcsPerCluster != 2 {
		t.Errorf("ProcsPerCluster = %d, want 2", c.ProcsPerCluster)
	}
	if c.LoadLatency != 3 {
		t.Errorf("LoadLatency = %d, want 3 (2-processor single-chip SCC)", c.LoadLatency)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("Default config invalid: %v", err)
	}
}

func TestImpliedLoadLatency(t *testing.T) {
	cases := []struct{ p, want int }{{1, 2}, {2, 3}, {4, 4}, {8, 4}}
	for _, c := range cases {
		if got := ImpliedLoadLatency(c.p); got != c.want {
			t.Errorf("ImpliedLoadLatency(%d) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestProcsAndBanks(t *testing.T) {
	c := Default(8, 128*1024)
	if c.Procs() != 32 {
		t.Errorf("Procs() = %d, want 32", c.Procs())
	}
	if c.Banks() != 32 {
		t.Errorf("Banks() = %d, want 32 (4 banks per processor)", c.Banks())
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{Clusters: 0, ProcsPerCluster: 1, SCCBytes: 4096, LoadLatency: 2, Assoc: 1},
		{Clusters: 4, ProcsPerCluster: 0, SCCBytes: 4096, LoadLatency: 2, Assoc: 1},
		{Clusters: 4, ProcsPerCluster: 1, SCCBytes: 8, LoadLatency: 2, Assoc: 1},
		{Clusters: 4, ProcsPerCluster: 1, SCCBytes: 4097, LoadLatency: 2, Assoc: 1},
		{Clusters: 4, ProcsPerCluster: 1, SCCBytes: 4096, LoadLatency: 5, Assoc: 1},
		{Clusters: 4, ProcsPerCluster: 1, SCCBytes: 4096, LoadLatency: 2, Assoc: 0},
		{Clusters: 4, ProcsPerCluster: 1, SCCBytes: 16, LoadLatency: 2, Assoc: 4},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
}

func TestValidateAcceptsWholeSweep(t *testing.T) {
	for _, p := range ProcsPerClusterSweep {
		for _, s := range SCCSizes {
			c := Default(p, s)
			if err := c.Validate(); err != nil {
				t.Errorf("sweep point %v invalid: %v", c, err)
			}
		}
	}
}

func TestConfigString(t *testing.T) {
	s := Default(2, 32*1024).String()
	if !strings.Contains(s, "2P") || !strings.Contains(s, "32KB") {
		t.Errorf("Config.String() = %q, want it to mention 2P and 32KB", s)
	}
}

func TestSweepConstants(t *testing.T) {
	if len(SCCSizes) != 8 {
		t.Errorf("len(SCCSizes) = %d, want 8 (4KB..512KB)", len(SCCSizes))
	}
	if SCCSizes[0] != 4*1024 || SCCSizes[7] != 512*1024 {
		t.Errorf("SCCSizes endpoints = %d, %d; want 4096, 524288", SCCSizes[0], SCCSizes[7])
	}
	for i := 1; i < len(SCCSizes); i++ {
		if SCCSizes[i] != 2*SCCSizes[i-1] {
			t.Errorf("SCCSizes[%d] = %d, want power-of-two progression", i, SCCSizes[i])
		}
	}
}

func TestLineAddr(t *testing.T) {
	cases := []struct{ addr, want uint32 }{
		{0, 0}, {15, 0}, {16, 16}, {0x1234, 0x1230},
	}
	for _, c := range cases {
		if got := LineAddr(c.addr); got != c.want {
			t.Errorf("LineAddr(%#x) = %#x, want %#x", c.addr, got, c.want)
		}
	}
}

// Property: LineAddr is idempotent and LineIndex*LineSize == LineAddr.
func TestLineAddrProperty(t *testing.T) {
	f := func(addr uint32) bool {
		la := LineAddr(addr)
		return LineAddr(la) == la &&
			LineIndex(addr)*LineSize == la &&
			addr-la < LineSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
