// Package sysmodel holds the architectural constants and the system
// configuration type for the shared-cluster-cache multiprocessor studied in
// Nayfeh & Olukotun (ISCA 1994). Every other package takes its line size,
// latencies and cluster geometry from here so that the paper's assumptions
// live in exactly one place.
package sysmodel

import "fmt"

// Architectural constants fixed by the paper (Section 2).
const (
	// LineSize is the cache line size in bytes. The paper chooses 16 B to
	// reduce false sharing between clusters.
	LineSize = 16

	// MemLatency is the fixed latency, in processor cycles, to fetch a
	// cache line from main memory or from another SCC over the snoopy bus.
	MemLatency = 100

	// BanksPerProcessor is the number of SCC banks provided per processor
	// in the cluster ("each SCC has four banks for each processor").
	BanksPerProcessor = 4

	// DefaultClusters is the number of clusters in the paper's parallel-
	// application experiments.
	DefaultClusters = 4

	// ICacheSize is the per-processor instruction cache size in bytes
	// (16 KB in every floorplan in Section 4).
	ICacheSize = 16 * 1024

	// BankAccessCycles is how long an SCC bank is occupied by one access.
	BankAccessCycles = 1

	// TimeQuantum is the multiprogramming scheduler's round-robin time
	// quantum in processor cycles (Section 2.3.2).
	TimeQuantum = 5_000_000
)

// SCCSizes is the set of shared-cluster-cache sizes (bytes) swept in the
// paper's design space, 4 KB through 512 KB in powers of two.
var SCCSizes = []int{
	4 * 1024, 8 * 1024, 16 * 1024, 32 * 1024,
	64 * 1024, 128 * 1024, 256 * 1024, 512 * 1024,
}

// ProcsPerClusterSweep is the set of processors-per-cluster values swept in
// the paper's design space.
var ProcsPerClusterSweep = []int{1, 2, 4, 8}

// Config describes one point in the processor-cache design space.
type Config struct {
	// Clusters is the number of clusters on the snoopy bus.
	Clusters int
	// ProcsPerCluster is the number of processors sharing each SCC.
	ProcsPerCluster int
	// SCCBytes is the size of each shared cluster cache in bytes.
	SCCBytes int
	// LoadLatency is the processor load-to-use latency in cycles: 2 for a
	// single-processor cluster, 3 for an on-chip SCC (extra arbitration
	// stage), 4 for an MCM cluster (extra cache access stage). It does not
	// affect the memory-system simulation (Section 3 methodology); it is
	// applied afterwards via the pipeline model (Section 5).
	LoadLatency int
	// Assoc is the SCC associativity. The paper uses direct-mapped
	// caches (Assoc = 1); higher values support ablation studies.
	Assoc int
}

// Default returns the paper's base configuration: four clusters, p
// processors per cluster, an SCC of sccBytes, direct mapped, with the load
// latency implied by the cluster implementation in Section 4.
func Default(p, sccBytes int) Config {
	return Config{
		Clusters:        DefaultClusters,
		ProcsPerCluster: p,
		SCCBytes:        sccBytes,
		LoadLatency:     ImpliedLoadLatency(p),
		Assoc:           1,
	}
}

// ImpliedLoadLatency returns the load latency of the cheapest Section 4
// implementation of a cluster with p processors: 2 cycles for one
// processor with a private cache, 3 cycles for a 2-processor single-chip
// SCC, and 4 cycles for the 4- and 8-processor MCM clusters.
func ImpliedLoadLatency(p int) int {
	switch {
	case p <= 1:
		return 2
	case p == 2:
		return 3
	default:
		return 4
	}
}

// Procs returns the total number of processors in the system.
func (c Config) Procs() int { return c.Clusters * c.ProcsPerCluster }

// Banks returns the number of banks in each SCC.
func (c Config) Banks() int { return c.ProcsPerCluster * BanksPerProcessor }

// Validate reports a descriptive error if the configuration is not
// simulatable.
func (c Config) Validate() error {
	switch {
	case c.Clusters < 1:
		return fmt.Errorf("sysmodel: Clusters = %d, want >= 1", c.Clusters)
	case c.ProcsPerCluster < 1:
		return fmt.Errorf("sysmodel: ProcsPerCluster = %d, want >= 1", c.ProcsPerCluster)
	case c.SCCBytes < LineSize:
		return fmt.Errorf("sysmodel: SCCBytes = %d, want >= line size %d", c.SCCBytes, LineSize)
	case c.SCCBytes%LineSize != 0:
		return fmt.Errorf("sysmodel: SCCBytes = %d not a multiple of the line size %d", c.SCCBytes, LineSize)
	case c.Assoc < 1:
		return fmt.Errorf("sysmodel: Assoc = %d, want >= 1", c.Assoc)
	case c.SCCBytes/LineSize < c.Assoc:
		return fmt.Errorf("sysmodel: SCCBytes = %d too small for associativity %d", c.SCCBytes, c.Assoc)
	case c.LoadLatency < 2 || c.LoadLatency > 4:
		return fmt.Errorf("sysmodel: LoadLatency = %d, want 2..4", c.LoadLatency)
	}
	return nil
}

// String renders the configuration the way the paper labels design points,
// e.g. "4x2P/32KB(L3)".
func (c Config) String() string {
	return fmt.Sprintf("%dx%dP/%dKB(L%d)", c.Clusters, c.ProcsPerCluster, c.SCCBytes/1024, c.LoadLatency)
}

// LineAddr returns the line-aligned address containing addr.
func LineAddr(addr uint32) uint32 { return addr &^ (LineSize - 1) }

// LineIndex returns the global line number containing addr.
func LineIndex(addr uint32) uint32 { return addr / LineSize }
