// Package sysmodel holds the architectural constants and the system
// configuration type for the shared-cluster-cache multiprocessor studied in
// Nayfeh & Olukotun (ISCA 1994). Every other package takes its line size,
// latencies and cluster geometry from here so that the paper's assumptions
// live in exactly one place.
package sysmodel

import "fmt"

// Architectural constants fixed by the paper (Section 2).
const (
	// LineSize is the cache line size in bytes. The paper chooses 16 B to
	// reduce false sharing between clusters.
	LineSize = 16

	// MemLatency is the fixed latency, in processor cycles, to fetch a
	// cache line from main memory or from another SCC over the snoopy bus.
	MemLatency = 100

	// BanksPerProcessor is the number of SCC banks provided per processor
	// in the cluster ("each SCC has four banks for each processor").
	BanksPerProcessor = 4

	// DefaultClusters is the number of clusters in the paper's parallel-
	// application experiments.
	DefaultClusters = 4

	// ICacheSize is the per-processor instruction cache size in bytes
	// (16 KB in every floorplan in Section 4).
	ICacheSize = 16 * 1024

	// BankAccessCycles is how long an SCC bank is occupied by one access.
	BankAccessCycles = 1

	// TimeQuantum is the multiprogramming scheduler's round-robin time
	// quantum in processor cycles (Section 2.3.2).
	TimeQuantum = 5_000_000
)

// SCCSizes is the set of shared-cluster-cache sizes (bytes) swept in the
// paper's design space, 4 KB through 512 KB in powers of two.
var SCCSizes = []int{
	4 * 1024, 8 * 1024, 16 * 1024, 32 * 1024,
	64 * 1024, 128 * 1024, 256 * 1024, 512 * 1024,
}

// ProcsPerClusterSweep is the set of processors-per-cluster values swept in
// the paper's design space.
var ProcsPerClusterSweep = []int{1, 2, 4, 8}

// Replacement policy names for set-associative caches. The empty string
// means the default, true-LRU.
const (
	ReplLRU    = "lru"
	ReplRandom = "random"
)

// Hierarchy names for the cache organization axis. The empty string
// means the default, the paper's shared SCC.
const (
	// HierarchyShared is the paper's organization: one SCC per cluster,
	// shared by every processor in it, banked and bus-coherent.
	HierarchyShared = "shared"
	// HierarchyPrivate splits each cluster's SCC capacity into private
	// per-processor caches kept coherent over the snoopy bus — the
	// counterfactual the paper argues against.
	HierarchyPrivate = "private"
	// HierarchyHybrid puts a small private write-through L1 in front of
	// each processor, backed by the cluster's shared SCC (two-level).
	HierarchyHybrid = "hybrid"
)

// DefaultL1Bytes is the per-processor L1 size assumed by the hybrid
// hierarchy when Config.L1Bytes is zero.
const DefaultL1Bytes = 4 * 1024

// Config describes one point in the processor-cache design space.
//
// The LineBytes, Repl, Hierarchy and L1Bytes axes default to the
// paper's fixed choices when zero-valued and carry ",omitempty" JSON
// tags, so configurations that do not exercise them serialize exactly
// as they did before the axes existed.
type Config struct {
	// Clusters is the number of clusters on the snoopy bus.
	Clusters int
	// ProcsPerCluster is the number of processors sharing each SCC.
	ProcsPerCluster int
	// SCCBytes is the size of each shared cluster cache in bytes.
	SCCBytes int
	// LoadLatency is the processor load-to-use latency in cycles: 2 for a
	// single-processor cluster, 3 for an on-chip SCC (extra arbitration
	// stage), 4 for an MCM cluster (extra cache access stage). It does not
	// affect the memory-system simulation (Section 3 methodology); it is
	// applied afterwards via the pipeline model (Section 5).
	LoadLatency int
	// Assoc is the SCC associativity. The paper uses direct-mapped
	// caches (Assoc = 1); higher values support ablation studies.
	Assoc int
	// LineBytes is the cache line size in bytes, a power of two between
	// 4 and 1024. Zero means the paper's LineSize (16 B).
	LineBytes int `json:",omitempty"`
	// Repl selects the replacement policy for set-associative caches:
	// "lru" (the default; also what "" means) or "random"
	// (deterministically seeded, so runs stay reproducible). Ignored for
	// direct-mapped caches, where replacement is forced.
	Repl string `json:",omitempty"`
	// Hierarchy selects the cache organization: "shared" (the paper's
	// banked cluster cache; also what "" means), "private"
	// (per-processor caches, bus-coherent), or "hybrid" (private
	// write-through L1s in front of the shared SCC).
	Hierarchy string `json:",omitempty"`
	// L1Bytes is the per-processor L1 size for the hybrid hierarchy.
	// Zero means DefaultL1Bytes. Must be zero for other hierarchies.
	L1Bytes int `json:",omitempty"`
}

// Default returns the paper's base configuration: four clusters, p
// processors per cluster, an SCC of sccBytes, direct mapped, with the load
// latency implied by the cluster implementation in Section 4.
func Default(p, sccBytes int) Config {
	return Config{
		Clusters:        DefaultClusters,
		ProcsPerCluster: p,
		SCCBytes:        sccBytes,
		LoadLatency:     ImpliedLoadLatency(p),
		Assoc:           1,
	}
}

// ImpliedLoadLatency returns the load latency of the cheapest Section 4
// implementation of a cluster with p processors: 2 cycles for one
// processor with a private cache, 3 cycles for a 2-processor single-chip
// SCC, and 4 cycles for the 4- and 8-processor MCM clusters.
func ImpliedLoadLatency(p int) int {
	switch {
	case p <= 1:
		return 2
	case p == 2:
		return 3
	default:
		return 4
	}
}

// Procs returns the total number of processors in the system.
func (c Config) Procs() int { return c.Clusters * c.ProcsPerCluster }

// Banks returns the number of banks in each SCC.
func (c Config) Banks() int { return c.ProcsPerCluster * BanksPerProcessor }

// Line returns the effective cache line size in bytes: LineBytes, or
// the paper's LineSize when the axis is unset.
func (c Config) Line() int {
	if c.LineBytes == 0 {
		return LineSize
	}
	return c.LineBytes
}

// ReplPolicy returns the effective replacement policy name: Repl, or
// ReplLRU when the axis is unset.
func (c Config) ReplPolicy() string {
	if c.Repl == "" {
		return ReplLRU
	}
	return c.Repl
}

// HierarchyKind returns the effective hierarchy name: Hierarchy, or
// HierarchyShared when the axis is unset.
func (c Config) HierarchyKind() string {
	if c.Hierarchy == "" {
		return HierarchyShared
	}
	return c.Hierarchy
}

// L1Size returns the effective per-processor L1 size for the hybrid
// hierarchy: L1Bytes, or DefaultL1Bytes when the axis is unset.
func (c Config) L1Size() int {
	if c.L1Bytes == 0 {
		return DefaultL1Bytes
	}
	return c.L1Bytes
}

// Validate reports a descriptive error if the configuration is not
// simulatable.
func (c Config) Validate() error {
	lb := c.Line()
	switch {
	case c.Clusters < 1:
		return fmt.Errorf("sysmodel: Clusters = %d, want >= 1", c.Clusters)
	case c.ProcsPerCluster < 1:
		return fmt.Errorf("sysmodel: ProcsPerCluster = %d, want >= 1", c.ProcsPerCluster)
	case lb < 4 || lb > 1024 || lb&(lb-1) != 0:
		return fmt.Errorf("sysmodel: LineBytes = %d, want a power of two in 4..1024", lb)
	case c.SCCBytes < lb:
		return fmt.Errorf("sysmodel: SCCBytes = %d, want >= line size %d", c.SCCBytes, lb)
	case c.SCCBytes%lb != 0:
		return fmt.Errorf("sysmodel: SCCBytes = %d not a multiple of the line size %d", c.SCCBytes, lb)
	case c.Assoc < 1:
		return fmt.Errorf("sysmodel: Assoc = %d, want >= 1", c.Assoc)
	case c.SCCBytes/lb < c.Assoc:
		return fmt.Errorf("sysmodel: SCCBytes = %d too small for associativity %d", c.SCCBytes, c.Assoc)
	case (c.SCCBytes/lb)%c.Assoc != 0:
		return fmt.Errorf("sysmodel: %d lines not divisible into %d-way sets", c.SCCBytes/lb, c.Assoc)
	case c.LoadLatency < 2 || c.LoadLatency > 4:
		return fmt.Errorf("sysmodel: LoadLatency = %d, want 2..4", c.LoadLatency)
	}
	switch c.Repl {
	case "", ReplLRU, ReplRandom:
	default:
		return fmt.Errorf("sysmodel: Repl = %q, want %q or %q", c.Repl, ReplLRU, ReplRandom)
	}
	switch c.Hierarchy {
	case "", HierarchyShared, HierarchyPrivate, HierarchyHybrid:
	default:
		return fmt.Errorf("sysmodel: Hierarchy = %q, want %q, %q or %q",
			c.Hierarchy, HierarchyShared, HierarchyPrivate, HierarchyHybrid)
	}
	switch c.HierarchyKind() {
	case HierarchyPrivate:
		if c.SCCBytes/c.ProcsPerCluster < lb*c.Assoc {
			return fmt.Errorf("sysmodel: SCCBytes = %d too small to split into %d private caches",
				c.SCCBytes, c.ProcsPerCluster)
		}
		if (c.SCCBytes/c.ProcsPerCluster)%lb != 0 {
			return fmt.Errorf("sysmodel: SCCBytes = %d does not split into %d line-multiple private caches",
				c.SCCBytes, c.ProcsPerCluster)
		}
		if (c.SCCBytes/c.ProcsPerCluster/lb)%c.Assoc != 0 {
			return fmt.Errorf("sysmodel: private cache of %d lines not divisible into %d-way sets",
				c.SCCBytes/c.ProcsPerCluster/lb, c.Assoc)
		}
		fallthrough
	case HierarchyShared:
		if c.L1Bytes != 0 {
			return fmt.Errorf("sysmodel: L1Bytes = %d only applies to the %q hierarchy", c.L1Bytes, HierarchyHybrid)
		}
	case HierarchyHybrid:
		l1 := c.L1Size()
		if l1 < lb || l1%lb != 0 {
			return fmt.Errorf("sysmodel: L1Bytes = %d, want a multiple of the line size %d", l1, lb)
		}
	}
	return nil
}

// String renders the configuration the way the paper labels design points,
// e.g. "4x2P/32KB(L3)".
func (c Config) String() string {
	return fmt.Sprintf("%dx%dP/%dKB(L%d)", c.Clusters, c.ProcsPerCluster, c.SCCBytes/1024, c.LoadLatency)
}

// LineAddr returns the line-aligned address containing addr.
func LineAddr(addr uint32) uint32 { return addr &^ (LineSize - 1) }

// LineIndex returns the global line number containing addr.
func LineIndex(addr uint32) uint32 { return addr / LineSize }

// LineShift returns log2 of the effective line size, so line indices can
// be computed with a shift on hot paths.
func (c Config) LineShift() uint32 {
	s := uint32(0)
	for lb := c.Line(); lb > 1; lb >>= 1 {
		s++
	}
	return s
}

// Axes bundles the architecture axes that widen the paper's design
// space beyond (size, processors): line size, associativity,
// replacement policy and hierarchy. The zero value means "the paper's
// defaults" and applying it changes nothing, so sweeps that do not set
// axes reproduce the historical configurations bit for bit.
type Axes struct {
	// LineBytes overrides the cache line size (0: the paper's 16 B).
	LineBytes int `json:"line_bytes,omitempty"`
	// Assoc overrides the cache associativity (0: direct-mapped).
	Assoc int `json:"assoc,omitempty"`
	// Repl overrides the replacement policy ("": lru).
	Repl string `json:"repl,omitempty"`
	// Hierarchy overrides the cache organization ("": shared).
	Hierarchy string `json:"hierarchy,omitempty"`
	// L1Bytes overrides the hybrid hierarchy's per-processor L1 size
	// (0: DefaultL1Bytes). Only valid with Hierarchy "hybrid".
	L1Bytes int `json:"l1_bytes,omitempty"`
}

// IsZero reports whether every axis keeps its paper default.
func (a Axes) IsZero() bool { return a == Axes{} }

// Apply overlays the non-default axes onto c and returns the result.
func (a Axes) Apply(c Config) Config {
	if a.LineBytes != 0 {
		c.LineBytes = a.LineBytes
	}
	if a.Assoc != 0 {
		c.Assoc = a.Assoc
	}
	if a.Repl != "" {
		c.Repl = a.Repl
	}
	if a.Hierarchy != "" {
		c.Hierarchy = a.Hierarchy
	}
	if a.L1Bytes != 0 {
		c.L1Bytes = a.L1Bytes
	}
	return c
}

// Validate checks the axes against the paper's base configuration — the
// cheap shape check callers run before a sweep builds per-point
// configurations (each of which is validated again in full).
func (a Axes) Validate() error {
	return a.Apply(Default(1, 64*1024)).Validate()
}
