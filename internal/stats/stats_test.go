package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !approx(Mean([]float64{1, 2, 3}), 2) {
		t.Error("Mean([1,2,3]) != 2")
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}

func TestStdDev(t *testing.T) {
	// Sample sd of {2,4,4,4,5,5,7,9} is ~2.138.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := StdDev(xs); math.Abs(got-2.13809) > 1e-4 {
		t.Errorf("StdDev = %v", got)
	}
	if StdDev([]float64{1}) != 0 {
		t.Error("single-sample sd != 0")
	}
}

func TestCV(t *testing.T) {
	if CV([]float64{10, 10, 10}) != 0 {
		t.Error("constant sample CV != 0")
	}
	if CV([]float64{0, 0}) != 0 {
		t.Error("zero-mean CV != 0")
	}
}

func TestGeoMean(t *testing.T) {
	if !approx(GeoMean([]float64{1, 4}), 2) {
		t.Error("GeoMean(1,4) != 2")
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Error("negative input should return 0")
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) != 0")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, 1, 2})
	if min != 1 || max != 3 {
		t.Errorf("MinMax = %v, %v", min, max)
	}
	min, max = MinMax(nil)
	if min != 0 || max != 0 {
		t.Error("MinMax(nil) != 0,0")
	}
}

func TestSummary(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || !approx(s.Mean, 2) || !approx(s.Min, 1) || !approx(s.Max, 3) {
		t.Errorf("Summary = %+v", s)
	}
	if !strings.Contains(s.String(), "n=3") {
		t.Errorf("Summary.String() = %q", s.String())
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
		{40, 29}, // rank 1.6: 20 + 0.6*(35-20)
		{-5, 15}, // clamped
		{120, 50},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !approx(got, c.want) {
			t.Errorf("Percentile(xs, %v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Input order must not matter and the input must not be mutated.
	shuffled := []float64{40, 15, 50, 35, 20}
	if got := Percentile(shuffled, 50); !approx(got, 35) {
		t.Errorf("Percentile(shuffled, 50) = %v, want 35", got)
	}
	if shuffled[0] != 40 || shuffled[1] != 15 {
		t.Error("Percentile mutated its input")
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) != 0")
	}
	if got := Percentile([]float64{7}, 95); !approx(got, 7) {
		t.Errorf("single-sample percentile = %v, want 7", got)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); !approx(got, 2) {
		t.Errorf("Median odd = %v, want 2", got)
	}
	if got := Median([]float64{1, 2, 3, 4}); !approx(got, 2.5) {
		t.Errorf("Median even = %v, want 2.5", got)
	}
	if Median(nil) != 0 {
		t.Error("Median(nil) != 0")
	}
}

// Properties: min <= mean <= max, sd >= 0, GeoMean <= Mean (AM-GM).
func TestStatsProperties(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r) + 1 // positive
		}
		s := Summarize(xs)
		if s.Min > s.Mean+1e-9 || s.Mean > s.Max+1e-9 || s.StdDev < 0 {
			return false
		}
		return GeoMean(xs) <= s.Mean+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
