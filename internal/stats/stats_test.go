package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !approx(Mean([]float64{1, 2, 3}), 2) {
		t.Error("Mean([1,2,3]) != 2")
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}

func TestStdDev(t *testing.T) {
	// Sample sd of {2,4,4,4,5,5,7,9} is ~2.138.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := StdDev(xs); math.Abs(got-2.13809) > 1e-4 {
		t.Errorf("StdDev = %v", got)
	}
	if StdDev([]float64{1}) != 0 {
		t.Error("single-sample sd != 0")
	}
}

func TestCV(t *testing.T) {
	if CV([]float64{10, 10, 10}) != 0 {
		t.Error("constant sample CV != 0")
	}
	if CV([]float64{0, 0}) != 0 {
		t.Error("zero-mean CV != 0")
	}
}

func TestGeoMean(t *testing.T) {
	if !approx(GeoMean([]float64{1, 4}), 2) {
		t.Error("GeoMean(1,4) != 2")
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Error("negative input should return 0")
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) != 0")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, 1, 2})
	if min != 1 || max != 3 {
		t.Errorf("MinMax = %v, %v", min, max)
	}
	min, max = MinMax(nil)
	if min != 0 || max != 0 {
		t.Error("MinMax(nil) != 0,0")
	}
}

func TestSummary(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || !approx(s.Mean, 2) || !approx(s.Min, 1) || !approx(s.Max, 3) {
		t.Errorf("Summary = %+v", s)
	}
	if !strings.Contains(s.String(), "n=3") {
		t.Errorf("Summary.String() = %q", s.String())
	}
}

// Properties: min <= mean <= max, sd >= 0, GeoMean <= Mean (AM-GM).
func TestStatsProperties(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r) + 1 // positive
		}
		s := Summarize(xs)
		if s.Min > s.Mean+1e-9 || s.Mean > s.Max+1e-9 || s.StdDev < 0 {
			return false
		}
		return GeoMean(xs) <= s.Mean+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
