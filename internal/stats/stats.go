// Package stats provides the small statistical helpers the experiment
// harness uses: means, deviations, and seed-sensitivity summaries.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 for fewer than two
// samples).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// CV returns the coefficient of variation (StdDev/Mean), or 0 when the
// mean is 0.
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// GeoMean returns the geometric mean of positive values; non-positive
// inputs return 0.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// MinMax returns the extrema of xs (0, 0 for empty input).
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks, without mutating xs
// (0 for empty input). p outside [0, 100] is clamped.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 {
	return Percentile(xs, 50)
}

// Summary bundles the descriptive statistics of a sample.
type Summary struct {
	N        int
	Mean     float64
	StdDev   float64
	CV       float64
	Min, Max float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	min, max := MinMax(xs)
	return Summary{
		N: len(xs), Mean: Mean(xs), StdDev: StdDev(xs), CV: CV(xs),
		Min: min, Max: max,
	}
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.3g cv=%.2f%% range=[%.4g, %.4g]",
		s.N, s.Mean, s.StdDev, 100*s.CV, s.Min, s.Max)
}
