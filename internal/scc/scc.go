// Package scc implements the Shared Cluster Cache: the multi-ported,
// multi-banked, non-blocking data cache that the processors of one cluster
// share (Section 2.1 of the paper).
//
// Banks are interleaved on cache lines — consecutive lines live in
// consecutive banks — and each processor has a dedicated port through the
// processor-cache interconnection network. Contention is modeled per bank:
// an access that finds its bank busy waits until the bank frees
// ("we address the issue of contention at the shared cache by considering
// contention on each individual bank within the SCC").
//
// Because both the bank count and the per-bank set count are powers of two
// in every configuration the paper sweeps, line placement in the banked
// structure is identical to placement in a single cache whose index bits
// are the concatenation of the bank-select and set-select bits. The tag
// store is therefore kept as one cache.Cache, and banking affects timing
// only.
package scc

import (
	"fmt"

	"sccsim/internal/cache"
	"sccsim/internal/mem"
	"sccsim/internal/sysmodel"
)

// SCC is one cluster's shared cache.
type SCC struct {
	tags     *cache.Cache
	dm       bool // tags are direct-mapped: take the inlinable fast path
	banks    int
	bankMask uint32
	// bank[b] is bank b's timing and access count, fused into one struct
	// so the per-access hot path pays one bounds check and touches one
	// cache line instead of two parallel slices. Stats() materializes the
	// counts into Stats.BankAccesses for external consumers.
	bank      []bankState
	lineShift uint32 // log2 of the line size; line index = addr >> lineShift
	stats     Stats

	// victim is an optional small fully-associative victim buffer that
	// catches recently conflict-evicted lines (Jouppi-style) — an
	// extension the paper's direct-mapped SCC would benefit from. Nil
	// when disabled.
	victim *victimBuffer
}

// victimBuffer is a tiny FIFO of recently evicted lines.
type victimBuffer struct {
	tags  []uint32 // line indices; victimInvalid when empty
	dirty []bool
	next  int
}

const victimInvalid = ^uint32(0)

// bankState is one bank's arbitration state.
type bankState struct {
	free  uint64 // cycle at which the bank next becomes available
	count uint64 // accesses routed to this bank
}

func newVictimBuffer(entries int) *victimBuffer {
	v := &victimBuffer{tags: make([]uint32, entries), dirty: make([]bool, entries)}
	for i := range v.tags {
		v.tags[i] = victimInvalid
	}
	return v
}

// take removes and returns whether the line was buffered.
func (v *victimBuffer) take(line uint32) (bool, bool) {
	for i, t := range v.tags {
		if t == line {
			d := v.dirty[i]
			v.tags[i] = victimInvalid
			return true, d
		}
	}
	return false, false
}

// put inserts an evicted line, displacing the oldest entry. The cursor
// wraps with a compare-and-reset rather than a modulo: the buffer sits on
// the miss path and an integer divide per eviction is measurable at the
// typical 4-8 entry sizes.
func (v *victimBuffer) put(line uint32, dirty bool) {
	v.tags[v.next] = line
	v.dirty[v.next] = dirty
	if v.next++; v.next == len(v.tags) {
		v.next = 0
	}
}

// Stats accumulates SCC-specific contention statistics on top of the tag
// store's hit/miss statistics.
type Stats struct {
	// BankConflicts counts accesses that found their bank busy.
	BankConflicts uint64
	// BankWaitCycles is the total cycles accesses spent waiting for a
	// busy bank.
	BankWaitCycles uint64
	// BankAccesses[b] counts accesses routed to bank b.
	BankAccesses []uint64
	// VictimHits counts misses satisfied by the victim buffer.
	VictimHits uint64
}

// New builds an SCC of size bytes with the given associativity and bank
// count, 16-byte lines and LRU replacement. banks must be a power of
// two (the paper uses 4 banks per processor: 4, 8, 16 or 32).
func New(size, assoc, banks int) (*SCC, error) {
	return NewWith(size, assoc, banks, sysmodel.LineSize, sysmodel.ReplLRU)
}

// NewWith is New with the line size and replacement policy as explicit
// axes (see cache.NewWith for their domains).
func NewWith(size, assoc, banks, lineBytes int, repl string) (*SCC, error) {
	if banks < 1 || banks&(banks-1) != 0 {
		return nil, fmt.Errorf("scc: bank count %d is not a positive power of two", banks)
	}
	tags, err := cache.NewWith(size, assoc, lineBytes, repl)
	if err != nil {
		return nil, fmt.Errorf("scc: %w", err)
	}
	if size/tags.LineBytes() < banks {
		return nil, fmt.Errorf("scc: size %d has fewer lines than banks %d", size, banks)
	}
	shift := uint32(0)
	for lb := tags.LineBytes(); lb > 1; lb >>= 1 {
		shift++
	}
	return &SCC{
		tags:      tags,
		dm:        assoc == 1, // replacement is forced when direct-mapped, so repl never disables the fast path
		banks:     banks,
		bankMask:  uint32(banks - 1),
		bank:      make([]bankState, banks),
		lineShift: shift,
		stats:     Stats{BankAccesses: make([]uint64, banks)},
	}, nil
}

// EnableVictimBuffer attaches a fully-associative victim buffer of the
// given entry count (Jouppi-style). Call before simulation starts.
func (s *SCC) EnableVictimBuffer(entries int) {
	if entries > 0 {
		s.victim = newVictimBuffer(entries)
	}
}

// MustNew is New but panics on error.
func MustNew(size, assoc, banks int) *SCC {
	s, err := New(size, assoc, banks)
	if err != nil {
		panic(err)
	}
	return s
}

// Banks returns the number of banks.
func (s *SCC) Banks() int { return s.banks }

// SizeBytes returns the capacity in bytes.
func (s *SCC) SizeBytes() int { return s.tags.SizeBytes() }

// CacheStats returns the tag-store hit/miss statistics.
func (s *SCC) CacheStats() *cache.Stats { return s.tags.Stats() }

// Stats returns the contention statistics, materializing the per-bank
// access counts from the fused bank state. The returned pointer stays
// valid, but BankAccesses reflects the counts as of this call.
func (s *SCC) Stats() *Stats {
	for i := range s.bank {
		s.stats.BankAccesses[i] = s.bank[i].count
	}
	return &s.stats
}

// ResetStats zeroes the contention statistics (bank access counts,
// conflicts, wait cycles, victim hits) — the simulator's statistics
// warmup uses it. Bank timing state is untouched.
func (s *SCC) ResetStats() {
	for i := range s.bank {
		s.bank[i].count = 0
	}
	for i := range s.stats.BankAccesses {
		s.stats.BankAccesses[i] = 0
	}
	s.stats.BankConflicts, s.stats.BankWaitCycles, s.stats.VictimHits = 0, 0, 0
}

// BankOf returns the bank servicing addr (line-interleaved).
func (s *SCC) BankOf(addr uint32) int {
	return int((addr >> s.lineShift) & s.bankMask)
}

// Result describes the outcome and timing of one SCC access.
type Result struct {
	// Hit reports whether the line was resident.
	Hit bool
	// Bank is the bank that serviced the access.
	Bank int
	// Start is the cycle at which the bank began servicing the access;
	// Start - now is the bank-arbitration wait.
	Start uint64
	// Evicted is the line index displaced by a fill, or cache.EvictedNone.
	Evicted uint32
	// EvictedDirty reports whether the displaced line was dirty.
	EvictedDirty bool
}

// Wait returns the bank-arbitration wait given the issue time.
func (r Result) Wait(now uint64) uint64 { return r.Start - now }

// BankStart arbitrates addr's bank for an access issued at cycle now:
// if the bank is busy the access waits (accounted as a conflict), then
// the bank is occupied for sysmodel.BankAccessCycles. Returns the cycle
// at which the bank begins servicing the access. This is Access's
// arbitration step, exported and kept inline-small so the simulator's
// fused direct-mapped path (see DirectTags) can run it without a call.
func (s *SCC) BankStart(now uint64, addr uint32) uint64 {
	b := &s.bank[(addr>>s.lineShift)&s.bankMask]
	b.count++
	start := b.free
	if start <= now {
		start = now
	} else {
		s.stats.BankConflicts++
		s.stats.BankWaitCycles += start - now
	}
	b.free = start + sysmodel.BankAccessCycles
	return start
}

// DirectTags returns the tag store when the SCC is direct-mapped with no
// victim buffer — the configuration whose access path the simulator
// fuses inline (BankStart for timing plus cache.HitDM/MissDM for the tag
// probe reproduce Access exactly) — and nil otherwise. Accessing the
// returned cache outside that pairing bypasses bank accounting.
func (s *SCC) DirectTags() *cache.Cache {
	if s.dm && s.victim == nil {
		return s.tags
	}
	return nil
}

// Access performs an access issued at cycle now, modelling bank
// arbitration: if the bank is busy the access waits. The bank is then
// occupied for sysmodel.BankAccessCycles. On a miss the caller is
// responsible for bus/memory timing and for occupying the bank again
// during the refill (see OccupyBank).
func (s *SCC) Access(now uint64, addr uint32, kind mem.Kind) Result {
	bank := s.BankOf(addr)
	start := s.BankStart(now, addr)

	var cr cache.Result
	if s.dm {
		// Direct-mapped tag probe, inlined here: the common hit costs no
		// call through the cache layer.
		if s.tags.HitDM(addr, kind) {
			cr = cache.Result{Hit: true, Evicted: cache.EvictedNone}
		} else {
			cr = s.tags.MissDM(addr, kind)
		}
	} else {
		cr = s.tags.Access(addr, kind)
	}
	res := Result{
		Hit:          cr.Hit,
		Bank:         bank,
		Start:        start,
		Evicted:      cr.Evicted,
		EvictedDirty: cr.EvictedDirty,
	}
	if s.victim == nil {
		return res
	}
	line := addr >> s.lineShift
	if !cr.Hit {
		// A victim-buffer hit turns the miss into a hit: the line swaps
		// back without a bus transaction. (The tag store still counted a
		// miss; VictimHits lets callers reconcile the two views.)
		if found, dirty := s.victim.take(line); found {
			s.stats.VictimHits++
			res.Hit = true
			if dirty && kind == mem.Read {
				// Preserve dirtiness without perturbing any statistics: the
				// swap-back is not a program reference, so it must not show
				// up in Accesses[Write] or the hit/miss counts.
				s.tags.MarkDirty(addr)
			}
		}
	}
	if res.Evicted != cache.EvictedNone {
		// The displaced line moves to the victim buffer instead of
		// leaving the SCC: suppress the bus eviction notice so the
		// coherence presence bit stays set (the line is still here and
		// must still receive invalidations — Invalidate checks the
		// buffer). An entry silently displaced *out* of the buffer
		// leaves a stale presence bit behind, which is safe: a later
		// invalidation attempt simply finds nothing.
		s.victim.put(res.Evicted, res.EvictedDirty)
		res.Evicted = cache.EvictedNone
		res.EvictedDirty = false
	}
	return res
}

// OccupyBank marks addr's bank busy until cycle until, if that is later
// than its current free time. The refill port uses this when a line
// returns from the bus so processor accesses to that bank wait.
func (s *SCC) OccupyBank(addr uint32, until uint64) {
	b := &s.bank[s.BankOf(addr)]
	if until > b.free {
		b.free = until
	}
}

// Probe reports whether addr is resident without side effects.
func (s *SCC) Probe(addr uint32) bool { return s.tags.Probe(addr) }

// VisitLines calls fn for every line the SCC currently holds — tag-store
// lines first, then lines parked in the victim buffer (which are still
// resident for coherence purposes: Invalidate reaches them and their
// presence bits stay set). No statistics are touched.
func (s *SCC) VisitLines(fn func(lineIndex uint32, dirty bool)) {
	s.tags.VisitLines(fn)
	if s.victim != nil {
		for i, t := range s.victim.tags {
			if t != victimInvalid {
				fn(t, s.victim.dirty[i])
			}
		}
	}
}

// Invalidate removes addr's line if present (inter-cluster coherence),
// including a copy parked in the victim buffer.
func (s *SCC) Invalidate(addr uint32) (present, dirty bool) {
	present, dirty = s.tags.Invalidate(addr)
	if s.victim != nil {
		if found, d := s.victim.take(addr >> s.lineShift); found {
			present = true
			dirty = dirty || d
		}
	}
	return present, dirty
}

// BankImbalance returns max/mean of per-bank access counts, a measure of
// how evenly line interleaving spread the traffic (1.0 = perfectly even).
func (s *Stats) BankImbalance() float64 {
	var sum, max uint64
	for _, n := range s.BankAccesses {
		sum += n
		if n > max {
			max = n
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(s.BankAccesses))
	return float64(max) / mean
}
