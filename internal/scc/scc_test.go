package scc

import (
	"fmt"
	"testing"
	"testing/quick"

	"sccsim/internal/cache"
	"sccsim/internal/mem"
	"sccsim/internal/sysmodel"
)

func TestNewRejectsBadGeometry(t *testing.T) {
	cases := []struct{ size, assoc, banks int }{
		{4096, 1, 0},
		{4096, 1, 3},
		{4096, 1, 512}, // more banks than lines
		{100, 1, 4},    // bad cache size
	}
	for _, c := range cases {
		if _, err := New(c.size, c.assoc, c.banks); err == nil {
			t.Errorf("New(%d,%d,%d) succeeded, want error", c.size, c.assoc, c.banks)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with bad bank count did not panic")
		}
	}()
	MustNew(4096, 1, 3)
}

func TestBankInterleaving(t *testing.T) {
	s := MustNew(32*1024, 1, 8)
	// Consecutive lines must land in consecutive banks.
	for i := 0; i < 16; i++ {
		addr := uint32(i * sysmodel.LineSize)
		if got := s.BankOf(addr); got != i%8 {
			t.Errorf("BankOf(line %d) = %d, want %d", i, got, i%8)
		}
	}
	// Addresses within a line map to the same bank.
	if s.BankOf(0x10) != s.BankOf(0x1f) {
		t.Error("addresses in one line map to different banks")
	}
}

func TestNoConflictOnDifferentBanks(t *testing.T) {
	s := MustNew(32*1024, 1, 8)
	r0 := s.Access(100, 0*sysmodel.LineSize, mem.Read)
	r1 := s.Access(100, 1*sysmodel.LineSize, mem.Read)
	if r0.Wait(100) != 0 || r1.Wait(100) != 0 {
		t.Errorf("same-cycle accesses to different banks waited: %d, %d", r0.Wait(100), r1.Wait(100))
	}
	if s.Stats().BankConflicts != 0 {
		t.Errorf("BankConflicts = %d, want 0", s.Stats().BankConflicts)
	}
}

func TestBankConflictSerializes(t *testing.T) {
	s := MustNew(32*1024, 1, 8)
	// Two same-cycle accesses to lines 0 and 8: both bank 0.
	r0 := s.Access(100, 0, mem.Read)
	r1 := s.Access(100, 8*sysmodel.LineSize, mem.Read)
	if r0.Start != 100 {
		t.Errorf("first access started at %d, want 100", r0.Start)
	}
	if want := uint64(100 + sysmodel.BankAccessCycles); r1.Start != want {
		t.Errorf("conflicting access started at %d, want %d", r1.Start, want)
	}
	st := s.Stats()
	if st.BankConflicts != 1 || st.BankWaitCycles != uint64(sysmodel.BankAccessCycles) {
		t.Errorf("conflict stats = %+v", st)
	}
}

func TestBankFreesAfterAccess(t *testing.T) {
	s := MustNew(32*1024, 1, 8)
	s.Access(100, 0, mem.Read)
	r := s.Access(100+uint64(sysmodel.BankAccessCycles), 0, mem.Read)
	if r.Wait(100+uint64(sysmodel.BankAccessCycles)) != 0 {
		t.Error("access after the bank freed still waited")
	}
}

func TestOccupyBank(t *testing.T) {
	s := MustNew(32*1024, 1, 8)
	s.OccupyBank(0, 500)
	r := s.Access(100, 0, mem.Read)
	if r.Start != 500 {
		t.Errorf("access to refilling bank started at %d, want 500", r.Start)
	}
	// OccupyBank never shortens an existing reservation.
	s.OccupyBank(0, 400)
	r = s.Access(501, 8*sysmodel.LineSize, mem.Read)
	if r.Start != 501 {
		t.Errorf("bank reservation shortened: start %d, want 501", r.Start)
	}
}

func TestHitMissPlumbing(t *testing.T) {
	s := MustNew(4096, 1, 4)
	r := s.Access(0, 0x40, mem.Read)
	if r.Hit {
		t.Error("cold access hit")
	}
	r = s.Access(10, 0x40, mem.Read)
	if !r.Hit {
		t.Error("second access missed")
	}
	if s.CacheStats().TotalMisses() != 1 {
		t.Errorf("misses = %d, want 1", s.CacheStats().TotalMisses())
	}
}

func TestEvictionPlumbing(t *testing.T) {
	s := MustNew(4096, 1, 4)
	s.Access(0, 0x0, mem.Write)
	r := s.Access(1, 4096, mem.Read) // same set+bank, conflict evict
	if r.Evicted == cache.EvictedNone || !r.EvictedDirty {
		t.Errorf("eviction not reported: %+v", r)
	}
}

func TestInvalidateAndProbe(t *testing.T) {
	s := MustNew(4096, 1, 4)
	s.Access(0, 0x40, mem.Write)
	if !s.Probe(0x40) {
		t.Error("Probe missed resident line")
	}
	present, dirty := s.Invalidate(0x40)
	if !present || !dirty {
		t.Errorf("Invalidate = (%v,%v), want (true,true)", present, dirty)
	}
	if s.Probe(0x40) {
		t.Error("line present after invalidate")
	}
}

func TestBankImbalanceEven(t *testing.T) {
	s := MustNew(32*1024, 1, 8)
	for i := 0; i < 8*100; i++ {
		s.Access(uint64(i)*2, uint32(i*sysmodel.LineSize), mem.Read)
	}
	if got := s.Stats().BankImbalance(); got != 1.0 {
		t.Errorf("BankImbalance of round-robin traffic = %v, want 1.0", got)
	}
}

func TestBankImbalanceEmpty(t *testing.T) {
	s := MustNew(32*1024, 1, 8)
	if got := s.Stats().BankImbalance(); got != 0 {
		t.Errorf("BankImbalance with no traffic = %v, want 0", got)
	}
}

// Property: placement in the banked structure equals placement in a plain
// cache of the same size — banking must affect timing only.
func TestBankingPreservesPlacementProperty(t *testing.T) {
	f := func(addrs []uint32) bool {
		s := MustNew(8192, 1, 8)
		c := cache.MustNew(8192, 1)
		now := uint64(0)
		for _, a := range addrs {
			rs := s.Access(now, a, mem.Read)
			rc := c.Access(a, mem.Read)
			if rs.Hit != rc.Hit || rs.Evicted != rc.Evicted {
				return false
			}
			now += 10 // avoid artificial bank stalls affecting nothing
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Start is never before the issue time and wait cycles are
// consistent with the conflict counter.
func TestTimingMonotoneProperty(t *testing.T) {
	f := func(addrs []uint32, gaps []uint8) bool {
		s := MustNew(8192, 1, 4)
		now := uint64(0)
		for i, a := range addrs {
			r := s.Access(now, a, mem.Read)
			if r.Start < now {
				return false
			}
			if i < len(gaps) {
				now += uint64(gaps[i] % 4)
			}
		}
		st := s.Stats()
		return (st.BankConflicts == 0) == (st.BankWaitCycles == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSCCAccess(b *testing.B) {
	s := MustNew(64*1024, 1, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Access(uint64(i), uint32(i*sysmodel.LineSize), mem.Read)
	}
}

func TestVictimBufferCatchesConflicts(t *testing.T) {
	// Two lines aliasing in a direct-mapped cache ping-pong; a victim
	// buffer turns the repeats into hits.
	mk := func(victims int) *SCC {
		s := MustNew(4096, 1, 4)
		s.EnableVictimBuffer(victims)
		return s
	}
	base := MustNew(4096, 1, 4)
	vic := mk(4)
	now := uint64(0)
	for i := 0; i < 50; i++ {
		for _, addr := range []uint32{0x0, 0x1000} { // same set
			base.Access(now, addr, mem.Read)
			vic.Access(now, addr, mem.Read)
			now += 10
		}
	}
	if vic.Stats().VictimHits < 90 {
		t.Errorf("victim hits = %d, want nearly all of the ~98 conflict misses", vic.Stats().VictimHits)
	}
	if base.Stats().VictimHits != 0 {
		t.Error("baseline recorded victim hits")
	}
}

func TestVictimBufferInvalidation(t *testing.T) {
	s := MustNew(4096, 1, 4)
	s.EnableVictimBuffer(4)
	s.Access(0, 0x0, mem.Write)   // dirty line
	s.Access(1, 0x1000, mem.Read) // conflict-evicts it into the buffer
	present, dirty := s.Invalidate(0x0)
	if !present || !dirty {
		t.Errorf("Invalidate of a buffered dirty line = (%v,%v), want (true,true)", present, dirty)
	}
	// Once invalidated, a re-access must miss (no stale swap-back).
	r := s.Access(2, 0x0, mem.Read)
	if r.Hit {
		t.Error("stale line served from the victim buffer after invalidation")
	}
}

func TestVictimBufferSuppressesBusEviction(t *testing.T) {
	s := MustNew(4096, 1, 4)
	s.EnableVictimBuffer(4)
	s.Access(0, 0x0, mem.Write)
	r := s.Access(1, 0x1000, mem.Read)
	if r.Evicted != cache.EvictedNone {
		t.Error("eviction into the victim buffer was reported to the bus")
	}
}

// TestVictimBufferDirtyRestore is the regression test for the dirty
// swap-back: a dirty line parked in the victim buffer and then re-read
// must come back dirty WITHOUT the restore registering as a program
// write (the old implementation issued a write Access, inflating the
// write-access count and perturbing hit statistics).
func TestVictimBufferDirtyRestore(t *testing.T) {
	s := MustNew(4096, 1, 4)
	s.EnableVictimBuffer(4)
	s.Access(0, 0x0, mem.Write)   // program write: line 0x0 dirty
	s.Access(1, 0x1000, mem.Read) // conflict-evicts 0x0 into the buffer
	r := s.Access(2, 0x0, mem.Read)
	if !r.Hit {
		t.Fatal("victim buffer did not satisfy the re-read")
	}
	cs := s.CacheStats()
	if got := cs.Accesses[mem.Write]; got != 1 {
		t.Errorf("write accesses = %d, want 1 (the swap-back must not count as a write)", got)
	}
	if got := cs.Accesses[mem.Read]; got != 2 {
		t.Errorf("read accesses = %d, want 2", got)
	}
	if got := s.Stats().VictimHits; got != 1 {
		t.Errorf("victim hits = %d, want 1", got)
	}
	// The restored line must still be dirty: an invalidation (which now
	// finds it in the tag store, not the buffer) reports writeback needed.
	present, dirty := s.Invalidate(0x0)
	if !present || !dirty {
		t.Errorf("restored line Invalidate = (%v,%v), want (true,true): dirtiness lost in swap-back",
			present, dirty)
	}
}

// TestVictimBufferFIFODisplacement: the put cursor wraps (compare-and-
// reset, not modulo) and displaces the oldest entry.
func TestVictimBufferFIFODisplacement(t *testing.T) {
	v := newVictimBuffer(2)
	v.put(10, false)
	v.put(20, true)
	v.put(30, false) // wraps: displaces line 10
	if found, _ := v.take(10); found {
		t.Error("oldest entry survived displacement")
	}
	if found, dirty := v.take(20); !found || !dirty {
		t.Errorf("take(20) = (%v,%v), want (true,true)", found, dirty)
	}
	if found, _ := v.take(30); !found {
		t.Error("newest entry missing")
	}
	// Emptied slots miss.
	if found, _ := v.take(30); found {
		t.Error("taken entry still present")
	}
}

func TestResetStats(t *testing.T) {
	s := MustNew(4096, 1, 4)
	// Two back-to-back accesses to one bank: the second conflicts.
	s.Access(0, 0x0, mem.Read)
	s.Access(0, 0x1000, mem.Read)
	st := s.Stats()
	if st.BankConflicts == 0 || st.BankAccesses[0] != 2 {
		t.Fatalf("setup: conflicts=%d bank0=%d, want a conflict on bank 0",
			st.BankConflicts, st.BankAccesses[0])
	}
	s.ResetStats()
	st = s.Stats()
	if st.BankConflicts != 0 || st.BankWaitCycles != 0 || st.VictimHits != 0 {
		t.Error("scalar stats survived ResetStats")
	}
	for b, n := range st.BankAccesses {
		if n != 0 {
			t.Errorf("bank %d access count %d after reset", b, n)
		}
	}
	// Counting resumes from zero and Stats() materializes fresh counts.
	s.Access(100, 0x0, mem.Read)
	if got := s.Stats().BankAccesses[0]; got != 1 {
		t.Errorf("bank 0 accesses after reset+1 access = %d, want 1", got)
	}
}

// BenchmarkVictimBufferTake measures the linear scan on the miss path at
// the typical buffer sizes; it backs the choice of a scan over a map.
func BenchmarkVictimBufferTake(b *testing.B) {
	for _, entries := range []int{4, 8} {
		b.Run(fmt.Sprintf("entries=%d", entries), func(b *testing.B) {
			v := newVictimBuffer(entries)
			for i := 0; i < entries; i++ {
				v.put(uint32(i), false)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Alternate hit (worst slot) and miss (full scan).
				if i&1 == 0 {
					v.take(uint32(entries - 1))
					v.put(uint32(entries-1), false)
				} else {
					v.take(0xffff0000)
				}
			}
		})
	}
}
