package scc

import (
	"testing"

	"sccsim/internal/cache"
	"sccsim/internal/mem"
	"sccsim/internal/sysmodel"
)

// TestSingleStreamBankCountInvariance is a property of the banked SCC a
// single processor can witness: with one access stream (each reference
// issued when the previous one completes, so bank arbitration never
// queues), the hit/miss/eviction statistics must be identical whatever
// the bank count — banking affects only concurrency, never content.
func TestSingleStreamBankCountInvariance(t *testing.T) {
	run := func(banks int) (*cache.Stats, *Stats) {
		s := MustNew(8*1024, 1, banks)
		// Deterministic mixed read/write walk over a footprint ~3x the
		// cache, revisiting lines so hits, misses, evictions and dirty
		// write-backs all occur.
		state := uint32(0x2545F491)
		now := uint64(0)
		for i := 0; i < 20000; i++ {
			state = state*1664525 + 1013904223
			addr := ((state>>8)%1536 + 1) * sysmodel.LineSize
			kind := mem.Read
			if state&7 == 0 {
				kind = mem.Write
			}
			r := s.Access(now, addr, kind)
			now = r.Start + sysmodel.BankAccessCycles
		}
		return s.CacheStats(), s.Stats()
	}

	base, baseBank := run(1)
	for _, banks := range []int{4, 32} {
		got, bank := run(banks)
		if *got != *base {
			t.Errorf("banks=%d changed cache statistics:\n  1 bank:   %+v\n  %d banks: %+v",
				banks, *base, banks, *got)
		}
		// The serviced-access total must conserve across bankings too.
		var tot, btot uint64
		for _, n := range baseBank.BankAccesses {
			tot += n
		}
		for _, n := range bank.BankAccesses {
			btot += n
		}
		if tot != btot {
			t.Errorf("banks=%d serviced %d accesses, 1 bank serviced %d", banks, btot, tot)
		}
	}
}
