package snoop

import (
	"testing"
	"testing/quick"

	"sccsim/internal/mem"
	"sccsim/internal/scc"
	"sccsim/internal/sysmodel"
)

// fakeSCC records invalidations and lets tests control presence/dirtiness.
type fakeSCC struct {
	lines map[uint32]bool // line index -> dirty
	inval []uint32
}

func newFakeSCC() *fakeSCC { return &fakeSCC{lines: make(map[uint32]bool)} }

func (f *fakeSCC) Invalidate(addr uint32) (bool, bool) {
	li := sysmodel.LineIndex(addr)
	dirty, ok := f.lines[li]
	if ok {
		delete(f.lines, li)
		f.inval = append(f.inval, li)
	}
	return ok, dirty
}

func (f *fakeSCC) hold(addr uint32, dirty bool) {
	f.lines[sysmodel.LineIndex(addr)] = dirty
}

func newBus4() (*Bus, []*fakeSCC) {
	fs := []*fakeSCC{newFakeSCC(), newFakeSCC(), newFakeSCC(), newFakeSCC()}
	invs := make([]Invalidator, len(fs))
	for i, f := range fs {
		invs[i] = f
	}
	return New(invs), fs
}

func TestNewPanicsOnBadClusterCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(nil) did not panic")
		}
	}()
	New(nil)
}

func TestFetchLatency(t *testing.T) {
	b, _ := newBus4()
	ready := b.Fetch(1000, 0, 0x40, mem.Read)
	if want := uint64(1000 + sysmodel.MemLatency); ready != want {
		t.Errorf("Fetch ready at %d, want %d", ready, want)
	}
}

func TestReadFetchSetsPresence(t *testing.T) {
	b, _ := newBus4()
	b.Fetch(0, 2, 0x40, mem.Read)
	if got := b.Present(0x40); got != 1<<2 {
		t.Errorf("presence = %b, want %b", got, 1<<2)
	}
	b.Fetch(10, 3, 0x40, mem.Read)
	if got := b.Present(0x40); got != 1<<2|1<<3 {
		t.Errorf("presence after second read = %b, want %b", got, 1<<2|1<<3)
	}
	if b.Stats().FetchesFromSCC != 1 {
		t.Errorf("FetchesFromSCC = %d, want 1 (second fetch hits cluster 2's copy)",
			b.Stats().FetchesFromSCC)
	}
}

func TestWriteFetchInvalidatesOthers(t *testing.T) {
	b, fs := newBus4()
	b.Fetch(0, 0, 0x40, mem.Read)
	b.Fetch(0, 1, 0x40, mem.Read)
	fs[0].hold(0x40, false)
	fs[1].hold(0x40, true)
	b.Fetch(100, 2, 0x40, mem.Write)
	if got := b.Present(0x40); got != 1<<2 {
		t.Errorf("presence after write fetch = %b, want only writer %b", got, 1<<2)
	}
	s := b.Stats()
	if s.Invalidations != 2 {
		t.Errorf("Invalidations = %d, want 2", s.Invalidations)
	}
	if s.DirtyInvalidations != 1 {
		t.Errorf("DirtyInvalidations = %d, want 1", s.DirtyInvalidations)
	}
	if s.InvalidationTxns != 1 {
		t.Errorf("InvalidationTxns = %d, want 1", s.InvalidationTxns)
	}
	if len(fs[0].inval) != 1 || len(fs[1].inval) != 1 || len(fs[2].inval) != 0 {
		t.Error("wrong SCCs were invalidated")
	}
}

func TestWriteSharedBroadcast(t *testing.T) {
	b, fs := newBus4()
	b.Fetch(0, 0, 0x80, mem.Read)
	b.Fetch(0, 1, 0x80, mem.Read)
	fs[1].hold(0x80, false)
	if !b.WriteShared(50, 0, 0x80) {
		t.Error("WriteShared to a shared line reported no transaction")
	}
	if got := b.Present(0x80); got != 1 {
		t.Errorf("presence = %b, want writer only", got)
	}
	// Now exclusive: further writes are silent.
	if b.WriteShared(60, 0, 0x80) {
		t.Error("WriteShared to an exclusive line broadcast anyway")
	}
	if b.Stats().Invalidations != 1 {
		t.Errorf("Invalidations = %d, want 1", b.Stats().Invalidations)
	}
}

func TestWriteSharedUnknownLine(t *testing.T) {
	b, _ := newBus4()
	if b.WriteShared(0, 1, 0xdead0) {
		t.Error("WriteShared on a never-fetched line broadcast")
	}
}

func TestEvictedClearsPresence(t *testing.T) {
	b, _ := newBus4()
	b.Fetch(0, 0, 0x40, mem.Read)
	b.Fetch(0, 1, 0x40, mem.Read)
	b.Evicted(10, 0, sysmodel.LineIndex(0x40), false)
	if got := b.Present(0x40); got != 1<<1 {
		t.Errorf("presence after evict = %b, want %b", got, 1<<1)
	}
	if b.Stats().WriteBacks != 0 {
		t.Error("clean eviction counted as write-back")
	}
	b.Evicted(20, 1, sysmodel.LineIndex(0x40), true)
	if b.Stats().WriteBacks != 1 {
		t.Errorf("WriteBacks = %d, want 1", b.Stats().WriteBacks)
	}
}

func TestNoBusContentionByDefault(t *testing.T) {
	b, _ := newBus4()
	r1 := b.Fetch(0, 0, 0x40, mem.Read)
	r2 := b.Fetch(0, 1, 0x80, mem.Read)
	if r1 != r2 {
		t.Errorf("default model serialized fetches: %d vs %d", r1, r2)
	}
	if b.Stats().BusWaitCycles != 0 {
		t.Error("bus wait recorded with Occupancy = 0")
	}
}

func TestBusContentionWhenEnabled(t *testing.T) {
	b, _ := newBus4()
	b.Occupancy = 8
	r1 := b.Fetch(0, 0, 0x40, mem.Read)
	r2 := b.Fetch(0, 1, 0x80, mem.Read)
	if want := uint64(sysmodel.MemLatency); r1 != want {
		t.Errorf("first fetch ready at %d, want %d", r1, want)
	}
	if want := uint64(8 + sysmodel.MemLatency); r2 != want {
		t.Errorf("queued fetch ready at %d, want %d", r2, want)
	}
	if b.Stats().BusWaitCycles != 8 {
		t.Errorf("BusWaitCycles = %d, want 8", b.Stats().BusWaitCycles)
	}
}

// Integration with real SCCs: a full read-share/write-invalidate round trip.
func TestBusWithRealSCCs(t *testing.T) {
	s0 := scc.MustNew(4096, 1, 4)
	s1 := scc.MustNew(4096, 1, 4)
	b := New([]Invalidator{s0, s1})

	// Both clusters read line 0x100.
	s0.Access(0, 0x100, mem.Read)
	b.Fetch(0, 0, 0x100, mem.Read)
	s1.Access(0, 0x100, mem.Read)
	b.Fetch(0, 1, 0x100, mem.Read)

	// Cluster 0 writes it: cluster 1's copy must die.
	s0.Access(200, 0x100, mem.Write)
	b.WriteShared(200, 0, 0x100)
	if s1.Probe(0x100) {
		t.Error("cluster 1 still holds the line after cluster 0's write")
	}
	if s0.Probe(0x100) != true {
		t.Error("writer lost its own line")
	}
	if b.Stats().Invalidations != 1 {
		t.Errorf("Invalidations = %d, want 1", b.Stats().Invalidations)
	}
}

// Property: the presence mask only ever contains registered clusters, and
// after a write the writer is the sole holder.
func TestPresenceInvariantProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		b, fs := newBus4()
		for _, op := range ops {
			cluster := int(op) % 4
			addr := uint32(op>>2) % 64 * sysmodel.LineSize
			kind := mem.Read
			if op&0x8000 != 0 {
				kind = mem.Write
			}
			b.Fetch(uint64(op), cluster, addr, kind)
			fs[cluster].hold(addr, kind == mem.Write)
			mask := b.Present(addr)
			if mask>>4 != 0 {
				return false // unknown cluster bit
			}
			if kind == mem.Write && mask != 1<<uint(cluster) {
				return false // writer not exclusive
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: presence table get/set round-trips across page boundaries.
func TestPresenceTableProperty(t *testing.T) {
	f := func(lines []uint32, masks []uint8) bool {
		pt := newPresenceTable()
		want := make(map[uint32]uint32)
		for i, li := range lines {
			var m uint32
			if i < len(masks) {
				m = uint32(masks[i]) & 0xf
			}
			pt.set(li, m)
			want[li] = m
		}
		for li, m := range want {
			if pt.get(li) != m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMemBankQueueing(t *testing.T) {
	b, _ := newBus4()
	b.MemBanks = 2
	b.MemBankOccupancy = 30
	// Lines 0 and 2 both map to bank 0 (line % 2).
	r1 := b.Fetch(0, 0, 0, mem.Read)
	r2 := b.Fetch(0, 1, 2*sysmodel.LineSize, mem.Read)
	if r1 != sysmodel.MemLatency {
		t.Errorf("first fetch ready at %d", r1)
	}
	if want := uint64(30 + sysmodel.MemLatency); r2 != want {
		t.Errorf("same-bank fetch ready at %d, want %d", r2, want)
	}
	// Different bank: no queueing.
	r3 := b.Fetch(0, 2, 1*sysmodel.LineSize, mem.Read)
	if r3 != sysmodel.MemLatency {
		t.Errorf("other-bank fetch ready at %d", r3)
	}
	if b.Stats().MemBankWait != 30 {
		t.Errorf("MemBankWait = %d, want 30", b.Stats().MemBankWait)
	}
}

func TestMemBanksOffByDefault(t *testing.T) {
	b, _ := newBus4()
	r1 := b.Fetch(0, 0, 0, mem.Read)
	r2 := b.Fetch(0, 1, 0x1000, mem.Read)
	if r1 != r2 {
		t.Error("default bus serialized memory fetches")
	}
	if b.Stats().MemBankWait != 0 {
		t.Error("MemBankWait nonzero with banking disabled")
	}
}

// TestFlatPagedEquivalence drives identical operation sequences through
// a reserved (flat) bus and an unreserved (paged) bus: presence state
// and statistics must match at every step — ReserveLines is a pure
// representation change.
func TestFlatPagedEquivalence(t *testing.T) {
	flat, _ := newBus4()
	flat.ReserveLines(1 << 12)
	paged, _ := newBus4()

	ops := []struct {
		cluster int
		addr    uint32
		kind    mem.Kind
	}{
		{0, 0x40, mem.Read}, {1, 0x40, mem.Read}, {2, 0x40, mem.Write},
		{3, 0x1000, mem.Write}, {0, 0x1000, mem.Read},
		// Beyond the flat bound: exercises the paged fallback on both.
		{1, (1 << 12) * sysmodel.LineSize, mem.Write},
		{2, (1 << 12) * sysmodel.LineSize, mem.Read},
	}
	for i, op := range ops {
		now := uint64(i * 200)
		f := flat.Fetch(now, op.cluster, op.addr, op.kind)
		p := paged.Fetch(now, op.cluster, op.addr, op.kind)
		if f != p {
			t.Fatalf("op %d: ready time %d (flat) vs %d (paged)", i, f, p)
		}
		if fm, pm := flat.Present(op.addr), paged.Present(op.addr); fm != pm {
			t.Fatalf("op %d: presence %#x (flat) vs %#x (paged)", i, fm, pm)
		}
	}
	flat.WriteShared(2000, 0, 0x1000)
	paged.WriteShared(2000, 0, 0x1000)
	flat.Evicted(2100, 2, sysmodel.LineIndex(0x40), true)
	paged.Evicted(2100, 2, sysmodel.LineIndex(0x40), true)
	if *flat.Stats() != *paged.Stats() {
		t.Errorf("stats diverged:\nflat:  %+v\npaged: %+v", *flat.Stats(), *paged.Stats())
	}
}

// TestReserveLinesMigratesState: presence recorded while paged survives
// a mid-simulation switch to the flat table.
func TestReserveLinesMigratesState(t *testing.T) {
	b, _ := newBus4()
	b.Fetch(0, 0, 0x40, mem.Read)
	b.Fetch(0, 1, 0x40, mem.Read)
	before := b.Present(0x40)
	if before != 0b11 {
		t.Fatalf("setup: presence %#x, want 0b11", before)
	}
	b.ReserveLines(1 << 10)
	if got := b.Present(0x40); got != before {
		t.Errorf("presence %#x after reserve, want %#x", got, before)
	}
	// The migrated line is now served by the flat array.
	if li := sysmodel.LineIndex(0x40); b.presence.flat[li] != before {
		t.Errorf("flat[%d] = %#x, want %#x", li, b.presence.flat[li], before)
	}
	// Oversized requests are ignored, keeping whatever table exists.
	b.ReserveLines(MaxFlatLines + 1)
	if got := uint32(len(b.presence.flat)); got != 1<<10 {
		t.Errorf("flat table resized to %d by an oversized request", got)
	}
}

// TestMaybeShared pins the inlinable probe's contract: false only when
// the flat table proves no other holder; unknown lines report true.
func TestMaybeShared(t *testing.T) {
	b, _ := newBus4()
	// No flat table yet: everything is conservatively "maybe".
	if !b.MaybeShared(0x40, 0) {
		t.Error("paged-only bus claimed a line is private")
	}
	b.ReserveLines(1 << 10)
	if b.MaybeShared(0x40, 0) {
		t.Error("unfetched line inside the flat bound reported shared")
	}
	b.Fetch(0, 0, 0x40, mem.Read)
	if b.MaybeShared(0x40, 0) {
		t.Error("exclusively-held line reported shared to its holder")
	}
	if !b.MaybeShared(0x40, 1) {
		t.Error("line held by cluster 0 reported private to cluster 1")
	}
	b.Fetch(100, 1, 0x40, mem.Read)
	if !b.MaybeShared(0x40, 0) {
		t.Error("shared line reported private")
	}
	// Beyond the flat bound: conservative true even when untouched.
	if !b.MaybeShared((1<<10)*sysmodel.LineSize, 0) {
		t.Error("line beyond the flat bound reported private")
	}
	// MaybeShared == false must imply WriteShared is a no-op: the probe
	// exists so callers can skip the call, and skipping must match calling.
	b.Fetch(0, 2, 0x2040, mem.Read)
	if b.MaybeShared(0x2040, 2) {
		t.Fatal("exclusively-fetched line reported shared")
	}
	if b.WriteShared(0, 2, 0x2040) {
		t.Error("WriteShared transacted on a line the probe called private")
	}
}

// recordingVerifier captures Verifier callbacks for assertion.
type recordingVerifier struct {
	fetches, writeShareds, evicts []uint32
}

func (v *recordingVerifier) AfterFetch(now uint64, cluster int, addr uint32, kind mem.Kind) {
	v.fetches = append(v.fetches, addr)
}
func (v *recordingVerifier) AfterWriteShared(now uint64, cluster int, addr uint32) {
	v.writeShareds = append(v.writeShareds, addr)
}
func (v *recordingVerifier) AfterEvicted(now uint64, cluster int, lineIndex uint32, dirty bool) {
	v.evicts = append(v.evicts, lineIndex)
}

func TestVerifierObservesStateChanges(t *testing.T) {
	b, fs := newBus4()
	v := &recordingVerifier{}
	b.Verifier = v

	b.Fetch(0, 0, 0x40, mem.Read)
	fs[1].hold(0x40, false)
	b.Fetch(0, 1, 0x40, mem.Read)
	b.WriteShared(10, 1, 0x40) // cluster 0 holds it: broadcast, reported
	if b.WriteShared(20, 1, 0x40) {
		t.Fatal("second WriteShared transacted")
	}
	b.Evicted(30, 1, sysmodel.LineIndex(0x40), true)

	if len(v.fetches) != 2 {
		t.Errorf("verifier saw %d fetches, want 2", len(v.fetches))
	}
	if len(v.writeShareds) != 1 {
		t.Errorf("verifier saw %d write-shared broadcasts, want 1 (the early-out must not report)", len(v.writeShareds))
	}
	if len(v.evicts) != 1 || v.evicts[0] != sysmodel.LineIndex(0x40) {
		t.Errorf("verifier saw evictions %v, want the one line", v.evicts)
	}
}

func TestVisitPresenceCoversFlatAndPages(t *testing.T) {
	b, _ := newBus4()
	b.ReserveLines(64)
	b.Fetch(0, 0, 5*sysmodel.LineSize, mem.Read)    // flat
	b.Fetch(0, 1, 9000*sysmodel.LineSize, mem.Read) // paged (beyond the bound)
	got := map[uint32]uint32{}
	b.VisitPresence(func(li, mask uint32) { got[li] = mask })
	if got[5] != 1 || got[9000] != 2 || len(got) != 2 {
		t.Fatalf("VisitPresence saw %v, want lines 5 (mask 1) and 9000 (mask 2)", got)
	}
}

func TestPresenceConsistencyDetectsDuplicateState(t *testing.T) {
	b, _ := newBus4()
	b.Fetch(0, 0, 5*sysmodel.LineSize, mem.Read)
	b.ReserveLines(64)
	if err := b.PresenceConsistency(); err != nil {
		t.Fatalf("migrated table reported inconsistent: %v", err)
	}
	// Seed the bug ReserveLines' migration is guarding against: state for
	// a flat-covered line left behind in the paged map, so get (flat) and
	// a hypothetical stale reader (page) disagree. Only reachable by
	// poking the representation directly — which is the point: the
	// invariant holds through the public API and the checker proves it
	// stays held.
	page := make([]uint32, 1<<pageShift)
	page[5] = 0b10
	b.presence.pages[0] = page
	if err := b.PresenceConsistency(); err == nil {
		t.Fatal("duplicate flat/paged state not detected")
	}
}

func TestSetPresenceSeamRoundTrips(t *testing.T) {
	b, _ := newBus4()
	b.SetPresence(0x80, 0b1010)
	if got := b.Present(0x80); got != 0b1010 {
		t.Fatalf("SetPresence wrote %#b, Present read %#b", 0b1010, got)
	}
}
