// Package snoop implements the inter-cluster coherence substrate: the
// shared bus over which the four Shared Cluster Caches are kept coherent
// with a write-invalidate snooping protocol (Section 2.2.2 of the paper).
//
// "A write to a line in a particular SCC causes that line to be
// invalidated, if present, in each of the other SCCs. ... the latency to
// fetch a cache line from main memory or from another SCC over the snoopy
// bus is fixed at 100 cycles."
//
// The protocol is implemented with a presence table (one bit per cluster
// per line), which is functionally identical to having every SCC snoop
// every bus transaction, and lets the simulator report exactly the
// statistics the paper uses: the number of invalidations actually
// performed. Bus bandwidth contention is off by default — the paper models
// a fixed 100-cycle transfer and considers contention only at the SCC
// banks — but can be enabled (Occupancy > 0) for ablation studies.
package snoop

import (
	"fmt"

	"sccsim/internal/mem"
	"sccsim/internal/sysmodel"
)

// Invalidator is the view of an SCC the bus needs: the ability to kill a
// resident line. (*scc.SCC) satisfies it.
type Invalidator interface {
	// Invalidate removes the line containing addr if present, reporting
	// whether it was present and dirty.
	Invalidate(addr uint32) (present, dirty bool)
}

// Stats accumulates coherence-traffic statistics.
type Stats struct {
	// Fetches counts line transfers into an SCC (read and write misses).
	Fetches uint64
	// FetchesFromSCC counts fetches satisfied by another SCC rather than
	// main memory (the line was present in some other cluster).
	FetchesFromSCC uint64
	// InvalidationTxns counts bus invalidation broadcasts (one per write
	// that found the line shared).
	InvalidationTxns uint64
	// Invalidations counts line copies actually invalidated in other
	// SCCs — the paper's "total number of invalidations actually
	// performed in the system".
	Invalidations uint64
	// DirtyInvalidations counts invalidated copies that were dirty
	// (ownership transfer with data).
	DirtyInvalidations uint64
	// WriteBacks counts dirty evictions written back over the bus.
	WriteBacks uint64
	// BusWaitCycles is total cycles transactions waited for the bus
	// (only nonzero when Occupancy > 0).
	BusWaitCycles uint64
	// IntraClusterFetches counts fetches satisfied over the fast
	// intra-cluster bus (private-cache organization only).
	IntraClusterFetches uint64
	// MemBankWait is total cycles fetches queued behind busy memory
	// banks (banked-memory ablation only).
	MemBankWait uint64
}

// Verifier observes coherence-state transitions for invariant checking.
// Each method is called after the bus has fully applied the transition
// (presence updated, invalidations performed), so the verifier sees the
// post-state. Implementations must not call back into the bus's mutating
// methods. nil (the default) disables verification; every call site is
// behind a nil check, so the unverified hot path pays only the branch —
// the same contract as Hook.
type Verifier interface {
	// AfterFetch observes a completed Fetch: cluster now holds addr's
	// line; a write fetch has invalidated every other copy.
	AfterFetch(now uint64, cluster int, addr uint32, kind mem.Kind)
	// AfterWriteShared observes a WriteShared that actually broadcast an
	// invalidation (the private-line early-out is not reported: it
	// changes no state).
	AfterWriteShared(now uint64, cluster int, addr uint32)
	// AfterEvicted observes an eviction notice: cluster's presence bit
	// for lineIndex is now clear.
	AfterEvicted(now uint64, cluster int, lineIndex uint32, dirty bool)
}

// TxnKind classifies a bus transaction for the tracing hook.
type TxnKind uint8

const (
	// TxnFetch is a line transfer into a cache (read or write miss).
	TxnFetch TxnKind = iota
	// TxnInvalidate is an invalidation broadcast.
	TxnInvalidate
	// TxnWriteBack is a dirty eviction written back to memory.
	TxnWriteBack
)

// Bus is the snoopy inter-cluster bus plus the coherence state.
type Bus struct {
	sccs     []Invalidator
	presence *presenceTable
	stats    Stats

	// Hook, when non-nil, observes every bus transaction at its grant
	// time: the kind, the grant cycle, the transaction's latency in
	// cycles (0 for logically-instant invalidations and write-backs),
	// the requesting cache/cluster, and the address. It is called inline
	// from the simulation hot path, must be cheap, and must not call
	// back into the bus. nil (the default) disables the hook at the cost
	// of one branch per transaction.
	Hook func(kind TxnKind, start, dur uint64, cluster int, addr uint32)

	// Verifier, when non-nil, observes every coherence-state transition
	// after it is applied (see the Verifier interface). Set by the
	// simulator when sim.Options.Verify is enabled.
	Verifier Verifier

	// Occupancy is the number of cycles each bus transaction holds the
	// bus. Zero reproduces the paper's fixed-latency model with no bus
	// queueing.
	Occupancy int
	freeAt    uint64

	// GroupOf and IntraLatency support the paper's alternative cluster
	// organization (private per-processor caches on a fast intra-cluster
	// bus): when GroupOf is non-nil, a fetch that finds the line in a
	// cache of the requester's own group completes in IntraLatency
	// cycles instead of MemLatency. GroupOf[i] is the group (cluster) of
	// cache i.
	GroupOf      []int
	IntraLatency int

	// MemBanks/MemBankOccupancy, when positive, model line-interleaved
	// main-memory banks: each memory fetch occupies its bank for
	// MemBankOccupancy cycles, and concurrent fetches to the same bank
	// queue. The paper assumes a flat 100-cycle memory (MemBanks = 0);
	// this is an ablation of that assumption.
	MemBanks         int
	MemBankOccupancy int
	memBankFree      []uint64

	// lineShift is log2 of the line size the connected caches use; line
	// index = addr >> lineShift. New defaults it to the paper's 16-byte
	// lines; SetLineBytes overrides it for the line-size sweep axis.
	lineShift uint32
}

// New creates a bus connecting the given SCCs. The slice index is the
// cluster id used in all subsequent calls.
func New(sccs []Invalidator) *Bus {
	if len(sccs) == 0 || len(sccs) > 32 {
		panic(fmt.Sprintf("snoop: %d clusters, want 1..32", len(sccs)))
	}
	b := &Bus{sccs: sccs, presence: newPresenceTable()}
	for lb := sysmodel.LineSize; lb > 1; lb >>= 1 {
		b.lineShift++
	}
	return b
}

// SetLineBytes tells the bus the line size (a power of two) its caches
// use, so presence is tracked at the same line granularity. Call before
// simulation starts; the default is the paper's 16-byte line.
func (b *Bus) SetLineBytes(lineBytes int) {
	b.lineShift = 0
	for lb := lineBytes; lb > 1; lb >>= 1 {
		b.lineShift++
	}
}

// Clusters returns the number of clusters on the bus.
func (b *Bus) Clusters() int { return len(b.sccs) }

// SetInvalidator replaces cluster i's invalidator. The hybrid hierarchy
// uses this to wrap the SCC so an inter-cluster invalidation also kills
// the cluster's L1 copies (multi-level inclusion). Call before
// simulation starts.
func (b *Bus) SetInvalidator(i int, inv Invalidator) { b.sccs[i] = inv }

// MaxFlatLines bounds the direct-indexed presence table at 1<<22 lines
// (a 16 MiB table covering 128 MiB of address space). Footprints beyond
// that keep the paged representation.
const MaxFlatLines = 1 << 22

// ReserveLines switches the presence table to a direct-indexed array
// covering line indices [0, lines). Callers that know the trace's
// footprint up front (a compiled trace records its max line index) use
// this to replace the per-access map lookup — paid on every fetch, write
// hit to a shared line, and eviction — with a bounds-checked array index.
// Lines at or beyond the reserved bound still fall back to the paged
// map, so the call is a pure optimization: coherence behavior is
// identical either way. Requests larger than MaxFlatLines are ignored.
// Any state already in the paged table is migrated, so the call is
// correct (if pointless) mid-simulation.
func (b *Bus) ReserveLines(lines uint32) {
	b.presence.reserve(lines)
}

// Stats returns the accumulated coherence statistics.
func (b *Bus) Stats() *Stats { return &b.stats }

// acquire models bus arbitration when Occupancy > 0 and returns the grant
// time for a transaction issued at now.
func (b *Bus) acquire(now uint64) uint64 {
	if b.Occupancy <= 0 {
		return now
	}
	start := now
	if b.freeAt > start {
		b.stats.BusWaitCycles += b.freeAt - start
		start = b.freeAt
	}
	b.freeAt = start + uint64(b.Occupancy)
	return start
}

// Fetch services a miss: cluster fetches the line containing addr at cycle
// now, for an access of the given kind. It updates presence, performs any
// invalidations a write requires, and returns the cycle at which the line
// is available in the requesting SCC.
func (b *Bus) Fetch(now uint64, cluster int, addr uint32, kind mem.Kind) uint64 {
	start := b.acquire(now)
	b.stats.Fetches++
	li := addr >> b.lineShift
	mask := b.presence.get(li)
	self := uint32(1) << uint(cluster)
	if mask&^self != 0 {
		b.stats.FetchesFromSCC++
	}
	latency := uint64(sysmodel.MemLatency)
	if b.GroupOf != nil && b.IntraLatency > 0 {
		// Private-cache organization: a copy held by a same-group cache
		// is transferred over the fast intra-cluster bus.
		others := mask &^ self
		for c := 0; others != 0; c++ {
			bit := uint32(1) << uint(c)
			if others&bit != 0 {
				others &^= bit
				if b.GroupOf[c] == b.GroupOf[cluster] {
					latency = uint64(b.IntraLatency)
					b.stats.IntraClusterFetches++
					break
				}
			}
		}
	}
	if latency == sysmodel.MemLatency && b.MemBanks > 0 && b.MemBankOccupancy > 0 {
		// Banked main memory: queue behind a busy bank.
		if b.memBankFree == nil {
			b.memBankFree = make([]uint64, b.MemBanks)
		}
		bank := li % uint32(b.MemBanks)
		if f := b.memBankFree[bank]; f > start {
			b.stats.MemBankWait += f - start
			start = f
		}
		b.memBankFree[bank] = start + uint64(b.MemBankOccupancy)
	}
	if kind == mem.Write {
		b.invalidateOthers(li, addr, cluster, mask)
		b.presence.set(li, self)
	} else {
		b.presence.set(li, mask|self)
	}
	if b.Hook != nil {
		b.Hook(TxnFetch, start, latency, cluster, addr)
	}
	if b.Verifier != nil {
		b.Verifier.AfterFetch(start, cluster, addr, kind)
	}
	return start + latency
}

// WriteShared services a write hit to a line that may be shared: if any
// other cluster holds the line, an invalidation is broadcast. It returns
// true if a bus transaction was needed. Invalidation completes logically
// at once (the paper does not charge the writer for invalidation latency;
// the cost shows up as the victims' later misses).
func (b *Bus) WriteShared(now uint64, cluster int, addr uint32) bool {
	li := addr >> b.lineShift
	mask := b.presence.get(li)
	self := uint32(1) << uint(cluster)
	if mask&^self == 0 {
		return false
	}
	b.acquire(now)
	b.invalidateOthers(li, addr, cluster, mask)
	b.presence.set(li, self)
	if b.Hook != nil {
		b.Hook(TxnInvalidate, now, 0, cluster, addr)
	}
	if b.Verifier != nil {
		b.Verifier.AfterWriteShared(now, cluster, addr)
	}
	return true
}

// MaybeShared reports whether the line containing addr might be held by
// a cluster other than cluster: false only when the flat presence table
// covers the line and records no other holder. It is WriteShared's
// early-out lifted into an inlinable probe — WriteShared itself is over
// the inlining budget, so a caller on a hot write-hit path uses this to
// skip the call entirely on the common private-line case (skipping is
// exactly what WriteShared would have done: no state change, no
// statistics). Lines outside the flat table conservatively report true.
func (b *Bus) MaybeShared(addr uint32, cluster int) bool {
	li := addr >> b.lineShift
	flat := b.presence.flat
	if li < uint32(len(flat)) {
		return flat[li]&^(uint32(1)<<uint(cluster)) != 0
	}
	return true
}

// invalidateOthers kills the line in every cluster in mask except the
// writer and accounts for the traffic.
func (b *Bus) invalidateOthers(li uint32, addr uint32, cluster int, mask uint32) {
	self := uint32(1) << uint(cluster)
	others := mask &^ self
	if others == 0 {
		return
	}
	b.stats.InvalidationTxns++
	for c := 0; others != 0; c++ {
		bit := uint32(1) << uint(c)
		if others&bit == 0 {
			continue
		}
		others &^= bit
		present, dirty := b.sccs[c].Invalidate(addr)
		if present {
			b.stats.Invalidations++
			if dirty {
				b.stats.DirtyInvalidations++
			}
		}
	}
}

// Evicted informs the bus that cluster dropped the line containing addr
// (capacity/conflict eviction), clearing its presence bit. Dirty evictions
// consume a write-back transaction.
func (b *Bus) Evicted(now uint64, cluster int, lineIndex uint32, dirty bool) {
	mask := b.presence.get(lineIndex)
	b.presence.set(lineIndex, mask&^(uint32(1)<<uint(cluster)))
	if dirty {
		b.acquire(now)
		b.stats.WriteBacks++
		if b.Hook != nil {
			b.Hook(TxnWriteBack, now, 0, cluster, lineIndex<<b.lineShift)
		}
	}
	if b.Verifier != nil {
		b.Verifier.AfterEvicted(now, cluster, lineIndex, dirty)
	}
}

// Present reports which clusters currently hold the line containing addr,
// as a bitmask. Exposed for tests and invariant checks.
func (b *Bus) Present(addr uint32) uint32 {
	return b.presence.get(addr >> b.lineShift)
}

// VisitPresence calls fn for every line with a nonzero presence mask —
// flat table first, then the paged overflow in unspecified page order.
// Used by the invariant checker's end-of-run residency audit.
func (b *Bus) VisitPresence(fn func(lineIndex uint32, mask uint32)) {
	for li, mask := range b.presence.flat {
		if mask != 0 {
			fn(uint32(li), mask)
		}
	}
	for pn, page := range b.presence.pages {
		base := pn << pageShift
		for off, mask := range page {
			if mask != 0 {
				fn(base+uint32(off), mask)
			}
		}
	}
}

// PresenceConsistency checks the flat/paged representation boundary: a
// line index covered by the flat table must carry no state in the paged
// map (ReserveLines migrates and zeroes page entries; a nonzero leftover
// would make get and set disagree about which copy is authoritative).
// Returns nil when consistent.
func (b *Bus) PresenceConsistency() error {
	flat := uint32(len(b.presence.flat))
	for pn, page := range b.presence.pages {
		base := pn << pageShift
		for off, mask := range page {
			if li := base + uint32(off); mask != 0 && li < flat {
				return fmt.Errorf("snoop: line %d holds presence mask %#x in the paged table below the flat bound %d",
					li, mask, flat)
			}
		}
	}
	return nil
}

// SetPresence overwrites the presence mask of addr's line. It exists
// solely as a fault-injection seam for invariant-checker tests (seeding
// a corrupted presence table that the checker must catch); the simulator
// never calls it.
func (b *Bus) SetPresence(addr uint32, mask uint32) {
	b.presence.set(addr>>b.lineShift, mask)
}

// presenceTable maps line index -> cluster bitmask. Two representations:
// a direct-indexed flat array for line indices below the reserved bound
// (see Bus.ReserveLines), and 4096-line pages in a map for everything
// else. The flat array is the hot path — the paged map only exists so
// unreserved footprints and out-of-bound stragglers stay correct.
type presenceTable struct {
	flat  []uint32
	pages map[uint32][]uint32
}

const pageShift = 12 // 4096 lines (64 KB of address space) per page

func newPresenceTable() *presenceTable {
	return &presenceTable{pages: make(map[uint32][]uint32)}
}

func (t *presenceTable) reserve(lines uint32) {
	if lines == 0 || lines > MaxFlatLines || uint32(len(t.flat)) >= lines {
		return
	}
	flat := make([]uint32, lines)
	copy(flat, t.flat)
	for pn, p := range t.pages {
		base := pn << pageShift
		for off, mask := range p {
			if li := base + uint32(off); mask != 0 && li < lines {
				flat[li] = mask
				p[off] = 0
			}
		}
	}
	t.flat = flat
}

func (t *presenceTable) get(li uint32) uint32 {
	if li < uint32(len(t.flat)) {
		return t.flat[li]
	}
	p, ok := t.pages[li>>pageShift]
	if !ok {
		return 0
	}
	return p[li&(1<<pageShift-1)]
}

func (t *presenceTable) set(li uint32, mask uint32) {
	if li < uint32(len(t.flat)) {
		t.flat[li] = mask
		return
	}
	pn := li >> pageShift
	p, ok := t.pages[pn]
	if !ok {
		if mask == 0 {
			return
		}
		p = make([]uint32, 1<<pageShift)
		t.pages[pn] = p
	}
	p[li&(1<<pageShift-1)] = mask
}
