package search

import "sort"

// ParetoIndices returns the indices of the non-dominated rows of pts,
// ascending. Every row is one point's objective vector under
// minimization: q dominates p when q is no worse in every component and
// strictly better in at least one. Identical vectors do not dominate
// each other, so exact ties all stay on the frontier. Rows must share a
// length; a nil or empty input returns nil.
//
// This is the one Pareto implementation in the tree: the search runner,
// costperf.ParetoFront and the CLI's -pareto all extract through it.
func ParetoIndices(pts [][]float64) []int {
	switch {
	case len(pts) == 0:
		return nil
	case len(pts[0]) == 2:
		return pareto2D(pts)
	}
	var out []int
	for i, p := range pts {
		dominated := false
		for j, q := range pts {
			if i != j && dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

// dominates reports whether q dominates p under minimization.
func dominates(q, p []float64) bool {
	strict := false
	for k := range q {
		if q[k] > p[k] {
			return false
		}
		if q[k] < p[k] {
			strict = true
		}
	}
	return strict
}

// pareto2D is the O(n log n) two-objective fast path: sort by the first
// component and sweep the best second component seen so far. Points are
// processed in groups of equal first component so that equal-x points
// only dominate each other through a strictly better y.
func pareto2D(pts [][]float64) []int {
	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := pts[order[a]], pts[order[b]]
		if pa[0] != pb[0] {
			return pa[0] < pb[0]
		}
		return pa[1] < pb[1]
	})
	var out []int
	prevBest := false // whether bestY is meaningful yet
	var bestY float64 // best second component among strictly smaller x
	for g := 0; g < len(order); {
		h := g
		x := pts[order[g]][0]
		for h < len(order) && pts[order[h]][0] == x {
			h++
		}
		groupMinY := pts[order[g]][1] // group sorted by y ascending
		for _, i := range order[g:h] {
			y := pts[i][1]
			// Dominated by a strictly-smaller-x point with y <= ours, or
			// by an equal-x point with strictly smaller y.
			if (prevBest && bestY <= y) || y > groupMinY {
				continue
			}
			out = append(out, i)
		}
		if !prevBest || groupMinY < bestY {
			prevBest, bestY = true, groupMinY
		}
		g = h
	}
	sort.Ints(out)
	return out
}
