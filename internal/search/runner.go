package search

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand"
	"sort"

	"sccsim/internal/area"
	"sccsim/internal/obs"
	"sccsim/internal/pipeline"
)

// Evaluator is the search's window onto the simulation backends. Both
// methods answer positionally: result i belongs to cands[i]. Estimate
// is the analytic backend's one-pass-all-sizes cycle estimate (cheap,
// called for thousands of candidates); Exact is the exact simulator
// (expensive, called only for candidates the pipeline could not prune).
// Implementations must be deterministic in the candidate list — the
// runner's reproducibility guarantee is theirs to keep.
type Evaluator interface {
	// Estimate returns analytic cycle estimates for the candidates.
	Estimate(ctx context.Context, cands []Candidate) ([]uint64, error)
	// Exact returns exact simulated cycle counts for the candidates.
	Exact(ctx context.Context, cands []Candidate) ([]uint64, error)
}

// Progress is one live update from a running search. Phases are
// "triage" (analytic estimation and pruning, Done/Total count
// candidates) and "exact"/"local" (simulation rounds, Done counts
// simulations against the Total planned).
type Progress struct {
	// Phase names the pipeline stage.
	Phase string `json:"phase"`
	// Round is the 1-based exact-simulation round, 0 before the first.
	Round int `json:"round"`
	// Done and Total are the stage's progress counters.
	Done  int `json:"done"`
	Total int `json:"total"`
	// ExactSims is the running exact-simulation count.
	ExactSims int `json:"exact_sims"`
}

// PointResult is one candidate the search confirmed by exact
// simulation, priced with the Section 4 rules (the same formulas as
// costperf.FrontierPoint).
type PointResult struct {
	Candidate
	// Clusters is the system's cluster count (the workload fixes it).
	Clusters int `json:"clusters"`
	// LoadLatency is the load latency the implementation implies.
	LoadLatency int `json:"load_latency"`
	// EstCycles is the analytic triage estimate (0 when the strategy
	// skipped estimation, e.g. exhaustive).
	EstCycles uint64 `json:"est_cycles,omitempty"`
	// Cycles is the exact simulated cycle count.
	Cycles uint64 `json:"cycles"`
	// AdjCycles is Cycles scaled by the load-latency factor.
	AdjCycles float64 `json:"adj_cycles"`
	// ClusterMM2 and SystemMM2 price one cluster and the whole system.
	ClusterMM2 float64 `json:"cluster_mm2"`
	SystemMM2  float64 `json:"system_mm2"`
	// Perf is 1e9/AdjCycles; CostPerf is Perf per 1000 mm².
	Perf     float64 `json:"perf"`
	CostPerf float64 `json:"cost_perf"`
}

// Stats counts what each pipeline stage did — the search's efficiency
// claim in numbers.
type Stats struct {
	// SpaceSize is the enumerated candidate count.
	SpaceSize int `json:"space_size"`
	// StaticPruned were removed before any modeling (area infeasibility
	// or static constraints).
	StaticPruned int `json:"static_pruned"`
	// TriagePruned were removed by the analytic margin test; Plausible
	// survived it.
	TriagePruned int `json:"triage_pruned"`
	Plausible    int `json:"plausible"`
	// Sampled is the random strategy's initial sample size (0 otherwise).
	Sampled int `json:"sampled,omitempty"`
	// AnalyticEvals and ExactSims count backend calls.
	AnalyticEvals int `json:"analytic_evals"`
	ExactSims     int `json:"exact_sims"`
	// Abandoned counts candidates dropped mid-halving because an exact
	// result already dominated them.
	Abandoned int `json:"abandoned"`
	// Rounds is the number of exact-simulation batches.
	Rounds int `json:"rounds"`
	// Strategy, Margin, Budget and Seed echo the resolved inputs.
	Strategy string  `json:"strategy"`
	Margin   float64 `json:"margin"`
	Budget   int     `json:"budget"`
	Seed     int64   `json:"seed"`
}

// Result is a completed search: the exact-confirmed Pareto frontier
// (sorted by system area), every exact-simulated point, and the stage
// accounting.
type Result struct {
	// Workload names the searched workload.
	Workload string `json:"workload"`
	// Frontier is the Pareto frontier over the spec's objectives,
	// every point exact-simulated, sorted by system area ascending.
	Frontier []PointResult `json:"frontier"`
	// Best is the frontier point with the highest cost/performance.
	Best *PointResult `json:"best,omitempty"`
	// Evaluated lists every exact-simulated point in axis order.
	Evaluated []PointResult `json:"evaluated,omitempty"`
	// Stats is the stage accounting.
	Stats Stats `json:"stats"`
}

// Runner executes searches against one workload's evaluator. The
// pricing context (Workload for the load-latency factor, Clusters for
// system area) must match what the evaluator simulates.
type Runner struct {
	// Eval answers analytic and exact queries.
	Eval Evaluator
	// Workload names the workload for the pipeline time factor.
	Workload string
	// Clusters is the system's cluster count.
	Clusters int
	// DefaultMargin is the triage margin when the spec leaves Margin 0
	// (the facade supplies the per-workload calibrated value); 0 falls
	// back to a conservative 0.35.
	DefaultMargin float64
	// Metrics, Logger and Progress are optional instrumentation; all
	// are nil-disabled.
	Metrics  *obs.Registry
	Logger   *slog.Logger
	Progress func(Progress)
}

// candState is one candidate's full pipeline state.
type candState struct {
	Candidate
	d                     area.ChipDesign
	clusterMM2, systemMM2 float64
	factor                float64
	est                   uint64
	estimated             bool
	exact                 uint64
	simmed                bool
}

// adj returns the candidate's best-known adjusted cycles: exact if
// simulated, else the analytic estimate.
func (c *candState) adj() float64 {
	if c.simmed {
		return float64(c.exact) * c.factor
	}
	return float64(c.est) * c.factor
}

// Run executes the spec and returns the confirmed frontier. The error
// paths are spec validation, evaluator failures and context
// cancellation; an over-constrained space returns an empty frontier.
func (r *Runner) Run(ctx context.Context, spec Spec) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if r.Eval == nil {
		return nil, fmt.Errorf("search: runner has no evaluator")
	}
	clusters := r.Clusters
	if clusters < 1 {
		clusters = 1
	}
	margin := spec.Margin
	if margin == 0 {
		margin = r.DefaultMargin
	}
	if margin == 0 {
		margin = 0.35
	}
	objs := spec.objectives()

	cands, err := spec.Space.Enumerate()
	if err != nil {
		return nil, err
	}
	st := Stats{SpaceSize: len(cands), Margin: margin, Budget: spec.Budget, Seed: spec.Seed}

	strategy := spec.Strategy
	if strategy == "" || strategy == StrategyAuto {
		strategy = StrategyAdaptive
		if len(cands) > autoRandomThreshold {
			strategy = StrategyRandom
		}
	}
	st.Strategy = string(strategy)

	tr := obs.TraceFrom(ctx)
	sp := tr.StartSpan("search.static")
	feas := r.staticStage(cands, spec.Constraints, clusters)
	st.StaticPruned = len(cands) - len(feas)
	sp.SetAttr("space", fmt.Sprint(len(cands)))
	sp.SetAttr("pruned", fmt.Sprint(st.StaticPruned))
	sp.End()

	s := &searchRun{r: r, spec: spec, objs: objs, margin: margin, clusters: clusters, st: &st, tr: tr}
	switch strategy {
	case StrategyExhaustive:
		err = s.runExhaustive(ctx, feas)
	case StrategyRandom:
		err = s.runRandom(ctx, feas)
	default:
		err = s.runAdaptive(ctx, feas)
	}
	if err != nil {
		return nil, err
	}

	res := s.assemble()
	r.publish(&st)
	if r.Logger != nil {
		r.Logger.Info("search done",
			"workload", r.Workload, "strategy", st.Strategy,
			"space", st.SpaceSize, "static_pruned", st.StaticPruned,
			"triage_pruned", st.TriagePruned, "exact_sims", st.ExactSims,
			"frontier", len(res.Frontier))
	}
	return res, nil
}

// staticStage prices every candidate and keeps the buildable ones that
// satisfy the statically decidable constraints.
func (r *Runner) staticStage(cands []Candidate, cons []Constraint, clusters int) []*candState {
	var out []*candState
	for _, c := range cands {
		d, err := area.Custom(c.PPC, c.SCCBytes)
		if err != nil || !d.Fits() || d.SignalPads > 1500 {
			continue
		}
		cs := &candState{
			Candidate:  c,
			d:          d,
			clusterMM2: d.ClusterArea(),
			factor:     pipeline.RelTimeFor(r.Workload, d.LoadLatency),
		}
		cs.systemMM2 = cs.clusterMM2 * float64(clusters)
		if !staticOK(cs, cons) {
			continue
		}
		out = append(out, cs)
	}
	return out
}

// staticOK applies the constraints decidable without any simulation.
func staticOK(c *candState, cons []Constraint) bool {
	for _, con := range cons {
		var v float64
		switch con.Metric {
		case "area_mm2":
			v = c.systemMM2
		case "cluster_mm2":
			v = c.clusterMM2
		case "scc_bytes":
			v = float64(c.SCCBytes)
		case "procs_per_cluster":
			v = float64(c.PPC)
		default:
			continue
		}
		if !within(v, con) {
			return false
		}
	}
	return true
}

func within(v float64, con Constraint) bool {
	if con.Min != 0 && v < con.Min {
		return false
	}
	if con.Max != 0 && v > con.Max {
		return false
	}
	return true
}

// searchRun is one Run's mutable state shared by the strategy bodies.
type searchRun struct {
	r        *Runner
	spec     Spec
	objs     []Objective
	margin   float64
	clusters int
	st       *Stats
	tr       *obs.Trace
	simmed   []*candState
}

func (s *searchRun) progress(p Progress) {
	p.ExactSims = s.st.ExactSims
	if s.r.Progress != nil {
		s.r.Progress(p)
	}
}

// estimate fills the analytic estimates for cands via one evaluator
// call.
func (s *searchRun) estimate(ctx context.Context, cands []*candState) error {
	if len(cands) == 0 {
		return nil
	}
	sp := s.tr.StartSpan("search.triage")
	defer sp.End()
	plain := make([]Candidate, len(cands))
	for i, c := range cands {
		plain[i] = c.Candidate
	}
	ests, err := s.r.Eval.Estimate(ctx, plain)
	if err != nil {
		return fmt.Errorf("search: analytic triage: %w", err)
	}
	for i, c := range cands {
		c.est, c.estimated = ests[i], true
	}
	s.st.AnalyticEvals += len(cands)
	sp.SetAttr("estimated", fmt.Sprint(len(cands)))
	return nil
}

// exactBatch simulates one batch and folds the results in. left is how
// many candidates are still queued behind this batch (for the progress
// total).
func (s *searchRun) exactBatch(ctx context.Context, phase string, round int, batch []*candState, left int) error {
	if len(batch) == 0 {
		return nil
	}
	sp := s.tr.StartSpan("search.exact")
	defer sp.End()
	sp.SetAttr("round", fmt.Sprint(round))
	sp.SetAttr("batch", fmt.Sprint(len(batch)))
	plain := make([]Candidate, len(batch))
	for i, c := range batch {
		plain[i] = c.Candidate
	}
	cycles, err := s.r.Eval.Exact(ctx, plain)
	if err != nil {
		return fmt.Errorf("search: exact confirmation: %w", err)
	}
	for i, c := range batch {
		c.exact, c.simmed = cycles[i], true
	}
	s.simmed = append(s.simmed, batch...)
	s.st.ExactSims += len(batch)
	s.st.Rounds++
	if b := s.budgetLeft(); left > b {
		left = b
	}
	s.progress(Progress{Phase: phase, Round: round, Done: s.st.ExactSims, Total: s.st.ExactSims + left})
	return nil
}

// budgetLeft returns the remaining exact-simulation budget, or a
// large value when the spec set none.
func (s *searchRun) budgetLeft() int {
	if s.spec.Budget <= 0 {
		return 1 << 30
	}
	if left := s.spec.Budget - s.st.ExactSims; left > 0 {
		return left
	}
	return 0
}

// runExhaustive simulates every statically feasible candidate; it is
// the reference strategy and ignores Budget.
func (s *searchRun) runExhaustive(ctx context.Context, feas []*candState) error {
	sortByAxis(feas)
	return s.exactBatch(ctx, "exact", 1, feas, 0)
}

// runAdaptive is the headline pipeline: triage everything, prune the
// provably dominated, confirm the rest by successive halving with
// early abandonment. Specs whose axes escape the analytic model's
// envelope (Spec.skipTriage) bypass the estimate-and-prune stage and
// halve over every feasible candidate.
func (s *searchRun) runAdaptive(ctx context.Context, feas []*candState) error {
	sortByAxis(feas)
	if s.spec.skipTriage() {
		s.st.Plausible = len(feas)
		return s.halve(ctx, "exact", feas)
	}
	s.progress(Progress{Phase: "triage", Done: 0, Total: len(feas)})
	if err := s.estimate(ctx, feas); err != nil {
		return err
	}
	plausible := s.triagePrune(feas)
	s.st.TriagePruned = len(feas) - len(plausible)
	s.st.Plausible = len(plausible)
	s.progress(Progress{Phase: "triage", Done: len(plausible), Total: len(feas)})
	return s.halve(ctx, "exact", plausible)
}

// runRandom samples the feasible space with the spec's seed, confirms
// the sample adaptively, then refines by axis-neighbor local search
// around the provisional frontier.
func (s *searchRun) runRandom(ctx context.Context, feas []*candState) error {
	sortByAxis(feas)
	rng := rand.New(rand.NewSource(s.spec.Seed))
	k := s.spec.SampleSize
	if k <= 0 {
		k = 256
	}
	if k > len(feas) {
		k = len(feas)
	}
	perm := rng.Perm(len(feas))[:k]
	sort.Ints(perm)
	sample := make([]*candState, k)
	for i, idx := range perm {
		sample[i] = feas[idx]
	}
	s.st.Sampled = k

	plausible := sample
	if s.spec.skipTriage() {
		s.st.Plausible = k
	} else {
		s.progress(Progress{Phase: "triage", Done: 0, Total: k})
		if err := s.estimate(ctx, sample); err != nil {
			return err
		}
		plausible = s.triagePrune(sample)
		s.st.TriagePruned = len(sample) - len(plausible)
		s.st.Plausible = len(plausible)
	}
	if err := s.halve(ctx, "exact", plausible); err != nil {
		return err
	}

	// Local search: walk the axis neighbors of the provisional frontier.
	ppcs, sizes, err := s.spec.Space.Axes()
	if err != nil {
		return err
	}
	byKey := make(map[Candidate]*candState, len(feas))
	for _, c := range feas {
		byKey[c.Candidate] = c
	}
	rounds := s.spec.LocalRounds
	if rounds <= 0 {
		rounds = 3
	}
	for round := 1; round <= rounds && s.budgetLeft() > 0; round++ {
		fresh := s.neighbors(byKey, ppcs, sizes)
		if len(fresh) == 0 {
			break
		}
		if !s.spec.skipTriage() {
			var toEst []*candState
			for _, c := range fresh {
				if !c.estimated {
					toEst = append(toEst, c)
				}
			}
			if err := s.estimate(ctx, toEst); err != nil {
				return err
			}
		}
		var viable []*candState
		for _, c := range fresh {
			if !s.dominatedByExact(c) {
				viable = append(viable, c)
			}
		}
		s.progress(Progress{Phase: "local", Round: round, Done: 0, Total: len(viable)})
		if len(viable) == 0 {
			break
		}
		if b := s.budgetLeft(); len(viable) > b {
			s.rank(viable)
			viable = viable[:b]
		} else {
			sortByAxis(viable)
		}
		if err := s.exactBatch(ctx, "local", round, viable, 0); err != nil {
			return err
		}
	}
	return nil
}

// neighbors returns the unsimulated feasible axis neighbors of the
// current exact frontier, in axis order.
func (s *searchRun) neighbors(byKey map[Candidate]*candState, ppcs, sizes []int) []*candState {
	front := s.frontierStates()
	seen := map[Candidate]bool{}
	var out []*candState
	add := func(c Candidate) {
		if cs, ok := byKey[c]; ok && !cs.simmed && !seen[c] {
			seen[c] = true
			out = append(out, cs)
		}
	}
	ppcIdx := indexOf(ppcs)
	sizeIdx := indexOf(sizes)
	for _, f := range front {
		pi, si := ppcIdx[f.PPC], sizeIdx[f.SCCBytes]
		for _, d := range []int{-1, 1} {
			if j := pi + d; j >= 0 && j < len(ppcs) {
				add(Candidate{PPC: ppcs[j], SCCBytes: f.SCCBytes})
			}
			if j := si + d; j >= 0 && j < len(sizes) {
				add(Candidate{PPC: f.PPC, SCCBytes: sizes[j]})
			}
		}
	}
	sortByAxis(out)
	return out
}

func indexOf(v []int) map[int]int {
	m := make(map[int]int, len(v))
	for i, x := range v {
		m[x] = i
	}
	return m
}

// halve runs successive halving: rank by analytic promise, simulate
// the best half of what remains each round (bounded by the budget),
// and abandon candidates an exact result now provably dominates.
func (s *searchRun) halve(ctx context.Context, phase string, plausible []*candState) error {
	remaining := append([]*candState(nil), plausible...)
	s.rank(remaining)
	round := 0
	for len(remaining) > 0 {
		b := s.budgetLeft()
		if b == 0 {
			break
		}
		round++
		k := (len(remaining) + 1) / 2
		if k > b {
			k = b
		}
		batch := remaining[:k]
		remaining = remaining[k:]
		if err := s.exactBatch(ctx, phase, round, batch, len(remaining)); err != nil {
			return err
		}
		kept := remaining[:0]
		for _, c := range remaining {
			if s.dominatedByExact(c) {
				s.st.Abandoned++
			} else {
				kept = append(kept, c)
			}
		}
		remaining = kept
	}
	return nil
}

// rank orders candidates by analytic promise: Pareto layer over the
// estimated objective vectors, then the first objective, then the
// axes — fully deterministic.
func (s *searchRun) rank(cands []*candState) {
	mids := make([][]float64, len(cands))
	for i, c := range cands {
		mids[i] = s.midVec(c)
	}
	layer := make([]int, len(cands))
	remaining := make([]int, len(cands))
	for i := range remaining {
		remaining[i] = i
	}
	for l := 0; len(remaining) > 0; l++ {
		sub := make([][]float64, len(remaining))
		for i, idx := range remaining {
			sub[i] = mids[idx]
		}
		front := ParetoIndices(sub)
		inFront := make(map[int]bool, len(front))
		for _, i := range front {
			layer[remaining[i]] = l
			inFront[i] = true
		}
		next := remaining[:0]
		for i, idx := range remaining {
			if !inFront[i] {
				next = append(next, idx)
			}
		}
		remaining = next
	}
	idx := make(map[*candState]int, len(cands))
	for i, c := range cands {
		idx[c] = i
	}
	sort.SliceStable(cands, func(a, b int) bool {
		ca, cb := cands[a], cands[b]
		la, lb := layer[idx[ca]], layer[idx[cb]]
		if la != lb {
			return la < lb
		}
		ma, mb := mids[idx[ca]], mids[idx[cb]]
		if ma[0] != mb[0] {
			return ma[0] < mb[0]
		}
		if ca.PPC != cb.PPC {
			return ca.PPC < cb.PPC
		}
		return ca.SCCBytes < cb.SCCBytes
	})
}

// triagePrune keeps the candidates that could still be on the exact
// frontier when every analytic estimate may be off by the margin, and
// that could still satisfy the cycle constraints.
func (s *searchRun) triagePrune(cands []*candState) []*candState {
	var kept []*candState
	for _, c := range cands {
		if s.cycleConstraintsPlausible(c) {
			kept = append(kept, c)
		}
	}
	if len(kept) == 0 {
		return kept
	}
	lo := make([][]float64, len(kept))
	hi := make([][]float64, len(kept))
	for i, c := range kept {
		lo[i], hi[i] = s.boundVecs(c)
	}
	var out []*candState
	for i, c := range kept {
		dominated := false
		for j := range kept {
			if i != j && certainlyDominates(hi[j], lo[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, c)
		}
	}
	return out
}

// cycleConstraintsPlausible applies cycle constraints with the margin:
// a candidate is kept unless even the optimistic bound violates them.
func (s *searchRun) cycleConstraintsPlausible(c *candState) bool {
	for _, con := range s.spec.Constraints {
		if con.Metric != "cycles" {
			continue
		}
		lo := float64(c.est) * (1 - s.margin)
		hi := float64(c.est) * (1 + s.margin)
		if con.Max != 0 && lo > con.Max {
			return false
		}
		if con.Min != 0 && hi < con.Min {
			return false
		}
	}
	return true
}

// exactConstraintsOK re-checks every constraint against a simulated
// candidate's exact values.
func (s *searchRun) exactConstraintsOK(c *candState) bool {
	for _, con := range s.spec.Constraints {
		var v float64
		switch con.Metric {
		case "cycles":
			v = float64(c.exact)
		case "cost_perf":
			v = costPerf(float64(c.exact)*c.factor, c.systemMM2)
		default:
			continue // static metrics already held
		}
		if !within(v, con) {
			return false
		}
	}
	return true
}

// dominatedByExact reports whether an exact result certainly dominates
// the (estimated, margin-widened) candidate. Unestimated candidates
// are never pruned — without an estimate there is no sound bound.
func (s *searchRun) dominatedByExact(c *candState) bool {
	if !c.simmed && !c.estimated {
		return false
	}
	lo, _ := s.boundVecs(c)
	for _, q := range s.simmed {
		qv := s.midVec(q)
		if certainlyDominates(qv, lo) {
			return true
		}
	}
	return false
}

// midVec is the candidate's best-known objective vector (exact when
// simulated).
func (s *searchRun) midVec(c *candState) []float64 {
	return s.objVec(c.adj(), c)
}

// boundVecs returns the margin-widened [lo, hi] objective vectors of
// an estimated candidate. Exact candidates collapse to a point.
func (s *searchRun) boundVecs(c *candState) (lo, hi []float64) {
	if c.simmed {
		v := s.midVec(c)
		return v, v
	}
	adjLo := float64(c.est) * (1 - s.margin) * c.factor
	adjHi := float64(c.est) * (1 + s.margin) * c.factor
	return s.objVec(adjLo, c), s.objVec(adjHi, c)
}

// objVec builds the minimization vector for a candidate at the given
// adjusted cycle count.
func (s *searchRun) objVec(adj float64, c *candState) []float64 {
	v := make([]float64, len(s.objs))
	for k, o := range s.objs {
		switch o {
		case ObjectiveCycles:
			v[k] = adj
		case ObjectiveArea:
			v[k] = c.systemMM2
		case ObjectiveCostPerf:
			v[k] = -costPerf(adj, c.systemMM2)
		}
	}
	return v
}

// certainlyDominates reports whether q's worst case dominates p's best
// case — the sound pruning test under interval-valued objectives.
func certainlyDominates(qHi, pLo []float64) bool {
	strict := false
	for k := range qHi {
		if qHi[k] > pLo[k] {
			return false
		}
		if qHi[k] < pLo[k] {
			strict = true
		}
	}
	return strict
}

// costPerf is the costperf package's formula: performance (1e9 /
// adjusted cycles) per 1000 mm² of system silicon.
func costPerf(adj, systemMM2 float64) float64 {
	if adj <= 0 || systemMM2 <= 0 {
		return 0
	}
	return (1e9 / adj) / (systemMM2 / 1000)
}

// frontierStates extracts the Pareto frontier over the simulated
// candidates that satisfy every constraint exactly.
func (s *searchRun) frontierStates() []*candState {
	var ok []*candState
	for _, c := range s.simmed {
		if s.exactConstraintsOK(c) {
			ok = append(ok, c)
		}
	}
	if len(ok) == 0 {
		return nil
	}
	vecs := make([][]float64, len(ok))
	for i, c := range ok {
		vecs[i] = s.midVec(c)
	}
	idxs := ParetoIndices(vecs)
	out := make([]*candState, len(idxs))
	for i, idx := range idxs {
		out[i] = ok[idx]
	}
	return out
}

// assemble builds the Result from the run state.
func (s *searchRun) assemble() *Result {
	res := &Result{Workload: s.r.Workload, Stats: *s.st}
	front := s.frontierStates()
	sort.Slice(front, func(a, b int) bool {
		if front[a].systemMM2 != front[b].systemMM2 {
			return front[a].systemMM2 < front[b].systemMM2
		}
		return front[a].adj() < front[b].adj()
	})
	for _, c := range front {
		res.Frontier = append(res.Frontier, s.point(c))
	}
	for i := range res.Frontier {
		p := &res.Frontier[i]
		if res.Best == nil || p.CostPerf > res.Best.CostPerf {
			res.Best = p
		}
	}
	ev := append([]*candState(nil), s.simmed...)
	sortByAxis(ev)
	for _, c := range ev {
		res.Evaluated = append(res.Evaluated, s.point(c))
	}
	return res
}

// point prices one simulated candidate as a PointResult.
func (s *searchRun) point(c *candState) PointResult {
	adj := float64(c.exact) * c.factor
	return PointResult{
		Candidate:   c.Candidate,
		Clusters:    s.clusters,
		LoadLatency: c.d.LoadLatency,
		EstCycles:   c.est,
		Cycles:      c.exact,
		AdjCycles:   adj,
		ClusterMM2:  c.clusterMM2,
		SystemMM2:   c.systemMM2,
		Perf:        1e9 / adj,
		CostPerf:    costPerf(adj, c.systemMM2),
	}
}

// publish exports the stage counters when a registry is attached.
func (r *Runner) publish(st *Stats) {
	m := r.Metrics
	if m == nil {
		return
	}
	m.Counter("search.runs").Inc()
	m.Counter("search.space_points").Add(uint64(st.SpaceSize))
	m.Counter("search.static_pruned").Add(uint64(st.StaticPruned))
	m.Counter("search.triage_pruned").Add(uint64(st.TriagePruned))
	m.Counter("search.analytic_evals").Add(uint64(st.AnalyticEvals))
	m.Counter("search.exact_sims").Add(uint64(st.ExactSims))
	m.Counter("search.abandoned").Add(uint64(st.Abandoned))
}

// sortByAxis orders candidates (ppc, size) ascending — the
// deterministic tie-free order every stage uses.
func sortByAxis(cands []*candState) {
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].PPC != cands[b].PPC {
			return cands[a].PPC < cands[b].PPC
		}
		return cands[a].SCCBytes < cands[b].SCCBytes
	})
}
