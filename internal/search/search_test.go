package search

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"sccsim/internal/sysmodel"
)

// fakeEval is a deterministic synthetic workload: exact cycles follow a
// smooth cost surface over (ppc, size), the analytic estimate carries a
// bounded deterministic relative error, and both count their calls.
type fakeEval struct {
	estCalls, exactCalls int
	estPoints, simPoints int
	relErr               float64 // estimate error amplitude
}

func (f *fakeEval) cycles(c Candidate) uint64 {
	// More processors help, bigger caches help, with diminishing
	// returns; a hash term keeps the surface from being too smooth.
	v := 4e7/float64(c.PPC) + 6e10/float64(c.SCCBytes) + 3e6*float64((c.PPC*31+c.SCCBytes/4096)%7)
	return uint64(v)
}

func (f *fakeEval) Estimate(_ context.Context, cands []Candidate) ([]uint64, error) {
	f.estCalls++
	f.estPoints += len(cands)
	out := make([]uint64, len(cands))
	for i, c := range cands {
		// Deterministic signed error within ±relErr.
		e := f.relErr * math.Sin(float64(c.PPC*1007+c.SCCBytes/sysmodel.LineSize))
		out[i] = uint64(float64(f.cycles(c)) * (1 + e))
	}
	return out, nil
}

func (f *fakeEval) Exact(_ context.Context, cands []Candidate) ([]uint64, error) {
	f.exactCalls++
	f.simPoints += len(cands)
	out := make([]uint64, len(cands))
	for i, c := range cands {
		out[i] = f.cycles(c)
	}
	return out, nil
}

func keysOf(pts []PointResult) []Candidate {
	out := make([]Candidate, len(pts))
	for i, p := range pts {
		out[i] = p.Candidate
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].PPC != out[b].PPC {
			return out[a].PPC < out[b].PPC
		}
		return out[a].SCCBytes < out[b].SCCBytes
	})
	return out
}

func runnerFor(ev Evaluator) *Runner {
	return &Runner{Eval: ev, Workload: "synthetic", Clusters: 4}
}

// TestEnumerateDefaults: the zero space is the paper grid in (ppc,
// size) order.
func TestEnumerateDefaults(t *testing.T) {
	cands, err := Space{}.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	want := len(sysmodel.ProcsPerClusterSweep) * len(sysmodel.SCCSizes)
	if len(cands) != want {
		t.Fatalf("default space has %d points, want %d", len(cands), want)
	}
	if cands[0] != (Candidate{PPC: 1, SCCBytes: sysmodel.SCCSizes[0]}) {
		t.Errorf("first candidate %+v", cands[0])
	}
	last := cands[len(cands)-1]
	if last.PPC != 8 || last.SCCBytes != sysmodel.SCCSizes[len(sysmodel.SCCSizes)-1] {
		t.Errorf("last candidate %+v", last)
	}
}

// TestSpaceRange: generated ranges are inclusive, deduplicated and
// line-aligned, and bad shapes are rejected.
func TestSpaceRange(t *testing.T) {
	sp := Space{ProcsPerCluster: []int{2, 1, 2}, SCCBytesMin: 4096, SCCBytesMax: 8192, SCCBytesStep: 2048}
	cands, err := sp.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	want := []Candidate{
		{1, 4096}, {1, 6144}, {1, 8192},
		{2, 4096}, {2, 6144}, {2, 8192},
	}
	if !reflect.DeepEqual(cands, want) {
		t.Errorf("enumerated %v, want %v", cands, want)
	}
	bad := []Space{
		{SCCBytesMin: 100, SCCBytesMax: 4096, SCCBytesStep: 16},   // unaligned min
		{SCCBytesMin: 4096, SCCBytesMax: 8192, SCCBytesStep: 100}, // unaligned step
		{SCCBytesMin: 8192, SCCBytesMax: 4096, SCCBytesStep: 16},  // max < min
		{SCCBytes: []int{24}},                                     // unaligned explicit
		{ProcsPerCluster: []int{0}},                               // bad ppc
		{SCCBytesMin: 16, SCCBytesMax: 1 << 27, SCCBytesStep: 16}, // over the cap
	}
	for i, sp := range bad {
		if _, err := sp.Enumerate(); err == nil {
			t.Errorf("bad space %d accepted", i)
		}
	}
}

// TestSpecValidate rejects unknown names and malformed bounds.
func TestSpecValidate(t *testing.T) {
	if err := (Spec{}).Validate(); err != nil {
		t.Errorf("zero spec rejected: %v", err)
	}
	bad := []Spec{
		{Objectives: []Objective{"latency"}},
		{Objectives: []Objective{ObjectiveCycles, ObjectiveCycles}},
		{Strategy: "genetic"},
		{Constraints: []Constraint{{Metric: "watts", Max: 1}}},
		{Constraints: []Constraint{{Metric: "cycles", Min: 5, Max: 2}}},
		{Budget: -1},
		{Margin: 1.5},
		{SampleSize: -2},
		{LocalRounds: -1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

// bruteForcePareto is the O(n²) reference for ParetoIndices.
func bruteForcePareto(pts [][]float64) []int {
	var out []int
	for i, p := range pts {
		dom := false
		for j, q := range pts {
			if i != j && dominates(q, p) {
				dom = true
				break
			}
		}
		if !dom {
			out = append(out, i)
		}
	}
	return out
}

// TestParetoIndices2DMatchesBruteForce: the sort-and-sweep fast path
// must agree with the definitional check, including duplicated points
// and axis ties.
func TestParetoIndices2DMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		pts := make([][]float64, n)
		for i := range pts {
			// A small value universe forces ties and duplicates.
			pts[i] = []float64{float64(rng.Intn(6)), float64(rng.Intn(6))}
		}
		got := ParetoIndices(pts)
		want := bruteForcePareto(pts)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: fast path %v, brute force %v for %v", trial, got, want, pts)
		}
	}
}

// TestParetoIndices3D exercises the generic path.
func TestParetoIndices3D(t *testing.T) {
	pts := [][]float64{
		{1, 1, 1},
		{2, 2, 2}, // dominated
		{1, 2, 0},
		{1, 1, 1}, // exact duplicate of 0: both stay
	}
	got := ParetoIndices(pts)
	want := []int{0, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

// TestAdaptiveMatchesExhaustive is the package-level form of the
// headline property: with estimates whose relative error stays inside
// the margin, the adaptive pipeline's frontier equals the exhaustive
// one while simulating strictly fewer points.
func TestAdaptiveMatchesExhaustive(t *testing.T) {
	spec := Spec{Margin: 0.2}

	exFake := &fakeEval{relErr: 0.1}
	ex, err := runnerFor(exFake).Run(context.Background(), Spec{Strategy: StrategyExhaustive})
	if err != nil {
		t.Fatal(err)
	}
	adFake := &fakeEval{relErr: 0.1}
	spec.Strategy = StrategyAdaptive
	ad, err := runnerFor(adFake).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(keysOf(ad.Frontier), keysOf(ex.Frontier)) {
		t.Errorf("adaptive frontier %v != exhaustive %v", keysOf(ad.Frontier), keysOf(ex.Frontier))
	}
	if ad.Stats.ExactSims >= ex.Stats.ExactSims {
		t.Errorf("adaptive simulated %d points, exhaustive %d — no savings",
			ad.Stats.ExactSims, ex.Stats.ExactSims)
	}
	if ad.Stats.ExactSims != ad.Stats.Plausible-countAbandoned(ad.Stats) {
		t.Errorf("exact sims %d, plausible %d, abandoned %d — accounting off",
			ad.Stats.ExactSims, ad.Stats.Plausible, ad.Stats.Abandoned)
	}
	// Frontier cycles must be the exact backend's, not estimates.
	for _, p := range ad.Frontier {
		if p.Cycles != adFake.cycles(p.Candidate) {
			t.Errorf("frontier point %+v carries cycles %d, exact is %d",
				p.Candidate, p.Cycles, adFake.cycles(p.Candidate))
		}
	}
}

func countAbandoned(st Stats) int { return st.Abandoned }

// TestBudgetCapsExactSims: the budget is a hard ceiling and the search
// still returns a (possibly partial) frontier.
func TestBudgetCapsExactSims(t *testing.T) {
	f := &fakeEval{relErr: 0.1}
	res, err := runnerFor(f).Run(context.Background(), Spec{Strategy: StrategyAdaptive, Budget: 5, Margin: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ExactSims > 5 || f.simPoints > 5 {
		t.Errorf("budget 5 exceeded: stats %d, evaluator saw %d", res.Stats.ExactSims, f.simPoints)
	}
	if len(res.Frontier) == 0 {
		t.Error("budgeted search returned an empty frontier")
	}
	for _, p := range res.Frontier {
		if p.Cycles == 0 {
			t.Errorf("frontier point %+v has no exact cycle count", p.Candidate)
		}
	}
}

// TestRandomSeedDeterminism: the random strategy is a pure function of
// the spec (the evaluator being deterministic).
func TestRandomSeedDeterminism(t *testing.T) {
	spec := Spec{
		Strategy: StrategyRandom, Seed: 42, Budget: 30, SampleSize: 40, Margin: 0.2,
		Space: Space{SCCBytesMin: 4096, SCCBytesMax: 524288, SCCBytesStep: 4096},
	}
	a, err := runnerFor(&fakeEval{relErr: 0.1}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runnerFor(&fakeEval{relErr: 0.1}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two runs with the same seed differ")
	}
	if a.Stats.Sampled != 40 {
		t.Errorf("sampled %d, want 40", a.Stats.Sampled)
	}
	if a.Stats.ExactSims > 30 {
		t.Errorf("budget 30 exceeded: %d", a.Stats.ExactSims)
	}
}

// TestConstraints: static bounds prune the space, exact bounds gate the
// frontier.
func TestConstraints(t *testing.T) {
	f := &fakeEval{relErr: 0.05}
	res, err := runnerFor(f).Run(context.Background(), Spec{
		Strategy: StrategyAdaptive, Margin: 0.2,
		Constraints: []Constraint{
			{Metric: "scc_bytes", Min: 32 * 1024},
			{Metric: "procs_per_cluster", Max: 4},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Evaluated {
		if p.SCCBytes < 32*1024 || p.PPC > 4 {
			t.Errorf("constrained-out point %+v was simulated", p.Candidate)
		}
	}
	// A cycles ceiling below every point empties the frontier without
	// erroring.
	res, err = runnerFor(&fakeEval{relErr: 0.05}).Run(context.Background(), Spec{
		Strategy: StrategyAdaptive, Margin: 0.2,
		Constraints: []Constraint{{Metric: "cycles", Max: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frontier) != 0 {
		t.Errorf("impossible cycle bound still yielded %d frontier points", len(res.Frontier))
	}
}

// TestCostPerfObjective: a single maximized objective degenerates to
// the best cost/performance point.
func TestCostPerfObjective(t *testing.T) {
	f := &fakeEval{relErr: 0.05}
	res, err := runnerFor(f).Run(context.Background(), Spec{
		Strategy:   StrategyAdaptive,
		Margin:     0.2,
		Objectives: []Objective{ObjectiveCostPerf},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frontier) != 1 {
		t.Fatalf("single-objective frontier has %d points, want 1", len(res.Frontier))
	}
	// The winner must beat every exhaustively simulated point.
	ex, err := runnerFor(&fakeEval{}).Run(context.Background(), Spec{Strategy: StrategyExhaustive})
	if err != nil {
		t.Fatal(err)
	}
	best := res.Frontier[0]
	for _, p := range ex.Evaluated {
		if p.CostPerf > best.CostPerf {
			t.Errorf("point %+v has cost/perf %.3f above the search winner's %.3f",
				p.Candidate, p.CostPerf, best.CostPerf)
		}
	}
}
