// Package search is the adaptive design-space search engine: declarative
// objectives and constraints over a generalized (processors-per-cluster,
// SCC size) point space, Pareto-frontier extraction, and a strategy
// pipeline that recovers the exact-backend frontier with a fraction of
// the exact simulations. The pipeline is (1) static constraint pruning
// — area feasibility and user constraints that need no simulation at
// all, (2) analytic pre-triage — the reuse-distance model's
// one-pass-all-sizes curve (rdmodel.Curve) ranks every surviving
// candidate and prunes those provably dominated even under the model's
// error margin, and (3) successive halving — exact simulation of the
// most promising half per round, early-abandoning candidates an exact
// result already dominates, until the budget or the candidates run out.
// Spaces too large to confirm exhaustively use seeded random sampling
// plus axis-neighbor local search around the provisional frontier.
//
// The package prices candidates with the same Section 4 rules as
// internal/costperf (area.Custom feasibility, load-latency relative
// time, performance per silicon) but deliberately does not import it —
// costperf imports this package for the shared Pareto extraction.
package search

import (
	"fmt"
	"sort"

	"sccsim/internal/sysmodel"
)

// Objective names a quantity the search optimizes. Objectives form the
// axes of the Pareto frontier; all are minimized except ObjectiveCostPerf,
// which is maximized (internally negated).
type Objective string

// The supported objectives.
const (
	// ObjectiveCycles minimizes latency-adjusted execution time
	// (simulated cycles scaled by the implementation's load-latency
	// factor, as in costperf.FrontierPoint.AdjCycles).
	ObjectiveCycles Objective = "cycles"
	// ObjectiveArea minimizes total system silicon in mm².
	ObjectiveArea Objective = "area_mm2"
	// ObjectiveCostPerf maximizes performance per 1000 mm² of system
	// silicon.
	ObjectiveCostPerf Objective = "cost_perf"
)

// Strategy selects the search pipeline.
type Strategy string

// The supported strategies.
const (
	// StrategyAuto picks StrategyAdaptive, or StrategyRandom for spaces
	// above autoRandomThreshold points.
	StrategyAuto Strategy = "auto"
	// StrategyExhaustive exact-simulates every statically feasible
	// candidate — the reference the adaptive pipeline is measured
	// against.
	StrategyExhaustive Strategy = "exhaustive"
	// StrategyAdaptive runs the full pipeline: static pruning, analytic
	// triage, successive halving with early abandonment.
	StrategyAdaptive Strategy = "adaptive"
	// StrategyRandom seeds the pipeline with a random sample of the
	// feasible space and refines the provisional frontier by
	// axis-neighbor local search.
	StrategyRandom Strategy = "random"
)

// autoRandomThreshold is the space size above which StrategyAuto
// switches from adaptive (triage every point) to random sampling.
const autoRandomThreshold = 100_000

// maxSpacePoints bounds enumeration; a generated range that exceeds it
// is rejected rather than silently truncated.
const maxSpacePoints = 1 << 20

// Space declares the candidate point space. Either list axis values
// explicitly or, for SCC sizes, generate an inclusive range; an empty
// axis defaults to the paper's sweep (sysmodel.ProcsPerClusterSweep,
// sysmodel.SCCSizes).
type Space struct {
	// ProcsPerCluster lists the processors-per-cluster axis values.
	ProcsPerCluster []int `json:"procs_per_cluster,omitempty"`
	// SCCBytes lists explicit SCC sizes in bytes. When set it wins over
	// the range fields.
	SCCBytes []int `json:"scc_bytes,omitempty"`
	// SCCBytesMin, SCCBytesMax and SCCBytesStep generate the size axis
	// {min, min+step, ...} up to and including max. Min and step must be
	// multiples of the cache line size so every candidate is simulable.
	SCCBytesMin  int `json:"scc_bytes_min,omitempty"`
	SCCBytesMax  int `json:"scc_bytes_max,omitempty"`
	SCCBytesStep int `json:"scc_bytes_step,omitempty"`
}

// Candidate is one point of the space.
type Candidate struct {
	// PPC is the candidate's processors per cluster.
	PPC int `json:"procs_per_cluster"`
	// SCCBytes is the candidate's per-cluster SCC size in bytes.
	SCCBytes int `json:"scc_bytes"`
}

// Axes returns the space's resolved axis values, sorted ascending and
// deduplicated: the ppc list and the size list the enumeration is the
// cross product of. It validates the same conditions Enumerate does.
func (sp Space) Axes() (ppcs, sizes []int, err error) {
	ppcs = sp.ProcsPerCluster
	if len(ppcs) == 0 {
		ppcs = append([]int(nil), sysmodel.ProcsPerClusterSweep...)
	}
	for _, p := range ppcs {
		if p < 1 {
			return nil, nil, fmt.Errorf("search: procs_per_cluster %d below 1", p)
		}
	}
	switch {
	case len(sp.SCCBytes) > 0:
		sizes = append([]int(nil), sp.SCCBytes...)
		for _, s := range sizes {
			if s < sysmodel.LineSize || s%sysmodel.LineSize != 0 {
				return nil, nil, fmt.Errorf("search: scc_bytes %d not a positive multiple of the %d-byte line", s, sysmodel.LineSize)
			}
		}
	case sp.SCCBytesMin != 0 || sp.SCCBytesMax != 0 || sp.SCCBytesStep != 0:
		min, max, step := sp.SCCBytesMin, sp.SCCBytesMax, sp.SCCBytesStep
		if min < sysmodel.LineSize || min%sysmodel.LineSize != 0 {
			return nil, nil, fmt.Errorf("search: scc_bytes_min %d not a positive multiple of the %d-byte line", min, sysmodel.LineSize)
		}
		if step < sysmodel.LineSize || step%sysmodel.LineSize != 0 {
			return nil, nil, fmt.Errorf("search: scc_bytes_step %d not a positive multiple of the %d-byte line", step, sysmodel.LineSize)
		}
		if max < min {
			return nil, nil, fmt.Errorf("search: scc_bytes_max %d below scc_bytes_min %d", max, min)
		}
		for s := min; s <= max; s += step {
			sizes = append(sizes, s)
		}
	default:
		sizes = append([]int(nil), sysmodel.SCCSizes...)
	}
	ppcs = sortedUnique(ppcs)
	sizes = sortedUnique(sizes)
	if n := len(ppcs) * len(sizes); n > maxSpacePoints {
		return nil, nil, fmt.Errorf("search: space has %d points, above the %d cap", n, maxSpacePoints)
	}
	return ppcs, sizes, nil
}

// Enumerate expands the space into its candidates in deterministic
// order: ppc ascending, then size ascending.
func (sp Space) Enumerate() ([]Candidate, error) {
	ppcs, sizes, err := sp.Axes()
	if err != nil {
		return nil, err
	}
	out := make([]Candidate, 0, len(ppcs)*len(sizes))
	for _, p := range ppcs {
		for _, s := range sizes {
			out = append(out, Candidate{PPC: p, SCCBytes: s})
		}
	}
	return out, nil
}

func sortedUnique(v []int) []int {
	out := append([]int(nil), v...)
	sort.Ints(out)
	n := 0
	for i, x := range out {
		if i == 0 || x != out[n-1] {
			out[n] = x
			n++
		}
	}
	return out[:n]
}

// Constraint is a hard bound on one metric of a candidate. A zero Min
// or Max means that side is unbounded. Static metrics (area, axes)
// prune before any modeling; cycle metrics prune conservatively at
// triage (the analytic bound widened by the margin) and exactly on
// simulated points.
type Constraint struct {
	// Metric names the constrained quantity: "cycles" (exact simulated
	// cycles), "area_mm2" (system silicon), "cluster_mm2",
	// "scc_bytes", "procs_per_cluster", or "cost_perf".
	Metric string `json:"metric"`
	// Min is the inclusive lower bound (0 = unbounded).
	Min float64 `json:"min,omitempty"`
	// Max is the inclusive upper bound (0 = unbounded).
	Max float64 `json:"max,omitempty"`
}

// The constraint metrics Validate accepts.
var constraintMetrics = map[string]bool{
	"cycles": true, "area_mm2": true, "cluster_mm2": true,
	"scc_bytes": true, "procs_per_cluster": true, "cost_perf": true,
}

// Spec is the declarative input to a search: the space, what to
// optimize, what to require, and how hard to try.
type Spec struct {
	// Space is the candidate space; its zero value is the paper grid.
	Space Space `json:"space"`
	// Axes overlays architecture-axis overrides (line size,
	// associativity, replacement policy, hierarchy) on every candidate
	// the search simulates. nil or the zero value keeps the paper's
	// defaults and byte-identical behavior. Non-default axes disable
	// the analytic triage stage — the reuse-distance curve and its
	// calibrated margins model the default axes only — so the pipeline
	// degrades to budgeted successive halving over exact simulation.
	Axes *sysmodel.Axes `json:"axes,omitempty"`
	// Objectives are the frontier axes; empty defaults to
	// [cycles, area_mm2].
	Objectives []Objective `json:"objectives,omitempty"`
	// Constraints are hard bounds candidates must satisfy.
	Constraints []Constraint `json:"constraints,omitempty"`
	// Strategy selects the pipeline; empty defaults to auto.
	Strategy Strategy `json:"strategy,omitempty"`
	// Budget caps exact simulations; 0 means enough to confirm every
	// plausible candidate (adaptive) or sample (random).
	Budget int `json:"budget,omitempty"`
	// Margin is the relative error the analytic cycle estimate is
	// trusted to; triage only prunes candidates dominated even when
	// estimates are off by this factor. 0 picks the runner's
	// per-workload default.
	Margin float64 `json:"margin,omitempty"`
	// Seed fixes every randomized decision; equal seeds give identical
	// results at any parallelism.
	Seed int64 `json:"seed,omitempty"`
	// SampleSize is the random strategy's initial sample; 0 defaults to
	// min(256, feasible space).
	SampleSize int `json:"sample_size,omitempty"`
	// LocalRounds caps the random strategy's local-search refinement
	// rounds; 0 defaults to 3.
	LocalRounds int `json:"local_rounds,omitempty"`
}

// Validate checks the spec without running anything: axis values,
// objective and strategy names, constraint metrics and bounds, and
// non-negative budgets. A valid spec can still find nothing (an
// over-constrained space yields an empty frontier, not an error).
func (s Spec) Validate() error {
	if _, _, err := s.Space.Axes(); err != nil {
		return err
	}
	if s.Axes != nil && !s.Axes.IsZero() {
		if err := s.Axes.Validate(); err != nil {
			return err
		}
	}
	seen := map[Objective]bool{}
	for _, o := range s.Objectives {
		switch o {
		case ObjectiveCycles, ObjectiveArea, ObjectiveCostPerf:
		default:
			return fmt.Errorf("search: unknown objective %q (want cycles, area_mm2 or cost_perf)", o)
		}
		if seen[o] {
			return fmt.Errorf("search: duplicate objective %q", o)
		}
		seen[o] = true
	}
	switch s.Strategy {
	case "", StrategyAuto, StrategyExhaustive, StrategyAdaptive, StrategyRandom:
	default:
		return fmt.Errorf("search: unknown strategy %q (want auto, exhaustive, adaptive or random)", s.Strategy)
	}
	for _, c := range s.Constraints {
		if !constraintMetrics[c.Metric] {
			return fmt.Errorf("search: unknown constraint metric %q", c.Metric)
		}
		if c.Min < 0 || c.Max < 0 {
			return fmt.Errorf("search: constraint %s has a negative bound", c.Metric)
		}
		if c.Min != 0 && c.Max != 0 && c.Min > c.Max {
			return fmt.Errorf("search: constraint %s has min %g above max %g", c.Metric, c.Min, c.Max)
		}
	}
	if s.Budget < 0 {
		return fmt.Errorf("search: negative budget %d", s.Budget)
	}
	if s.Margin < 0 || s.Margin >= 1 {
		return fmt.Errorf("search: margin %g outside [0, 1)", s.Margin)
	}
	if s.SampleSize < 0 {
		return fmt.Errorf("search: negative sample_size %d", s.SampleSize)
	}
	if s.LocalRounds < 0 {
		return fmt.Errorf("search: negative local_rounds %d", s.LocalRounds)
	}
	return nil
}

// skipTriage reports whether the spec's axes put the candidates outside
// the analytic model's envelope, in which case the pipeline must not
// trust reuse-distance estimates.
func (s Spec) skipTriage() bool {
	return s.Axes != nil && !s.Axes.IsZero()
}

// objectives returns the spec's objective list with the default
// applied.
func (s Spec) objectives() []Objective {
	if len(s.Objectives) > 0 {
		return s.Objectives
	}
	return []Objective{ObjectiveCycles, ObjectiveArea}
}
