package area

import "fmt"

// Custom generalizes the Section 4 implementation rules to an arbitrary
// design point (processors per cluster, cluster SCC capacity), so the
// whole Section 3 performance grid can be priced in silicon — the
// cost/performance frontier the paper's conclusions gesture at.
//
// The rules follow the paper's four designs:
//
//   - one processor per cluster: a single chip with a single-ported
//     cache in 8 KB / 6.6 mm² blocks; load latency 2 while the cache
//     fits the 30 FO4 cycle, 3 beyond it;
//   - two or more: two-processor chips with multiported SCC slices in
//     4 KB / 8 mm² blocks and a crossbar ICN sized by total port count;
//     one chip per two processors, MCM-packaged beyond one chip
//     (load latency 4); pad frames grow with remote processor count.
func Custom(procsPerCluster, clusterSCCBytes int) (ChipDesign, error) {
	if procsPerCluster < 1 {
		return ChipDesign{}, fmt.Errorf("area: %d processors per cluster", procsPerCluster)
	}
	if clusterSCCBytes < 4*1024 {
		return ChipDesign{}, fmt.Errorf("area: %d bytes of SCC, want >= 4 KB", clusterSCCBytes)
	}

	if procsPerCluster == 1 {
		lat := 2
		if CacheAccessFO4(clusterSCCBytes) > CycleFO4 {
			lat = 3 // an extra access stage, like the SCC designs
		}
		return ChipDesign{
			Name:            fmt.Sprintf("1 processor / %d KB cache", clusterSCCBytes/1024),
			ProcsOnChip:     1,
			ClusterProcs:    1,
			SCCBytesOnChip:  clusterSCCBytes,
			SCCPorts:        1,
			SignalPads:      300,
			LoadLatency:     lat,
			ChipsPerCluster: 1,
		}, nil
	}

	if procsPerCluster%2 != 0 {
		return ChipDesign{}, fmt.Errorf("area: %d processors per cluster; the building block holds 2", procsPerCluster)
	}
	chips := procsPerCluster / 2
	if clusterSCCBytes%(chips*4*1024) != 0 {
		return ChipDesign{}, fmt.Errorf("area: %d bytes of SCC not divisible into 4 KB banks over %d chips",
			clusterSCCBytes, chips)
	}
	perChip := clusterSCCBytes / chips
	ports := procsPerCluster + 1 // every processor plus the refill port
	icns := 1
	if ports > 5 {
		icns = 2
	}
	pads := 300 + 150*(procsPerCluster-2) + 100
	lat := 3
	if chips > 1 {
		lat = 4 // MCM chip crossing adds the extra cache-access stage
	}
	d := ChipDesign{
		Name:            fmt.Sprintf("%d processors / %d KB SCC", procsPerCluster, clusterSCCBytes/1024),
		ProcsOnChip:     2,
		ClusterProcs:    procsPerCluster,
		SCCBytesOnChip:  perChip,
		SCCPorts:        ports,
		ICNs:            icns,
		SignalPads:      pads,
		C4:              pads >= 1000,
		LoadLatency:     lat,
		ChipsPerCluster: chips,
	}
	if chips > 1 {
		d.Name += " (MCM)"
	}
	return d, nil
}

// Feasible reports whether the design point is buildable: the chip fits
// the economical die and the pad count is within C4 reach.
func Feasible(procsPerCluster, clusterSCCBytes int) bool {
	d, err := Custom(procsPerCluster, clusterSCCBytes)
	if err != nil {
		return false
	}
	return d.Fits() && d.SignalPads <= 1500
}
