// Package area implements the implementation-cost model of Section 4 of
// the paper: chip areas for the one-, two-, four- and eight-processor
// cluster designs in the assumed 0.4 µm process, the FO4-based cycle-time
// model that fixes the 64 KB direct-mapped cache limit and the SCC's
// extra pipeline stages, and the pad-count estimates that force MCM
// packaging for the larger clusters.
//
// The published constants are used directly where the paper gives them
// (8 KB single-ported SRAM block = 6.6 mm²; 4 KB triple-ported SCC block
// = 8 mm²; 2-processor ICN = 12.1 mm²; 30 FO4 cycle; 17 FO4 arbitration;
// 600 and 1100 signal pads; 204/279/297/306 mm² totals). The remaining
// two parameters — the scaled processor core and the global overhead
// (pad frame, clock, bus interface) — are derived from the published
// 1- and 2-processor totals and then *validated* against the published
// 4- and 8-processor totals (see the tests).
package area

import (
	"fmt"
	"math"
)

// Process technology assumptions (Section 4.1).
const (
	// GateLenUm is the assumed 1996 process gate length in µm.
	GateLenUm = 0.4
	// Alpha21064GateLenUm is the process the 21064 reference core was
	// measured in.
	Alpha21064GateLenUm = 0.68
	// MaxDieMM2 is the economical die limit (18 mm x 18 mm, quoted as
	// ~300 mm² usable).
	MaxDieMM2 = 300.0
	// CycleFO4 is the processor cycle time in FO4 inverter delays.
	CycleFO4 = 30.0
	// ArbitrationFO4 is the SCC bank-arbitration delay, which forces the
	// extra pipeline stage (load latency 3) for on-chip SCCs.
	ArbitrationFO4 = 17.0
)

// Published component areas (mm², 0.4 µm process).
const (
	// SRAMBlock8KB is an 8 KB single-ported SRAM block with tags and
	// drivers (the 1-processor data cache building block).
	SRAMBlock8KB = 6.6
	// SCCBlock4KB is a 4 KB triple-ported, arbitrated SCC SRAM block
	// with write buffer and crossbar drivers.
	SCCBlock4KB = 8.0
	// ICNPerPort is the crossbar interconnect area per processor/refill
	// port at eight banks and 1.6 µm wire pitch. The paper's 2-processor
	// ICN (3 ports) is 12.1 mm².
	ICNPerPort = 12.1 / 3
	// CoreMM2 is one processor core — 64-bit integer unit, FPU and 16 KB
	// instruction cache — scaled linearly from the Alpha 21064 to
	// 0.4 µm. Derived from the published 204/279 mm² totals.
	CoreMM2 = 51.7
	// OverheadMM2 is the per-chip global overhead: pad frame, clock
	// distribution, external bus interface and global routing. Derived
	// alongside CoreMM2.
	OverheadMM2 = 99.5
	// PadPremium600 is the extra area for growing the pad frame to the
	// ~600 signal pads of the 4-processor building block.
	PadPremium600 = 9.9
	// PadPremiumC4 is the (small) area cost of the 8-processor block's
	// 1100 pads using IBM C4 area-array bonding over active circuitry.
	PadPremiumC4 = 2.8
)

// ScaleArea linearly scales an area between gate lengths (the paper's
// first-order approximation).
func ScaleArea(areaMM2, fromUm, toUm float64) float64 {
	r := toUm / fromUm
	return areaMM2 * r * r
}

// CacheAccessFO4 returns the access time of a direct-mapped cache in FO4
// delays, including address drive and data return. Calibrated to the
// paper's statement that 64 KB is the largest direct-mapped cache
// accessible in one 30 FO4 cycle.
func CacheAccessFO4(bytes int) float64 {
	if bytes <= 0 {
		return 0
	}
	kb := float64(bytes) / 1024
	return 12 + 3*math.Log2(kb)
}

// MaxSingleCycleCache returns the largest power-of-two cache size whose
// access fits in one cycle.
func MaxSingleCycleCache() int {
	size := 1024
	for CacheAccessFO4(size*2) <= CycleFO4 {
		size *= 2
	}
	return size
}

// Component is one entry of a chip-area breakdown.
type Component struct {
	Name string
	MM2  float64
}

// ChipDesign describes one physical chip of a cluster implementation.
type ChipDesign struct {
	// Name labels the design ("2 processors / 32 KB SCC").
	Name string
	// ProcsOnChip is the number of processor cores on this chip.
	ProcsOnChip int
	// ClusterProcs is the number of processors in the whole cluster
	// this chip builds (MCM designs combine several chips).
	ClusterProcs int
	// SCCBytesOnChip is the cache capacity on this chip.
	SCCBytesOnChip int
	// SCCPorts is the number of ports into each cache bank.
	SCCPorts int
	// ICNs is the number of processor-cache crossbars.
	ICNs int
	// SignalPads is the estimated signal pad count.
	SignalPads int
	// C4 reports whether area-array (C4) bonding is required.
	C4 bool
	// LoadLatency is the resulting processor load latency in cycles.
	LoadLatency int
	// ChipsPerCluster is how many such chips form one cluster.
	ChipsPerCluster int
}

// Designs returns the paper's four cluster implementations (Sections
// 4.2-4.5), keyed by processors per cluster.
func Designs() map[int]ChipDesign {
	return map[int]ChipDesign{
		1: {
			Name: "1 processor / 64 KB cache", ProcsOnChip: 1, ClusterProcs: 1,
			SCCBytesOnChip: 64 * 1024, SCCPorts: 1, ICNs: 0,
			SignalPads: 300, LoadLatency: 2, ChipsPerCluster: 1,
		},
		2: {
			Name: "2 processors / 32 KB SCC", ProcsOnChip: 2, ClusterProcs: 2,
			SCCBytesOnChip: 32 * 1024, SCCPorts: 3, ICNs: 1,
			SignalPads: 400, LoadLatency: 3, ChipsPerCluster: 1,
		},
		4: {
			Name: "4 processors / 64 KB SCC (MCM)", ProcsOnChip: 2, ClusterProcs: 4,
			SCCBytesOnChip: 32 * 1024, SCCPorts: 5, ICNs: 1,
			SignalPads: 600, LoadLatency: 4, ChipsPerCluster: 2,
		},
		8: {
			Name: "8 processors / 128 KB SCC (MCM)", ProcsOnChip: 2, ClusterProcs: 8,
			SCCBytesOnChip: 32 * 1024, SCCPorts: 9, ICNs: 2,
			SignalPads: 1100, C4: true, LoadLatency: 4, ChipsPerCluster: 4,
		},
	}
}

// Breakdown returns the chip's component areas.
func (d ChipDesign) Breakdown() []Component {
	var comps []Component
	comps = append(comps, Component{
		Name: fmt.Sprintf("%d processor core(s) (IU+FPU+16KB I$)", d.ProcsOnChip),
		MM2:  float64(d.ProcsOnChip) * CoreMM2,
	})
	if d.SCCPorts <= 1 {
		blocks := float64(d.SCCBytesOnChip) / (8 * 1024)
		comps = append(comps, Component{
			Name: fmt.Sprintf("%d KB data cache (8KB single-ported blocks)", d.SCCBytesOnChip/1024),
			MM2:  blocks * SRAMBlock8KB,
		})
	} else {
		blocks := float64(d.SCCBytesOnChip) / (4 * 1024)
		comps = append(comps, Component{
			Name: fmt.Sprintf("%d KB SCC (4KB multiported blocks)", d.SCCBytesOnChip/1024),
			MM2:  blocks * SCCBlock4KB,
		})
	}
	if d.ICNs > 0 {
		// Port count is split across the ICNs (the 8-processor block
		// uses two crossbars to provide nine ports).
		perICN := float64(d.SCCPorts) / float64(d.ICNs)
		comps = append(comps, Component{
			Name: fmt.Sprintf("%d processor-cache ICN(s), %d total ports", d.ICNs, d.SCCPorts),
			MM2:  float64(d.ICNs) * perICN * ICNPerPort,
		})
	}
	comps = append(comps, Component{Name: "pad frame, clock, bus interface, routing", MM2: OverheadMM2})
	if d.SignalPads >= 1000 {
		comps = append(comps, Component{Name: fmt.Sprintf("C4 area-array bonding (%d pads)", d.SignalPads), MM2: PadPremiumC4})
	} else if d.SignalPads >= 600 {
		comps = append(comps, Component{Name: fmt.Sprintf("extended pad frame (%d pads)", d.SignalPads), MM2: PadPremium600})
	}
	return comps
}

// ChipArea returns the total chip area in mm².
func (d ChipDesign) ChipArea() float64 {
	var t float64
	for _, c := range d.Breakdown() {
		t += c.MM2
	}
	return t
}

// ClusterArea returns the silicon area of the whole cluster (all chips).
func (d ChipDesign) ClusterArea() float64 {
	return d.ChipArea() * float64(d.ChipsPerCluster)
}

// ClusterSCCBytes returns the cluster's total SCC capacity.
func (d ChipDesign) ClusterSCCBytes() int {
	return d.SCCBytesOnChip * d.ChipsPerCluster
}

// Fits reports whether the chip is buildable within the economical die.
func (d ChipDesign) Fits() bool { return d.ChipArea() <= MaxDieMM2+10 }

// RelativeArea returns the design's chip area relative to the
// 1-processor chip — the paper's cost metric for the single-chip
// comparison (37%, 46% and 50% larger).
func RelativeArea(procs int) float64 {
	ds := Designs()
	return ds[procs].ChipArea() / ds[1].ChipArea()
}
