package area

import (
	"math"
	"testing"
)

// Custom must reproduce the four canonical designs exactly.
func TestCustomMatchesCanonicalDesigns(t *testing.T) {
	for ppc, want := range Designs() {
		got, err := Custom(ppc, want.ClusterSCCBytes())
		if err != nil {
			t.Fatalf("%dP: %v", ppc, err)
		}
		if math.Abs(got.ChipArea()-want.ChipArea()) > 0.5 {
			t.Errorf("%dP: Custom area %.1f, canonical %.1f", ppc, got.ChipArea(), want.ChipArea())
		}
		if got.LoadLatency != want.LoadLatency {
			t.Errorf("%dP: Custom latency %d, canonical %d", ppc, got.LoadLatency, want.LoadLatency)
		}
		if got.ChipsPerCluster != want.ChipsPerCluster {
			t.Errorf("%dP: Custom chips %d, canonical %d", ppc, got.ChipsPerCluster, want.ChipsPerCluster)
		}
	}
}

func TestCustomRejects(t *testing.T) {
	if _, err := Custom(0, 64*1024); err == nil {
		t.Error("accepted 0 processors")
	}
	if _, err := Custom(3, 64*1024); err == nil {
		t.Error("accepted an odd multi-processor cluster")
	}
	if _, err := Custom(2, 1024); err == nil {
		t.Error("accepted a sub-4KB SCC")
	}
	if _, err := Custom(8, 4*1024); err == nil {
		t.Error("accepted an SCC that cannot spread over 4 chips")
	}
}

func TestCustomBigCacheSlowLoads(t *testing.T) {
	// A 128 KB single-processor cache exceeds the 30 FO4 cycle: the
	// design pays a 3-cycle load latency.
	d, err := Custom(1, 128*1024)
	if err != nil {
		t.Fatal(err)
	}
	if d.LoadLatency != 3 {
		t.Errorf("128KB 1P latency = %d, want 3", d.LoadLatency)
	}
}

func TestCustomInfeasiblePoints(t *testing.T) {
	// Two processors with a 512 KB on-chip SCC: 128 multiported blocks
	// at 8 mm² is over a thousand mm² — not buildable.
	if Feasible(2, 512*1024) {
		d, _ := Custom(2, 512*1024)
		t.Errorf("2P/512KB reported feasible at %.0f mm²", d.ChipArea())
	}
	// The paper's four designs are feasible.
	for ppc, d := range Designs() {
		if !Feasible(ppc, d.ClusterSCCBytes()) {
			t.Errorf("canonical %dP design reported infeasible", ppc)
		}
	}
}

func TestCustomAreaMonotoneInCache(t *testing.T) {
	prev := 0.0
	for _, kb := range []int{8, 16, 32, 64} {
		d, err := Custom(2, kb*1024)
		if err != nil {
			t.Fatal(err)
		}
		if d.ChipArea() <= prev {
			t.Errorf("2P/%dKB area %.1f not larger than smaller cache", kb, d.ChipArea())
		}
		prev = d.ChipArea()
	}
}
