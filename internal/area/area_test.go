package area

import (
	"math"
	"testing"
)

// The headline validation: the model must reproduce the paper's four
// published chip totals (Sections 4.2-4.5).
func TestPublishedChipAreas(t *testing.T) {
	want := map[int]float64{1: 204, 2: 279, 4: 297, 8: 306}
	for procs, w := range want {
		got := Designs()[procs].ChipArea()
		if math.Abs(got-w) > 4 {
			t.Errorf("%d-processor chip area = %.1f mm², paper %.0f mm²", procs, got, w)
		}
	}
}

func TestPublishedAreaRatios(t *testing.T) {
	// "37% larger", "46% larger", "50% larger" than the 1-processor chip.
	want := map[int]float64{2: 1.37, 4: 1.46, 8: 1.50}
	for procs, w := range want {
		got := RelativeArea(procs)
		if math.Abs(got-w) > 0.025 {
			t.Errorf("%d-processor relative area = %.3f, paper %.2f", procs, got, w)
		}
	}
}

func TestAllDesignsFitTheDie(t *testing.T) {
	for procs, d := range Designs() {
		if !d.Fits() {
			t.Errorf("%d-processor design (%.0f mm²) exceeds the economical die", procs, d.ChipArea())
		}
	}
}

func TestLoadLatencies(t *testing.T) {
	want := map[int]int{1: 2, 2: 3, 4: 4, 8: 4}
	for procs, w := range want {
		if got := Designs()[procs].LoadLatency; got != w {
			t.Errorf("%d-processor load latency = %d, want %d", procs, got, w)
		}
	}
}

func TestClusterComposition(t *testing.T) {
	ds := Designs()
	if ds[4].ChipsPerCluster != 2 || ds[4].ClusterSCCBytes() != 64*1024 {
		t.Errorf("4-processor cluster: %d chips, %d bytes", ds[4].ChipsPerCluster, ds[4].ClusterSCCBytes())
	}
	if ds[8].ChipsPerCluster != 4 || ds[8].ClusterSCCBytes() != 128*1024 {
		t.Errorf("8-processor cluster: %d chips, %d bytes", ds[8].ChipsPerCluster, ds[8].ClusterSCCBytes())
	}
	if ds[8].ClusterArea() <= ds[4].ClusterArea() {
		t.Error("8-processor cluster not larger than 4-processor cluster")
	}
}

func TestPadCounts(t *testing.T) {
	ds := Designs()
	if ds[4].SignalPads != 600 {
		t.Errorf("4-processor pads = %d, paper 600", ds[4].SignalPads)
	}
	if ds[8].SignalPads != 1100 || !ds[8].C4 {
		t.Errorf("8-processor pads = %d (C4=%v), paper 1100 with C4", ds[8].SignalPads, ds[8].C4)
	}
	if ds[1].C4 || ds[2].C4 || ds[4].C4 {
		t.Error("only the 8-processor block should need C4")
	}
}

func TestScaleArea(t *testing.T) {
	// Linear scaling: area scales with the square of the gate length.
	got := ScaleArea(100, 0.68, 0.34)
	if math.Abs(got-25) > 1e-9 {
		t.Errorf("ScaleArea(100, 0.68, 0.34) = %v, want 25", got)
	}
	// Identity.
	if ScaleArea(42, 0.4, 0.4) != 42 {
		t.Error("identity scaling changed the area")
	}
}

func TestCacheAccessFO4(t *testing.T) {
	// The paper: 64 KB is the largest direct-mapped cache accessible in
	// one 30 FO4 cycle.
	if got := CacheAccessFO4(64 * 1024); got > CycleFO4+1e-9 {
		t.Errorf("64KB access = %.1f FO4, must fit in %.0f", got, CycleFO4)
	}
	if got := CacheAccessFO4(128 * 1024); got <= CycleFO4 {
		t.Errorf("128KB access = %.1f FO4, must exceed a cycle", got)
	}
	if CacheAccessFO4(0) != 0 {
		t.Error("non-positive size should return 0")
	}
	// Monotone in size.
	if CacheAccessFO4(32*1024) >= CacheAccessFO4(64*1024) {
		t.Error("access time not monotone in size")
	}
}

func TestMaxSingleCycleCache(t *testing.T) {
	if got := MaxSingleCycleCache(); got != 64*1024 {
		t.Errorf("MaxSingleCycleCache = %d, paper says 64 KB", got)
	}
}

func TestArbitrationForcesExtraStage(t *testing.T) {
	// 17 FO4 arbitration cannot fit in the same 30 FO4 cycle as a 32 KB
	// SCC access (12+3*log2(32) = 27 FO4): hence the extra pipeline
	// stage and 3-cycle loads.
	if ArbitrationFO4+CacheAccessFO4(32*1024) <= CycleFO4 {
		t.Error("arbitration + access fits in one cycle; extra stage would not be needed")
	}
}

func TestBreakdownSumsToTotal(t *testing.T) {
	for procs, d := range Designs() {
		var sum float64
		for _, c := range d.Breakdown() {
			if c.MM2 <= 0 {
				t.Errorf("%d-processor: component %q has area %.2f", procs, c.Name, c.MM2)
			}
			sum += c.MM2
		}
		if math.Abs(sum-d.ChipArea()) > 1e-9 {
			t.Errorf("%d-processor: breakdown sums to %.2f, ChipArea %.2f", procs, sum, d.ChipArea())
		}
	}
}

func TestSRAMDensityOrdering(t *testing.T) {
	// Multiporting halves density: a 4 KB multiported block costs more
	// than half an 8 KB single-ported block.
	if SCCBlock4KB <= SRAMBlock8KB/2 {
		t.Error("multiported SRAM should be less dense than single-ported")
	}
}
