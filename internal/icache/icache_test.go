package icache

import (
	"testing"

	"sccsim/internal/synth"
	"sccsim/internal/sysmodel"
)

func TestProfilesValid(t *testing.T) {
	if len(Profiles) != 8 {
		t.Fatalf("got %d profiles, want 8", len(Profiles))
	}
	for name, p := range Profiles {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []CodeProfile{
		{HotBytes: 0, TotalBytes: 100, HotFrac: 0.5, RunLen: 4},
		{HotBytes: 200, TotalBytes: 100, HotFrac: 0.5, RunLen: 4},
		{HotBytes: 10, TotalBytes: 100, HotFrac: 1.5, RunLen: 4},
		{HotBytes: 10, TotalBytes: 100, HotFrac: 0.5, RunLen: 0},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("bad profile %d accepted", i)
		}
	}
}

func TestStreamStaysInCode(t *testing.T) {
	p := Profiles["gcc"]
	st, err := NewStream(p, 0x4000_0000, synth.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50_000; i++ {
		a := st.Next()
		if a < 0x4000_0000 || a >= 0x4000_0000+p.TotalBytes {
			t.Fatalf("fetch %#x outside the text segment", a)
		}
		if a%4 != 0 {
			t.Fatalf("misaligned fetch %#x", a)
		}
	}
}

func TestMissRateOrdering(t *testing.T) {
	// A hot nest that fits in the cache hits; gcc (48KB hot, 16KB cache)
	// misses much more than compress (3KB hot).
	mGcc, err := MissRate(Profiles["gcc"], sysmodel.ICacheSize, 200_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	mCompress, err := MissRate(Profiles["compress"], sysmodel.ICacheSize, 200_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mCompress > 0.02 {
		t.Errorf("compress icache miss rate = %.3f, want ~0", mCompress)
	}
	if mGcc < 3*mCompress {
		t.Errorf("gcc miss rate %.4f not well above compress %.4f", mGcc, mCompress)
	}
}

func TestMissRateFallsWithCacheSize(t *testing.T) {
	p := Profiles["gcc"]
	m16, err := MissRate(p, 16*1024, 200_000, 2)
	if err != nil {
		t.Fatal(err)
	}
	m64, err := MissRate(p, 64*1024, 200_000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m64 >= m16 {
		t.Errorf("miss rate did not fall with size: %.4f -> %.4f", m16, m64)
	}
}

func TestSwitchRefillPositive(t *testing.T) {
	cyc, err := SwitchRefillCycles(Profiles["gcc"], Profiles["sc"], sysmodel.ICacheSize, 4096, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cyc == 0 {
		t.Error("context switch cost zero instruction refill")
	}
	// Bounded by refilling the whole cache plus cold excursions within
	// the window.
	if cyc > uint64(4096*sysmodel.MemLatency) {
		t.Errorf("refill cost %d exceeds the window bound", cyc)
	}
}

func TestRecommendedSwitchPenalty(t *testing.T) {
	p, err := RecommendedSwitchPenalty(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A 16KB cache refilling a hot nest of a few KB at 100 cycles/line:
	// tens of thousands of cycles.
	if p < 5_000 || p > 400_000 {
		t.Errorf("recommended switch penalty = %d cycles, outside plausible range", p)
	}
	// Deterministic for a seed.
	p2, err := RecommendedSwitchPenalty(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p != p2 {
		t.Error("penalty not deterministic")
	}
}

func TestStreamHotColdMix(t *testing.T) {
	p := Profiles["spice"]
	st, err := NewStream(p, 0, synth.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	hot := 0
	n := 100_000
	for i := 0; i < n; i++ {
		if st.Next() < p.HotBytes {
			hot++
		}
	}
	frac := float64(hot) / float64(n)
	if frac < p.HotFrac-0.1 || frac > p.HotFrac+0.1 {
		t.Errorf("hot fetch fraction = %.2f, profile says %.2f", frac, p.HotFrac)
	}
}
