// Package icache models the per-processor 16 KB instruction caches that
// appear in every Section 4 floorplan. The parallel applications spend
// their time in small kernels (the paper treats their instruction
// fetching as free), but the multiprogramming workload context-switches
// between eight different binaries every scheduling quantum — each
// switch refills the instruction cache, which is one component of the
// context-switch penalty the simulator's Options.SwitchPenalty models.
//
// The model runs a real cache.Cache over a synthetic instruction-fetch
// stream: each application alternates between a hot loop nest (a small
// set of basic blocks re-executed constantly) and colder excursions over
// the rest of its code (error paths, helpers, phase changes). The
// package both measures steady-state instruction miss rates and derives
// a recommended context-switch penalty for the multiprogramming
// scheduler.
package icache

import (
	"fmt"

	"sccsim/internal/cache"
	"sccsim/internal/mem"
	"sccsim/internal/synth"
	"sccsim/internal/sysmodel"
)

// CodeProfile describes one application's instruction footprint.
type CodeProfile struct {
	// Name identifies the application.
	Name string
	// HotBytes is the size of the hot loop nest (re-executed kernels).
	HotBytes uint32
	// TotalBytes is the full code footprint (text segment actually
	// executed).
	TotalBytes uint32
	// HotFrac is the fraction of instruction fetches that hit the hot
	// nest in steady state.
	HotFrac float64
	// RunLen is the mean number of sequential fetches before a taken
	// branch redirects the stream.
	RunLen int
}

// Validate reports whether the profile is usable.
func (c CodeProfile) Validate() error {
	switch {
	case c.HotBytes == 0 || c.TotalBytes < c.HotBytes:
		return fmt.Errorf("icache: code sizes hot=%d total=%d", c.HotBytes, c.TotalBytes)
	case c.HotFrac < 0 || c.HotFrac > 1:
		return fmt.Errorf("icache: HotFrac = %v", c.HotFrac)
	case c.RunLen < 1:
		return fmt.Errorf("icache: RunLen = %d", c.RunLen)
	}
	return nil
}

// Profiles are the code footprints of the eight multiprogramming
// applications, consistent with their data-side characters (espresso's
// tiny kernels; gcc's huge text).
var Profiles = map[string]CodeProfile{
	"sc":       {Name: "sc", HotBytes: 12 << 10, TotalBytes: 160 << 10, HotFrac: 0.90, RunLen: 8},
	"espresso": {Name: "espresso", HotBytes: 8 << 10, TotalBytes: 96 << 10, HotFrac: 0.95, RunLen: 9},
	"eqntott":  {Name: "eqntott", HotBytes: 4 << 10, TotalBytes: 64 << 10, HotFrac: 0.97, RunLen: 10},
	"xlisp":    {Name: "xlisp", HotBytes: 10 << 10, TotalBytes: 120 << 10, HotFrac: 0.88, RunLen: 6},
	"compress": {Name: "compress", HotBytes: 3 << 10, TotalBytes: 48 << 10, HotFrac: 0.98, RunLen: 12},
	"gcc":      {Name: "gcc", HotBytes: 48 << 10, TotalBytes: 1024 << 10, HotFrac: 0.70, RunLen: 7},
	"spice":    {Name: "spice", HotBytes: 20 << 10, TotalBytes: 384 << 10, HotFrac: 0.85, RunLen: 9},
	"wave5":    {Name: "wave5", HotBytes: 14 << 10, TotalBytes: 256 << 10, HotFrac: 0.93, RunLen: 14},
}

// Stream generates the application's instruction-fetch address sequence.
type Stream struct {
	prof     CodeProfile
	rng      *synth.RNG
	base     uint32
	pc       uint32
	runLeft  int
	inHot    bool
	coldNext uint32
}

// NewStream builds a fetch stream for the profile, with code placed at
// base (code address spaces of different processes are disjoint).
func NewStream(prof CodeProfile, base uint32, rng *synth.RNG) (*Stream, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	return &Stream{prof: prof, rng: rng, base: base, inHot: true}, nil
}

// Next returns the next fetch address.
func (s *Stream) Next() uint32 {
	if s.runLeft <= 0 {
		// Taken branch: choose the next target region.
		s.inHot = s.rng.Float64() < s.prof.HotFrac
		if s.inHot {
			s.pc = s.base + uint32(s.rng.Intn(int(s.prof.HotBytes/4)))*4
		} else {
			// Cold code is visited with modest sequential locality:
			// walk forward through the text segment.
			s.coldNext += uint32(s.rng.Intn(2048)) * 4
			s.coldNext %= s.prof.TotalBytes - s.prof.HotBytes
			s.pc = s.base + s.prof.HotBytes + s.coldNext
		}
		s.runLeft = 1 + s.rng.Intn(2*s.prof.RunLen)
	}
	addr := s.pc
	s.pc += 4
	s.runLeft--
	return addr
}

// MissRate measures the steady-state instruction miss rate of the
// profile in a cache of cacheBytes, over n fetches after a warmup of
// n/4.
func MissRate(prof CodeProfile, cacheBytes, n int, seed int64) (float64, error) {
	c, err := cache.New(cacheBytes, 1)
	if err != nil {
		return 0, err
	}
	st, err := NewStream(prof, 0x1000_0000, synth.NewRNG(seed))
	if err != nil {
		return 0, err
	}
	for i := 0; i < n/4; i++ {
		c.Access(st.Next(), mem.Read)
	}
	misses0 := c.Stats().TotalMisses()
	acc0 := c.Stats().TotalAccesses()
	for i := 0; i < n; i++ {
		c.Access(st.Next(), mem.Read)
	}
	dm := c.Stats().TotalMisses() - misses0
	da := c.Stats().TotalAccesses() - acc0
	return float64(dm) / float64(da), nil
}

// SwitchRefillCycles measures the instruction-cache cost of one context
// switch: it fills the cache with the outgoing application's stream,
// switches to the incoming one, and counts the extra misses (vs steady
// state) over the first window fetches, each costing MemLatency.
func SwitchRefillCycles(out, in CodeProfile, cacheBytes, window int, seed int64) (uint64, error) {
	c, err := cache.New(cacheBytes, 1)
	if err != nil {
		return 0, err
	}
	rng := synth.NewRNG(seed)
	so, err := NewStream(out, 0x1000_0000, rng)
	if err != nil {
		return 0, err
	}
	si, err := NewStream(in, 0x2000_0000, rng)
	if err != nil {
		return 0, err
	}
	// Let the outgoing application own the cache.
	for i := 0; i < window*4; i++ {
		c.Access(so.Next(), mem.Read)
	}
	// Steady-state baseline for the incoming application.
	steady, err := MissRate(in, cacheBytes, window*4, seed+1)
	if err != nil {
		return 0, err
	}
	m0 := c.Stats().TotalMisses()
	for i := 0; i < window; i++ {
		c.Access(si.Next(), mem.Read)
	}
	extra := float64(c.Stats().TotalMisses()-m0) - steady*float64(window)
	if extra < 0 {
		extra = 0
	}
	return uint64(extra * sysmodel.MemLatency), nil
}

// RecommendedSwitchPenalty returns the mean instruction-refill cost of a
// context switch among the multiprogramming applications in a 16 KB
// instruction cache — a derived value for sim.Options.SwitchPenalty.
// window is the fetch horizon over which refill misses are charged
// (fetches beyond it overlap with useful work); 0 means 4096.
func RecommendedSwitchPenalty(window int, seed int64) (uint64, error) {
	if window == 0 {
		window = 4096
	}
	names := []string{"sc", "espresso", "eqntott", "xlisp", "compress", "gcc", "spice", "wave5"}
	var total uint64
	var n uint64
	for i, out := range names {
		in := names[(i+1)%len(names)]
		cyc, err := SwitchRefillCycles(Profiles[out], Profiles[in], sysmodel.ICacheSize, window, seed+int64(i))
		if err != nil {
			return 0, err
		}
		total += cyc
		n++
	}
	return total / n, nil
}
