package explorer

import (
	"testing"

	"sccsim/internal/mem"
	"sccsim/internal/sim"
	"sccsim/internal/sysmodel"
)

// Cross-cutting invariants checked on every workload at quick scale.

func TestWorkConservation(t *testing.T) {
	// The simulator must execute exactly the references the generator
	// produced, at every design point.
	s := QuickScale()
	for _, w := range ParallelWorkloads {
		prog, err := GenerateParallel(w, 8, s)
		if err != nil {
			t.Fatal(err)
		}
		want := prog.Refs()
		for _, size := range []int{4 * 1024, 512 * 1024} {
			cfg := sysmodel.Default(2, size)
			res, err := sim.Run(cfg, sim.Options{}, prog)
			if err != nil {
				t.Fatal(err)
			}
			if res.Refs != want {
				t.Errorf("%s at %dKB: simulated %d refs, trace has %d", w, size/1024, res.Refs, want)
			}
			agg := res.AggregateSCC()
			if agg.TotalAccesses() != want {
				t.Errorf("%s at %dKB: cache saw %d accesses, trace has %d",
					w, size/1024, agg.TotalAccesses(), want)
			}
		}
	}
}

func TestMissesBoundedByAccessesEverywhere(t *testing.T) {
	s := QuickScale()
	for _, w := range ParallelWorkloads {
		g, err := SweepParallel(w, s, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range g.Points {
			for _, pt := range row {
				agg := pt.Result.AggregateSCC()
				if agg.TotalMisses() > agg.TotalAccesses() {
					t.Errorf("%s %v: misses %d > accesses %d",
						w, pt.Config, agg.TotalMisses(), agg.TotalAccesses())
				}
				if agg.Evictions > agg.TotalMisses() {
					t.Errorf("%s %v: evictions %d > misses %d",
						w, pt.Config, agg.Evictions, agg.TotalMisses())
				}
			}
		}
	}
}

func TestColdMissesLowerBound(t *testing.T) {
	// At any cache size, total misses are at least the per-cluster
	// distinct-line count the workload touches (each cluster must fetch
	// a line at least once). Checked loosely via the global footprint:
	// misses >= footprint lines (every line fetched somewhere at least
	// once).
	s := QuickScale()
	prog, err := GenerateParallel(BarnesHut, 8, s)
	if err != nil {
		t.Fatal(err)
	}
	lines := map[uint32]struct{}{}
	for _, ph := range prog.Phases {
		for _, st := range ph.Streams {
			for _, r := range st {
				if r.Kind != mem.Idle {
					lines[sysmodel.LineIndex(r.Addr)] = struct{}{}
				}
			}
		}
	}
	cfg := sysmodel.Default(2, 512*1024)
	res, err := sim.Run(cfg, sim.Options{}, prog)
	if err != nil {
		t.Fatal(err)
	}
	agg := res.AggregateSCC()
	if agg.TotalMisses() < uint64(len(lines)) {
		t.Errorf("misses %d < distinct lines %d: lines appeared from nowhere",
			agg.TotalMisses(), len(lines))
	}
}

func TestSharedBeatsPrivateOnParallelWorkloads(t *testing.T) {
	// The paper's architectural claim, end to end: at the 32-processor
	// design point the shared-cache organization beats private caches
	// on the sharing-heavy parallel workloads.
	s := QuickScale()
	for _, w := range []Workload{BarnesHut, MP3D} {
		prog, err := GenerateParallel(w, 32, s)
		if err != nil {
			t.Fatal(err)
		}
		cfg := sysmodel.Default(8, 128*1024)
		shared, err := sim.Run(cfg, sim.Options{}, prog)
		if err != nil {
			t.Fatal(err)
		}
		priv, err := sim.RunPrivate(cfg, sim.Options{}, prog)
		if err != nil {
			t.Fatal(err)
		}
		// MP3D's particles are spatially random, so intra-cluster
		// constructive sharing is weak and the two organizations can
		// tie; allow 5% either way there, strict for Barnes-Hut.
		limit := 1.0
		if w == MP3D {
			limit = 1.05
		}
		if float64(shared.Cycles) > limit*float64(priv.Cycles) {
			t.Errorf("%s: shared SCC (%d cycles) slower than private caches (%d)",
				w, shared.Cycles, priv.Cycles)
		}
		if priv.Snoop.Invalidations < shared.Snoop.Invalidations {
			t.Errorf("%s: private caches produced fewer invalidations (%d) than shared (%d)",
				w, priv.Snoop.Invalidations, shared.Snoop.Invalidations)
		}
	}
}

func TestInvalidationClusterInvariance(t *testing.T) {
	// Section 3.1.2: "adding more processors to each cluster had almost
	// no effect on the invalidation traffic between clusters". With the
	// cluster count fixed at four, invalidations at 8 procs/cluster must
	// stay within 2x of the 1 proc/cluster count (the paper reports
	// flat-to-decreasing).
	s := QuickScale()
	for _, w := range ParallelWorkloads {
		g, err := SweepParallel(w, s, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, size := range []int{64 * 1024, 512 * 1024} {
			i1 := g.At(size, 1).Result.Snoop.Invalidations
			i8 := g.At(size, 8).Result.Snoop.Invalidations
			if i1 == 0 {
				continue
			}
			if float64(i8) > 2.0*float64(i1) {
				t.Errorf("%s at %dKB: invalidations grew %d -> %d with procs/cluster",
					w, size/1024, i1, i8)
			}
		}
	}
}

func TestFlatBusInvalidationsGrow(t *testing.T) {
	// The motivating contrast: on a flat snoopy machine, going from 4 to
	// 32 processors increases invalidations; in the clustered design,
	// 4 snoopers stay 4 snoopers.
	s := QuickScale()
	run := func(procs int) uint64 {
		prog, err := GenerateParallel(MP3D, procs, s)
		if err != nil {
			t.Fatal(err)
		}
		cfg := sysmodel.Config{Clusters: procs, ProcsPerCluster: 1,
			SCCBytes: 16 * 1024, LoadLatency: 2, Assoc: 1}
		res, err := sim.Run(cfg, sim.Options{}, prog)
		if err != nil {
			t.Fatal(err)
		}
		return res.Snoop.Invalidations
	}
	i4, i32 := run(4), run(32)
	if i32 <= i4 {
		t.Errorf("flat bus: invalidations did not grow with processors (%d at 4P, %d at 32P)", i4, i32)
	}
}
