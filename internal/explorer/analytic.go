// The analytic backend: the same design-space sweeps as engine.go, but
// each point is *predicted* from a reuse-distance profile
// (internal/rdmodel) instead of simulated cycle by cycle. A profile is
// built once per system shape — (workload, processors, clusters) for
// parallel workloads, (trace, scheduling slots) for multiprogramming —
// and answers every SCC size on the grid in microseconds, which is what
// makes the analytic grid orders of magnitude faster than the exact
// one. Profiles are content-keyed and cached alongside the traces they
// were measured from, and the points flow through the same runPoints
// pool, so Progress events, SweepReports and manifests work identically
// for both backends.

package explorer

import (
	"context"
	"fmt"
	"math"
	"sync"

	"sccsim/internal/cache"
	"sccsim/internal/mem"
	"sccsim/internal/rdmodel"
	"sccsim/internal/scc"
	"sccsim/internal/sim"
	"sccsim/internal/snoop"
	"sccsim/internal/sysmodel"
	"sccsim/internal/trace"
	"sccsim/internal/workload/multiprog"
)

// Backend names a result-producing strategy: the exact cycle simulator
// or the analytic reuse-distance model. The zero value is not valid at
// API boundaries; parse user input with ParseBackend.
type Backend string

const (
	// BackendExact is the trace-driven cycle simulator (internal/sim) —
	// the ground truth every paper table is generated from.
	BackendExact Backend = "exact"
	// BackendAnalytic is the reuse-distance model (internal/rdmodel):
	// predicted miss ratios and estimated cycles, orders of magnitude
	// faster, accurate within the bounds asserted by the verify
	// cross-validator.
	BackendAnalytic Backend = "analytic"
)

// AllBackends lists every backend.
var AllBackends = []Backend{BackendExact, BackendAnalytic}

// ParseBackend maps a backend name to its Backend, validating it
// against AllBackends — the boundary check for callers that receive
// backend names as strings.
func ParseBackend(name string) (Backend, error) {
	for _, b := range AllBackends {
		if name == string(b) {
			return b, nil
		}
	}
	return "", fmt.Errorf("unknown backend %q (want one of %v)", name, AllBackends)
}

// ---- Profile cache ----
//
// A reuse-distance profile is immutable once built and depends only on
// the trace content and the system shape, so — exactly like traces —
// one profile backs every design point and every concurrent worker that
// shares its key. Building a profile is the analytic backend's only
// expensive step; the cache makes a full grid pay for it once per
// distinct processor count.

type profileKey struct {
	w        Workload
	procs    int
	clusters int
	scale    Scale
}

type scheduledProfileKey struct {
	refs  int
	seed  int64
	slots int
}

type profileEntry struct {
	once sync.Once
	prof *rdmodel.Profile
	err  error
}

var profileCache = struct {
	sync.Mutex
	parallel  map[profileKey]*profileEntry
	scheduled map[scheduledProfileKey]*profileEntry
}{
	parallel:  make(map[profileKey]*profileEntry),
	scheduled: make(map[scheduledProfileKey]*profileEntry),
}

// maxCachedProfiles bounds the profile cache the same way
// maxCachedTraces bounds the trace cache.
const maxCachedProfiles = 32

func resetProfileCache() {
	profileCache.Lock()
	defer profileCache.Unlock()
	profileCache.parallel = make(map[profileKey]*profileEntry)
	profileCache.scheduled = make(map[scheduledProfileKey]*profileEntry)
}

// cachedParallelProfile returns the shared profile for a (workload,
// procs, clusters, scale) key, building it from prog on first use.
func cachedParallelProfile(w Workload, clusters int, s Scale, prog *trace.Program) (*rdmodel.Profile, error) {
	comp, err := trace.Compile(prog)
	if err != nil {
		return nil, err
	}
	profileCache.Lock()
	if len(profileCache.parallel) >= maxCachedProfiles {
		profileCache.parallel = make(map[profileKey]*profileEntry)
	}
	key := profileKey{w, comp.Procs, clusters, s}
	e, ok := profileCache.parallel[key]
	if !ok {
		e = &profileEntry{}
		profileCache.parallel[key] = e
	}
	profileCache.Unlock()
	e.once.Do(func() {
		e.prof, e.err = rdmodel.BuildProfile(comp, clusters, rdmodel.DefaultCap())
	})
	return e.prof, e.err
}

// cachedScheduledProfile returns the shared multiprogramming profile
// for a (refs, seed, slots) key.
func cachedScheduledProfile(refs int, seed int64, slots int, quantum uint64, pset []sim.Process) (*rdmodel.Profile, error) {
	profileCache.Lock()
	if len(profileCache.scheduled) >= maxCachedProfiles {
		profileCache.scheduled = make(map[scheduledProfileKey]*profileEntry)
	}
	key := scheduledProfileKey{refs, seed, slots}
	e, ok := profileCache.scheduled[key]
	if !ok {
		e = &profileEntry{}
		profileCache.scheduled[key] = e
	}
	profileCache.Unlock()
	e.once.Do(func() {
		streams := make([][]mem.Ref, len(pset))
		for i := range pset {
			streams[i] = pset[i].Refs
		}
		e.prof, e.err = rdmodel.BuildScheduledProfile("multiprog", streams, slots, quantum, rdmodel.DefaultCap())
	})
	return e.prof, e.err
}

// analyticResult shapes a prediction as a *sim.Result so grids, tables,
// manifests and the serve layer handle both backends uniformly. Only
// the fields the model predicts are populated: Cycles/PhaseCycles (the
// issue+miss-stall estimate), Refs, per-cluster cache statistics
// (expected counts, rounded), and per-processor read-stall estimates.
// Contention, coherence and scheduling statistics the model does not
// cover (bank stalls, snoop traffic, lock spins, switches) are zero —
// present, so consumers need no nil checks, but not claims.
func analyticResult(cfg sysmodel.Config, prof *rdmodel.Profile, pred *rdmodel.Prediction) *sim.Result {
	procs := cfg.Procs()
	res := &sim.Result{
		Config:      cfg,
		Cycles:      pred.EstCycles,
		Refs:        prof.Refs,
		ProcFinish:  make([]uint64, procs),
		ReadStall:   make([]uint64, procs),
		WriteStall:  make([]uint64, procs),
		BankStall:   make([]uint64, procs),
		BarrierWait: make([]uint64, procs),
		LockStall:   make([]uint64, procs),
		PhaseCycles: append([]uint64(nil), pred.EstPhaseCycles...),
		SCC:         make([]*cache.Stats, cfg.Clusters),
		SCCBank:     make([]*scc.Stats, cfg.Clusters),
		Snoop:       &snoop.Stats{},
	}
	ppc := procs / cfg.Clusters
	for p := 0; p < procs; p++ {
		res.ProcFinish[p] = pred.EstCycles
	}
	// Per-processor read-stall estimate: the processor's share of its
	// cluster's predicted misses, at full memory latency each.
	for i := range prof.ReadRefs {
		for p := 0; p < len(prof.ReadRefs[i]) && p < procs; p++ {
			rate := pred.Cluster[p/ppc].ReadMissRate()
			res.ReadStall[p] += uint64(math.Round(
				rate * float64(prof.ReadRefs[i][p]) * float64(sysmodel.MemLatency)))
		}
	}
	for cl := 0; cl < cfg.Clusters; cl++ {
		cp := pred.Cluster[cl]
		cs := &cache.Stats{}
		cs.Accesses[mem.Read] = uint64(math.Round(cp.Reads))
		cs.Accesses[mem.Write] = uint64(math.Round(cp.Writes))
		cs.Misses[mem.Read] = uint64(math.Round(cp.ReadMisses))
		cs.Misses[mem.Write] = uint64(math.Round(cp.WriteMisses))
		res.SCC[cl] = cs
		res.SCCBank[cl] = &scc.Stats{}
	}
	return res
}

// AnalyticSupports reports whether the analytic backend can model a
// configuration's architecture axes, with an actionable error when it
// cannot. The reuse-distance profile is measured at the paper's 16-byte
// line granularity and assumes LRU within a set over a shared SCC, so
// non-default line sizes, random replacement and the private/hybrid
// hierarchies are rejected (use the exact backend for those);
// associativity is modeled (see rdmodel.Predict's binomial set-assoc
// model) and passes through.
func AnalyticSupports(cfg sysmodel.Config) error {
	if lb := cfg.Line(); lb != sysmodel.LineSize {
		return fmt.Errorf("explorer: analytic backend models %d-byte lines only (got line_bytes=%d); use the exact backend",
			sysmodel.LineSize, lb)
	}
	if r := cfg.ReplPolicy(); r != sysmodel.ReplLRU {
		return fmt.Errorf("explorer: analytic backend models lru replacement only (got repl=%q); use the exact backend", r)
	}
	if h := cfg.HierarchyKind(); h != sysmodel.HierarchyShared {
		return fmt.Errorf("explorer: analytic backend models the shared hierarchy only (got hierarchy=%q); use the exact backend", h)
	}
	return nil
}

// analyticParallelPoint resolves the trace, profile and prediction for
// one parallel design point.
func analyticParallelPoint(w Workload, cfg sysmodel.Config, s Scale, tc *traceCounters, dc trace.Store) (*Point, error) {
	prog, src, err := cachedParallelProgram(w, cfg.Procs(), s, dc)
	if err != nil {
		return nil, err
	}
	tc.record(src)
	prof, err := cachedParallelProfile(w, cfg.Clusters, s, prog)
	if err != nil {
		return nil, err
	}
	pred, err := prof.Predict(cfg.SCCBytes, cfg.Assoc)
	if err != nil {
		return nil, fmt.Errorf("explorer: %s at %v: %w", w, cfg, err)
	}
	return &Point{Config: cfg, Result: analyticResult(cfg, prof, pred)}, nil
}

// analyticMultiprogPoint resolves the process set, scheduled profile
// and prediction for one multiprogramming design point.
func analyticMultiprogPoint(cfg sysmodel.Config, s Scale, tc *traceCounters, dc trace.Store) (*Point, error) {
	refs := multiprogRefs(s)
	pset, src, err := cachedMultiprogProcesses(refs, s.Seed, dc)
	if err != nil {
		return nil, err
	}
	tc.record(src)
	prof, err := cachedScheduledProfile(refs, s.Seed, cfg.Procs(), multiprog.Quantum(refs), pset)
	if err != nil {
		return nil, err
	}
	pred, err := prof.Predict(cfg.SCCBytes, cfg.Assoc)
	if err != nil {
		return nil, fmt.Errorf("explorer: multiprog at %v: %w", cfg, err)
	}
	return &Point{Config: cfg, Result: analyticResult(cfg, prof, pred)}, nil
}

// analyticJobFor builds the engine job for one analytic design point,
// sharing the exact path's configuration rules.
func analyticJobFor(w Workload, cfg sysmodel.Config, s Scale, tc *traceCounters, dc trace.Store) pointJob {
	return pointJob{cfg: cfg, run: func(ctx context.Context, _ sim.Tracer) (*Point, error) {
		if w == Multiprog {
			return analyticMultiprogPoint(cfg, s, tc, dc)
		}
		return analyticParallelPoint(w, cfg, s, tc, dc)
	}}
}

// SweepAnalyticCtx runs the full design-space sweep on the analytic
// backend: the same grid, worker pool, progress events and report as
// SweepCtx, with every point predicted from a cached reuse-distance
// profile. Simulator options do not apply to the model and are not
// accepted; the paper's default system model is assumed throughout.
func SweepAnalyticCtx(ctx context.Context, w Workload, s Scale, eng EngineOptions) (*Grid, error) {
	eng.Backend = BackendAnalytic
	if err := AnalyticSupports(eng.Axes.Apply(sysmodel.Default(1, 64*1024))); err != nil {
		return nil, err
	}
	tc := &traceCounters{reg: eng.Metrics}
	jobs := make([]pointJob, 0, len(sysmodel.SCCSizes)*len(sysmodel.ProcsPerClusterSweep))
	for _, size := range sysmodel.SCCSizes {
		for _, ppc := range sysmodel.ProcsPerClusterSweep {
			var cfg sysmodel.Config
			if w == Multiprog {
				cfg = sysmodel.Config{
					Clusters: 1, ProcsPerCluster: ppc, SCCBytes: size,
					LoadLatency: sysmodel.ImpliedLoadLatency(ppc), Assoc: 1,
				}
			} else {
				cfg = sysmodel.Default(ppc, size)
			}
			jobs = append(jobs, analyticJobFor(w, eng.Axes.Apply(cfg), s, tc, eng.TraceCache))
		}
	}
	points, err := runPoints(ctx, w, jobs, eng, tc)
	if err != nil {
		return nil, err
	}
	return assembleGrid(w, points), nil
}

// RunPointAnalyticCtx predicts one RunPoint-style design point on the
// analytic backend, sharing RunPoint's configuration rules
// (multiprogramming runs on a single cluster) and applying the
// architecture axes on top of the paper's default machine.
func RunPointAnalyticCtx(ctx context.Context, w Workload, ppc, sccBytes int, axes sysmodel.Axes, s Scale) (*Point, error) {
	cfg := sysmodel.Default(ppc, sccBytes)
	if w == Multiprog {
		cfg.Clusters = 1
	}
	return RunConfigAnalyticCtx(ctx, w, axes.Apply(cfg), s)
}

// RunConfigAnalyticCtx predicts an arbitrary configuration on the
// analytic backend, rejecting axes the model cannot answer for (see
// AnalyticSupports).
func RunConfigAnalyticCtx(ctx context.Context, w Workload, cfg sysmodel.Config, s Scale) (*Point, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := AnalyticSupports(cfg); err != nil {
		return nil, err
	}
	tc := (*traceCounters)(nil)
	if w == Multiprog {
		return analyticMultiprogPoint(cfg, s, tc, nil)
	}
	return analyticParallelPoint(w, cfg, s, tc, nil)
}
