// The concurrent sweep engine: the paper's evaluation is a 7x4
// design-space grid per workload, and every point is an independent
// simulation over an immutable trace. The engine runs those points on a
// bounded worker pool, shares one generated trace per processor count
// through a keyed cache, and assembles the grid deterministically so the
// rendered tables are byte-identical to the serial path regardless of
// completion order.

package explorer

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sccsim/internal/mem"
	"sccsim/internal/obs"
	"sccsim/internal/sim"
	"sccsim/internal/sysmodel"
	"sccsim/internal/trace"
	"sccsim/internal/workload/multiprog"
)

// Progress is one event from the sweep engine, delivered after each
// completed design point. Events are serialized: Done increases by one
// per event and reaches Total exactly once. The JSON field names are
// part of the serve layer's NDJSON streaming contract.
type Progress struct {
	// Workload the engine is sweeping.
	Workload Workload `json:"workload"`
	// Done and Total count completed and scheduled design points.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Elapsed is wall-clock time since the engine started.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Config is the design point that just finished.
	Config sysmodel.Config `json:"config"`
	// PointTime is how long that point's simulation took.
	PointTime time.Duration `json:"point_ns"`
	// QueueWait is how long the point sat scheduled before a worker
	// picked it up.
	QueueWait time.Duration `json:"queue_wait_ns"`
	// TraceHits and TraceMisses are the sweep's cumulative trace-cache
	// counts at the time of the event: a miss resolves a workload trace
	// (from disk or a generator), a hit reuses an in-memory one (the
	// miss count for a whole sweep equals the number of distinct trace
	// keys — each trace is resolved exactly once).
	TraceHits   uint64 `json:"trace_hits"`
	TraceMisses uint64 `json:"trace_misses"`
	// TraceDiskHits counts misses satisfied by the persistent disk cache
	// (EngineOptions.TraceCache); TraceGenerated counts misses that ran
	// a workload generator. DiskHits + Generated == Misses.
	TraceDiskHits  uint64 `json:"trace_disk_hits"`
	TraceGenerated uint64 `json:"trace_generated"`
}

// SweepReport summarizes a completed sweep: wall-clock and per-point
// timings, worker-pool utilization, and trace-cache effectiveness. It
// feeds the run manifest (see the sccsim facade) and the CLI's
// diagnostics.
type SweepReport struct {
	// Workload the engine swept.
	Workload Workload `json:"workload"`
	// Backend that produced the points: "exact" (the cycle simulator)
	// or "analytic" (the reuse-distance model) — stamped so a report is
	// never ambiguous about what kind of numbers it summarizes.
	Backend Backend `json:"backend"`
	// Points is the number of design points run; Workers the pool size.
	Points  int `json:"points"`
	Workers int `json:"workers"`
	// Wall is the whole sweep's wall-clock time.
	Wall time.Duration `json:"wall_ns"`
	// PointWall[i] is design point i's simulation time, in job order
	// (SCC-size-major, matching the serial sweep loops).
	PointWall []time.Duration `json:"point_wall_ns"`
	// QueueWait[i] is how long point i waited for a worker.
	QueueWait []time.Duration `json:"queue_wait_ns"`
	// Busy is the sum of PointWall — total simulation work done.
	Busy time.Duration `json:"busy_ns"`
	// Utilization is Busy / (Workers * Wall): 1.0 means every worker
	// simulated for the whole sweep.
	Utilization float64 `json:"utilization"`
	// TraceHits and TraceMisses count trace-cache lookups: each miss
	// resolved a workload trace, each hit shared an in-memory one.
	TraceHits   uint64 `json:"trace_hits"`
	TraceMisses uint64 `json:"trace_misses"`
	// TraceDiskHits counts misses satisfied by the persistent disk
	// cache; TraceGenerated counts misses that ran a workload generator.
	// A sweep against a warm disk cache reports TraceGenerated == 0.
	TraceDiskHits  uint64 `json:"trace_disk_hits"`
	TraceGenerated uint64 `json:"trace_generated"`
}

// EngineOptions tunes the concurrent sweep engine. The zero value runs
// one worker per available CPU (GOMAXPROCS) with no progress reporting
// and no instrumentation.
type EngineOptions struct {
	// Parallelism is the worker-pool size; <= 0 means GOMAXPROCS.
	// Results are deterministic for every value.
	Parallelism int
	// Axes overrides the architecture axes (line size, associativity,
	// replacement policy, hierarchy) of every design point the engine
	// builds. The zero value leaves each point's configuration exactly
	// as the default sweep constructs it, preserving byte-identical
	// grids. Trace resolution is unaffected: the axes change the machine,
	// not the workload, so trace-cache keys do not include them.
	Axes sysmodel.Axes
	// Backend labels the sweep's result-producing strategy in reports
	// and progress accounting; empty means BackendExact. The analytic
	// entry points set it themselves — it is informational, not a
	// dispatch switch.
	Backend Backend
	// Progress, when non-nil, is called (serially, from engine
	// goroutines) after every completed design point.
	Progress func(Progress)
	// Report, when non-nil, is called once after a sweep completes
	// successfully with the sweep's telemetry.
	Report func(SweepReport)
	// NewTracer, when non-nil, is called once per design point to build
	// that run's simulator tracer (e.g. an obs collector track). The
	// engine never shares a tracer between concurrent runs.
	NewTracer func(cfg sysmodel.Config) sim.Tracer
	// Metrics, when non-nil, receives live engine counters
	// (explorer.points_done, explorer.trace_cache_{hits,misses},
	// explorer.trace_{disk_hits,generated}) and a per-point wall-time
	// histogram (explorer.point_ms) — the registry a long-running CLI
	// exposes over expvar.
	Metrics *obs.Registry
	// TraceCache, when non-nil, is a persistent trace store consulted
	// before running a workload generator and populated after: repeated
	// sweeps — across processes — skip generation entirely. The
	// in-memory cache still fronts it, so a warm process touches the
	// store once per distinct trace key. Single-node deployments pass a
	// trace.DiskCache; cluster workers pass a trace.PeerCache so traces
	// any node in the fleet has generated are fetched, not regenerated.
	TraceCache trace.Store
	// Remote, when non-nil, executes design points on other nodes: the
	// cluster sweep path (SweepClusterCtx) offers every point to Remote
	// first and falls back to local simulation when the call fails, so
	// a sweep completes — with identical results — whether the fleet is
	// healthy, degraded, or absent. Exact backend only; analytic sweeps
	// ignore it.
	Remote RemotePointFunc
	// Logger, when non-nil, receives a debug-level record per completed
	// design point. The facade stamps it with the request ID, so engine
	// logs are joinable to the request that ran the sweep.
	Logger *slog.Logger
}

func (o EngineOptions) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// pointJob is one design point scheduled on the engine. run receives the
// point's tracer (nil unless EngineOptions.NewTracer is set) and wires
// it into the simulator options.
type pointJob struct {
	cfg sysmodel.Config
	run func(ctx context.Context, tr sim.Tracer) (*Point, error)
}

// traceSource says how a trace-cache lookup resolved.
type traceSource int

const (
	// traceShared: the in-memory cache already had (or was resolving)
	// the trace.
	traceShared traceSource = iota
	// traceFromDisk: this lookup loaded the trace from the persistent
	// disk cache.
	traceFromDisk
	// traceGenerated: this lookup ran the workload generator.
	traceGenerated
)

// traceCounters accumulates one sweep's trace-cache lookups; jobs record
// into it and the engine folds the totals into Progress events and the
// SweepReport. A nil receiver no-ops (points run outside a sweep).
type traceCounters struct {
	hits, misses        atomic.Uint64
	diskHits, generated atomic.Uint64
	reg                 *obs.Registry
}

// record notes one cache lookup. A memory-level hit shares an
// already-resolved trace; a miss resolved it from disk or a generator.
func (t *traceCounters) record(src traceSource) {
	if t == nil {
		return
	}
	switch src {
	case traceShared:
		t.hits.Add(1)
		t.reg.Counter("explorer.trace_cache_hits").Inc()
	case traceFromDisk:
		t.misses.Add(1)
		t.diskHits.Add(1)
		t.reg.Counter("explorer.trace_cache_misses").Inc()
		t.reg.Counter("explorer.trace_disk_hits").Inc()
	default:
		t.misses.Add(1)
		t.generated.Add(1)
		t.reg.Counter("explorer.trace_cache_misses").Inc()
		t.reg.Counter("explorer.trace_generated").Inc()
	}
}

// loads returns the current (hits, misses, diskHits, generated).
func (t *traceCounters) loads() (hits, misses, diskHits, generated uint64) {
	if t == nil {
		return 0, 0, 0, 0
	}
	return t.hits.Load(), t.misses.Load(), t.diskHits.Load(), t.generated.Load()
}

// pointWallBucketsMS is the fixed bucket layout (milliseconds) of the
// engine's per-point wall-time histogram — the canonical latency layout
// shared with the HTTP middleware.
var pointWallBucketsMS = obs.LatencyBucketsMS

// runPoints executes the jobs on a bounded worker pool and returns their
// results in job order. On the first job error the engine cancels the
// remaining jobs and returns that error; results are nil on failure.
func runPoints(ctx context.Context, w Workload, jobs []pointJob, eng EngineOptions, tc *traceCounters) ([]*Point, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := eng.workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]*Point, len(jobs))
	errs := make([]error, len(jobs))
	pointWall := make([]time.Duration, len(jobs))
	queueWait := make([]time.Duration, len(jobs))
	idxCh := make(chan int)
	start := time.Now()
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex // serializes progress events
		done int
	)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range idxCh {
				if err := ctx.Err(); err != nil {
					errs[idx] = err
					continue
				}
				t0 := time.Now()
				queueWait[idx] = t0.Sub(start)
				var tr sim.Tracer
				if eng.NewTracer != nil {
					tr = eng.NewTracer(jobs[idx].cfg)
				}
				pt, err := jobs[idx].run(ctx, tr)
				if err != nil {
					errs[idx] = err
					cancel()
					continue
				}
				pointWall[idx] = time.Since(t0)
				results[idx] = pt
				if m := eng.Metrics; m != nil {
					m.Counter("explorer.points_done").Inc()
					m.Histogram("explorer.point_ms", pointWallBucketsMS).
						Observe(uint64(pointWall[idx].Milliseconds()))
				}
				if eng.Logger != nil {
					eng.Logger.Debug("point done",
						"workload", string(w),
						"clusters", pt.Config.Clusters,
						"procs_per_cluster", pt.Config.ProcsPerCluster,
						"scc_bytes", pt.Config.SCCBytes,
						"wall_ms", pointWall[idx].Milliseconds())
				}
				if eng.Progress != nil {
					hits, misses, diskHits, generated := tc.loads()
					mu.Lock()
					done++
					eng.Progress(Progress{
						Workload: w,
						Done:     done, Total: len(jobs),
						Elapsed:        time.Since(start),
						Config:         pt.Config,
						PointTime:      pointWall[idx],
						QueueWait:      queueWait[idx],
						TraceHits:      hits,
						TraceMisses:    misses,
						TraceDiskHits:  diskHits,
						TraceGenerated: generated,
					})
					mu.Unlock()
				}
			}
		}()
	}
	for idx := range jobs {
		idxCh <- idx
	}
	close(idxCh)
	wg.Wait()

	// First-error propagation: prefer the job that actually failed over
	// jobs that merely observed the resulting cancellation, and report
	// the lowest job index among those for determinism.
	var firstCtx error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if firstCtx == nil {
				firstCtx = err
			}
			continue
		}
		return nil, err
	}
	if firstCtx != nil {
		return nil, firstCtx
	}
	if eng.Report != nil {
		wall := time.Since(start)
		var busy time.Duration
		for _, d := range pointWall {
			busy += d
		}
		util := 0.0
		if wall > 0 && workers > 0 {
			util = float64(busy) / (float64(workers) * float64(wall))
		}
		hits, misses, diskHits, generated := tc.loads()
		backend := eng.Backend
		if backend == "" {
			backend = BackendExact
		}
		eng.Report(SweepReport{
			Workload: w, Backend: backend,
			Points: len(jobs), Workers: workers,
			Wall:      wall,
			PointWall: pointWall,
			QueueWait: queueWait,
			Busy:      busy, Utilization: util,
			TraceHits: hits, TraceMisses: misses,
			TraceDiskHits: diskHits, TraceGenerated: generated,
		})
	}
	return results, nil
}

// ---- Trace cache ----
//
// Traces are immutable once generated (see trace.Program) and the
// simulator never mutates them (see sim.Run), so one generated program
// can back every design point — and every concurrent worker — that
// shares its (workload, procs, scale) key. The cache also persists
// across engine calls, so e.g. the cost/performance entries reuse the
// programs a full sweep already generated.

type parallelKey struct {
	w     Workload
	procs int
	scale Scale
}

type multiprogKey struct {
	refs int
	seed int64
}

// cacheEntry resolves once; concurrent requesters block on the first
// resolution instead of duplicating it. src records how the resolving
// call got the trace (disk or generator) for the sweep counters.
type cacheEntry struct {
	once sync.Once
	prog *trace.Program
	pset []sim.Process
	src  traceSource
	err  error
}

var traceCache = struct {
	sync.Mutex
	parallel  map[parallelKey]*cacheEntry
	multiprog map[multiprogKey]*cacheEntry
}{
	parallel:  make(map[parallelKey]*cacheEntry),
	multiprog: make(map[multiprogKey]*cacheEntry),
}

// maxCachedTraces bounds the cache; when exceeded the cache is reset
// wholesale (entries already handed out stay valid — they are just
// pointers the callers hold).
const maxCachedTraces = 32

// ResetTraceCache drops every cached trace program and every cached
// reuse-distance profile (profiles are derived from traces and sized
// like them). Useful to release memory after paper-scale sweeps.
func ResetTraceCache() {
	traceCache.Lock()
	traceCache.parallel = make(map[parallelKey]*cacheEntry)
	traceCache.multiprog = make(map[multiprogKey]*cacheEntry)
	traceCache.Unlock()
	resetProfileCache()
}

// parallelDiskKey is the persistent-cache key for a parallel workload
// trace: everything that determines the trace's content — the on-disk
// format version (so a format change invalidates old entries), the
// workload, the processor count, and the full problem scale including
// the seed. MultiprogRefs is deliberately excluded: it does not affect
// parallel-trace generation, and keying on it would fracture the cache.
func parallelDiskKey(w Workload, procs int, s Scale) string {
	return fmt.Sprintf("scct%d-%s-p%d-seed%d-bb%d-bs%d-mp%d-ms%d-cw%d-ch%d",
		trace.FormatVersion, w, procs, s.Seed, s.BarnesBodies, s.BarnesSteps,
		s.MP3DParticles, s.MP3DSteps, s.CholeskyGridW, s.CholeskyGridH)
}

// multiprogDiskKey is the persistent-cache key for the eight-process
// multiprogramming trace set.
func multiprogDiskKey(refs int, seed int64) string {
	return fmt.Sprintf("scct%d-multiprog-refs%d-seed%d", trace.FormatVersion, refs, seed)
}

// processesToProgram packs a multiprogramming process set into a
// single-processor Program — one phase per process, the phase name
// carrying the process name — a lossless container in the format the
// disk cache stores.
func processesToProgram(pset []sim.Process) *trace.Program {
	p := &trace.Program{Name: "multiprog", Procs: 1, Phases: make([]trace.Phase, len(pset))}
	for i, ps := range pset {
		p.Phases[i] = trace.Phase{Name: ps.Name, Streams: [][]mem.Ref{ps.Refs}}
	}
	return p
}

// programToProcesses inverts processesToProgram.
func programToProcesses(p *trace.Program) ([]sim.Process, error) {
	if p.Procs != 1 {
		return nil, fmt.Errorf("explorer: cached multiprog trace has %d procs, want 1", p.Procs)
	}
	pset := make([]sim.Process, len(p.Phases))
	for i, ph := range p.Phases {
		pset[i] = sim.Process{Name: ph.Name, Refs: ph.Streams[0]}
	}
	return pset, nil
}

// cachedParallelProgram returns the shared program for a (workload,
// procs, scale) key. src reports how the lookup resolved: traceShared
// when the program already existed in memory (or another requester is
// resolving it), traceFromDisk when this call loaded it from dc, and
// traceGenerated when this call ran the generator — each distinct key
// resolves exactly once per cache lifetime. dc may be nil (no
// persistent cache).
func cachedParallelProgram(w Workload, procs int, s Scale, dc trace.Store) (prog *trace.Program, src traceSource, err error) {
	traceCache.Lock()
	if len(traceCache.parallel) >= maxCachedTraces {
		traceCache.parallel = make(map[parallelKey]*cacheEntry)
	}
	key := parallelKey{w, procs, s}
	e, ok := traceCache.parallel[key]
	if !ok {
		e = &cacheEntry{}
		traceCache.parallel[key] = e
	}
	traceCache.Unlock()
	e.once.Do(func() {
		if dc != nil {
			if p, _ := dc.Load(parallelDiskKey(w, procs, s)); p != nil {
				e.prog, e.src = p, traceFromDisk
				return
			}
		}
		e.src = traceGenerated
		e.prog, e.err = GenerateParallel(w, procs, s)
		if e.err == nil && dc != nil {
			// Best-effort: a failed store only costs a later regeneration.
			_ = dc.Store(parallelDiskKey(w, procs, s), e.prog)
		}
	})
	if ok {
		return e.prog, traceShared, e.err
	}
	return e.prog, e.src, e.err
}

func cachedMultiprogProcesses(refs int, seed int64, dc trace.Store) (pset []sim.Process, src traceSource, err error) {
	traceCache.Lock()
	if len(traceCache.multiprog) >= maxCachedTraces {
		traceCache.multiprog = make(map[multiprogKey]*cacheEntry)
	}
	key := multiprogKey{refs, seed}
	e, ok := traceCache.multiprog[key]
	if !ok {
		e = &cacheEntry{}
		traceCache.multiprog[key] = e
	}
	traceCache.Unlock()
	e.once.Do(func() {
		if dc != nil {
			if p, _ := dc.Load(multiprogDiskKey(refs, seed)); p != nil {
				if ps, cerr := programToProcesses(p); cerr == nil {
					e.pset, e.src = ps, traceFromDisk
					return
				}
			}
		}
		e.src = traceGenerated
		e.pset, e.err = multiprog.Generate(multiprog.Params{RefsPerApp: refs, Seed: seed})
		if e.err == nil && dc != nil {
			_ = dc.Store(multiprogDiskKey(refs, seed), processesToProgram(e.pset))
		}
	})
	if ok {
		return e.pset, traceShared, e.err
	}
	return e.pset, e.src, e.err
}

// multiprogRefs applies the default per-app reference budget.
func multiprogRefs(s Scale) int {
	if s.MultiprogRefs != 0 {
		return s.MultiprogRefs
	}
	return 600_000
}

// ---- Concurrent sweeps ----

// SweepParallelCtx is the concurrent counterpart of SweepParallel: the
// same design space, run on the engine's worker pool. The grid — and
// every table rendered from it — is byte-identical to the serial path
// for any parallelism.
func SweepParallelCtx(ctx context.Context, w Workload, s Scale, opts sim.Options, eng EngineOptions) (*Grid, error) {
	tc := &traceCounters{reg: eng.Metrics}
	jobs := make([]pointJob, 0, len(sysmodel.SCCSizes)*len(sysmodel.ProcsPerClusterSweep))
	for _, size := range sysmodel.SCCSizes {
		for _, ppc := range sysmodel.ProcsPerClusterSweep {
			cfg := eng.Axes.Apply(sysmodel.Default(ppc, size))
			jobs = append(jobs, pointJob{cfg: cfg, run: func(ctx context.Context, tr sim.Tracer) (*Point, error) {
				prog, src, err := cachedParallelProgram(w, cfg.Procs(), s, eng.TraceCache)
				if err != nil {
					return nil, err
				}
				tc.record(src)
				o := opts
				o.Tracer = tr
				res, err := sim.Run(cfg, o, prog)
				if err != nil {
					return nil, fmt.Errorf("explorer: %s at %v: %w", w, cfg, err)
				}
				return &Point{Config: cfg, Result: res}, nil
			}})
		}
	}
	points, err := runPoints(ctx, w, jobs, eng, tc)
	if err != nil {
		return nil, err
	}
	return assembleGrid(w, points), nil
}

// SweepMultiprogCtx is the concurrent counterpart of SweepMultiprog:
// 1/2/4/8 processors sharing one SCC, eight processes, round-robin
// scheduling. The eight-process trace is generated once and shared by
// all 28 points.
func SweepMultiprogCtx(ctx context.Context, s Scale, opts sim.Options, eng EngineOptions) (*Grid, error) {
	refs := multiprogRefs(s)
	quantum := multiprog.Quantum(refs)
	tc := &traceCounters{reg: eng.Metrics}
	jobs := make([]pointJob, 0, len(sysmodel.SCCSizes)*len(sysmodel.ProcsPerClusterSweep))
	for _, size := range sysmodel.SCCSizes {
		for _, ppc := range sysmodel.ProcsPerClusterSweep {
			cfg := eng.Axes.Apply(sysmodel.Config{
				Clusters: 1, ProcsPerCluster: ppc, SCCBytes: size,
				LoadLatency: sysmodel.ImpliedLoadLatency(ppc), Assoc: 1,
			})
			jobs = append(jobs, pointJob{cfg: cfg, run: func(ctx context.Context, tr sim.Tracer) (*Point, error) {
				procs, src, err := cachedMultiprogProcesses(refs, s.Seed, eng.TraceCache)
				if err != nil {
					return nil, err
				}
				tc.record(src)
				o := opts
				o.Tracer = tr
				res, err := sim.RunMultiprog(cfg, o, procs, quantum)
				if err != nil {
					return nil, fmt.Errorf("explorer: multiprog at %v: %w", cfg, err)
				}
				return &Point{Config: cfg, Result: res}, nil
			}})
		}
	}
	points, err := runPoints(ctx, Multiprog, jobs, eng, tc)
	if err != nil {
		return nil, err
	}
	return assembleGrid(Multiprog, points), nil
}

// assembleGrid lays the engine's in-order point slice out as the
// [size][ppc] grid. Job order is size-major, matching the serial loops.
func assembleGrid(w Workload, points []*Point) *Grid {
	g := &Grid{Workload: w, Points: make([][]*Point, len(sysmodel.SCCSizes))}
	i := 0
	for si := range sysmodel.SCCSizes {
		g.Points[si] = make([]*Point, len(sysmodel.ProcsPerClusterSweep))
		for pi := range sysmodel.ProcsPerClusterSweep {
			g.Points[si][pi] = points[i]
			i++
		}
	}
	return g
}

// SweepCtx dispatches to the concurrent sweep for the workload — the
// cluster path when a remote executor is configured, the local engine
// otherwise. Both produce byte-identical grids.
func SweepCtx(ctx context.Context, w Workload, s Scale, opts sim.Options, eng EngineOptions) (*Grid, error) {
	if eng.Remote != nil {
		return SweepClusterCtx(ctx, w, s, opts, eng)
	}
	if w == Multiprog {
		return SweepMultiprogCtx(ctx, s, opts, eng)
	}
	return SweepParallelCtx(ctx, w, s, opts, eng)
}

// PointSpec names one (processors per cluster, SCC size) design point.
type PointSpec struct {
	PPC, SCCBytes int
}

// pointJobFor builds the engine job for one RunPoint-style design point,
// sharing RunPoint's configuration rules (multiprogramming runs on a
// single cluster), the architecture axes and the trace cache.
func pointJobFor(w Workload, spec PointSpec, axes sysmodel.Axes, s Scale, opts sim.Options, tc *traceCounters, dc trace.Store) pointJob {
	cfg := sysmodel.Default(spec.PPC, spec.SCCBytes)
	if w == Multiprog {
		cfg.Clusters = 1
	}
	cfg = axes.Apply(cfg)
	return pointJob{cfg: cfg, run: func(ctx context.Context, tr sim.Tracer) (*Point, error) {
		o := opts
		if tr != nil {
			// Engine-built tracers win; a caller-provided opts.Tracer
			// survives only when the engine isn't making its own (the
			// single-point path, where no sharing is possible).
			o.Tracer = tr
		}
		if w == Multiprog {
			refs := multiprogRefs(s)
			procs, src, err := cachedMultiprogProcesses(refs, s.Seed, dc)
			if err != nil {
				return nil, err
			}
			tc.record(src)
			res, err := sim.RunMultiprog(cfg, o, procs, multiprog.Quantum(refs))
			if err != nil {
				return nil, err
			}
			return &Point{Config: cfg, Result: res}, nil
		}
		prog, src, err := cachedParallelProgram(w, cfg.Procs(), s, dc)
		if err != nil {
			return nil, err
		}
		tc.record(src)
		res, err := sim.Run(cfg, o, prog)
		if err != nil {
			return nil, err
		}
		return &Point{Config: cfg, Result: res}, nil
	}}
}

// RunPointsCtx runs several design points for one workload concurrently,
// returning results in input order.
func RunPointsCtx(ctx context.Context, w Workload, specs []PointSpec, s Scale, opts sim.Options, eng EngineOptions) ([]*Point, error) {
	tc := &traceCounters{reg: eng.Metrics}
	jobs := make([]pointJob, len(specs))
	for i, spec := range specs {
		jobs[i] = pointJobFor(w, spec, eng.Axes, s, opts, tc, eng.TraceCache)
	}
	return runPoints(ctx, w, jobs, eng, tc)
}

// RunPointCtx is the context-aware, trace-cached form of RunPoint.
func RunPointCtx(ctx context.Context, w Workload, ppc, sccBytes int, s Scale, opts sim.Options) (*Point, error) {
	pts, err := RunPointsCtx(ctx, w, []PointSpec{{ppc, sccBytes}}, s, opts, EngineOptions{Parallelism: 1})
	if err != nil {
		return nil, err
	}
	return pts[0], nil
}

// RunConfigCtx simulates a parallel workload on an arbitrary
// configuration through the trace cache. dc, when non-nil, is the
// persistent trace store consulted before generating (and filled
// after), exactly as in sweeps.
func RunConfigCtx(ctx context.Context, w Workload, cfg sysmodel.Config, s Scale, opts sim.Options, dc trace.Store) (*Point, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	prog, _, err := cachedParallelProgram(w, cfg.Procs(), s, dc)
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(cfg, opts, prog)
	if err != nil {
		return nil, err
	}
	return &Point{Config: cfg, Result: res}, nil
}

// SortedPointSpecs returns the specs in (ppc, size) order — a helper for
// callers that build point sets from maps and need deterministic job
// order.
func SortedPointSpecs(m map[int]int) []PointSpec {
	specs := make([]PointSpec, 0, len(m))
	for ppc, size := range m {
		specs = append(specs, PointSpec{ppc, size})
	}
	sort.Slice(specs, func(i, j int) bool {
		if specs[i].PPC != specs[j].PPC {
			return specs[i].PPC < specs[j].PPC
		}
		return specs[i].SCCBytes < specs[j].SCCBytes
	})
	return specs
}
