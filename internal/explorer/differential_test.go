// Differential guarantee for the compiled-trace execution path: for
// every workload, the full 32-point design-space grid simulated through
// the compiled arena must match the legacy per-stream replay result for
// result. The fast path is an optimization, never a model change.
package explorer_test

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"sccsim/internal/explorer"
	"sccsim/internal/sim"
)

func TestCompiledReplayMatchesLegacyFullGrid(t *testing.T) {
	s := explorer.QuickScale()
	for _, w := range explorer.AllWorkloads {
		w := w
		t.Run(string(w), func(t *testing.T) {
			t.Parallel()
			legacy, err := explorer.SweepCtx(context.Background(), w, s,
				sim.Options{LegacyReplay: true}, explorer.EngineOptions{})
			if err != nil {
				t.Fatal(err)
			}
			compiled, err := explorer.SweepCtx(context.Background(), w, s,
				sim.Options{}, explorer.EngineOptions{})
			if err != nil {
				t.Fatal(err)
			}
			sizes, procs := legacy.Sizes(), legacy.Procs()
			points := 0
			for si := range legacy.Points {
				for pi := range legacy.Points[si] {
					points++
					l, c := legacy.Points[si][pi], compiled.Points[si][pi]
					if l.Config != c.Config {
						t.Fatalf("grid shape differs at [%d][%d]", si, pi)
					}
					if !reflect.DeepEqual(l.Result, c.Result) {
						t.Errorf("%s: compiled result differs from legacy at scc=%d ppc=%d: %s",
							w, sizes[si], procs[pi], diffSummary(l.Result, c.Result))
					}
				}
			}
			if want := len(sizes) * len(procs); points != want {
				t.Fatalf("grid has %d points, want the full %d", points, want)
			}
		})
	}
}

// diffSummary points at the first mismatching headline stat so a
// regression names the divergent quantity, not just "differs".
func diffSummary(a, b *sim.Result) string {
	switch {
	case a.Cycles != b.Cycles:
		return fmt.Sprintf("cycles %d vs %d", a.Cycles, b.Cycles)
	case a.Refs != b.Refs:
		return fmt.Sprintf("refs %d vs %d", a.Refs, b.Refs)
	case a.ReadMissRate() != b.ReadMissRate():
		return fmt.Sprintf("read miss rate %g vs %g", a.ReadMissRate(), b.ReadMissRate())
	default:
		return "secondary statistics differ"
	}
}
