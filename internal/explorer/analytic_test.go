package explorer

import (
	"context"
	"strings"
	"testing"

	"sccsim/internal/sysmodel"
)

// TestParseBackend: every listed backend round-trips; unknown names get
// an actionable error naming the valid values.
func TestParseBackend(t *testing.T) {
	for _, b := range AllBackends {
		got, err := ParseBackend(string(b))
		if err != nil || got != b {
			t.Errorf("ParseBackend(%q) = %v, %v", b, got, err)
		}
	}
	_, err := ParseBackend("simulated")
	if err == nil {
		t.Fatal("ParseBackend accepted an unknown backend")
	}
	for _, b := range AllBackends {
		if !strings.Contains(err.Error(), string(b)) {
			t.Errorf("ParseBackend error %q does not list %q", err, b)
		}
	}
}

// TestSweepAnalyticGrid: the analytic sweep fills the same grid shape
// as the exact one, with sane, monotone predictions, and stamps its
// report with the analytic backend.
func TestSweepAnalyticGrid(t *testing.T) {
	s := QuickScale()
	var rep SweepReport
	eng := EngineOptions{Report: func(r SweepReport) { rep = r }}
	g, err := SweepAnalyticCtx(context.Background(), BarnesHut, s, eng)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Points) != len(sysmodel.SCCSizes) || len(g.Points[0]) != len(sysmodel.ProcsPerClusterSweep) {
		t.Fatalf("grid shape %dx%d", len(g.Points), len(g.Points[0]))
	}
	if rep.Backend != BackendAnalytic {
		t.Errorf("report backend %q, want %q", rep.Backend, BackendAnalytic)
	}
	if rep.Points != len(sysmodel.SCCSizes)*len(sysmodel.ProcsPerClusterSweep) {
		t.Errorf("report counts %d points", rep.Points)
	}
	// Each distinct processor count resolves its trace exactly once.
	if rep.TraceMisses != uint64(len(sysmodel.ProcsPerClusterSweep)) {
		t.Errorf("trace misses %d, want %d", rep.TraceMisses, len(sysmodel.ProcsPerClusterSweep))
	}
	for _, row := range g.Points {
		for _, pt := range row {
			r := pt.Result
			if r.Cycles == 0 || r.Refs == 0 {
				t.Fatalf("empty analytic result at %v", pt.Config)
			}
			if mr := r.ReadMissRate(); mr <= 0 || mr >= 1 {
				t.Errorf("implausible miss rate %.4f at %v", mr, pt.Config)
			}
			if r.Snoop == nil || len(r.SCC) != pt.Config.Clusters {
				t.Errorf("analytic result at %v not fully shaped", pt.Config)
			}
		}
	}
	// Down a column (growing cache, fixed ppc) predicted miss rates
	// cannot rise.
	for pi := range sysmodel.ProcsPerClusterSweep {
		for si := 1; si < len(sysmodel.SCCSizes); si++ {
			prev := g.Points[si-1][pi].Result.ReadMissRate()
			cur := g.Points[si][pi].Result.ReadMissRate()
			if cur > prev+1e-9 {
				t.Errorf("ppc=%d: miss rate rose %.5f -> %.5f at %d bytes",
					sysmodel.ProcsPerClusterSweep[pi], prev, cur, sysmodel.SCCSizes[si])
			}
		}
	}
}

// TestSweepAnalyticDeterministic: repeated analytic sweeps (warm
// caches, any parallelism) produce identical grids.
func TestSweepAnalyticDeterministic(t *testing.T) {
	s := QuickScale()
	a, err := SweepAnalyticCtx(context.Background(), MP3D, s, EngineOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SweepAnalyticCtx(context.Background(), MP3D, s, EngineOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for si := range a.Points {
		for pi := range a.Points[si] {
			ra, rb := a.Points[si][pi].Result, b.Points[si][pi].Result
			if ra.Cycles != rb.Cycles || ra.ReadMissRate() != rb.ReadMissRate() {
				t.Fatalf("analytic sweep not deterministic at %v: %d/%.5f vs %d/%.5f",
					a.Points[si][pi].Config, ra.Cycles, ra.ReadMissRate(), rb.Cycles, rb.ReadMissRate())
			}
		}
	}
}

// TestSweepAnalyticMultiprog: the multiprogramming grid runs on the
// scheduled-profile path — single cluster, scheduling slots = ppc.
func TestSweepAnalyticMultiprog(t *testing.T) {
	s := QuickScale()
	g, err := SweepAnalyticCtx(context.Background(), Multiprog, s, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range g.Points {
		for _, pt := range row {
			if pt.Config.Clusters != 1 {
				t.Fatalf("multiprog point on %d clusters", pt.Config.Clusters)
			}
			if pt.Result.Cycles == 0 || pt.Result.ReadMissRate() <= 0 {
				t.Fatalf("empty multiprog prediction at %v", pt.Config)
			}
		}
	}
}

// TestRunPointAnalytic: single points agree with the corresponding
// sweep cell (shared profile, same prediction).
func TestRunPointAnalytic(t *testing.T) {
	s := QuickScale()
	g, err := SweepAnalyticCtx(context.Background(), Cholesky, s, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pt, err := RunPointAnalyticCtx(context.Background(), Cholesky, 2, 32*1024, sysmodel.Axes{}, s)
	if err != nil {
		t.Fatal(err)
	}
	want := g.At(32*1024, 2)
	if want == nil {
		t.Fatal("grid misses the 2P/32KB cell")
	}
	if pt.Result.Cycles != want.Result.Cycles || pt.Result.ReadMissRate() != want.Result.ReadMissRate() {
		t.Errorf("point %d/%.5f differs from sweep cell %d/%.5f",
			pt.Result.Cycles, pt.Result.ReadMissRate(), want.Result.Cycles, want.Result.ReadMissRate())
	}
}
