// Package explorer orchestrates the paper's experiments: it generates
// workload traces, runs the multiprocessor simulator across the
// processor-cache design space (Section 3), and collects the grids of
// results that the tables and figures are built from.
package explorer

import (
	"fmt"

	"sccsim/internal/sim"
	"sccsim/internal/stats"
	"sccsim/internal/sysmodel"
	"sccsim/internal/trace"
	"sccsim/internal/workload/barnes"
	"sccsim/internal/workload/cholesky"
	"sccsim/internal/workload/mp3d"
	"sccsim/internal/workload/multiprog"
)

// Workload names the four benchmarks.
type Workload string

// The paper's benchmarks.
const (
	BarnesHut Workload = "barnes-hut"
	MP3D      Workload = "mp3d"
	Cholesky  Workload = "cholesky"
	Multiprog Workload = "multiprog"
)

// ParallelWorkloads are the three SPLASH applications (Section 2.2).
var ParallelWorkloads = []Workload{BarnesHut, MP3D, Cholesky}

// AllWorkloads includes the multiprogramming workload.
var AllWorkloads = []Workload{BarnesHut, MP3D, Cholesky, Multiprog}

// ParseWorkload maps a workload name to its Workload, validating it
// against AllWorkloads — the boundary check for CLIs and servers that
// receive workload names as strings.
func ParseWorkload(name string) (Workload, error) {
	for _, w := range AllWorkloads {
		if string(w) == name {
			return w, nil
		}
	}
	return "", fmt.Errorf("explorer: unknown workload %q (want one of %v)", name, AllWorkloads)
}

// Scale sets the problem sizes. The zero value is the paper's
// configuration (with the multiprogramming reference budget scaled as
// documented in the multiprog package).
type Scale struct {
	// BarnesBodies (paper: 1024) and BarnesSteps (3).
	BarnesBodies, BarnesSteps int
	// MP3DParticles (paper: 10,000) and MP3DSteps (paper: 5).
	MP3DParticles, MP3DSteps int
	// MultiprogRefs is the per-application reference budget.
	MultiprogRefs int
	// CholeskyGridW/H override the matrix mesh (0 = BCSSTK14 scale).
	CholeskyGridW, CholeskyGridH int
	// Seed drives all generators.
	Seed int64
}

// QuickScale returns a reduced configuration for tests and examples:
// roughly 20x smaller than the paper runs.
func QuickScale() Scale {
	return Scale{
		BarnesBodies: 256, BarnesSteps: 2,
		MP3DParticles: 2000, MP3DSteps: 2,
		MultiprogRefs: 40_000,
		CholeskyGridW: 10, CholeskyGridH: 10,
		Seed: 1,
	}
}

// GenerateParallel builds the trace program for a parallel workload at
// the given total processor count.
func GenerateParallel(w Workload, procs int, s Scale) (*trace.Program, error) {
	switch w {
	case BarnesHut:
		return barnes.Generate(barnes.Params{
			NBodies: s.BarnesBodies, Steps: s.BarnesSteps, Procs: procs, Seed: s.Seed,
		})
	case MP3D:
		return mp3d.Generate(mp3d.Params{
			Particles: s.MP3DParticles, Steps: s.MP3DSteps, Procs: procs, Seed: s.Seed,
		})
	case Cholesky:
		return cholesky.Generate(cholesky.Params{
			Procs: procs, Seed: s.Seed, GridW: s.CholeskyGridW, GridH: s.CholeskyGridH,
		})
	default:
		return nil, fmt.Errorf("explorer: %q is not a parallel workload", w)
	}
}

// Point is one simulated design point.
type Point struct {
	Config sysmodel.Config
	Result *sim.Result
}

// Grid holds a full processor-cache design-space sweep for one workload:
// rows are SCC sizes (sysmodel.SCCSizes), columns processors per cluster
// (sysmodel.ProcsPerClusterSweep).
type Grid struct {
	Workload Workload
	// Points[si][pi] is the run at SCCSizes[si], ProcsPerClusterSweep[pi].
	Points [][]*Point
}

// Sizes returns the grid's SCC-size axis in row order (the order of
// Points). Use it instead of indexing Points directly.
func (g *Grid) Sizes() []int {
	return append([]int(nil), sysmodel.SCCSizes...)
}

// Procs returns the grid's processors-per-cluster axis in column order.
func (g *Grid) Procs() []int {
	return append([]int(nil), sysmodel.ProcsPerClusterSweep...)
}

// At returns the point for an SCC size and processors-per-cluster value.
func (g *Grid) At(sccBytes, ppc int) *Point {
	for si, s := range sysmodel.SCCSizes {
		if s != sccBytes {
			continue
		}
		for pi, p := range sysmodel.ProcsPerClusterSweep {
			if p == ppc {
				return g.Points[si][pi]
			}
		}
	}
	return nil
}

// Speedup returns execution time at 1 processor per cluster divided by
// execution time at ppc, for the given SCC size — the paper's Table 3
// metric (self-relative per SCC size).
func (g *Grid) Speedup(sccBytes, ppc int) float64 {
	base := g.At(sccBytes, 1)
	pt := g.At(sccBytes, ppc)
	if base == nil || pt == nil || pt.Result.Cycles == 0 {
		return 0
	}
	return float64(base.Result.Cycles) / float64(pt.Result.Cycles)
}

// NormalizedTime returns the point's execution time normalized to the
// slowest point in the grid (the paper's Figures 2-5 y-axis).
func (g *Grid) NormalizedTime(sccBytes, ppc int) float64 {
	var max uint64
	for _, row := range g.Points {
		for _, p := range row {
			if p.Result.Cycles > max {
				max = p.Result.Cycles
			}
		}
	}
	pt := g.At(sccBytes, ppc)
	if pt == nil || max == 0 {
		return 0
	}
	return float64(pt.Result.Cycles) / float64(max)
}

// SweepParallel runs the full design space for a parallel workload:
// four clusters, 1/2/4/8 processors per cluster, 4 KB-512 KB SCCs.
// Traces are generated once per processor count and reused across sizes.
func SweepParallel(w Workload, s Scale, opts sim.Options) (*Grid, error) {
	g := &Grid{Workload: w, Points: make([][]*Point, len(sysmodel.SCCSizes))}
	for si := range sysmodel.SCCSizes {
		g.Points[si] = make([]*Point, len(sysmodel.ProcsPerClusterSweep))
	}
	for pi, ppc := range sysmodel.ProcsPerClusterSweep {
		prog, err := GenerateParallel(w, sysmodel.DefaultClusters*ppc, s)
		if err != nil {
			return nil, err
		}
		for si, size := range sysmodel.SCCSizes {
			cfg := sysmodel.Default(ppc, size)
			res, err := sim.Run(cfg, opts, prog)
			if err != nil {
				return nil, fmt.Errorf("explorer: %s at %v: %w", w, cfg, err)
			}
			g.Points[si][pi] = &Point{Config: cfg, Result: res}
		}
	}
	return g, nil
}

// SweepMultiprog runs the multiprogramming design space on a single
// cluster (the paper's Figures 5-6 setup): 1/2/4/8 processors sharing
// one SCC, eight processes, round-robin scheduling.
func SweepMultiprog(s Scale, opts sim.Options) (*Grid, error) {
	refs := s.MultiprogRefs
	if refs == 0 {
		refs = 600_000
	}
	quantum := multiprog.Quantum(refs)
	g := &Grid{Workload: Multiprog, Points: make([][]*Point, len(sysmodel.SCCSizes))}
	for si := range sysmodel.SCCSizes {
		g.Points[si] = make([]*Point, len(sysmodel.ProcsPerClusterSweep))
	}
	// All 28 points replay the same eight-process trace: generate it
	// once (the simulator never mutates it) instead of once per point.
	procs, err := multiprog.Generate(multiprog.Params{RefsPerApp: refs, Seed: s.Seed})
	if err != nil {
		return nil, err
	}
	for pi, ppc := range sysmodel.ProcsPerClusterSweep {
		for si, size := range sysmodel.SCCSizes {
			cfg := sysmodel.Config{
				Clusters: 1, ProcsPerCluster: ppc, SCCBytes: size,
				LoadLatency: sysmodel.ImpliedLoadLatency(ppc), Assoc: 1,
			}
			res, err := sim.RunMultiprog(cfg, opts, procs, quantum)
			if err != nil {
				return nil, fmt.Errorf("explorer: multiprog at %v: %w", cfg, err)
			}
			g.Points[si][pi] = &Point{Config: cfg, Result: res}
		}
	}
	return g, nil
}

// Sweep dispatches to the right sweep for the workload.
func Sweep(w Workload, s Scale, opts sim.Options) (*Grid, error) {
	if w == Multiprog {
		return SweepMultiprog(s, opts)
	}
	return SweepParallel(w, s, opts)
}

// RunPoint runs a single design point for a workload (used by the
// cost/performance comparisons, which need only four points per
// workload).
func RunPoint(w Workload, ppc, sccBytes int, s Scale, opts sim.Options) (*Point, error) {
	cfg := sysmodel.Default(ppc, sccBytes)
	if w == Multiprog {
		// The multiprogramming workload runs on a single cluster (the
		// Figures 5-6 setup): eight jobs on the cluster's processors.
		cfg.Clusters = 1
		refs := s.MultiprogRefs
		if refs == 0 {
			refs = 600_000
		}
		procs, err := multiprog.Generate(multiprog.Params{RefsPerApp: refs, Seed: s.Seed})
		if err != nil {
			return nil, err
		}
		res, err := sim.RunMultiprog(cfg, opts, procs, multiprog.Quantum(refs))
		if err != nil {
			return nil, err
		}
		return &Point{Config: cfg, Result: res}, nil
	}
	prog, err := GenerateParallel(w, cfg.Procs(), s)
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(cfg, opts, prog)
	if err != nil {
		return nil, err
	}
	return &Point{Config: cfg, Result: res}, nil
}

// SeedSensitivity runs one design point across several seeds and
// summarizes the execution-time variation — the error-bar check the
// paper (like most 1994 papers) omits. The returned summary is over
// cycles; a small coefficient of variation means single-seed results
// are representative.
func SeedSensitivity(w Workload, ppc, sccBytes int, s Scale, opts sim.Options, seeds []int64) (stats.Summary, error) {
	if len(seeds) == 0 {
		return stats.Summary{}, fmt.Errorf("explorer: no seeds")
	}
	cycles := make([]float64, 0, len(seeds))
	for _, seed := range seeds {
		sc := s
		sc.Seed = seed
		pt, err := RunPoint(w, ppc, sccBytes, sc, opts)
		if err != nil {
			return stats.Summary{}, err
		}
		cycles = append(cycles, float64(pt.Result.Cycles))
	}
	return stats.Summarize(cycles), nil
}
