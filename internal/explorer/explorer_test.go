package explorer

import (
	"testing"

	"sccsim/internal/sim"
	"sccsim/internal/sysmodel"
)

func TestGenerateParallelAllWorkloads(t *testing.T) {
	s := QuickScale()
	for _, w := range ParallelWorkloads {
		p, err := GenerateParallel(w, 4, s)
		if err != nil {
			t.Fatalf("%s: %v", w, err)
		}
		if p.Procs != 4 {
			t.Errorf("%s: procs = %d", w, p.Procs)
		}
		if p.Refs() == 0 {
			t.Errorf("%s: empty trace", w)
		}
	}
	if _, err := GenerateParallel(Multiprog, 4, s); err == nil {
		t.Error("GenerateParallel accepted the multiprogramming workload")
	}
}

func TestSweepParallelGrid(t *testing.T) {
	g, err := SweepParallel(BarnesHut, QuickScale(), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Points) != len(sysmodel.SCCSizes) {
		t.Fatalf("rows = %d", len(g.Points))
	}
	for si, size := range sysmodel.SCCSizes {
		for pi, ppc := range sysmodel.ProcsPerClusterSweep {
			pt := g.Points[si][pi]
			if pt == nil || pt.Result == nil {
				t.Fatalf("missing point %d/%d", si, pi)
			}
			if pt.Config.SCCBytes != size || pt.Config.ProcsPerCluster != ppc {
				t.Fatalf("misplaced point at %d/%d: %v", si, pi, pt.Config)
			}
			if pt.Result.Cycles == 0 {
				t.Fatalf("zero cycles at %v", pt.Config)
			}
		}
	}

	// Structural sanity on the quick grid: bigger caches never slower
	// at fixed ppc (allowing 2% noise), and At/Speedup agree.
	for _, ppc := range sysmodel.ProcsPerClusterSweep {
		prev := g.At(4*1024, ppc).Result.Cycles
		for _, size := range sysmodel.SCCSizes[1:] {
			cur := g.At(size, ppc).Result.Cycles
			if float64(cur) > 1.02*float64(prev) {
				t.Errorf("ppc=%d: %d KB slower than the next smaller size (%d vs %d)",
					ppc, size/1024, cur, prev)
			}
			prev = cur
		}
	}
	if s := g.Speedup(64*1024, 1); s != 1.0 {
		t.Errorf("self speedup = %v, want 1", s)
	}
	if g.Speedup(64*1024, 8) <= 1.0 {
		t.Error("8 procs/cluster not faster than 1 at 64KB")
	}
}

func TestNormalizedTimeBounds(t *testing.T) {
	g, err := SweepParallel(MP3D, QuickScale(), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range sysmodel.SCCSizes {
		for _, ppc := range sysmodel.ProcsPerClusterSweep {
			v := g.NormalizedTime(size, ppc)
			if v <= 0 || v > 1 {
				t.Errorf("normalized time %v at %dKB/%dP", v, size/1024, ppc)
			}
		}
	}
}

func TestSweepMultiprog(t *testing.T) {
	s := QuickScale()
	g, err := SweepMultiprog(s, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The headline: at 8 procs/cluster, 4 KB must be much slower than
	// 512 KB; the spread shrinks at 1 proc/cluster.
	spread8 := float64(g.At(4*1024, 8).Result.Cycles) / float64(g.At(512*1024, 8).Result.Cycles)
	spread1 := float64(g.At(4*1024, 1).Result.Cycles) / float64(g.At(512*1024, 1).Result.Cycles)
	if spread8 <= 1.2 {
		t.Errorf("8P interference spread = %.2f, want > 1.2", spread8)
	}
	if spread8 <= spread1 {
		t.Errorf("interference spread at 8P (%.2f) not larger than at 1P (%.2f)", spread8, spread1)
	}
}

func TestSweepDispatch(t *testing.T) {
	g, err := Sweep(Multiprog, QuickScale(), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Workload != Multiprog {
		t.Errorf("workload = %s", g.Workload)
	}
}

func TestRunPoint(t *testing.T) {
	s := QuickScale()
	pt, err := RunPoint(BarnesHut, 2, 32*1024, s, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pt.Config.LoadLatency != 3 {
		t.Errorf("load latency = %d, want 3 for a 2P cluster", pt.Config.LoadLatency)
	}
	mp, err := RunPoint(Multiprog, 2, 32*1024, s, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mp.Result.Cycles == 0 {
		t.Error("multiprog point has zero cycles")
	}
}

func TestSeedSensitivity(t *testing.T) {
	s := QuickScale()
	sum, err := SeedSensitivity(BarnesHut, 2, 32*1024, s, sim.Options{}, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sum.N != 3 || sum.Mean <= 0 {
		t.Fatalf("summary = %+v", sum)
	}
	// Different Plummer draws change the tree, but the execution-time
	// variation should be modest (< 30% CV) — the design-space
	// conclusions do not hinge on one seed.
	if sum.CV > 0.30 {
		t.Errorf("seed CV = %.2f, suspiciously high", sum.CV)
	}
	if _, err := SeedSensitivity(BarnesHut, 2, 32*1024, s, sim.Options{}, nil); err == nil {
		t.Error("accepted empty seed list")
	}
}
