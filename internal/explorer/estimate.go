// The search triage path: batch analytic cycle estimates through the
// reuse-distance curve (rdmodel.Curve). Where the analytic *backend*
// (analytic.go) produces full grid points — complete results, engine
// workers, progress events — this path answers only "roughly how many
// cycles would this point cost?" for thousands of candidates at once,
// which is what the adaptive search's pre-triage stage needs. Profiles
// are shared with the analytic backend through the same cache; each
// distinct processor count folds its profile into a curve once and then
// answers every size in constant time.

package explorer

import (
	"context"

	"sccsim/internal/rdmodel"
	"sccsim/internal/sysmodel"
	"sccsim/internal/trace"
	"sccsim/internal/workload/multiprog"
)

// EstimatePoints returns the analytic estimated cycle count for each
// design point, positionally. It resolves one trace and reuse-distance
// profile per distinct processor count (through the shared caches and
// the optional disk cache) and evaluates every size off the profile's
// suffix-sum curve, so estimating a 10^4-point space costs a few
// profile builds plus microseconds per point. Multiprogramming points
// follow the sweep's rules (single cluster, ppc scheduling slots).
func EstimatePoints(ctx context.Context, w Workload, specs []PointSpec, s Scale, dc trace.Store) ([]uint64, error) {
	curves := make(map[int]*rdmodel.Curve)
	out := make([]uint64, len(specs))
	for i, spec := range specs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		curve, ok := curves[spec.PPC]
		if !ok {
			prof, err := profileFor(w, spec.PPC, s, dc)
			if err != nil {
				return nil, err
			}
			curve = prof.Curve()
			curves[spec.PPC] = curve
		}
		pt, err := curve.At(spec.SCCBytes)
		if err != nil {
			return nil, err
		}
		out[i] = pt.EstCycles
	}
	return out, nil
}

// profileFor resolves the shared reuse-distance profile for one
// processors-per-cluster value, mirroring the analytic backend's
// configuration rules.
func profileFor(w Workload, ppc int, s Scale, dc trace.Store) (*rdmodel.Profile, error) {
	if w == Multiprog {
		refs := multiprogRefs(s)
		pset, _, err := cachedMultiprogProcesses(refs, s.Seed, dc)
		if err != nil {
			return nil, err
		}
		return cachedScheduledProfile(refs, s.Seed, ppc, multiprog.Quantum(refs), pset)
	}
	cfg := sysmodel.Default(ppc, sysmodel.SCCSizes[0])
	prog, _, err := cachedParallelProgram(w, cfg.Procs(), s, dc)
	if err != nil {
		return nil, err
	}
	return cachedParallelProfile(w, cfg.Clusters, s, prog)
}
