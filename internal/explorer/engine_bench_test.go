package explorer_test

import (
	"context"
	"fmt"
	"testing"

	"sccsim/internal/explorer"
	"sccsim/internal/sim"
)

// BenchmarkSweepParallelism measures how the QuickScale Barnes-Hut
// design-space sweep scales with the engine's worker-pool size. The
// trace cache is warmed first so the benchmark isolates simulation
// throughput. On a multi-core machine the 4-worker run should be well
// over 1.5x faster than 1 worker; on a single core all sizes converge.
func BenchmarkSweepParallelism(b *testing.B) {
	s := explorer.QuickScale()
	if _, err := explorer.SweepParallelCtx(context.Background(), explorer.BarnesHut, s,
		sim.Options{}, explorer.EngineOptions{Parallelism: 1}); err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := explorer.SweepParallelCtx(context.Background(), explorer.BarnesHut, s,
					sim.Options{}, explorer.EngineOptions{Parallelism: workers})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
