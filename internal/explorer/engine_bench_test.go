package explorer_test

import (
	"context"
	"fmt"
	"testing"

	"sccsim/internal/explorer"
	"sccsim/internal/sim"
)

// BenchmarkSweepParallelism measures how the QuickScale Barnes-Hut
// design-space sweep scales with the engine's worker-pool size. The
// trace cache is warmed first so the benchmark isolates simulation
// throughput. On a multi-core machine the 4-worker run should be well
// over 1.5x faster than 1 worker; on a single core all sizes converge.
// Besides ns/op it reports sim_cycles/us — simulated cycles delivered
// per microsecond of wall time, the repo's headline throughput metric
// (see BENCH_sweep.json and `make bench-compare`).
func BenchmarkSweepParallelism(b *testing.B) {
	s := explorer.QuickScale()
	if _, err := explorer.SweepParallelCtx(context.Background(), explorer.BarnesHut, s,
		sim.Options{}, explorer.EngineOptions{Parallelism: 1}); err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				g, err := explorer.SweepParallelCtx(context.Background(), explorer.BarnesHut, s,
					sim.Options{}, explorer.EngineOptions{Parallelism: workers})
				if err != nil {
					b.Fatal(err)
				}
				for _, row := range g.Points {
					for _, pt := range row {
						cycles += pt.Result.Cycles
					}
				}
			}
			if us := b.Elapsed().Seconds() * 1e6; us > 0 {
				b.ReportMetric(float64(cycles)/us, "sim_cycles/us")
			}
		})
	}
}
