// The cluster sweep path: a coordinator splits the design-space grid
// into per-point jobs, offers each to a remote executor (worker nodes
// reached over the service's HTTP/JSON protocol), falls back to local
// simulation when a worker fails, and merges the partial results into a
// grid byte-identical to the single-node engine's. The merge is not a
// blind append: every partial result passes through an Assembler that
// rejects unknown slots, duplicates, and configuration mismatches, so a
// confused or malicious worker can fail a point but never corrupt a
// grid (FuzzShardMerge hammers exactly this property).

package explorer

import (
	"context"
	"encoding/json"
	"fmt"

	"sccsim/internal/sim"
	"sccsim/internal/sysmodel"
)

// RemotePointFunc executes one design point somewhere else — on a
// worker node, over whatever transport the caller speaks — and returns
// the simulated point. Implementations own retries and worker
// selection; the engine only distinguishes success (the point is
// merged) from failure (the point is simulated locally instead).
type RemotePointFunc func(ctx context.Context, w Workload, spec PointSpec) (*Point, error)

// GridSpecs returns the design-space grid's point list in job order
// (SCC-size-major, the order the serial sweep loops and assembleGrid
// both use) — the shard plan a coordinator fans out.
func GridSpecs() []PointSpec {
	specs := make([]PointSpec, 0, len(sysmodel.SCCSizes)*len(sysmodel.ProcsPerClusterSweep))
	for _, size := range sysmodel.SCCSizes {
		for _, ppc := range sysmodel.ProcsPerClusterSweep {
			specs = append(specs, PointSpec{PPC: ppc, SCCBytes: size})
		}
	}
	return specs
}

// expectedConfig is the exact configuration a point for spec must carry:
// the paper's default system with the sweep's architecture axes applied,
// single-cluster for multiprogramming — identical to what the local
// sweep paths construct, which is what makes a merged grid
// byte-identical to a single-node one.
func expectedConfig(w Workload, spec PointSpec, axes sysmodel.Axes) sysmodel.Config {
	cfg := sysmodel.Default(spec.PPC, spec.SCCBytes)
	if w == Multiprog {
		cfg.Clusters = 1
	}
	return axes.Apply(cfg)
}

// Assembler accumulates per-point partial results into a design-space
// grid. It is the coordinator's merge point: Put validates each partial
// result against the shard plan — the slot must exist, be empty, and
// the point's configuration must match it exactly — so malformed,
// duplicated or misdirected results are rejected as errors instead of
// corrupting the grid. Not safe for concurrent use; the engine calls it
// from one goroutine.
type Assembler struct {
	w      Workload
	axes   sysmodel.Axes
	specs  []PointSpec
	index  map[PointSpec]int
	points []*Point
	filled int
}

// NewAssembler builds an assembler over the full design-space grid for
// one workload, validating every partial result against the sweep's
// architecture axes (the zero value is the paper's default machine).
func NewAssembler(w Workload, axes sysmodel.Axes) *Assembler {
	specs := GridSpecs()
	idx := make(map[PointSpec]int, len(specs))
	for i, sp := range specs {
		idx[sp] = i
	}
	return &Assembler{
		w: w, axes: axes, specs: specs, index: idx,
		points: make([]*Point, len(specs)),
	}
}

// Specs returns the shard plan: every grid point in job order.
func (a *Assembler) Specs() []PointSpec {
	return append([]PointSpec(nil), a.specs...)
}

// Check validates a partial result against its slot without merging it:
// nil or incomplete points, unknown slots, and configuration mismatches
// are errors. The cluster path calls it on every remote result before
// accepting it, so a bad worker response triggers local fallback rather
// than a failed sweep.
func (a *Assembler) Check(spec PointSpec, pt *Point) error {
	if _, ok := a.index[spec]; !ok {
		return fmt.Errorf("explorer: point %dP/%dB is not in the sweep grid", spec.PPC, spec.SCCBytes)
	}
	if pt == nil || pt.Result == nil {
		return fmt.Errorf("explorer: partial result for %dP/%dB has no simulation result", spec.PPC, spec.SCCBytes)
	}
	if want := expectedConfig(a.w, spec, a.axes); pt.Config != want {
		return fmt.Errorf("explorer: partial result for %dP/%dB carries config %+v, want %+v",
			spec.PPC, spec.SCCBytes, pt.Config, want)
	}
	return nil
}

// Put merges one partial result into its slot. Everything Check rejects
// is rejected here too, plus duplicates: a slot accepts exactly one
// result, so replayed or double-delivered partials fail loudly.
func (a *Assembler) Put(spec PointSpec, pt *Point) error {
	if err := a.Check(spec, pt); err != nil {
		return err
	}
	i := a.index[spec]
	if a.points[i] != nil {
		return fmt.Errorf("explorer: duplicate partial result for %dP/%dB", spec.PPC, spec.SCCBytes)
	}
	a.points[i] = pt
	a.filled++
	return nil
}

// Grid returns the merged grid, failing if any slot is still empty — a
// partial merge is never presented as a complete sweep.
func (a *Assembler) Grid() (*Grid, error) {
	if a.filled != len(a.specs) {
		return nil, fmt.Errorf("explorer: merged grid is incomplete: %d of %d points", a.filled, len(a.specs))
	}
	return assembleGrid(a.w, a.points), nil
}

// pointEnvelope mirrors the fields of the service's point response that
// the coordinator consumes. Decoding is deliberately permissive about
// extra fields (the envelope also carries ids and cache provenance) and
// strict about the ones that matter.
type pointEnvelope struct {
	Status string `json:"status"`
	Point  *Point `json:"point"`
	Error  string `json:"error"`
}

// DecodePointEnvelope parses a worker's `POST /v1/point` response body
// into the simulated point. Malformed JSON, non-done statuses, worker
// errors and missing results all return an error — the caller retries
// or falls back, it never merges a suspect payload.
func DecodePointEnvelope(raw []byte) (*Point, error) {
	var env pointEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return nil, fmt.Errorf("explorer: malformed point envelope: %w", err)
	}
	if env.Error != "" {
		return nil, fmt.Errorf("explorer: worker reported: %s", env.Error)
	}
	if env.Status != "done" {
		return nil, fmt.Errorf("explorer: point envelope status %q, want done", env.Status)
	}
	if env.Point == nil || env.Point.Result == nil {
		return nil, fmt.Errorf("explorer: point envelope carries no result")
	}
	return env.Point, nil
}

// SweepClusterCtx runs the full design-space sweep with remote
// execution: each grid point is offered to eng.Remote (with the local
// worker pool providing concurrency, progress events and the sweep
// report exactly as in a single-node sweep) and simulated locally when
// the remote path fails — a dead, draining or lying worker costs one
// retry round, never a failed or incorrect sweep. Accepted results are
// merged through an Assembler, so the returned grid is byte-identical
// to SweepCtx's for the same experiment. Metrics (when enabled) count
// the split: explorer.cluster_remote_points ran remotely,
// explorer.cluster_local_points ran here (including fallbacks).
func SweepClusterCtx(ctx context.Context, w Workload, s Scale, opts sim.Options, eng EngineOptions) (*Grid, error) {
	remote := eng.Remote
	if remote == nil {
		return SweepCtx(ctx, w, s, opts, eng)
	}
	asm := NewAssembler(w, eng.Axes)
	specs := asm.Specs()
	tc := &traceCounters{reg: eng.Metrics}
	jobs := make([]pointJob, len(specs))
	for i, spec := range specs {
		local := pointJobFor(w, spec, eng.Axes, s, opts, tc, eng.TraceCache)
		jobs[i] = pointJob{cfg: local.cfg, run: func(ctx context.Context, tr sim.Tracer) (*Point, error) {
			pt, err := remote(ctx, w, spec)
			if err == nil {
				if cerr := asm.Check(spec, pt); cerr == nil {
					if m := eng.Metrics; m != nil {
						m.Counter("explorer.cluster_remote_points").Inc()
					}
					return pt, nil
				}
			}
			// Remote failure (or a result that fails validation): fall
			// back to local simulation — unless the sweep itself is
			// being cancelled, which must propagate, not degrade.
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			if m := eng.Metrics; m != nil {
				m.Counter("explorer.cluster_local_points").Inc()
			}
			return local.run(ctx, tr)
		}}
	}
	points, err := runPoints(ctx, w, jobs, eng, tc)
	if err != nil {
		return nil, err
	}
	for i, pt := range points {
		if err := asm.Put(specs[i], pt); err != nil {
			return nil, err
		}
	}
	return asm.Grid()
}
