// In-package tests for the persistent trace cache: the warm-run
// guarantee (a second sweep against the same cache directory generates
// nothing) and the multiprog process-set <-> program container mapping.
package explorer

import (
	"context"
	"reflect"
	"testing"

	"sccsim/internal/mem"
	"sccsim/internal/sim"
	"sccsim/internal/trace"
)

func newTestDiskCache(t *testing.T) *trace.DiskCache {
	t.Helper()
	dc, err := trace.NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return dc
}

// sweepWithReport runs one full grid sweep and returns its report.
func sweepWithReport(t *testing.T, w Workload, dc *trace.DiskCache) (*Grid, SweepReport) {
	t.Helper()
	var rep SweepReport
	g, err := SweepCtx(context.Background(), w, QuickScale(), sim.Options{},
		EngineOptions{TraceCache: dc, Report: func(r SweepReport) { rep = r }})
	if err != nil {
		t.Fatal(err)
	}
	return g, rep
}

func checkCounters(t *testing.T, phase string, rep SweepReport) {
	t.Helper()
	if rep.TraceDiskHits+rep.TraceGenerated != rep.TraceMisses {
		t.Errorf("%s: DiskHits(%d) + Generated(%d) != Misses(%d)",
			phase, rep.TraceDiskHits, rep.TraceGenerated, rep.TraceMisses)
	}
}

func testWarmDiskCacheSkipsGeneration(t *testing.T, w Workload) {
	dc := newTestDiskCache(t)
	ResetTraceCache()
	t.Cleanup(ResetTraceCache)

	cold, coldRep := sweepWithReport(t, w, dc)
	checkCounters(t, "cold", coldRep)
	if coldRep.TraceGenerated == 0 {
		t.Fatal("cold sweep generated nothing — cache dir was not empty?")
	}
	if coldRep.TraceDiskHits != 0 {
		t.Fatalf("cold sweep hit the disk cache %d times", coldRep.TraceDiskHits)
	}

	// Drop the in-memory cache so the second sweep must go to disk —
	// this is what a fresh process with a warm -trace-cache dir does.
	ResetTraceCache()
	warm, warmRep := sweepWithReport(t, w, dc)
	checkCounters(t, "warm", warmRep)
	if warmRep.TraceGenerated != 0 {
		t.Fatalf("warm sweep ran %d generations, want 0", warmRep.TraceGenerated)
	}
	if warmRep.TraceDiskHits == 0 {
		t.Fatal("warm sweep never touched the disk cache")
	}
	if warmRep.TraceDiskHits != coldRep.TraceGenerated {
		t.Errorf("warm disk hits %d != cold generations %d — key mismatch between store and load",
			warmRep.TraceDiskHits, coldRep.TraceGenerated)
	}

	// Replaying a trace that went through the disk format must be
	// indistinguishable from replaying the generator's output.
	if !reflect.DeepEqual(cold.Points, warm.Points) {
		t.Fatal("warm-cache sweep results differ from cold sweep")
	}
}

func TestWarmDiskCacheParallel(t *testing.T)  { testWarmDiskCacheSkipsGeneration(t, BarnesHut) }
func TestWarmDiskCacheMultiprog(t *testing.T) { testWarmDiskCacheSkipsGeneration(t, Multiprog) }

// TestCachedParallelProgramSources pins the traceSource classification:
// first resolution generates, a repeat shares in memory, and a repeat
// after a memory reset loads from disk.
func TestCachedParallelProgramSources(t *testing.T) {
	dc := newTestDiskCache(t)
	ResetTraceCache()
	t.Cleanup(ResetTraceCache)
	s := QuickScale()

	p1, src, err := cachedParallelProgram(MP3D, 4, s, dc)
	if err != nil {
		t.Fatal(err)
	}
	if src != traceGenerated {
		t.Fatalf("first lookup src = %d, want traceGenerated", src)
	}
	p2, src, err := cachedParallelProgram(MP3D, 4, s, dc)
	if err != nil || src != traceShared || p2 != p1 {
		t.Fatalf("repeat lookup: src=%d err=%v shared=%v, want traceShared of same program",
			src, err, p2 == p1)
	}

	ResetTraceCache()
	p3, src, err := cachedParallelProgram(MP3D, 4, s, dc)
	if err != nil {
		t.Fatal(err)
	}
	if src != traceFromDisk {
		t.Fatalf("post-reset lookup src = %d, want traceFromDisk", src)
	}
	if p3.Name != p1.Name || p3.Procs != p1.Procs || !reflect.DeepEqual(p3.Phases, p1.Phases) {
		t.Fatal("disk-loaded program differs from generated program")
	}
}

func TestMultiprogProgramContainerRoundTrip(t *testing.T) {
	pset := []sim.Process{
		{Name: "compress", Refs: []mem.Ref{
			{Addr: 0x1000, Kind: mem.Read, Gap: 2},
			{Addr: 0x1040, Kind: mem.Write},
		}},
		{Name: "espresso", Refs: []mem.Ref{
			{Addr: 0x2000, Kind: mem.Read},
		}},
	}
	p := processesToProgram(pset)
	if err := p.Validate(); err != nil {
		t.Fatalf("container program invalid: %v", err)
	}
	back, err := programToProcesses(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(pset) {
		t.Fatalf("got %d processes, want %d", len(back), len(pset))
	}
	for i := range pset {
		if back[i].Name != pset[i].Name || !reflect.DeepEqual(back[i].Refs, pset[i].Refs) {
			t.Errorf("process %d changed in round trip", i)
		}
	}
	if _, err := programToProcesses(&trace.Program{Name: "x", Procs: 2}); err == nil {
		t.Fatal("multi-processor program accepted as a multiprog container")
	}
}
