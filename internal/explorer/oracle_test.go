// Oracle cross-check for the real simulator: every point of the
// design-space grid, for every workload, must produce exactly the
// numbers the naive map-based oracle model (internal/verify) computes
// from the same trace. Unlike the compiled-vs-legacy differential test —
// which proves the fast path matches the slow path but is blind to bugs
// they share — the oracle shares no simulation code with internal/sim,
// so agreement here pins the implementation to the documented model
// itself. The real runs execute with the invariant checker enabled, so
// this test also exercises the per-transaction coherence checks and the
// end-of-run residency audit across the whole grid.
package explorer_test

import (
	"testing"

	"sccsim/internal/explorer"
	"sccsim/internal/sim"
	"sccsim/internal/sysmodel"
	"sccsim/internal/verify"
	"sccsim/internal/workload/multiprog"
)

// gridSizes returns the SCC sizes to sweep: the full paper set, or a
// small/large pair under -short.
func gridSizes(t *testing.T) []int {
	if testing.Short() {
		return []int{sysmodel.SCCSizes[0], sysmodel.SCCSizes[len(sysmodel.SCCSizes)-1]}
	}
	return sysmodel.SCCSizes
}

func diffAgainstOracle(t *testing.T, res *sim.Result, oracle *verify.RunStats) {
	t.Helper()
	real := res.VerifyStats()
	for _, d := range verify.DiffRunStats(oracle, &real) {
		t.Errorf("oracle divergence: %s", d)
	}
}

func TestOracleMatchesSimulatorFullGrid(t *testing.T) {
	s := explorer.QuickScale()
	for _, w := range explorer.ParallelWorkloads {
		w := w
		t.Run(string(w), func(t *testing.T) {
			t.Parallel()
			for _, ppc := range sysmodel.ProcsPerClusterSweep {
				prog, err := explorer.GenerateParallel(w, sysmodel.DefaultClusters*ppc, s)
				if err != nil {
					t.Fatal(err)
				}
				for _, size := range gridSizes(t) {
					cfg := sysmodel.Default(ppc, size)
					res, err := sim.Run(cfg, sim.Options{Verify: &verify.Options{}}, prog)
					if err != nil {
						t.Fatalf("ppc=%d scc=%d: %v", ppc, size, err)
					}
					oracle, err := verify.RunOracle(cfg, prog, verify.OracleOptions{})
					if err != nil {
						t.Fatalf("ppc=%d scc=%d: oracle: %v", ppc, size, err)
					}
					diffAgainstOracle(t, res, oracle)
					if t.Failed() {
						t.Fatalf("oracle diverged at %s ppc=%d scc=%d", w, ppc, size)
					}
				}
			}
		})
	}

	t.Run(string(explorer.Multiprog), func(t *testing.T) {
		t.Parallel()
		s := explorer.QuickScale()
		refs := s.MultiprogRefs
		quantum := multiprog.Quantum(refs)
		procs, err := multiprog.Generate(multiprog.Params{RefsPerApp: refs, Seed: s.Seed})
		if err != nil {
			t.Fatal(err)
		}
		oprocs := make([]verify.Process, len(procs))
		for i, p := range procs {
			oprocs[i] = verify.Process{Name: p.Name, Refs: p.Refs}
		}
		for _, ppc := range sysmodel.ProcsPerClusterSweep {
			for _, size := range gridSizes(t) {
				cfg := sysmodel.Config{
					Clusters: 1, ProcsPerCluster: ppc, SCCBytes: size,
					LoadLatency: sysmodel.ImpliedLoadLatency(ppc), Assoc: 1,
				}
				res, err := sim.RunMultiprog(cfg, sim.Options{Verify: &verify.Options{}}, procs, quantum)
				if err != nil {
					t.Fatalf("ppc=%d scc=%d: %v", ppc, size, err)
				}
				oracle, err := verify.RunOracleMultiprog(cfg, oprocs, quantum, verify.OracleOptions{})
				if err != nil {
					t.Fatalf("ppc=%d scc=%d: oracle: %v", ppc, size, err)
				}
				diffAgainstOracle(t, res, oracle)
				if t.Failed() {
					t.Fatalf("oracle diverged at multiprog ppc=%d scc=%d", ppc, size)
				}
			}
		}
	})
}
