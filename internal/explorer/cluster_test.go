package explorer

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"sccsim/internal/sim"
	"sccsim/internal/sysmodel"
)

func TestGridSpecsCoverTheGrid(t *testing.T) {
	specs := GridSpecs()
	asm := NewAssembler(BarnesHut, sysmodel.Axes{})
	if len(specs) == 0 {
		t.Fatal("empty shard plan")
	}
	seen := make(map[PointSpec]bool, len(specs))
	for _, sp := range specs {
		if seen[sp] {
			t.Fatalf("duplicate spec %+v in shard plan", sp)
		}
		seen[sp] = true
	}
	if got := asm.Specs(); len(got) != len(specs) {
		t.Fatalf("assembler plan has %d specs, GridSpecs %d", len(got), len(specs))
	}
}

func TestAssemblerRejectsBadPartials(t *testing.T) {
	asm := NewAssembler(BarnesHut, sysmodel.Axes{})
	spec := asm.Specs()[0]
	good := &Point{Config: expectedConfig(BarnesHut, spec, sysmodel.Axes{}), Result: &sim.Result{Cycles: 1}}

	if err := asm.Put(spec, nil); err == nil {
		t.Error("nil point accepted")
	}
	if err := asm.Put(spec, &Point{Config: good.Config}); err == nil {
		t.Error("point without result accepted")
	}
	if err := asm.Put(PointSpec{PPC: 3, SCCBytes: 12345}, good); err == nil {
		t.Error("out-of-grid spec accepted")
	}
	wrong := *good
	wrong.Config.SCCBytes *= 2
	if err := asm.Put(spec, &wrong); err == nil {
		t.Error("config-mismatched point accepted")
	}
	mp := *good
	mp.Config.Clusters = 1 // a multiprog-shaped config in a parallel sweep
	if err := asm.Put(spec, &mp); err == nil {
		t.Error("cluster-count-mismatched point accepted")
	}

	if err := asm.Put(spec, good); err != nil {
		t.Fatalf("valid point rejected: %v", err)
	}
	if err := asm.Put(spec, good); err == nil {
		t.Error("duplicate partial accepted")
	}
	if _, err := asm.Grid(); err == nil {
		t.Error("incomplete merge produced a grid")
	}
}

func TestDecodePointEnvelope(t *testing.T) {
	spec := PointSpec{PPC: 1, SCCBytes: 64 * 1024}
	pt := &Point{Config: expectedConfig(BarnesHut, spec, sysmodel.Axes{}), Result: &sim.Result{Cycles: 42, Refs: 7}}
	raw, err := json.Marshal(map[string]any{"status": "done", "point": pt})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePointEnvelope(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Result.Cycles != 42 || got.Result.Refs != 7 {
		t.Fatalf("decoded point %+v", got.Result)
	}
	for name, bad := range map[string]string{
		"malformed":  "{not json",
		"truncated":  string(raw[:len(raw)/2]),
		"failed":     `{"status":"failed","error":"boom"}`,
		"running":    `{"status":"running"}`,
		"no point":   `{"status":"done"}`,
		"null point": `{"status":"done","point":null}`,
		"no result":  `{"status":"done","point":{"Config":{}}}`,
	} {
		if _, err := DecodePointEnvelope([]byte(bad)); err == nil {
			t.Errorf("%s envelope accepted", name)
		}
	}
}

// TestSweepClusterByteIdentity is the heart of the distributed design:
// a sweep whose points are served by a "worker" (modelled as a JSON
// round trip through the service's point-envelope encoding — exactly
// what crosses the wire) merges to a grid byte-identical to the local
// engine's, and a sweep whose remote always fails falls back to local
// execution with, again, an identical grid.
func TestSweepClusterByteIdentity(t *testing.T) {
	ResetTraceCache()
	t.Cleanup(ResetTraceCache)
	s := QuickScale()
	ctx := context.Background()

	for _, w := range []Workload{BarnesHut, Multiprog} {
		want, err := SweepCtx(ctx, w, s, sim.Options{}, EngineOptions{Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		wantJSON, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}

		var served, progress atomic.Int64
		remote := func(ctx context.Context, rw Workload, spec PointSpec) (*Point, error) {
			pt, err := RunPointCtx(ctx, rw, spec.PPC, spec.SCCBytes, s, sim.Options{})
			if err != nil {
				return nil, err
			}
			// Model the wire: the worker's envelope, decoded as the
			// coordinator does.
			raw, err := json.Marshal(map[string]any{"status": "done", "point": pt})
			if err != nil {
				return nil, err
			}
			served.Add(1)
			return DecodePointEnvelope(raw)
		}
		eng := EngineOptions{Parallelism: 4, Remote: remote,
			Progress: func(Progress) { progress.Add(1) }}
		got, err := SweepClusterCtx(ctx, w, s, sim.Options{}, eng)
		if err != nil {
			t.Fatal(err)
		}
		gotJSON, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Fatalf("%s: cluster grid differs from single-node grid", w)
		}
		if served.Load() != int64(len(GridSpecs())) {
			t.Fatalf("%s: %d points served remotely, want %d", w, served.Load(), len(GridSpecs()))
		}
		if progress.Load() != int64(len(GridSpecs())) {
			t.Fatalf("%s: %d progress events, want %d", w, progress.Load(), len(GridSpecs()))
		}

		// Remote always failing: every point falls back to local
		// simulation; same grid, no error.
		down := func(context.Context, Workload, PointSpec) (*Point, error) {
			return nil, errors.New("worker down")
		}
		got, err = SweepClusterCtx(ctx, w, s, sim.Options{}, EngineOptions{Parallelism: 4, Remote: down})
		if err != nil {
			t.Fatal(err)
		}
		gotJSON, err = json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Fatalf("%s: fallback grid differs from single-node grid", w)
		}
	}
}

// TestSweepClusterRejectsLyingWorker: a remote that returns a valid
// point for the wrong configuration is treated as a failure — the point
// is recomputed locally and the grid stays correct.
func TestSweepClusterRejectsLyingWorker(t *testing.T) {
	ResetTraceCache()
	t.Cleanup(ResetTraceCache)
	s := QuickScale()
	ctx := context.Background()
	want, err := SweepCtx(ctx, BarnesHut, s, sim.Options{}, EngineOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)

	liar := func(ctx context.Context, w Workload, spec PointSpec) (*Point, error) {
		// Always serve the grid's first point, whatever was asked.
		first := GridSpecs()[0]
		return RunPointCtx(ctx, w, first.PPC, first.SCCBytes, s, sim.Options{})
	}
	got, err := SweepClusterCtx(ctx, BarnesHut, s, sim.Options{}, EngineOptions{Parallelism: 4, Remote: liar})
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(got)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatal("lying worker corrupted the merged grid")
	}
}

// TestSweepClusterCancellationPropagates: cancelling the sweep context
// must surface as an error, not degrade into local fallback execution.
func TestSweepClusterCancellationPropagates(t *testing.T) {
	ResetTraceCache()
	t.Cleanup(ResetTraceCache)
	ctx, cancel := context.WithCancel(context.Background())
	remote := func(ctx context.Context, w Workload, spec PointSpec) (*Point, error) {
		cancel()
		<-ctx.Done()
		return nil, ctx.Err()
	}
	_, err := SweepClusterCtx(ctx, BarnesHut, QuickScale(), sim.Options{},
		EngineOptions{Parallelism: 2, Remote: remote})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// FuzzShardMerge hammers the two distrust boundaries of the distributed
// sweep with hostile bytes: the worker point envelope (malformed,
// truncated, wrong-status, resultless payloads must be rejected, never
// panic) and the partial-grid merge (whatever decodes must still pass
// slot, duplicate and configuration validation before it can land in a
// grid — and a grid must never assemble from fewer points than the
// plan).
func FuzzShardMerge(f *testing.F) {
	spec := GridSpecs()[0]
	pt := &Point{Config: expectedConfig(BarnesHut, spec, sysmodel.Axes{}), Result: &sim.Result{Cycles: 9, Refs: 3}}
	good, _ := json.Marshal(map[string]any{"status": "done", "point": pt})
	f.Add(good, 1, 64*1024)
	f.Add([]byte(`{"status":"failed","error":"x"}`), 1, 4096)
	f.Add([]byte(`{"status":"done","point":{"Config":{"Clusters":4},"Result":{"Cycles":1}}}`), 2, 8192)
	f.Add(good[:len(good)/2], 8, 512*1024)
	f.Add([]byte(`[]`), 0, 0)
	f.Fuzz(func(t *testing.T, raw []byte, ppc, scc int) {
		asm := NewAssembler(BarnesHut, sysmodel.Axes{})
		decoded, err := DecodePointEnvelope(raw)
		if err != nil {
			if decoded != nil {
				t.Fatal("rejected envelope returned a point")
			}
			return
		}
		if decoded == nil || decoded.Result == nil {
			t.Fatal("accepted envelope without a result")
		}
		spec := PointSpec{PPC: ppc, SCCBytes: scc}
		// First delivery: merged iff it validates. Second delivery of
		// the same partial must always be rejected.
		if err := asm.Put(spec, decoded); err == nil {
			if cerr := asm.Check(spec, decoded); cerr != nil {
				t.Fatalf("Put accepted what Check rejects: %v", cerr)
			}
			if err := asm.Put(spec, decoded); err == nil {
				t.Fatal("duplicate partial accepted")
			}
			if _, err := asm.Grid(); err == nil && len(asm.Specs()) > 1 {
				t.Fatal("grid assembled from a single partial")
			}
		} else if cerr := asm.Check(spec, decoded); cerr == nil {
			t.Fatalf("Put rejected what Check accepts: %v", err)
		}
	})
}

var _ = fmt.Sprintf // keep fmt for debugging edits
