// External test package so the engine's output can be rendered through
// internal/report (which imports explorer) and compared byte-for-byte
// against the serial sweep path.
package explorer_test

import (
	"context"
	"errors"
	"testing"

	"sccsim/internal/explorer"
	"sccsim/internal/obs"
	"sccsim/internal/report"
	"sccsim/internal/sim"
)

// TestSweepParallelCtxByteIdentical is the engine's determinism
// guarantee: for QuickScale Barnes-Hut, the concurrent sweep renders
// byte-identical tables to the serial engine, and the progress hook
// reports every point exactly once.
func TestSweepParallelCtxByteIdentical(t *testing.T) {
	s := explorer.QuickScale()
	serial, err := explorer.SweepParallel(explorer.BarnesHut, s, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}

	var events []explorer.Progress
	par, err := explorer.SweepParallelCtx(context.Background(), explorer.BarnesHut, s, sim.Options{},
		explorer.EngineOptions{Parallelism: 4, Progress: func(p explorer.Progress) {
			events = append(events, p)
		}})
	if err != nil {
		t.Fatal(err)
	}

	if got, want := report.SpeedupTable(par), report.SpeedupTable(serial); got != want {
		t.Errorf("SpeedupTable diverged:\n--- parallel ---\n%s--- serial ---\n%s", got, want)
	}
	if got, want := report.MissRateTable(par), report.MissRateTable(serial); got != want {
		t.Errorf("MissRateTable diverged:\n--- parallel ---\n%s--- serial ---\n%s", got, want)
	}
	if got, want := report.GridCSV(par), report.GridCSV(serial); got != want {
		t.Error("GridCSV diverged")
	}

	total := len(par.Sizes()) * len(par.Procs())
	if len(events) != total {
		t.Fatalf("progress events = %d, want %d", len(events), total)
	}
	var lastElapsed int64
	for i, e := range events {
		if e.Done != i+1 || e.Total != total {
			t.Errorf("event %d: Done/Total = %d/%d, want %d/%d", i, e.Done, e.Total, i+1, total)
		}
		if e.Workload != explorer.BarnesHut {
			t.Errorf("event %d: workload = %s", i, e.Workload)
		}
		if int64(e.Elapsed) < lastElapsed {
			t.Errorf("event %d: elapsed went backwards (%v)", i, e.Elapsed)
		}
		lastElapsed = int64(e.Elapsed)
		if e.PointTime < 0 {
			t.Errorf("event %d: negative point time", i)
		}
	}
}

// TestSweepMultiprogCtxByteIdentical checks the multiprogramming sweep
// the same way, at a reduced reference budget to keep the 28 points
// cheap.
func TestSweepMultiprogCtxByteIdentical(t *testing.T) {
	s := explorer.Scale{MultiprogRefs: 20_000, Seed: 1}
	serial, err := explorer.SweepMultiprog(s, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := explorer.SweepMultiprogCtx(context.Background(), s, sim.Options{},
		explorer.EngineOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := report.GridCSV(par), report.GridCSV(serial); got != want {
		t.Errorf("multiprog GridCSV diverged:\n--- parallel ---\n%s--- serial ---\n%s", got, want)
	}
}

// TestSweepTelemetryAndTraceCache: a multiprogramming sweep shares one
// generated trace — the SweepReport must show exactly one cache miss
// (the generation) and a hit for every other point — and the report's
// timings must be internally consistent.
func TestSweepTelemetryAndTraceCache(t *testing.T) {
	explorer.ResetTraceCache()
	s := explorer.Scale{MultiprogRefs: 20_000, Seed: 1}
	var rep *explorer.SweepReport
	var lastProgress explorer.Progress
	g, err := explorer.SweepMultiprogCtx(context.Background(), s, sim.Options{},
		explorer.EngineOptions{
			Parallelism: 4,
			Report:      func(r explorer.SweepReport) { rep = &r },
			Progress:    func(p explorer.Progress) { lastProgress = p },
		})
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("Report hook was not called")
	}
	total := len(g.Sizes()) * len(g.Procs())
	if rep.Points != total {
		t.Errorf("report points = %d, want %d", rep.Points, total)
	}
	if rep.TraceMisses != 1 {
		t.Errorf("trace-cache misses = %d, want exactly 1 (each trace generated once)", rep.TraceMisses)
	}
	if rep.TraceHits != uint64(total-1) {
		t.Errorf("trace-cache hits = %d, want %d", rep.TraceHits, total-1)
	}
	if lastProgress.TraceHits+lastProgress.TraceMisses != uint64(total) {
		t.Errorf("final progress event counted %d+%d cache lookups, want %d",
			lastProgress.TraceHits, lastProgress.TraceMisses, total)
	}
	if rep.Workers != 4 {
		t.Errorf("report workers = %d, want 4", rep.Workers)
	}
	if len(rep.PointWall) != total || len(rep.QueueWait) != total {
		t.Fatalf("per-point slices = %d/%d entries, want %d",
			len(rep.PointWall), len(rep.QueueWait), total)
	}
	var busy int64
	for _, d := range rep.PointWall {
		if d <= 0 {
			t.Error("a completed point has zero wall time")
		}
		busy += int64(d)
	}
	if int64(rep.Busy) != busy {
		t.Errorf("Busy = %v, sum of PointWall = %v", rep.Busy, busy)
	}
	if rep.Utilization <= 0 || rep.Utilization > 1.0001 {
		t.Errorf("Utilization = %v, want in (0, 1]", rep.Utilization)
	}
	if rep.Wall <= 0 {
		t.Error("Wall not recorded")
	}
}

// TestSweepEngineMetrics: a registry handed to the engine records the
// points-done counter and per-point timing histogram.
func TestSweepEngineMetrics(t *testing.T) {
	explorer.ResetTraceCache()
	reg := obs.NewRegistry()
	s := explorer.Scale{MultiprogRefs: 20_000, Seed: 1}
	g, err := explorer.SweepMultiprogCtx(context.Background(), s, sim.Options{},
		explorer.EngineOptions{Parallelism: 4, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	total := uint64(len(g.Sizes()) * len(g.Procs()))
	if got := reg.Counter("explorer.points_done").Value(); got != total {
		t.Errorf("points_done = %d, want %d", got, total)
	}
	if got := reg.Counter("explorer.trace_cache_misses").Value(); got != 1 {
		t.Errorf("trace_cache_misses = %d, want 1", got)
	}
	if got := reg.Counter("explorer.trace_cache_hits").Value(); got != total-1 {
		t.Errorf("trace_cache_hits = %d, want %d", got, total-1)
	}
}

func TestSweepCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := explorer.SweepCtx(ctx, explorer.BarnesHut, explorer.QuickScale(), sim.Options{},
		explorer.EngineOptions{Parallelism: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSweepCtxFirstError: a failing design point cancels the rest of the
// sweep and its error — not the secondary cancellation — is returned.
func TestSweepCtxFirstError(t *testing.T) {
	_, err := explorer.SweepParallelCtx(context.Background(), explorer.Workload("no-such-workload"),
		explorer.QuickScale(), sim.Options{}, explorer.EngineOptions{Parallelism: 4})
	if err == nil {
		t.Fatal("sweep of an unknown workload succeeded")
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("first-error propagation returned the cancellation, not the cause: %v", err)
	}
}

// TestRunPointsCtxMatchesRunPoint: the engine's point runner (with its
// trace cache) returns the same results as the serial RunPoint path, in
// input order, for both parallel and multiprogramming workloads.
func TestRunPointsCtxMatchesRunPoint(t *testing.T) {
	s := explorer.QuickScale()
	for _, w := range []explorer.Workload{explorer.BarnesHut, explorer.Multiprog} {
		specs := []explorer.PointSpec{{PPC: 1, SCCBytes: 64 * 1024}, {PPC: 2, SCCBytes: 32 * 1024}}
		pts, err := explorer.RunPointsCtx(context.Background(), w, specs, s, sim.Options{},
			explorer.EngineOptions{Parallelism: 2})
		if err != nil {
			t.Fatalf("%s: %v", w, err)
		}
		for i, spec := range specs {
			want, err := explorer.RunPoint(w, spec.PPC, spec.SCCBytes, s, sim.Options{})
			if err != nil {
				t.Fatalf("%s: %v", w, err)
			}
			if pts[i].Result.Cycles != want.Result.Cycles || pts[i].Result.Refs != want.Result.Refs {
				t.Errorf("%s %dP/%dKB: engine %d cycles / %d refs, serial %d / %d",
					w, spec.PPC, spec.SCCBytes/1024,
					pts[i].Result.Cycles, pts[i].Result.Refs,
					want.Result.Cycles, want.Result.Refs)
			}
			if pts[i].Config != want.Config {
				t.Errorf("%s: config %v, want %v", w, pts[i].Config, want.Config)
			}
		}
	}
}

func TestGridAccessors(t *testing.T) {
	g := &explorer.Grid{Workload: explorer.BarnesHut}
	sizes, procs := g.Sizes(), g.Procs()
	if len(sizes) != 8 || sizes[0] != 4*1024 || sizes[7] != 512*1024 {
		t.Errorf("Sizes() = %v", sizes)
	}
	if len(procs) != 4 || procs[0] != 1 || procs[3] != 8 {
		t.Errorf("Procs() = %v", procs)
	}
	// Accessors hand out copies; mutating them must not corrupt the axes.
	sizes[0], procs[0] = -1, -1
	if g.Sizes()[0] != 4*1024 || g.Procs()[0] != 1 {
		t.Error("accessor slices alias the sweep axes")
	}
}
