// Oracle cross-checks for the widened design space: the private and
// hybrid hierarchies over the full procs-per-cluster x SCC-size grid,
// and a sampled grid over the line-size, associativity and replacement
// axes, for every workload. As in oracle_test.go, the real runs execute
// with the invariant checker enabled, so every point is held to the
// per-transaction coherence laws and the end-of-run audit as well as to
// the independent map-based model.
package explorer_test

import (
	"fmt"
	"testing"

	"sccsim/internal/explorer"
	"sccsim/internal/sim"
	"sccsim/internal/sysmodel"
	"sccsim/internal/verify"
	"sccsim/internal/workload/multiprog"
)

// hierarchyGrid runs the full paper grid under the given hierarchy for
// every parallel workload and diffs each point against the oracle.
func hierarchyGrid(t *testing.T, hierarchy string) {
	s := explorer.QuickScale()
	for _, w := range explorer.ParallelWorkloads {
		w := w
		t.Run(string(w), func(t *testing.T) {
			t.Parallel()
			for _, ppc := range sysmodel.ProcsPerClusterSweep {
				prog, err := explorer.GenerateParallel(w, sysmodel.DefaultClusters*ppc, s)
				if err != nil {
					t.Fatal(err)
				}
				for _, size := range gridSizes(t) {
					cfg := sysmodel.Default(ppc, size)
					cfg.Hierarchy = hierarchy
					res, err := sim.Run(cfg, sim.Options{Verify: &verify.Options{}}, prog)
					if err != nil {
						t.Fatalf("ppc=%d scc=%d: %v", ppc, size, err)
					}
					oracle, err := verify.RunOracle(cfg, prog, verify.OracleOptions{})
					if err != nil {
						t.Fatalf("ppc=%d scc=%d: oracle: %v", ppc, size, err)
					}
					diffAgainstOracle(t, res, oracle)
					if t.Failed() {
						t.Fatalf("oracle diverged at %s ppc=%d scc=%d", w, ppc, size)
					}
				}
			}
		})
	}
}

func TestOracleMatchesSimulatorPrivateGrid(t *testing.T) {
	hierarchyGrid(t, sysmodel.HierarchyPrivate)
}

func TestOracleMatchesSimulatorHybridGrid(t *testing.T) {
	hierarchyGrid(t, sysmodel.HierarchyHybrid)
}

// axisSample is one sampled point of the line/assoc/repl/hierarchy grid.
type axisSample struct {
	hierarchy string
	lineBytes int
	assoc     int
	repl      string
	l1Bytes   int
}

func (a axisSample) String() string {
	h := a.hierarchy
	if h == "" {
		h = sysmodel.HierarchyShared
	}
	return fmt.Sprintf("%s-line%d-assoc%d-%s", h, a.lineBytes, a.assoc, a.repl)
}

// axisSamples covers every hierarchy, both replacement policies,
// non-default line sizes and associativities, in combination.
var axisSamples = []axisSample{
	{hierarchy: sysmodel.HierarchyShared, lineBytes: 32, assoc: 2, repl: sysmodel.ReplLRU},
	{hierarchy: sysmodel.HierarchyShared, lineBytes: 64, assoc: 4, repl: sysmodel.ReplRandom},
	{hierarchy: sysmodel.HierarchyShared, lineBytes: 16, assoc: 8, repl: sysmodel.ReplRandom},
	{hierarchy: sysmodel.HierarchyPrivate, lineBytes: 32, assoc: 2, repl: sysmodel.ReplLRU},
	{hierarchy: sysmodel.HierarchyPrivate, lineBytes: 16, assoc: 4, repl: sysmodel.ReplRandom},
	{hierarchy: sysmodel.HierarchyHybrid, lineBytes: 32, assoc: 2, repl: sysmodel.ReplRandom},
	{hierarchy: sysmodel.HierarchyHybrid, lineBytes: 16, assoc: 4, repl: sysmodel.ReplLRU, l1Bytes: 2048},
}

// TestOracleMatchesSimulatorAxisSamples sweeps the sampled axis grid for
// the three parallel workloads at a fixed machine shape.
func TestOracleMatchesSimulatorAxisSamples(t *testing.T) {
	s := explorer.QuickScale()
	const ppc = 2
	size := sysmodel.SCCSizes[0]
	for _, w := range explorer.ParallelWorkloads {
		w := w
		t.Run(string(w), func(t *testing.T) {
			t.Parallel()
			prog, err := explorer.GenerateParallel(w, sysmodel.DefaultClusters*ppc, s)
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range axisSamples {
				cfg := sysmodel.Default(ppc, size)
				cfg.Hierarchy = a.hierarchy
				cfg.LineBytes = a.lineBytes
				cfg.Assoc = a.assoc
				cfg.Repl = a.repl
				cfg.L1Bytes = a.l1Bytes
				res, err := sim.Run(cfg, sim.Options{Verify: &verify.Options{}}, prog)
				if err != nil {
					t.Fatalf("%s: %v", a, err)
				}
				oracle, err := verify.RunOracle(cfg, prog, verify.OracleOptions{})
				if err != nil {
					t.Fatalf("%s: oracle: %v", a, err)
				}
				diffAgainstOracle(t, res, oracle)
				if t.Failed() {
					t.Fatalf("oracle diverged at %s %s", w, a)
				}
			}
		})
	}
}

// TestOracleMatchesSimulatorAxisSamplesMultiprog sweeps the shared-only
// axis samples for the multiprogramming workload (line size,
// associativity and replacement apply there; the private and hybrid
// hierarchies do not).
func TestOracleMatchesSimulatorAxisSamplesMultiprog(t *testing.T) {
	s := explorer.QuickScale()
	refs := s.MultiprogRefs
	quantum := multiprog.Quantum(refs)
	procs, err := multiprog.Generate(multiprog.Params{RefsPerApp: refs, Seed: s.Seed})
	if err != nil {
		t.Fatal(err)
	}
	oprocs := make([]verify.Process, len(procs))
	for i, p := range procs {
		oprocs[i] = verify.Process{Name: p.Name, Refs: p.Refs}
	}
	for _, a := range axisSamples {
		if a.hierarchy != sysmodel.HierarchyShared {
			continue
		}
		cfg := sysmodel.Config{
			Clusters: 1, ProcsPerCluster: 4, SCCBytes: sysmodel.SCCSizes[0],
			LoadLatency: sysmodel.ImpliedLoadLatency(4),
			LineBytes:   a.lineBytes, Assoc: a.assoc, Repl: a.repl,
		}
		res, err := sim.RunMultiprog(cfg, sim.Options{Verify: &verify.Options{}}, procs, quantum)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		oracle, err := verify.RunOracleMultiprog(cfg, oprocs, quantum, verify.OracleOptions{})
		if err != nil {
			t.Fatalf("%s: oracle: %v", a, err)
		}
		diffAgainstOracle(t, res, oracle)
		if t.Failed() {
			t.Fatalf("oracle diverged at multiprog %s", a)
		}
	}
}
