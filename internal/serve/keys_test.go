package serve

import (
	"testing"

	"sccsim"
)

// TestAxesKeyStability pins the content-key contract of the axes
// fields: requests without axes (or with an explicitly zero overlay)
// keep the digest they had before the axes existed, while any
// non-default axis yields a distinct key — so cached default grids
// survive the schema widening and axis variants never coalesce with
// them or with each other.
func TestAxesKeyStability(t *testing.T) {
	s := sccsim.QuickScale()
	var o sccsim.Options
	base := sweepKey(sccsim.MP3D, sccsim.BackendExact, s, o, false, nil)
	if got := sweepKey(sccsim.MP3D, sccsim.BackendExact, s, o, false, &sccsim.Axes{}); got != base {
		t.Errorf("zero axes changed the sweep key: %s vs %s", got, base)
	}
	variants := []sccsim.Axes{
		{Assoc: 4},
		{Assoc: 4, Repl: sccsim.ReplRandom},
		{LineBytes: 32},
		{Hierarchy: sccsim.HierarchyPrivate},
		{Hierarchy: sccsim.HierarchyHybrid, L1Bytes: 8192},
	}
	seen := map[string]string{base: "default"}
	for _, a := range variants {
		a := a
		k := sweepKey(sccsim.MP3D, sccsim.BackendExact, s, o, false, &a)
		if prev, dup := seen[k]; dup {
			t.Errorf("axes %+v collides with %s", a, prev)
		}
		seen[k] = axesKeyPart(&a)
	}
	pBase := pointKey(sccsim.MP3D, sccsim.BackendExact, 2, 32*1024, s, o, false, nil)
	if got := pointKey(sccsim.MP3D, sccsim.BackendExact, 2, 32*1024, s, o, false, &sccsim.Axes{}); got != pBase {
		t.Errorf("zero axes changed the point key")
	}
	if got := pointKey(sccsim.MP3D, sccsim.BackendExact, 2, 32*1024, s, o, false, &sccsim.Axes{Assoc: 2}); got == pBase {
		t.Errorf("assoc=2 did not change the point key")
	}
}

// TestAxesAnalyticOK pins the twin-key gate: only axes the analytic
// backend can model admit an analytic twin.
func TestAxesAnalyticOK(t *testing.T) {
	cases := []struct {
		a  *sccsim.Axes
		ok bool
	}{
		{nil, true},
		{&sccsim.Axes{}, true},
		{&sccsim.Axes{Assoc: 4}, true},
		{&sccsim.Axes{Repl: sccsim.ReplRandom}, false},
		{&sccsim.Axes{LineBytes: 32}, false},
		{&sccsim.Axes{Hierarchy: sccsim.HierarchyPrivate}, false},
	}
	for _, tc := range cases {
		if got := axesAnalyticOK(tc.a); got != tc.ok {
			t.Errorf("axesAnalyticOK(%+v) = %t, want %t", tc.a, got, tc.ok)
		}
	}
}
