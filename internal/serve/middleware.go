// Request middleware: the per-request observability shell every route
// runs inside. It assigns (or honors) the X-Request-ID, opens the
// request's span trace, emits the structured start/finish log lines,
// recovers handler panics into a metered 500, and records the finished
// request into the /debug/requests ring. The obs.InstrumentHandler
// metrics middleware wraps *outside* this one, so a panic converted to
// a 500 here still lands in the status_5xx counters.

package serve

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"time"

	"sccsim/internal/obs"
)

// withRequest wraps h with the request-scoped observability shell for
// one route.
func (s *Server) withRequest(route string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		tr := obs.NewTrace(id)
		ctx := obs.ContextWithRequestID(r.Context(), id)
		ctx = obs.ContextWithTrace(ctx, tr)
		r = r.WithContext(ctx)
		// The metrics middleware outside already wrapped the writer; share
		// its recorder so both layers agree on the response status.
		sw, ok := w.(*obs.StatusRecorder)
		if !ok {
			sw = obs.NewStatusRecorder(w)
		}
		start := time.Now()
		s.log(ctx, slog.LevelInfo, "request start", "method", r.Method, "route", route)
		defer func() {
			if p := recover(); p != nil {
				s.reg.Counter("serve.panics").Inc()
				s.log(ctx, slog.LevelError, "handler panic",
					"method", r.Method, "route", route,
					"panic", fmt.Sprint(p), "stack", string(debug.Stack()))
				// A panic after the response started cannot be papered
				// over; otherwise answer with the uniform error envelope.
				if !sw.Wrote() {
					writeError(sw, http.StatusInternalServerError, "internal server error")
				}
			}
			dur := time.Since(start)
			s.log(ctx, slog.LevelInfo, "request finish",
				"method", r.Method, "route", route,
				"status", sw.Status(), "dur_ms", dur.Milliseconds())
			s.reqs.Record(obs.RequestRecord{
				ID: id, Method: r.Method, Route: route,
				Status: sw.Status(), Start: start, DurNS: dur.Nanoseconds(),
				Spans: tr.Snapshot(),
			})
		}()
		h.ServeHTTP(sw, r)
	})
}

// log emits one structured log line with the context's request ID
// attached; a nil logger disables the site.
func (s *Server) log(ctx context.Context, level slog.Level, msg string, attrs ...any) {
	if s.logger == nil {
		return
	}
	if id := obs.RequestIDFrom(ctx); id != "" {
		attrs = append(attrs, "request_id", id)
	}
	s.logger.Log(ctx, level, msg, attrs...)
}

// jobLog emits one structured log line about a job, carrying the job id
// and the request ID that created it.
func (s *Server) jobLog(j *job, level slog.Level, msg string, attrs ...any) {
	if s.logger == nil {
		return
	}
	attrs = append(attrs,
		"job", j.id, "request_id", j.requestID,
		"workload", string(j.workload), "backend", j.spec.Backend)
	s.logger.Log(context.Background(), level, msg, attrs...)
}
