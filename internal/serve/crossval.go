// Live cross-validation gauges: when the result cache holds both the
// exact and the analytic grid of the same experiment (the "twin" of a
// job's content key with only the backend flipped), the server compares
// them point by point with the verify subsystem's cross-report and
// publishes the per-workload error summary as float gauges — the
// analytic backend's accuracy contract as a scrapeable live metric
// instead of a test-only assertion.

package serve

import (
	"sccsim"
	"sccsim/internal/verify"
)

// publishCrossval compares a just-finished sweep job with its
// other-backend twin and sets the crossval.<workload>.* gauges. Both
// jobs are terminal; their grids cover the same design points because
// they share everything in the content key except the backend.
func (s *Server) publishCrossval(j, twin *job) {
	exact, analytic := j, twin
	if j.spec.Backend == string(sccsim.BackendAnalytic) {
		exact, analytic = twin, j
	}
	_, _, eg, _, _, _, _ := exact.snapshot()
	_, _, ag, _, _, _, _ := analytic.snapshot()
	if eg == nil || ag == nil {
		return
	}
	var pts []verify.CrossPoint
	for si, row := range eg.Points {
		if si >= len(ag.Points) {
			return
		}
		for pi, ep := range row {
			if pi >= len(ag.Points[si]) {
				return
			}
			ap := ag.Points[si][pi]
			pts = append(pts, verify.CrossPoint{
				Clusters:        ep.Config.Clusters,
				ProcsPerCluster: ep.Config.ProcsPerCluster,
				SCCBytes:        ep.Config.SCCBytes,

				ExactMissRate:    ep.Result.ReadMissRate(),
				AnalyticMissRate: ap.Result.ReadMissRate(),
				ExactCycles:      ep.Result.Cycles,
				AnalyticCycles:   ap.Result.Cycles,
			})
		}
	}
	if len(pts) == 0 {
		return
	}
	rep := verify.NewCrossReport(string(j.workload), pts)
	name := "crossval." + string(j.workload)
	s.reg.FGauge(name + ".max_abs_err").Set(rep.MaxAbsErr)
	s.reg.FGauge(name + ".mean_abs_err").Set(rep.MeanAbsErr)
	s.reg.FGauge(name + ".max_rel_err").Set(rep.MaxRelErr)
	s.reg.FGauge(name + ".max_cycle_rel_err").Set(rep.MaxCycleRelErr)
	s.reg.Counter("serve.crossval_pairs").Inc()
}
