// White-box tests of cluster mode's server half: the worker registry
// (registration, heartbeat expiry, validation), the content-addressed
// trace endpoint, and the peer trace-cache wiring. The multi-node
// integration paths live in clustertest.

package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sccsim/internal/mem"
	"sccsim/internal/trace"
)

// fixtureProgram builds a tiny trace program for cache round trips.
func fixtureProgram(procs int) *trace.Program {
	phases := make([][]mem.Ref, procs)
	for i := range phases {
		phases[i] = []mem.Ref{
			{Addr: uint32(0x100 * (i + 1)), Kind: mem.Read, Gap: 2},
			{Addr: uint32(0x2000 + 64*i), Kind: mem.Write},
		}
	}
	return &trace.Program{
		Name: "serve-fixture", Procs: procs,
		Phases: []trace.Phase{{Name: "p", Streams: phases}},
	}
}

func registerBody(t *testing.T, url, worker string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/cluster/register", "application/json",
		strings.NewReader(`{"url":"`+worker+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func clusterStatus(t *testing.T, url string) ClusterStatus {
	t.Helper()
	resp, err := http.Get(url + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st ClusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestClusterRegistryLifecycle: registration is an idempotent upsert
// that doubles as heartbeat; unrenewed workers expire after the TTL
// and leave the sweep-sharding pool.
func TestClusterRegistryLifecycle(t *testing.T) {
	s := New(Options{Cluster: ClusterOptions{HeartbeatTTL: 150 * time.Millisecond}})
	ts := httptest.NewServer(s)
	defer ts.Close()

	r := registerBody(t, ts.URL, "http://worker-a:1/")
	defer r.Body.Close()
	var rr RegisterResponse
	if err := json.NewDecoder(r.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if rr.Status != "ok" || rr.Workers != 1 || rr.TTLMS != 150 {
		t.Fatalf("register response %+v", rr)
	}
	// Same worker again (trailing slash stripped): still one entry.
	r2 := registerBody(t, ts.URL, "http://worker-a:1")
	r2.Body.Close()
	r3 := registerBody(t, ts.URL, "http://worker-b:2")
	r3.Body.Close()
	st := clusterStatus(t, ts.URL)
	if len(st.Workers) != 2 || st.Workers[0].URL != "http://worker-a:1" {
		t.Fatalf("cluster status %+v, want two workers sorted by URL", st.Workers)
	}
	if rem := s.clusterRemote(); rem == nil {
		t.Fatal("healthy registry produced no Remote")
	}

	// No heartbeats: both expire and sharding turns off.
	time.Sleep(200 * time.Millisecond)
	if st := clusterStatus(t, ts.URL); len(st.Workers) != 0 {
		t.Fatalf("expired workers still listed: %+v", st.Workers)
	}
	if rem := s.clusterRemote(); rem != nil {
		t.Fatal("expired registry still produced a Remote")
	}
}

// TestClusterRegisterValidation: malformed bodies and non-absolute
// URLs are client errors.
func TestClusterRegisterValidation(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	for _, body := range []string{
		`{"url":""}`, `{"url":"worker:80"}`, `{"url":"ftp://x"}`, `{not json`,
		`{"url":"http://x","extra":1}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/cluster/register", "application/json",
			strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("register %s: status %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestTraceEndpoint: GET /v1/trace/{digest} streams the raw cache
// entry for a digest this node holds and 404s for everything else.
func TestTraceEndpoint(t *testing.T) {
	dir := t.TempDir()
	dc, err := trace.NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	prog := fixtureProgram(2)
	const key = "scct1-serve-trace-fixture"
	if err := dc.Store(key, prog); err != nil {
		t.Fatal(err)
	}

	s := New(Options{TraceCacheDir: dir})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/trace/" + trace.KeyDigest(key))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	got, err := trace.ReadProgram(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got.Procs != prog.Procs {
		t.Fatalf("served trace has %d procs, want %d", got.Procs, prog.Procs)
	}

	for _, digest := range []string{trace.KeyDigest("never-stored"), "deadbeef", "..%2F..%2Fetc%2Fpasswd"} {
		resp, err := http.Get(ts.URL + "/v1/trace/" + digest)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("digest %q: status %d, want 404", digest, resp.StatusCode)
		}
	}

	// A node without a trace cache serves only misses.
	bare := httptest.NewServer(New(Options{}))
	defer bare.Close()
	resp2, err := http.Get(bare.URL + "/v1/trace/" + trace.KeyDigest(key))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("cacheless node: status %d, want 404", resp2.StatusCode)
	}
}

// TestPeerTraceStoreWiring: a worker configured with PeerTraceURL gets
// a peer-fetching trace store that pulls entries it lacks from the
// coordinator's trace endpoint and persists them locally.
func TestPeerTraceStoreWiring(t *testing.T) {
	coordDir := t.TempDir()
	cdc, err := trace.NewDiskCache(coordDir)
	if err != nil {
		t.Fatal(err)
	}
	prog := fixtureProgram(4)
	const key = "scct1-peer-wiring-fixture"
	if err := cdc.Store(key, prog); err != nil {
		t.Fatal(err)
	}
	coord := httptest.NewServer(New(Options{TraceCacheDir: coordDir}))
	defer coord.Close()

	worker := New(Options{
		TraceCacheDir: t.TempDir(),
		Cluster:       ClusterOptions{PeerTraceURL: coord.URL},
	})
	if worker.traceStore == nil {
		t.Fatal("worker has no trace store")
	}
	got, err := worker.traceStore.Load(key)
	if err != nil || got == nil {
		t.Fatalf("peer load: %v, %v", got, err)
	}
	if got.Procs != prog.Procs {
		t.Fatalf("fetched trace has %d procs, want %d", got.Procs, prog.Procs)
	}
	if worker.reg.Counter("serve.trace_fetch_hits").Value() != 1 {
		t.Error("peer fetch hit not counted")
	}
	// Persisted locally: the worker's own disk cache now serves it.
	if got, _ := worker.traceDC.Load(key); got == nil {
		t.Fatal("fetched entry not persisted in the worker's disk cache")
	}
}

// TestRegisterWorkerAndHeartbeatLoop: the worker-side helpers register
// against a live coordinator and keep the registration alive past the
// TTL until cancelled.
func TestRegisterWorkerAndHeartbeatLoop(t *testing.T) {
	s := New(Options{Cluster: ClusterOptions{HeartbeatTTL: 300 * time.Millisecond}})
	ts := httptest.NewServer(s)
	defer ts.Close()

	ttl, err := RegisterWorker(context.Background(), ts.URL+"/", "http://self:9")
	if err != nil {
		t.Fatal(err)
	}
	if ttl != 300*time.Millisecond {
		t.Fatalf("granted TTL %v, want 300ms", ttl)
	}
	if _, err := RegisterWorker(context.Background(), ts.URL, ""); err == nil {
		t.Fatal("empty self URL accepted")
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		HeartbeatLoop(ctx, ts.URL, "http://self:9")
		close(done)
	}()
	// Well past the TTL, the heartbeat keeps the worker healthy.
	time.Sleep(700 * time.Millisecond)
	if st := clusterStatus(t, ts.URL); len(st.Workers) != 1 {
		t.Fatalf("heartbeating worker not healthy: %+v", st.Workers)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("HeartbeatLoop did not stop on cancel")
	}
}
