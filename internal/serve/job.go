// Jobs: the unit the queue, the coalescing map and the result cache all
// share. A job is created by the first request for a content key,
// executed once, and observed by any number of waiters — later
// identical requests attach to it instead of spawning work.

package serve

import (
	"sync"
	"time"

	"sccsim"
	"sccsim/internal/obs"
)

// jobKind says what a job computes.
type jobKind int

const (
	// jobSweep runs the full 28-point design-space sweep.
	jobSweep jobKind = iota
	// jobPoint runs a single design point.
	jobPoint
	// jobSearch runs an adaptive design-space search.
	jobSearch
)

// jobState is a job's lifecycle position.
type jobState int

const (
	jobQueued jobState = iota
	jobRunning
	jobDone
	jobFailed
)

func (s jobState) String() string {
	switch s {
	case jobQueued:
		return "queued"
	case jobRunning:
		return "running"
	case jobDone:
		return "done"
	default:
		return "failed"
	}
}

// job is one deduplicated unit of work. The identity fields are set at
// creation and never change; the mutable state is guarded by mu. done
// closes exactly once, after the terminal state is published, so
// waiters can select on it.
type job struct {
	id       string
	key      string // content digest (trace.KeyDigest of the canonical request)
	kind     jobKind
	workload sccsim.Workload
	spec     sccsim.Spec
	// searchSpec is the search declaration (jobSearch only); it is part
	// of the job's identity, digested into the content key.
	searchSpec sccsim.SearchSpec
	timeout    time.Duration // per-request cap; 0 means the server default
	created    time.Time
	// requestID is the X-Request-ID of the request that created the job;
	// coalesced requests keep their own IDs in their own log lines but
	// share this job record. Set once, before the job goroutine starts.
	requestID string
	// trace is the creating request's span trace: the job's queue-wait
	// and simulate spans land there so /debug/requests shows them.
	trace *obs.Trace
	// twinKey, when non-empty, is the content key of the same experiment
	// on the other backend — the pairing the live cross-validation
	// gauges hang off (sweeps with untuned simulator options only).
	twinKey string

	done chan struct{}

	mu        sync.Mutex
	state     jobState
	subs      map[chan sccsim.Progress]struct{}
	last      *sccsim.Progress
	grid      *sccsim.Grid
	point     *sccsim.Point
	search    *sccsim.SearchResult
	report    *sccsim.SweepReport
	err       error
	coalesced int // requests that attached beyond the first
}

func newJob(id, key string, kind jobKind, w sccsim.Workload, spec sccsim.Spec, timeout time.Duration) *job {
	return &job{
		id: id, key: key, kind: kind, workload: w, spec: spec,
		timeout: timeout, created: time.Now(),
		done: make(chan struct{}),
		subs: make(map[chan sccsim.Progress]struct{}),
	}
}

func (j *job) setState(s jobState) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
}

func (j *job) addCoalesced() {
	j.mu.Lock()
	j.coalesced++
	j.mu.Unlock()
}

// broadcast fans one engine progress event out to every subscriber.
// Channels are buffered and skipped when full — a slow streaming client
// loses events rather than stalling the sweep engine.
func (j *job) broadcast(p sccsim.Progress) {
	j.mu.Lock()
	j.last = &p
	for ch := range j.subs {
		select {
		case ch <- p:
		default:
		}
	}
	j.mu.Unlock()
}

// subscribe registers a progress channel and returns it with a
// detach function. Subscribing to a finished job returns a closed
// channel, so range loops terminate immediately.
func (j *job) subscribe() (<-chan sccsim.Progress, func()) {
	ch := make(chan sccsim.Progress, 64)
	j.mu.Lock()
	if j.state == jobDone || j.state == jobFailed {
		j.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		if _, ok := j.subs[ch]; ok {
			delete(j.subs, ch)
			close(ch)
		}
		j.mu.Unlock()
	}
}

func (j *job) setReport(r sccsim.SweepReport) {
	j.mu.Lock()
	j.report = &r
	j.mu.Unlock()
}

func (j *job) setGrid(g *sccsim.Grid) {
	j.mu.Lock()
	j.grid = g
	j.mu.Unlock()
}

func (j *job) setPoint(p *sccsim.Point) {
	j.mu.Lock()
	j.point = p
	j.mu.Unlock()
}

func (j *job) setSearch(r *sccsim.SearchResult) {
	j.mu.Lock()
	j.search = r
	j.mu.Unlock()
}

// searchSnapshot copies the terminal state a search response renders.
func (j *job) searchSnapshot() (state jobState, res *sccsim.SearchResult, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.search, j.err
}

// terminate publishes the terminal state and ends every progress
// stream. The Server closes the done channel afterwards, once the job
// is registered in the result cache, so a waiter woken by done — or a
// cache hit — always sees a terminal snapshot.
func (j *job) terminate(err error) {
	j.mu.Lock()
	j.err = err
	if err != nil {
		j.state = jobFailed
	} else {
		j.state = jobDone
	}
	for ch := range j.subs {
		delete(j.subs, ch)
		close(ch)
	}
	j.mu.Unlock()
}

// snapshot copies the mutable state for response rendering.
func (j *job) snapshot() (state jobState, last *sccsim.Progress, grid *sccsim.Grid, point *sccsim.Point, report *sccsim.SweepReport, err error, coalesced int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.last, j.grid, j.point, j.report, j.err, j.coalesced
}
