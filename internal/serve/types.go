// Wire types: the JSON request and response bodies of the v1 API, their
// validation, and the canonical content key that coalescing and result
// caching hang off. Everything that can change a simulation's outcome —
// workload, resolved scale, simulator options, verification — goes into
// the key; everything that cannot (parallelism, timeouts, wait/stream
// mode) stays out, so requests that differ only in how they want to be
// served still share one execution.

package serve

import (
	"encoding/json"
	"fmt"

	"sccsim"
	"sccsim/internal/obs"
	"sccsim/internal/trace"
)

// ScaleSpec is the wire form of sccsim.Scale: explicit problem sizes
// for requests that need something other than the named "paper" and
// "quick" scales. Zero fields keep the Go zero value (the paper's
// configuration), matching the library.
type ScaleSpec struct {
	BarnesBodies  int   `json:"barnes_bodies,omitempty"`
	BarnesSteps   int   `json:"barnes_steps,omitempty"`
	MP3DParticles int   `json:"mp3d_particles,omitempty"`
	MP3DSteps     int   `json:"mp3d_steps,omitempty"`
	MultiprogRefs int   `json:"multiprog_refs,omitempty"`
	CholeskyGridW int   `json:"cholesky_grid_w,omitempty"`
	CholeskyGridH int   `json:"cholesky_grid_h,omitempty"`
	Seed          int64 `json:"seed,omitempty"`
}

func (s *ScaleSpec) toScale() sccsim.Scale {
	return sccsim.Scale{
		BarnesBodies: s.BarnesBodies, BarnesSteps: s.BarnesSteps,
		MP3DParticles: s.MP3DParticles, MP3DSteps: s.MP3DSteps,
		MultiprogRefs: s.MultiprogRefs,
		CholeskyGridW: s.CholeskyGridW, CholeskyGridH: s.CholeskyGridH,
		Seed: s.Seed,
	}
}

// SimSpec is the wire form of the simulator options — the data fields
// of sccsim.Options plus the verification toggle. Zero fields mean the
// paper's model, as in the library.
type SimSpec struct {
	WriteBufferDepth int    `json:"write_buffer_depth,omitempty"`
	BusOccupancy     int    `json:"bus_occupancy,omitempty"`
	SwitchPenalty    uint64 `json:"switch_penalty,omitempty"`
	MemBanks         int    `json:"mem_banks,omitempty"`
	MemBankOccupancy int    `json:"mem_bank_occupancy,omitempty"`
	VictimEntries    int    `json:"victim_entries,omitempty"`
	WarmupRefs       uint64 `json:"warmup_refs,omitempty"`
	LegacyReplay     bool   `json:"legacy_replay,omitempty"`
	// Verify attaches the coherence invariant checker to every run.
	Verify bool `json:"verify,omitempty"`
}

func (s *SimSpec) toOptions() sccsim.Options {
	return sccsim.Options{
		WriteBufferDepth: s.WriteBufferDepth,
		BusOccupancy:     s.BusOccupancy,
		SwitchPenalty:    s.SwitchPenalty,
		MemBanks:         s.MemBanks,
		MemBankOccupancy: s.MemBankOccupancy,
		VictimEntries:    s.VictimEntries,
		WarmupRefs:       s.WarmupRefs,
		LegacyReplay:     s.LegacyReplay,
	}
}

// SweepRequest is the body of POST /v1/sweep.
type SweepRequest struct {
	// Workload is one of barnes-hut, mp3d, cholesky, multiprog.
	Workload string `json:"workload"`
	// Backend selects the execution engine: "exact" (default, the
	// cycle simulator) or "analytic" (the reuse-distance model — the
	// full grid from one profile pass, orders of magnitude faster, with
	// the accuracy contract documented in docs/API.md). The backend
	// changes the numbers, so it is part of the content key: exact and
	// analytic requests never coalesce or share cache entries.
	Backend string `json:"backend,omitempty"`
	// Scale names a problem-size preset: "paper" (default) or "quick".
	Scale string `json:"scale,omitempty"`
	// Seed overrides the preset's generator seed (0: keep the preset's).
	Seed int64 `json:"seed,omitempty"`
	// ScaleSpec sets explicit problem sizes; when present it wins over
	// Scale and Seed.
	ScaleSpec *ScaleSpec `json:"scale_spec,omitempty"`
	// Sim sets simulator options beyond the architecture (ablations,
	// verification).
	Sim *SimSpec `json:"sim,omitempty"`
	// Axes overlays architecture-axis overrides — line_bytes, assoc,
	// repl, hierarchy, l1_bytes — on every configuration in the grid
	// (absent or zero: the paper's defaults, byte-identical results and
	// unchanged content keys). The analytic backend models associativity
	// only; combining it with other non-default axes is a 400.
	Axes *sccsim.Axes `json:"axes,omitempty"`
	// Parallelism bounds the engine worker pool for this job
	// (0: the server's default). Results are identical for any value,
	// so it is excluded from the coalescing key.
	Parallelism int `json:"parallelism,omitempty"`
	// Wait selects synchronous (true, the default) or asynchronous
	// (false: 202 + poll GET /v1/sweep/{id}) handling.
	Wait *bool `json:"wait,omitempty"`
	// Stream makes the response an NDJSON stream of engine progress
	// events followed by the result. Implies waiting.
	Stream bool `json:"stream,omitempty"`
	// TimeoutMS caps this job's execution in milliseconds; the server's
	// job timeout is the ceiling (0: the server default). The first
	// request to create a job sets its deadline; coalesced requests
	// share it.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// PointRequest is the body of POST /v1/point: one design point instead
// of the whole grid. Always synchronous.
type PointRequest struct {
	// Workload is one of barnes-hut, mp3d, cholesky, multiprog.
	Workload string `json:"workload"`
	// Backend selects the execution engine: "exact" (default) or
	// "analytic" (see SweepRequest.Backend).
	Backend string `json:"backend,omitempty"`
	// Scale names a problem-size preset: "paper" (default) or "quick".
	Scale string `json:"scale,omitempty"`
	// Seed overrides the preset's generator seed (0: keep the preset's).
	Seed int64 `json:"seed,omitempty"`
	// ScaleSpec sets explicit problem sizes; wins over Scale and Seed.
	ScaleSpec *ScaleSpec `json:"scale_spec,omitempty"`
	// ProcsPerCluster and SCCBytes name the design point on the paper's
	// default system (zero fields: the 1P/64KB baseline).
	ProcsPerCluster int `json:"procs_per_cluster,omitempty"`
	SCCBytes        int `json:"scc_bytes,omitempty"`
	// Sim sets simulator options beyond the architecture.
	Sim *SimSpec `json:"sim,omitempty"`
	// Axes overlays architecture-axis overrides on the point's
	// configuration (see SweepRequest.Axes for semantics).
	Axes *sccsim.Axes `json:"axes,omitempty"`
	// TimeoutMS caps this job's execution in milliseconds (0: server
	// default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// SearchRequest is the body of POST /v1/search: an adaptive
// design-space search (sccsim.SearchCtx) instead of an exhaustive
// sweep. Always synchronous. There is no backend field — the search
// drives both backends itself (analytic triage, exact confirmation).
type SearchRequest struct {
	// Workload is one of barnes-hut, mp3d, cholesky, multiprog.
	Workload string `json:"workload"`
	// Scale names a problem-size preset: "paper" (default) or "quick".
	Scale string `json:"scale,omitempty"`
	// Seed overrides the preset's generator seed (0: keep the preset's).
	// Distinct from Search.Seed, which seeds the random strategy.
	Seed int64 `json:"seed,omitempty"`
	// ScaleSpec sets explicit problem sizes; wins over Scale and Seed.
	ScaleSpec *ScaleSpec `json:"scale_spec,omitempty"`
	// Search declares the space, objectives, constraints and
	// strategy/budget knobs; the zero value searches the paper grid for
	// the cycles-vs-area frontier adaptively.
	Search sccsim.SearchSpec `json:"search"`
	// Parallelism bounds the exact-confirmation worker pool (0: the
	// server's default). Results are identical for any value, so it is
	// excluded from the coalescing key.
	Parallelism int `json:"parallelism,omitempty"`
	// TimeoutMS caps this job's execution in milliseconds (0: server
	// default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// SearchResponse is the body of POST /v1/search.
type SearchResponse struct {
	// ID names the job; coalesced requests share the executing job's ID.
	ID string `json:"id"`
	// Status is done or failed.
	Status string `json:"status"`
	// Workload echoes the request.
	Workload string `json:"workload"`
	// Cache says how admission resolved (see SweepResponse.Cache).
	Cache string `json:"cache,omitempty"`
	// RequestID identifies the creating request (see
	// SweepResponse.RequestID).
	RequestID string `json:"request_id,omitempty"`
	// Result is the completed search: the exact-confirmed frontier, the
	// best cost/performance point, all simulated points, and the
	// per-stage accounting (present when done).
	Result *sccsim.SearchResult `json:"result,omitempty"`
	// Error describes the failure (present when failed).
	Error string `json:"error,omitempty"`
}

// resolveScale applies the preset/seed/spec precedence shared by both
// request types.
func resolveScale(preset string, seed int64, spec *ScaleSpec) (sccsim.Scale, error) {
	if spec != nil {
		return spec.toScale(), nil
	}
	var s sccsim.Scale
	switch preset {
	case "", "paper":
		s = sccsim.PaperScale()
	case "quick":
		s = sccsim.QuickScale()
	default:
		return s, fmt.Errorf("unknown scale %q (want \"paper\" or \"quick\")", preset)
	}
	if seed != 0 {
		s.Seed = seed
	}
	return s, nil
}

// resolveBackend normalizes a request's backend: empty means exact,
// anything else must parse against the library's backend list.
func resolveBackend(name string) (sccsim.Backend, error) {
	if name == "" {
		return sccsim.BackendExact, nil
	}
	return sccsim.ParseBackend(name)
}

// axesAnalyticOK reports whether the analytic backend could run an
// experiment with this axis overlay — associativity is modeled, the
// other non-default axes are exact-only. Delegates to the library's
// own validation so the answer cannot drift from what a real analytic
// request would be told.
func axesAnalyticOK(a *sccsim.Axes) bool {
	if a == nil || a.IsZero() {
		return true
	}
	return sccsim.Spec{Backend: string(sccsim.BackendAnalytic), Axes: a}.Validate() == nil
}

// scaleKeyPart canonicalizes a resolved scale for the content key.
func scaleKeyPart(s sccsim.Scale) string {
	return fmt.Sprintf("seed%d-bb%d-bs%d-mp%d-ms%d-mr%d-cw%d-ch%d",
		s.Seed, s.BarnesBodies, s.BarnesSteps, s.MP3DParticles, s.MP3DSteps,
		s.MultiprogRefs, s.CholeskyGridW, s.CholeskyGridH)
}

// simKeyPart canonicalizes the simulator options for the content key.
func simKeyPart(o sccsim.Options, verify bool) string {
	return fmt.Sprintf("wb%d-bo%d-sp%d-mb%d-mbo%d-ve%d-wr%d-lr%t-v%t",
		o.WriteBufferDepth, o.BusOccupancy, o.SwitchPenalty, o.MemBanks,
		o.MemBankOccupancy, o.VictimEntries, o.WarmupRefs, o.LegacyReplay, verify)
}

// axesKeyPart canonicalizes the architecture-axis overlay for the
// content key. Default axes contribute nothing, so every pre-axes
// request keeps the digest it always had; any non-default axis makes
// the key distinct from the default grid's.
func axesKeyPart(a *sccsim.Axes) string {
	if a == nil || a.IsZero() {
		return ""
	}
	return fmt.Sprintf("-ax-lb%d-as%d-r%s-h%s-l1%d",
		a.LineBytes, a.Assoc, a.Repl, a.Hierarchy, a.L1Bytes)
}

// sweepKey builds the sweep content digest: the same SHA-256 keying
// scheme the trace disk cache uses (trace.KeyDigest), over everything
// that determines the grid's content — including the backend, since
// the two backends compute different numbers for the same experiment.
func sweepKey(w sccsim.Workload, b sccsim.Backend, s sccsim.Scale, o sccsim.Options, verify bool, axes *sccsim.Axes) string {
	return trace.KeyDigest(fmt.Sprintf("sweep-%s-%s-%s-%s%s", w, b, scaleKeyPart(s), simKeyPart(o, verify), axesKeyPart(axes)))
}

// searchKey builds the search content digest: the workload, the
// resolved scale, and the full search spec in its canonical JSON form
// (SearchSpec round-trips losslessly — the facade's spec test pins
// that), so identical searches coalesce and cached results are reused
// while any change to the space, objectives, constraints or knobs
// yields a fresh key. Search runs have no backend dimension: the
// pipeline always triages analytically and confirms exactly.
func searchKey(w sccsim.Workload, s sccsim.Scale, spec sccsim.SearchSpec) (string, error) {
	canon, err := json.Marshal(spec)
	if err != nil {
		return "", fmt.Errorf("canonicalize search spec: %w", err)
	}
	return trace.KeyDigest(fmt.Sprintf("search-%s-%s-%s", w, scaleKeyPart(s), canon)), nil
}

// pointKey builds the single-point content digest.
func pointKey(w sccsim.Workload, b sccsim.Backend, ppc, scc int, s sccsim.Scale, o sccsim.Options, verify bool, axes *sccsim.Axes) string {
	return trace.KeyDigest(fmt.Sprintf("point-%s-%s-p%d-c%d-%s-%s%s", w, b, ppc, scc, scaleKeyPart(s), simKeyPart(o, verify), axesKeyPart(axes)))
}

// SweepResponse is the terminal body of a sweep request: the full
// design-space grid (the same JSON encoding sccsim.SweepCtx's Grid
// marshals to, byte for byte) plus the engine's sweep report.
type SweepResponse struct {
	// ID names the job; coalesced requests share the executing job's ID.
	ID string `json:"id"`
	// Status is queued, running, done or failed.
	Status string `json:"status"`
	// Workload echoes the request.
	Workload string `json:"workload"`
	// Backend is the resolved execution backend ("exact" or
	// "analytic"), echoed so clients see which engine produced the grid
	// even when they relied on the default.
	Backend string `json:"backend"`
	// Cache says how admission resolved: "miss" (this request created
	// the job), "coalesced" (attached to an identical in-flight job) or
	// "hit" (served from the result cache).
	Cache string `json:"cache,omitempty"`
	// RequestID is the X-Request-ID of the request that created the job
	// — the join key to its structured log lines and run manifest. A
	// coalesced or cache-hit response reports the creator's ID (its own
	// ID is in the response header).
	RequestID string `json:"request_id,omitempty"`
	// Grid is the 8x4 design-space result (present when done).
	Grid *sccsim.Grid `json:"grid,omitempty"`
	// Report is the engine's sweep telemetry (present when done).
	Report *sccsim.SweepReport `json:"report,omitempty"`
	// Error describes the failure (present when failed).
	Error string `json:"error,omitempty"`
}

// PointResponse is the body of POST /v1/point.
type PointResponse struct {
	// ID names the job; coalesced requests share the executing job's ID.
	ID string `json:"id"`
	// Status is done or failed.
	Status string `json:"status"`
	// Workload echoes the request.
	Workload string `json:"workload"`
	// Backend is the resolved execution backend (see
	// SweepResponse.Backend).
	Backend string `json:"backend"`
	// Cache says how admission resolved (see SweepResponse.Cache).
	Cache string `json:"cache,omitempty"`
	// RequestID identifies the creating request (see
	// SweepResponse.RequestID).
	RequestID string `json:"request_id,omitempty"`
	// Point is the simulated design point (present when done).
	Point *sccsim.Point `json:"point,omitempty"`
	// Error describes the failure (present when failed).
	Error string `json:"error,omitempty"`
}

// JobStatus is the body of GET /v1/sweep/{id}: an async job's state,
// its latest engine progress, and — once finished — the same grid,
// report and error fields a synchronous response carries.
type JobStatus struct {
	// ID names the job.
	ID string `json:"id"`
	// Status is queued, running, done or failed.
	Status string `json:"status"`
	// Workload the job runs.
	Workload string `json:"workload"`
	// Backend is the job's resolved execution backend (see
	// SweepResponse.Backend).
	Backend string `json:"backend"`
	// RequestID identifies the creating request (see
	// SweepResponse.RequestID).
	RequestID string `json:"request_id,omitempty"`
	// Done and Total count completed and scheduled design points from
	// the engine's latest progress event (0/0 before the first).
	Done  int `json:"done"`
	Total int `json:"total"`
	// Coalesced counts requests that attached beyond the first.
	Coalesced int `json:"coalesced"`
	// AgeMS is milliseconds since the job was admitted.
	AgeMS int64 `json:"age_ms"`
	// Grid, Report and Error mirror SweepResponse once the job ends.
	Grid   *sccsim.Grid        `json:"grid,omitempty"`
	Report *sccsim.SweepReport `json:"report,omitempty"`
	Error  string              `json:"error,omitempty"`
}

// StreamEvent is one NDJSON line of a streaming sweep response: a
// progress event while the sweep runs, then exactly one terminal
// "result" or "error" event.
type StreamEvent struct {
	// Event is "progress", "result" or "error".
	Event string `json:"event"`
	// Progress carries the engine event (event == "progress").
	Progress *sccsim.Progress `json:"progress,omitempty"`
	// Result carries the terminal response (event == "result").
	Result *SweepResponse `json:"result,omitempty"`
	// Error describes the failure (event == "error").
	Error string `json:"error,omitempty"`
}

// Health is the body of GET /healthz.
type Health struct {
	// Status is "ok" while serving and "draining" during shutdown (with
	// a 503 status code).
	Status string `json:"status"`
	// UptimeMS is milliseconds since the server started.
	UptimeMS int64 `json:"uptime_ms"`
	// Queued and Running count admitted jobs by state; Workers and
	// QueueDepth echo the server's limits.
	Queued     int `json:"queued"`
	Running    int `json:"running"`
	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
	// CachedResults is the LRU result cache's population.
	CachedResults int `json:"cached_results"`
}

// DebugRequestsResponse is the body of GET /debug/requests: the ring
// buffer of recently completed requests, newest first, each with its
// per-span timing breakdown.
type DebugRequestsResponse struct {
	// Requests holds the retained requests (bounded by the server's
	// DebugRequests option).
	Requests []obs.RequestRecord `json:"requests"`
}

// errorBody is the JSON envelope of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}
