// Backend plumbing through the HTTP API: request validation maps every
// malformed or contradictory spec to a 400 whose message names the
// valid values, the backend reaches the engine and is echoed in every
// response shape, and exact and analytic requests never share content
// keys.

package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sccsim"
)

// TestRequestValidation400s: the decode-time boundary for both POST
// endpoints — every rejection is a 400 (never a 500) with an error
// message actionable enough to fix the request from, i.e. one that
// lists the valid values.
func TestRequestValidation400s(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	cases := []struct {
		name string
		body string
		want []string // substrings of the error message
	}{
		{"unknown workload", `{"workload":"fft"}`,
			[]string{"unknown workload", "barnes-hut", "multiprog"}},
		{"unknown backend", `{"workload":"mp3d","backend":"simulate"}`,
			[]string{"unknown backend", "[exact analytic]"}},
		{"unknown scale", `{"workload":"mp3d","scale":"huge"}`,
			[]string{"unknown scale", "paper", "quick"}},
		{"verify on analytic", `{"workload":"mp3d","backend":"analytic","sim":{"verify":true}}`,
			[]string{"exact backend"}},
		{"sim options on analytic", `{"workload":"mp3d","backend":"analytic","sim":{"write_buffer_depth":2}}`,
			[]string{"exact backend"}},
	}
	for _, path := range []string{"/v1/sweep", "/v1/point"} {
		for _, c := range cases {
			t.Run(path+"/"+c.name, func(t *testing.T) {
				resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(c.body))
				if err != nil {
					t.Fatal(err)
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusBadRequest {
					t.Fatalf("status %d, want 400", resp.StatusCode)
				}
				var eb errorBody
				if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
					t.Fatal(err)
				}
				for _, want := range c.want {
					if !strings.Contains(eb.Error, want) {
						t.Errorf("error %q does not mention %q", eb.Error, want)
					}
				}
			})
		}
	}
}

// TestBackendEndToEnd: the backend field reaches the engine (the
// analytic grid comes back populated and stamped), is echoed in sweep
// and point responses (including the "exact" default the client never
// spelled out), and keeps exact and analytic results apart in the
// content key — same experiment, two executions, two cache entries.
func TestBackendEndToEnd(t *testing.T) {
	sccsim.ResetTraceCache()
	t.Cleanup(sccsim.ResetTraceCache)

	s := New(Options{Workers: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()

	doSweep := func(backendField string) *SweepResponse {
		t.Helper()
		body := fmt.Sprintf(`{"workload":"multiprog","scale_spec":{"multiprog_refs":6100,"seed":21}%s}`, backendField)
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sweep status %d", resp.StatusCode)
		}
		var env SweepResponse
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		return &env
	}

	exact := doSweep("")
	if exact.Backend != "exact" {
		t.Errorf("default sweep backend echoed as %q, want exact", exact.Backend)
	}
	analytic := doSweep(`,"backend":"analytic"`)
	if analytic.Backend != "analytic" {
		t.Errorf("analytic sweep backend echoed as %q", analytic.Backend)
	}
	if analytic.Grid == nil || len(analytic.Grid.Points) == 0 {
		t.Fatal("analytic sweep returned no grid")
	}
	if analytic.ID == exact.ID {
		t.Error("exact and analytic sweeps shared a job — backend is missing from the content key")
	}
	if got := s.reg.Counter("serve.jobs_done").Value(); got != 2 {
		t.Errorf("serve.jobs_done = %d, want 2 (one per backend)", got)
	}
	// Both grids are cached independently: re-posting each is a hit.
	if again := doSweep(`,"backend":"analytic"`); again.Cache != "hit" || again.ID != analytic.ID {
		t.Errorf("analytic re-post: cache %q id %q, want hit on %q", again.Cache, again.ID, analytic.ID)
	}
	if again := doSweep(""); again.Cache != "hit" || again.ID != exact.ID {
		t.Errorf("exact re-post: cache %q id %q, want hit on %q", again.Cache, again.ID, exact.ID)
	}
	// The two backends really did run different engines: cycle counts
	// are estimates on one side and measurements on the other.
	if analytic.Report == nil || analytic.Report.Backend != sccsim.BackendAnalytic {
		t.Errorf("analytic sweep report = %+v, want analytic backend stamp", analytic.Report)
	}

	// Point endpoint: same echo and execution path.
	presp, err := http.Post(ts.URL+"/v1/point", "application/json", strings.NewReader(
		`{"workload":"multiprog","scale_spec":{"multiprog_refs":6100,"seed":21},"backend":"analytic","procs_per_cluster":2,"scc_bytes":32768}`))
	if err != nil {
		t.Fatal(err)
	}
	defer presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("point status %d", presp.StatusCode)
	}
	var penv PointResponse
	if err := json.NewDecoder(presp.Body).Decode(&penv); err != nil {
		t.Fatal(err)
	}
	if penv.Backend != "analytic" || penv.Point == nil {
		t.Errorf("point response backend %q point %v", penv.Backend, penv.Point != nil)
	}
	if penv.Point.Result.Cycles == 0 {
		t.Error("analytic point has zero cycles")
	}
}
