// White-box tests of the service machinery: admission control,
// backpressure, draining, and the result LRU. The job runner is stubbed
// so queue states are reached deterministically; the real engine is
// exercised by http_test.go.

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// gateRunner replaces Server.runJob with one that blocks until released
// (or the job context ends), so tests can hold jobs "running".
func gateRunner(s *Server) (release func()) {
	gate := make(chan struct{})
	s.runJob = func(ctx context.Context, j *job) error {
		select {
		case <-gate:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return func() { close(gate) }
}

func postSweep(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

const asyncBody = `{"workload":"multiprog","scale":"quick","wait":false}`

// TestQueueFull429: with one worker and a queue depth of one, the third
// distinct job is shed with 429 and a Retry-After hint.
func TestQueueFull429(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 1, RetryAfter: 3 * time.Second})
	release := gateRunner(s)
	defer release()
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Distinct seeds make distinct content keys: no coalescing.
	submit := func(seed int) *http.Response {
		return postSweep(t, ts.URL, fmt.Sprintf(
			`{"workload":"multiprog","scale":"quick","seed":%d,"wait":false}`, seed))
	}
	r1 := submit(1)
	defer r1.Body.Close()
	if r1.StatusCode != http.StatusAccepted {
		t.Fatalf("first job: status %d, want 202", r1.StatusCode)
	}
	// Wait until job 1 holds the worker slot, so job 2 must queue.
	waitFor(t, func() bool { return s.reg.Gauge("serve.jobs_running").Value() == 1 })
	r2 := submit(2)
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusAccepted {
		t.Fatalf("second job: status %d, want 202", r2.StatusCode)
	}
	r3 := submit(3)
	defer r3.Body.Close()
	if r3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third job: status %d, want 429", r3.StatusCode)
	}
	if ra := r3.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", ra)
	}
	var eb errorBody
	if err := json.NewDecoder(r3.Body).Decode(&eb); err != nil || eb.Error == "" {
		t.Errorf("429 body missing error envelope: %v %+v", err, eb)
	}
	if got := s.reg.Counter("serve.queue_full").Value(); got != 1 {
		t.Errorf("serve.queue_full = %d, want 1", got)
	}
}

// TestGracefulShutdownDrains: Shutdown refuses new work, reports
// draining on /healthz, and waits for admitted jobs — queued and
// running — to complete.
func TestGracefulShutdownDrains(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 4})
	release := gateRunner(s)
	ts := httptest.NewServer(s)
	defer ts.Close()

	r1 := postSweep(t, ts.URL, asyncBody)
	defer r1.Body.Close()
	var ack SweepResponse
	if err := json.NewDecoder(r1.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.reg.Gauge("serve.jobs_running").Value() == 1 })

	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- s.Shutdown(context.Background()) }()

	// Draining is visible on /healthz (503) and new submissions bounce.
	waitFor(t, func() bool {
		hr, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			return false
		}
		defer hr.Body.Close()
		return hr.StatusCode == http.StatusServiceUnavailable
	})
	rNew := postSweep(t, ts.URL, `{"workload":"multiprog","seed":9,"wait":false}`)
	defer rNew.Body.Close()
	if rNew.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submission while draining: status %d, want 503", rNew.StatusCode)
	}
	select {
	case err := <-shutdownErr:
		t.Fatalf("Shutdown returned %v before the running job finished", err)
	case <-time.After(50 * time.Millisecond):
	}

	release()
	select {
	case err := <-shutdownErr:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not return after jobs drained")
	}
	// The drained job's result is still queryable.
	sr, err := http.Get(ts.URL + "/v1/sweep/" + ack.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(sr.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Status != "done" {
		t.Errorf("drained job status = %q, want done", st.Status)
	}
}

// TestShutdownDeadlineCancelsJobs: when the drain deadline passes,
// running jobs are cancelled through their contexts and Shutdown
// reports the deadline error.
func TestShutdownDeadlineCancelsJobs(t *testing.T) {
	s := New(Options{Workers: 1})
	_ = gateRunner(s) // never released: job blocks until its ctx ends
	ts := httptest.NewServer(s)
	defer ts.Close()

	r := postSweep(t, ts.URL, asyncBody)
	defer r.Body.Close()
	var ack SweepResponse
	if err := json.NewDecoder(r.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.reg.Gauge("serve.jobs_running").Value() == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want context.DeadlineExceeded", err)
	}
	sr, err := http.Get(ts.URL + "/v1/sweep/" + ack.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(sr.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Status != "failed" || st.Error == "" {
		t.Errorf("force-cancelled job = %q (error %q), want failed with an error", st.Status, st.Error)
	}
}

// TestPerJobTimeout: a request's timeout_ms caps its execution and the
// failure is reported synchronously.
func TestPerJobTimeout(t *testing.T) {
	s := New(Options{Workers: 1})
	_ = gateRunner(s) // blocks until ctx ends
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp := postSweep(t, ts.URL, `{"workload":"multiprog","scale":"quick","timeout_ms":50}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	var sw SweepResponse
	if err := json.NewDecoder(resp.Body).Decode(&sw); err != nil {
		t.Fatal(err)
	}
	if sw.Status != "failed" || !strings.Contains(sw.Error, "deadline") {
		t.Errorf("response %+v, want failed with a deadline error", sw)
	}
}

// TestResultCacheLRU: the cache holds cap entries, evicts the least
// recently used, and get refreshes recency.
func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	j := func(key string) *job { return &job{id: "id-" + key, key: key} }
	c.put("a", j("a"))
	c.put("b", j("b"))
	if c.get("a") == nil {
		t.Fatal("a missing")
	}
	// a is now most recent; inserting c must evict b.
	if ev := c.put("c", j("c")); ev == nil || ev.key != "b" {
		t.Fatalf("evicted %v, want b", ev)
	}
	if c.get("b") != nil {
		t.Error("b still cached after eviction")
	}
	if c.get("a") == nil || c.get("c") == nil {
		t.Error("a and c should remain")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}

// TestBadRequests: validation failures map to 400 with the error
// envelope; unknown jobs to 404.
func TestBadRequests(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	cases := []struct {
		body string
		want int
	}{
		{`{"workload":"fft"}`, http.StatusBadRequest},
		{`{"workload":"mp3d","scale":"huge"}`, http.StatusBadRequest},
		{`{"workload":"mp3d","unknown_field":1}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp := postSweep(t, ts.URL, c.body)
		if resp.StatusCode != c.want {
			t.Errorf("body %q: status %d, want %d", c.body, resp.StatusCode, c.want)
		}
		var eb errorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == "" {
			t.Errorf("body %q: missing error envelope", c.body)
		}
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/v1/sweep/nosuchjob")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}

	// Wrong method on a valid path.
	gr, err := http.Get(ts.URL + "/v1/sweep")
	if err != nil {
		t.Fatal(err)
	}
	gr.Body.Close()
	if gr.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/sweep: status %d, want 405", gr.StatusCode)
	}
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached in 5s")
}

// TestRoutesHaveHandlers: buildMux panics on a Routes entry without a
// handler; constructing a server proves the table is closed. This test
// exists so a route added to Routes without a handler fails here, not
// in production.
func TestRoutesHaveHandlers(t *testing.T) {
	_ = New(Options{}) // panics if Routes and buildMux drift
	if len(Routes()) != 10 {
		t.Errorf("Routes() lists %d patterns, want 10", len(Routes()))
	}
	var buf bytes.Buffer
	for _, r := range Routes() {
		fmt.Fprintln(&buf, r)
	}
	if !strings.Contains(buf.String(), "/healthz") || !strings.Contains(buf.String(), "/metrics") {
		t.Errorf("Routes missing health/metrics:\n%s", buf.String())
	}
}
