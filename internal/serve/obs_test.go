// Observability tests: the request-ID thread through header, envelope,
// job record, structured logs and run manifest; the /metrics Prometheus
// exposition and its pinned name set; panic recovery; and the
// /debug/requests ring. End-to-end tests run the real engine on the
// tiny multiprog scale, like http_test.go.

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"sccsim"
	"sccsim/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// syncBuf is a mutex-guarded buffer so tests can read log output while
// server goroutines may still be writing.
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRequestIDEndToEnd: one ID threads the whole request — response
// header, response envelope, job record, every structured log line, and
// the run manifest on disk.
func TestRequestIDEndToEnd(t *testing.T) {
	sccsim.ResetTraceCache()
	t.Cleanup(sccsim.ResetTraceCache)

	logs := &syncBuf{}
	dir := t.TempDir()
	s := New(Options{
		Workers:     2,
		Logger:      obs.NewJSONLogger(logs, 0), // info
		ManifestDir: dir,
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	const reqID = "e2e-req-0123"
	req, _ := http.NewRequest("POST", ts.URL+"/v1/sweep", strings.NewReader(tinyBody(17, "")))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", reqID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// 1. The caller-supplied ID is echoed in the response header.
	if got := resp.Header.Get("X-Request-ID"); got != reqID {
		t.Errorf("X-Request-ID header = %q, want %q", got, reqID)
	}
	var env SweepResponse
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	// 2. ...and in the response envelope.
	if env.RequestID != reqID {
		t.Errorf("envelope request_id = %q, want %q", env.RequestID, reqID)
	}
	if env.Status != "done" || env.Grid == nil {
		t.Fatalf("sweep not done: status=%q grid=%v err=%q", env.Status, env.Grid != nil, env.Error)
	}

	// 3. The job record carries it, visible through the status route.
	sr, err := http.Get(ts.URL + "/v1/sweep/" + env.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(sr.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.RequestID != reqID {
		t.Errorf("job status request_id = %q, want %q", st.RequestID, reqID)
	}

	// 4. The structured log lines are stamped with it: the request
	// shell's start/finish lines and the job lifecycle lines. The finish
	// line is written after the response body, so poll for it.
	waitFor(t, func() bool { return strings.Contains(logs.String(), "request finish") })
	out := logs.String()
	stamp := fmt.Sprintf("%q:%q", "request_id", reqID)
	for _, msg := range []string{"request start", "request finish", "job start", "job done", "sweep start", "sweep done"} {
		line := findLogLine(out, msg)
		if line == "" {
			t.Errorf("no %q log line in:\n%s", msg, out)
			continue
		}
		if !strings.Contains(line, stamp) {
			t.Errorf("%q line missing %s: %s", msg, stamp, line)
		}
	}

	// 5. The run manifest on disk is stamped with it too.
	mb, err := os.ReadFile(filepath.Join(dir, env.ID+".json"))
	if err != nil {
		t.Fatalf("manifest not written: %v", err)
	}
	var m obs.Manifest
	if err := json.Unmarshal(mb, &m); err != nil {
		t.Fatal(err)
	}
	if m.RequestID != reqID {
		t.Errorf("manifest request_id = %q, want %q", m.RequestID, reqID)
	}

	// Without a caller-supplied ID the server generates one, and the
	// header and envelope agree on it.
	r2 := postSweep(t, ts.URL, tinyBody(18, ""))
	defer r2.Body.Close()
	gen := r2.Header.Get("X-Request-ID")
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(gen) {
		t.Errorf("generated X-Request-ID = %q, want 16 hex chars", gen)
	}
	var env2 SweepResponse
	if err := json.NewDecoder(r2.Body).Decode(&env2); err != nil {
		t.Fatal(err)
	}
	if env2.RequestID != gen {
		t.Errorf("envelope request_id = %q, header = %q", env2.RequestID, gen)
	}
}

// findLogLine returns the first JSON log line whose msg field matches.
func findLogLine(out, msg string) string {
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, fmt.Sprintf(`"msg":%q`, msg)) {
			return line
		}
	}
	return ""
}

// promSample matches one line of the Prometheus text exposition: a
// # TYPE line or a sample with an optional le label.
var promSample = regexp.MustCompile(
	`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$` +
		`|^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? -?[0-9eE.+]+$`)

// TestMetricsPrometheus: Accept: text/plain flips /metrics from the
// JSON snapshot to valid Prometheus text exposition.
func TestMetricsPrometheus(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Default stays JSON — existing scrapers keep working.
	dr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer dr.Body.Close()
	if ct := dr.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("default content type = %q, want application/json", ct)
	}
	var snap map[string]any
	if err := json.NewDecoder(dr.Body).Decode(&snap); err != nil {
		t.Fatalf("default /metrics is not a JSON object: %v", err)
	}

	req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	pr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Body.Close()
	if ct := pr.Header.Get("Content-Type"); ct != obs.PrometheusContentType {
		t.Errorf("prometheus content type = %q, want %q", ct, obs.PrometheusContentType)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(pr.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if !promSample.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
	// The runtime collector runs at scrape time, so go_* gauges are
	// present even on a fresh server.
	for _, want := range []string{"go_goroutines", "go_heap_alloc_bytes", "http_metrics_requests"} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %s:\n%s", want, body)
		}
	}
}

// TestMetricsNameSetGolden pins the full Prometheus family-name set a
// scripted traffic pattern produces — sweeps on both backends (so the
// crossval gauges fire), a point, a search (so the search.* pipeline
// counters fire), a client error, and every read-only route. New
// metrics must show up here deliberately, via -update.
func TestMetricsNameSetGolden(t *testing.T) {
	sccsim.ResetTraceCache()
	t.Cleanup(sccsim.ResetTraceCache)

	s := New(Options{Workers: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Exact then analytic sweep of the same experiment: the second is
	// the first's twin, publishing the crossval.multiprog.* gauges.
	r1 := postSweep(t, ts.URL, tinyBody(16, ""))
	r1.Body.Close()
	r2 := postSweep(t, ts.URL, tinyBody(16, `,"backend":"analytic"`))
	r2.Body.Close()
	pr, err := http.Post(ts.URL+"/v1/point", "application/json",
		strings.NewReader(`{"workload":"multiprog","scale_spec":{"multiprog_refs":6000,"seed":16},"procs_per_cluster":2}`))
	if err != nil {
		t.Fatal(err)
	}
	pr.Body.Close()
	// A search publishes the search.* pipeline counters.
	sr := postSearch(t, ts.URL, tinySearchBody(16, tinySearchSpace))
	sr.Body.Close()
	br := postSweep(t, ts.URL, `{"not":"a sweep"}`) // 400 -> status_4xx
	br.Body.Close()
	for _, path := range []string{"/healthz", "/debug/requests", "/v1/sweep/missing"} {
		gr, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		gr.Body.Close()
	}

	req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	mr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mr.Body); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, line := range strings.Split(buf.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			names = append(names, rest) // "name kind", already sorted
		}
	}
	got := strings.Join(names, "\n") + "\n"

	golden := filepath.Join("testdata", "metrics_names.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("metric name set drifted from golden.\ngot:\n%s\nwant:\n%s\n(run with -update if the change is intentional)", got, want)
	}
}

// TestPanicRecovery: a panicking handler inside the request shell comes
// back as a metered 500 with the uniform error envelope, the panic
// counter and the 5xx status class both advance, and the stack is
// logged with the request ID.
func TestPanicRecovery(t *testing.T) {
	logs := &syncBuf{}
	s := New(Options{Logger: obs.NewJSONLogger(logs, 0)})
	boom := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})
	h := obs.InstrumentHandler(s.reg, "GET /boom", s.withRequest("GET /boom", boom))
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == "" {
		t.Errorf("500 body missing error envelope: %v %+v", err, eb)
	}
	id := resp.Header.Get("X-Request-ID")
	if id == "" {
		t.Error("panicking request still needs an X-Request-ID")
	}
	if got := s.reg.Counter("serve.panics").Value(); got != 1 {
		t.Errorf("serve.panics = %d, want 1", got)
	}
	if got := s.reg.Counter("http.boom.status_5xx").Value(); got != 1 {
		t.Errorf("status_5xx = %d, want 1", got)
	}
	waitFor(t, func() bool { return strings.Contains(logs.String(), "handler panic") })
	line := findLogLine(logs.String(), "handler panic")
	if !strings.Contains(line, "kaboom") || !strings.Contains(line, "stack") {
		t.Errorf("panic line missing value or stack: %s", line)
	}
	if !strings.Contains(line, fmt.Sprintf("%q:%q", "request_id", id)) {
		t.Errorf("panic line missing request_id %q: %s", id, line)
	}
}

// TestDebugRequests: the ring serves recent requests newest first with
// their span breakdowns, and its size bounds retention.
func TestDebugRequests(t *testing.T) {
	s := New(Options{DebugRequests: 8})
	s.runJob = func(ctx context.Context, j *job) error { return nil }
	ts := httptest.NewServer(s)
	defer ts.Close()

	r := postSweep(t, ts.URL, asyncBody)
	r.Body.Close()
	for i := 0; i < 2; i++ {
		hr, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		hr.Body.Close()
	}
	dr, err := http.Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer dr.Body.Close()
	var got DebugRequestsResponse
	if err := json.NewDecoder(dr.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Requests) != 3 {
		t.Fatalf("retained %d requests, want 3", len(got.Requests))
	}
	// Newest first: healthz, healthz, sweep. The /debug/requests call
	// itself is recorded after its response, so it is absent.
	if got.Requests[0].Route != "GET /healthz" || got.Requests[2].Route != "POST /v1/sweep" {
		t.Errorf("order: %q ... %q", got.Requests[0].Route, got.Requests[2].Route)
	}
	sweep := got.Requests[2]
	if sweep.ID == "" || sweep.Status != http.StatusAccepted || sweep.DurNS <= 0 {
		t.Errorf("sweep record incomplete: %+v", sweep)
	}
	spanNames := make(map[string]bool)
	for _, sp := range sweep.Spans {
		spanNames[sp.Name] = true
	}
	for _, want := range []string{"decode", "admit"} {
		if !spanNames[want] {
			t.Errorf("sweep record missing span %q, have %v", want, sweep.Spans)
		}
	}

	// A ring of 2 keeps only the newest 2.
	s2 := New(Options{DebugRequests: 2})
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	for i := 0; i < 5; i++ {
		hr, err := http.Get(ts2.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		hr.Body.Close()
	}
	if got := s2.reqs.Snapshot(); len(got) != 2 {
		t.Errorf("bounded ring retained %d, want 2", len(got))
	}
}
