// The completed-result cache: a small LRU over finished jobs, keyed by
// the same content digest the coalescing map uses. A hit serves a grid
// without touching the queue — the service analogue of the engine's
// in-memory trace cache one layer down.

package serve

import "container/list"

// resultCache is an LRU of completed jobs keyed by content key. Not
// safe for concurrent use; the Server guards it with its mutex.
type resultCache struct {
	cap int
	ll  *list.List // front = most recently used; values are *job
	m   map[string]*list.Element
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

// get returns the cached job for key (nil on miss), refreshing its
// recency.
func (c *resultCache) get(key string) *job {
	e, ok := c.m[key]
	if !ok {
		return nil
	}
	c.ll.MoveToFront(e)
	return e.Value.(*job)
}

// put inserts or refreshes a completed job and returns the job evicted
// to make room, if any.
func (c *resultCache) put(key string, j *job) (evicted *job) {
	if e, ok := c.m[key]; ok {
		e.Value = j
		c.ll.MoveToFront(e)
		return nil
	}
	c.m[key] = c.ll.PushFront(j)
	if c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		old := back.Value.(*job)
		delete(c.m, old.key)
		return old
	}
	return nil
}

// len returns the number of cached results.
func (c *resultCache) len() int { return c.ll.Len() }
