// End-to-end tests against the real engine: coalescing (N identical
// concurrent sweeps share one execution), byte-identity of served grids
// with the library API, NDJSON streaming, the async 202+poll flow, the
// result cache, and the point endpoint. A tiny multiprog scale keeps
// these fast; the queue/backpressure machinery is covered by the
// stubbed tests in serve_test.go.

package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"sccsim"
)

// tinyScale is the problem size the end-to-end tests run: unique sizes
// so content keys never collide with other tests' sweeps.
func tinyScale(seed int64) sccsim.Scale {
	return sccsim.Scale{MultiprogRefs: 6000, Seed: seed}
}

func tinyBody(seed int64, extra string) string {
	return fmt.Sprintf(`{"workload":"multiprog","scale_spec":{"multiprog_refs":6000,"seed":%d}%s}`, seed, extra)
}

// rawSweepEnvelope decodes a sweep response keeping the grid's raw
// bytes for byte-identity checks.
type rawSweepEnvelope struct {
	ID     string              `json:"id"`
	Status string              `json:"status"`
	Cache  string              `json:"cache"`
	Grid   json.RawMessage     `json:"grid"`
	Report *sccsim.SweepReport `json:"report"`
	Error  string              `json:"error"`
}

// TestSweepCoalescingAndByteIdentity: N identical concurrent sweeps are
// admitted as one job (one engine execution), every response carries
// the same grid, and that grid's JSON is byte-identical to what
// sccsim.SweepCtx produces for the same experiment.
func TestSweepCoalescingAndByteIdentity(t *testing.T) {
	sccsim.ResetTraceCache()
	t.Cleanup(sccsim.ResetTraceCache)

	s := New(Options{Workers: 2})
	// Gate the real runner so every request attaches before execution.
	gate := make(chan struct{})
	exec := s.runJob
	s.runJob = func(ctx context.Context, j *job) error {
		<-gate
		return exec(ctx, j)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	const n = 4
	body := tinyBody(11, "")
	var wg sync.WaitGroup
	envs := make([]rawSweepEnvelope, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			errs[i] = json.NewDecoder(resp.Body).Decode(&envs[i])
		}(i)
	}
	// All later requests must coalesce onto the first job before the
	// gate opens.
	waitFor(t, func() bool { return s.reg.Counter("serve.coalesced").Value() == n-1 })
	close(gate)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}

	// Exactly one engine execution.
	if got := s.reg.Counter("serve.jobs_done").Value(); got != 1 {
		t.Errorf("serve.jobs_done = %d, want 1 (single coalesced execution)", got)
	}
	sources := map[string]int{}
	for _, e := range envs {
		sources[e.Cache]++
		if e.ID != envs[0].ID {
			t.Errorf("job ID %q differs from %q — requests did not share a job", e.ID, envs[0].ID)
		}
		if !bytes.Equal(e.Grid, envs[0].Grid) {
			t.Error("coalesced responses returned different grids")
		}
	}
	if sources["miss"] != 1 || sources["coalesced"] != n-1 {
		t.Errorf("cache sources = %v, want 1 miss and %d coalesced", sources, n-1)
	}
	// The shared report proves the trace was generated once: a second
	// execution would have reported a cache hit instead.
	if envs[0].Report == nil || envs[0].Report.TraceGenerated != 1 {
		t.Errorf("report = %+v, want TraceGenerated == 1", envs[0].Report)
	}

	// Byte-identity with the library: the same experiment through the
	// facade marshals to exactly the bytes the server returned.
	scale := tinyScale(11)
	want, err := sccsim.SweepCtx(context.Background(), sccsim.Multiprog, sccsim.WithScale(scale))
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(envs[0].Grid, wantJSON) {
		t.Error("served grid is not byte-identical to sccsim.SweepCtx output")
	}
	// And it is the full 32-point design space.
	var g sccsim.Grid
	if err := json.Unmarshal(envs[0].Grid, &g); err != nil {
		t.Fatal(err)
	}
	points := 0
	for _, row := range g.Points {
		points += len(row)
	}
	if len(g.Points) != 8 || points != 32 {
		t.Errorf("grid is %d rows / %d points, want 8 rows / 32 points", len(g.Points), points)
	}
}

// TestSweepStreamNDJSON: a streaming request yields one NDJSON progress
// line per design point followed by a terminal result event carrying
// the grid.
func TestSweepStreamNDJSON(t *testing.T) {
	s := New(Options{Workers: 1})
	gate := make(chan struct{})
	exec := s.runJob
	s.runJob = func(ctx context.Context, j *job) error {
		<-gate
		return exec(ctx, j)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json",
		strings.NewReader(tinyBody(12, `,"stream":true`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	// Hold the job until the streaming handler has subscribed, so every
	// engine progress event is observed.
	waitFor(t, func() bool {
		s.mu.Lock()
		var j *job
		for _, cand := range s.jobs {
			j = cand
		}
		s.mu.Unlock()
		if j == nil {
			return false
		}
		j.mu.Lock()
		defer j.mu.Unlock()
		return len(j.subs) == 1
	})
	close(gate)

	var progress int
	var last StreamEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<22)
	for sc.Scan() {
		var ev StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch ev.Event {
		case "progress":
			progress++
			if ev.Progress == nil || ev.Progress.Total != 32 || ev.Progress.Done < 1 || ev.Progress.Done > 32 {
				t.Fatalf("bad progress event: %+v", ev.Progress)
			}
		case "result", "error":
		default:
			t.Fatalf("unknown event %q", ev.Event)
		}
		last = ev
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if progress != 32 {
		t.Errorf("saw %d progress events, want 32", progress)
	}
	if last.Event != "result" || last.Result == nil || last.Result.Grid == nil {
		t.Errorf("terminal event = %+v, want a result with a grid", last)
	}
}

// TestAsyncPollAndCacheHit: wait:false returns 202 immediately, the job
// is pollable to completion, and repeated identical requests are served
// from the result cache with the original job's ID.
func TestAsyncPollAndCacheHit(t *testing.T) {
	s := New(Options{Workers: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	body := tinyBody(13, `,"wait":false`)
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202", resp.StatusCode)
	}
	var ack SweepResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.ID == "" || ack.Cache != "miss" || ack.Grid != nil {
		t.Fatalf("ack = %+v, want an ID, cache miss, and no grid yet", ack)
	}

	// Poll until done; the terminal status carries the grid and a
	// saturated progress count.
	var st JobStatus
	waitFor(t, func() bool {
		pr, err := http.Get(ts.URL + "/v1/sweep/" + ack.ID)
		if err != nil {
			return false
		}
		defer pr.Body.Close()
		st = JobStatus{}
		if err := json.NewDecoder(pr.Body).Decode(&st); err != nil {
			return false
		}
		return st.Status == "done"
	})
	if st.Grid == nil || st.Report == nil {
		t.Fatalf("done status missing grid/report: %+v", st)
	}
	if st.Done != 32 || st.Total != 32 {
		t.Errorf("done/total = %d/%d, want 32/32", st.Done, st.Total)
	}

	// An identical synchronous request is a cache hit on the same job.
	r2, err := http.Post(ts.URL+"/v1/sweep", "application/json",
		strings.NewReader(tinyBody(13, "")))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	var hit SweepResponse
	if err := json.NewDecoder(r2.Body).Decode(&hit); err != nil {
		t.Fatal(err)
	}
	if r2.StatusCode != http.StatusOK || hit.Cache != "hit" || hit.ID != ack.ID || hit.Grid == nil {
		t.Errorf("cache hit = status %d, %+v; want 200, cache hit, ID %s, a grid", r2.StatusCode, hit, ack.ID)
	}

	// Even an async request gets the cached result immediately: 200 with
	// the grid, not 202.
	r3, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Body.Close()
	var hit2 SweepResponse
	if err := json.NewDecoder(r3.Body).Decode(&hit2); err != nil {
		t.Fatal(err)
	}
	if r3.StatusCode != http.StatusOK || hit2.Cache != "hit" || hit2.Grid == nil {
		t.Errorf("async cache hit = status %d, cache %q; want 200 with a grid", r3.StatusCode, hit2.Cache)
	}
	if got := s.reg.Counter("serve.cache_hits").Value(); got != 2 {
		t.Errorf("serve.cache_hits = %d, want 2", got)
	}
	if got := s.reg.Counter("serve.jobs_done").Value(); got != 1 {
		t.Errorf("serve.jobs_done = %d, want 1", got)
	}
}

// TestPointEndpoint: POST /v1/point runs one design point and the
// result matches the library's Do for the same experiment.
func TestPointEndpoint(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/point", "application/json", strings.NewReader(
		`{"workload":"multiprog","scale_spec":{"multiprog_refs":6000,"seed":14},"procs_per_cluster":2,"scc_bytes":131072}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var pr PointResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.Status != "done" || pr.Point == nil {
		t.Fatalf("response %+v, want done with a point", pr)
	}

	scale := tinyScale(14)
	want, err := sccsim.Do(context.Background(), sccsim.Multiprog,
		sccsim.WithScale(scale), sccsim.WithPoint(2, 128*1024))
	if err != nil {
		t.Fatal(err)
	}
	if pr.Point.Result.Cycles != want.Result.Cycles || pr.Point.Result.Refs != want.Result.Refs {
		t.Errorf("served point cycles/refs = %d/%d, want %d/%d",
			pr.Point.Result.Cycles, pr.Point.Result.Refs, want.Result.Cycles, want.Result.Refs)
	}
	if pr.Point.Config.SCCBytes != 128*1024 || pr.Point.Config.ProcsPerCluster != 2 {
		t.Errorf("served config = %+v, want 2P/128KB", pr.Point.Config)
	}
}

// TestHealthzAndMetrics: /healthz reports ok with the server's limits;
// /metrics exposes the obs snapshot including the HTTP middleware and
// job counters.
func TestHealthzAndMetrics(t *testing.T) {
	s := New(Options{Workers: 3, QueueDepth: 5})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// One real job so job metrics exist.
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json",
		strings.NewReader(tinyBody(15, "")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d, want 200", hr.StatusCode)
	}
	var h Health
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Workers != 3 || h.QueueDepth != 5 {
		t.Errorf("health = %+v, want ok with workers 3, queue depth 5", h)
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	var snap map[string]any
	if err := json.NewDecoder(mr.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"serve.jobs_done", "http.requests", "http.v1_sweep.requests"} {
		if _, ok := snap[key]; !ok {
			t.Errorf("metrics snapshot missing %q", key)
		}
	}
}

// TestPointAxesEndpoint: the axes field reaches the simulation (an
// axis variant returns different numbers than the default point for
// the same workload/scale), a zero axes object is byte-equivalent to
// omitting it, and analytic-unsupported axes are a 400, not a run
// failure.
func TestPointAxesEndpoint(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	post := func(body string) (*PointResponse, int) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/point", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var pr PointResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
				t.Fatal(err)
			}
		}
		return &pr, resp.StatusCode
	}

	const point = `"workload":"multiprog","scale_spec":{"multiprog_refs":6000,"seed":21},"procs_per_cluster":2,"scc_bytes":131072`
	def, code := post(`{` + point + `}`)
	if code != http.StatusOK || def.Status != "done" {
		t.Fatalf("default point: status %d / %q", code, def.Status)
	}
	zero, code := post(`{` + point + `,"axes":{}}`)
	if code != http.StatusOK || zero.Point == nil {
		t.Fatalf("zero-axes point: status %d", code)
	}
	if zero.Point.Result.Cycles != def.Point.Result.Cycles {
		t.Errorf("zero axes changed the result: %d vs %d", zero.Point.Result.Cycles, def.Point.Result.Cycles)
	}
	assoc, code := post(`{` + point + `,"axes":{"assoc":4}}`)
	if code != http.StatusOK || assoc.Point == nil {
		t.Fatalf("assoc point: status %d", code)
	}
	if assoc.Point.Result.Cycles == def.Point.Result.Cycles {
		t.Errorf("assoc=4 produced the direct-mapped cycle count %d; the axes did not reach the simulator", def.Point.Result.Cycles)
	}

	_, code = post(`{` + point + `,"backend":"analytic","axes":{"repl":"random"}}`)
	if code != http.StatusBadRequest {
		t.Errorf("analytic + random replacement: status %d, want 400", code)
	}
	_, code = post(`{` + point + `,"axes":{"assoc":3}}`)
	if code != http.StatusBadRequest {
		t.Errorf("non-dividing associativity: status %d, want 400", code)
	}
}
