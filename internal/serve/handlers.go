// HTTP handlers: decode, validate, admit, render. Handlers never touch
// the engine directly — they only talk to the admission control and the
// job they are handed, so every route automatically shares the queue,
// the coalescing map and the result cache.

package serve

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"sccsim"
	"sccsim/internal/obs"
)

// maxBodyBytes bounds request bodies; experiment specs are tiny.
const maxBodyBytes = 1 << 20

// Routes lists every registered route pattern (http.ServeMux syntax).
// docs/API.md must document each one — the docs-check tool enforces it.
func Routes() []string {
	return []string{
		"POST /v1/sweep",
		"GET /v1/sweep/{id}",
		"POST /v1/point",
		"POST /v1/search",
		"POST /v1/cluster/register",
		"GET /v1/cluster",
		"GET /v1/trace/{digest}",
		"GET /healthz",
		"GET /metrics",
		"GET /debug/requests",
	}
}

// buildMux wires every Routes entry to its handler, instrumented
// through the obs HTTP middleware. The switch panics on a pattern it
// does not know, so Routes and the handler set cannot drift apart.
func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	for _, route := range Routes() {
		var h http.Handler
		switch route {
		case "POST /v1/sweep":
			h = http.HandlerFunc(s.handleSweep)
		case "GET /v1/sweep/{id}":
			h = http.HandlerFunc(s.handleSweepStatus)
		case "POST /v1/point":
			h = http.HandlerFunc(s.handlePoint)
		case "POST /v1/search":
			h = http.HandlerFunc(s.handleSearch)
		case "POST /v1/cluster/register":
			h = http.HandlerFunc(s.handleClusterRegister)
		case "GET /v1/cluster":
			h = http.HandlerFunc(s.handleClusterStatus)
		case "GET /v1/trace/{digest}":
			h = http.HandlerFunc(s.handleTrace)
		case "GET /healthz":
			h = http.HandlerFunc(s.handleHealthz)
		case "GET /metrics":
			h = http.HandlerFunc(s.handleMetrics)
		case "GET /debug/requests":
			h = http.HandlerFunc(s.handleDebugRequests)
		default:
			panic("serve: route without a handler: " + route)
		}
		// The request shell (IDs, logs, panic recovery) sits inside the
		// metrics middleware so a recovered panic's 500 is still counted.
		mux.Handle(route, obs.InstrumentHandler(s.reg, route, s.withRequest(route, h)))
	}
	return mux
}

// writeJSON renders one JSON response body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeError renders the uniform error envelope.
func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorBody{Error: msg})
}

// writeAdmitError maps an admission failure, attaching the
// backpressure hint on 429 and logging the shed/drain decision with the
// request's ID.
func (s *Server) writeAdmitError(w http.ResponseWriter, r *http.Request, err *httpError) {
	if err.retryAfter > 0 {
		secs := int(err.retryAfter.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprint(secs))
	}
	switch err.code {
	case http.StatusTooManyRequests:
		s.log(r.Context(), slog.LevelWarn, "request shed", "reason", err.msg)
	case http.StatusServiceUnavailable:
		s.log(r.Context(), slog.LevelWarn, "request refused while draining", "reason", err.msg)
	}
	writeError(w, err.code, err.msg)
}

// decodeBody decodes a bounded JSON request body, rejecting unknown
// fields so client typos fail loudly instead of silently running the
// default experiment.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

// handleSweep serves POST /v1/sweep: synchronous by default, 202+poll
// with "wait": false, NDJSON progress streaming with "stream": true.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	tr := obs.TraceFrom(r.Context())
	var req SweepRequest
	dsp := tr.StartSpan("decode")
	ok := decodeBody(w, r, &req)
	dsp.End()
	if !ok {
		return
	}
	workload, err := sccsim.ParseWorkload(req.Workload)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	backend, err := resolveBackend(req.Backend)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	scale, err := resolveScale(req.Scale, req.Seed, req.ScaleSpec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var sim sccsim.Options
	verify := false
	if req.Sim != nil {
		sim = req.Sim.toOptions()
		verify = req.Sim.Verify
	}
	spec := sccsim.Spec{
		Scale: &scale, Parallelism: s.jobParallelism(req.Parallelism),
		TraceCacheDir: s.opts.TraceCacheDir, Verify: verify,
		Backend: string(backend), Axes: req.Axes,
	}
	if req.Sim != nil {
		spec.Sim = &sim
	}
	// Contradictory specs — verification or simulator ablations on the
	// analytic backend, or axes it cannot model — are client errors, not
	// server faults.
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := sweepKey(workload, backend, scale, sim, verify, req.Axes)
	// The same experiment on the other backend — only meaningful for
	// untuned specs whose axes the analytic backend can model, since
	// tuned, verified or analytic-unsupported runs are exact-only and
	// could never have an analytic twin.
	twinKey := ""
	if req.Sim == nil && axesAnalyticOK(req.Axes) {
		other := sccsim.BackendAnalytic
		if backend == sccsim.BackendAnalytic {
			other = sccsim.BackendExact
		}
		twinKey = sweepKey(workload, other, scale, sim, verify, req.Axes)
	}
	asp := tr.StartSpan("admit")
	adm, aerr := s.admit(key, func(id string) *job {
		nj := newJob(id, key, jobSweep, workload, spec, time.Duration(req.TimeoutMS)*time.Millisecond)
		nj.requestID = obs.RequestIDFrom(r.Context())
		nj.trace = tr
		nj.twinKey = twinKey
		return nj
	})
	asp.End()
	if aerr != nil {
		s.writeAdmitError(w, r, aerr)
		return
	}
	j := adm.j
	switch {
	case req.Stream:
		s.streamSweep(w, r, j, adm.source)
	case req.Wait != nil && !*req.Wait:
		if adm.source == "hit" {
			// The result cache already has the grid; no reason to make
			// the client poll for it.
			writeJSON(w, http.StatusOK, s.sweepResponse(j, adm.source, true))
			return
		}
		writeJSON(w, http.StatusAccepted, s.sweepResponse(j, adm.source, false))
	default:
		wsp := tr.StartSpan("wait")
		select {
		case <-j.done:
			wsp.End()
			resp := s.sweepResponse(j, adm.source, true)
			code := http.StatusOK
			if resp.Error != "" {
				code = http.StatusInternalServerError
			}
			esp := tr.StartSpan("encode")
			writeJSON(w, code, resp)
			esp.End()
		case <-r.Context().Done():
			wsp.End()
			// The client went away; the shared job keeps running for
			// any coalesced waiters and the result cache.
		}
	}
}

// sweepResponse renders a job as the sweep envelope. includeResult is
// false for 202 acknowledgements, which only need identity and state.
func (s *Server) sweepResponse(j *job, source string, includeResult bool) *SweepResponse {
	state, _, grid, _, report, err, _ := j.snapshot()
	resp := &SweepResponse{
		ID: j.id, Status: state.String(), Workload: string(j.workload),
		Backend: j.spec.Backend, Cache: source, RequestID: j.requestID,
	}
	if !includeResult {
		return resp
	}
	resp.Grid = grid
	resp.Report = report
	if err != nil {
		resp.Error = err.Error()
	}
	return resp
}

// streamSweep renders a sweep as NDJSON: progress events as the engine
// completes design points, then one terminal result or error event.
func (s *Server) streamSweep(w http.ResponseWriter, r *http.Request, j *job, source string) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flush := func() {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
	enc := json.NewEncoder(w)
	ch, detach := j.subscribe()
	defer detach()
	flush()
	for {
		select {
		case p, ok := <-ch:
			if !ok {
				// Job finished (or was already finished): emit the
				// terminal event.
				resp := s.sweepResponse(j, source, true)
				if resp.Error != "" {
					_ = enc.Encode(StreamEvent{Event: "error", Error: resp.Error})
				} else {
					_ = enc.Encode(StreamEvent{Event: "result", Result: resp})
				}
				flush()
				return
			}
			_ = enc.Encode(StreamEvent{Event: "progress", Progress: &p})
			flush()
		case <-r.Context().Done():
			return
		}
	}
}

// handleSweepStatus serves GET /v1/sweep/{id} for async jobs.
func (s *Server) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job "+id)
		return
	}
	state, last, grid, _, report, err, coalesced := j.snapshot()
	st := &JobStatus{
		ID: j.id, Status: state.String(), Workload: string(j.workload),
		Backend:   j.spec.Backend,
		RequestID: j.requestID,
		Coalesced: coalesced,
		AgeMS:     time.Since(j.created).Milliseconds(),
	}
	if last != nil {
		st.Done, st.Total = last.Done, last.Total
	}
	if state == jobDone || state == jobFailed {
		st.Grid = grid
		st.Report = report
		if last != nil {
			st.Done, st.Total = last.Total, last.Total
		}
		if err != nil {
			st.Error = err.Error()
		}
	}
	writeJSON(w, http.StatusOK, st)
}

// handlePoint serves POST /v1/point: one design point, synchronously,
// through the same queue, coalescing and cache as sweeps.
func (s *Server) handlePoint(w http.ResponseWriter, r *http.Request) {
	tr := obs.TraceFrom(r.Context())
	var req PointRequest
	dsp := tr.StartSpan("decode")
	ok := decodeBody(w, r, &req)
	dsp.End()
	if !ok {
		return
	}
	workload, err := sccsim.ParseWorkload(req.Workload)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	backend, err := resolveBackend(req.Backend)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	scale, err := resolveScale(req.Scale, req.Seed, req.ScaleSpec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var sim sccsim.Options
	verify := false
	if req.Sim != nil {
		sim = req.Sim.toOptions()
		verify = req.Sim.Verify
	}
	ppc, scc := req.ProcsPerCluster, req.SCCBytes
	if ppc == 0 {
		ppc = 1
	}
	if scc == 0 {
		scc = 64 * 1024
	}
	spec := sccsim.Spec{
		Scale: &scale, ProcsPerCluster: ppc, SCCBytes: scc,
		Parallelism:   s.jobParallelism(0),
		TraceCacheDir: s.opts.TraceCacheDir, Verify: verify,
		Backend: string(backend), Axes: req.Axes,
	}
	if req.Sim != nil {
		spec.Sim = &sim
	}
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := pointKey(workload, backend, ppc, scc, scale, sim, verify, req.Axes)
	asp := tr.StartSpan("admit")
	adm, aerr := s.admit(key, func(id string) *job {
		nj := newJob(id, key, jobPoint, workload, spec, time.Duration(req.TimeoutMS)*time.Millisecond)
		nj.requestID = obs.RequestIDFrom(r.Context())
		nj.trace = tr
		return nj
	})
	asp.End()
	if aerr != nil {
		s.writeAdmitError(w, r, aerr)
		return
	}
	j := adm.j
	wsp := tr.StartSpan("wait")
	select {
	case <-j.done:
		wsp.End()
	case <-r.Context().Done():
		wsp.End()
		return
	}
	state, _, _, point, _, jerr, _ := j.snapshot()
	resp := &PointResponse{
		ID: j.id, Status: state.String(), Workload: string(j.workload),
		Backend: j.spec.Backend, Cache: adm.source, Point: point,
		RequestID: j.requestID,
	}
	code := http.StatusOK
	if jerr != nil {
		resp.Error = jerr.Error()
		code = http.StatusInternalServerError
	}
	esp := tr.StartSpan("encode")
	writeJSON(w, code, resp)
	esp.End()
}

// handleSearch serves POST /v1/search: an adaptive design-space search
// (analytic triage, exact confirmation — sccsim.SearchCtx),
// synchronously, through the same queue, coalescing and cache as
// sweeps. The content key digests the workload, the resolved scale and
// the canonical JSON of the search spec, so identical searches share
// one execution and repeated ones are served from memory.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	tr := obs.TraceFrom(r.Context())
	var req SearchRequest
	dsp := tr.StartSpan("decode")
	ok := decodeBody(w, r, &req)
	dsp.End()
	if !ok {
		return
	}
	workload, err := sccsim.ParseWorkload(req.Workload)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	scale, err := resolveScale(req.Scale, req.Seed, req.ScaleSpec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// A malformed space or unknown objective/strategy/constraint is a
	// client error; catching it here keeps it off the job queue.
	if err := req.Search.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	spec := sccsim.Spec{
		Scale: &scale, Parallelism: s.jobParallelism(req.Parallelism),
		TraceCacheDir: s.opts.TraceCacheDir,
	}
	key, err := searchKey(workload, scale, req.Search)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	asp := tr.StartSpan("admit")
	adm, aerr := s.admit(key, func(id string) *job {
		nj := newJob(id, key, jobSearch, workload, spec, time.Duration(req.TimeoutMS)*time.Millisecond)
		nj.searchSpec = req.Search
		nj.requestID = obs.RequestIDFrom(r.Context())
		nj.trace = tr
		return nj
	})
	asp.End()
	if aerr != nil {
		s.writeAdmitError(w, r, aerr)
		return
	}
	j := adm.j
	wsp := tr.StartSpan("wait")
	select {
	case <-j.done:
		wsp.End()
	case <-r.Context().Done():
		wsp.End()
		return
	}
	state, res, jerr := j.searchSnapshot()
	resp := &SearchResponse{
		ID: j.id, Status: state.String(), Workload: string(j.workload),
		Cache: adm.source, RequestID: j.requestID, Result: res,
	}
	code := http.StatusOK
	if jerr != nil {
		resp.Error = jerr.Error()
		code = http.StatusInternalServerError
	}
	esp := tr.StartSpan("encode")
	writeJSON(w, code, resp)
	esp.End()
}

// jobParallelism resolves a request's engine parallelism against the
// server default.
func (s *Server) jobParallelism(requested int) int {
	if requested > 0 {
		return requested
	}
	return s.opts.Parallelism
}

// handleHealthz serves GET /healthz: 200 while serving, 503 with
// status "draining" once Shutdown has begun.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := &Health{
		Status:        "ok",
		UptimeMS:      time.Since(s.start).Milliseconds(),
		Queued:        s.queued,
		Running:       int(s.reg.Gauge("serve.jobs_running").Value()),
		Workers:       s.opts.workers(),
		QueueDepth:    s.opts.queueDepth(),
		CachedResults: s.cache.len(),
	}
	draining := s.draining
	s.mu.Unlock()
	code := http.StatusOK
	if draining {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// handleMetrics serves GET /metrics with content negotiation: the
// default is the obs registry snapshot as one JSON object (counters and
// gauges as numbers, histograms with count/mean/quantiles/buckets — see
// obs.Registry.Snapshot); an Accept header naming text/plain or
// OpenMetrics switches to the Prometheus text exposition format. Either
// way the scrape first refreshes the Go-runtime gauges (go.*) and the
// in-flight coalesced-group gauge, so point-in-time state is current.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	obs.CaptureRuntimeMetrics(s.reg)
	s.mu.Lock()
	s.reg.Gauge("serve.inflight_groups").Set(int64(len(s.inflight)))
	s.mu.Unlock()
	accept := r.Header.Get("Accept")
	if strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics") {
		w.Header().Set("Content-Type", obs.PrometheusContentType)
		w.WriteHeader(http.StatusOK)
		_ = s.reg.WritePrometheus(w)
		return
	}
	writeJSON(w, http.StatusOK, s.reg.Snapshot())
}

// handleDebugRequests serves GET /debug/requests: the ring buffer of
// recent requests, newest first, each with its per-span timing
// breakdown — the poor man's x/net/trace page, as JSON.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, &DebugRequestsResponse{Requests: s.reqs.Snapshot()})
}
