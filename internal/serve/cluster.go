// Cluster mode: the server-side half of sharded sweep execution. A
// coordinator keeps a registry of worker nodes (registration doubles
// as heartbeat; entries expire after a TTL) and, when a sweep job
// runs, snapshots the healthy workers into an sccsim.HTTPCluster so
// the engine offers every design point to the fleet — with local
// simulation as the per-point fallback, so losing workers mid-sweep
// costs retries, never correctness. The same module serves the
// fleet-shared trace cache: GET /v1/trace/{digest} streams a
// content-addressed cache entry to peers, and a worker configured with
// a peer URL wraps its disk cache in a trace.PeerCache that pulls
// missing entries from the coordinator before regenerating them.

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"sccsim"
	"sccsim/internal/trace"
)

// ClusterOptions configures the server's coordinator/worker behaviour.
// The zero value is a standalone node: no workers are accepted until
// they register, and the trace cache stays local.
type ClusterOptions struct {
	// HeartbeatTTL is how long a worker registration stays healthy
	// without being renewed (<= 0: 15s). Workers re-register on a
	// shorter period (see HeartbeatLoop); an expired worker is dropped
	// from sweep sharding until it registers again.
	HeartbeatTTL time.Duration
	// Retries is how many workers a sweep point is offered to before
	// the coordinator simulates it locally (<= 0: the HTTPCluster
	// default of 2).
	Retries int
	// BackoffMS is the base retry backoff in milliseconds (<= 0: the
	// HTTPCluster default of 50).
	BackoffMS int64
	// PointTimeoutMS caps each remote point attempt (<= 0: the
	// HTTPCluster default of 120s).
	PointTimeoutMS int64
	// PeerTraceURL, when set on a worker, is the base URL of a peer
	// node (normally the coordinator) whose trace cache is consulted —
	// via GET /v1/trace/{digest} — before this node regenerates a
	// workload trace. Requires TraceCacheDir.
	PeerTraceURL string
}

func (o ClusterOptions) heartbeatTTL() time.Duration {
	if o.HeartbeatTTL > 0 {
		return o.HeartbeatTTL
	}
	return 15 * time.Second
}

// workerNode is one registered worker's registry entry.
type workerNode struct {
	url      string
	lastSeen time.Time
}

// RegisterRequest is the body of POST /v1/cluster/register: a worker
// announcing (or re-announcing — registration is the heartbeat) the
// base URL it serves the v1 API on.
type RegisterRequest struct {
	// URL is the worker's advertised base URL (e.g. "http://node1:8080").
	URL string `json:"url"`
}

// RegisterResponse is the body of POST /v1/cluster/register.
type RegisterResponse struct {
	// Status is "ok".
	Status string `json:"status"`
	// Workers is the registry's healthy-worker count after this
	// registration.
	Workers int `json:"workers"`
	// TTLMS echoes the registration TTL so workers can pick a safe
	// heartbeat period.
	TTLMS int64 `json:"ttl_ms"`
}

// WorkerStatus is one worker's entry in GET /v1/cluster.
type WorkerStatus struct {
	// URL is the worker's advertised base URL.
	URL string `json:"url"`
	// AgeMS is milliseconds since the worker last registered.
	AgeMS int64 `json:"age_ms"`
}

// ClusterStatus is the body of GET /v1/cluster: the healthy workers.
type ClusterStatus struct {
	// Workers lists the registered, unexpired workers.
	Workers []WorkerStatus `json:"workers"`
	// TTLMS is the registration TTL.
	TTLMS int64 `json:"ttl_ms"`
}

// handleClusterRegister serves POST /v1/cluster/register: upsert the
// worker keyed by its normalized URL, stamping the heartbeat time.
func (s *Server) handleClusterRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !decodeBody(w, r, &req) {
		return
	}
	url := strings.TrimRight(strings.TrimSpace(req.URL), "/")
	if url == "" || (!strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://")) {
		writeError(w, http.StatusBadRequest, "url must be an absolute http(s) base URL")
		return
	}
	s.workersMu.Lock()
	if s.workers == nil {
		s.workers = make(map[string]*workerNode)
	}
	if s.workers[url] == nil {
		s.reg.Counter("serve.cluster_registers").Inc()
		s.log(r.Context(), slog.LevelInfo, "worker registered", "worker", url)
	}
	s.workers[url] = &workerNode{url: url, lastSeen: time.Now()}
	n := len(s.pruneWorkersLocked())
	s.workersMu.Unlock()
	s.reg.Gauge("serve.cluster_workers").Set(int64(n))
	writeJSON(w, http.StatusOK, &RegisterResponse{
		Status: "ok", Workers: n,
		TTLMS: s.opts.Cluster.heartbeatTTL().Milliseconds(),
	})
}

// handleClusterStatus serves GET /v1/cluster.
func (s *Server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	s.workersMu.Lock()
	nodes := s.pruneWorkersLocked()
	st := &ClusterStatus{
		Workers: make([]WorkerStatus, 0, len(nodes)),
		TTLMS:   s.opts.Cluster.heartbeatTTL().Milliseconds(),
	}
	for _, n := range nodes {
		st.Workers = append(st.Workers, WorkerStatus{
			URL: n.url, AgeMS: now.Sub(n.lastSeen).Milliseconds(),
		})
	}
	s.workersMu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// pruneWorkersLocked drops expired registrations and returns the
// healthy workers in stable (URL-sorted) order. Callers hold workersMu.
func (s *Server) pruneWorkersLocked() []*workerNode {
	ttl := s.opts.Cluster.heartbeatTTL()
	cutoff := time.Now().Add(-ttl)
	urls := make([]string, 0, len(s.workers))
	for url, n := range s.workers {
		if n.lastSeen.Before(cutoff) {
			delete(s.workers, url)
			continue
		}
		urls = append(urls, url)
	}
	sortStrings(urls)
	nodes := make([]*workerNode, len(urls))
	for i, u := range urls {
		nodes[i] = s.workers[u]
	}
	return nodes
}

// sortStrings is insertion sort over the handful of worker URLs —
// avoids pulling sort into the hot path for a fleet of single digits.
func sortStrings(a []string) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// clusterRemote snapshots the healthy workers into a Remote for one
// sweep job, or nil when the node has no usable fleet.
func (s *Server) clusterRemote() sccsim.Remote {
	s.workersMu.Lock()
	nodes := s.pruneWorkersLocked()
	s.workersMu.Unlock()
	s.reg.Gauge("serve.cluster_workers").Set(int64(len(nodes)))
	if len(nodes) == 0 {
		return nil
	}
	urls := make([]string, len(nodes))
	for i, n := range nodes {
		urls[i] = n.url
	}
	return sccsim.NewHTTPCluster(sccsim.ClusterSpec{
		Workers:   urls,
		Retries:   s.opts.Cluster.Retries,
		BackoffMS: s.opts.Cluster.BackoffMS,
		TimeoutMS: s.opts.Cluster.PointTimeoutMS,
	})
}

// handleTrace serves GET /v1/trace/{digest}: the raw .scct bytes of a
// content-addressed trace cache entry, 404 when this node does not
// have it (or has no disk cache at all). Peers treat any non-200 as a
// cache miss and regenerate locally, so this endpoint never needs to
// be more precise than hit/miss.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	dc := s.traceDC
	if dc == nil {
		writeError(w, http.StatusNotFound, "no trace cache on this node")
		return
	}
	digest := r.PathValue("digest")
	rc, err := dc.OpenDigest(digest)
	if err != nil {
		s.reg.Counter("serve.trace_serve_misses").Inc()
		writeError(w, http.StatusNotFound, "no cached trace for digest")
		return
	}
	defer rc.Close()
	s.reg.Counter("serve.trace_served").Inc()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = io.Copy(w, rc)
}

// buildTraceStore wires the server's trace cache stack from its
// options: nothing without a cache dir, the plain disk cache
// standalone, and a peer-fetching cache when a peer URL is configured.
// An unusable cache directory degrades to no cache (the library
// regenerates traces) rather than failing construction.
func (s *Server) buildTraceStore() {
	if s.opts.TraceCacheDir == "" {
		return
	}
	dc, err := trace.NewDiskCache(s.opts.TraceCacheDir)
	if err != nil {
		if s.logger != nil {
			s.logger.Warn("trace cache unavailable", "err", err.Error())
		}
		return
	}
	s.traceDC = dc
	if peer := strings.TrimRight(s.opts.Cluster.PeerTraceURL, "/"); peer != "" {
		pc := trace.NewPeerCache(dc, func(digest string) (io.ReadCloser, error) {
			return fetchPeerTrace(s.baseCtx, peer, digest)
		})
		pc.OnFetch(func(hit bool) {
			if hit {
				s.reg.Counter("serve.trace_fetch_hits").Inc()
			} else {
				s.reg.Counter("serve.trace_fetch_misses").Inc()
			}
		})
		s.traceStore = pc
		return
	}
	s.traceStore = dc
}

// fetchPeerTrace is the PeerCache transport: one GET against the peer's
// trace endpoint, returning the body stream on 200.
func fetchPeerTrace(ctx context.Context, peerURL, digest string) (io.ReadCloser, error) {
	ctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peerURL+"/v1/trace/"+digest, nil)
	if err != nil {
		cancel()
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		cancel()
		return nil, fmt.Errorf("peer trace fetch: status %d", resp.StatusCode)
	}
	return &cancelReadCloser{ReadCloser: resp.Body, cancel: cancel}, nil
}

// cancelReadCloser ties a request-scoped cancel to the body's Close.
type cancelReadCloser struct {
	io.ReadCloser
	cancel context.CancelFunc
}

// Close closes the body and releases the request context.
func (c *cancelReadCloser) Close() error {
	err := c.ReadCloser.Close()
	c.cancel()
	return err
}

// RegisterWorker announces selfURL to the coordinator at
// coordinatorURL, returning the TTL the coordinator granted. It is one
// heartbeat; see HeartbeatLoop for the maintained version.
func RegisterWorker(ctx context.Context, coordinatorURL, selfURL string) (time.Duration, error) {
	body, err := json.Marshal(RegisterRequest{URL: selfURL})
	if err != nil {
		return 0, err
	}
	ctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	url := strings.TrimRight(coordinatorURL, "/") + "/v1/cluster/register"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return 0, fmt.Errorf("register with %s: status %d: %s",
			coordinatorURL, resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	var rr RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return 0, err
	}
	return time.Duration(rr.TTLMS) * time.Millisecond, nil
}

// HeartbeatLoop keeps a worker registered until ctx is cancelled:
// re-registering at a third of the coordinator's TTL, retrying on a
// short period while the coordinator is unreachable (registration is
// idempotent, so over-registering is harmless). Run it in a goroutine
// next to the worker's HTTP server.
func HeartbeatLoop(ctx context.Context, coordinatorURL, selfURL string) {
	period := 2 * time.Second
	for {
		if ttl, err := RegisterWorker(ctx, coordinatorURL, selfURL); err == nil {
			period = ttl / 3
			if period < 50*time.Millisecond {
				period = 50 * time.Millisecond
			}
		} else {
			period = 2 * time.Second
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(period):
		}
	}
}
