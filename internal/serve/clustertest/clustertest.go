// Package clustertest is an in-process multi-node cluster fixture: one
// coordinator and N workers, each a real serve.Server behind a real
// HTTP listener (httptest), with per-node trace cache directories and
// the workers registered in the coordinator's registry. Tests use it to
// pin the distributed sweep's correctness properties — byte-identical
// grids, worker-failure recovery, graceful drain — against the actual
// wire protocol rather than mocks. Workers can be "killed" (connections
// abort as if the process died) and restarted, which is what the chaos
// and recovery tests drive.
package clustertest

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"sccsim/internal/serve"
)

// Worker is one worker node: a serve.Server on a live listener.
type Worker struct {
	// Server is the node's service (useful for its metrics registry).
	Server *serve.Server
	// URL is the node's base URL as registered with the coordinator.
	URL string

	srv   *httptest.Server
	dead  atomic.Bool
	delay atomic.Int64 // artificial per-request latency, ms
}

// Kill simulates the worker process dying: in-flight connections are
// severed and every subsequent request aborts without a response. The
// coordinator sees connection errors, exactly as with a crashed node.
func (w *Worker) Kill() {
	w.dead.Store(true)
	w.srv.CloseClientConnections()
}

// Restart brings a killed worker back (same URL, same registration).
func (w *Worker) Restart() { w.dead.Store(false) }

// SetDelay injects d of extra latency before every request the worker
// serves — a degraded network, not a dead node. Zero removes it.
func (w *Worker) SetDelay(d time.Duration) { w.delay.Store(int64(d)) }

// Cluster is the fixture: a coordinator with registered workers.
type Cluster struct {
	// Coordinator is the node requests go to.
	Coordinator *serve.Server
	// URL is the coordinator's base URL.
	URL string
	// Workers are the registered worker nodes.
	Workers []*Worker

	srv *httptest.Server
}

// Options tunes the fixture.
type Options struct {
	// Workers is the number of worker nodes (<= 0: 2).
	Workers int
	// Coordinator overrides the coordinator's serve.Options; the
	// fixture fills in the cluster TTL and a trace cache dir when
	// unset.
	Coordinator serve.Options
	// PointTimeoutMS caps each remote point attempt (<= 0: 30s) — keep
	// it small in chaos tests so killed-worker retries are fast.
	PointTimeoutMS int64
	// Dir is where the per-node trace cache directories are created
	// (empty: the system temp dir). New removes them on stop; Start
	// uses t.TempDir and ignores this field.
	Dir string
}

// Start builds and starts a cluster, registered and ready. Nodes are
// shut down via t.Cleanup (coordinator last).
func Start(t testing.TB, o Options) *Cluster {
	t.Helper()
	o.Dir = t.TempDir()
	c, stop, err := New(o)
	if err != nil {
		t.Fatalf("clustertest: %v", err)
	}
	t.Cleanup(stop)
	return c
}

// New builds and starts a cluster outside a testing context — the load
// driver (cmd/sccload) uses it. The stop function drains and shuts down
// every node, coordinator last, and removes the trace directories.
func New(o Options) (*Cluster, func(), error) {
	n := o.Workers
	if n <= 0 {
		n = 2
	}
	root, err := os.MkdirTemp(o.Dir, "clustertest-")
	if err != nil {
		return nil, nil, err
	}
	var stops []func() // run in reverse
	stop := func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
		os.RemoveAll(root)
	}
	tempDir := func() string {
		d, err := os.MkdirTemp(root, "node-")
		if err != nil {
			d = root
		}
		return d
	}

	copts := o.Coordinator
	if copts.Cluster.HeartbeatTTL == 0 {
		// Registrations must not expire under a test scheduler pause.
		copts.Cluster.HeartbeatTTL = time.Hour
	}
	if copts.Cluster.PointTimeoutMS == 0 {
		copts.Cluster.PointTimeoutMS = o.PointTimeoutMS
		if copts.Cluster.PointTimeoutMS == 0 {
			copts.Cluster.PointTimeoutMS = 30_000
		}
	}
	if copts.TraceCacheDir == "" {
		copts.TraceCacheDir = tempDir()
	}
	coord := serve.New(copts)
	csrv := httptest.NewServer(coord)
	c := &Cluster{Coordinator: coord, URL: csrv.URL, srv: csrv}
	stops = append(stops, func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = coord.Shutdown(ctx)
		csrv.Close()
	})

	for i := 0; i < n; i++ {
		ws := serve.New(serve.Options{
			Workers:       2,
			QueueDepth:    64,
			TraceCacheDir: tempDir(),
			Cluster:       serve.ClusterOptions{PeerTraceURL: csrv.URL},
		})
		w := &Worker{Server: ws}
		w.srv = httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			if w.dead.Load() {
				// Abort the connection with no response — a dead
				// process, not a polite 5xx.
				panic(http.ErrAbortHandler)
			}
			if d := w.delay.Load(); d > 0 {
				select {
				case <-time.After(time.Duration(d)):
				case <-r.Context().Done():
				}
			}
			ws.ServeHTTP(rw, r)
		}))
		w.URL = w.srv.URL
		c.Workers = append(c.Workers, w)
		stops = append(stops, func() {
			w.dead.Store(false)
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_ = ws.Shutdown(ctx)
			w.srv.Close()
		})
		if _, err := serve.RegisterWorker(context.Background(), csrv.URL, w.srv.URL); err != nil {
			stop()
			return nil, nil, err
		}
	}
	return c, stop, nil
}
