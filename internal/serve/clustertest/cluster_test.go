// The distributed sweep's contract, pinned over real HTTP: a sharded
// sweep returns the same bytes as the single-node library; killing a
// worker mid-sweep costs retries, never points; draining a coordinator
// finishes every admitted job on the distributed path.

package clustertest

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"sccsim"
	"sccsim/internal/serve"
)

// tinyScale is a multiprogramming scale small enough for a full
// 32-point grid per test, large enough to exercise real simulation.
func tinyScale(seed int64) sccsim.Scale {
	s := sccsim.Scale{MultiprogRefs: 6000, Seed: seed}
	return s
}

func tinySweepBody(seed int64, extra string) string {
	return fmt.Sprintf(`{"workload":"multiprog","scale_spec":{"multiprog_refs":6000,"seed":%d}%s}`, seed, extra)
}

// rawSweep decodes a sweep response keeping the grid's raw bytes so
// byte-identity is checked on what actually crossed the wire.
type rawSweep struct {
	ID     string          `json:"id"`
	Status string          `json:"status"`
	Cache  string          `json:"cache"`
	Grid   json.RawMessage `json:"grid"`
	Error  string          `json:"error"`
}

func postSweep(t *testing.T, url, body string) rawSweep {
	t.Helper()
	resp, err := http.Post(url+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rs rawSweep
	if err := json.NewDecoder(resp.Body).Decode(&rs); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || rs.Status != "done" {
		t.Fatalf("sweep: status %d/%s error %q", resp.StatusCode, rs.Status, rs.Error)
	}
	return rs
}

// singleNodeGrid computes the reference grid with the plain library.
func singleNodeGrid(t *testing.T, seed int64) []byte {
	t.Helper()
	g, err := sccsim.SweepCtx(context.Background(), sccsim.Multiprog,
		sccsim.WithScale(tinyScale(seed)))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestThreeNodeSweepByteIdentity: a sweep sharded across three workers
// returns, over the wire, exactly the bytes the single-node library
// produces — and the workers really did serve points.
func TestThreeNodeSweepByteIdentity(t *testing.T) {
	sccsim.ResetTraceCache()
	t.Cleanup(sccsim.ResetTraceCache)
	want := singleNodeGrid(t, 31)

	c := Start(t, Options{Workers: 3})
	rs := postSweep(t, c.URL, tinySweepBody(31, ""))
	if !bytes.Equal(bytes.TrimSpace(rs.Grid), bytes.TrimSpace(want)) {
		t.Fatal("cluster grid differs from single-node grid")
	}
	remote := c.Coordinator.Metrics().Counter("explorer.cluster_remote_points").Value()
	if remote == 0 {
		t.Fatal("no points were served by workers")
	}
	var workerJobs int64
	for _, w := range c.Workers {
		workerJobs += int64(w.Server.Metrics().Counter("serve.jobs_done").Value())
	}
	if workerJobs == 0 {
		t.Fatal("worker nodes report no completed jobs")
	}
	t.Logf("remote points: %d, worker jobs: %d", remote, workerJobs)
}

// TestWorkerKillMidSweepRecovers: killing a worker while a streamed
// sweep is in flight loses no points and duplicates none — the grid is
// still byte-identical, every design point completes exactly once, and
// the coordinator's fallback path absorbs the failures.
func TestWorkerKillMidSweepRecovers(t *testing.T) {
	sccsim.ResetTraceCache()
	t.Cleanup(sccsim.ResetTraceCache)
	want := singleNodeGrid(t, 32)

	c := Start(t, Options{Workers: 3, PointTimeoutMS: 5000})
	resp, err := http.Post(c.URL+"/v1/sweep", "application/json",
		strings.NewReader(tinySweepBody(32, `,"stream":true`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	type event struct {
		Event    string           `json:"event"`
		Progress *sccsim.Progress `json:"progress"`
		Result   *rawSweep        `json:"result"`
		Error    string           `json:"error"`
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var (
		terminal  *rawSweep
		progress  int
		seen      = map[string]int{}
		killed    bool
		duplicate string
	)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		switch ev.Event {
		case "progress":
			progress++
			key := fmt.Sprintf("%dP/%dB", ev.Progress.Config.ProcsPerCluster,
				ev.Progress.Config.SCCBytes)
			seen[key]++
			if seen[key] > 1 {
				duplicate = key
			}
			if !killed && progress == 2 {
				// Two points in: the sweep is live. Kill a worker.
				c.Workers[0].Kill()
				killed = true
			}
		case "result":
			terminal = ev.Result
		case "error":
			t.Fatalf("sweep failed after worker kill: %s", ev.Error)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !killed {
		t.Fatal("stream ended before the kill could happen")
	}
	if terminal == nil {
		t.Fatal("stream ended without a terminal result")
	}
	if duplicate != "" {
		t.Fatalf("design point %s completed more than once", duplicate)
	}
	if len(seen) != progress {
		t.Fatalf("%d progress events over %d distinct points", progress, len(seen))
	}
	if !bytes.Equal(bytes.TrimSpace(terminal.Grid), bytes.TrimSpace(want)) {
		t.Fatal("post-kill grid differs from single-node grid")
	}
}

// TestKilledWorkerRejoins: a worker killed during one sweep serves
// points again after Restart — the registry keeps it, the HTTP cluster
// only cools it down.
func TestKilledWorkerRejoins(t *testing.T) {
	sccsim.ResetTraceCache()
	t.Cleanup(sccsim.ResetTraceCache)
	c := Start(t, Options{
		Workers:        1,
		PointTimeoutMS: 2000,
		// A dead fleet means 32 points' worth of failed attempts; keep
		// the retry budget minimal so the local fallback is quick.
		Coordinator: serve.Options{Cluster: serve.ClusterOptions{Retries: 1, BackoffMS: 1}},
	})
	c.Workers[0].Kill()
	// Killed fleet: the sweep still completes, fully local.
	rs := postSweep(t, c.URL, tinySweepBody(33, ""))
	if rs.Status != "done" {
		t.Fatalf("sweep with dead fleet: %+v", rs)
	}
	before := c.Workers[0].Server.Metrics().Counter("serve.jobs_done").Value()
	if before != 0 {
		t.Fatalf("dead worker completed %d jobs", before)
	}

	c.Workers[0].Restart()
	// New experiment (different seed → no result-cache hit). The
	// restarted worker serves again.
	_ = postSweep(t, c.URL, tinySweepBody(34, ""))
	if got := c.Workers[0].Server.Metrics().Counter("serve.jobs_done").Value(); got == 0 {
		t.Fatal("restarted worker served nothing")
	}
}

// TestDistributedDrain: a coordinator draining with async sweeps and
// synchronous searches in flight — all on the cluster path — finishes
// every admitted job; nothing is lost or left undecided.
func TestDistributedDrain(t *testing.T) {
	sccsim.ResetTraceCache()
	t.Cleanup(sccsim.ResetTraceCache)
	c := Start(t, Options{Workers: 2})

	// Async sweeps: accepted then queried after the drain.
	var ids []string
	for seed := int64(41); seed <= 43; seed++ {
		resp, err := http.Post(c.URL+"/v1/sweep", "application/json",
			strings.NewReader(tinySweepBody(seed, `,"wait":false`)))
		if err != nil {
			t.Fatal(err)
		}
		var rs rawSweep
		if err := json.NewDecoder(resp.Body).Decode(&rs); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("async sweep: status %d", resp.StatusCode)
		}
		ids = append(ids, rs.ID)
	}

	// Concurrent synchronous searches racing the drain.
	var wg sync.WaitGroup
	searchStatus := make([]string, 2)
	for i := range searchStatus {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"workload":"multiprog","scale_spec":{"multiprog_refs":6000,"seed":%d},`+
				`"search":{"space":{"procs_per_cluster":[1,2],"scc_bytes":[8192,16384]}}}`, 50+i)
			resp, err := http.Post(c.URL+"/v1/search", "application/json", strings.NewReader(body))
			if err != nil {
				searchStatus[i] = "transport:" + err.Error()
				return
			}
			defer resp.Body.Close()
			var sr struct {
				Status string `json:"status"`
			}
			_ = json.NewDecoder(resp.Body).Decode(&sr)
			searchStatus[i] = sr.Status
		}(i)
	}

	// Give the searches a moment to be admitted, then drain.
	time.Sleep(100 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := c.Coordinator.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()

	for i, st := range searchStatus {
		if st != "done" {
			t.Errorf("search %d ended %q, want done", i, st)
		}
	}
	for _, id := range ids {
		resp, err := http.Get(c.URL + "/v1/sweep/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			Status string          `json:"status"`
			Grid   json.RawMessage `json:"grid"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.Status != "done" || len(st.Grid) == 0 {
			t.Errorf("drained job %s: status %q (grid %d bytes), want done with a grid",
				id, st.Status, len(st.Grid))
		}
	}
}
