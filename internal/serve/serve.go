// Package serve is the sweep-as-a-service layer: an HTTP/JSON front end
// over the sccsim facade that turns the one-shot design-space API into
// a long-running service. POST /v1/sweep and /v1/point accept a
// declarative experiment (workload, scale, simulator options) and
// return the same grids and points the library produces — byte-
// identical JSON — while the service adds what a CLI never needed:
//
//   - a bounded job queue with backpressure: admissions beyond the
//     queue depth are shed with 429 and a Retry-After hint instead of
//     piling up;
//   - in-flight request coalescing: requests are content-keyed with the
//     same SHA-256 digest scheme the trace disk cache uses
//     (trace.KeyDigest), so two identical sweeps arriving together
//     share one engine execution;
//   - an LRU result cache over completed grids, so repeated requests
//     for the same design points are served from memory;
//   - per-job timeouts and cancellation propagated through SweepCtx,
//     and graceful shutdown that drains admitted jobs;
//   - NDJSON progress streaming backed by the engine's Progress hook,
//     and /healthz + /metrics wired to the internal/obs registry.
//
// Simulation results are deterministic, which is what makes coalescing
// and caching sound: any two requests with equal content keys would
// compute identical grids, so sharing one execution is observationally
// equivalent to running both.
package serve

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"sccsim"
	"sccsim/internal/obs"
	"sccsim/internal/trace"
)

// Options configures a Server. The zero value serves with two workers,
// a queue of eight, a 32-entry result cache and a 15-minute job cap.
type Options struct {
	// Workers is the number of jobs executed concurrently (<= 0: 2).
	// Each sweep job itself fans out over the engine's worker pool, so
	// total CPU use is roughly Workers * Parallelism.
	Workers int
	// QueueDepth is the maximum number of admitted jobs waiting for a
	// worker before the server sheds load with 429 (<= 0: 8).
	QueueDepth int
	// CacheEntries bounds the LRU cache of completed results (<= 0: 32).
	CacheEntries int
	// JobTimeout caps any single job's execution; requests may ask for
	// less but never more (<= 0: 15 minutes).
	JobTimeout time.Duration
	// RetryAfter is the backpressure hint returned with 429 responses
	// (<= 0: 1s).
	RetryAfter time.Duration
	// Parallelism is the engine worker-pool size per sweep
	// (0: GOMAXPROCS). Results are identical for every value, which is
	// why it is excluded from the coalescing key.
	Parallelism int
	// TraceCacheDir roots the persistent on-disk trace cache shared by
	// all jobs ("": none).
	TraceCacheDir string
	// Metrics receives the server's HTTP and job metrics plus the
	// engine and simulator counters of every job (nil: the server
	// creates its own registry; /metrics serves it either way).
	Metrics *obs.Registry
	// Logger receives the server's structured request and job log lines,
	// every one stamped with the request ID (nil: no logging — the
	// handlers pay one branch per site).
	Logger *slog.Logger
	// ManifestDir, when set, makes every sweep and search job that
	// creates new work write its versioned run manifest to
	// <ManifestDir>/<job-id>.json,
	// stamped with the request ID that created the job ("": no
	// manifests). The directory is created on server construction.
	ManifestDir string
	// DebugRequests bounds the GET /debug/requests ring buffer of recent
	// requests (<= 0: 64).
	DebugRequests int
	// Cluster configures coordinator/worker mode: the worker registry's
	// heartbeat TTL and retry knobs on a coordinator, the peer trace
	// cache URL on a worker. The zero value is a standalone node.
	Cluster ClusterOptions
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return 2
}

func (o Options) queueDepth() int {
	if o.QueueDepth > 0 {
		return o.QueueDepth
	}
	return 8
}

func (o Options) cacheEntries() int {
	if o.CacheEntries > 0 {
		return o.CacheEntries
	}
	return 32
}

func (o Options) jobTimeout() time.Duration {
	if o.JobTimeout > 0 {
		return o.JobTimeout
	}
	return 15 * time.Minute
}

func (o Options) retryAfter() time.Duration {
	if o.RetryAfter > 0 {
		return o.RetryAfter
	}
	return time.Second
}

// Server is the HTTP simulation service. Create with New, mount as an
// http.Handler, and stop with Shutdown. All exported methods are safe
// for concurrent use.
type Server struct {
	opts    Options
	reg     *obs.Registry
	logger  *slog.Logger
	reqs    *obs.RequestLog
	mux     *http.ServeMux
	baseCtx context.Context
	cancel  context.CancelFunc
	start   time.Time

	sem chan struct{} // worker slots

	mu       sync.Mutex
	draining bool
	jobs     map[string]*job // by id, all states
	inflight map[string]*job // content key -> queued/running job
	queued   int             // admitted jobs not yet holding a worker slot
	cache    *resultCache
	doneIDs  []string // finished job ids, oldest first, for pruning
	seq      uint64

	// Worker registry (cluster mode): registrations double as
	// heartbeats and expire after the cluster TTL. Guarded by its own
	// mutex — registration traffic must never contend with admission.
	workersMu sync.Mutex
	workers   map[string]*workerNode

	// Trace cache stack: traceDC is the node's content-addressed disk
	// cache (what GET /v1/trace/{digest} serves); traceStore is what
	// jobs use — the same disk cache, or a peer-fetching wrapper when
	// ClusterOptions.PeerTraceURL is set. Both nil without a cache dir.
	traceDC    *trace.DiskCache
	traceStore trace.Store

	wg sync.WaitGroup // one per admitted job

	// runJob executes one admitted job under its context, storing the
	// result or error on the job. Tests substitute it to simulate slow
	// or failing work; the default is (*Server).execute.
	runJob func(ctx context.Context, j *job) error
}

// New builds a Server ready to mount.
func New(opts Options) *Server {
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if opts.ManifestDir != "" {
		// Fail early and visibly: an unusable manifest directory would
		// otherwise fail every sweep job at execution time.
		if err := os.MkdirAll(opts.ManifestDir, 0o755); err != nil {
			panic("serve: manifest dir: " + err.Error())
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:     opts,
		reg:      reg,
		logger:   opts.Logger,
		reqs:     obs.NewRequestLog(opts.DebugRequests),
		baseCtx:  ctx,
		cancel:   cancel,
		start:    time.Now(),
		sem:      make(chan struct{}, opts.workers()),
		jobs:     make(map[string]*job),
		inflight: make(map[string]*job),
		cache:    newResultCache(opts.cacheEntries()),
	}
	s.runJob = s.execute
	s.buildTraceStore()
	s.mux = s.buildMux()
	return s
}

// ServeHTTP dispatches to the service's routes (see Routes).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Metrics returns the registry behind /metrics — the server's HTTP and
// job counters plus the engine and simulator metrics of every job.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// admitResult says how a submission resolved.
type admitResult struct {
	j *job
	// source is "miss" (a new job was created), "coalesced" (attached
	// to an identical in-flight job) or "hit" (served from the result
	// cache).
	source string
}

// httpError is an admission failure with its HTTP mapping.
type httpError struct {
	code       int
	msg        string
	retryAfter time.Duration
}

func (e *httpError) Error() string { return e.msg }

// admit runs the service's admission control for one decoded request:
// result-cache lookup, in-flight coalescing, queue-depth backpressure,
// then job creation. newJob builds the job only when admission decides
// to run one.
func (s *Server) admit(key string, newJob func(id string) *job) (admitResult, *httpError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return admitResult{}, &httpError{code: http.StatusServiceUnavailable, msg: "server is draining"}
	}
	if j := s.cache.get(key); j != nil {
		s.reg.Counter("serve.cache_hits").Inc()
		return admitResult{j: j, source: "hit"}, nil
	}
	if j := s.inflight[key]; j != nil {
		j.addCoalesced()
		s.reg.Counter("serve.coalesced").Inc()
		return admitResult{j: j, source: "coalesced"}, nil
	}
	s.reg.Counter("serve.cache_misses").Inc()
	if s.queued >= s.opts.queueDepth() {
		s.reg.Counter("serve.queue_full").Inc()
		return admitResult{}, &httpError{
			code: http.StatusTooManyRequests, msg: "job queue is full",
			retryAfter: s.opts.retryAfter(),
		}
	}
	s.seq++
	id := fmt.Sprintf("j%d-%.8s", s.seq, key)
	j := newJob(id)
	s.jobs[id] = j
	s.inflight[key] = j
	s.queued++
	s.reg.Gauge("serve.jobs_queued").Set(int64(s.queued))
	s.reg.Gauge("serve.inflight_groups").Set(int64(len(s.inflight)))
	s.wg.Add(1)
	go s.run(j)
	return admitResult{j: j, source: "miss"}, nil
}

// run carries one admitted job through its lifecycle: wait for a worker
// slot, execute under the job's deadline, finalize. It is the only
// goroutine that mutates the job's terminal state.
func (s *Server) run(j *job) {
	defer s.wg.Done()
	qs := j.trace.StartSpan("queue_wait")
	select {
	case s.sem <- struct{}{}:
	case <-s.baseCtx.Done():
		// Server force-stopped before the job got a worker.
		qs.End()
		s.dequeue()
		s.finish(j, s.baseCtx.Err())
		return
	}
	qs.End()
	defer func() { <-s.sem }()
	s.dequeue()
	j.setState(jobRunning)
	s.reg.Gauge("serve.jobs_running").Add(1)
	defer s.reg.Gauge("serve.jobs_running").Add(-1)

	timeout := s.opts.jobTimeout()
	if j.timeout > 0 && j.timeout < timeout {
		timeout = j.timeout
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
	defer cancel()
	s.jobLog(j, slog.LevelInfo, "job start")
	start := time.Now()
	sp := j.trace.StartSpan("simulate")
	err := s.runJob(ctx, j)
	sp.End()
	s.reg.Histogram("serve.job_ms", obs.LatencyBucketsMS).
		Observe(uint64(time.Since(start).Milliseconds()))
	if err != nil {
		s.jobLog(j, slog.LevelWarn, "job failed",
			"err", err.Error(), "dur_ms", time.Since(start).Milliseconds())
	} else {
		s.jobLog(j, slog.LevelInfo, "job done",
			"dur_ms", time.Since(start).Milliseconds())
	}
	s.finish(j, err)
}

// dequeue moves a job out of the queued count once it stops waiting.
func (s *Server) dequeue() {
	s.mu.Lock()
	s.queued--
	s.reg.Gauge("serve.jobs_queued").Set(int64(s.queued))
	s.mu.Unlock()
}

// finish publishes a job's terminal state: detach it from the
// coalescing map, cache successful results, prune old finished jobs,
// then wake every waiter. The terminal state is made visible before
// the job enters the result cache, so a cache hit never observes a
// running job, and the done channel closes last.
func (s *Server) finish(j *job, err error) {
	j.terminate(err)
	s.mu.Lock()
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	s.reg.Gauge("serve.inflight_groups").Set(int64(len(s.inflight)))
	if err == nil {
		if evicted := s.cache.put(j.key, j); evicted != nil && evicted != j {
			// Drop evicted results from the id index too, so the jobs
			// map cannot grow without bound under distinct requests.
			delete(s.jobs, evicted.id)
		}
	}
	s.doneIDs = append(s.doneIDs, j.id)
	// Keep a bounded tail of finished jobs findable by id; results
	// pinned by the LRU cache stay until the cache evicts them.
	for len(s.doneIDs) > 4*s.opts.cacheEntries() {
		old := s.doneIDs[0]
		s.doneIDs = s.doneIDs[1:]
		if oj := s.jobs[old]; oj != nil && s.cache.get(oj.key) != oj {
			delete(s.jobs, old)
		}
	}
	// Twin lookup for the live cross-validation gauges: if the other
	// backend's grid for the same experiment is already cached, compare
	// them once this lock is released.
	var twin *job
	if err == nil && j.kind == jobSweep && j.twinKey != "" {
		twin = s.cache.get(j.twinKey)
	}
	s.mu.Unlock()
	if err != nil {
		s.reg.Counter("serve.jobs_failed").Inc()
	} else {
		s.reg.Counter("serve.jobs_done").Inc()
	}
	if twin != nil {
		s.publishCrossval(j, twin)
	}
	close(j.done)
}

// execute is the production job runner: it bridges the job to the
// sccsim facade, fanning engine progress out to the job's subscribers
// and capturing the sweep report for the job's response.
func (s *Server) execute(ctx context.Context, j *job) error {
	opts := j.spec.Opts()
	opts = append(opts, sccsim.WithMetrics(s.reg))
	if j.requestID != "" {
		opts = append(opts, sccsim.WithRequestID(j.requestID))
	}
	if s.logger != nil {
		opts = append(opts, sccsim.WithLogger(s.logger.With("job", j.id)))
	}
	if s.traceStore != nil {
		// The already-open cache stack (possibly peer-fetching) wins
		// over the spec's directory form of the same cache.
		opts = append(opts, sccsim.WithTraceStore(s.traceStore))
	}
	switch j.kind {
	case jobSweep:
		opts = append(opts,
			sccsim.WithProgress(j.broadcast),
			sccsim.WithSweepReport(j.setReport),
		)
		if rem := s.clusterRemote(); rem != nil {
			// Healthy workers registered: shard the sweep across them,
			// with local simulation as the per-point fallback.
			opts = append(opts, sccsim.WithCluster(rem))
		}
		if s.opts.ManifestDir != "" {
			f, err := os.Create(filepath.Join(s.opts.ManifestDir, j.id+".json"))
			if err != nil {
				return err
			}
			defer f.Close()
			opts = append(opts, sccsim.WithManifest(f))
		}
		g, err := sccsim.SweepCtx(ctx, j.workload, opts...)
		if err != nil {
			return err
		}
		j.setGrid(g)
	case jobPoint:
		pt, err := sccsim.Do(ctx, j.workload, opts...)
		if err != nil {
			return err
		}
		j.setPoint(pt)
	case jobSearch:
		if s.opts.ManifestDir != "" {
			f, err := os.Create(filepath.Join(s.opts.ManifestDir, j.id+".json"))
			if err != nil {
				return err
			}
			defer f.Close()
			opts = append(opts, sccsim.WithManifest(f))
		}
		res, err := sccsim.SearchCtx(ctx, j.workload, j.searchSpec, opts...)
		if err != nil {
			return err
		}
		j.setSearch(res)
	}
	return nil
}

// Shutdown gracefully stops the server: new submissions are refused
// with 503 and /healthz reports draining, while every already-admitted
// job — queued or running — is drained to completion. If ctx expires
// first, the remaining jobs are cancelled through their contexts and
// Shutdown returns ctx.Err after they unwind.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.cancel()
		return nil
	case <-ctx.Done():
		s.cancel()
		<-done
		return ctx.Err()
	}
}
