// End-to-end tests of POST /v1/search against the real engine: the
// happy path (an adaptive search on a small space), result-cache reuse,
// coalescing of identical concurrent searches, and the 400 paths. The
// tiny multiprog scale keeps the exact confirmations fast.

package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"sccsim"
)

// tinySearchBody builds a search request on the tiny multiprog scale
// over a small explicit space.
func tinySearchBody(seed int64, search string) string {
	return fmt.Sprintf(`{"workload":"multiprog","scale_spec":{"multiprog_refs":6000,"seed":%d},"search":%s}`, seed, search)
}

const tinySearchSpace = `{"space":{"procs_per_cluster":[1,2],"scc_bytes":[8192,16384]}}`

func postSearch(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/search", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestSearchEndpoint: a search runs to completion, returns the
// exact-confirmed frontier with its stage accounting, and an identical
// repeat is served from the result cache with the same payload.
func TestSearchEndpoint(t *testing.T) {
	sccsim.ResetTraceCache()
	t.Cleanup(sccsim.ResetTraceCache)

	s := New(Options{Workers: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()

	body := tinySearchBody(21, tinySearchSpace)
	resp := postSearch(t, ts.URL, body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var env SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Status != "done" || env.Cache != "miss" || env.Error != "" {
		t.Fatalf("envelope %+v, want done/miss with no error", env)
	}
	if env.Result == nil || len(env.Result.Frontier) == 0 {
		t.Fatalf("result %+v, want a non-empty frontier", env.Result)
	}
	st := env.Result.Stats
	if st.SpaceSize != 4 {
		t.Errorf("space size %d, want 4", st.SpaceSize)
	}
	if st.ExactSims == 0 || st.ExactSims > 4 {
		t.Errorf("exact sims %d, want within (0, 4]", st.ExactSims)
	}
	for _, p := range env.Result.Frontier {
		if p.Cycles == 0 {
			t.Errorf("frontier point %+v has no exact cycles", p)
		}
	}

	// The identical request again: served from the result cache, same
	// job, same result.
	r2 := postSearch(t, ts.URL, body)
	defer r2.Body.Close()
	var env2 SearchResponse
	if err := json.NewDecoder(r2.Body).Decode(&env2); err != nil {
		t.Fatal(err)
	}
	if env2.Cache != "hit" || env2.ID != env.ID {
		t.Errorf("repeat = %s/%s, want hit on job %s", env2.Cache, env2.ID, env.ID)
	}
	if env2.Result == nil || len(env2.Result.Frontier) != len(env.Result.Frontier) {
		t.Errorf("cached result differs: %+v vs %+v", env2.Result, env.Result)
	}

	// A different search spec over the same workload/scale must not
	// share the cache entry.
	r3 := postSearch(t, ts.URL, tinySearchBody(21, `{"space":{"procs_per_cluster":[1],"scc_bytes":[8192,16384]}}`))
	defer r3.Body.Close()
	var env3 SearchResponse
	if err := json.NewDecoder(r3.Body).Decode(&env3); err != nil {
		t.Fatal(err)
	}
	if env3.Cache != "miss" {
		t.Errorf("different spec resolved %q, want miss", env3.Cache)
	}
}

// TestSearchCoalescing: identical concurrent searches share one
// execution, like sweeps.
func TestSearchCoalescing(t *testing.T) {
	sccsim.ResetTraceCache()
	t.Cleanup(sccsim.ResetTraceCache)

	s := New(Options{Workers: 2})
	gate := make(chan struct{})
	exec := s.runJob
	s.runJob = func(ctx context.Context, j *job) error {
		<-gate
		return exec(ctx, j)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	const n = 3
	body := tinySearchBody(22, tinySearchSpace)
	var wg sync.WaitGroup
	envs := make([]SearchResponse, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/search", "application/json", strings.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			errs[i] = json.NewDecoder(resp.Body).Decode(&envs[i])
		}(i)
	}
	waitFor(t, func() bool { return s.reg.Counter("serve.coalesced").Value() == n-1 })
	close(gate)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if got := s.reg.Counter("serve.jobs_done").Value(); got != 1 {
		t.Errorf("serve.jobs_done = %d, want 1 (single coalesced execution)", got)
	}
	sources := map[string]int{}
	for _, e := range envs {
		sources[e.Cache]++
		if e.ID != envs[0].ID {
			t.Errorf("job ID %q differs from %q", e.ID, envs[0].ID)
		}
		if e.Result == nil || len(e.Result.Frontier) != len(envs[0].Result.Frontier) {
			t.Error("coalesced responses returned different frontiers")
		}
	}
	if sources["miss"] != 1 || sources["coalesced"] != n-1 {
		t.Errorf("cache sources = %v, want 1 miss and %d coalesced", sources, n-1)
	}
}

// TestSearchBadRequests: malformed searches fail on the 400 path,
// before touching the job queue.
func TestSearchBadRequests(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	cases := []struct {
		name, body, want string
	}{
		{"unknown workload", `{"workload":"spice","search":{}}`, "workload"},
		{"unknown scale", `{"workload":"mp3d","scale":"huge","search":{}}`, "scale"},
		{"misaligned size", `{"workload":"mp3d","search":{"space":{"scc_bytes":[100]}}}`, "multiple"},
		{"unknown strategy", `{"workload":"mp3d","search":{"strategy":"genetic"}}`, "strategy"},
		{"unknown objective", `{"workload":"mp3d","search":{"objectives":["latency"]}}`, "objective"},
		{"unknown field", `{"workload":"mp3d","search":{},"backend":"exact"}`, "unknown field"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postSearch(t, ts.URL, tc.body)
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			var eb errorBody
			if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(eb.Error, tc.want) {
				t.Errorf("error %q lacks %q", eb.Error, tc.want)
			}
		})
	}
	if got := s.reg.Counter("serve.jobs_done").Value() + s.reg.Counter("serve.jobs_failed").Value(); got != 0 {
		t.Errorf("bad requests reached the job queue: %d jobs ran", got)
	}
}
