package trace

import "io"

// Store is the trace-cache contract the sweep engine consults before
// running a workload generator: Load returns the cached program for a
// key or (nil, nil) on a miss, Put persists one. A Store is an
// optimization layer, never a source of truth — implementations must
// treat corrupt or unreachable entries as misses, and Put failures cost
// only a later regeneration. DiskCache is the single-node
// implementation; PeerCache layers fleet-wide sharing on top of it.
type Store interface {
	// Load returns the cached program for key, or (nil, nil) on a miss.
	Load(key string) (*Program, error)
	// Store persists the program under key.
	Store(key string, p *Program) error
}

// FetchFunc retrieves a peer node's encoded cache entry by content
// digest (KeyDigest of the entry's key), returning a reader over the
// raw .scct bytes. A miss or an unreachable peer is reported as an
// error; the caller treats every failure as a cache miss.
type FetchFunc func(digest string) (io.ReadCloser, error)

// PeerCache is a DiskCache with a fleet behind it: Load consults the
// local content-addressed store first and, on a miss, fetches the entry
// from a peer node by digest (the `GET /v1/trace/{digest}` contract),
// persisting what it gets so the next lookup — and the next process on
// this node — is local. Every peer failure mode (down, slow, serving
// garbage) degrades to a miss: the caller falls back to local
// generation, exactly as if there were no peer. Stores go to the local
// cache only; peers pull, they are never pushed to.
type PeerCache struct {
	local *DiskCache
	fetch FetchFunc

	// onFetch, when non-nil, observes each peer-fetch attempt's outcome
	// (hit = the peer supplied a decodable entry). Tests and metrics
	// hook it; the hot path pays one nil check.
	onFetch func(hit bool)
}

// NewPeerCache wraps a local disk cache with a peer-fetch fallback.
// fetch may be nil, in which case the PeerCache behaves exactly like
// the local cache.
func NewPeerCache(local *DiskCache, fetch FetchFunc) *PeerCache {
	return &PeerCache{local: local, fetch: fetch}
}

// OnFetch installs an observer called after every peer-fetch attempt
// with whether the peer supplied a usable entry. Call before first use;
// the observer must be safe for concurrent use.
func (p *PeerCache) OnFetch(fn func(hit bool)) { p.onFetch = fn }

// Load returns the program for key from the local cache, then from the
// peer, then (nil, nil): a peer miss is indistinguishable from a plain
// cache miss, so callers regenerate exactly as they would single-node.
func (p *PeerCache) Load(key string) (*Program, error) {
	if prog, _ := p.local.Load(key); prog != nil {
		return prog, nil
	}
	if p.fetch == nil {
		return nil, nil
	}
	rc, err := p.fetch(KeyDigest(key))
	if err != nil || rc == nil {
		p.note(false)
		return nil, nil
	}
	prog, err := ReadProgram(rc)
	rc.Close()
	if err != nil {
		p.note(false)
		return nil, nil
	}
	p.note(true)
	// Best-effort: a failed store only costs re-fetching next time.
	_ = p.local.Store(key, prog)
	return prog, nil
}

// Store persists the program in the local cache; peers pull entries on
// demand rather than being pushed to.
func (p *PeerCache) Store(key string, prog *Program) error {
	return p.local.Store(key, prog)
}

// Local returns the underlying disk cache (the store peers fetch from).
func (p *PeerCache) Local() *DiskCache { return p.local }

func (p *PeerCache) note(hit bool) {
	if p.onFetch != nil {
		p.onFetch(hit)
	}
}

// Interface conformance: both cache layers satisfy Store.
var (
	_ Store = (*DiskCache)(nil)
	_ Store = (*PeerCache)(nil)
)
