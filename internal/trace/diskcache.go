package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// DiskCache is a content-keyed on-disk store of trace programs in the
// io.go binary format, so repeated sweeps across processes skip trace
// generation entirely. Callers build the key from everything that
// determines a trace's content — workload, processor count, the full
// problem scale (seed included), and FormatVersion so a format change
// invalidates old entries instead of tripping the version check at load
// time. The key is an opaque string here; the file name is a sanitized
// prefix of it (for humans listing the directory) plus a SHA-256 digest
// (for uniqueness).
//
// The cache is safe for concurrent use within and across processes:
// stores write to a temporary file and rename it into place, so readers
// never see a partial entry, and a lost race just rewrites identical
// bytes.
type DiskCache struct {
	dir string
}

// NewDiskCache opens (creating if needed) a disk cache rooted at dir and
// verifies it is writable, so a bad -trace-cache path fails at startup
// rather than after the first expensive generation.
func NewDiskCache(dir string) (*DiskCache, error) {
	if dir == "" {
		return nil, errors.New("trace: empty disk-cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace: disk cache: %w", err)
	}
	probe, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		return nil, fmt.Errorf("trace: disk cache %s not writable: %w", dir, err)
	}
	probe.Close()
	os.Remove(probe.Name())
	return &DiskCache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *DiskCache) Dir() string { return c.dir }

// KeyDigest returns the cache's content hash of a key: the hex SHA-256
// digest of the key string. It is the same digest DiskCache embeds in
// its file names, exported so other layers (e.g. the HTTP service's
// request coalescing) can key on identical content the same way.
func KeyDigest(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// path maps a key to its file. The layout is content-addressed: the
// file name ends in the full hex SHA-256 digest of the key (KeyDigest),
// so any node holding the same key writes the same name and a peer can
// locate the entry knowing only the digest (see OpenDigest). The
// sanitized prefix exists so `ls` on the cache directory is readable.
func (c *DiskCache) path(key string) string {
	prefix := make([]byte, 0, 40)
	for i := 0; i < len(key) && len(prefix) < 40; i++ {
		b := key[i]
		switch {
		case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b >= '0' && b <= '9',
			b == '.', b == '_', b == '-':
			prefix = append(prefix, b)
		default:
			prefix = append(prefix, '-')
		}
	}
	return filepath.Join(c.dir, string(prefix)+"-"+KeyDigest(key)+".scct")
}

// OpenDigest returns a reader over the raw encoded entry whose content
// digest (KeyDigest of its key) is digest, or fs.ErrNotExist when the
// cache holds no such entry. It is the serving side of the fleet-shared
// cache: a peer that knows only the digest — the `/v1/trace/{digest}`
// endpoint — streams the entry without ever learning the key. The
// digest must be the full 64-hex-char SHA-256 form; anything else is
// rejected before touching the filesystem.
func (c *DiskCache) OpenDigest(digest string) (io.ReadCloser, error) {
	if len(digest) != 2*sha256.Size {
		return nil, fmt.Errorf("trace: digest %q: %w", digest, fs.ErrNotExist)
	}
	for _, b := range []byte(digest) {
		if (b < '0' || b > '9') && (b < 'a' || b > 'f') {
			return nil, fmt.Errorf("trace: digest %q: %w", digest, fs.ErrNotExist)
		}
	}
	matches, err := filepath.Glob(filepath.Join(c.dir, "*-"+digest+".scct"))
	if err != nil || len(matches) == 0 {
		return nil, fs.ErrNotExist
	}
	return os.Open(matches[0])
}

// Load returns the cached program for key, or (nil, nil) on a miss. A
// corrupt, truncated, or unreadable entry is a miss too — the cache is
// an optimization, never a source of errors — and the bad file is
// removed so the next Store replaces it.
func (c *DiskCache) Load(key string) (*Program, error) {
	path := c.path(key)
	f, err := os.Open(path)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			os.Remove(path)
		}
		return nil, nil
	}
	defer f.Close()
	p, err := ReadProgram(f)
	if err != nil {
		os.Remove(path)
		return nil, nil
	}
	return p, nil
}

// Store writes the program under key atomically (temp file + rename).
// Entries are content-keyed, so two stores of one key always carry
// identical bytes: when the entry already exists — another goroutine,
// process, or node sharing the volume won the temp+rename race — the
// second store is a no-op win, not a rewrite, and a rename that fails
// only because the winner's entry landed first still reports success.
func (c *DiskCache) Store(key string, p *Program) error {
	path := c.path(key)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	tmp, err := os.CreateTemp(c.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("trace: disk cache store: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := p.EncodeTo(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("trace: disk cache store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("trace: disk cache store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		if _, serr := os.Stat(path); serr == nil {
			return nil
		}
		return fmt.Errorf("trace: disk cache store: %w", err)
	}
	return nil
}
