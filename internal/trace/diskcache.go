package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// DiskCache is a content-keyed on-disk store of trace programs in the
// io.go binary format, so repeated sweeps across processes skip trace
// generation entirely. Callers build the key from everything that
// determines a trace's content — workload, processor count, the full
// problem scale (seed included), and FormatVersion so a format change
// invalidates old entries instead of tripping the version check at load
// time. The key is an opaque string here; the file name is a sanitized
// prefix of it (for humans listing the directory) plus a SHA-256 digest
// (for uniqueness).
//
// The cache is safe for concurrent use within and across processes:
// stores write to a temporary file and rename it into place, so readers
// never see a partial entry, and a lost race just rewrites identical
// bytes.
type DiskCache struct {
	dir string
}

// NewDiskCache opens (creating if needed) a disk cache rooted at dir and
// verifies it is writable, so a bad -trace-cache path fails at startup
// rather than after the first expensive generation.
func NewDiskCache(dir string) (*DiskCache, error) {
	if dir == "" {
		return nil, errors.New("trace: empty disk-cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace: disk cache: %w", err)
	}
	probe, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		return nil, fmt.Errorf("trace: disk cache %s not writable: %w", dir, err)
	}
	probe.Close()
	os.Remove(probe.Name())
	return &DiskCache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *DiskCache) Dir() string { return c.dir }

// KeyDigest returns the cache's content hash of a key: the hex SHA-256
// digest of the key string. It is the same digest DiskCache embeds in
// its file names, exported so other layers (e.g. the HTTP service's
// request coalescing) can key on identical content the same way.
func KeyDigest(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// path maps a key to its file. The digest alone guarantees uniqueness;
// the sanitized prefix exists so `ls` on the cache directory is
// readable.
func (c *DiskCache) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	prefix := make([]byte, 0, 40)
	for i := 0; i < len(key) && len(prefix) < 40; i++ {
		b := key[i]
		switch {
		case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b >= '0' && b <= '9',
			b == '.', b == '_', b == '-':
			prefix = append(prefix, b)
		default:
			prefix = append(prefix, '-')
		}
	}
	return filepath.Join(c.dir, string(prefix)+"-"+hex.EncodeToString(sum[:8])+".scct")
}

// Load returns the cached program for key, or (nil, nil) on a miss. A
// corrupt, truncated, or unreadable entry is a miss too — the cache is
// an optimization, never a source of errors — and the bad file is
// removed so the next Store replaces it.
func (c *DiskCache) Load(key string) (*Program, error) {
	path := c.path(key)
	f, err := os.Open(path)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			os.Remove(path)
		}
		return nil, nil
	}
	defer f.Close()
	p, err := ReadProgram(f)
	if err != nil {
		os.Remove(path)
		return nil, nil
	}
	return p, nil
}

// Store writes the program under key atomically (temp file + rename).
func (c *DiskCache) Store(key string, p *Program) error {
	tmp, err := os.CreateTemp(c.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("trace: disk cache store: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := p.EncodeTo(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("trace: disk cache store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("trace: disk cache store: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		return fmt.Errorf("trace: disk cache store: %w", err)
	}
	return nil
}
