package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzTraceRoundTrip feeds arbitrary bytes to the binary trace reader.
// Garbage must fail cleanly (error, no panic, no unbounded allocation —
// the length guards in io.go); anything the reader accepts must survive
// an encode/decode round trip unchanged, which pins the format against
// asymmetric reader/writer drift.
func FuzzTraceRoundTrip(f *testing.F) {
	var valid bytes.Buffer
	if err := compileFixture().EncodeTo(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())/2]) // truncated mid-stream
	f.Add(valid.Bytes()[:3])                    // truncated magic
	bad := append([]byte(nil), valid.Bytes()...)
	copy(bad, "XXXX") // bad magic
	f.Add(bad)
	f.Add([]byte{})
	f.Add([]byte("SCCT")) // magic only, missing header

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadProgram(bytes.NewReader(data))
		if err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		var out bytes.Buffer
		if err := p.EncodeTo(&out); err != nil {
			t.Fatalf("accepted program failed to re-encode: %v", err)
		}
		p2, err := ReadProgram(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded program failed to read back: %v", err)
		}
		if p2.Name != p.Name || p2.Procs != p.Procs || !reflect.DeepEqual(p2.Phases, p.Phases) {
			t.Fatal("round trip changed the program")
		}
	})
}
