package trace

import (
	"testing"
	"testing/quick"

	"sccsim/internal/mem"
	"sccsim/internal/sysmodel"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(4)
	b.Compute(5)
	b.Read(0x100)
	b.Write(0x200)
	refs := b.Finish()
	if len(refs) != 2 {
		t.Fatalf("got %d refs, want 2", len(refs))
	}
	if refs[0] != (mem.Ref{Addr: 0x100, Kind: mem.Read, Gap: 5}) {
		t.Errorf("refs[0] = %v", refs[0])
	}
	if refs[1] != (mem.Ref{Addr: 0x200, Kind: mem.Write, Gap: 0}) {
		t.Errorf("refs[1] = %v", refs[1])
	}
}

func TestBuilderLargeGapSpillsIdle(t *testing.T) {
	b := NewBuilder(4)
	b.Compute(200_000)
	b.Read(0x100)
	refs := b.Finish()
	var total uint64
	memRefs := 0
	for _, r := range refs {
		total += uint64(r.Gap)
		if r.Kind != mem.Idle {
			memRefs++
			if r.Kind != mem.Read {
				t.Errorf("unexpected kind %v", r.Kind)
			}
		}
	}
	if total != 200_000 {
		t.Errorf("total gap = %d, want 200000", total)
	}
	if memRefs != 1 {
		t.Errorf("memory refs = %d, want 1", memRefs)
	}
}

func TestBuilderTrailingComputeBecomesIdle(t *testing.T) {
	b := NewBuilder(1)
	b.Read(0x40)
	b.Compute(123)
	refs := b.Finish()
	if len(refs) != 2 || refs[1].Kind != mem.Idle || refs[1].Gap != 123 {
		t.Errorf("trailing compute not preserved: %v", refs)
	}
}

func TestBuilderNegativeComputeIgnored(t *testing.T) {
	b := NewBuilder(1)
	b.Compute(-5)
	b.Read(0x40)
	if refs := b.Finish(); refs[0].Gap != 0 {
		t.Errorf("negative compute produced gap %d", refs[0].Gap)
	}
}

func TestReadWriteRegion(t *testing.T) {
	b := NewBuilder(8)
	b.ReadRegion(0x104, 40) // spans lines 0x100..0x12f -> 3 lines
	refs := b.Finish()
	if len(refs) != 3 {
		t.Fatalf("ReadRegion emitted %d refs, want 3", len(refs))
	}
	want := []uint32{0x100, 0x110, 0x120}
	for i, r := range refs {
		if r.Addr != want[i] || r.Kind != mem.Read {
			t.Errorf("refs[%d] = %v, want read of %#x", i, r, want[i])
		}
	}

	b = NewBuilder(8)
	b.WriteRegion(0x200, sysmodel.LineSize)
	refs = b.Finish()
	if len(refs) != 1 || refs[0].Kind != mem.Write {
		t.Errorf("WriteRegion = %v", refs)
	}
}

func TestFinishResetsBuilder(t *testing.T) {
	b := NewBuilder(1)
	b.Read(0x40)
	b.Finish()
	if b.Len() != 0 {
		t.Errorf("Len after Finish = %d, want 0", b.Len())
	}
}

func validProgram() *Program {
	return &Program{
		Name:  "test",
		Procs: 2,
		Phases: []Phase{
			{Name: "a", Streams: [][]mem.Ref{
				{{Addr: 0x100, Kind: mem.Read}},
				{{Addr: 0x200, Kind: mem.Write}},
			}},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := validProgram().Validate(); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	p := validProgram()
	p.Procs = 0
	if p.Validate() == nil {
		t.Error("zero-proc program accepted")
	}

	p = validProgram()
	p.Phases[0].Streams = p.Phases[0].Streams[:1]
	if p.Validate() == nil {
		t.Error("stream-count mismatch accepted")
	}

	p = validProgram()
	p.Phases[0].Streams[0][0].Addr = 0
	if p.Validate() == nil {
		t.Error("zero-address memory ref accepted")
	}

	p = validProgram()
	p.Phases[0].Streams[0][0].Kind = mem.Kind(7)
	if p.Validate() == nil {
		t.Error("bad kind accepted")
	}
}

func TestProgramRefs(t *testing.T) {
	p := validProgram()
	p.Phases[0].Streams[0] = append(p.Phases[0].Streams[0], mem.Ref{Kind: mem.Idle, Gap: 10})
	if got := p.Refs(); got != 2 {
		t.Errorf("Refs() = %d, want 2 (Idle excluded)", got)
	}
}

func TestAnalyze(t *testing.T) {
	p := &Program{
		Name:  "t",
		Procs: 2,
		Phases: []Phase{{Name: "x", Streams: [][]mem.Ref{
			{
				{Addr: 0x100, Kind: mem.Read, Gap: 10},
				{Addr: 0x110, Kind: mem.Write},
				{Addr: 0x300, Kind: mem.Read},
			},
			{
				{Addr: 0x100, Kind: mem.Read, Gap: 5},
				{Addr: 0x110, Kind: mem.Read},
				{Kind: mem.Idle, Gap: 100},
			},
		}}},
	}
	pr := Analyze(p)
	if pr.Reads != 4 || pr.Writes != 1 {
		t.Errorf("reads/writes = %d/%d, want 4/1", pr.Reads, pr.Writes)
	}
	if pr.ComputeCycles != 115 {
		t.Errorf("compute = %d, want 115", pr.ComputeCycles)
	}
	if pr.FootprintLines != 3 {
		t.Errorf("footprint = %d lines, want 3", pr.FootprintLines)
	}
	if pr.SharedLines != 2 {
		t.Errorf("shared = %d lines, want 2 (0x100 and 0x110)", pr.SharedLines)
	}
	if pr.WriteSharedLines != 1 {
		t.Errorf("write-shared = %d lines, want 1 (0x110)", pr.WriteSharedLines)
	}
	if pr.PerProc[0].FootprintLines != 3 || pr.PerProc[1].FootprintLines != 2 {
		t.Errorf("per-proc footprints = %d,%d want 3,2",
			pr.PerProc[0].FootprintLines, pr.PerProc[1].FootprintLines)
	}
	if pr.WriteFrac() != 0.2 {
		t.Errorf("WriteFrac = %v, want 0.2", pr.WriteFrac())
	}
	if pr.SharedFrac() != 2.0/3.0 {
		t.Errorf("SharedFrac = %v, want 2/3", pr.SharedFrac())
	}
	if pr.FootprintBytes() != 3*sysmodel.LineSize {
		t.Errorf("FootprintBytes = %d", pr.FootprintBytes())
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	p := &Program{Name: "empty", Procs: 1, Phases: nil}
	pr := Analyze(p)
	if pr.RefTotal() != 0 || pr.WriteFrac() != 0 || pr.SharedFrac() != 0 {
		t.Errorf("empty program profile = %+v", pr)
	}
}

// Property: Builder preserves the exact sequence of addresses and the
// exact total compute regardless of how compute is chunked.
func TestBuilderPreservesWorkProperty(t *testing.T) {
	f := func(ops []uint32) bool {
		b := NewBuilder(len(ops))
		var wantAddrs []uint32
		var wantCompute uint64
		for _, op := range ops {
			if op%3 == 0 {
				n := int(op % 100_000)
				b.Compute(n)
				wantCompute += uint64(n)
			} else {
				addr := op | 1 // never zero
				b.Read(addr)
				wantAddrs = append(wantAddrs, addr)
			}
		}
		refs := b.Finish()
		var gotAddrs []uint32
		var gotCompute uint64
		for _, r := range refs {
			gotCompute += uint64(r.Gap)
			if r.Kind != mem.Idle {
				gotAddrs = append(gotAddrs, r.Addr)
			}
		}
		if gotCompute != wantCompute || len(gotAddrs) != len(wantAddrs) {
			return false
		}
		for i := range gotAddrs {
			if gotAddrs[i] != wantAddrs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
