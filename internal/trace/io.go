package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"sccsim/internal/mem"
)

// Binary trace serialization, so generated traces can be stored, diffed,
// and replayed by external tooling. The format is little-endian:
//
//	magic "SCCT" | version u32 | nameLen u32 | name | procs u32 |
//	phases u32 | per phase: nameLen u32 | name | per proc:
//	refs u32 | refs x 8 bytes (addr u32, gap u16, kind u8, pad u8)

const (
	traceMagic   = "SCCT"
	traceVersion = 1
)

// FormatVersion is the on-disk trace format version. Cache keys include
// it so a format change invalidates previously stored traces instead of
// tripping the version check at load time.
const FormatVersion = traceVersion

// EncodeTo serializes the program.
func (p *Program) EncodeTo(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	writeU32 := func(v uint32) { binary.Write(bw, binary.LittleEndian, v) } //nolint:errcheck
	writeStr := func(s string) {
		writeU32(uint32(len(s)))
		bw.WriteString(s) //nolint:errcheck
	}
	writeU32(traceVersion)
	writeStr(p.Name)
	writeU32(uint32(p.Procs))
	writeU32(uint32(len(p.Phases)))
	buf := make([]byte, 8)
	for _, ph := range p.Phases {
		writeStr(ph.Name)
		for _, st := range ph.Streams {
			writeU32(uint32(len(st)))
			for _, r := range st {
				binary.LittleEndian.PutUint32(buf[0:4], r.Addr)
				binary.LittleEndian.PutUint16(buf[4:6], r.Gap)
				buf[6] = byte(r.Kind)
				buf[7] = 0
				if _, err := bw.Write(buf); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadProgram deserializes a program written by EncodeTo and validates it.
func ReadProgram(r io.Reader) (*Program, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	readStr := func() (string, error) {
		n, err := readU32()
		if err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", fmt.Errorf("trace: unreasonable string length %d", n)
		}
		b := make([]byte, n)
		_, err = io.ReadFull(br, b)
		return string(b), err
	}

	ver, err := readU32()
	if err != nil {
		return nil, err
	}
	if ver != traceVersion {
		return nil, fmt.Errorf("trace: version %d, want %d", ver, traceVersion)
	}
	name, err := readStr()
	if err != nil {
		return nil, err
	}
	procs, err := readU32()
	if err != nil {
		return nil, err
	}
	if procs == 0 || procs > 1<<16 {
		return nil, fmt.Errorf("trace: unreasonable processor count %d", procs)
	}
	nPhases, err := readU32()
	if err != nil {
		return nil, err
	}
	if nPhases > 1<<20 {
		return nil, fmt.Errorf("trace: unreasonable phase count %d", nPhases)
	}

	p := &Program{Name: name, Procs: int(procs)}
	buf := make([]byte, 8)
	for i := uint32(0); i < nPhases; i++ {
		phName, err := readStr()
		if err != nil {
			return nil, err
		}
		ph := Phase{Name: phName, Streams: make([][]mem.Ref, procs)}
		for pr := uint32(0); pr < procs; pr++ {
			n, err := readU32()
			if err != nil {
				return nil, err
			}
			if n > 1<<28 {
				return nil, fmt.Errorf("trace: unreasonable stream length %d", n)
			}
			st := make([]mem.Ref, n)
			for j := uint32(0); j < n; j++ {
				if _, err := io.ReadFull(br, buf); err != nil {
					return nil, err
				}
				st[j] = mem.Ref{
					Addr: binary.LittleEndian.Uint32(buf[0:4]),
					Gap:  binary.LittleEndian.Uint16(buf[4:6]),
					Kind: mem.Kind(buf[6]),
				}
			}
			ph.Streams[pr] = st
		}
		p.Phases = append(p.Phases, ph)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("trace: deserialized program invalid: %w", err)
	}
	return p, nil
}
