package trace

import (
	"reflect"
	"testing"

	"sccsim/internal/mem"
	"sccsim/internal/sysmodel"
)

// compileFixture builds a small two-phase, two-processor program with
// idle refs, uneven streams, and a known footprint.
func compileFixture() *Program {
	return &Program{
		Name:  "fixture",
		Procs: 2,
		Phases: []Phase{
			{Name: "build", Streams: [][]mem.Ref{
				{
					{Addr: 0x100, Kind: mem.Read, Gap: 3},
					{Kind: mem.Idle, Gap: 7},
					{Addr: 0x2000, Kind: mem.Write},
				},
				{
					{Addr: 0x110, Kind: mem.Read},
				},
			}},
			{Name: "solve", Streams: [][]mem.Ref{
				{},
				{
					{Addr: 0x40, Kind: mem.Lock},
					{Addr: 0x9000, Kind: mem.Write, Gap: 1},
					{Addr: 0x40, Kind: mem.Unlock},
				},
			}},
		},
	}
}

func TestCompileLayoutAndMetadata(t *testing.T) {
	p := compileFixture()
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != p.Name || c.Procs != p.Procs {
		t.Fatalf("header mismatch: %q/%d vs %q/%d", c.Name, c.Procs, p.Name, p.Procs)
	}
	if got, want := len(c.Arena), 3+1+0+3; got != want {
		t.Fatalf("arena has %d refs, want %d", got, want)
	}
	// Streams must mirror the program's slices value-for-value and be
	// views into the arena, laid out phase-major then processor-major.
	off := 0
	for i, ph := range p.Phases {
		if c.PhaseNames[i] != ph.Name {
			t.Errorf("phase %d name %q, want %q", i, c.PhaseNames[i], ph.Name)
		}
		for pr, st := range ph.Streams {
			got := c.Streams[i][pr]
			if !reflect.DeepEqual(append([]mem.Ref{}, got...), append([]mem.Ref{}, st...)) {
				t.Errorf("phase %d proc %d stream differs from source", i, pr)
			}
			if len(got) > 0 && &got[0] != &c.Arena[off] {
				t.Errorf("phase %d proc %d stream is not an arena view at offset %d", i, pr, off)
			}
			off += len(st)
		}
	}
	// Footprint metadata: 6 non-idle refs, max line from 0x9000.
	if c.Refs() != 6 {
		t.Errorf("Refs() = %d, want 6", c.Refs())
	}
	if want := sysmodel.LineIndex(0x9000); c.MaxLineIndex() != want {
		t.Errorf("MaxLineIndex() = %d, want %d", c.MaxLineIndex(), want)
	}
	if got := c.StreamRefs[0][0]; got != 2 {
		t.Errorf("StreamRefs[0][0] = %d, want 2 (idle excluded)", got)
	}
	if got := c.StreamRefs[1][1]; got != 3 {
		t.Errorf("StreamRefs[1][1] = %d, want 3", got)
	}
}

func TestCompileMemoizes(t *testing.T) {
	p := compileFixture()
	c1, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("second Compile returned a different object; memo not used")
	}
}

func TestProgramRefsAgreesWithCompiled(t *testing.T) {
	p := compileFixture()
	slow := p.Refs() // pre-compile: counting pass
	if _, err := Compile(p); err != nil {
		t.Fatal(err)
	}
	if fast := p.Refs(); fast != slow {
		t.Fatalf("Refs() changed after compile: %d vs %d", fast, slow)
	}
}

func TestCompileRejectsInvalidProgram(t *testing.T) {
	p := &Program{Name: "bad", Procs: 2, Phases: []Phase{
		{Name: "p", Streams: [][]mem.Ref{{}}}, // 1 stream, want 2
	}}
	if _, err := Compile(p); err == nil {
		t.Fatal("Compile accepted a program Validate rejects")
	}
	if p.compiled.Load() != nil {
		t.Fatal("failed Compile populated the memo")
	}
}
