// Package trace is the bridge between the workload generators and the
// multiprocessor simulator — the role Tango-Lite plays in the paper:
// "we use Tango-Lite to supply properly interleaved reference events to a
// detailed multiprocessor cache simulator" (Section 2.2.2).
//
// A workload produces a Program: an ordered list of Phases separated by
// barriers. Within a phase every logical processor has an independent
// reference stream; the simulator replays the streams concurrently,
// merging them in per-processor virtual-time order, and synchronizes all
// processors at each phase boundary. This phase/barrier structure is how
// the SPLASH applications are written (ANL macro BARRIER), and it is what
// exposes load imbalance: a processor whose stream ends early idles at the
// barrier until the slowest processor arrives.
package trace

import (
	"fmt"
	"sync/atomic"

	"sccsim/internal/mem"
	"sccsim/internal/sysmodel"
)

// Phase is one barrier-delimited section of a parallel program.
type Phase struct {
	// Name identifies the phase for reporting ("force", "update", ...).
	Name string
	// Streams[p] is processor p's reference stream for this phase. A nil
	// or empty stream means the processor has no work in the phase.
	Streams [][]mem.Ref
}

// Program is a complete workload trace: what one run of the application
// does on every processor. A Program is immutable once its generator
// returns it: the simulator, the analyzer and the sweep engine only read
// it, so one Program may back any number of concurrent simulations (the
// explorer trace cache relies on this).
type Program struct {
	// Name identifies the workload ("barnes-hut", "mp3d", ...).
	Name string
	// Procs is the number of logical processors the trace was generated
	// for. Every phase has exactly Procs streams.
	Procs int
	// Phases in execution order.
	Phases []Phase

	// compiled memoizes the packed form built by Compile. Only Compile
	// writes it (and only after successful validation); read-only
	// operations like Validate and Refs never populate it, so they remain
	// side-effect free. Programs must be shared by pointer — the atomic
	// makes the memo safe under the concurrent sweep engine.
	compiled atomic.Pointer[Compiled]
}

// Validate checks structural invariants: every phase has one stream per
// processor, memory references carry addresses, and every lock acquired
// in a phase is released within the same phase by the same processor
// (holding a lock across a barrier would deadlock the replay).
func (p *Program) Validate() error {
	if p.Procs < 1 {
		return fmt.Errorf("trace: program %q has %d processors", p.Name, p.Procs)
	}
	for i, ph := range p.Phases {
		if len(ph.Streams) != p.Procs {
			return fmt.Errorf("trace: program %q phase %d (%s) has %d streams, want %d",
				p.Name, i, ph.Name, len(ph.Streams), p.Procs)
		}
		for pr, st := range ph.Streams {
			held := map[uint32]bool{}
			for j, r := range st {
				switch r.Kind {
				case mem.Read, mem.Write:
					if r.Addr == 0 {
						return fmt.Errorf("trace: program %q phase %d proc %d ref %d: zero address",
							p.Name, i, pr, j)
					}
				case mem.Lock:
					if r.Addr == 0 {
						return fmt.Errorf("trace: program %q phase %d proc %d ref %d: zero lock address",
							p.Name, i, pr, j)
					}
					if held[r.Addr] {
						return fmt.Errorf("trace: program %q phase %d proc %d ref %d: lock %#x re-acquired while held",
							p.Name, i, pr, j, r.Addr)
					}
					held[r.Addr] = true
				case mem.Unlock:
					if !held[r.Addr] {
						return fmt.Errorf("trace: program %q phase %d proc %d ref %d: unlock %#x without lock",
							p.Name, i, pr, j, r.Addr)
					}
					delete(held, r.Addr)
				case mem.Idle:
					// Idle refs carry no address.
				default:
					return fmt.Errorf("trace: program %q phase %d proc %d ref %d: bad kind %d",
						p.Name, i, pr, j, r.Kind)
				}
			}
			if len(held) > 0 {
				return fmt.Errorf("trace: program %q phase %d proc %d: %d lock(s) held at the barrier",
					p.Name, i, pr, len(held))
			}
		}
	}
	return nil
}

// Refs returns the total number of memory references (excluding Idle) in
// the program. If the program has been compiled the precomputed total is
// returned; otherwise the streams are counted.
func (p *Program) Refs() uint64 {
	if c := p.compiled.Load(); c != nil {
		return c.refs
	}
	var n uint64
	for _, ph := range p.Phases {
		for _, st := range ph.Streams {
			for _, r := range st {
				if r.Kind != mem.Idle {
					n++
				}
			}
		}
	}
	return n
}

// Builder accumulates one processor's reference stream for one phase.
// Workload code calls Compute/Read/Write as it executes its algorithm;
// the builder packs the result into compact refs.
type Builder struct {
	refs []mem.Ref
	gap  uint64
}

// NewBuilder returns a Builder with capacity for sizeHint refs.
func NewBuilder(sizeHint int) *Builder {
	return &Builder{refs: make([]mem.Ref, 0, sizeHint)}
}

// Compute records n non-memory instructions of work.
func (b *Builder) Compute(n int) {
	if n > 0 {
		b.gap += uint64(n)
	}
}

// flushGap emits Idle refs until the pending gap fits in a uint16.
func (b *Builder) flushGap() uint16 {
	for b.gap > 0xffff {
		b.refs = append(b.refs, mem.Ref{Kind: mem.Idle, Gap: 0xffff})
		b.gap -= 0xffff
	}
	g := uint16(b.gap)
	b.gap = 0
	return g
}

// Read records a load of addr.
func (b *Builder) Read(addr uint32) {
	g := b.flushGap()
	b.refs = append(b.refs, mem.Ref{Addr: addr, Kind: mem.Read, Gap: g})
}

// Write records a store to addr.
func (b *Builder) Write(addr uint32) {
	g := b.flushGap()
	b.refs = append(b.refs, mem.Ref{Addr: addr, Kind: mem.Write, Gap: g})
}

// Lock records a test-and-set acquisition of the lock word at addr.
func (b *Builder) Lock(addr uint32) {
	g := b.flushGap()
	b.refs = append(b.refs, mem.Ref{Addr: addr, Kind: mem.Lock, Gap: g})
}

// Unlock records a release of the lock word at addr.
func (b *Builder) Unlock(addr uint32) {
	g := b.flushGap()
	b.refs = append(b.refs, mem.Ref{Addr: addr, Kind: mem.Unlock, Gap: g})
}

// ReadRegion records loads covering every line of the size bytes at addr —
// a convenience for streaming through a record or array slice.
func (b *Builder) ReadRegion(addr, size uint32) {
	for a := sysmodel.LineAddr(addr); a < addr+size; a += sysmodel.LineSize {
		b.Read(a)
	}
}

// WriteRegion records stores covering every line of the size bytes at addr.
func (b *Builder) WriteRegion(addr, size uint32) {
	for a := sysmodel.LineAddr(addr); a < addr+size; a += sysmodel.LineSize {
		b.Write(a)
	}
}

// Finish returns the accumulated stream. Any trailing compute is emitted
// as Idle refs so barrier timing sees it.
func (b *Builder) Finish() []mem.Ref {
	if b.gap > 0 {
		for b.gap > 0xffff {
			b.refs = append(b.refs, mem.Ref{Kind: mem.Idle, Gap: 0xffff})
			b.gap -= 0xffff
		}
		b.refs = append(b.refs, mem.Ref{Kind: mem.Idle, Gap: uint16(b.gap)})
		b.gap = 0
	}
	r := b.refs
	b.refs = nil
	return r
}

// Len returns the number of refs accumulated so far (excluding pending
// compute).
func (b *Builder) Len() int { return len(b.refs) }
