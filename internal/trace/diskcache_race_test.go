package trace

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestDiskCacheConcurrentStoreLoad hammers one key from parallel
// writers and readers (run under -race via `make test-race`). The
// temp-file-plus-rename protocol promises readers never observe a torn
// entry: every Load is either a clean miss or the complete program.
func TestDiskCacheConcurrentStoreLoad(t *testing.T) {
	dc := mustCache(t)
	p := compileFixture()
	const key = "scct1-race-fixture"

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := dc.Store(key, p); err != nil {
					errs <- "store: " + err.Error()
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got, err := dc.Load(key)
				if err != nil {
					errs <- "load: " + err.Error()
					return
				}
				if got == nil {
					continue // clean miss: first store not landed yet
				}
				if got.Name != p.Name || got.Procs != p.Procs ||
					!reflect.DeepEqual(got.Phases, p.Phases) {
					errs <- "load observed a torn or foreign entry"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	// After the dust settles: exactly one generation of the entry on
	// disk — concurrent stores must not leak temp files or duplicates.
	entries, err := os.ReadDir(dc.Dir())
	if err != nil {
		t.Fatal(err)
	}
	var kept []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Errorf("leaked temp file %s", e.Name())
			continue
		}
		kept = append(kept, e.Name())
	}
	want := filepath.Base(dc.path(key))
	if len(kept) != 1 || kept[0] != want {
		t.Errorf("cache directory holds %v, want exactly [%s]", kept, want)
	}

	got, err := dc.Load(key)
	if err != nil || got == nil {
		t.Fatalf("final Load failed: %v, %v", got, err)
	}
}

// TestDiskCacheSharedVolumeCollision models two nodes sharing one cache
// volume (the fleet deployment): two independent DiskCache handles
// rooted at the same directory race temp+rename stores of one digest.
// Both stores must succeed — entries are content-keyed, so whoever
// loses the rename race holds identical bytes — and the entry must load
// cleanly afterwards.
func TestDiskCacheSharedVolumeCollision(t *testing.T) {
	dir := t.TempDir()
	a, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := compileFixture()
	const key = "scct1-shared-volume-fixture"
	for round := 0; round < 20; round++ {
		os.Remove(a.path(key))
		var wg sync.WaitGroup
		errs := make(chan error, 2)
		for _, dc := range []*DiskCache{a, b} {
			wg.Add(1)
			go func(dc *DiskCache) {
				defer wg.Done()
				if err := dc.Store(key, p); err != nil {
					errs <- err
				}
			}(dc)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatalf("round %d: colliding store failed: %v", round, err)
		}
		got, err := a.Load(key)
		if err != nil || got == nil {
			t.Fatalf("round %d: entry unreadable after collision: %v, %v", round, got, err)
		}
	}
}

// TestDiskCacheSecondStoreIsNoOp: once an entry exists, a repeat store
// must not rewrite it — the second writer wins by doing nothing. Pinned
// by planting a sentinel mtime and checking it survives the store.
func TestDiskCacheSecondStoreIsNoOp(t *testing.T) {
	dc := mustCache(t)
	p := compileFixture()
	const key = "scct1-noop-fixture"
	if err := dc.Store(key, p); err != nil {
		t.Fatal(err)
	}
	sentinel := time.Date(2001, 2, 3, 4, 5, 6, 0, time.UTC)
	if err := os.Chtimes(dc.path(key), sentinel, sentinel); err != nil {
		t.Fatal(err)
	}
	if err := dc.Store(key, p); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(dc.path(key))
	if err != nil {
		t.Fatal(err)
	}
	if !fi.ModTime().Equal(sentinel) {
		t.Fatalf("second store rewrote the entry (mtime %v, want sentinel %v)", fi.ModTime(), sentinel)
	}
}
