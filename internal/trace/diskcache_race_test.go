package trace

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestDiskCacheConcurrentStoreLoad hammers one key from parallel
// writers and readers (run under -race via `make test-race`). The
// temp-file-plus-rename protocol promises readers never observe a torn
// entry: every Load is either a clean miss or the complete program.
func TestDiskCacheConcurrentStoreLoad(t *testing.T) {
	dc := mustCache(t)
	p := compileFixture()
	const key = "scct1-race-fixture"

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := dc.Store(key, p); err != nil {
					errs <- "store: " + err.Error()
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got, err := dc.Load(key)
				if err != nil {
					errs <- "load: " + err.Error()
					return
				}
				if got == nil {
					continue // clean miss: first store not landed yet
				}
				if got.Name != p.Name || got.Procs != p.Procs ||
					!reflect.DeepEqual(got.Phases, p.Phases) {
					errs <- "load observed a torn or foreign entry"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	// After the dust settles: exactly one generation of the entry on
	// disk — concurrent stores must not leak temp files or duplicates.
	entries, err := os.ReadDir(dc.Dir())
	if err != nil {
		t.Fatal(err)
	}
	var kept []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Errorf("leaked temp file %s", e.Name())
			continue
		}
		kept = append(kept, e.Name())
	}
	want := filepath.Base(dc.path(key))
	if len(kept) != 1 || kept[0] != want {
		t.Errorf("cache directory holds %v, want exactly [%s]", kept, want)
	}

	got, err := dc.Load(key)
	if err != nil || got == nil {
		t.Fatalf("final Load failed: %v, %v", got, err)
	}
}
