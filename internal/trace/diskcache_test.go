package trace

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func mustCache(t *testing.T) *DiskCache {
	t.Helper()
	dc, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return dc
}

func TestDiskCacheRoundTrip(t *testing.T) {
	dc := mustCache(t)
	p := compileFixture()
	const key = "scct1-fixture-p2-seed42"
	if err := dc.Store(key, p); err != nil {
		t.Fatal(err)
	}
	got, err := dc.Load(key)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("Load missed a just-stored key")
	}
	if got.Name != p.Name || got.Procs != p.Procs || !reflect.DeepEqual(got.Phases, p.Phases) {
		t.Fatal("loaded program differs from stored program")
	}
}

func TestDiskCacheMissIsNilNil(t *testing.T) {
	dc := mustCache(t)
	p, err := dc.Load("never-stored")
	if err != nil {
		t.Fatalf("miss returned error: %v", err)
	}
	if p != nil {
		t.Fatal("miss returned a program")
	}
}

func TestDiskCacheCorruptEntryIsMissAndRemoved(t *testing.T) {
	dc := mustCache(t)
	const key = "scct1-corrupt"
	if err := dc.Store(key, compileFixture()); err != nil {
		t.Fatal(err)
	}
	// Truncate the stored entry mid-stream.
	path := dc.path(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := dc.Load(key)
	if err != nil || p != nil {
		t.Fatalf("corrupt entry: got (%v, %v), want (nil, nil)", p, err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt entry was not removed")
	}
}

func TestDiskCacheKeySeparation(t *testing.T) {
	dc := mustCache(t)
	p := compileFixture()
	if err := dc.Store("key-a", p); err != nil {
		t.Fatal(err)
	}
	if got, _ := dc.Load("key-b"); got != nil {
		t.Fatal("different key hit key-a's entry")
	}
}

func TestDiskCacheFileNames(t *testing.T) {
	dc := mustCache(t)
	if err := dc.Store("scct1/odd key*", compileFixture()); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dc.Dir(), "*.scct"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("want exactly one .scct entry, got %v (%v)", entries, err)
	}
	base := filepath.Base(entries[0])
	if strings.ContainsAny(base, "/*? ") {
		t.Fatalf("unsanitized file name %q", base)
	}
	if !strings.HasPrefix(base, "scct1-odd-key-") {
		t.Fatalf("file name %q does not carry the sanitized key prefix", base)
	}
}

func TestNewDiskCacheRejectsBadDir(t *testing.T) {
	if _, err := NewDiskCache(""); err == nil {
		t.Fatal("empty dir accepted")
	}
	// A path whose parent is a regular file cannot be created.
	file := filepath.Join(t.TempDir(), "plain")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDiskCache(filepath.Join(file, "sub")); err == nil {
		t.Fatal("dir under a regular file accepted")
	}
}
