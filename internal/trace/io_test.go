package trace

import (
	"bytes"
	"strings"
	"testing"

	"sccsim/internal/mem"
)

func roundTrip(t *testing.T, p *Program) *Program {
	t.Helper()
	var buf bytes.Buffer
	if err := p.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProgram(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestIORoundTrip(t *testing.T) {
	p := &Program{
		Name:  "roundtrip",
		Procs: 2,
		Phases: []Phase{
			{Name: "a", Streams: [][]mem.Ref{
				{{Addr: 0x100, Kind: mem.Read, Gap: 5}, {Kind: mem.Idle, Gap: 100}},
				{{Addr: 0x200, Kind: mem.Write}},
			}},
			{Name: "b", Streams: [][]mem.Ref{
				{{Addr: 0x300, Kind: mem.Lock}, {Addr: 0x300, Kind: mem.Unlock}},
				nil,
			}},
		},
	}
	got := roundTrip(t, p)
	if got.Name != p.Name || got.Procs != p.Procs || len(got.Phases) != len(p.Phases) {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range p.Phases {
		if got.Phases[i].Name != p.Phases[i].Name {
			t.Errorf("phase %d name %q", i, got.Phases[i].Name)
		}
		for pr := range p.Phases[i].Streams {
			a, b := p.Phases[i].Streams[pr], got.Phases[i].Streams[pr]
			if len(a) != len(b) {
				t.Fatalf("phase %d proc %d: lengths %d vs %d", i, pr, len(a), len(b))
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("phase %d proc %d ref %d: %v vs %v", i, pr, j, a[j], b[j])
				}
			}
		}
	}
}

func TestIORejectsGarbage(t *testing.T) {
	if _, err := ReadProgram(strings.NewReader("not a trace")); err == nil {
		t.Error("accepted garbage")
	}
	if _, err := ReadProgram(strings.NewReader("SCCT")); err == nil {
		t.Error("accepted truncated header")
	}
	// Wrong version.
	var buf bytes.Buffer
	buf.WriteString("SCCT")
	buf.Write([]byte{99, 0, 0, 0})
	if _, err := ReadProgram(&buf); err == nil {
		t.Error("accepted wrong version")
	}
}

func TestIORejectsTruncatedBody(t *testing.T) {
	p := &Program{Name: "t", Procs: 1, Phases: []Phase{
		{Name: "x", Streams: [][]mem.Ref{{{Addr: 0x100, Kind: mem.Read}}}},
	}}
	var buf bytes.Buffer
	if err := p.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadProgram(bytes.NewReader(cut)); err == nil {
		t.Error("accepted truncated body")
	}
}

func TestIOInvalidProgramRejectedOnRead(t *testing.T) {
	// A program with a zero address fails Validate on read.
	p := &Program{Name: "bad", Procs: 1, Phases: []Phase{
		{Name: "x", Streams: [][]mem.Ref{{{Addr: 0, Kind: mem.Read}}}},
	}}
	var buf bytes.Buffer
	if err := p.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadProgram(&buf); err == nil {
		t.Error("deserialized an invalid program without error")
	}
}
