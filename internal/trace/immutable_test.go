package trace

import (
	"reflect"
	"testing"

	"sccsim/internal/mem"
)

// TestProgramReadOnlyInvariants: Validate, Refs and Analyze are the
// operations the sweep engine's shared-trace cache runs against one
// Program from many goroutines; none of them may mutate it.
func TestProgramReadOnlyInvariants(t *testing.T) {
	prog := testProgram()
	snapshot := cloneProgram(prog)

	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	if prog.Refs() == 0 {
		t.Fatal("empty program")
	}
	if Analyze(prog) == nil {
		t.Fatal("nil profile")
	}

	if !reflect.DeepEqual(prog, snapshot) {
		t.Error("Validate/Refs/Analyze mutated the program")
	}
}

func testProgram() *Program {
	mk := func(seed uint32) []mem.Ref {
		b := NewBuilder(16)
		b.Compute(5)
		b.Read(0x1000 + seed*64)
		b.Write(0x2000 + seed*64)
		b.Lock(0x3000)
		b.Read(0x1000 + seed*64)
		b.Unlock(0x3000)
		b.Compute(3)
		return b.Finish()
	}
	return &Program{
		Name:  "immutable-test",
		Procs: 2,
		Phases: []Phase{
			{Name: "a", Streams: [][]mem.Ref{mk(0), mk(1)}},
			{Name: "b", Streams: [][]mem.Ref{mk(2), mk(3)}},
		},
	}
}

func cloneProgram(p *Program) *Program {
	c := &Program{Name: p.Name, Procs: p.Procs, Phases: make([]Phase, len(p.Phases))}
	for i, ph := range p.Phases {
		cp := Phase{Name: ph.Name, Streams: make([][]mem.Ref, len(ph.Streams))}
		for j, st := range ph.Streams {
			cp.Streams[j] = append([]mem.Ref(nil), st...)
		}
		c.Phases[i] = cp
	}
	return c
}
