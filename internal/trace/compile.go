package trace

import (
	"sccsim/internal/mem"
	"sccsim/internal/sysmodel"
)

// Compiled is the packed, immutable execution form of a Program: every
// reference stream copied into one contiguous arena, with per-phase /
// per-processor views into it and the footprint metadata the simulator
// needs to size its coherence state up front. Compiling costs one linear
// pass and one allocation; replaying a compiled program walks a single
// cache-friendly slice instead of chasing per-stream allocations, and
// the precomputed totals let Program.Refs and the presence-table sizing
// skip their own passes over the trace.
//
// A Compiled is as immutable as the Program it came from: the simulator
// and the sweep engine only read it, so one compiled program may back any
// number of concurrent simulations.
type Compiled struct {
	// Name and Procs mirror the source program's header.
	Name  string
	Procs int
	// Arena holds every ref of every stream, laid out phase-major then
	// processor-major — the order replay consumes them in.
	Arena []mem.Ref
	// PhaseNames[i] is phase i's name.
	PhaseNames []string
	// Streams[i][p] is phase i / processor p's stream as a subslice of
	// Arena. It is shaped exactly like Program.Phases[i].Streams, so
	// consumers switch between the two forms without code changes.
	Streams [][][]mem.Ref
	// StreamRefs[i][p] counts the memory references (excluding Idle) in
	// phase i / processor p's stream.
	StreamRefs [][]uint64

	refs    uint64
	maxLine uint32
}

// Refs returns the total number of memory references (excluding Idle),
// precomputed at compile time.
func (c *Compiled) Refs() uint64 { return c.refs }

// MaxLineIndex returns the largest cache-line index any memory reference
// in the program touches. The simulator uses it to size the coherence
// bus's direct-indexed presence table (see snoop.Bus.ReserveLines).
func (c *Compiled) MaxLineIndex() uint32 { return c.maxLine }

// Compile validates and packs the program. The result is memoized on the
// Program (safely for concurrent callers), so every design point of a
// sweep that shares one cached trace also shares one compiled form and
// pays for validation and packing exactly once.
func Compile(p *Program) (*Compiled, error) {
	if c := p.compiled.Load(); c != nil {
		return c, nil
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	total := 0
	for _, ph := range p.Phases {
		for _, st := range ph.Streams {
			total += len(st)
		}
	}
	c := &Compiled{
		Name:       p.Name,
		Procs:      p.Procs,
		Arena:      make([]mem.Ref, 0, total),
		PhaseNames: make([]string, len(p.Phases)),
		Streams:    make([][][]mem.Ref, len(p.Phases)),
		StreamRefs: make([][]uint64, len(p.Phases)),
	}
	for i, ph := range p.Phases {
		c.PhaseNames[i] = ph.Name
		c.Streams[i] = make([][]mem.Ref, len(ph.Streams))
		c.StreamRefs[i] = make([]uint64, len(ph.Streams))
		for pr, st := range ph.Streams {
			start := len(c.Arena)
			c.Arena = append(c.Arena, st...)
			// Full-capacity subslice so an (impossible) append by a
			// consumer cannot bleed into the next stream.
			c.Streams[i][pr] = c.Arena[start:len(c.Arena):len(c.Arena)]
			var n uint64
			for _, r := range st {
				if r.Kind == mem.Idle {
					continue
				}
				n++
				if li := sysmodel.LineIndex(r.Addr); li > c.maxLine {
					c.maxLine = li
				}
			}
			c.StreamRefs[i][pr] = n
			c.refs += n
		}
	}
	// First compile wins; concurrent compilers of the same program
	// produce identical packings, so either result is fine to share.
	if !p.compiled.CompareAndSwap(nil, c) {
		return p.compiled.Load(), nil
	}
	return c, nil
}
