package trace

import (
	"bytes"
	"errors"
	"io"
	"io/fs"
	"testing"
)

// fetchFrom builds a FetchFunc backed by another DiskCache — the
// in-process stand-in for the `GET /v1/trace/{digest}` peer endpoint.
func fetchFrom(peer *DiskCache) FetchFunc {
	return func(digest string) (io.ReadCloser, error) {
		return peer.OpenDigest(digest)
	}
}

func TestOpenDigestRoundTrip(t *testing.T) {
	dc := mustCache(t)
	p := compileFixture()
	const key = "scct1-digest-fixture"
	if err := dc.Store(key, p); err != nil {
		t.Fatal(err)
	}
	rc, err := dc.OpenDigest(KeyDigest(key))
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	got, err := ReadProgram(rc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != p.Name || got.Procs != p.Procs {
		t.Fatal("digest-addressed entry differs from stored program")
	}
}

func TestOpenDigestRejectsBadDigests(t *testing.T) {
	dc := mustCache(t)
	if err := dc.Store("scct1-x", compileFixture()); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{
		"", "deadbeef", // too short
		KeyDigest("scct1-x") + "00",     // too long
		"../../../../etc/passwd",        // traversal
		"ZZ" + KeyDigest("scct1-x")[2:], // non-hex
		"*" + KeyDigest("scct1-x")[1:],  // glob metachar
		KeyDigest("never-stored"),       // well-formed miss
	} {
		if _, err := dc.OpenDigest(bad); !errors.Is(err, fs.ErrNotExist) {
			t.Errorf("OpenDigest(%q) = %v, want fs.ErrNotExist", bad, err)
		}
	}
}

func TestPeerCacheFetchesAndPersists(t *testing.T) {
	coordinator := mustCache(t)
	p := compileFixture()
	const key = "scct1-peer-fixture"
	if err := coordinator.Store(key, p); err != nil {
		t.Fatal(err)
	}
	local := mustCache(t)
	fetches := 0
	pc := NewPeerCache(local, func(digest string) (io.ReadCloser, error) {
		fetches++
		return coordinator.OpenDigest(digest)
	})
	var hits, misses int
	pc.OnFetch(func(hit bool) {
		if hit {
			hits++
		} else {
			misses++
		}
	})

	got, err := pc.Load(key)
	if err != nil || got == nil {
		t.Fatalf("peer load failed: %v, %v", got, err)
	}
	if fetches != 1 || hits != 1 || misses != 0 {
		t.Fatalf("fetches=%d hits=%d misses=%d, want 1/1/0", fetches, hits, misses)
	}
	// The fetched entry is persisted locally: the second load never
	// touches the peer.
	if got, _ := pc.Load(key); got == nil {
		t.Fatal("second load missed")
	}
	if fetches != 1 {
		t.Fatalf("second load refetched from peer (%d fetches)", fetches)
	}
	// And the next process on this node sees it too.
	if got, _ := local.Load(key); got == nil {
		t.Fatal("fetched entry was not persisted in the local cache")
	}
}

func TestPeerCacheDegradesToMiss(t *testing.T) {
	local := mustCache(t)
	const key = "scct1-degrade-fixture"

	// Peer down: Load is a miss, never an error.
	pc := NewPeerCache(local, func(string) (io.ReadCloser, error) {
		return nil, errors.New("connection refused")
	})
	if got, err := pc.Load(key); got != nil || err != nil {
		t.Fatalf("down peer: got (%v, %v), want (nil, nil)", got, err)
	}

	// Peer serving garbage: still a miss, and nothing is persisted.
	pc = NewPeerCache(local, func(string) (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader([]byte("not a trace"))), nil
	})
	if got, err := pc.Load(key); got != nil || err != nil {
		t.Fatalf("garbage peer: got (%v, %v), want (nil, nil)", got, err)
	}
	if got, _ := local.Load(key); got != nil {
		t.Fatal("garbage peer entry was persisted locally")
	}

	// No peer at all behaves like the plain local cache.
	pc = NewPeerCache(local, nil)
	if got, err := pc.Load(key); got != nil || err != nil {
		t.Fatalf("nil fetch: got (%v, %v), want (nil, nil)", got, err)
	}
	if err := pc.Store(key, compileFixture()); err != nil {
		t.Fatal(err)
	}
	if got, _ := pc.Load(key); got == nil {
		t.Fatal("stored entry not loadable through PeerCache")
	}
}
