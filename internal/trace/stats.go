package trace

import (
	"sccsim/internal/mem"
	"sccsim/internal/sysmodel"
)

// Profile summarizes a Program's reference behaviour. The scctrace tool
// prints it, and the workload tests use it to check that each application
// has the footprint and sharing character the paper attributes to it.
type Profile struct {
	// Procs is the processor count the program was generated for.
	Procs int
	// Reads and Writes count memory references by kind.
	Reads, Writes uint64
	// LockOps counts Lock and Unlock references.
	LockOps uint64
	// ComputeCycles is the total non-memory work encoded in the program.
	ComputeCycles uint64
	// FootprintLines is the number of distinct cache lines touched.
	FootprintLines int
	// SharedLines is the number of distinct lines touched by more than
	// one processor.
	SharedLines int
	// WriteSharedLines is the number of distinct lines written by at
	// least one processor and touched by at least one other — the lines
	// that generate coherence traffic.
	WriteSharedLines int
	// PerProc[p] summarizes processor p's own stream.
	PerProc []ProcProfile
}

// ProcProfile is one processor's share of the program.
type ProcProfile struct {
	Reads, Writes  uint64
	ComputeCycles  uint64
	FootprintLines int
}

// FootprintBytes returns the footprint in bytes.
func (p *Profile) FootprintBytes() int { return p.FootprintLines * sysmodel.LineSize }

// RefTotal returns reads+writes.
func (p *Profile) RefTotal() uint64 { return p.Reads + p.Writes }

// WriteFrac returns the fraction of memory references that are writes.
func (p *Profile) WriteFrac() float64 {
	t := p.RefTotal()
	if t == 0 {
		return 0
	}
	return float64(p.Writes) / float64(t)
}

// SharedFrac returns the fraction of footprint lines touched by more than
// one processor.
func (p *Profile) SharedFrac() float64 {
	if p.FootprintLines == 0 {
		return 0
	}
	return float64(p.SharedLines) / float64(p.FootprintLines)
}

// Analyze computes the Profile of a program. It is O(total refs) and
// allocates one map entry per distinct line.
func Analyze(p *Program) *Profile {
	type lineInfo struct {
		touchMask uint64 // bit per processor (procs > 64 collapse onto bit 63)
		written   bool
	}
	lines := make(map[uint32]*lineInfo, 1<<16)
	prof := &Profile{Procs: p.Procs, PerProc: make([]ProcProfile, p.Procs)}
	perProcLines := make([]map[uint32]struct{}, p.Procs)
	for i := range perProcLines {
		perProcLines[i] = make(map[uint32]struct{}, 1<<12)
	}

	for _, ph := range p.Phases {
		for pr, st := range ph.Streams {
			pp := &prof.PerProc[pr]
			bit := uint64(1) << uint(min(pr, 63))
			for _, r := range st {
				pp.ComputeCycles += uint64(r.Gap)
				prof.ComputeCycles += uint64(r.Gap)
				if r.Kind == mem.Idle {
					continue
				}
				li := sysmodel.LineIndex(r.Addr)
				info := lines[li]
				if info == nil {
					info = &lineInfo{}
					lines[li] = info
				}
				info.touchMask |= bit
				perProcLines[pr][li] = struct{}{}
				switch r.Kind {
				case mem.Read:
					pp.Reads++
					prof.Reads++
				case mem.Write:
					pp.Writes++
					prof.Writes++
					info.written = true
				case mem.Lock, mem.Unlock:
					prof.LockOps++
					info.written = true
				}
			}
		}
	}

	prof.FootprintLines = len(lines)
	for _, info := range lines {
		if info.touchMask&(info.touchMask-1) != 0 { // more than one bit set
			prof.SharedLines++
			if info.written {
				prof.WriteSharedLines++
			}
		}
	}
	for pr := range perProcLines {
		prof.PerProc[pr].FootprintLines = len(perProcLines[pr])
	}
	return prof
}
