package pipeline

import (
	"math"
	"testing"
	"testing/quick"
)

func TestProfilesValid(t *testing.T) {
	for name, p := range Profiles {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Profile{
		{LoadFrac: -0.1},
		{LoadFrac: 1.2},
		{LoadFrac: 0.2, UseDist: [2]float64{0.7, 0.6}},
		{LoadFrac: 0.2, UseDist: [2]float64{-0.1, 0.2}},
		{LoadFrac: 0.2, BaseStall: -1},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("bad profile %d accepted", i)
		}
	}
}

func TestBaselineIsOne(t *testing.T) {
	for name, p := range Profiles {
		if got := p.RelTime(2); got != 1.0 {
			t.Errorf("%s: RelTime(2) = %v, want 1.0", name, got)
		}
	}
}

func TestTable5Reproduction(t *testing.T) {
	// Paper Table 5, tolerance ±0.015.
	want := map[string][2]float64{
		"barnes-hut": {1.06, 1.13},
		"mp3d":       {1.07, 1.14},
		"cholesky":   {1.07, 1.16},
		"multiprog":  {1.08, 1.17},
	}
	for name, w := range want {
		p := Profiles[name]
		f3, f4 := p.RelTime(3), p.RelTime(4)
		if math.Abs(f3-w[0]) > 0.015 {
			t.Errorf("%s: RelTime(3) = %.3f, paper %.2f", name, f3, w[0])
		}
		if math.Abs(f4-w[1]) > 0.015 {
			t.Errorf("%s: RelTime(4) = %.3f, paper %.2f", name, f4, w[1])
		}
	}
}

func TestMonotoneInLatency(t *testing.T) {
	for name, p := range Profiles {
		if !(p.CPI(2) < p.CPI(3) && p.CPI(3) < p.CPI(4)) {
			t.Errorf("%s: CPI not increasing in latency: %v %v %v",
				name, p.CPI(2), p.CPI(3), p.CPI(4))
		}
	}
}

func TestLatencyBelowTwoClamps(t *testing.T) {
	p := Profiles["mp3d"]
	if p.CPI(1) != p.CPI(2) {
		t.Error("latency < 2 should clamp to the base pipeline")
	}
}

func TestRelTimeForFallback(t *testing.T) {
	if RelTimeFor("unknown", 3) != Profiles["multiprog"].RelTime(3) {
		t.Error("unknown workload did not fall back to multiprog")
	}
	if RelTimeFor("barnes-hut", 4) != Profiles["barnes-hut"].RelTime(4) {
		t.Error("known workload not resolved")
	}
}

func TestSimulateMatchesModel(t *testing.T) {
	// The closed-form CPI sums each load's stall independently, so it is
	// an upper bound: in the executed pipeline, one load's stall cycles
	// let other pending loads complete. The Monte Carlo result must sit
	// at or slightly below the model, within a few percent.
	for name, p := range Profiles {
		for _, lat := range []int{2, 3, 4} {
			model := p.CPI(lat)
			sim := Simulate(p, lat, 300_000, 42)
			if sim > model*1.01 {
				t.Errorf("%s lat %d: simulated CPI %.4f exceeds model bound %.4f", name, lat, sim, model)
			}
			if math.Abs(model-sim)/model > 0.06 {
				t.Errorf("%s lat %d: model CPI %.4f vs simulated %.4f (> 6%% apart)", name, lat, model, sim)
			}
		}
	}
}

// Property: RelTime is >= 1, increasing in latency, and bounded by the
// worst case (every load stalls latency-2 extra cycles).
func TestRelTimeBoundsProperty(t *testing.T) {
	f := func(lf, u1, u2, bs uint8) bool {
		p := Profile{
			LoadFrac:  float64(lf%100) / 100,
			BaseStall: float64(bs%30) / 100,
		}
		a := float64(u1%100) / 100
		b := float64(u2%100) / 100 * (1 - a)
		p.UseDist = [2]float64{a, b}
		if p.Validate() != nil {
			return true // skip invalid corners
		}
		f3, f4 := p.RelTime(3), p.RelTime(4)
		worst4 := (p.CPI(2) + 2*p.LoadFrac) / p.CPI(2)
		return f3 >= 1 && f4 >= f3 && f4 <= worst4+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
