// Package pipeline models the processor pipeline cost of deeper load
// latencies (Section 5.1 of the paper). The paper uses pixstats to
// compare uniprocessor execution times with a perfect memory system for
// 2-, 3- and 4-cycle loads; we model the same thing analytically — a
// five-stage in-order pipeline (Figure 7) with load-use interlocks — and
// cross-check it with a small Monte Carlo pipeline simulator.
//
// A load issued at cycle t produces its value for a consumer at
// t + latency; an instruction that uses the value d instructions later
// stalls max(0, (latency-1) - d) cycles. The per-benchmark instruction
// mixes (load fraction and load-use distance distribution) play the role
// of the paper's pixstats measurements: they describe code compiled with
// scheduling for 3-cycle loads, which is why the 4-cycle numbers are
// pessimistic (exactly as the paper notes).
package pipeline

import (
	"fmt"

	"sccsim/internal/synth"
)

// Profile is a benchmark's instruction mix, the pixstats analogue.
type Profile struct {
	// Name identifies the benchmark.
	Name string
	// LoadFrac is loads per instruction.
	LoadFrac float64
	// UseDist[d-1] is the probability that a load's first consumer is d
	// instructions later, for d = 1, 2; the remainder is d >= 3.
	UseDist [2]float64
	// BaseStall is the non-load stall contribution to CPI (branch
	// delays, multicycle FP), independent of load latency.
	BaseStall float64
}

// Validate reports whether the profile's probabilities are sensible.
func (p Profile) Validate() error {
	if p.LoadFrac < 0 || p.LoadFrac > 1 {
		return fmt.Errorf("pipeline: LoadFrac = %v", p.LoadFrac)
	}
	if p.UseDist[0] < 0 || p.UseDist[1] < 0 || p.UseDist[0]+p.UseDist[1] > 1 {
		return fmt.Errorf("pipeline: UseDist = %v", p.UseDist)
	}
	if p.BaseStall < 0 {
		return fmt.Errorf("pipeline: BaseStall = %v", p.BaseStall)
	}
	return nil
}

// CPI returns cycles per instruction on a perfect memory system with the
// given load-to-use latency (2 = the base five-stage pipeline).
func (p Profile) CPI(loadLatency int) float64 {
	if loadLatency < 2 {
		loadLatency = 2
	}
	// A load whose first use is d instructions later stalls
	// max(0, (latency-1) - d) cycles.
	stall := 0.0
	probs := []float64{p.UseDist[0], p.UseDist[1], 1 - p.UseDist[0] - p.UseDist[1]}
	for d := 1; d <= 3; d++ {
		s := float64(loadLatency-1) - float64(d)
		if s > 0 {
			stall += probs[d-1] * s
		}
	}
	return 1 + p.BaseStall + p.LoadFrac*stall
}

// RelTime returns execution time with the given load latency relative to
// the 2-cycle baseline — the numbers of the paper's Table 5.
func (p Profile) RelTime(loadLatency int) float64 {
	return p.CPI(loadLatency) / p.CPI(2)
}

// Profiles holds the instruction mixes of the four benchmarks, calibrated
// the way pixstats measured the paper's binaries (compiled with
// scheduling for 3-cycle loads). They reproduce Table 5:
//
//	                  2 cyc  3 cyc  4 cyc
//	Barnes-Hut        1.00   1.06   1.13
//	MP3D              1.00   1.07   1.14
//	Cholesky          1.00   1.07   1.16
//	Multiprogramming  1.00   1.08   1.17
//
// The small P(d=2) values reflect scheduling for 3-cycle loads: the
// compiler has already pushed most consumers at least two instructions
// away, so the residual penalty comes mostly from unschedulable
// next-instruction uses.
var Profiles = map[string]Profile{
	"barnes-hut": {Name: "barnes-hut", LoadFrac: 0.24, UseDist: [2]float64{0.280, 0.047}, BaseStall: 0.12},
	"mp3d":       {Name: "mp3d", LoadFrac: 0.25, UseDist: [2]float64{0.311, 0.010}, BaseStall: 0.11},
	"cholesky":   {Name: "cholesky", LoadFrac: 0.27, UseDist: [2]float64{0.290, 0.083}, BaseStall: 0.12},
	"multiprog":  {Name: "multiprog", LoadFrac: 0.26, UseDist: [2]float64{0.338, 0.042}, BaseStall: 0.10},
}

// RelTimeFor returns the Table 5 factor for a workload name and load
// latency, falling back to the multiprogramming profile for unknown
// names (it is the most conservative).
func RelTimeFor(workload string, loadLatency int) float64 {
	p, ok := Profiles[workload]
	if !ok {
		p = Profiles["multiprog"]
	}
	return p.RelTime(loadLatency)
}

// Simulate runs a Monte Carlo five-stage pipeline over n synthetic
// instructions drawn from the profile and returns the measured CPI. It
// exists to cross-validate the closed-form model: both implement the
// same interlock, one by expectation, one by execution.
func Simulate(p Profile, loadLatency int, n int, seed int64) float64 {
	if loadLatency < 2 {
		loadLatency = 2
	}
	rng := synth.NewRNG(seed)
	cycle := 0.0
	// ready[i mod 4] is the cycle at which the value consumed by
	// instruction i becomes available (use distances are at most 3).
	var ready [4]float64
	for i := 0; i < n; i++ {
		cycle += 1 // issue one instruction per cycle
		// Non-load base stalls, applied stochastically.
		if rng.Float64() < p.BaseStall {
			cycle += 1
		}
		if r := ready[i%4]; cycle < r {
			cycle = r
		}
		ready[i%4] = 0
		if rng.Float64() < p.LoadFrac {
			// Value ready loadLatency-1 cycles after this one (EX-to-use
			// distance in the five-stage pipeline).
			avail := cycle + float64(loadLatency-1)
			u := rng.Float64()
			d := 3
			switch {
			case u < p.UseDist[0]:
				d = 1
			case u < p.UseDist[0]+p.UseDist[1]:
				d = 2
			}
			slot := (i + d) % 4
			if avail > ready[slot] {
				ready[slot] = avail
			}
		}
	}
	return cycle / float64(n)
}
