// Package synth provides the deterministic random-number generator and
// the reusable synthetic memory-access-pattern primitives used by the
// workload generators. Everything here is seeded and reproducible: the
// same seed always yields the same stream, independent of Go version
// (unlike math/rand's unspecified algorithms).
package synth

import "math"

// RNG is a small, fast, deterministic generator (splitmix64). The zero
// value is a valid generator seeded with 0.
type RNG struct {
	state uint64
}

// NewRNG returns a generator with the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{state: uint64(seed)}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("synth: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// UnitVector3 returns a uniformly distributed point on the unit sphere.
func (r *RNG) UnitVector3() [3]float64 {
	for {
		x := 2*r.Float64() - 1
		y := 2*r.Float64() - 1
		z := 2*r.Float64() - 1
		s := x*x + y*y + z*z
		if s > 1e-12 && s <= 1 {
			inv := 1 / math.Sqrt(s)
			return [3]float64{x * inv, y * inv, z * inv}
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Geometric returns a sample from a geometric distribution with success
// probability p (mean 1/p - 1 failures); it returns values >= 0.
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p >= 1 {
		panic("synth: Geometric needs 0 < p < 1")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return int(math.Log(u) / math.Log(1-p))
}
