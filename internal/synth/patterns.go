package synth

import (
	"fmt"

	"sccsim/internal/mem"
	"sccsim/internal/sysmodel"
)

// AddrSource produces a stream of byte addresses with some locality
// structure. The multiprogramming benchmark kernels compose these to get
// the reference behaviour of their real counterparts.
type AddrSource interface {
	// Next returns the next address in the stream.
	Next() uint32
}

// Scan sweeps a region with a fixed stride, wrapping at the end — the
// behaviour of array and matrix kernels (wave5's field sweeps, sc's
// column recalculation).
type Scan struct {
	Region mem.Region
	// Stride is the step in bytes; 0 means one line.
	Stride uint32
	pos    uint32
}

// NewScan returns a scanning source over r with the given stride.
func NewScan(r mem.Region, stride uint32) *Scan {
	if stride == 0 {
		stride = sysmodel.LineSize
	}
	return &Scan{Region: r, Stride: stride}
}

// Next implements AddrSource.
func (s *Scan) Next() uint32 {
	addr := s.Region.Start + s.pos
	s.pos += s.Stride
	if s.pos >= s.Region.Size {
		s.pos = 0
	}
	return addr
}

// StackDist generates addresses with an LRU stack-distance profile: most
// references reuse recently-touched lines (geometric depth distribution),
// a tunable fraction touches new lines. This is the classic working-set
// model; the effective hot-set size is controlled by the reuse-depth
// parameter, and the total footprint by the region size.
type StackDist struct {
	rng *RNG
	// stack holds line addresses, most recently used first.
	stack []uint32
	// region is the footprint new lines are drawn from.
	region mem.Region
	// pNew is the probability a reference touches a never-before-used
	// (or long-evicted) line.
	pNew float64
	// pDepth parameterizes the geometric reuse-depth distribution;
	// larger pDepth means tighter locality (shallower reuse).
	pDepth float64
	// maxStack bounds remembered history; reuse beyond it falls back to
	// a uniformly random old line.
	maxStack int
	seqNext  uint32
}

// NewStackDist creates a working-set source over region r.
// pNew in (0,1) sets the compulsory-traffic rate; pDepth in (0,1) sets
// locality tightness (mean reuse depth ~= 1/pDepth - 1); maxStack bounds
// the modelled history (0 means 4096 lines).
func NewStackDist(r mem.Region, pNew, pDepth float64, maxStack int, rng *RNG) (*StackDist, error) {
	if pNew <= 0 || pNew >= 1 || pDepth <= 0 || pDepth >= 1 {
		return nil, fmt.Errorf("synth: StackDist probabilities out of range: pNew=%v pDepth=%v", pNew, pDepth)
	}
	if maxStack <= 0 {
		maxStack = 4096
	}
	return &StackDist{rng: rng, region: r, pNew: pNew, pDepth: pDepth, maxStack: maxStack}, nil
}

// Next implements AddrSource.
func (s *StackDist) Next() uint32 {
	if len(s.stack) == 0 || s.rng.Float64() < s.pNew {
		// Touch a fresh line, walking the region sequentially (real
		// programs' compulsory traffic is mostly sequential: new stack
		// frames, fresh heap, streaming input).
		addr := s.region.Start + s.seqNext
		s.seqNext += sysmodel.LineSize
		if s.seqNext >= s.region.Size {
			s.seqNext = 0
		}
		s.touch(addr)
		return addr
	}
	depth := s.rng.Geometric(s.pDepth)
	if depth >= len(s.stack) {
		depth = s.rng.Intn(len(s.stack))
	}
	addr := s.stack[depth]
	// Move to front.
	copy(s.stack[1:depth+1], s.stack[:depth])
	s.stack[0] = addr
	// Spread references within the line.
	return addr + uint32(s.rng.Intn(sysmodel.LineSize/4))*4
}

func (s *StackDist) touch(addr uint32) {
	line := sysmodel.LineAddr(addr)
	if len(s.stack) < s.maxStack {
		s.stack = append(s.stack, 0)
	}
	copy(s.stack[1:], s.stack)
	s.stack[0] = line
}

// PointerChase walks a random permutation cycle over the lines of a
// region — the worst-case locality of heap-intensive programs (xlisp cons
// cells, gcc's RTL chains).
type PointerChase struct {
	region mem.Region
	next   []uint32 // next[i] is the line index following line i
	cur    uint32
}

// NewPointerChase builds a chase over every line of r using rng to build
// the permutation (one full cycle, so every line is visited).
func NewPointerChase(r mem.Region, rng *RNG) *PointerChase {
	n := int(r.Size) / sysmodel.LineSize
	if n < 2 {
		n = 2
	}
	// Sattolo's algorithm: a uniform single-cycle permutation.
	perm := make([]uint32, n)
	for i := range perm {
		perm[i] = uint32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	next := make([]uint32, n)
	for i := 0; i < n; i++ {
		next[perm[i]] = perm[(i+1)%n]
	}
	return &PointerChase{region: r, next: next}
}

// Next implements AddrSource.
func (p *PointerChase) Next() uint32 {
	addr := p.region.Start + p.cur*sysmodel.LineSize
	p.cur = p.next[p.cur]
	return addr
}

// Mix interleaves several sources with given weights: each reference is
// drawn from source i with probability Weights[i]/sum.
type Mix struct {
	rng     *RNG
	sources []AddrSource
	cum     []float64
}

// NewMix composes sources with weights. It panics on length mismatch or
// non-positive total weight (a construction bug, not an input error).
func NewMix(rng *RNG, sources []AddrSource, weights []float64) *Mix {
	if len(sources) == 0 || len(sources) != len(weights) {
		panic("synth: Mix needs equal, non-zero numbers of sources and weights")
	}
	total := 0.0
	cum := make([]float64, len(weights))
	for i, w := range weights {
		if w < 0 {
			panic("synth: negative Mix weight")
		}
		total += w
		cum[i] = total
	}
	if total <= 0 {
		panic("synth: Mix weights sum to zero")
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Mix{rng: rng, sources: sources, cum: cum}
}

// Next implements AddrSource.
func (m *Mix) Next() uint32 {
	u := m.rng.Float64()
	for i, c := range m.cum {
		if u < c {
			return m.sources[i].Next()
		}
	}
	return m.sources[len(m.sources)-1].Next()
}
