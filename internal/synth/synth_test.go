package synth

import (
	"math"
	"testing"
	"testing/quick"

	"sccsim/internal/mem"
	"sccsim/internal/sysmodel"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestIntnRangeAndPanic(t *testing.T) {
	r := NewRNG(2)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(3)
	n := 20000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	varr := sum2/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(varr-1) > 0.1 {
		t.Errorf("normal variance = %v, want ~1", varr)
	}
}

func TestUnitVector3(t *testing.T) {
	r := NewRNG(4)
	for i := 0; i < 1000; i++ {
		v := r.UnitVector3()
		n := v[0]*v[0] + v[1]*v[1] + v[2]*v[2]
		if math.Abs(n-1) > 1e-9 {
			t.Fatalf("|v|^2 = %v, want 1", n)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRNG(6)
	p := 0.25
	n := 50000
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Geometric(p)
	}
	mean := float64(sum) / float64(n)
	want := (1 - p) / p // mean of geometric counting failures
	if math.Abs(mean-want) > 0.15 {
		t.Errorf("geometric mean = %v, want ~%v", mean, want)
	}
}

func TestGeometricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Geometric(1.5) did not panic")
		}
	}()
	NewRNG(0).Geometric(1.5)
}

func region(size uint32) mem.Region {
	a := mem.NewAllocator()
	return a.Alloc(size, sysmodel.LineSize)
}

func TestScanWraps(t *testing.T) {
	r := region(4 * sysmodel.LineSize)
	s := NewScan(r, 0)
	var got []uint32
	for i := 0; i < 6; i++ {
		got = append(got, s.Next())
	}
	for i, a := range got {
		want := r.Start + uint32(i%4)*sysmodel.LineSize
		if a != want {
			t.Errorf("scan[%d] = %#x, want %#x", i, a, want)
		}
	}
}

func TestScanStride(t *testing.T) {
	r := region(1024)
	s := NewScan(r, 128)
	a0, a1 := s.Next(), s.Next()
	if a1-a0 != 128 {
		t.Errorf("stride = %d, want 128", a1-a0)
	}
}

func TestStackDistValidation(t *testing.T) {
	r := region(1024)
	rng := NewRNG(7)
	for _, bad := range [][2]float64{{0, 0.5}, {1, 0.5}, {0.5, 0}, {0.5, 1}} {
		if _, err := NewStackDist(r, bad[0], bad[1], 0, rng); err == nil {
			t.Errorf("NewStackDist(%v) accepted", bad)
		}
	}
}

func TestStackDistStaysInRegion(t *testing.T) {
	r := region(64 * sysmodel.LineSize)
	rng := NewRNG(8)
	sd, err := NewStackDist(r, 0.1, 0.3, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		a := sd.Next()
		if !r.Contains(a) {
			t.Fatalf("address %#x outside region [%#x,%#x)", a, r.Start, r.End())
		}
	}
}

func TestStackDistLocalityKnob(t *testing.T) {
	// Tighter pDepth (higher) must produce fewer distinct lines per 10k
	// refs than looser pDepth.
	count := func(pNew, pDepth float64) int {
		r := region(4096 * sysmodel.LineSize)
		sd, err := NewStackDist(r, pNew, pDepth, 0, NewRNG(9))
		if err != nil {
			t.Fatal(err)
		}
		lines := map[uint32]struct{}{}
		for i := 0; i < 10000; i++ {
			lines[sysmodel.LineAddr(sd.Next())] = struct{}{}
		}
		return len(lines)
	}
	tight := count(0.01, 0.5)
	loose := count(0.10, 0.02)
	if tight >= loose {
		t.Errorf("tight locality touched %d lines, loose %d; knob inverted", tight, loose)
	}
}

func TestPointerChaseCoversAllLines(t *testing.T) {
	r := region(64 * sysmodel.LineSize)
	pc := NewPointerChase(r, NewRNG(10))
	seen := map[uint32]struct{}{}
	for i := 0; i < 64; i++ {
		seen[pc.Next()] = struct{}{}
	}
	if len(seen) != 64 {
		t.Errorf("chase visited %d distinct lines in one cycle, want 64", len(seen))
	}
}

func TestPointerChaseIsCycle(t *testing.T) {
	r := region(32 * sysmodel.LineSize)
	pc := NewPointerChase(r, NewRNG(11))
	first := pc.Next()
	for i := 0; i < 31; i++ {
		pc.Next()
	}
	if pc.Next() != first {
		t.Error("chase did not return to start after one full cycle")
	}
}

func TestMixWeights(t *testing.T) {
	rng := NewRNG(12)
	alloc := mem.NewAllocator()
	rA := alloc.Alloc(16*sysmodel.LineSize, sysmodel.LineSize)
	rB := alloc.Alloc(16*sysmodel.LineSize, sysmodel.LineSize)
	m := NewMix(rng, []AddrSource{NewScan(rA, 0), NewScan(rB, 0)}, []float64{9, 1})
	inA := 0
	for i := 0; i < 10000; i++ {
		if rA.Contains(m.Next()) {
			inA++
		}
	}
	if inA < 8500 || inA > 9500 {
		t.Errorf("weighted mix drew %d/10000 from the 0.9 source", inA)
	}
}

func TestMixPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":    func() { NewMix(NewRNG(0), nil, nil) },
		"mismatch": func() { NewMix(NewRNG(0), []AddrSource{NewScan(region(64), 0)}, []float64{1, 2}) },
		"zero":     func() { NewMix(NewRNG(0), []AddrSource{NewScan(region(64), 0)}, []float64{0}) },
		"negative": func() { NewMix(NewRNG(0), []AddrSource{NewScan(region(64), 0)}, []float64{-1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMix %s case did not panic", name)
				}
			}()
			f()
		}()
	}
}

// Property: RNG streams are reproducible from any seed.
func TestRNGReproducibleProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		a, b := NewRNG(seed), NewRNG(seed)
		for i := 0; i < int(n); i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: StackDist never leaves its region, for any valid parameters.
func TestStackDistRegionProperty(t *testing.T) {
	f := func(seed int64, pn, pd uint8) bool {
		pNew := 0.01 + float64(pn%90)/100
		pDepth := 0.01 + float64(pd%90)/100
		r := region(128 * sysmodel.LineSize)
		sd, err := NewStackDist(r, pNew, pDepth, 64, NewRNG(seed))
		if err != nil {
			return false
		}
		for i := 0; i < 500; i++ {
			if !r.Contains(sd.Next()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
