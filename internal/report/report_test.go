package report

import (
	"strings"
	"testing"

	"sccsim/internal/costperf"
	"sccsim/internal/explorer"
	"sccsim/internal/sim"
)

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"a", "long-header"}, [][]string{{"1", "2"}, {"333", "4"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	w := len(lines[0])
	for i, l := range lines {
		if len(l) != w {
			t.Errorf("line %d width %d, want %d:\n%s", i, len(l), w, out)
		}
	}
	if !strings.Contains(lines[1], "---") {
		t.Error("missing rule line")
	}
}

func quickGrid(t *testing.T, w explorer.Workload) *explorer.Grid {
	t.Helper()
	g, err := explorer.Sweep(w, explorer.QuickScale(), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGridRenderers(t *testing.T) {
	g := quickGrid(t, explorer.BarnesHut)
	for name, out := range map[string]string{
		"SpeedupTable":      SpeedupTable(g),
		"Figure":            Figure(g, "Figure 2"),
		"SpeedupFigure":     SpeedupFigure(g),
		"InvalidationTable": InvalidationTable(g),
	} {
		if !strings.Contains(out, "4 KB") || !strings.Contains(out, "512 KB") {
			t.Errorf("%s missing size rows:\n%s", name, out)
		}
		if strings.Contains(out, "NaN") || strings.Contains(out, "%!") {
			t.Errorf("%s has formatting artifacts:\n%s", name, out)
		}
	}
	// MissRateTable reports the paper's three sample sizes as columns.
	mrt := MissRateTable(g)
	if !strings.Contains(mrt, "8 KB") || !strings.Contains(mrt, "256 KB") {
		t.Errorf("MissRateTable missing size columns:\n%s", mrt)
	}
	if !strings.Contains(Figure(g, "Figure 2"), "Figure 2") {
		t.Error("Figure missing its title")
	}
}

func TestTable5Render(t *testing.T) {
	out := Table5()
	for _, want := range []string{"barnes-hut", "mp3d", "cholesky", "multiprog", "1.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table5 missing %q:\n%s", want, out)
		}
	}
}

func TestTables6And7Render(t *testing.T) {
	s := explorer.QuickScale()
	var entries []*costperf.Entry
	for _, w := range []explorer.Workload{explorer.BarnesHut, explorer.Cholesky} {
		e, err := costperf.BuildEntry(w, s, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, e)
	}
	out6 := Table6(costperf.CompareSingleChip(entries))
	if !strings.Contains(out6, "1 Proc/64KB") || !strings.Contains(out6, "cost/performance") {
		t.Errorf("Table6 malformed:\n%s", out6)
	}
	out7 := Table7(costperf.CompareMCM(entries))
	if !strings.Contains(out7, "16P") || !strings.Contains(out7, "scaling") {
		t.Errorf("Table7 malformed:\n%s", out7)
	}
}

func TestAreaReport(t *testing.T) {
	out := AreaReport()
	for _, want := range []string{"204", "279", "297", "306", "C4", "MCM", "FO4", "64 KB"} {
		if !strings.Contains(out, want) {
			t.Errorf("AreaReport missing %q:\n%s", want, out)
		}
	}
}

func TestFrontierTable(t *testing.T) {
	g := quickGrid(t, explorer.BarnesHut)
	pts := costperf.Frontier(g)
	out := FrontierTable(explorer.BarnesHut, pts)
	for _, want := range []string{"infeasible", "pareto", "best cost/performance"} {
		if !strings.Contains(out, want) {
			t.Errorf("FrontierTable missing %q:\n%s", want, out)
		}
	}
}

func TestGridCSV(t *testing.T) {
	g := quickGrid(t, explorer.MP3D)
	out := GridCSV(g)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+32 {
		t.Fatalf("CSV has %d lines, want header + 32 points", len(lines))
	}
	if !strings.HasPrefix(lines[0], "workload,") {
		t.Errorf("bad header: %s", lines[0])
	}
	for _, l := range lines[1:] {
		if strings.Count(l, ",") != 9 {
			t.Errorf("bad CSV row: %s", l)
		}
	}
}
