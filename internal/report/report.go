// Package report renders the reproduction's tables and figures as text:
// aligned tables for the paper's Tables 3-7 and the area breakdowns of
// Figures 8-11, and ASCII curves for the performance figures (2-6).
package report

import (
	"fmt"
	"sort"
	"strings"

	"sccsim/internal/area"
	"sccsim/internal/costperf"
	"sccsim/internal/explorer"
	"sccsim/internal/pipeline"
)

// Table renders rows with right-aligned columns under the given headers.
func Table(headers []string, rows [][]string) string {
	width := make([]int, len(headers))
	for i, h := range headers {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	var rule []string
	for _, w := range width {
		rule = append(rule, strings.Repeat("-", w))
	}
	writeRow(rule)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// kb formats an SCC size.
func kb(bytes int) string { return fmt.Sprintf("%d KB", bytes/1024) }

// SpeedupTable renders the paper's Table 3 format for any workload grid:
// speedups relative to one processor per cluster, per SCC size.
func SpeedupTable(g *explorer.Grid) string {
	headers := []string{"SCC Size"}
	for _, p := range g.Procs() {
		headers = append(headers, fmt.Sprintf("%d Proc/cl", p))
	}
	var rows [][]string
	for _, size := range g.Sizes() {
		row := []string{kb(size)}
		for _, p := range g.Procs() {
			row = append(row, fmt.Sprintf("%.1f", g.Speedup(size, p)))
		}
		rows = append(rows, row)
	}
	return fmt.Sprintf("%s speedups relative to one processor per cluster\n%s",
		g.Workload, Table(headers, rows))
}

// MissRateTable renders the paper's Table 4 format: read miss rates for
// 8, 64 and 256 KB SCCs across processors per cluster.
func MissRateTable(g *explorer.Grid) string {
	sizes := []int{8 * 1024, 64 * 1024, 256 * 1024}
	headers := []string{"Procs/cluster"}
	for _, s := range sizes {
		headers = append(headers, kb(s))
	}
	var rows [][]string
	for _, p := range g.Procs() {
		row := []string{fmt.Sprintf("%d", p)}
		for _, s := range sizes {
			pt := g.At(s, p)
			row = append(row, fmt.Sprintf("%.2f%%", 100*pt.Result.ReadMissRate()))
		}
		rows = append(rows, row)
	}
	return fmt.Sprintf("%s read miss rates (prefetching vs destructive interference)\n%s",
		g.Workload, Table(headers, rows))
}

// Figure renders a grid as the paper's Figures 2-5: normalized execution
// time (to the slowest point) as a function of SCC size, one column per
// processors-per-cluster value, plus an ASCII curve per configuration.
func Figure(g *explorer.Grid, title string) string {
	headers := []string{"SCC Size"}
	for _, p := range g.Procs() {
		headers = append(headers, fmt.Sprintf("%dP/cl", p))
	}
	var rows [][]string
	for _, size := range g.Sizes() {
		row := []string{kb(size)}
		for _, p := range g.Procs() {
			row = append(row, fmt.Sprintf("%.3f", g.NormalizedTime(size, p)))
		}
		rows = append(rows, row)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: normalized execution time vs SCC size\n", title)
	b.WriteString(Table(headers, rows))
	b.WriteString(curves(g))
	return b.String()
}

// curves draws a crude ASCII chart: one row per SCC size, bars scaled to
// the 1-processor-per-cluster column.
func curves(g *explorer.Grid) string {
	var b strings.Builder
	b.WriteString("\n(execution time, one bar row per SCC size; marks: 1=1P 2=2P 4=4P 8=8P)\n")
	const cols = 60
	for _, size := range g.Sizes() {
		line := make([]byte, cols+1)
		for i := range line {
			line[i] = ' '
		}
		marks := map[int]byte{1: '1', 2: '2', 4: '4', 8: '8'}
		for _, p := range g.Procs() {
			v := g.NormalizedTime(size, p)
			pos := int(v * cols)
			if pos > cols {
				pos = cols
			}
			line[pos] = marks[p]
		}
		fmt.Fprintf(&b, "%7s |%s\n", kb(size), string(line))
	}
	return b.String()
}

// SpeedupFigure renders the paper's Figure 6: self-relative speedup as a
// function of processors per cluster, one series per SCC size.
func SpeedupFigure(g *explorer.Grid) string {
	headers := []string{"SCC Size"}
	for _, p := range g.Procs() {
		headers = append(headers, fmt.Sprintf("%dP", p))
	}
	var rows [][]string
	for _, size := range g.Sizes() {
		row := []string{kb(size)}
		for _, p := range g.Procs() {
			row = append(row, fmt.Sprintf("%.2f", g.Speedup(size, p)))
		}
		rows = append(rows, row)
	}
	return fmt.Sprintf("%s self-relative speedup vs processors per cluster\n%s",
		g.Workload, Table(headers, rows))
}

// InvalidationTable shows total invalidations across the design space —
// the paper's claim that clustering does not increase invalidations.
func InvalidationTable(g *explorer.Grid) string {
	headers := []string{"SCC Size"}
	for _, p := range g.Procs() {
		headers = append(headers, fmt.Sprintf("%dP/cl", p))
	}
	var rows [][]string
	for _, size := range g.Sizes() {
		row := []string{kb(size)}
		for _, p := range g.Procs() {
			pt := g.At(size, p)
			row = append(row, fmt.Sprintf("%d", pt.Result.Snoop.Invalidations))
		}
		rows = append(rows, row)
	}
	return fmt.Sprintf("%s invalidations performed (flat in procs/cluster = the paper's claim)\n%s",
		g.Workload, Table(headers, rows))
}

// Table5 renders the pipeline load-latency factors.
func Table5() string {
	headers := []string{"Benchmark", "2 cycles", "3 cycles", "4 cycles"}
	names := []string{"barnes-hut", "mp3d", "cholesky", "multiprog"}
	var rows [][]string
	for _, n := range names {
		p := pipeline.Profiles[n]
		rows = append(rows, []string{
			n,
			fmt.Sprintf("%.2f", p.RelTime(2)),
			fmt.Sprintf("%.2f", p.RelTime(3)),
			fmt.Sprintf("%.2f", p.RelTime(4)),
		})
	}
	return "Relative uniprocessor execution times for various load latencies (Table 5)\n" +
		Table(headers, rows)
}

// Table6 renders the single-chip comparison.
func Table6(sc *costperf.SingleChip) string {
	headers := []string{"Benchmark", "1 Proc/64KB", "2 Procs/32KB", "speedup"}
	var rows [][]string
	for _, e := range sc.Entries {
		t1, t2 := e.Normalized(1), e.Normalized(2)
		rows = append(rows, []string{
			string(e.Workload),
			fmt.Sprintf("%.2f", t1),
			fmt.Sprintf("%.2f", t2),
			fmt.Sprintf("%.2fx", t1/t2),
		})
	}
	var b strings.Builder
	b.WriteString("Single-chip cluster comparison, latency-adjusted, normalized to the 8P/128KB system (Table 6)\n")
	b.WriteString(Table(headers, rows))
	fmt.Fprintf(&b, "mean 2P speedup %.2fx, chip area ratio %.2fx -> cost/performance %+.0f%%\n",
		sc.MeanSpeedup, sc.AreaRatio, 100*sc.CostPerfGain)
	return b.String()
}

// Table7 renders the MCM comparison.
func Table7(m *costperf.MCM) string {
	headers := []string{"Benchmark", "4 Procs/64KB (16P)", "8 Procs/128KB (32P)", "scaling"}
	var rows [][]string
	for _, e := range m.Entries {
		t4, t8 := e.Normalized(4), e.Normalized(8)
		rows = append(rows, []string{
			string(e.Workload),
			fmt.Sprintf("%.2f", t4),
			fmt.Sprintf("%.2f", t8),
			fmt.Sprintf("%.2fx", t4/t8),
		})
	}
	var b strings.Builder
	b.WriteString("MCM cluster comparison, latency-adjusted, normalized to the 8P/128KB system (Table 7)\n")
	b.WriteString(Table(headers, rows))
	fmt.Fprintf(&b, "mean 16->32 processor scaling %.2fx (%.2fx excluding cholesky)\n",
		m.MeanScaling, m.MeanScalingNoCholesky)
	return b.String()
}

// AreaReport renders the Section 4 chip designs (Figures 8-11).
func AreaReport() string {
	var b strings.Builder
	designs := area.Designs()
	var keys []int
	for k := range designs {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		d := designs[k]
		fmt.Fprintf(&b, "%s — %.0f mm² (%.0f%% of the 1P chip), load latency %d cycles, %d signal pads",
			d.Name, d.ChipArea(), 100*area.RelativeArea(k), d.LoadLatency, d.SignalPads)
		if d.C4 {
			b.WriteString(" (C4 area bonding)")
		}
		if d.ChipsPerCluster > 1 {
			fmt.Fprintf(&b, ", %d chips per cluster on an MCM", d.ChipsPerCluster)
		}
		b.WriteByte('\n')
		for _, c := range d.Breakdown() {
			fmt.Fprintf(&b, "    %6.1f mm²  %s\n", c.MM2, c.Name)
		}
	}
	fmt.Fprintf(&b, "cycle time %.0f FO4; largest single-cycle direct-mapped cache %d KB; SCC arbitration %.0f FO4\n",
		area.CycleFO4, area.MaxSingleCycleCache()/1024, area.ArbitrationFO4)
	return b.String()
}

// FrontierTable renders the priced design space: every (processors per
// cluster, SCC size) point with its silicon cost and cost/performance,
// marking infeasible implementations and the Pareto-optimal points.
func FrontierTable(w explorer.Workload, points []costperf.FrontierPoint) string {
	onFront := map[[2]int]bool{}
	for _, p := range costperf.ParetoFront(points) {
		onFront[[2]int{p.ProcsPerCluster, p.SCCBytes}] = true
	}
	headers := []string{"Procs/cl", "SCC", "adj cycles", "system mm2", "cost/perf", ""}
	var rows [][]string
	for _, p := range points {
		row := []string{
			fmt.Sprintf("%d", p.ProcsPerCluster),
			kb(p.SCCBytes),
		}
		if !p.Feasible {
			row = append(row, "-", "-", "-", "infeasible")
		} else {
			mark := ""
			if onFront[[2]int{p.ProcsPerCluster, p.SCCBytes}] {
				mark = "pareto"
			}
			row = append(row,
				fmt.Sprintf("%.0f", p.AdjCycles),
				fmt.Sprintf("%.0f", p.SystemMM2),
				fmt.Sprintf("%.2f", p.CostPerf),
				mark)
		}
		rows = append(rows, row)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s cost/performance frontier (Section 4 implementation rules over the Section 3 grid)\n", w)
	b.WriteString(Table(headers, rows))
	if best := costperf.Best(points); best != nil {
		fmt.Fprintf(&b, "best cost/performance: %d procs/cluster with a %d KB SCC\n",
			best.ProcsPerCluster, best.SCCBytes/1024)
	}
	return b.String()
}

// GridCSV renders a grid as CSV (one row per design point) for external
// analysis tooling.
func GridCSV(g *explorer.Grid) string {
	var b strings.Builder
	b.WriteString("workload,scc_bytes,procs_per_cluster,clusters,cycles,refs,read_miss_rate,invalidations,bank_stall,read_stall\n")
	for _, size := range g.Sizes() {
		for _, p := range g.Procs() {
			pt := g.At(size, p)
			if pt == nil {
				continue
			}
			r := pt.Result
			fmt.Fprintf(&b, "%s,%d,%d,%d,%d,%d,%.6f,%d,%d,%d\n",
				g.Workload, size, p, pt.Config.Clusters, r.Cycles, r.Refs,
				r.ReadMissRate(), r.Snoop.Invalidations, r.TotalBankStall(), r.TotalReadStall())
		}
	}
	return b.String()
}
