package cache

import (
	"testing"

	"sccsim/internal/mem"
	"sccsim/internal/sysmodel"
)

// FuzzAccess drives a cache with arbitrary access sequences and checks
// the structural invariants that every workload depends on: accounting
// consistency, capacity bounds, and probe/access agreement.
func FuzzAccess(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 255, 128}, uint8(1))
	f.Add([]byte{10, 10, 10, 20, 30, 10}, uint8(2))
	f.Add([]byte{}, uint8(4))
	f.Fuzz(func(t *testing.T, data []byte, assocSel uint8) {
		assoc := []int{1, 2, 4, 8}[int(assocSel)%4]
		c := MustNew(1024, assoc)
		hits := uint64(0)
		for i := 0; i+1 < len(data); i += 2 {
			addr := uint32(data[i])<<8 | uint32(data[i+1])<<3
			kind := mem.Read
			if data[i]&1 == 1 {
				kind = mem.Write
			}
			res := c.Access(addr, kind)
			if res.Hit {
				hits++
				if res.Evicted != EvictedNone {
					t.Fatal("hit with eviction")
				}
			}
			if !c.Probe(addr) {
				t.Fatalf("line %#x absent immediately after access", addr)
			}
		}
		s := c.Stats()
		if s.TotalMisses()+hits != s.TotalAccesses() {
			t.Fatalf("accounting: %d misses + %d hits != %d accesses",
				s.TotalMisses(), hits, s.TotalAccesses())
		}
		if c.ValidLines() > 1024/sysmodel.LineSize {
			t.Fatalf("capacity exceeded: %d lines", c.ValidLines())
		}
		if s.Evictions > s.TotalMisses() {
			t.Fatal("more evictions than misses")
		}
	})
}
