package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sccsim/internal/mem"
	"sccsim/internal/sysmodel"
)

func TestNewRejectsBadGeometry(t *testing.T) {
	cases := []struct{ size, assoc int }{
		{0, 1},    // empty
		{100, 1},  // not a line multiple
		{16, 2},   // fewer lines than ways
		{4096, 0}, // zero associativity
		{4096, 3}, // 4096/16/3 not integral
	}
	for _, c := range cases {
		if _, err := New(c.size, c.assoc); err == nil {
			t.Errorf("New(%d, %d) succeeded, want error", c.size, c.assoc)
		}
	}
}

// TestNonPowerOfTwoSets: the search API's generalized size axis produces
// set counts that are not powers of two; New accepts them and the
// modulo-indexed sets behave like any other direct-mapped cache.
func TestNonPowerOfTwoSets(t *testing.T) {
	c, err := New(48, 1) // 3 sets
	if err != nil {
		t.Fatalf("New(48, 1): %v", err)
	}
	if c.Sets() != 3 {
		t.Fatalf("Sets() = %d, want 3", c.Sets())
	}
	a := uint32(0)
	b := a + 3*sysmodel.LineSize // same set (tag 3 % 3 == 0), different tag
	if c.Access(a, mem.Read).Hit {
		t.Error("cold access hit")
	}
	if !c.Access(a, mem.Read).Hit {
		t.Error("re-access missed")
	}
	r := c.Access(b, mem.Read)
	if r.Hit || r.Evicted != a/sysmodel.LineSize {
		t.Errorf("conflict access = %+v, want miss evicting line %#x", r, a/sysmodel.LineSize)
	}
}

// TestSetIndexMaskModuloAgree pins the compatibility claim behind the
// modulo fallback: for power-of-two set counts the mask fast path and
// the modulo form select the same set for every tag.
func TestSetIndexMaskModuloAgree(t *testing.T) {
	f := func(tag uint32, sizeSel uint8) bool {
		nsets := uint32(1) << (sizeSel % 17)
		c := MustNew(int(nsets)*sysmodel.LineSize, 1)
		if !c.pow2 {
			return false
		}
		return c.set(tag) == tag%nsets
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with bad geometry did not panic")
		}
	}()
	MustNew(100, 1)
}

func TestGeometry(t *testing.T) {
	c := MustNew(4096, 2)
	if c.Sets() != 128 {
		t.Errorf("Sets() = %d, want 128", c.Sets())
	}
	if c.Assoc() != 2 {
		t.Errorf("Assoc() = %d, want 2", c.Assoc())
	}
	if c.SizeBytes() != 4096 {
		t.Errorf("SizeBytes() = %d, want 4096", c.SizeBytes())
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := MustNew(4096, 1)
	r := c.Access(0x1000, mem.Read)
	if r.Hit {
		t.Error("first access hit a cold cache")
	}
	if r.Evicted != EvictedNone {
		t.Errorf("cold fill evicted %#x, want none", r.Evicted)
	}
	r = c.Access(0x1004, mem.Read)
	if !r.Hit {
		t.Error("second access to the same line missed")
	}
	if got := c.Stats().TotalMisses(); got != 1 {
		t.Errorf("misses = %d, want 1", got)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	c := MustNew(4096, 1) // 256 sets
	a := uint32(0x0000)
	b := a + 4096 // same set, different tag
	c.Access(a, mem.Read)
	r := c.Access(b, mem.Read)
	if r.Hit {
		t.Error("conflicting line hit")
	}
	if r.Evicted != a/sysmodel.LineSize {
		t.Errorf("evicted line %#x, want %#x", r.Evicted, a/sysmodel.LineSize)
	}
	if r.EvictedDirty {
		t.Error("clean victim reported dirty")
	}
	if c.Access(a, mem.Read).Hit {
		t.Error("original line survived a conflict eviction")
	}
}

func TestWriteMakesDirty(t *testing.T) {
	c := MustNew(4096, 1)
	c.Access(0x0, mem.Write)
	r := c.Access(4096, mem.Read) // conflict-evict the dirty line
	if !r.EvictedDirty {
		t.Error("dirty victim reported clean")
	}
	if c.Stats().WriteBacks != 1 {
		t.Errorf("write-backs = %d, want 1", c.Stats().WriteBacks)
	}
}

func TestReadThenWriteMakesDirty(t *testing.T) {
	c := MustNew(4096, 1)
	c.Access(0x0, mem.Read)
	c.Access(0x0, mem.Write) // hit, should set dirty
	if _, dirty := c.Invalidate(0x0); !dirty {
		t.Error("line written after fill not dirty")
	}
}

func TestLRUReplacement(t *testing.T) {
	c := MustNew(2*sysmodel.LineSize, 2) // one set, two ways
	c.Access(0x000, mem.Read)
	c.Access(0x100, mem.Read)
	c.Access(0x000, mem.Read) // touch A; B is now LRU
	r := c.Access(0x200, mem.Read)
	if r.Evicted != 0x100/sysmodel.LineSize {
		t.Errorf("evicted %#x, want LRU line %#x", r.Evicted, uint32(0x100/sysmodel.LineSize))
	}
	if !c.Probe(0x000) {
		t.Error("MRU line was evicted")
	}
}

func TestEmptyWayPreferredOverEviction(t *testing.T) {
	c := MustNew(4*sysmodel.LineSize, 4) // one set, four ways
	c.Access(0x000, mem.Read)
	c.Access(0x100, mem.Read)
	r := c.Access(0x200, mem.Read)
	if r.Evicted != EvictedNone {
		t.Errorf("fill evicted %#x while empty ways remained", r.Evicted)
	}
	if c.Stats().Evictions != 0 {
		t.Errorf("evictions = %d, want 0", c.Stats().Evictions)
	}
}

func TestProbeDoesNotDisturbState(t *testing.T) {
	c := MustNew(4096, 1)
	c.Access(0x40, mem.Read)
	before := *c.Stats()
	if !c.Probe(0x40) {
		t.Error("Probe missed a resident line")
	}
	if c.Probe(0x4000 + 0x40) {
		t.Error("Probe hit an absent line")
	}
	if *c.Stats() != before {
		t.Error("Probe changed statistics")
	}
}

func TestInvalidate(t *testing.T) {
	c := MustNew(4096, 1)
	c.Access(0x80, mem.Write)
	present, dirty := c.Invalidate(0x80)
	if !present || !dirty {
		t.Errorf("Invalidate = (%v, %v), want (true, true)", present, dirty)
	}
	if c.Probe(0x80) {
		t.Error("line still present after invalidation")
	}
	if present, _ := c.Invalidate(0x80); present {
		t.Error("second invalidation reported the line present")
	}
	if c.Stats().Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", c.Stats().Invalidations)
	}
}

func TestFlush(t *testing.T) {
	c := MustNew(4096, 2)
	for a := uint32(0); a < 4096; a += sysmodel.LineSize {
		c.Access(a, mem.Write)
	}
	if c.ValidLines() != 256 {
		t.Fatalf("valid lines = %d, want 256", c.ValidLines())
	}
	before := *c.Stats()
	c.Flush()
	if c.ValidLines() != 0 {
		t.Errorf("valid lines after Flush = %d, want 0", c.ValidLines())
	}
	if *c.Stats() != before {
		t.Error("Flush changed statistics")
	}
}

func TestStatsAccounting(t *testing.T) {
	c := MustNew(4096, 1)
	c.Access(0x0, mem.Read)
	c.Access(0x0, mem.Read)
	c.Access(0x10, mem.Write)
	s := c.Stats()
	if s.Accesses[mem.Read] != 2 || s.Accesses[mem.Write] != 1 {
		t.Errorf("accesses = %v", s.Accesses)
	}
	if s.Misses[mem.Read] != 1 || s.Misses[mem.Write] != 1 {
		t.Errorf("misses = %v", s.Misses)
	}
	if got := s.MissRate(); got != 2.0/3.0 {
		t.Errorf("MissRate() = %v, want 2/3", got)
	}
	if got := s.ReadMissRate(); got != 0.5 {
		t.Errorf("ReadMissRate() = %v, want 0.5", got)
	}
}

func TestStatsZeroDivision(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 || s.ReadMissRate() != 0 {
		t.Error("empty Stats rates should be 0")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Evictions: 1, WriteBacks: 2}
	a.Accesses[mem.Read] = 10
	a.Misses[mem.Read] = 3
	b := Stats{Invalidations: 5}
	b.Accesses[mem.Read] = 2
	a.Add(&b)
	if a.Accesses[mem.Read] != 12 || a.Invalidations != 5 || a.Evictions != 1 {
		t.Errorf("Add produced %+v", a)
	}
}

// Property: a cache never holds more valid lines than its capacity, and a
// line just accessed is always present.
func TestCapacityProperty(t *testing.T) {
	f := func(addrs []uint32, assocSel uint8) bool {
		assoc := []int{1, 2, 4}[int(assocSel)%3]
		c := MustNew(1024, assoc)
		for _, a := range addrs {
			c.Access(a, mem.Read)
			if !c.Probe(a) {
				return false
			}
			if c.ValidLines() > 1024/sysmodel.LineSize {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: misses + hits == accesses, and eviction count never exceeds
// miss count (every eviction is caused by a fill).
func TestAccountingProperty(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		c := MustNew(2048, 2)
		hits := uint64(0)
		steps := int(n%2000) + 1
		for i := 0; i < steps; i++ {
			kind := mem.Read
			if rng.Intn(4) == 0 {
				kind = mem.Write
			}
			if c.Access(uint32(rng.Intn(1<<14)), kind).Hit {
				hits++
			}
		}
		s := c.Stats()
		return s.TotalAccesses() == uint64(steps) &&
			s.TotalMisses()+hits == uint64(steps) &&
			s.Evictions <= s.TotalMisses()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: a fully-associative cache of N lines accessed with a cyclic
// working set of at most N lines has only cold misses.
func TestWorkingSetFitsProperty(t *testing.T) {
	const lines = 16
	c := MustNew(lines*sysmodel.LineSize, lines)
	for pass := 0; pass < 5; pass++ {
		for i := 0; i < lines; i++ {
			c.Access(uint32(i*sysmodel.LineSize), mem.Read)
		}
	}
	if got := c.Stats().TotalMisses(); got != lines {
		t.Errorf("misses = %d, want %d cold misses only", got, lines)
	}
}

func BenchmarkAccessHit(b *testing.B) {
	c := MustNew(64*1024, 1)
	c.Access(0x40, mem.Read)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0x40, mem.Read)
	}
}

func BenchmarkAccessStream(b *testing.B) {
	c := MustNew(64*1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint32(i)*sysmodel.LineSize, mem.Read)
	}
}

func TestMarkDirty(t *testing.T) {
	c := MustNew(1024, 1)
	c.Access(0x100, mem.Read)
	before := *c.Stats()
	if !c.MarkDirty(0x100) {
		t.Fatal("MarkDirty missed a resident line")
	}
	if c.MarkDirty(0x9000) {
		t.Error("MarkDirty claimed an absent line")
	}
	if *c.Stats() != before {
		t.Error("MarkDirty changed statistics")
	}
	if _, dirty := c.Invalidate(0x100); !dirty {
		t.Error("line not dirty after MarkDirty")
	}
}
