// Package cache implements the tag-store cache model used for both the
// per-processor instruction caches and the banked Shared Cluster Cache.
//
// The model is a set-associative (including direct-mapped) cache of
// power-of-two-sized lines (16 B, the paper's choice, by default) with
// true-LRU or deterministic-random replacement, write-allocate and
// write-back semantics. It tracks per-access-kind hit/miss statistics,
// supports external invalidation (for the inter-cluster coherence
// protocol), and reports evicted lines so callers can maintain presence
// information.
package cache

import (
	"fmt"

	"sccsim/internal/mem"
	"sccsim/internal/sysmodel"
)

// line is one cache line's tag state.
type line struct {
	tag   uint32 // line address (addr / LineSize); tagInvalid when empty
	lru   uint32 // higher = more recently used
	dirty bool
}

// tagInvalid marks an empty way. Valid tags are line indices of 32-bit
// addresses, so they are < 2^28 and can never collide with this value.
const tagInvalid = ^uint32(0)

// Stats accumulates access counts per reference kind.
type Stats struct {
	// Accesses[k] and Misses[k] count accesses and misses of kind k.
	Accesses [mem.NumKinds]uint64
	Misses   [mem.NumKinds]uint64
	// Evictions counts lines displaced by fills.
	Evictions uint64
	// Invalidations counts lines removed by external invalidation.
	Invalidations uint64
	// WriteBacks counts dirty lines written back on eviction or
	// invalidation.
	WriteBacks uint64
}

// TotalAccesses returns the access count summed over kinds.
func (s *Stats) TotalAccesses() uint64 {
	var t uint64
	for _, v := range s.Accesses {
		t += v
	}
	return t
}

// TotalMisses returns the miss count summed over kinds.
func (s *Stats) TotalMisses() uint64 {
	var t uint64
	for _, v := range s.Misses {
		t += v
	}
	return t
}

// MissRate returns misses/accesses over all kinds, or 0 if no accesses.
func (s *Stats) MissRate() float64 {
	a := s.TotalAccesses()
	if a == 0 {
		return 0
	}
	return float64(s.TotalMisses()) / float64(a)
}

// ReadMissRate returns the read miss rate, the statistic Table 4 of the
// paper reports, or 0 if there were no reads.
func (s *Stats) ReadMissRate() float64 {
	if s.Accesses[mem.Read] == 0 {
		return 0
	}
	return float64(s.Misses[mem.Read]) / float64(s.Accesses[mem.Read])
}

// Add accumulates o into s.
func (s *Stats) Add(o *Stats) {
	for k := 0; k < mem.NumKinds; k++ {
		s.Accesses[k] += o.Accesses[k]
		s.Misses[k] += o.Misses[k]
	}
	s.Evictions += o.Evictions
	s.Invalidations += o.Invalidations
	s.WriteBacks += o.WriteBacks
}

// Cache is a set-associative cache tag store.
type Cache struct {
	sets      []line // len = nsets*assoc, laid out set-major
	nsets     uint32
	assoc     uint32
	setMask   uint32 // nsets-1 when nsets is a power of two
	pow2      bool   // whether setMask indexing applies
	lineShift uint32 // log2 of the line size; tag = addr >> lineShift
	random    bool   // random (vs true-LRU) replacement
	rng       uint32 // xorshift32 state, used only by random replacement
	clock     uint32 // LRU timestamp source
	stats     Stats
}

// rngSeed is the fixed xorshift32 seed for random replacement. A
// constant seed (any non-zero value works; this is the golden-ratio
// word) keeps "random" runs bit-reproducible and lets the independent
// oracle in internal/verify replay the identical victim sequence.
const rngSeed = 0x9E3779B9

// New builds a cache of size bytes with the given associativity,
// 16-byte lines and LRU replacement. Size must be a multiple of
// assoc*LineSize; any resulting set count is accepted. Power-of-two set
// counts (every configuration in the paper's sweep) index by mask;
// other counts — reachable through the search API's generalized size
// axis — index by modulo, which agrees with the mask wherever both
// apply.
func New(size, assoc int) (*Cache, error) {
	return NewWith(size, assoc, sysmodel.LineSize, sysmodel.ReplLRU)
}

// NewWith is New with the line size (a power of two, 4..1024 bytes) and
// replacement policy (sysmodel.ReplLRU or sysmodel.ReplRandom; "" means
// LRU) as explicit axes. Random replacement draws victims from a
// deterministically seeded xorshift32 stream, advanced only when a miss
// finds no empty way, so runs remain reproducible.
func NewWith(size, assoc, lineBytes int, repl string) (*Cache, error) {
	if assoc < 1 {
		return nil, fmt.Errorf("cache: associativity %d, want >= 1", assoc)
	}
	if lineBytes < 4 || lineBytes > 1024 || lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("cache: line size %d, want a power of two in 4..1024", lineBytes)
	}
	var random bool
	switch repl {
	case "", sysmodel.ReplLRU:
	case sysmodel.ReplRandom:
		random = true
	default:
		return nil, fmt.Errorf("cache: replacement %q, want %q or %q", repl, sysmodel.ReplLRU, sysmodel.ReplRandom)
	}
	lines := size / lineBytes
	if lines*lineBytes != size || lines < assoc {
		return nil, fmt.Errorf("cache: size %d not a multiple of %d lines of %d bytes",
			size, assoc, lineBytes)
	}
	nsets := lines / assoc
	if lines%assoc != 0 {
		return nil, fmt.Errorf("cache: %d lines not divisible into %d-way sets", lines, assoc)
	}
	shift := uint32(0)
	for lb := lineBytes; lb > 1; lb >>= 1 {
		shift++
	}
	c := &Cache{
		sets:      make([]line, lines),
		nsets:     uint32(nsets),
		assoc:     uint32(assoc),
		setMask:   uint32(nsets - 1),
		pow2:      nsets&(nsets-1) == 0,
		lineShift: shift,
		random:    random,
		rng:       rngSeed,
	}
	for i := range c.sets {
		c.sets[i].tag = tagInvalid
	}
	return c, nil
}

// xorshift32 is Marsaglia's 13/17/5 xorshift step — the documented
// victim-draw generator for random replacement. The oracle in
// internal/verify reimplements this exact recurrence (sharing no code)
// so random-replacement runs still diff bit-for-bit.
func xorshift32(x uint32) uint32 {
	x ^= x << 13
	x ^= x >> 17
	x ^= x << 5
	return x
}

// set maps a line address to its set index: mask for power-of-two set
// counts, modulo otherwise. For power-of-two n the two agree
// (tag & (n-1) == tag % n), so every paper-sweep configuration behaves
// bit-identically to the mask-only implementation.
func (c *Cache) set(tag uint32) uint32 {
	if c.pow2 {
		return tag & c.setMask
	}
	return tag % c.nsets
}

// MustNew is New but panics on error; for configurations known valid.
func MustNew(size, assoc int) *Cache {
	c, err := New(size, assoc)
	if err != nil {
		panic(err)
	}
	return c
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return int(c.nsets) }

// Assoc returns the associativity.
func (c *Cache) Assoc() int { return int(c.assoc) }

// SizeBytes returns the cache capacity in bytes.
func (c *Cache) SizeBytes() int { return len(c.sets) << c.lineShift }

// LineBytes returns the cache's line size in bytes.
func (c *Cache) LineBytes() int { return 1 << c.lineShift }

// Stats returns the accumulated statistics.
func (c *Cache) Stats() *Stats { return &c.stats }

// Result describes the outcome of one access.
type Result struct {
	// Hit is true when the line was present.
	Hit bool
	// Evicted is the line address (not byte address) of a valid line
	// displaced by the fill, or EvictedNone.
	Evicted uint32
	// EvictedDirty reports whether the displaced line was dirty.
	EvictedDirty bool
}

// EvictedNone is the Evicted value when no line was displaced.
const EvictedNone = ^uint32(0)

// Access performs a read or write of addr, filling on miss
// (write-allocate) and returning the outcome. Writes mark the line dirty.
func (c *Cache) Access(addr uint32, kind mem.Kind) Result {
	if c.assoc == 1 {
		if c.HitDM(addr, kind) {
			return Result{Hit: true, Evicted: EvictedNone}
		}
		return c.MissDM(addr, kind)
	}
	tag := addr >> c.lineShift
	set := c.set(tag)
	base := set * c.assoc
	c.stats.Accesses[kind]++

	c.clock++
	ways := c.sets[base : base+c.assoc]
	victim := 0
	victimLRU := ^uint32(0)
	for i := range ways {
		w := &ways[i]
		if w.tag == tag {
			w.lru = c.clock
			if kind == mem.Write {
				w.dirty = true
			}
			return Result{Hit: true, Evicted: EvictedNone}
		}
		if w.tag == tagInvalid {
			// Prefer an empty way; LRU 0 guarantees selection unless an
			// earlier empty way was already chosen.
			if victimLRU != 0 {
				victim, victimLRU = i, 0
			}
			continue
		}
		if w.lru < victimLRU {
			victim, victimLRU = i, w.lru
		}
	}

	// Valid ways always carry lru >= 1, so victimLRU == 0 means an empty
	// way was found; random replacement draws only on a genuinely full
	// set, keeping the stream position a pure function of the miss
	// sequence (what the oracle replays).
	if c.random && victimLRU != 0 {
		c.rng = xorshift32(c.rng)
		victim = int(c.rng % c.assoc)
	}

	c.stats.Misses[kind]++
	w := &ways[victim]
	res := Result{Evicted: EvictedNone}
	if w.tag != tagInvalid {
		c.stats.Evictions++
		res.Evicted = w.tag
		res.EvictedDirty = w.dirty
		if w.dirty {
			c.stats.WriteBacks++
		}
	}
	w.tag = tag
	w.lru = c.clock
	w.dirty = kind == mem.Write
	return res
}

// HitDM and MissDM are Access split in two for direct-mapped caches: one
// candidate way, no victim search, and no LRU bookkeeping (replacement
// is forced, so the clock and lru fields are meaningless and
// deliberately left untouched). HitDM performs the access when it hits
// and is small enough for the compiler to inline into the SCC's bank
// loop — the overwhelmingly common hit then costs no call through the
// cache layer. When HitDM returns false the caller MUST complete the
// access with MissDM (the pair is one access: HitDM counts it, MissDM
// adds only the miss-side statistics). Callers must ensure Assoc() == 1;
// Access delegates automatically.
func (c *Cache) HitDM(addr uint32, kind mem.Kind) bool {
	tag := addr >> c.lineShift
	w := &c.sets[c.set(tag)]
	c.stats.Accesses[kind]++
	if w.tag != tag {
		return false
	}
	if kind == mem.Write {
		w.dirty = true
	}
	return true
}

// MissDM completes a direct-mapped access HitDM reported as a miss:
// eviction accounting and line install. See HitDM for the contract.
func (c *Cache) MissDM(addr uint32, kind mem.Kind) Result {
	tag := addr >> c.lineShift
	w := &c.sets[c.set(tag)]
	c.stats.Misses[kind]++
	res := Result{Evicted: EvictedNone}
	if w.tag != tagInvalid {
		c.stats.Evictions++
		res.Evicted = w.tag
		res.EvictedDirty = w.dirty
		if w.dirty {
			c.stats.WriteBacks++
		}
	}
	w.tag = tag
	w.dirty = kind == mem.Write
	return res
}

// FillDM installs addr's line clean in a direct-mapped cache without
// touching statistics, reporting whether a valid line was displaced.
// It is the write-through L1 fill primitive: the hybrid hierarchy
// counts L1 traffic in its own external Stats (the internal counters
// would double-book), and a write-through cache's evictions are clean
// by construction, so no eviction notice is needed. Callers must
// ensure Assoc() == 1.
func (c *Cache) FillDM(addr uint32) (displaced bool) {
	tag := addr >> c.lineShift
	w := &c.sets[c.set(tag)]
	displaced = w.tag != tagInvalid && w.tag != tag
	w.tag = tag
	w.dirty = false
	return displaced
}

// MarkDirty sets the dirty bit of the line containing addr if it is
// present, reporting whether it was. Unlike a write Access it touches no
// statistics, LRU state, or replacement clock — it exists for state
// restoration paths (the victim buffer swapping a dirty line back in)
// that must not masquerade as program references.
func (c *Cache) MarkDirty(addr uint32) bool {
	tag := addr >> c.lineShift
	base := c.set(tag) * c.assoc
	ways := c.sets[base : base+c.assoc]
	for i := range ways {
		if ways[i].tag == tag {
			ways[i].dirty = true
			return true
		}
	}
	return false
}

// Probe reports whether addr is present without updating LRU or stats.
func (c *Cache) Probe(addr uint32) bool {
	tag := addr >> c.lineShift
	base := c.set(tag) * c.assoc
	for _, w := range c.sets[base : base+c.assoc] {
		if w.tag == tag {
			return true
		}
	}
	return false
}

// Invalidate removes the line containing addr if present, returning
// whether it was present and whether it was dirty. Used by the
// inter-cluster invalidation protocol.
func (c *Cache) Invalidate(addr uint32) (present, dirty bool) {
	tag := addr >> c.lineShift
	base := c.set(tag) * c.assoc
	ways := c.sets[base : base+c.assoc]
	for i := range ways {
		w := &ways[i]
		if w.tag == tag {
			c.stats.Invalidations++
			if w.dirty {
				c.stats.WriteBacks++
			}
			present, dirty = true, w.dirty
			w.tag = tagInvalid
			w.dirty = false
			w.lru = 0
			return present, dirty
		}
	}
	return false, false
}

// VisitLines calls fn for every valid line currently resident, passing
// the line index (addr / LineSize) and its dirty bit. Iteration order is
// set-major and unspecified beyond that. No statistics or LRU state are
// touched; the invariant checker uses this to audit residency against
// the coherence presence table.
func (c *Cache) VisitLines(fn func(lineIndex uint32, dirty bool)) {
	for i := range c.sets {
		if w := &c.sets[i]; w.tag != tagInvalid {
			fn(w.tag, w.dirty)
		}
	}
}

// Flush empties the cache without touching statistics. It is used between
// multiprogramming scheduler epochs in ablation experiments.
func (c *Cache) Flush() {
	for i := range c.sets {
		c.sets[i] = line{tag: tagInvalid}
	}
}

// ValidLines returns the number of valid lines currently resident.
func (c *Cache) ValidLines() int {
	n := 0
	for i := range c.sets {
		if c.sets[i].tag != tagInvalid {
			n++
		}
	}
	return n
}
