// Package costperf implements Section 5 of the paper: it combines the
// memory-system simulation results with the pipeline load-latency factors
// (Table 5) and the chip-area cost model to produce the single-chip
// comparison (Table 6), the MCM comparison (Table 7), and the
// cost/performance conclusions.
package costperf

import (
	"context"
	"fmt"
	"math"

	"sccsim/internal/area"
	"sccsim/internal/explorer"
	"sccsim/internal/pipeline"
	"sccsim/internal/sim"
)

// ClusterConfigs maps processors-per-cluster to the cluster SCC size of
// the Section 4 implementation (1P/64KB, 2P/32KB, 4P/64KB, 8P/128KB).
func ClusterConfigs() map[int]int {
	out := make(map[int]int)
	for ppc, d := range area.Designs() {
		out[ppc] = d.ClusterSCCBytes()
	}
	return out
}

// Entry holds one workload's latency-adjusted execution times across the
// four cluster implementations.
type Entry struct {
	Workload explorer.Workload
	// RawCycles[ppc] is the simulated memory-system execution time.
	RawCycles map[int]uint64
	// AdjCycles[ppc] is RawCycles multiplied by the Table 5 load-latency
	// factor of the implementation — the paper's Section 5 methodology:
	// "Multiplying the performance values in Section 3 by the factors in
	// this table provides a good approximation."
	AdjCycles map[int]float64
}

// Adjusted returns cycles scaled by the workload's load-latency factor.
func Adjusted(w explorer.Workload, ppc int, raw uint64) float64 {
	lat := area.Designs()[ppc].LoadLatency
	return float64(raw) * pipeline.RelTimeFor(string(w), lat)
}

// BuildEntry simulates the four Section 4 implementations for one
// workload.
func BuildEntry(w explorer.Workload, s explorer.Scale, opts sim.Options) (*Entry, error) {
	return BuildEntryCtx(context.Background(), w, s, opts, explorer.EngineOptions{})
}

// BuildEntryCtx is BuildEntry on the concurrent sweep engine: the four
// implementation points are independent simulations and run on the
// engine's worker pool, honoring ctx cancellation.
func BuildEntryCtx(ctx context.Context, w explorer.Workload, s explorer.Scale, opts sim.Options, eng explorer.EngineOptions) (*Entry, error) {
	e := &Entry{
		Workload:  w,
		RawCycles: make(map[int]uint64),
		AdjCycles: make(map[int]float64),
	}
	specs := explorer.SortedPointSpecs(ClusterConfigs())
	pts, err := explorer.RunPointsCtx(ctx, w, specs, s, opts, eng)
	if err != nil {
		return nil, fmt.Errorf("costperf: %s: %w", w, err)
	}
	for i, spec := range specs {
		e.RawCycles[spec.PPC] = pts[i].Result.Cycles
		e.AdjCycles[spec.PPC] = Adjusted(w, spec.PPC, pts[i].Result.Cycles)
	}
	return e, nil
}

// Normalized returns the entry's adjusted time at ppc normalized so the
// 8-processor-per-cluster implementation reads as 1.0 (a scale-free view
// of the paper's Tables 6-7 columns).
func (e *Entry) Normalized(ppc int) float64 {
	base := e.AdjCycles[8]
	if base == 0 {
		return 0
	}
	return e.AdjCycles[ppc] / base
}

// SingleChip is the Table 6 comparison: one processor with a 64 KB cache
// versus two processors with a 32 KB SCC, both single-chip cluster
// implementations, in four-cluster systems.
type SingleChip struct {
	Entries []*Entry
	// MeanSpeedup is the geometric-mean performance advantage of the
	// 2-processor configuration (paper: "on average ... 70% faster").
	MeanSpeedup float64
	// AreaRatio is the 2-processor chip's area relative to the
	// 1-processor chip (paper: 1.37).
	AreaRatio float64
	// CostPerfGain is MeanSpeedup/AreaRatio - 1 (paper: ~24%).
	CostPerfGain float64
}

// CompareSingleChip builds Table 6 from per-workload entries.
func CompareSingleChip(entries []*Entry) *SingleChip {
	sc := &SingleChip{Entries: entries, AreaRatio: area.RelativeArea(2)}
	prod := 1.0
	n := 0
	for _, e := range entries {
		t1, t2 := e.AdjCycles[1], e.AdjCycles[2]
		if t1 > 0 && t2 > 0 {
			prod *= t1 / t2
			n++
		}
	}
	if n > 0 {
		sc.MeanSpeedup = math.Pow(prod, 1.0/float64(n))
	}
	if sc.AreaRatio > 0 {
		sc.CostPerfGain = sc.MeanSpeedup/sc.AreaRatio - 1
	}
	return sc
}

// MCM is the Table 7 comparison: 16 processors (4 per cluster, 64 KB
// SCCs) and 32 processors (8 per cluster, 128 KB SCCs), MCM-packaged.
type MCM struct {
	Entries []*Entry
	// MeanScaling is the geometric-mean speedup from 16 to 32 processors
	// (paper: linear except Cholesky).
	MeanScaling float64
	// MeanScalingNoCholesky excludes Cholesky, the paper's stated
	// exception.
	MeanScalingNoCholesky float64
}

// CompareMCM builds Table 7 from per-workload entries.
func CompareMCM(entries []*Entry) *MCM {
	m := &MCM{Entries: entries}
	prod, prodNC := 1.0, 1.0
	n, nNC := 0, 0
	for _, e := range entries {
		t4, t8 := e.AdjCycles[4], e.AdjCycles[8]
		if t4 > 0 && t8 > 0 {
			r := t4 / t8
			prod *= r
			n++
			if e.Workload != explorer.Cholesky {
				prodNC *= r
				nNC++
			}
		}
	}
	if n > 0 {
		m.MeanScaling = math.Pow(prod, 1.0/float64(n))
	}
	if nNC > 0 {
		m.MeanScalingNoCholesky = math.Pow(prodNC, 1.0/float64(nNC))
	}
	return m
}
