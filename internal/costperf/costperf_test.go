package costperf

import (
	"math"
	"testing"

	"sccsim/internal/explorer"
	"sccsim/internal/sim"
)

func TestClusterConfigs(t *testing.T) {
	want := map[int]int{1: 64 * 1024, 2: 32 * 1024, 4: 64 * 1024, 8: 128 * 1024}
	got := ClusterConfigs()
	for ppc, scc := range want {
		if got[ppc] != scc {
			t.Errorf("ClusterConfigs()[%d] = %d, want %d", ppc, got[ppc], scc)
		}
	}
}

func TestAdjustedAppliesLatencyFactor(t *testing.T) {
	raw := uint64(1_000_000)
	a1 := Adjusted(explorer.BarnesHut, 1, raw) // latency 2: factor 1.0
	a2 := Adjusted(explorer.BarnesHut, 2, raw) // latency 3
	a8 := Adjusted(explorer.BarnesHut, 8, raw) // latency 4
	if a1 != float64(raw) {
		t.Errorf("latency-2 adjustment changed cycles: %v", a1)
	}
	if !(a2 > a1 && a8 > a2) {
		t.Errorf("adjustment not increasing with latency: %v %v %v", a1, a2, a8)
	}
	if math.Abs(a2/a1-1.06) > 0.02 {
		t.Errorf("latency-3 factor = %.3f, want ~1.06", a2/a1)
	}
}

func buildAll(t *testing.T) []*Entry {
	t.Helper()
	s := explorer.QuickScale()
	var entries []*Entry
	for _, w := range explorer.AllWorkloads {
		e, err := BuildEntry(w, s, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, e)
	}
	return entries
}

func TestTables6And7Headlines(t *testing.T) {
	entries := buildAll(t)
	for _, e := range entries {
		for _, ppc := range []int{1, 2, 4, 8} {
			if e.RawCycles[ppc] == 0 || e.AdjCycles[ppc] == 0 {
				t.Fatalf("%s: missing %dP entry", e.Workload, ppc)
			}
		}
		if e.Normalized(8) != 1.0 {
			t.Errorf("%s: Normalized(8) = %v, want 1", e.Workload, e.Normalized(8))
		}
	}

	sc := CompareSingleChip(entries)
	// Paper: 2P/32KB is faster than 1P/64KB on every benchmark despite
	// the extra load-latency cycle, ~1.7x on average, and wins on
	// cost/performance.
	for _, e := range sc.Entries {
		if e.AdjCycles[2] >= e.AdjCycles[1] {
			t.Errorf("%s: 2P/32KB (%.0f) not faster than 1P/64KB (%.0f)",
				e.Workload, e.AdjCycles[2], e.AdjCycles[1])
		}
	}
	if sc.MeanSpeedup <= 1.1 {
		t.Errorf("mean 2P speedup = %.2f, want > 1.1", sc.MeanSpeedup)
	}
	if math.Abs(sc.AreaRatio-1.37) > 0.03 {
		t.Errorf("area ratio = %.3f, paper 1.37", sc.AreaRatio)
	}
	if sc.CostPerfGain <= 0 {
		t.Errorf("cost/performance gain = %.2f, paper finds a win", sc.CostPerfGain)
	}

	m := CompareMCM(entries)
	// Paper: 16 -> 32 processors scales ~linearly except Cholesky.
	if m.MeanScalingNoCholesky < 1.4 {
		t.Errorf("non-Cholesky 16->32 scaling = %.2f, want near 2", m.MeanScalingNoCholesky)
	}
	if m.MeanScaling >= m.MeanScalingNoCholesky {
		t.Errorf("Cholesky (%.2f incl) should drag the mean below %.2f",
			m.MeanScaling, m.MeanScalingNoCholesky)
	}
}

func TestCompareEmptyEntries(t *testing.T) {
	sc := CompareSingleChip(nil)
	if sc.MeanSpeedup != 0 {
		t.Errorf("empty comparison speedup = %v", sc.MeanSpeedup)
	}
	m := CompareMCM(nil)
	if m.MeanScaling != 0 {
		t.Errorf("empty MCM scaling = %v", m.MeanScaling)
	}
}
