package costperf

import (
	"sort"

	"sccsim/internal/area"
	"sccsim/internal/explorer"
	"sccsim/internal/pipeline"
	"sccsim/internal/search"
	"sccsim/internal/sysmodel"
)

// The cost/performance frontier: price every point of a Section 3
// performance grid in silicon using the generalized Section 4 area
// rules, apply the load-latency factor each implementation implies, and
// rank the design space — the quantitative version of the paper's
// closing question ("what should the ratio of processors to cache
// memory size be to achieve the best cost/performance?").

// FrontierPoint is one priced design point.
type FrontierPoint struct {
	// ProcsPerCluster and SCCBytes locate the point in the design space.
	ProcsPerCluster int
	SCCBytes        int
	// AdjCycles is the simulated execution time scaled by the
	// implementation's load-latency factor.
	AdjCycles float64
	// ClusterMM2 is the silicon area of one cluster (all chips);
	// SystemMM2 prices the whole four-cluster system.
	ClusterMM2 float64
	SystemMM2  float64
	// Feasible reports whether the chips are buildable (die and pad
	// limits).
	Feasible bool
	// Perf is 1e9/AdjCycles; CostPerf is Perf per 1000 mm² of system
	// silicon.
	Perf     float64
	CostPerf float64
}

// Frontier prices every point of a swept grid. Points whose
// implementation is not expressible under the Section 4 rules (odd
// processor counts, indivisible SCCs) or not buildable are returned with
// Feasible=false and zero cost figures.
func Frontier(g *explorer.Grid) []FrontierPoint {
	var out []FrontierPoint
	for _, size := range sysmodel.SCCSizes {
		for _, ppc := range sysmodel.ProcsPerClusterSweep {
			pt := g.At(size, ppc)
			if pt == nil {
				continue
			}
			fp := FrontierPoint{ProcsPerCluster: ppc, SCCBytes: size}
			d, err := area.Custom(ppc, size)
			if err == nil && d.Fits() && d.SignalPads <= 1500 {
				fp.Feasible = true
				fp.AdjCycles = float64(pt.Result.Cycles) *
					pipeline.RelTimeFor(string(g.Workload), d.LoadLatency)
				fp.ClusterMM2 = d.ClusterArea()
				fp.SystemMM2 = fp.ClusterMM2 * float64(pt.Config.Clusters)
				fp.Perf = 1e9 / fp.AdjCycles
				fp.CostPerf = fp.Perf / (fp.SystemMM2 / 1000)
			}
			out = append(out, fp)
		}
	}
	return out
}

// Best returns the feasible frontier point with the highest
// cost/performance, or nil if none is feasible.
func Best(points []FrontierPoint) *FrontierPoint {
	var best *FrontierPoint
	for i := range points {
		p := &points[i]
		if !p.Feasible {
			continue
		}
		if best == nil || p.CostPerf > best.CostPerf {
			best = p
		}
	}
	return best
}

// ParetoFront returns the feasible points not dominated in (performance,
// silicon): a point is on the front if no other feasible point is both
// faster and no larger. Sorted by area. Extraction is shared with the
// adaptive search (search.ParetoIndices) — one dominance definition
// serves the exhaustive tables, the CLI's -pareto view and the search
// frontier.
func ParetoFront(points []FrontierPoint) []FrontierPoint {
	var feas []FrontierPoint
	for _, p := range points {
		if p.Feasible {
			feas = append(feas, p)
		}
	}
	vecs := make([][]float64, len(feas))
	for i, p := range feas {
		vecs[i] = []float64{p.AdjCycles, p.SystemMM2}
	}
	var front []FrontierPoint
	for _, i := range search.ParetoIndices(vecs) {
		front = append(front, feas[i])
	}
	sort.Slice(front, func(a, b int) bool { return front[a].SystemMM2 < front[b].SystemMM2 })
	return front
}
