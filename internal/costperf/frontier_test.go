package costperf

import (
	"testing"

	"sccsim/internal/explorer"
	"sccsim/internal/sim"
	"sccsim/internal/sysmodel"
)

func frontierGrid(t *testing.T) []FrontierPoint {
	t.Helper()
	g, err := explorer.SweepParallel(explorer.BarnesHut, explorer.QuickScale(), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return Frontier(g)
}

func TestFrontierCoversGrid(t *testing.T) {
	pts := frontierGrid(t)
	want := len(sysmodel.SCCSizes) * len(sysmodel.ProcsPerClusterSweep)
	if len(pts) != want {
		t.Fatalf("frontier has %d points, want %d", len(pts), want)
	}
	feasible := 0
	for _, p := range pts {
		if p.Feasible {
			feasible++
			if p.AdjCycles <= 0 || p.SystemMM2 <= 0 || p.CostPerf <= 0 {
				t.Errorf("feasible point %dP/%dKB has zero figures: %+v",
					p.ProcsPerCluster, p.SCCBytes/1024, p)
			}
		}
	}
	if feasible < 10 {
		t.Errorf("only %d feasible points; the sweep should be mostly buildable", feasible)
	}
	// Giant on-chip SCCs must be infeasible.
	for _, p := range pts {
		if p.ProcsPerCluster == 2 && p.SCCBytes == 512*1024 && p.Feasible {
			t.Error("2P/512KB marked feasible")
		}
	}
}

func TestBestAndPareto(t *testing.T) {
	pts := frontierGrid(t)
	best := Best(pts)
	if best == nil {
		t.Fatal("no best point")
	}
	if !best.Feasible {
		t.Fatal("best point infeasible")
	}
	front := ParetoFront(pts)
	if len(front) == 0 {
		t.Fatal("empty Pareto front")
	}
	// The front is sorted by area and strictly improving in performance.
	for i := 1; i < len(front); i++ {
		if front[i].SystemMM2 < front[i-1].SystemMM2 {
			t.Error("front not sorted by area")
		}
		if front[i].Perf < front[i-1].Perf {
			t.Error("front not improving in performance")
		}
	}
	// The best cost/perf point must be on the front... not necessarily
	// (cost/perf is a ratio, the front is dominance) — but it must not
	// be dominated.
	for _, q := range pts {
		if q.Feasible && q.Perf > best.Perf && q.SystemMM2 <= q.SystemMM2 && q.CostPerf > best.CostPerf {
			t.Error("best point dominated in cost/perf")
		}
	}
}

func TestBestEmpty(t *testing.T) {
	if Best(nil) != nil {
		t.Error("Best(nil) != nil")
	}
	if Best([]FrontierPoint{{Feasible: false}}) != nil {
		t.Error("Best of infeasible points != nil")
	}
}
