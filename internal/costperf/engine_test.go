package costperf

import (
	"context"
	"testing"

	"sccsim/internal/explorer"
	"sccsim/internal/sim"
)

// TestBuildEntryCtxMatchesSerialPoints: building an entry on the
// concurrent engine yields exactly the cycles the serial RunPoint path
// produces for each Section 4 implementation.
func TestBuildEntryCtxMatchesSerialPoints(t *testing.T) {
	s := explorer.QuickScale()
	e, err := BuildEntryCtx(context.Background(), explorer.BarnesHut, s, sim.Options{},
		explorer.EngineOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for ppc, scc := range ClusterConfigs() {
		pt, err := explorer.RunPoint(explorer.BarnesHut, ppc, scc, s, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if e.RawCycles[ppc] != pt.Result.Cycles {
			t.Errorf("%dP: engine %d cycles, serial %d", ppc, e.RawCycles[ppc], pt.Result.Cycles)
		}
		if e.AdjCycles[ppc] != Adjusted(explorer.BarnesHut, ppc, pt.Result.Cycles) {
			t.Errorf("%dP: adjusted cycles diverged", ppc)
		}
	}
}
