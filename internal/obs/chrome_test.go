package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// chromeDoc mirrors the trace_event container for test decoding.
type chromeDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   uint64         `json:"ts"`
		Dur  uint64         `json:"dur"`
		PID  int            `json:"pid"`
		TID  int32          `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func exportDoc(t *testing.T, ts *TraceSet) chromeDoc {
	t.Helper()
	var buf bytes.Buffer
	if err := ts.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	return doc
}

func TestWriteChromeValidAndMonotonic(t *testing.T) {
	ts := NewTraceSet([]string{"read hit", "read miss"})
	c := ts.NewCollector("4P/64KB", 0)
	c.SetTrackName(0, "cpu 0")
	c.SetTrackName(1, "cpu 1")
	// Emission order is global issue order — deliberately interleaved and
	// locally out of order within track 1; the exporter must sort.
	c.Emit(Event{TS: 10, Dur: 100, Track: 0, Kind: 1, Addr: 0x40})
	c.Emit(Event{TS: 5, Track: 1, Kind: 0})
	c.Emit(Event{TS: 120, Track: 0, Kind: 0})
	c.Emit(Event{TS: 2, Dur: 3, Track: 1, Kind: 1})

	doc := exportDoc(t, ts)
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	// Per-(pid, tid) timestamps must be monotonically non-decreasing.
	last := map[[2]int64]uint64{}
	var timeline, meta int
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			meta++
			continue
		}
		timeline++
		key := [2]int64{int64(e.PID), int64(e.TID)}
		if prev, ok := last[key]; ok && e.TS < prev {
			t.Errorf("track (%d,%d): ts %d after %d", e.PID, e.TID, e.TS, prev)
		}
		last[key] = e.TS
		switch {
		case e.Dur > 0 && e.Ph != "X":
			t.Errorf("duration event has ph %q", e.Ph)
		case e.Dur == 0 && e.Ph != "i":
			t.Errorf("instant event has ph %q", e.Ph)
		}
	}
	if timeline != 4 {
		t.Errorf("%d timeline events, want 4", timeline)
	}
	// One process_name + one thread_name per used track.
	if meta != 3 {
		t.Errorf("%d metadata events, want 3", meta)
	}
}

func TestWriteChromeMetadataNames(t *testing.T) {
	ts := NewTraceSet([]string{"hit"})
	c := ts.NewCollector("run A", 1) // cap 1: second emit drops
	c.SetTrackName(0, "cpu 0")
	c.Emit(Event{TS: 1, Track: 0})
	c.Emit(Event{TS: 2, Track: 0})

	doc := exportDoc(t, ts)
	var sawProcess, sawThread, sawDropped bool
	for _, e := range doc.TraceEvents {
		if e.Ph != "M" {
			continue
		}
		switch e.Name {
		case "process_name":
			sawProcess = e.Args["name"] == "run A"
			_, sawDropped = e.Args["dropped_events"]
		case "thread_name":
			sawThread = e.Args["name"] == "cpu 0"
		}
	}
	if !sawProcess || !sawThread {
		t.Errorf("metadata names missing: process=%v thread=%v", sawProcess, sawThread)
	}
	if !sawDropped {
		t.Error("dropped_events missing from process metadata")
	}
}

func TestWriteChromeEmpty(t *testing.T) {
	ts := NewTraceSet(nil)
	doc := exportDoc(t, ts)
	if len(doc.TraceEvents) != 0 {
		t.Errorf("empty trace set exported %d events", len(doc.TraceEvents))
	}
}
