package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace_event export: the TraceSet is written as a JSON object
// with a "traceEvents" array in the format chrome://tracing and Perfetto
// load directly. One simulated cycle maps to one microsecond of trace
// time (the format's native unit), so a 100-cycle memory fetch renders
// as a 100 µs slice. Each collector (one simulation run) becomes a
// process; each track (processor or cluster-bus timeline) becomes a
// thread within it, named via metadata events.
//
// Events with a duration are emitted as complete events (ph "X");
// zero-duration events as thread-scoped instants (ph "i"). Events are
// sorted by (track, start time) before writing so every track's
// timestamps are monotonically non-decreasing — the property the
// exporter's smoke test pins down.

// chromeEvent is one trace_event record. Field order matters only for
// readability of the output.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int32          `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome writes the whole trace set as Chrome trace_event JSON.
func (s *TraceSet) WriteChrome(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.str(`{"displayTimeUnit":"ms","traceEvents":[`)
	first := true
	emit := func(ev chromeEvent) {
		if !first {
			bw.str(",\n")
		} else {
			bw.str("\n")
			first = false
		}
		b, err := json.Marshal(ev)
		if err != nil {
			bw.fail(err)
			return
		}
		bw.raw(b)
	}

	for _, c := range s.Collectors() {
		meta := map[string]any{"name": c.name}
		if c.dropped > 0 {
			meta["dropped_events"] = c.dropped
		}
		emit(chromeEvent{Name: "process_name", Ph: "M", PID: c.pid, Args: meta})

		// Stable-sort a copy by (track, ts) so per-track timestamps are
		// non-decreasing; emission order inside the simulator is global
		// issue order, which bank waits can locally reorder.
		evs := append([]Event(nil), c.events...)
		sort.SliceStable(evs, func(i, j int) bool {
			if evs[i].Track != evs[j].Track {
				return evs[i].Track < evs[j].Track
			}
			return evs[i].TS < evs[j].TS
		})

		var lastTrack int32 = -1
		for _, e := range evs {
			if e.Track != lastTrack {
				name := c.trackNames[e.Track]
				if name == "" {
					name = fmt.Sprintf("track %d", e.Track)
				}
				emit(chromeEvent{Name: "thread_name", Ph: "M", PID: c.pid, TID: e.Track,
					Args: map[string]any{"name": name}})
				lastTrack = e.Track
			}
			ce := chromeEvent{
				Name: s.kindName(e.Kind),
				TS:   e.TS,
				PID:  c.pid,
				TID:  e.Track,
				Args: map[string]any{"addr": fmt.Sprintf("0x%08x", e.Addr)},
			}
			if e.Dur > 0 {
				ce.Ph, ce.Dur = "X", e.Dur
			} else {
				ce.Ph, ce.S = "i", "t"
			}
			emit(ce)
		}
	}
	bw.str("\n]}\n")
	return bw.err
}

// errWriter folds write errors into one sticky error.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) str(s string) { e.raw([]byte(s)) }
func (e *errWriter) raw(b []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(b)
}
func (e *errWriter) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}
