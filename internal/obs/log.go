package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewJSONLogger returns a slog.Logger writing one JSON object per line
// to w at the given level. This is the one logger construction the repo
// uses, so every layer emits the same shape (slog's standard time /
// level / msg keys plus whatever attrs the site adds — request_id being
// the load-bearing one for the serve path).
func NewJSONLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
}

// ParseLogLevel maps the usual level names (debug, info, warn, error,
// case-insensitive) to slog levels, for -log-level flags.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
}
