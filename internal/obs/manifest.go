package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// ManifestVersion is the schema version stamped into every manifest.
// Bump it on any breaking change to the document layout; consumers key
// their parsers on it.
const ManifestVersion = 1

// Manifest is the machine-readable record of one design-space sweep:
// what was run (workload, scale, config grid), where (host, toolchain),
// how fast (per-point and whole-sweep timings, worker utilization,
// trace-cache effectiveness) and what came out (per-point simulator
// statistics). The `make bench-json` target writes one of these as
// BENCH_sweep.json so the performance trajectory of the engine is
// tracked across PRs.
type Manifest struct {
	Version   int    `json:"version"`
	Tool      string `json:"tool"`
	CreatedAt string `json:"created_at,omitempty"`
	Host      Host   `json:"host"`

	Workload string `json:"workload"`
	// Backend that produced the points ("exact" or "analytic"); empty
	// in manifests written before backends existed, which readers treat
	// as exact.
	Backend string `json:"backend,omitempty"`
	// RequestID joins this manifest to the HTTP request (and its
	// structured log lines) that produced it; empty for CLI runs.
	RequestID   string `json:"request_id,omitempty"`
	Scale       any    `json:"scale"`
	Parallelism int    `json:"parallelism"`

	Grid      GridAxes      `json:"grid"`
	Points    []PointRecord `json:"points"`
	Aggregate Aggregate     `json:"aggregate"`
	Sweep     SweepStats    `json:"sweep"`

	// Search is the adaptive-search stamp: strategy, budget, seed and
	// per-stage accounting. Present only in manifests written by a
	// search run (Backend "search"), where Points lists the confirmed
	// frontier rather than a full grid.
	Search *SearchStamp `json:"search,omitempty"`

	// Metrics is an optional registry snapshot (see Registry.Snapshot).
	Metrics map[string]any `json:"metrics,omitempty"`
}

// Host records where the run happened.
type Host struct {
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	CPUs      int    `json:"cpus"`
	GoVersion string `json:"go_version"`
}

// GridAxes names the swept design-space axes.
type GridAxes struct {
	SCCBytes        []int `json:"scc_bytes"`
	ProcsPerCluster []int `json:"procs_per_cluster"`
}

// PointRecord is one design point's outcome.
type PointRecord struct {
	ProcsPerCluster int `json:"procs_per_cluster"`
	SCCBytes        int `json:"scc_bytes"`
	Clusters        int `json:"clusters"`
	// Backend that produced this point; empty means exact (pre-backend
	// manifests). Benchmark baselines key on it so exact and analytic
	// throughput entries coexist in one file.
	Backend string `json:"backend,omitempty"`

	Cycles            uint64  `json:"cycles"`
	Refs              uint64  `json:"refs"`
	ReadMissRate      float64 `json:"read_miss_rate"`
	ReadStallCycles   uint64  `json:"read_stall_cycles"`
	WriteStallCycles  uint64  `json:"write_stall_cycles"`
	BankStallCycles   uint64  `json:"bank_stall_cycles"`
	BusFetches        uint64  `json:"bus_fetches"`
	Invalidations     uint64  `json:"invalidations"`
	WallNanos         int64   `json:"wall_ns"`
	QueueWaitNanos    int64   `json:"queue_wait_ns"`
	SimCyclesPerMicro float64 `json:"sim_cycles_per_us"`
}

// Aggregate sums the per-point simulator statistics.
type Aggregate struct {
	Points        int    `json:"points"`
	Refs          uint64 `json:"refs"`
	BusFetches    uint64 `json:"bus_fetches"`
	Invalidations uint64 `json:"invalidations"`
	BestCycles    uint64 `json:"best_cycles"`
	WorstCycles   uint64 `json:"worst_cycles"`
}

// SweepStats records the engine-level timings of the sweep.
type SweepStats struct {
	WallNanos        int64   `json:"wall_ns"`
	Workers          int     `json:"workers"`
	Utilization      float64 `json:"utilization"`
	QueueWaitNanos   int64   `json:"queue_wait_ns"`
	PointWallP50     int64   `json:"point_wall_p50_ns"`
	PointWallP95     int64   `json:"point_wall_p95_ns"`
	TraceCacheHits   uint64  `json:"trace_cache_hits"`
	TraceCacheMisses uint64  `json:"trace_cache_misses"`
	// TraceDiskHits counts cache misses satisfied by the persistent
	// on-disk trace cache; TraceGenerated counts misses that ran a
	// workload generator. DiskHits + Generated == Misses.
	TraceDiskHits  uint64 `json:"trace_disk_hits"`
	TraceGenerated uint64 `json:"trace_generated"`
}

// SearchStamp records how an adaptive design-space search produced its
// frontier: the resolved strategy and inputs, and how many candidates
// each pipeline stage handled. The exact-simulation count against the
// space size is the search's efficiency claim in numbers, tracked
// across PRs by `make bench-search`.
type SearchStamp struct {
	// Strategy is the resolved strategy ("exhaustive", "adaptive",
	// "random"); Budget, Seed and Margin echo the resolved spec.
	Strategy string  `json:"strategy"`
	Budget   int     `json:"budget,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
	Margin   float64 `json:"margin"`
	// SpaceSize is the enumerated candidate count; StaticPruned,
	// TriagePruned, Plausible, Sampled, AnalyticEvals, ExactSims,
	// Abandoned and Rounds are the per-stage accounting (see
	// search.Stats for the stage semantics).
	SpaceSize     int `json:"space_size"`
	StaticPruned  int `json:"static_pruned"`
	TriagePruned  int `json:"triage_pruned"`
	Plausible     int `json:"plausible"`
	Sampled       int `json:"sampled,omitempty"`
	AnalyticEvals int `json:"analytic_evals"`
	ExactSims     int `json:"exact_sims"`
	Abandoned     int `json:"abandoned"`
	Rounds        int `json:"rounds"`
	// FrontierSize is the confirmed Pareto-frontier point count.
	FrontierSize int `json:"frontier_size"`
}

// WriteManifest validates and writes the manifest as indented JSON.
func WriteManifest(w io.Writer, m *Manifest) error {
	if m == nil {
		return fmt.Errorf("obs: nil manifest")
	}
	if m.Version == 0 {
		m.Version = ManifestVersion
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		return fmt.Errorf("obs: writing manifest: %w", err)
	}
	return nil
}
