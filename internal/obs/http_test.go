package obs

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestInstrumentHandlerCounts(t *testing.T) {
	reg := NewRegistry()
	h := InstrumentHandler(reg, "POST /v1/sweep", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("fail") != "" {
			http.Error(w, "boom", http.StatusTooManyRequests)
			return
		}
		w.Write([]byte("ok"))
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "?fail=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if got := reg.Counter("http.requests").Value(); got != 4 {
		t.Errorf("http.requests = %d, want 4", got)
	}
	if got := reg.Counter("http.v1_sweep.requests").Value(); got != 4 {
		t.Errorf("route requests = %d, want 4", got)
	}
	if got := reg.Counter("http.v1_sweep.status_2xx").Value(); got != 3 {
		t.Errorf("status_2xx = %d, want 3", got)
	}
	if got := reg.Counter("http.v1_sweep.status_4xx").Value(); got != 1 {
		t.Errorf("status_4xx = %d, want 1", got)
	}
	if got := reg.Gauge("http.v1_sweep.inflight").Value(); got != 0 {
		t.Errorf("inflight = %d, want 0 after requests return", got)
	}
	if got := reg.Histogram("http.v1_sweep.ms", LatencyBucketsMS).Snapshot().Count; got != 4 {
		t.Errorf("latency samples = %d, want 4", got)
	}
}

// TestInstrumentHandlerNilRegistry: the nil-disabled contract extends to
// the middleware — a nil registry returns the handler unchanged.
func TestInstrumentHandlerNilRegistry(t *testing.T) {
	base := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	if got := InstrumentHandler(nil, "GET /x", base); got == nil {
		t.Fatal("nil registry must still return a handler")
	}
	rec := httptest.NewRecorder()
	InstrumentHandler(nil, "GET /x", base).ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != 200 {
		t.Errorf("code = %d", rec.Code)
	}
}

// TestStatusWriterFlush: the middleware must not hide http.Flusher from
// streaming handlers.
func TestStatusWriterFlush(t *testing.T) {
	reg := NewRegistry()
	flushed := false
	h := InstrumentHandler(reg, "POST /v1/sweep", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, ok := w.(http.Flusher); !ok {
			t.Error("instrumented writer does not expose Flush")
			return
		}
		w.(http.Flusher).Flush()
		flushed = true
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !flushed {
		t.Error("handler never flushed")
	}
}

// TestInstrumentHandlerStreamedStatus: a streaming handler (the NDJSON
// path) never calls WriteHeader explicitly — it writes, flushes, writes
// more. The implicit 200 from the first Write must land in status_2xx,
// and an explicit pre-stream status must win over later writes.
func TestInstrumentHandlerStreamedStatus(t *testing.T) {
	reg := NewRegistry()
	h := InstrumentHandler(reg, "POST /v1/sweep", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("explicit") != "" {
			w.WriteHeader(http.StatusAccepted)
		}
		f := w.(http.Flusher)
		for i := 0; i < 3; i++ {
			w.Write([]byte(`{"event":"progress"}` + "\n"))
			f.Flush()
		}
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	for _, q := range []string{"", "?explicit=1"} {
		resp, err := http.Get(srv.URL + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if got := reg.Counter("http.v1_sweep.status_2xx").Value(); got != 2 {
		t.Errorf("status_2xx = %d, want 2 (implicit and explicit streamed statuses)", got)
	}
	if got := reg.Counter("http.v1_sweep.status_5xx").Value(); got != 0 {
		t.Errorf("status_5xx = %d, want 0", got)
	}
}

// TestInstrumentHandlerReusesRecorder: when the writer is already a
// *StatusRecorder (the serve request shell shares one), the middleware
// must not re-wrap it — both layers have to agree on the status, even
// one set by an inner recovery path after the handler returns.
func TestInstrumentHandlerReusesRecorder(t *testing.T) {
	reg := NewRegistry()
	var inner http.ResponseWriter
	h := InstrumentHandler(reg, "GET /x", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inner = w
		w.WriteHeader(http.StatusInternalServerError)
	}))
	rec := httptest.NewRecorder()
	outer := NewStatusRecorder(rec)
	h.ServeHTTP(outer, httptest.NewRequest("GET", "/x", nil))
	if inner != outer {
		t.Error("middleware re-wrapped an existing StatusRecorder")
	}
	if got := reg.Counter("http.x.status_5xx").Value(); got != 1 {
		t.Errorf("status_5xx = %d, want 1", got)
	}
	if outer.Status() != http.StatusInternalServerError || !outer.Wrote() {
		t.Errorf("recorder status = %d wrote = %v", outer.Status(), outer.Wrote())
	}
}

// TestStatusRecorderDefaults: an untouched recorder reports the
// implicit 200 but knows nothing was written.
func TestStatusRecorderDefaults(t *testing.T) {
	sr := NewStatusRecorder(httptest.NewRecorder())
	if sr.Status() != 200 {
		t.Errorf("Status = %d, want 200", sr.Status())
	}
	if sr.Wrote() {
		t.Error("Wrote = true before any write")
	}
	sr.Write([]byte("x"))
	if !sr.Wrote() || sr.Status() != 200 {
		t.Errorf("after Write: status = %d wrote = %v", sr.Status(), sr.Wrote())
	}
}

func TestMetricRoute(t *testing.T) {
	cases := map[string]string{
		"POST /v1/sweep":     "v1_sweep",
		"GET /v1/sweep/{id}": "v1_sweep_id",
		"GET /healthz":       "healthz",
		"/metrics":           "metrics",
	}
	for in, want := range cases {
		if got := metricRoute(in); got != want {
			t.Errorf("metricRoute(%q) = %q, want %q", in, got, want)
		}
	}
}
