package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// NewRequestID returns a fresh 16-hex-character request identifier.
// IDs only need to be unique enough to correlate one request's log
// lines, job record and manifest; 64 random bits are plenty.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; fall back to a
		// recognizable constant rather than propagating an error through
		// every instrumentation site.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

type ctxKey int

const (
	requestIDKey ctxKey = iota
	traceKey
)

// ContextWithRequestID returns a context carrying the request ID.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestIDFrom returns the request ID carried by ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// ContextWithTrace returns a context carrying the trace. A nil trace is
// fine — downstream StartSpan calls no-op.
func ContextWithTrace(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, traceKey, tr)
}

// TraceFrom returns the trace carried by ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey).(*Trace)
	return tr
}

// Trace is a request-scoped collection of named spans, identified by a
// request ID. Like the rest of the package it is nil-disabled: a nil
// *Trace hands out nil *Spans whose methods no-op, so instrumented code
// never branches on "is tracing on".
type Trace struct {
	id    string
	start time.Time

	mu    sync.Mutex
	spans []*Span
}

// NewTrace starts a trace for the given request ID.
func NewTrace(id string) *Trace {
	return &Trace{id: id, start: time.Now()}
}

// ID returns the request ID this trace belongs to ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// StartSpan opens a named span. Call End on the returned span to record
// its duration; an un-Ended span snapshots with the duration it had at
// snapshot time. Nil traces return nil spans.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{trace: t, name: name, start: time.Now()}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Snapshot copies the trace's spans in start order (nil on a nil
// trace). Span start times are reported relative to the trace start.
func (t *Trace) Snapshot() []SpanSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanSnapshot, 0, len(t.spans))
	for _, s := range t.spans {
		out = append(out, s.snapshot(t.start))
	}
	return out
}

// Span is one named, timed region inside a Trace. All methods no-op on
// a nil receiver and are safe for concurrent use.
type Span struct {
	trace *Trace
	name  string
	start time.Time

	mu    sync.Mutex
	end   time.Time
	attrs map[string]string
}

// SetAttr attaches a key/value annotation to the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// End closes the span; the first call wins, later calls no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

func (s *Span) snapshot(traceStart time.Time) SpanSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	end := s.end
	if end.IsZero() {
		end = time.Now()
	}
	snap := SpanSnapshot{
		Name:    s.name,
		StartNS: s.start.Sub(traceStart).Nanoseconds(),
		DurNS:   end.Sub(s.start).Nanoseconds(),
	}
	if len(s.attrs) > 0 {
		snap.Attrs = make(map[string]string, len(s.attrs))
		for k, v := range s.attrs {
			snap.Attrs[k] = v
		}
	}
	return snap
}

// SpanSnapshot is the JSON-ready copy of one span: start offset within
// the request, duration, and any annotations.
type SpanSnapshot struct {
	Name    string            `json:"name"`
	StartNS int64             `json:"start_ns"`
	DurNS   int64             `json:"dur_ns"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}
