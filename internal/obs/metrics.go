// Package obs is the observability substrate of the reproduction: a
// lightweight metrics registry (counters, gauges, fixed-bucket
// histograms), a bounded-buffer trace-event collector with a Chrome
// trace_event JSON exporter, and the versioned run-manifest document the
// sweep tooling emits for machine consumption.
//
// Everything here is built around a nil-disabled contract: a nil
// *Registry, *Counter, *Gauge, *Histogram or *Collector is a valid
// no-op receiver, so instrumented code can hold the pointers
// unconditionally and the disabled configuration costs one predictable
// nil-check branch per site — the hot simulator paths stay within the
// tier-1 performance budget with instrumentation off.
//
// The package deliberately imports only the standard library so every
// layer of the system (sim, snoop, explorer, the facade, the CLIs) can
// use it without import cycles.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric. All methods are
// safe for concurrent use and safe on a nil receiver (no-ops).
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 metric. All methods are safe for concurrent
// use and safe on a nil receiver (no-ops).
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adds delta (negative deltas decrement).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FGauge is a settable float64 metric for quantities that are not
// naturally integral — error ratios, utilizations. The value is stored
// as IEEE-754 bits in one atomic word, so Set and Value are lock-free,
// safe for concurrent use, and no-ops / zero on a nil receiver.
type FGauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *FGauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *FGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram of uint64 samples. Bounds are
// inclusive upper bounds in ascending order; an implicit overflow bucket
// catches samples above the last bound. Observations are lock-free
// atomic increments, safe for concurrent use and no-ops on nil.
type Histogram struct {
	bounds  []uint64
	buckets []atomic.Uint64 // len(bounds)+1; last is overflow
	count   atomic.Uint64
	sum     atomic.Uint64
}

// NewHistogram builds a histogram with the given ascending inclusive
// upper bounds. It panics on empty or unsorted bounds — bucket layouts
// are compile-time decisions, not runtime inputs.
func NewHistogram(bounds []uint64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d", i))
		}
	}
	return &Histogram{
		bounds:  append([]uint64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// CycleBuckets is a general-purpose power-of-two bucket layout for cycle
// counts: the simulator's interesting stall durations run from a single
// bank cycle to a few memory latencies (100 cycles each).
var CycleBuckets = []uint64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// LocalHistogram is a single-goroutine staging buffer in front of a
// shared Histogram. Hot loops that observe per simulated event (the
// simulator's stall histograms) would otherwise hammer the shared
// histogram's atomics from every engine worker at once — cross-core
// cacheline contention that costs double-digit percentages of sweep
// throughput. Observing into a LocalHistogram is plain arithmetic with
// no atomics; Flush merges the batch into the shared histogram in one
// pass, typically once per simulated design point. Not safe for
// concurrent use; nil receivers no-op like the rest of the package.
type LocalHistogram struct {
	h       *Histogram
	bounds  []uint64 // h.bounds, lifted out for the scan in Observe
	buckets []uint64
	count   uint64
	sum     uint64
}

// Local returns a staging buffer for this histogram (nil on nil, which
// disables the downstream Observe/Flush sites for free).
func (h *Histogram) Local() *LocalHistogram {
	if h == nil {
		return nil
	}
	return &LocalHistogram{h: h, bounds: h.bounds, buckets: make([]uint64, len(h.buckets))}
}

// Observe records one sample into the local batch. The bucket search is
// a plain linear scan, not sort.Search: bucket layouts are a dozen
// entries and typical samples land in the first few, so the scan beats
// the closure-calling binary search by a wide margin in the simulator's
// per-event hot path.
func (l *LocalHistogram) Observe(v uint64) {
	if l == nil {
		return
	}
	b := l.bounds
	i := 0
	for i < len(b) && b[i] < v {
		i++
	}
	l.buckets[i]++
	l.count++
	l.sum += v
}

// Flush merges the batch into the shared histogram and resets the
// buffer, so a LocalHistogram can be flushed more than once.
func (l *LocalHistogram) Flush() {
	if l == nil || l.count == 0 {
		return
	}
	for i, n := range l.buckets {
		if n != 0 {
			l.h.buckets[i].Add(n)
			l.buckets[i] = 0
		}
	}
	l.h.count.Add(l.count)
	l.h.sum.Add(l.sum)
	l.count, l.sum = 0, 0
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	// Bounds are the inclusive upper bounds; Counts[i] is the number of
	// samples in bucket i, with Counts[len(Bounds)] the overflow bucket.
	Bounds []uint64
	Counts []uint64
	Count  uint64
	Sum    uint64
}

// Snapshot copies the histogram state (zero value on a nil receiver).
// Concurrent observations may land between field reads; the snapshot is
// internally consistent enough for reporting, not for accounting.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: append([]uint64(nil), h.bounds...),
		Counts: make([]uint64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// Mean returns the mean sample value (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-th quantile (0 <= q <= 1) by linear
// interpolation inside the containing bucket. Samples in the overflow
// bucket are attributed to the last bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, n := range s.Counts {
		next := cum + float64(n)
		if next >= rank && n > 0 {
			lo := float64(0)
			if i > 0 {
				lo = float64(s.Bounds[i-1])
			}
			hi := float64(s.Bounds[len(s.Bounds)-1])
			if i < len(s.Bounds) {
				hi = float64(s.Bounds[i])
			} else {
				lo = hi // overflow bucket: report the last bound
			}
			frac := (rank - cum) / float64(n)
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return float64(s.Bounds[len(s.Bounds)-1])
}

// Registry is a named collection of metrics. Lookups lazily create the
// metric; a nil *Registry returns nil metrics, whose methods no-op, so
// "disabled" needs no branches at the call sites beyond what the
// instrumented code chooses to add.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	fgauges  map[string]*FGauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		fgauges:  make(map[string]*FGauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use (nil on a
// nil registry).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use (nil on a nil
// registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// FGauge returns the named float gauge, creating it on first use (nil
// on a nil registry).
func (r *Registry) FGauge(name string) *FGauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.fgauges[name]
	if !ok {
		g = &FGauge{}
		r.fgauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use; an existing histogram keeps its original bounds.
// Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot returns all metrics as a plain map — counters and gauges as
// numbers, histograms as {count, sum, mean, p50, p95, p99, buckets} —
// ready for expvar.Func or JSON embedding. Nil registries return nil.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.fgauges)+len(r.hists))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, g := range r.fgauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		s := h.Snapshot()
		buckets := make(map[string]uint64, len(s.Counts))
		for i, n := range s.Counts {
			if n == 0 {
				continue
			}
			if i < len(s.Bounds) {
				buckets[fmt.Sprintf("le_%d", s.Bounds[i])] = n
			} else {
				buckets[fmt.Sprintf("gt_%d", s.Bounds[len(s.Bounds)-1])] = n
			}
		}
		out[name] = map[string]any{
			"count":   s.Count,
			"sum":     s.Sum,
			"mean":    s.Mean(),
			"p50":     s.Quantile(0.50),
			"p95":     s.Quantile(0.95),
			"p99":     s.Quantile(0.99),
			"buckets": buckets,
		}
	}
	return out
}
