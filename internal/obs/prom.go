package obs

import (
	"fmt"
	"io"
	"runtime"
	"sort"
)

// PrometheusContentType is the Content-Type of the text exposition
// format version 0.0.4 that WritePrometheus emits.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromName sanitizes a registry metric name into a legal Prometheus
// metric name: the registry's dot- and dash-separated names become
// underscore-separated ("http.v1_sweep.ms" -> "http_v1_sweep_ms"), any
// other illegal character is replaced by an underscore, and a leading
// digit is prefixed with one.
func PromName(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			out = append(out, c)
		case c >= '0' && c <= '9':
			if i == 0 {
				out = append(out, '_')
			}
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// WritePrometheus renders every metric in the registry in the
// Prometheus text exposition format (version 0.0.4): counters and
// gauges as single samples with a # TYPE line, histograms as the
// conventional cumulative _bucket{le="..."} series plus _sum and
// _count. Families are emitted in sorted name order so the output is
// deterministic and diffable. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	type family struct {
		name string
		kind string // "counter", "gauge", "histogram"
		emit func(io.Writer, string) error
	}
	fams := make([]family, 0, len(r.counters)+len(r.gauges)+len(r.fgauges)+len(r.hists))
	for name, c := range r.counters {
		v := c.Value()
		fams = append(fams, family{name, "counter", func(w io.Writer, n string) error {
			_, err := fmt.Fprintf(w, "%s %d\n", n, v)
			return err
		}})
	}
	for name, g := range r.gauges {
		v := g.Value()
		fams = append(fams, family{name, "gauge", func(w io.Writer, n string) error {
			_, err := fmt.Fprintf(w, "%s %d\n", n, v)
			return err
		}})
	}
	for name, g := range r.fgauges {
		v := g.Value()
		fams = append(fams, family{name, "gauge", func(w io.Writer, n string) error {
			_, err := fmt.Fprintf(w, "%s %g\n", n, v)
			return err
		}})
	}
	for name, h := range r.hists {
		s := h.Snapshot()
		fams = append(fams, family{name, "histogram", func(w io.Writer, n string) error {
			var cum uint64
			for i, bound := range s.Bounds {
				cum += s.Counts[i]
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", n, bound, cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, s.Count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum %d\n", n, s.Sum); err != nil {
				return err
			}
			_, err := fmt.Fprintf(w, "%s_count %d\n", n, s.Count)
			return err
		}})
	}
	r.mu.Unlock()

	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		n := PromName(f.name)
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", n, f.kind); err != nil {
			return err
		}
		if err := f.emit(w, n); err != nil {
			return err
		}
	}
	return nil
}

// CaptureRuntimeMetrics refreshes the registry's Go-runtime gauges —
// goroutine count, heap occupancy, GC activity — under the go.* prefix
// (exposed as the conventional go_* names in Prometheus form). Call it
// at scrape time; it is a point-in-time sample, not a background
// collector. No-op on a nil registry.
func CaptureRuntimeMetrics(r *Registry) {
	if r == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge("go.goroutines").Set(int64(runtime.NumGoroutine()))
	r.Gauge("go.heap_alloc_bytes").Set(int64(ms.HeapAlloc))
	r.Gauge("go.heap_objects").Set(int64(ms.HeapObjects))
	r.Gauge("go.next_gc_bytes").Set(int64(ms.NextGC))
	r.Gauge("go.gc_cycles").Set(int64(ms.NumGC))
	r.Gauge("go.gc_pause_total_ns").Set(int64(ms.PauseTotalNs))
}
