// HTTP instrumentation: a handler middleware that records request
// counts, in-flight gauges, status classes, and latency histograms into
// a Registry — the serve layer's bridge between net/http and the
// nil-disabled metrics substrate. Like everything in obs, a nil
// registry disables every site, so the same handler stack runs
// uninstrumented for free.

package obs

import (
	"net/http"
	"strings"
	"time"
)

// LatencyBucketsMS is the canonical fixed-bucket layout for wall-clock
// latencies in milliseconds, spanning sub-millisecond handlers to
// minute-long paper-scale sweeps. Shared by the engine's per-point
// histogram and the HTTP middleware so dashboards can overlay them.
var LatencyBucketsMS = []uint64{1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 60000}

// StatusRecorder captures the response status code while preserving the
// http.Flusher the NDJSON streaming path depends on. The serve layer's
// request middleware shares it so the instrumentation and the request
// log agree on what status a handler produced.
type StatusRecorder struct {
	http.ResponseWriter
	status int
}

// NewStatusRecorder wraps w.
func NewStatusRecorder(w http.ResponseWriter) *StatusRecorder {
	return &StatusRecorder{ResponseWriter: w}
}

// Status returns the recorded status code; an untouched response is
// reported as 200, matching net/http's implicit WriteHeader.
func (w *StatusRecorder) Status() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// Wrote reports whether the handler has committed a status (explicitly
// via WriteHeader or implicitly via Write) — after that, recovery paths
// must not attempt to write a fresh error response.
func (w *StatusRecorder) Wrote() bool { return w.status != 0 }

// WriteHeader records the first status code and forwards it.
func (w *StatusRecorder) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// Write records an implicit 200 on first write and forwards the bytes.
func (w *StatusRecorder) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer when it supports streaming.
func (w *StatusRecorder) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// metricRoute flattens an http.ServeMux pattern ("POST /v1/sweep",
// "GET /v1/sweep/{id}") into a metric-name segment ("v1_sweep",
// "v1_sweep_id").
func metricRoute(route string) string {
	if i := strings.IndexByte(route, ' '); i >= 0 {
		route = route[i+1:]
	}
	r := strings.NewReplacer("/", "_", "{", "", "}", "", ".", "_")
	return strings.Trim(r.Replace(route), "_")
}

// InstrumentHandler wraps h so every request records, under the route's
// flattened name:
//
//	http.<route>.requests       counter, one per request
//	http.<route>.inflight       gauge, currently executing requests
//	http.<route>.ms             latency histogram (LatencyBucketsMS)
//	http.<route>.status_<c>xx   counter per status class (2xx/4xx/5xx...)
//
// plus process-wide http.requests. A nil registry returns h unchanged —
// the uninstrumented server pays nothing.
func InstrumentHandler(reg *Registry, route string, h http.Handler) http.Handler {
	if reg == nil {
		return h
	}
	name := "http." + metricRoute(route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reg.Counter("http.requests").Inc()
		reg.Counter(name + ".requests").Inc()
		reg.Gauge(name + ".inflight").Add(1)
		start := time.Now()
		sw, reused := w.(*StatusRecorder)
		if !reused {
			sw = NewStatusRecorder(w)
		}
		defer func() {
			reg.Gauge(name + ".inflight").Add(-1)
			reg.Histogram(name+".ms", LatencyBucketsMS).
				Observe(uint64(time.Since(start).Milliseconds()))
			status := sw.Status()
			switch {
			case status >= 500:
				reg.Counter(name + ".status_5xx").Inc()
			case status >= 400:
				reg.Counter(name + ".status_4xx").Inc()
			case status >= 300:
				reg.Counter(name + ".status_3xx").Inc()
			default:
				reg.Counter(name + ".status_2xx").Inc()
			}
		}()
		h.ServeHTTP(sw, r)
	})
}
