package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenManifest is a fully-populated manifest with fixed values: the
// golden file pins the JSON schema (field names, nesting, version) so an
// accidental tag change breaks loudly.
func goldenManifest() *Manifest {
	return &Manifest{
		Version:   ManifestVersion,
		Tool:      "sccsim",
		CreatedAt: "2026-01-02T03:04:05Z",
		Host:      Host{OS: "linux", Arch: "amd64", CPUs: 8, GoVersion: "go1.24.0"},
		Workload:  "barnes-hut",
		Scale: map[string]any{
			"BarnesBodies": 256,
			"Seed":         1,
		},
		Parallelism: 4,
		Grid: GridAxes{
			SCCBytes:        []int{4096, 8192},
			ProcsPerCluster: []int{1, 2},
		},
		Points: []PointRecord{
			{
				ProcsPerCluster: 1, SCCBytes: 4096, Clusters: 4,
				Cycles: 1000, Refs: 500, ReadMissRate: 0.125,
				ReadStallCycles: 40, WriteStallCycles: 10, BankStallCycles: 5,
				BusFetches: 20, Invalidations: 3,
				WallNanos: 2_000_000, QueueWaitNanos: 1000, SimCyclesPerMicro: 0.5,
			},
			{
				ProcsPerCluster: 2, SCCBytes: 8192, Clusters: 4,
				Cycles: 800, Refs: 500, ReadMissRate: 0.0625,
				ReadStallCycles: 20, BusFetches: 10,
				WallNanos: 1_500_000, SimCyclesPerMicro: 0.5333,
			},
		},
		Aggregate: Aggregate{
			Points: 2, Refs: 1000, BusFetches: 30, Invalidations: 3,
			BestCycles: 800, WorstCycles: 1000,
		},
		Sweep: SweepStats{
			WallNanos: 3_000_000, Workers: 4, Utilization: 0.29,
			QueueWaitNanos: 1000, PointWallP50: 1_750_000, PointWallP95: 1_975_000,
			TraceCacheHits: 1, TraceCacheMisses: 1,
		},
		Metrics: map[string]any{"explorer.points_done": 2},
	}
}

// TestManifestGolden pins the manifest JSON schema against a golden file.
// Regenerate deliberately with `go test ./internal/obs -run Golden -update`
// after an intentional schema change (and bump ManifestVersion).
func TestManifestGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteManifest(&buf, goldenManifest()); err != nil {
		t.Fatalf("WriteManifest: %v", err)
	}
	path := filepath.Join("testdata", "manifest_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("manifest schema drifted from golden file.\ngot:\n%s\nwant:\n%s\n(run with -update if the change is intentional; bump ManifestVersion on breaking changes)",
			buf.Bytes(), want)
	}
}

func TestWriteManifestDefaults(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteManifest(&buf, &Manifest{Tool: "t", Workload: "w"}); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if doc["version"] != float64(ManifestVersion) {
		t.Errorf("version defaulted to %v, want %d", doc["version"], ManifestVersion)
	}
	// Keys the schema promises are always present.
	for _, key := range []string{"tool", "host", "workload", "grid", "aggregate", "sweep"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("manifest missing %q", key)
		}
	}
	if _, ok := doc["metrics"]; ok {
		t.Error("empty metrics should be omitted")
	}
	if err := WriteManifest(&buf, nil); err == nil {
		t.Error("nil manifest did not error")
	}
}
